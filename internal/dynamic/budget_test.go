package dynamic

import (
	"context"
	"errors"
	"testing"

	"repro/internal/chaos"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/route"
)

// twoComponents builds the grid ⊔ cycle world base (nodes 100+ are the
// cycle).
func twoComponents(t *testing.T) *graph.Graph {
	t.Helper()
	u, err := gen.DisjointUnion(gen.Grid(4, 4), gen.Cycle(5), 100)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// bfsComponentsOf labels the connected components of g by breadth-first
// search — the oracle the compile-time component index is audited against.
func bfsComponentsOf(g *graph.Graph) map[graph.NodeID]int {
	label := make(map[graph.NodeID]int, g.NumNodes())
	next := 0
	for _, v := range g.Nodes() {
		if _, ok := label[v]; ok {
			continue
		}
		queue := []graph.NodeID{v}
		label[v] = next
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for p := 0; p < g.Degree(u); p++ {
				h, err := g.Neighbor(u, p)
				if err != nil {
					continue
				}
				if _, ok := label[h.To]; !ok {
					label[h.To] = next
					queue = append(queue, h.To)
				}
			}
		}
		next++
	}
	return label
}

// TestChurnComponentsMatchBFSOracle is the tentpole audit under live churn:
// at every epoch the snapshot's memoized component index must be a
// relabeling of the BFS oracle on the reduced graph, and certificate
// verdicts must equal walked verdicts on the instantaneous topology. The
// assertion is hard — one wrong component or one divergent verdict at any
// epoch fails the test.
func TestChurnComponentsMatchBFSOracle(t *testing.T) {
	base := twoComponents(t)
	// MarkovLinks flaps links of the fixed underlay, so the two components
	// can fragment further but never merge: the cross-component pair stays
	// provably unreachable for the whole run.
	w := NewWorld(base, &MarkovLinks{Seed: 5, PDown: 0.15, PUp: 0.5})
	// Frozen clocks: the routers must not advance the world mid-audit, so
	// the certified and walked routers decide on the same topology.
	cert := NewRouter(w, Config{Seed: 7, HopsPerEpoch: -1})
	walk := NewRouter(w, Config{Seed: 7, HopsPerEpoch: -1, DisableCertificates: true})
	pairs := []struct{ s, d graph.NodeID }{
		{0, 15}, {0, 102}, {100, 103}, {0, 424242},
	}
	for epoch := 0; epoch < 12; epoch++ {
		red, flat, err := w.Compiled()
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		comps := flat.Components()
		oracle := bfsComponentsOf(red.Graph())
		oracleCount := 0
		for _, l := range oracle {
			if l+1 > oracleCount {
				oracleCount = l + 1
			}
		}
		if comps.Count() != oracleCount {
			t.Fatalf("epoch %d: index has %d components, oracle %d", epoch, comps.Count(), oracleCount)
		}
		fwd := map[int32]int{}
		back := map[int]int32{}
		for _, v := range red.Graph().Nodes() {
			dense, ok := flat.Index(v)
			if !ok {
				t.Fatalf("epoch %d: gadget %d missing from snapshot", epoch, v)
			}
			c := comps.Of(dense)
			o := oracle[v]
			if pc, seen := fwd[c]; seen && pc != o {
				t.Fatalf("epoch %d: component %d maps to oracle labels %d and %d", epoch, c, pc, o)
			}
			if pv, seen := back[o]; seen && pv != c {
				t.Fatalf("epoch %d: oracle label %d maps to components %d and %d", epoch, o, pv, c)
			}
			fwd[c], back[o] = o, c
		}

		snap := w.Snapshot()
		for _, p := range pairs {
			got, errCert := cert.Route(p.s, p.d)
			want, errWalk := walk.Route(p.s, p.d)
			if (errCert == nil) != (errWalk == nil) {
				t.Fatalf("epoch %d route %d->%d: certified err %v, walked err %v",
					epoch, p.s, p.d, errCert, errWalk)
			}
			if errCert != nil {
				continue // e.g. churn isolated the source; both agreed
			}
			if got.Status != want.Status {
				t.Fatalf("epoch %d route %d->%d: certified status %v, walked %v",
					epoch, p.s, p.d, got.Status, want.Status)
			}
			if c := got.Certificate; c != nil {
				if got.Status != netsim.StatusFailure || got.Hops != 0 {
					t.Fatalf("epoch %d route %d->%d: certificate with status %v, hops %d",
						epoch, p.s, p.d, got.Status, got.Hops)
				}
				if c.Epoch != snap.Epoch || c.Version != snap.Version {
					t.Fatalf("epoch %d route %d->%d: certificate stamped (%d,%d), world at (%d,%d)",
						epoch, p.s, p.d, c.Epoch, c.Version, snap.Epoch, snap.Version)
				}
			} else if want.Status == netsim.StatusFailure && comps.Count() > 1 {
				// Multi-component snapshot and a failure verdict: the cert
				// layer must have answered, not silently decayed to a walk —
				// unless the target exists in the same component (covered
				// walk failure is impossible for reachable targets).
				if se, ok := red.Entry(p.s); ok {
					if te, ok2 := red.Entry(p.d); !ok2 || oracle[se] != oracle[te] {
						t.Fatalf("epoch %d route %d->%d: failure verdict walked %d hops despite component proof",
							epoch, p.s, p.d, got.Hops)
					}
				}
			}
		}
		if err := w.Advance(Probe{}); err != nil {
			t.Fatalf("epoch %d advance: %v", epoch, err)
		}
	}
}

// dynRunToVerdict drives RouteBudgeted under a fixed per-request budget,
// resuming until a verdict lands.
func dynRunToVerdict(t *testing.T, r *Router, s, d graph.NodeID, budget int64) (*Result, int) {
	t.Helper()
	var cur *route.Cursor
	for i := 0; ; i++ {
		if i > 200000 {
			t.Fatal("walk did not converge")
		}
		res, err := r.RouteBudgeted(context.Background(), s, d, budget, cur)
		if err != nil {
			t.Fatalf("budgeted route %d->%d (continuation %d): %v", s, d, i, err)
		}
		if res.Exhausted == "" {
			return res, i
		}
		if res.Exhausted != route.ExhaustBudget {
			t.Fatalf("exhausted = %q, want budget", res.Exhausted)
		}
		if res.Cursor == nil {
			t.Fatal("exhausted result without cursor")
		}
		cur = res.Cursor
	}
}

// TestDynamicBudgetedSplitEqualsUninterrupted is the dynamic resume
// differential: on identically-seeded churning worlds, a walk split across
// budget continuations must equal the uninterrupted walk — verdict, hops,
// header bits, bound, rounds, epochs, and mid-walk resumptions — including
// walks whose cursors cross epoch recompiles.
func TestDynamicBudgetedSplitEqualsUninterrupted(t *testing.T) {
	base := gen.Torus(5, 5)
	cfg := Config{Seed: 3, HopsPerEpoch: 16, DisableCertificates: true}
	mkRouter := func() *Router {
		return NewRouter(NewWorld(base, &EdgeChurn{Seed: 11, PDrop: 0.08, AddRate: 1}), cfg)
	}
	want, err := mkRouter().Route(0, 18)
	if err != nil {
		t.Fatal(err)
	}
	if want.Recompiles == 0 || want.Epochs == 0 {
		t.Fatalf("baseline did not churn (epochs %d, recompiles %d) — test is vacuous",
			want.Epochs, want.Recompiles)
	}
	for _, budget := range []int64{1, 17, 256, 1 << 40} {
		got, continuations := dynRunToVerdict(t, mkRouter(), 0, 18, budget)
		if got.Status != want.Status || got.Hops != want.Hops ||
			got.MaxHeaderBits != want.MaxHeaderBits || got.Bound != want.Bound ||
			got.Rounds != want.Rounds || got.AbortedRounds != want.AbortedRounds ||
			got.Epochs != want.Epochs || got.Resumptions != want.Resumptions {
			t.Fatalf("budget %d: split %+v != uninterrupted %+v", budget, got, want)
		}
		if budget == 1 && continuations < 2 {
			t.Fatalf("budget 1 finished in %d continuations over %d hops", continuations, want.Hops)
		}
		if budget == 1<<40 && continuations != 0 {
			t.Fatalf("huge budget still took %d continuations", continuations)
		}
	}
}

// TestDynamicBudgetedDeadline: an expired context exhausts at the round
// boundary with a resumable cursor, and the resumed walk reaches the
// uninterrupted verdict.
func TestDynamicBudgetedDeadline(t *testing.T) {
	base := gen.Torus(4, 5)
	want, err := NewRouter(NewWorld(base, nil), Config{Seed: 9, HopsPerEpoch: 16}).Route(0, 19)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(NewWorld(base, nil), Config{Seed: 9, HopsPerEpoch: 16})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := r.RouteBudgeted(ctx, 0, 19, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhausted != route.ExhaustDeadline || res.Cursor == nil {
		t.Fatalf("expired-context result = %+v", res)
	}
	got, err := r.RouteBudgeted(context.Background(), 0, 19, 0, res.Cursor)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != want.Status || got.Hops != want.Hops || got.MaxHeaderBits != want.MaxHeaderBits {
		t.Fatalf("resumed after deadline %+v != uninterrupted %+v", got, want)
	}
}

// TestDynamicResumeAfterExternalAdvance: a cursor minted on one topology
// version resumes after the world has been mutated externally — the walk
// re-enters at the original node's canonical gadget and still reaches a
// verdict.
func TestDynamicResumeAfterExternalAdvance(t *testing.T) {
	r := NewRouter(NewWorld(gen.Torus(4, 5), nil), Config{Seed: 2, HopsPerEpoch: -1})
	res, err := r.RouteBudgeted(context.Background(), 0, 19, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhausted != route.ExhaustBudget {
		t.Fatalf("walk not exhausted: %+v", res)
	}
	w := r.World()
	if _, _, err := w.AddEdge(0, 19); err != nil {
		t.Fatal(err)
	}
	if err := w.RemoveEdgeBetween(0, 19); err != nil {
		t.Fatal(err)
	}
	if w.Version() == res.Cursor.Version {
		t.Fatal("external mutation did not bump the version")
	}
	got, err := r.RouteBudgeted(context.Background(), 0, 19, 0, res.Cursor)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != netsim.StatusSuccess {
		t.Fatalf("resumed walk on mutated world: %+v", got)
	}
	if got.Resumptions == 0 {
		t.Fatal("cross-version resume did not count a resumption")
	}
}

// TestDynamicBudgetedRejects covers the refusal surface of the dynamic
// budgeted API.
func TestDynamicBudgetedRejects(t *testing.T) {
	ctx := context.Background()
	base := gen.Torus(4, 5)

	ref := NewRouter(NewWorld(base, nil), Config{Seed: 1, DisableFlat: true})
	if _, err := ref.RouteBudgeted(ctx, 0, 19, 10, nil); !errors.Is(err, route.ErrBudgetUnsupported) {
		t.Fatalf("DisableFlat error = %v, want ErrBudgetUnsupported", err)
	}

	r := NewRouter(NewWorld(base, nil), Config{Seed: 1, HopsPerEpoch: -1})
	res, err := r.RouteBudgeted(ctx, 0, 19, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhausted != route.ExhaustBudget {
		t.Fatalf("budget-1 walk not exhausted: %+v", res)
	}
	cur := *res.Cursor
	cur.Dst = 3
	if _, err := r.RouteBudgeted(ctx, 0, 19, 1, &cur); !errors.Is(err, route.ErrBadCursor) {
		t.Fatalf("mismatched-pair cursor error = %v, want ErrBadCursor", err)
	}
	cur = *res.Cursor
	cur.Bound = 0
	if _, err := r.RouteBudgeted(ctx, 0, 19, 1, &cur); !errors.Is(err, route.ErrBadCursor) {
		t.Fatalf("zero-bound cursor error = %v, want ErrBadCursor", err)
	}
	cur = *res.Cursor
	cur.Node = 1 << 30
	if _, err := r.RouteBudgeted(ctx, 0, 19, 1, &cur); !errors.Is(err, route.ErrBadCursor) {
		t.Fatalf("out-of-range cursor error = %v, want ErrBadCursor", err)
	}
	cur = *res.Cursor
	cur.Version++
	cur.At = 424242 // re-entry node that does not exist on this topology
	if _, err := r.RouteBudgeted(ctx, 0, 19, 1, &cur); !errors.Is(err, route.ErrBadCursor) {
		t.Fatalf("missing re-entry cursor error = %v, want ErrBadCursor", err)
	}

	if res, err := r.RouteBudgeted(ctx, 9, 9, 1, nil); err != nil || res.Status != netsim.StatusSuccess {
		t.Fatalf("self route = %+v, %v", res, err)
	}
	if _, err := r.RouteBudgeted(ctx, 4242, 0, 1, nil); !errors.Is(err, graph.ErrNodeNotFound) {
		t.Fatalf("missing source error = %v", err)
	}
}

// TestWorldChaos exercises the fault hooks: an injected compile fault
// surfaces as ErrInjected (never a verdict), an epoch stall and per-hop
// delay fire and are counted, and removing the injector restores clean
// routing.
func TestWorldChaos(t *testing.T) {
	w := NewWorld(gen.Torus(4, 5), nil)
	r := NewRouter(w, Config{Seed: 4, HopsPerEpoch: 16})

	w.SetChaos(chaos.New(chaos.Config{Seed: 1, CompileFailRate: 1}))
	if _, _, err := w.AddEdge(0, 7); err != nil { // invalidate the compile cache
		t.Fatal(err)
	}
	if _, err := r.Route(0, 19); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("route under compile faults: err = %v, want ErrInjected", err)
	}

	inj := chaos.New(chaos.Config{Seed: 2, HopDelay: 1, EpochStall: 1})
	w.SetChaos(inj)
	res, err := r.Route(0, 19)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != netsim.StatusSuccess {
		t.Fatalf("route under latency chaos: %+v", res)
	}
	st := inj.Stats()
	if st.HopDelays != res.Hops {
		t.Fatalf("hop delays fired %d times over %d hops", st.HopDelays, res.Hops)
	}
	if res.Epochs > 0 && st.EpochStalls == 0 {
		t.Fatalf("epochs advanced %d times, no stall fired", res.Epochs)
	}

	w.SetChaos(nil)
	if res, err := r.Route(0, 19); err != nil || res.Status != netsim.StatusSuccess {
		t.Fatalf("route after chaos removed: %+v, %v", res, err)
	}
}
