// Hybrid demonstrates Corollary 2: racing a fast-but-fallible random-walk
// router against the guaranteed UES router, step for step. On easy
// instances the random walk wins and the hybrid matches its speed (×2);
// on impossible instances the guaranteed side delivers a verdict the
// random walk never could.
package main

import (
	"fmt"
	"log"

	adhocroute "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Easy instance: a well-connected mesh.
	easy := adhocroute.NewGrid(6, 6)
	res, err := easy.RouteHybrid(0, 35, adhocroute.WithSeed(11))
	if err != nil {
		return err
	}
	fmt.Println("easy instance (6x6 mesh, 0 -> 35):")
	fmt.Printf("  verdict:  %s\n", res.Status)
	fmt.Printf("  winner:   %s\n", res.Winner)
	fmt.Printf("  combined: %d interleaved steps\n\n", res.CombinedSteps)

	// Impossible instance: two islands.
	hard := adhocroute.NewNetwork()
	for i := 0; i < 8; i++ {
		if err := hard.AddNode(adhocroute.NodeID(i)); err != nil {
			return err
		}
	}
	for i := 0; i < 3; i++ {
		if err := hard.AddLink(adhocroute.NodeID(i), adhocroute.NodeID(i+1)); err != nil {
			return err
		}
	}
	for i := 4; i < 7; i++ {
		if err := hard.AddLink(adhocroute.NodeID(i), adhocroute.NodeID(i+1)); err != nil {
			return err
		}
	}
	res, err = hard.RouteHybrid(0, 7, adhocroute.WithSeed(11))
	if err != nil {
		return err
	}
	fmt.Println("impossible instance (two islands, 0 -> 7):")
	fmt.Printf("  verdict:  %s (definitive — t is provably unreachable)\n", res.Status)
	fmt.Printf("  winner:   %s\n", res.Winner)
	fmt.Printf("  combined: %d interleaved steps\n", res.CombinedSteps)
	fmt.Println("  (the random-walk half alone would never have terminated)")
	return nil
}
