package degred

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/prng"
)

func reduceOrFail(t *testing.T, g *graph.Graph) *Reduced {
	t.Helper()
	r, err := Reduce(g)
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	return r
}

func TestReduceStar(t *testing.T) {
	// Star with hub degree 5: hub becomes a 5-cycle, each leaf (degree 1)
	// becomes one node with a self-loop.
	g := gen.Star(6)
	r := reduceOrFail(t, g)
	if !r.Graph().IsRegular(3) {
		t.Fatal("reduced graph not 3-regular")
	}
	if got := len(r.Gadget(0)); got != 5 {
		t.Fatalf("hub gadget size = %d, want 5", got)
	}
	for leaf := graph.NodeID(1); leaf <= 5; leaf++ {
		if got := len(r.Gadget(leaf)); got != 1 {
			t.Fatalf("leaf %d gadget size = %d, want 1", leaf, got)
		}
	}
	if !r.Graph().IsConnected() {
		t.Fatal("reduced star should stay connected")
	}
}

func TestReduceDegreeCases(t *testing.T) {
	// One node of each degree class: isolated (0), pendant (1), path
	// middle (2), and a degree-3 hub.
	g := graph.New()
	for i := graph.NodeID(0); i <= 5; i++ {
		g.EnsureNode(i)
	}
	// 1 - 2 - 3, hub 2 also joined to 4; 5 isolated. Degrees: 1:1, 2:3, 3:1, 4:1, 0:0...
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 2, 4)
	r := reduceOrFail(t, g)

	wantSizes := map[graph.NodeID]int{
		0: 2, // isolated -> theta gadget
		1: 1, // degree 1 -> self-loop node
		2: 3, // degree 3 -> 3-cycle
		3: 1,
		4: 1,
		5: 2, // isolated
	}
	for v, want := range wantSizes {
		if got := len(r.Gadget(v)); got != want {
			t.Errorf("gadget size of %d = %d, want %d", v, got, want)
		}
	}
	if !r.Graph().IsRegular(3) {
		t.Fatal("not 3-regular")
	}
}

func TestReduceSelfLoopOnly(t *testing.T) {
	g := graph.New()
	g.EnsureNode(0)
	mustLoop(t, g, 0)
	r := reduceOrFail(t, g)
	if !r.Graph().IsRegular(3) {
		t.Fatal("self-loop-only graph not reduced to 3-regular")
	}
	if len(r.Gadget(0)) != 2 {
		t.Fatalf("degree-2 self-loop gadget size = %d, want 2", len(r.Gadget(0)))
	}
	if !r.Graph().IsConnected() {
		t.Fatal("should be connected")
	}
}

func TestReducePreservesComponents(t *testing.T) {
	a := gen.Cycle(5)
	b := gen.Path(4)
	g, err := gen.DisjointUnion(a, b, 50)
	if err != nil {
		t.Fatal(err)
	}
	r := reduceOrFail(t, g)
	if got, want := len(r.Graph().Components()), len(g.Components()); got != want {
		t.Fatalf("component count changed: %d vs %d", got, want)
	}
}

func TestReduceSizeBound(t *testing.T) {
	// |V'| <= 2|E| + 2|V| (the paper: "at most squaring the size").
	graphs := map[string]*graph.Graph{
		"grid":     gen.Grid(6, 7),
		"complete": gen.Complete(9),
		"star":     gen.Star(20),
		"tree":     gen.RandomTree(40, 1),
	}
	for name, g := range graphs {
		r := reduceOrFail(t, g)
		bound := 2*g.NumEdges() + 2*g.NumNodes()
		if got := r.Graph().NumNodes(); got > bound {
			t.Errorf("%s: reduced size %d exceeds bound %d", name, got, bound)
		}
	}
}

func TestMappingRoundTrip(t *testing.T) {
	g := gen.Grid(4, 4)
	r := reduceOrFail(t, g)
	// Every gadget node maps to its owner; every owner's gadget contains it.
	r.Graph().ForEachNode(func(v graph.NodeID) {
		o, ok := r.Original(v)
		if !ok {
			t.Fatalf("gadget node %d has no original", v)
		}
		found := false
		for _, s := range r.Gadget(o) {
			if s == v {
				found = true
			}
		}
		if !found {
			t.Fatalf("gadget node %d missing from Gadget(%d)", v, o)
		}
		if !r.SameOriginal(v, o) {
			t.Fatalf("SameOriginal(%d,%d) = false", v, o)
		}
	})
	// Gadget sets partition the reduced nodes.
	total := 0
	g.ForEachNode(func(v graph.NodeID) { total += len(r.Gadget(v)) })
	if total != r.Graph().NumNodes() {
		t.Fatalf("gadget sizes sum to %d, reduced has %d nodes", total, r.Graph().NumNodes())
	}
}

func TestEntry(t *testing.T) {
	g := gen.Cycle(4)
	r := reduceOrFail(t, g)
	e, ok := r.Entry(2)
	if !ok {
		t.Fatal("Entry(2) not found")
	}
	if o, _ := r.Original(e); o != 2 {
		t.Fatalf("Entry(2) maps back to %d", o)
	}
	if _, ok := r.Entry(99); ok {
		t.Fatal("Entry of unknown node should fail")
	}
}

func TestGadgetAdjacency(t *testing.T) {
	// If (u,v) is an original edge, some gadget node of u must be adjacent
	// to some gadget node of v in G'.
	g := gen.Grid(3, 5)
	r := reduceOrFail(t, g)
	g.ForEachNode(func(u graph.NodeID) {
		for p := 0; p < g.Degree(u); p++ {
			h, err := g.Neighbor(u, p)
			if err != nil {
				t.Fatal(err)
			}
			adjacent := false
			for _, gu := range r.Gadget(u) {
				for _, gv := range r.Gadget(h.To) {
					if r.Graph().HasEdge(gu, gv) {
						adjacent = true
					}
				}
			}
			if !adjacent {
				t.Fatalf("original edge (%d,%d) not represented in G'", u, h.To)
			}
		}
	})
}

// TestReduceRandomGraphs property-tests the reduction invariants on random
// multigraphs with loops and parallel edges.
func TestReduceRandomGraphs(t *testing.T) {
	f := func(seed uint64) bool {
		src := prng.New(seed)
		n := src.Intn(25) + 1
		g := graph.New()
		for i := 0; i < n; i++ {
			g.EnsureNode(graph.NodeID(i))
		}
		edges := src.Intn(3 * n)
		for i := 0; i < edges; i++ {
			u, v := graph.NodeID(src.Intn(n)), graph.NodeID(src.Intn(n))
			if _, _, err := g.AddEdge(u, v); err != nil {
				return false
			}
		}
		r, err := Reduce(g)
		if err != nil {
			return false
		}
		if !r.Graph().IsRegular(3) {
			return false
		}
		if r.Graph().Validate() != nil {
			return false
		}
		if len(r.Graph().Components()) != len(g.Components()) {
			return false
		}
		if r.Graph().NumNodes() > 2*g.NumEdges()+2*g.NumNodes() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceAlready3Regular(t *testing.T) {
	g, err := gen.RandomRegularSimple(16, 3, 9, 100)
	if err != nil {
		t.Fatal(err)
	}
	r := reduceOrFail(t, g)
	// Degree-3 nodes each become a 3-cycle: 3x nodes.
	if r.Graph().NumNodes() != 3*g.NumNodes() {
		t.Fatalf("3-regular input reduced to %d nodes, want %d",
			r.Graph().NumNodes(), 3*g.NumNodes())
	}
}

func mustEdge(t *testing.T, g *graph.Graph, u, v graph.NodeID) {
	t.Helper()
	if _, _, err := g.AddEdge(u, v); err != nil {
		t.Fatal(err)
	}
}

func mustLoop(t *testing.T, g *graph.Graph, v graph.NodeID) {
	t.Helper()
	if _, _, err := g.AddEdge(v, v); err != nil {
		t.Fatal(err)
	}
}
