package main

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/slo"
)

// sloServerReport mirrors adhocd's GET /v1/slo response shape.
type sloServerReport struct {
	Objectives []slo.ObjectiveReport `json:"objectives"`
}

// objectiveScenario maps an objective's metric identity onto the loadgen
// scenario whose measured latencies evaluate it: static routes for
// route_pNN, the shared-world dynamic routes for dynamic_pNN.
var objectiveScenario = map[string]string{
	"route":   "route",
	"dynamic": "world",
}

// evalSLO fetches the server's declared objectives and checks this run
// against them, filling rep.SLOViolations:
//
//   - any server-evaluated objective currently burning is a violation
//     (the run itself pushed the server over its budget);
//   - a latency objective is additionally checked against the measured
//     client-side quantile of its scenario — the end-to-end number the
//     server cannot see — when the mix exercised that scenario;
//   - a client-evaluated zero-tolerance objective (wrong_verdicts) is
//     checked against the run's differential counters, which only a
//     client replaying walks against a reference can produce.
func (g *generator) evalSLO(rep *Report) error {
	resp, err := g.client.Get(g.cfg.addr + "/v1/slo")
	if err != nil {
		return fmt.Errorf("slo: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("slo: GET /v1/slo: %d (is -slo off on the server?)", resp.StatusCode)
	}
	var srv sloServerReport
	if err := json.NewDecoder(resp.Body).Decode(&srv); err != nil {
		return fmt.Errorf("slo: decode: %w", err)
	}

	for _, o := range srv.Objectives {
		if o.Burning {
			rep.SLOViolations = append(rep.SLOViolations,
				fmt.Sprintf("%s: burning server-side (objective %q)", o.Name, o.Objective))
		}
		switch {
		case o.ClientEvaluated && o.Budget == 0 && o.Name == "wrong_verdicts":
			if rep.Total.WrongVerdicts > 0 {
				rep.SLOViolations = append(rep.SLOViolations,
					fmt.Sprintf("wrong_verdicts: %d measured against %q", rep.Total.WrongVerdicts, o.Objective))
			}
		case o.Unit == "s" && o.Quantile > 0:
			base := o.Name
			if i := strings.LastIndex(base, "_p"); i >= 0 {
				base = base[:i]
			}
			sc := rep.scenario(objectiveScenario[base])
			if sc == nil || sc.Requests == 0 {
				continue // the mix did not exercise this objective
			}
			measured, ok := measuredQuantileUS(sc, o.Quantile)
			if !ok {
				continue // quantile not in the report's fixed set
			}
			if limit := o.Threshold * 1e6; measured > limit {
				rep.SLOViolations = append(rep.SLOViolations,
					fmt.Sprintf("%s: measured %s p%g = %.1fµs over %.0fµs (objective %q)",
						o.Name, sc.Name, o.Quantile*100, measured, limit, o.Objective))
			}
		}
	}
	return nil
}

// scenario returns the named scenario's report row, nil when the mix
// did not include it.
func (r *Report) scenario(name string) *ScenarioReport {
	for i := range r.Scenarios {
		if r.Scenarios[i].Name == name {
			return &r.Scenarios[i]
		}
	}
	return nil
}

// measuredQuantileUS maps a declared quantile onto the report's exact
// percentile fields.
func measuredQuantileUS(sc *ScenarioReport, q float64) (float64, bool) {
	switch q {
	case 0.5:
		return sc.P50US, true
	case 0.9:
		return sc.P90US, true
	case 0.95:
		return sc.P95US, true
	case 0.99:
		return sc.P99US, true
	}
	return 0, false
}
