package registry_test

import (
	"encoding/json"
	"fmt"

	"repro/internal/registry"
)

// ExampleSpec pins the two wire forms POST /v1/networks accepts — a
// generator invocation and an explicit edge list — and the identity
// contract: the registry ID is deterministic in the spec, so registration
// is idempotent and an evicted network is revived by re-posting its spec.
func ExampleSpec() {
	// Generator form: a seeded family plus the protocol seed.
	gridJSON := []byte(`{"kind":"grid","rows":8,"cols":8,"seed":7}`)
	var grid registry.Spec
	if err := json.Unmarshal(gridJSON, &grid); err != nil {
		panic(err)
	}
	fmt.Println("grid:", grid.Desc())

	// Edge-list form: node IDs are created as referenced; "nodes" forces
	// isolated trailing nodes to exist.
	edgesJSON := []byte(`{"kind":"edges","edges":[[0,1],[1,2],[2,0]],"nodes":5,"seed":7}`)
	var edges registry.Spec
	if err := json.Unmarshal(edgesJSON, &edges); err != nil {
		panic(err)
	}
	fmt.Println("edges:", edges.Desc())

	// The ID derives from the canonical key alone: same spec, same ID, on
	// any daemon, in any order of fields.
	same := registry.Spec{Cols: 8, Rows: 8, Kind: "grid", Seed: 7}
	fmt.Println("idempotent id:", grid.ID() == same.ID())
	// A different protocol seed is a different engine, hence a new ID.
	other := registry.Spec{Kind: "grid", Rows: 8, Cols: 8, Seed: 8}
	fmt.Println("seed changes id:", grid.ID() != other.ID())
	// Output:
	// grid: grid 8x8 seed=7
	// edges: edges m=3 seed=7
	// idempotent id: true
	// seed changes id: true
}

// ExampleRegistry_Obtain shows the compile-once amortization: the first
// Obtain compiles, every later Obtain of an equal spec is a cache hit on
// the same resident engine.
func ExampleRegistry_Obtain() {
	reg := registry.New(registry.Config{Capacity: 4})
	spec := registry.Spec{Kind: "cycle", N: 12, Seed: 3}

	ent, cached, err := reg.Obtain(spec)
	if err != nil {
		panic(err)
	}
	fmt.Println("first obtain cached:", cached)

	again, cached, err := reg.Obtain(registry.Spec{Kind: "cycle", N: 12, Seed: 3})
	if err != nil {
		panic(err)
	}
	fmt.Println("second obtain cached:", cached)
	fmt.Println("same engine:", ent.Eng == again.Eng)
	fmt.Println("compiles:", reg.Stats().Compiles)
	// Output:
	// first obtain cached: false
	// second obtain cached: true
	// same engine: true
	// compiles: 1
}
