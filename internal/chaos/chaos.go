// Package chaos injects deterministic, seeded faults into the serving
// stack: snapshot recompile failures, per-hop walk latency, epoch-advance
// stalls, and handler-level request faults and delays. It exists to prove
// the robustness claims (budgets, deadlines, drain, retry) under load, not
// to model a physical failure process — which faults fire is a pure
// function of the seed and the call sequence, so a chaos run is replayable.
//
// A nil *Injector is inert: every method is nil-receiver-safe and costs one
// branch, so call sites hook the injector unconditionally and production
// paths pay nothing when chaos is off.
package chaos

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/prng"
)

// ErrInjected marks every chaos-injected failure, so callers (and tests)
// can tell a synthetic fault from a real one with errors.Is.
var ErrInjected = errors.New("chaos: injected fault")

// Config selects which faults fire and how often. All rates are
// probabilities in [0, 1]; zero disables that fault class. Delays without a
// rate fire on every event of their class.
type Config struct {
	// Seed drives the fault stream; identical seeds and call sequences
	// produce identical fault decisions.
	Seed uint64
	// CompileFailRate is the probability that a snapshot recompile fails
	// with ErrInjected (exercises the route-layer error path under churn).
	CompileFailRate float64
	// HopDelay is the latency injected into walk hops; HopDelayRate is the
	// probability a given hop pays it (0 with a nonzero HopDelay = every
	// hop).
	HopDelay     time.Duration
	HopDelayRate float64
	// EpochStall is the latency injected into epoch advances; EpochStallRate
	// is the probability a given advance stalls (0 with a nonzero
	// EpochStall = every advance).
	EpochStall     time.Duration
	EpochStallRate float64
	// RequestFailRate is the probability a handler-level fault fires,
	// turning one HTTP request into a 500 before any routing work.
	RequestFailRate float64
	// RequestDelay is the latency injected ahead of handler work;
	// RequestDelayRate is the probability a given request pays it.
	RequestDelay     time.Duration
	RequestDelayRate float64
}

// Stats counts the faults an injector has fired, by class.
type Stats struct {
	CompileFaults int64 `json:"compile_faults"`
	HopDelays     int64 `json:"hop_delays"`
	EpochStalls   int64 `json:"epoch_stalls"`
	RequestFaults int64 `json:"request_faults"`
	RequestDelays int64 `json:"request_delays"`
}

// Injector is a concurrency-safe fault source. The fault stream is
// deterministic in (Config.Seed, global call order); under concurrency the
// interleaving picks which caller absorbs each fault, but the number and
// pattern of faults over N calls is fixed.
type Injector struct {
	cfg Config

	mu    sync.Mutex
	src   *prng.Source
	stats Stats
}

// New builds an injector for cfg. A zero Config yields an injector that
// never fires (equivalent to a nil one).
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, src: prng.New(cfg.Seed)}
}

// roll consumes one word of the fault stream and reports whether an event
// with probability rate fires.
func (i *Injector) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		i.src.Uint64() // keep the stream position rate-independent
		return true
	}
	return i.src.Float64() < rate
}

// CompileFault returns ErrInjected (wrapped) when a compile-failure fault
// fires, nil otherwise. Safe on a nil receiver.
func (i *Injector) CompileFault() error {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	fire := i.roll(i.cfg.CompileFailRate)
	if fire {
		i.stats.CompileFaults++
	}
	i.mu.Unlock()
	if !fire {
		return nil
	}
	return fmt.Errorf("%w: recompile", ErrInjected)
}

// HopDelay blocks for the configured per-hop latency when that fault
// fires. Safe on a nil receiver.
func (i *Injector) HopDelay() {
	if i == nil || i.cfg.HopDelay <= 0 {
		return
	}
	i.mu.Lock()
	fire := i.cfg.HopDelayRate <= 0 || i.roll(i.cfg.HopDelayRate)
	if fire {
		i.stats.HopDelays++
	}
	i.mu.Unlock()
	if fire {
		time.Sleep(i.cfg.HopDelay)
	}
}

// EpochStall blocks for the configured epoch-advance latency when that
// fault fires. Safe on a nil receiver.
func (i *Injector) EpochStall() {
	if i == nil || i.cfg.EpochStall <= 0 {
		return
	}
	i.mu.Lock()
	fire := i.cfg.EpochStallRate <= 0 || i.roll(i.cfg.EpochStallRate)
	if fire {
		i.stats.EpochStalls++
	}
	i.mu.Unlock()
	if fire {
		time.Sleep(i.cfg.EpochStall)
	}
}

// RequestFault returns ErrInjected (wrapped) when a handler-level fault
// fires, nil otherwise. Safe on a nil receiver.
func (i *Injector) RequestFault() error {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	fire := i.roll(i.cfg.RequestFailRate)
	if fire {
		i.stats.RequestFaults++
	}
	i.mu.Unlock()
	if !fire {
		return nil
	}
	return fmt.Errorf("%w: request", ErrInjected)
}

// RequestDelay blocks for the configured handler latency when that fault
// fires. Safe on a nil receiver.
func (i *Injector) RequestDelay() {
	if i == nil || i.cfg.RequestDelay <= 0 {
		return
	}
	i.mu.Lock()
	fire := i.cfg.RequestDelayRate <= 0 || i.roll(i.cfg.RequestDelayRate)
	if fire {
		i.stats.RequestDelays++
	}
	i.mu.Unlock()
	if fire {
		time.Sleep(i.cfg.RequestDelay)
	}
}

// Stats returns a snapshot of the fault counters. Safe on a nil receiver
// (all zero).
func (i *Injector) Stats() Stats {
	if i == nil {
		return Stats{}
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.stats
}
