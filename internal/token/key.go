package token

import (
	"encoding/hex"
	"fmt"
	"os"
	"strings"
)

// MinKeyBytes is the smallest key LoadKey accepts. HMAC-SHA256 is safe
// with short keys only in the information-theoretic sense; operationally
// a cluster secret below 16 bytes is a typo, not a choice.
const MinKeyBytes = 16

// LoadKey resolves the -token-key flag value to key bytes. Two forms:
//
//	env:NAME   — read hex from the environment variable NAME
//	<path>     — read hex from the file at path
//
// The material itself is lowercase/uppercase hex (surrounding whitespace
// trimmed), at least MinKeyBytes decoded bytes. Every shard of a cluster
// must load the same key, or resume tokens minted on one shard fail
// closed on the rest — LoadKey is how that shared secret gets into the
// process without ever appearing on a command line.
func LoadKey(src string) ([]byte, error) {
	if src == "" {
		return nil, fmt.Errorf("token: empty key source")
	}
	var raw string
	if name, ok := strings.CutPrefix(src, "env:"); ok {
		if name == "" {
			return nil, fmt.Errorf("token: empty variable name in %q", src)
		}
		v, found := os.LookupEnv(name)
		if !found {
			return nil, fmt.Errorf("token: environment variable %s not set", name)
		}
		raw = v
	} else {
		b, err := os.ReadFile(src)
		if err != nil {
			return nil, fmt.Errorf("token: reading key file: %w", err)
		}
		raw = string(b)
	}
	key, err := hex.DecodeString(strings.TrimSpace(raw))
	if err != nil {
		return nil, fmt.Errorf("token: key material is not hex: %w", err)
	}
	if len(key) < MinKeyBytes {
		return nil, fmt.Errorf("token: key is %d bytes, need at least %d", len(key), MinKeyBytes)
	}
	return key, nil
}
