package netsim

import (
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestStepperMatchesRun(t *testing.T) {
	g := gen.Cycle(7)
	mk := func() (*Engine, Header) {
		return NewEngine(g, &hopCountHandler{stopAt: 19}), Header{Src: 1, Dir: Forward}
	}
	eng, h := mk()
	runRes, err := eng.Run(1, 0, h, 100)
	if err != nil {
		t.Fatal(err)
	}
	eng2, h2 := mk()
	st, err := eng2.Stepper(1, 0, h2, 100)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for !st.Step() {
		steps++
		if steps > 1000 {
			t.Fatal("stepper did not terminate")
		}
	}
	got := st.Result()
	if got.Final != runRes.Final || got.Hops != runRes.Hops || got.Delivered != runRes.Delivered {
		t.Fatalf("stepper %+v != run %+v", got, runRes)
	}
	if st.Err() != nil {
		t.Fatalf("unexpected error: %v", st.Err())
	}
	// Step after done is a no-op returning true.
	if !st.Step() {
		t.Fatal("Step after done = false")
	}
}

func TestStepperHopBudget(t *testing.T) {
	g := gen.Cycle(5)
	eng := NewEngine(g, &hopCountHandler{stopAt: 1 << 40})
	st, err := eng.Stepper(0, 0, Header{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for !st.Step() {
	}
	if !errors.Is(st.Err(), ErrHopBudget) {
		t.Fatalf("error = %v, want ErrHopBudget", st.Err())
	}
}

func TestStepperMissingStart(t *testing.T) {
	eng := NewEngine(gen.Cycle(3), dropHandler{})
	if _, err := eng.Stepper(42, 0, Header{}, 10); !errors.Is(err, graph.ErrNodeNotFound) {
		t.Fatalf("error = %v", err)
	}
}

func TestStepperHandlerError(t *testing.T) {
	eng := NewEngine(gen.Cycle(3), badHandler{})
	st, err := eng.Stepper(0, 0, Header{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Step() {
		t.Fatal("bad handler should terminate immediately")
	}
	if !errors.Is(st.Err(), ErrNoDecision) {
		t.Fatalf("error = %v, want ErrNoDecision", st.Err())
	}
}

func TestStepperDrop(t *testing.T) {
	eng := NewEngine(gen.Cycle(3), dropHandler{})
	st, err := eng.Stepper(1, 0, Header{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Step() {
		t.Fatal("drop should terminate on first step")
	}
	if st.Result().Delivered || st.Result().Final != 1 {
		t.Fatalf("drop result = %+v", st.Result())
	}
}

func TestStepperTraceAndMemory(t *testing.T) {
	var traced int
	eng := NewEngine(gen.Cycle(5), &hopCountHandler{stopAt: 4},
		WithTrace(func(hop int64, at graph.NodeID, inPort int, h Header) { traced++ }),
		WithMemoryBudget(1024))
	st, err := eng.Stepper(0, 0, Header{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	for !st.Step() {
	}
	if traced != 5 { // 4 hops + terminal activation
		t.Fatalf("trace fired %d times, want 5", traced)
	}
	if st.Result().PeakMemoryBits <= 0 {
		t.Fatal("memory not metered")
	}
}

func TestFaultInjection(t *testing.T) {
	eng := NewEngine(gen.Cycle(6), &hopCountHandler{stopAt: 100},
		WithFault(func(hop int64) bool { return hop == 3 }))
	res, err := eng.Run(0, 0, Header{}, 1000)
	if !errors.Is(err, ErrMessageLost) {
		t.Fatalf("error = %v, want ErrMessageLost", err)
	}
	if res.Delivered {
		t.Fatal("lost message cannot be delivered")
	}
	if res.Hops != 3 {
		t.Fatalf("lost at hop %d, want 3", res.Hops)
	}
}

func TestFaultNeverFiring(t *testing.T) {
	eng := NewEngine(gen.Cycle(6), &hopCountHandler{stopAt: 10},
		WithFault(func(hop int64) bool { return false }))
	res, err := eng.Run(0, 0, Header{}, 1000)
	if err != nil || !res.Delivered {
		t.Fatalf("benign fault hook broke the run: %+v, %v", res, err)
	}
}
