package trace

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for Config.
const (
	// DefaultHopRing is the per-span hop-event tail capacity: the last
	// this-many hops of a walk are kept, older ones are counted but
	// dropped. 256 hops ≈ several epochs of context before a verdict.
	DefaultHopRing = 256
	// DefaultEventCap bounds the per-span timed-event list (round starts,
	// epoch advances, resumptions). Overflow increments a drop counter.
	DefaultEventCap = 128
	// DefaultCapacity is the flight recorder's retained-trace count.
	DefaultCapacity = 256
)

// Config parameterizes a Tracer. The zero value records nothing
// probabilistically (rate 0) but still honors upstream sampled flags and
// retains every sampled trace (SlowThreshold 0).
type Config struct {
	// SampleRate is the probabilistic head-sampling rate in [0,1] applied
	// to requests that arrive without an upstream sampling decision.
	SampleRate float64
	// SlowThreshold is the tail-latency retention trigger: a sampled
	// trace whose total duration reaches it is retained even when it
	// finished cleanly. Zero retains every sampled trace (the debugging
	// and test mode); negative disables latency-triggered retention.
	SlowThreshold time.Duration
	// Capacity is the flight recorder ring size (0 = DefaultCapacity).
	Capacity int
	// HopRing is the per-span hop tail size (0 = DefaultHopRing).
	HopRing int
	// EventCap bounds per-span timed events (0 = DefaultEventCap).
	EventCap int
}

// Tracer makes the per-request sampling decision and owns the flight
// recorder. Safe for concurrent use.
type Tracer struct {
	cfg       Config
	threshold uint64 // sample iff coin < threshold
	rec       *Recorder

	started atomic.Int64
	sampled atomic.Int64
}

// New builds a Tracer with its flight recorder.
func New(cfg Config) *Tracer {
	if cfg.HopRing <= 0 {
		cfg.HopRing = DefaultHopRing
	}
	if cfg.EventCap <= 0 {
		cfg.EventCap = DefaultEventCap
	}
	var thr uint64
	switch {
	case cfg.SampleRate >= 1:
		thr = ^uint64(0)
	case cfg.SampleRate > 0:
		thr = uint64(cfg.SampleRate * float64(1<<63) * 2)
	}
	return &Tracer{cfg: cfg, threshold: thr, rec: NewRecorder(cfg.Capacity)}
}

// Recorder returns the tracer's flight recorder.
func (t *Tracer) Recorder() *Recorder { return t.rec }

// Stats reports how many requests were started and how many were sampled.
func (t *Tracer) Stats() (started, sampled int64) {
	return t.started.Load(), t.sampled.Load()
}

// StartRequest opens the root span of a new trace. parent is the raw
// incoming traceparent header value ("" when absent): a well-formed
// parent contributes the trace ID, the remote parent span, and an
// authoritative sampling decision in both directions — flag 01 records
// even at rate 0, flag 00 suppresses even at rate 1; a malformed one is
// ignored and a fresh identity minted. Only parentless requests flip the
// local SampleRate coin. Requests that end up unsampled return nil, and
// every method on a nil *Trace or *Span is a cheap no-op, so callers
// thread the pointers unconditionally.
func (t *Tracer) StartRequest(name, parent string) *Trace {
	t.started.Add(1)
	var (
		tid      TraceID
		psid     SpanID
		sampled  bool
		upstream bool
	)
	if parent != "" {
		if ptid, ps, flags, err := ParseTraceparent(parent); err == nil {
			// A well-formed traceparent carries the caller's sampling
			// decision, authoritative in both directions: flag 01
			// records even at rate 0, flag 00 suppresses even at rate 1.
			tid, psid = ptid, ps
			sampled = flags&FlagSampled != 0
			upstream = true
		}
	}
	if tid.IsZero() {
		tid = NewTraceID()
	}
	if !sampled && !upstream && t.threshold > 0 {
		// The coin is the trace ID's own entropy, so a retried request
		// with the same trace ID samples consistently.
		coin := splitmix64(uint64(tid[0])<<56 | uint64(tid[7])<<40 |
			uint64(tid[8])<<24 | uint64(tid[15])<<8 | uint64(tid[3]))
		sampled = coin < t.threshold
	}
	if !sampled {
		return nil
	}
	t.sampled.Add(1)
	tr := &Trace{tracer: t, id: tid, parent: psid, start: time.Now()}
	tr.root = tr.newSpan(name, SpanID{})
	return tr
}

// Trace is one sampled request: a root span plus any children opened
// under it. Recording methods are nil-safe; a finished Trace is immutable
// and safe to share.
type Trace struct {
	tracer *Tracer
	id     TraceID
	parent SpanID // remote parent span, when propagated in
	start  time.Time

	mu    sync.Mutex
	spans []*Span // creation order; spans[0] is the root
	root  *Span

	end      time.Time
	err      atomic.Pointer[string]
	retain   atomic.Bool
	finished atomic.Bool
}

// ID returns the trace identity (zero on nil).
func (tr *Trace) ID() TraceID {
	if tr == nil {
		return TraceID{}
	}
	return tr.id
}

// Root returns the request's root span (nil on nil).
func (tr *Trace) Root() *Span {
	if tr == nil {
		return nil
	}
	return tr.root
}

// Sampled reports whether this trace records (false for nil).
func (tr *Trace) Sampled() bool { return tr != nil }

// Traceparent renders the outgoing header value for this trace's root
// span — what a downstream hop should receive ("" on nil).
func (tr *Trace) Traceparent() string {
	if tr == nil {
		return ""
	}
	return Traceparent(tr.id, tr.root.id, FlagSampled)
}

// SetError marks the trace failed, which forces retention.
func (tr *Trace) SetError(msg string) {
	if tr == nil {
		return
	}
	tr.err.Store(&msg)
	tr.retain.Store(true)
}

// ForceRetain marks the trace for retention regardless of latency.
func (tr *Trace) ForceRetain() {
	if tr == nil {
		return
	}
	tr.retain.Store(true)
}

// Err returns the trace-level error message ("" when clean).
func (tr *Trace) Err() string {
	if tr == nil {
		return ""
	}
	if p := tr.err.Load(); p != nil {
		return *p
	}
	return ""
}

// Duration returns the request's total wall time (through Finish, or
// so-far while live).
func (tr *Trace) Duration() time.Duration {
	if tr == nil {
		return 0
	}
	if tr.finished.Load() {
		return tr.end.Sub(tr.start)
	}
	return time.Since(tr.start)
}

// Finish closes the root span, applies the retention policy, and offers
// the trace to the flight recorder. Idempotent; a trace must not be
// mutated afterwards.
func (tr *Trace) Finish() {
	if tr == nil || !tr.finished.CompareAndSwap(false, true) {
		return
	}
	tr.root.End()
	tr.end = time.Now()
	keep := tr.retain.Load()
	if !keep {
		slow := tr.tracer.cfg.SlowThreshold
		keep = slow == 0 || (slow > 0 && tr.end.Sub(tr.start) >= slow)
	}
	if keep {
		tr.tracer.rec.Keep(tr)
	}
}

// newSpan allocates a span and links it into the trace.
func (tr *Trace) newSpan(name string, parent SpanID) *Span {
	sp := &Span{
		trace:  tr,
		id:     NewSpanID(),
		parent: parent,
		name:   name,
		start:  time.Now(),
		events: make([]Event, 0, 8),
		hops:   make([]HopEvent, tr.tracer.cfg.HopRing),
	}
	tr.mu.Lock()
	tr.spans = append(tr.spans, sp)
	tr.mu.Unlock()
	return sp
}

// Attr is one key/value span attribute. Values are JSON-friendly scalars
// (string, int64, float64, bool).
type Attr struct {
	K string
	V any
}

// String/Int/Float/Bool build attributes without the caller spelling the
// struct.
func String(k, v string) Attr        { return Attr{K: k, V: v} }
func Int(k string, v int64) Attr     { return Attr{K: k, V: v} }
func Float(k string, v float64) Attr { return Attr{K: k, V: v} }
func Bool(k string, v bool) Attr     { return Attr{K: k, V: v} }

// Event is one timed low-frequency span event (a round start, an epoch
// advance, a snapshot resumption).
type Event struct {
	Time  time.Time
	Name  string
	Attrs []Attr
}

// HopEvent is one message hop of a walk: the hop ordinal within the span,
// the original-graph node the message stands at after the hop, the header
// index, the serialized header size (Theorem 1's O(log n), observed per
// hop), and the walk direction. Untimed: a clock read per hop would cost
// more than the hop.
type HopEvent struct {
	Hop        int64 `json:"hop"`
	Node       int64 `json:"node"`
	Index      int64 `json:"index"`
	HeaderBits int32 `json:"header_bits"`
	Backward   bool  `json:"backward,omitempty"`
}

// Span is one operation within a trace. A recording span belongs to a
// single goroutine; all methods are nil-safe no-ops so unsampled requests
// thread nil spans at a pointer-test's cost.
type Span struct {
	trace  *Trace
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	end    time.Time
	done   atomic.Bool

	attrs []Attr

	events        []Event
	eventsDropped int64

	// hops is the tail-capture ring: hopTotal counts every hop, the ring
	// keeps the most recent len(hops) of them.
	hops     []HopEvent
	hopTotal int64
}

// Recording reports whether the span records (false for nil) — the guard
// hot paths test once before instrumenting a loop.
func (sp *Span) Recording() bool { return sp != nil }

// ID returns the span identity (zero on nil).
func (sp *Span) ID() SpanID {
	if sp == nil {
		return SpanID{}
	}
	return sp.id
}

// Child opens a sub-span. On a nil receiver it returns nil, keeping the
// whole tree of calls no-op for unsampled requests.
func (sp *Span) Child(name string) *Span {
	if sp == nil {
		return nil
	}
	return sp.trace.newSpan(name, sp.id)
}

// SetAttr records one key/value attribute.
func (sp *Span) SetAttr(attrs ...Attr) {
	if sp == nil {
		return
	}
	sp.attrs = append(sp.attrs, attrs...)
}

// SetName renames the span — the serving layer names request spans after
// the matched route pattern, which is only known after dispatch.
func (sp *Span) SetName(name string) {
	if sp == nil {
		return
	}
	sp.name = name
}

// Event records a timed event, dropping (and counting) beyond the cap.
func (sp *Span) Event(name string, attrs ...Attr) {
	if sp == nil {
		return
	}
	if len(sp.events) >= sp.trace.tracer.cfg.EventCap {
		sp.eventsDropped++
		return
	}
	sp.events = append(sp.events, Event{Time: time.Now(), Name: name, Attrs: attrs})
}

// Hop records one walk hop into the tail ring: constant work, no
// allocation, no clock read.
func (sp *Span) Hop(ev HopEvent) {
	if sp == nil {
		return
	}
	ev.Hop = sp.hopTotal
	sp.hops[sp.hopTotal%int64(len(sp.hops))] = ev
	sp.hopTotal++
}

// HopCount returns the total hops recorded (including dropped ones).
func (sp *Span) HopCount() int64 {
	if sp == nil {
		return 0
	}
	return sp.hopTotal
}

// End closes the span. Idempotent.
func (sp *Span) End() {
	if sp == nil || !sp.done.CompareAndSwap(false, true) {
		return
	}
	sp.end = time.Now()
}

// Duration returns the span's wall time (so-far while live).
func (sp *Span) Duration() time.Duration {
	if sp == nil {
		return 0
	}
	if sp.done.Load() {
		return sp.end.Sub(sp.start)
	}
	return time.Since(sp.start)
}

// ctxKey is the context key for the ambient request span.
type ctxKey struct{}

// NewContext returns ctx carrying sp as the ambient span.
func NewContext(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the ambient span (nil — a valid no-op span — when
// absent).
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}
