// Package adhocroute is a Go implementation of "On ad hoc routing with
// guaranteed delivery" (Mark Braverman, PODC 2008, arXiv:0804.0862): ad hoc
// routing, broadcasting, and component counting on static port-labeled
// networks with guaranteed termination, O(log n) node memory, and O(log n)
// message overhead, via universal exploration sequences.
//
// The package is a thin facade over the implementation packages:
//
//	internal/engine — the prepared routing engine (compile once, query concurrently)
//	internal/route  — Algorithm Route (§3), broadcast, hybrid stepping
//	internal/count  — Algorithm CountNodes (§4)
//	internal/hybrid — Corollary 2 composition
//	internal/degred — the Figure 1 degree reduction
//	internal/ues    — exploration sequences
//	internal/zigzag — the Reingold derandomization substrate
//
// Quickstart:
//
//	nw := adhocroute.NewNetwork()
//	for i := 0; i < 4; i++ {
//		_ = nw.AddNode(adhocroute.NodeID(i))
//	}
//	_ = nw.AddLink(0, 1)
//	_ = nw.AddLink(1, 2)
//	_ = nw.AddLink(2, 3)
//	res, err := nw.Route(0, 3)
//	// res.Status == adhocroute.StatusSuccess; res.Hops counts traversals.
//
// For sustained traffic, compile the network once and query the returned
// Router concurrently (see Network.Compile); cmd/adhocd serves a compiled
// engine over HTTP.
package adhocroute

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/count"
	"repro/internal/degred"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/hybrid"
	"repro/internal/netsim"
	"repro/internal/route"
)

// NodeID is a node's universal name, drawn from a namespace of size n (the
// paper's model: e.g. a physical location or an IPv4 address).
type NodeID int64

// Status is a routing verdict.
type Status int

// Verdicts: StatusSuccess means the message reached t and the confirmation
// returned; StatusFailure means t is provably outside s's component.
const (
	StatusNone Status = iota
	StatusSuccess
	StatusFailure
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case StatusNone:
		return "none"
	case StatusSuccess:
		return "success"
	case StatusFailure:
		return "failure"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// ErrNodeExists and friends re-export the error taxonomy callers match on.
var (
	ErrNodeExists   = graph.ErrNodeExists
	ErrNodeNotFound = graph.ErrNodeNotFound
)

// Network is a static ad hoc network under construction or in use. It is
// not safe for concurrent mutation; routing calls are read-only and may be
// issued concurrently once construction is done.
//
// One-shot routing calls lazily derive the Figure 1 degree reduction once
// per topology and reuse it across calls; mutating the network invalidates
// the cache. For sustained query traffic, Compile the network once and
// query the returned Router.
type Network struct {
	g   *graph.Graph
	pos map[graph.NodeID]geom.Point

	// mu guards the lazily-derived prepared state below; topology
	// mutations reset it.
	mu  sync.Mutex
	red *degred.Reduced
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{g: graph.New(), pos: make(map[graph.NodeID]geom.Point)}
}

// AddNode adds a node with the given universal name.
func (nw *Network) AddNode(id NodeID) error {
	nw.invalidate()
	return nw.g.AddNode(graph.NodeID(id))
}

// AddLink adds an undirected link between two existing nodes. Parallel
// links and self-loops are allowed (the model is a multigraph).
func (nw *Network) AddLink(a, b NodeID) error {
	nw.invalidate()
	_, _, err := nw.g.AddEdge(graph.NodeID(a), graph.NodeID(b))
	return err
}

// invalidate drops the prepared state after a topology mutation. Routers
// already compiled keep serving the topology they were compiled for.
func (nw *Network) invalidate() {
	nw.mu.Lock()
	nw.red = nil
	nw.mu.Unlock()
}

// reduction returns the cached degree reduction of the current topology,
// deriving it on first use. Safe for concurrent routing calls.
func (nw *Network) reduction() (*degred.Reduced, error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.red == nil {
		red, err := degred.Reduce(nw.g)
		if err != nil {
			return nil, err
		}
		nw.red = red
	}
	return nw.red, nil
}

// router builds a route.Router for the given per-call options, reusing the
// cached reduction (the expensive part) whenever the options allow it.
func (nw *Network) router(cfg options) (*route.Router, error) {
	rcfg := cfg.routeConfig()
	if rcfg.NoDegreeReduction {
		return route.New(nw.g, rcfg)
	}
	red, err := nw.reduction()
	if err != nil {
		return nil, err
	}
	return route.NewFromReduced(nw.g, red, rcfg)
}

// SetPosition records a node position (used by geometric tooling and the
// position-based baselines; routing itself never reads positions).
func (nw *Network) SetPosition(id NodeID, x, y, z float64) error {
	if !nw.g.HasNode(graph.NodeID(id)) {
		return fmt.Errorf("adhocroute: %w: %d", ErrNodeNotFound, id)
	}
	nw.pos[graph.NodeID(id)] = geom.Point{X: x, Y: y, Z: z}
	return nil
}

// NumNodes returns the node count.
func (nw *Network) NumNodes() int { return nw.g.NumNodes() }

// NumLinks returns the link count.
func (nw *Network) NumLinks() int { return nw.g.NumEdges() }

// Nodes returns all node IDs in insertion order.
func (nw *Network) Nodes() []NodeID {
	ids := nw.g.Nodes()
	out := make([]NodeID, len(ids))
	for i, id := range ids {
		out[i] = NodeID(id)
	}
	return out
}

// Neighbors returns the IDs adjacent to id (with multiplicity, in port
// order).
func (nw *Network) Neighbors(id NodeID) ([]NodeID, error) {
	v := graph.NodeID(id)
	if !nw.g.HasNode(v) {
		return nil, fmt.Errorf("adhocroute: %w: %d", ErrNodeNotFound, id)
	}
	out := make([]NodeID, 0, nw.g.Degree(v))
	for p := 0; p < nw.g.Degree(v); p++ {
		h, err := nw.g.Neighbor(v, p)
		if err != nil {
			return nil, err
		}
		out = append(out, NodeID(h.To))
	}
	return out, nil
}

// ConnectedTo reports whether a and b are in the same component, by oracle
// BFS (ground truth for tests and tooling; the routing algorithms never
// use it).
func (nw *Network) ConnectedTo(a, b NodeID) bool {
	dist := nw.g.BFSDist(graph.NodeID(a))
	_, ok := dist[graph.NodeID(b)]
	return ok
}

// Save writes the network's graph in the text codec.
func (nw *Network) Save(w io.Writer) error { return nw.g.Encode(w) }

// Load reads a network from the text codec.
func Load(r io.Reader) (*Network, error) {
	g, err := graph.Decode(r)
	if err != nil {
		return nil, err
	}
	return &Network{g: g, pos: make(map[graph.NodeID]geom.Point)}, nil
}

// NewUnitDisk2D generates a random 2-D unit-disk network: n nodes uniform
// in the unit square, links within radius. Deterministic in seed.
func NewUnitDisk2D(n int, radius float64, seed uint64) *Network {
	ud := gen.UDG2D(n, radius, seed)
	return &Network{g: ud.G, pos: ud.Pos}
}

// NewUnitDisk3D generates a random 3-D unit-ball network — the topology
// class for which geometric routing has no delivery guarantee and this
// algorithm does.
func NewUnitDisk3D(n int, radius float64, seed uint64) *Network {
	ud := gen.UDG3D(n, radius, seed)
	return &Network{g: ud.G, pos: ud.Pos}
}

// NewGrid generates a rows×cols grid network.
func NewGrid(rows, cols int) *Network {
	return &Network{g: gen.Grid(rows, cols), pos: make(map[graph.NodeID]geom.Point)}
}

// RouteResult reports a Route call.
type RouteResult struct {
	// Status is the verdict s learns: success or (definitive) failure.
	Status Status
	// Hops is the total number of link traversals, including backtracking
	// and all doubling rounds.
	Hops int64
	// ForwardSteps is the exploration index at which t was found.
	ForwardSteps int64
	// Rounds is the number of doubling rounds used.
	Rounds int
	// Bound is the final sequence size bound.
	Bound int
	// HeaderBits is the largest message header observed (Θ(log n)).
	HeaderBits int
	// NodeMemoryBits is the peak per-activation node memory (Θ(log n),
	// enforced).
	NodeMemoryBits int
}

// Route sends a message from s to t with guaranteed termination: it
// returns StatusSuccess if and only if t is reachable from s, and
// StatusFailure otherwise — t need not even exist. Intermediate nodes hold
// no routing state; the message header carries O(log n) bits.
func (nw *Network) Route(s, t NodeID, opts ...Option) (*RouteResult, error) {
	r, err := nw.router(buildOptions(opts))
	if err != nil {
		return nil, err
	}
	res, err := r.Route(graph.NodeID(s), graph.NodeID(t))
	if err != nil {
		return nil, err
	}
	return &RouteResult{
		Status:         Status(res.Status),
		Hops:           res.Hops,
		ForwardSteps:   res.ForwardSteps,
		Rounds:         len(res.Rounds),
		Bound:          res.Bound,
		HeaderBits:     res.MaxHeaderBits,
		NodeMemoryBits: res.PeakMemoryBits,
	}, nil
}

// RouteWithPath routes s→t and additionally returns, on success, the
// sequence of nodes the forward exploration visited from s to t
// (consecutive duplicates collapsed; exploration walks may revisit nodes).
// The path is reconstructed by local replay and costs no extra messages.
func (nw *Network) RouteWithPath(s, t NodeID, opts ...Option) (*RouteResult, []NodeID, error) {
	r, err := nw.router(buildOptions(opts))
	if err != nil {
		return nil, nil, err
	}
	res, path, err := r.RouteWithPath(graph.NodeID(s), graph.NodeID(t))
	if err != nil {
		return nil, nil, err
	}
	out := &RouteResult{
		Status:         Status(res.Status),
		Hops:           res.Hops,
		ForwardSteps:   res.ForwardSteps,
		Rounds:         len(res.Rounds),
		Bound:          res.Bound,
		HeaderBits:     res.MaxHeaderBits,
		NodeMemoryBits: res.PeakMemoryBits,
	}
	if path == nil {
		return out, nil, nil
	}
	pub := make([]NodeID, len(path))
	for i, v := range path {
		pub[i] = NodeID(v)
	}
	return out, pub, nil
}

// BroadcastResult reports a Broadcast call.
type BroadcastResult struct {
	// Reached is the number of distinct nodes that received the payload
	// (the whole component of s on success).
	Reached int
	// Nodes lists the reached node IDs in increasing order.
	Nodes []NodeID
	// Hops is the total number of link traversals.
	Hops int64
	// Rounds is the number of doubling rounds used.
	Rounds int
}

// Broadcast delivers a payload from s to every node in s's component and
// returns once the completion confirmation reaches s.
func (nw *Network) Broadcast(s NodeID, opts ...Option) (*BroadcastResult, error) {
	r, err := nw.router(buildOptions(opts))
	if err != nil {
		return nil, err
	}
	res, err := r.Broadcast(graph.NodeID(s))
	if err != nil {
		return nil, err
	}
	nodes := make([]NodeID, len(res.Nodes))
	for i, v := range res.Nodes {
		nodes[i] = NodeID(v)
	}
	return &BroadcastResult{
		Reached: res.Reached,
		Nodes:   nodes,
		Hops:    res.Hops,
		Rounds:  len(res.Rounds),
	}, nil
}

// CountResult reports a CountComponent call.
type CountResult struct {
	// Count is |C_s|: the exact number of nodes in s's component.
	Count int
	// ReducedCount is the size of the component in the 3-regular reduction
	// (the bound usable for subsequent routing).
	ReducedCount int
	// Rounds is the number of doubling rounds.
	Rounds int
	// MessageHops is the message cost (message-faithful mode only).
	MessageHops int64
}

// CountComponent computes the exact size of s's connected component with
// no prior knowledge of the network, per §4 of the paper.
func (nw *Network) CountComponent(s NodeID, opts ...Option) (*CountResult, error) {
	cfg := buildOptions(opts)
	red, err := nw.reduction()
	if err != nil {
		return nil, err
	}
	c, err := count.NewFromReduced(nw.g, red, cfg.countConfig())
	if err != nil {
		return nil, err
	}
	res, err := c.Count(graph.NodeID(s))
	if err != nil {
		return nil, err
	}
	return &CountResult{
		Count:        res.OriginalCount,
		ReducedCount: res.ReducedCount,
		Rounds:       res.Rounds,
		MessageHops:  res.Hops,
	}, nil
}

// HybridResult reports a RouteHybrid call.
type HybridResult struct {
	// Status is the verdict (success, or definitive failure).
	Status Status
	// Winner names the component that terminated the race:
	// "random-walk" or "guaranteed-ues".
	Winner string
	// CombinedSteps is the interleaved total cost.
	CombinedSteps int64
}

// RouteHybrid routes s→t with the Corollary 2 composition: a random-walk
// router raced step-for-step against the guaranteed router, keeping the
// probabilistic router's expected speed and the guaranteed router's
// termination.
func (nw *Network) RouteHybrid(s, t NodeID, opts ...Option) (*HybridResult, error) {
	cfg := buildOptions(opts)
	r, err := nw.router(cfg)
	if err != nil {
		return nil, err
	}
	res, err := hybrid.RouteHybridWith(r, graph.NodeID(s), graph.NodeID(t), cfg.seed^0x5eed)
	if err != nil {
		return nil, err
	}
	return &HybridResult{
		Status:        Status(res.Status),
		Winner:        res.Winner,
		CombinedSteps: res.CombinedSteps,
	}, nil
}

// statusMirror documents (and api_test.go verifies) that the public Status
// values mirror netsim's, so the conversions above are value-preserving.
const statusMirror = Status(netsim.StatusSuccess) == StatusSuccess &&
	Status(netsim.StatusFailure) == StatusFailure &&
	Status(netsim.StatusNone) == StatusNone
