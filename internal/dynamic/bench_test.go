package dynamic

import (
	"fmt"
	"testing"

	"repro/internal/degred"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/route"
)

// BenchmarkDynamicRoute measures one s→t query over a churning world,
// including the world setup (clone + seeded compile cache), the epoch
// advances, and every churn-forced recompile + header migration — the
// full serving cost of a dynamic query from a prepared engine's
// artifacts.
func BenchmarkDynamicRoute(b *testing.B) {
	g := gen.Torus(5, 5)
	red, err := degred.Reduce(g)
	if err != nil {
		b.Fatal(err)
	}
	red.Flat()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := NewWorldFromCompiled(g, red, &MarkovLinks{Seed: uint64(i), PDown: 0.08, PUp: 0.5})
		if _, err := NewRouter(w, Config{Seed: 3, HopsPerEpoch: 32}).Route(0, 18); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynamicRouteStatic is the overhead baseline: the same query
// over a never-changing world, isolating what the hop-interleaved epoch
// clock and world plumbing cost relative to route.Router on the identical
// walk (compare BenchmarkPreparedRoute).
func BenchmarkDynamicRouteStatic(b *testing.B) {
	g := gen.Torus(5, 5)
	red, err := degred.Reduce(g)
	if err != nil {
		b.Fatal(err)
	}
	red.Flat()
	w := NewWorldFromCompiled(g, red, Static{})
	r := NewRouter(w, Config{Seed: 3, HopsPerEpoch: 32})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Route(0, 18); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEpochRecompile measures the per-epoch cost a topology change
// actually incurs: one mutation plus the compile-cache miss (degree
// reduction + flat CSR snapshot) on a 64-node torus.
func BenchmarkEpochRecompile(b *testing.B) {
	w := NewWorld(gen.Torus(8, 8), nil)
	if _, _, err := w.Compiled(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			if err := w.RemoveEdgeBetween(0, 1); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, _, err := w.AddEdge(0, 1); err != nil {
				b.Fatal(err)
			}
		}
		if _, _, err := w.Compiled(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEpochCacheHit is the warm-path counterpart: an epoch that
// leaves the topology untouched must cost essentially nothing.
func BenchmarkEpochCacheHit(b *testing.B) {
	w := NewWorld(gen.Torus(8, 8), nil)
	if _, _, err := w.Compiled(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := w.Compiled(); err != nil {
			b.Fatal(err)
		}
	}
}

// sharedBenchEpochs is the churn history both world-reuse benchmarks
// replay before querying, so the pair isolates exactly the per-request
// world cost the serving layer avoids by sharing.
const sharedBenchEpochs = 10

// BenchmarkPrivateWorldRoute is the one-world-per-request serving shape
// (PR 3's /v1/dynamic): every query pays a fresh clone, the full churn
// history replay, and the recompiles that history forces, before a
// frozen-clock route.
func BenchmarkPrivateWorldRoute(b *testing.B) {
	g := gen.Torus(5, 5)
	red, err := degred.Reduce(g)
	if err != nil {
		b.Fatal(err)
	}
	red.Flat()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := NewWorldFromCompiled(g, red, &EdgeChurn{Seed: 11, PDrop: 0.08, AddRate: 1})
		for e := 0; e < sharedBenchEpochs; e++ {
			if err := w.Advance(Probe{}); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := NewRouter(w, Config{Seed: 3, HopsPerEpoch: -1}).Route(0, 18); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSharedWorldRoute is the named-world serving shape
// (/v1/worlds/{id}/route): the world evolved once, its compile cache is
// warm, and each query is just a route over the shared snapshot — the
// per-request world construction is gone.
func BenchmarkSharedWorldRoute(b *testing.B) {
	g := gen.Torus(5, 5)
	red, err := degred.Reduce(g)
	if err != nil {
		b.Fatal(err)
	}
	red.Flat()
	w := NewWorldFromCompiled(g, red, &EdgeChurn{Seed: 11, PDrop: 0.08, AddRate: 1})
	for e := 0; e < sharedBenchEpochs; e++ {
		if err := w.Advance(Probe{}); err != nil {
			b.Fatal(err)
		}
	}
	if _, _, err := w.Compiled(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewRouter(w, Config{Seed: 3, HopsPerEpoch: -1}).Route(0, 18); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSharedWorldRouteParallel is the same shared world under
// concurrent clients, measuring what the world lock costs when every
// query reads one warm snapshot.
func BenchmarkSharedWorldRouteParallel(b *testing.B) {
	g := gen.Torus(5, 5)
	red, err := degred.Reduce(g)
	if err != nil {
		b.Fatal(err)
	}
	red.Flat()
	w := NewWorldFromCompiled(g, red, &EdgeChurn{Seed: 11, PDrop: 0.08, AddRate: 1})
	for e := 0; e < sharedBenchEpochs; e++ {
		if err := w.Advance(Probe{}); err != nil {
			b.Fatal(err)
		}
	}
	if _, _, err := w.Compiled(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := NewRouter(w, Config{Seed: 3, HopsPerEpoch: -1}).Route(0, 18); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStaticReference anchors the comparison: the static prepared
// router on the same graph and query.
func BenchmarkStaticReference(b *testing.B) {
	g := gen.Torus(5, 5)
	r, err := route.New(g, route.Config{Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Route(0, 18); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeltaRecompile pins the tentpole claim: with a fixed-size diff
// (one link down, one link up between epochs), a delta recompile costs
// O(diff) while the full rebuild costs O(graph) — so as the world grows
// 10× and 100×, the delta path's per-epoch cost should stay roughly flat
// while the full path's grows with the graph. CI guards the ratio at the
// largest size.
func BenchmarkDeltaRecompile(b *testing.B) {
	for _, side := range []int{10, 32, 100} {
		for _, path := range []string{"delta", "full"} {
			b.Run(fmt.Sprintf("n=%d/%s", side*side, path), func(b *testing.B) {
				w := NewWorld(gen.Torus(side, side), nil)
				w.SetDeltaCompilation(path == "delta")
				if _, _, err := w.Compiled(); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := w.RemoveEdgeBetween(0, 1); err != nil {
						b.Fatal(err)
					}
					if _, _, err := w.AddEdge(0, 1); err != nil {
						b.Fatal(err)
					}
					if _, _, err := w.Compiled(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkRemoveEdgeBetweenHighDegree measures the schedule-facing edge
// removal on a hub node, where the old implementation paid one locked
// Neighbor call (map lookup + bounds checks) per port scanned; the
// journal-era PortTo helper does one adjacency lookup and scans the slice.
func BenchmarkRemoveEdgeBetweenHighDegree(b *testing.B) {
	for _, deg := range []int{64, 1024} {
		b.Run(fmt.Sprintf("deg=%d", deg), func(b *testing.B) {
			g := graph.New()
			g.EnsureNode(0)
			for i := 1; i <= deg; i++ {
				g.EnsureNode(graph.NodeID(i))
				if _, _, err := g.AddEdge(0, graph.NodeID(i)); err != nil {
					b.Fatal(err)
				}
			}
			w := NewWorld(g, nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Hit spokes near the end of the hub's port row — the
				// expensive half of the scan.
				target := graph.NodeID(deg - i%8)
				if err := w.RemoveEdgeBetween(0, target); err != nil {
					b.Fatal(err)
				}
				if _, _, err := w.AddEdge(0, target); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
