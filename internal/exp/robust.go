package exp

import (
	"errors"
	"fmt"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/prng"
	"repro/internal/route"
)

// E10StaticAssumption stress-tests the paper's static-network assumption
// (§1.1: "the graph does not change during the delivery process"). Two
// violations are injected:
//
//   - message loss mid-walk (a link transiently fails): the run must
//     surface netsim.ErrMessageLost — never a wrong verdict — and a simple
//     retry loop recovers;
//   - topology churn *between* delivery attempts (edges removed): each
//     attempt executes on a static snapshot, so verdicts must match the
//     snapshot's BFS oracle exactly.
//
// This experiment extends the paper rather than reproducing it: it
// quantifies how much reliability the practical retry wrapper recovers
// when the model's assumption is relaxed at attempt granularity.
func E10StaticAssumption(o Options) (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "Extension: violating the static-network assumption",
		Anchor: "§1.1: \"we assume that the network is static\" — what breaks, and how loudly",
		Columns: []string{"scenario", "attempts", "lost messages", "retries to success",
			"wrong verdicts", "oracle agreement"},
	}
	attempts := o.reps(30, 8)

	// Scenario 1: transient message loss with retry.
	{
		g := gen.Grid(5, 5)
		src := prng.New(o.Seed ^ 0x10)
		lost, retries, wrong := 0, 0, 0
		for a := 0; a < attempts; a++ {
			target := graph.NodeID(1 + src.Intn(24))
			// Each attempt: fault fires once at a random hop in the first
			// try, then retries run clean.
			faultHop := int64(1 + src.Intn(400))
			try := 0
			for {
				try++
				cfg := route.Config{Seed: o.Seed + uint64(a)}
				if try == 1 {
					cfg.FaultHook = func(hop int64) bool { return hop == faultHop }
				}
				r, err := route.New(g, cfg)
				if err != nil {
					return nil, err
				}
				res, err := r.Route(0, target)
				if errors.Is(err, netsim.ErrMessageLost) {
					lost++
					retries++
					continue // retry with a clean network
				}
				if err != nil {
					return nil, fmt.Errorf("E10 loss scenario: %w", err)
				}
				if res.Status != netsim.StatusSuccess {
					wrong++
				}
				break
			}
		}
		t.AddRow("transient loss + retry", fmtInt(attempts), fmtInt(lost),
			fmtInt(retries), fmtInt(wrong), fmtRate(attempts-wrong, attempts))
		if wrong > 0 {
			return nil, fmt.Errorf("E10: %d wrong verdicts under message loss", wrong)
		}
	}

	// Scenario 2: churn between attempts — remove random edges, re-route,
	// compare against the snapshot oracle.
	{
		g := gen.Grid(5, 5)
		src := prng.New(o.Seed ^ 0x20)
		wrong := 0
		for a := 0; a < attempts; a++ {
			// Remove one random edge per attempt (keeping the graph valid).
			var v graph.NodeID = -1
			for try := 0; try < 50; try++ {
				cand := graph.NodeID(src.Intn(25))
				if g.Degree(cand) > 0 {
					v = cand
					break
				}
			}
			if v >= 0 {
				if err := g.RemoveEdge(v, src.Intn(g.Degree(v))); err != nil {
					return nil, err
				}
			}
			target := graph.NodeID(1 + src.Intn(24))
			r, err := route.New(g, route.Config{Seed: o.Seed + uint64(a)})
			if err != nil {
				return nil, err
			}
			res, err := r.Route(0, target)
			if err != nil {
				return nil, fmt.Errorf("E10 churn scenario: %w", err)
			}
			want := netsim.StatusFailure
			if _, reachable := g.BFSDist(0)[target]; reachable {
				want = netsim.StatusSuccess
			}
			if res.Status != want {
				wrong++
			}
		}
		t.AddRow("edge churn between attempts", fmtInt(attempts), "0", "0",
			fmtInt(wrong), fmtRate(attempts-wrong, attempts))
		if wrong > 0 {
			return nil, fmt.Errorf("E10: %d wrong verdicts under churn", wrong)
		}
	}

	t.AddNote("Message loss is always surfaced as an explicit error (the token vanished), never as a verdict; one retry recovers.")
	t.AddNote("Per-attempt atomicity is the real requirement: any static snapshot yields oracle-exact verdicts, so the algorithm tolerates churn between deliveries out of the box.")
	return t, nil
}
