package hybrid

// flatdiff_test.go pins the Corollary 2 race to identical outcomes whether
// the guaranteed prober steps the compiled flat walker or the netsim
// reference engine: same winner, same verdict, same step split.

import (
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/route"
)

func TestHybridFlatMatchesReference(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		g := gen.Grid(4, 5)
		g.ShuffleLabels(seed)
		fast, err := route.New(g, route.Config{Seed: seed, LengthFactor: 1})
		if err != nil {
			t.Fatal(err)
		}
		slow, err := route.New(g, route.Config{Seed: seed, LengthFactor: 1, DisableFlat: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, dst := range []graph.NodeID{19, 999983} {
			rf, ef := RouteHybridWith(fast, 0, dst, seed^0x9e)
			rs, es := RouteHybridWith(slow, 0, dst, seed^0x9e)
			if (ef == nil) != (es == nil) {
				t.Fatalf("hybrid 0->%d: flat err %v, reference err %v", dst, ef, es)
			}
			if ef != nil {
				continue
			}
			if !reflect.DeepEqual(rf, rs) {
				t.Fatalf("hybrid 0->%d diverged:\nflat:      %+v\nreference: %+v", dst, rf, rs)
			}
		}
	}
}
