package hybrid

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/route"
)

// TestGreedyGuaranteedRace runs the Corollary 2 composition with the
// geometric greedy router as the probabilistic component — the more
// realistic pairing for unit-disk networks: greedy is extremely fast when
// it works and dead at voids, where the guaranteed side takes over.
func TestGreedyGuaranteedRace(t *testing.T) {
	raced, greedyWins, guaranteedWins := 0, 0, 0
	for seed := uint64(0); seed < 8; seed++ {
		ud := gen.UDG2D(50, 0.22, seed)
		comp := ud.G.ComponentOf(0)
		if len(comp) < 6 {
			continue
		}
		d := comp[len(comp)-1]
		r, err := route.New(ud.G, route.Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		prob, err := NewGreedy(ud, 0, d)
		if err != nil {
			t.Fatal(err)
		}
		guar, err := NewGuaranteed(r, 0, d)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Race(prob, guar, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != netsim.StatusSuccess {
			t.Fatalf("seed %d: connected pair not delivered: %+v", seed, res)
		}
		raced++
		switch res.Winner {
		case "greedy":
			greedyWins++
		case "guaranteed-ues":
			guaranteedWins++
		default:
			t.Fatalf("unknown winner %q", res.Winner)
		}
	}
	if raced == 0 {
		t.Skip("no usable instances")
	}
	// Both outcomes should be possible in principle; at minimum every race
	// must terminate successfully, which the loop already asserted.
	t.Logf("races: %d, greedy wins: %d, guaranteed wins: %d", raced, greedyWins, guaranteedWins)
}

// TestGreedyStuckGuaranteedFinishes pins the takeover behaviour on a
// hand-built void where greedy must get stuck.
func TestGreedyStuckGuaranteedFinishes(t *testing.T) {
	ng := voidInstance()
	r, err := route.New(ng.G, route.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	prob, err := NewGreedy(ng, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	guar, err := NewGuaranteed(r, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Race(prob, guar, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != netsim.StatusSuccess {
		t.Fatalf("race failed: %+v", res)
	}
	if res.Winner != "guaranteed-ues" {
		t.Fatalf("winner = %q, want guaranteed (greedy is stuck at the void)", res.Winner)
	}
	if !prob.Done() || prob.Delivered() {
		t.Fatal("greedy should have terminated stuck")
	}
}

// voidInstance reuses the geometry of the baseline tests: the only
// neighbour of the source is farther from the target than the source is,
// so greedy forwarding is stuck immediately.
func voidInstance() *gen.Geometric {
	return &gen.Geometric{
		G: gen.Path(4),
		Pos: map[graph.NodeID]geom.Point{
			0: {X: 0, Y: 0},
			1: {X: 0, Y: 3},
			2: {X: 2, Y: 3},
			3: {X: 1, Y: 0},
		},
	}
}
