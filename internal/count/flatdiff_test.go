package count

// flatdiff_test.go pins the compiled flat counting rounds to the generic
// ModeLocal reference on random labeled multigraphs: identical counts,
// bounds, round schedules, and Retrieve accounting.

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/prng"
)

// randomMultigraph mirrors the route package's differential generator:
// arbitrary multigraphs with self-loops, parallel edges, possibly isolated
// nodes, and shuffled labels.
func randomMultigraph(seed uint64, n, extra int) *graph.Graph {
	src := prng.New(seed)
	g := graph.New()
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = graph.NodeID(i*5 + 2)
		g.EnsureNode(ids[i])
	}
	for e := 0; e < n+extra; e++ {
		if _, _, err := g.AddEdge(ids[src.Intn(n)], ids[src.Intn(n)]); err != nil {
			panic(err)
		}
	}
	g.ShuffleLabels(seed ^ 0x5150)
	return g
}

func TestFlatCountMatchesReference(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		g := randomMultigraph(seed, 6+int(seed%6), int(seed%7))
		fast, err := New(g, Config{Seed: seed, LengthFactor: 1})
		if err != nil {
			t.Fatal(err)
		}
		if fast.flat == nil {
			t.Fatal("fast counter has no flat snapshot")
		}
		slow, err := New(g, Config{Seed: seed, LengthFactor: 1, DisableFlat: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range g.SortedNodes() {
			rf, ef := fast.Count(s)
			rs, es := slow.Count(s)
			if (ef == nil) != (es == nil) {
				t.Fatalf("count at %d: flat err %v, reference err %v", s, ef, es)
			}
			if ef != nil {
				continue
			}
			if !reflect.DeepEqual(rf, rs) {
				t.Fatalf("count at %d diverged:\nflat:      %+v\nreference: %+v", s, rf, rs)
			}
		}
	}
}
