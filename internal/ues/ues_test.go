package ues

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestNextPrevPortInverse(t *testing.T) {
	f := func(degRaw uint8, inRaw uint8, tRaw int16) bool {
		deg := int(degRaw%8) + 1
		in := int(inRaw) % deg
		dir := int(tRaw)
		exit := NextPort(deg, in, dir)
		if exit < 0 || exit >= deg {
			return false
		}
		return PrevPort(deg, exit, dir) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNextPortExamples(t *testing.T) {
	tests := []struct {
		deg, in, dir, want int
	}{
		{3, 0, 0, 0},
		{3, 0, 1, 1},
		{3, 2, 2, 1},
		{3, 2, -1, 1},
		{5, 4, 3, 2},
		{1, 0, 7, 0},
	}
	for _, tt := range tests {
		if got := NextPort(tt.deg, tt.in, tt.dir); got != tt.want {
			t.Errorf("NextPort(%d,%d,%d) = %d, want %d", tt.deg, tt.in, tt.dir, got, tt.want)
		}
	}
}

func TestStepOnCycle(t *testing.T) {
	// On a cycle built by gen.Cycle, node i has port 0 toward i-1 side or
	// i+1 depending on construction; verify mechanically via Neighbor.
	g := gen.Cycle(5)
	pos := Start(2)
	next, err := Step(g, pos, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Exit port = (0+1) mod 2 = 1.
	h, _ := g.Neighbor(2, 1)
	if next.Node != h.To || next.InPort != h.ToPort {
		t.Fatalf("Step = %+v, want %+v", next, h)
	}
}

func TestStepErrors(t *testing.T) {
	g := graph.New()
	g.EnsureNode(0) // isolated: degree 0
	if _, err := Step(g, Start(0), 1); err == nil {
		t.Fatal("step from isolated node should fail")
	}
	if _, err := Step(g, Start(99), 1); err == nil {
		t.Fatal("step from missing node should fail")
	}
}

// TestStepBackInvertsStep is the reversibility property of §2: knowing t_i
// and the post-step position recovers the pre-step position.
func TestStepBackInvertsStep(t *testing.T) {
	corpora := []*graph.Graph{
		gen.Complete(4),
		gen.Petersen(),
		gen.Grid(3, 3),
		gen.Star(5),
	}
	for _, g := range corpora {
		g.ForEachNode(func(v graph.NodeID) {
			for p := 0; p < g.Degree(v); p++ {
				for dir := 0; dir < 3; dir++ {
					pos := Position{Node: v, InPort: p}
					next, err := Step(g, pos, dir)
					if err != nil {
						t.Fatal(err)
					}
					back, err := StepBack(g, next, dir)
					if err != nil {
						t.Fatal(err)
					}
					if back != pos {
						t.Fatalf("StepBack(Step(%+v,%d)) = %+v", pos, dir, back)
					}
				}
			}
		})
	}
}

// TestWalkReversal re-traces a whole walk backwards, the mechanism behind
// the confirmation message in Algorithm Route.
func TestWalkReversal(t *testing.T) {
	g := gen.Petersen()
	g.ShuffleLabels(42)
	seq := &Pseudorandom{Seed: 7, N: 10, Base: 3}
	const steps = 200
	trace, err := Trace(g, 3, seq, steps)
	if err != nil {
		t.Fatal(err)
	}
	pos := trace[len(trace)-1]
	for i := steps; i >= 1; i-- {
		prev, err := StepBack(g, pos, seq.At(i))
		if err != nil {
			t.Fatal(err)
		}
		if prev != trace[i-1] {
			t.Fatalf("reversal diverged at step %d: %+v vs %+v", i, prev, trace[i-1])
		}
		pos = prev
	}
	if pos != Start(3) {
		t.Fatalf("reversal did not return to start: %+v", pos)
	}
}

func TestTraceLengthCap(t *testing.T) {
	g := gen.Complete(4)
	seq := Precomputed{0, 1, 2}
	trace, err := Trace(g, 0, seq, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 4 { // start + 3 steps
		t.Fatalf("trace length = %d, want 4", len(trace))
	}
}

func TestCoverStepsSingleton(t *testing.T) {
	g := graph.New()
	g.EnsureNode(0)
	if _, _, err := g.AddEdge(0, 0); err != nil {
		t.Fatal(err)
	}
	steps, ok, err := CoverSteps(g, Start(0), Precomputed{0})
	if err != nil || !ok || steps != 0 {
		t.Fatalf("singleton cover = (%d,%v,%v), want (0,true,nil)", steps, ok, err)
	}
}

func TestCoverStepsMissingNode(t *testing.T) {
	g := gen.Complete(4)
	if _, _, err := CoverSteps(g, Start(99), Precomputed{0}); !errors.Is(err, graph.ErrNodeNotFound) {
		t.Fatalf("error = %v, want ErrNodeNotFound", err)
	}
}

func TestCoverStepsExhaustedSequence(t *testing.T) {
	g := gen.Path(10)
	_, ok, err := CoverSteps(g, Start(0), Precomputed{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("2-step sequence cannot cover a 10-path")
	}
}

func TestCoversOnlyComponent(t *testing.T) {
	// Coverage concerns only the start component.
	u, err := gen.DisjointUnion(gen.Complete(4), gen.Complete(4), 10)
	if err != nil {
		t.Fatal(err)
	}
	seq := &Pseudorandom{Seed: 3, N: 8, Base: 3}
	ok, err := Covers(u, 0, seq)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("sequence should cover the K4 component")
	}
}

func TestPseudorandomDeterministicAndStateless(t *testing.T) {
	a := &Pseudorandom{Seed: 5, N: 16, Base: 3}
	b := &Pseudorandom{Seed: 5, N: 16, Base: 3}
	for i := a.Len(); i >= 1; i -= 97 {
		if a.At(i) != b.At(i) {
			t.Fatalf("same-seed sequences differ at %d", i)
		}
	}
	c := &Pseudorandom{Seed: 6, N: 16, Base: 3}
	same := 0
	for i := 1; i <= 300; i++ {
		if a.At(i) == c.At(i) {
			same++
		}
	}
	if same > 150 {
		t.Fatalf("different seeds agree at %d/300 positions", same)
	}
}

func TestPseudorandomBase(t *testing.T) {
	s := &Pseudorandom{Seed: 1, N: 8, Base: 3}
	for i := 1; i <= 1000; i++ {
		if v := s.At(i); v < 0 || v > 2 {
			t.Fatalf("At(%d) = %d outside base 3", i, v)
		}
	}
	free := &Pseudorandom{Seed: 1, N: 8}
	sawBig := false
	for i := 1; i <= 1000; i++ {
		if v := free.At(i); v < 0 {
			t.Fatalf("free-range At(%d) = %d negative", i, v)
		} else if v > 2 {
			sawBig = true
		}
	}
	if !sawBig {
		t.Fatal("free-range sequence never exceeded 2")
	}
}

func TestPseudorandomAtPanicsOutOfRange(t *testing.T) {
	s := &Pseudorandom{Seed: 1, N: 4, Base: 3}
	for _, i := range []int{0, -1, s.Len() + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("At(%d) did not panic", i)
				}
			}()
			s.At(i)
		}()
	}
}

func TestLengthMonotonic(t *testing.T) {
	prev := 0
	for n := 2; n <= 1024; n *= 2 {
		l := Length(n, 0)
		if l <= prev {
			t.Fatalf("Length not increasing at n=%d: %d <= %d", n, l, prev)
		}
		prev = l
	}
	if Length(1, 0) <= 0 || Length(0, 0) <= 0 {
		t.Fatal("Length must be positive for tiny n")
	}
	if Length(8, 2) >= Length(8, 20) {
		t.Fatal("Length must grow with factor")
	}
}

func TestPrecomputedAt(t *testing.T) {
	s := Precomputed{2, 0, 1}
	if s.At(1) != 2 || s.At(3) != 1 {
		t.Fatal("Precomputed indexing is wrong (must be 1-based)")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range At did not panic")
		}
	}()
	s.At(4)
}

// TestPseudorandomCoversFamilies checks coverage across the structured
// graph families under adversarial relabelings — the working form of
// Definition 3 for our sequence generator.
func TestPseudorandomCoversFamilies(t *testing.T) {
	families := map[string]*graph.Graph{
		"K4":       gen.Complete(4),
		"K33":      gen.CompleteBipartite(3, 3),
		"petersen": gen.Petersen(),
		"prism3":   gen.CircularLadder(3),
		"prism5":   gen.CircularLadder(5),
	}
	for name, g := range families {
		for labelSeed := uint64(0); labelSeed < 3; labelSeed++ {
			c := g.Clone()
			c.ShuffleLabels(labelSeed)
			seq := &Pseudorandom{Seed: 11, N: c.NumNodes(), Base: 3}
			ok, err := Covers(c, 0, seq)
			if err != nil {
				t.Fatalf("%s label %d: %v", name, labelSeed, err)
			}
			if !ok {
				t.Errorf("%s label %d: sequence did not cover", name, labelSeed)
			}
		}
	}
}
