// Sensor3d demonstrates the paper's motivating gap: in 3-dimensional
// networks, position-based routing has no delivery guarantee — greedy
// forwarding dies at voids and face routing does not exist (no planar
// embedding) — while exploration-sequence routing is untouched by
// dimension (§1.1, ref [2]).
package main

import (
	"fmt"
	"log"

	adhocroute "repro"
	"repro/internal/baseline"
	"repro/internal/gen"
	"repro/internal/prng"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n      = 70
		radius = 0.26
		trials = 30
	)
	fmt.Printf("3-D sensor cloud: %d nodes, radio range %.2f, %d random routing pairs\n\n",
		n, radius, trials)

	var greedyOK, uesOK, attempted int
	for seed := uint64(0); seed < 6 && attempted < trials; seed++ {
		ud := gen.UDG3D(n, radius, seed)
		nw := adhocroute.NewUnitDisk3D(n, radius, seed)
		comp := ud.G.ComponentOf(0)
		if len(comp) < 8 {
			continue
		}
		src := prng.New(seed ^ 0x3d)
		for k := 0; k < 6 && attempted < trials; k++ {
			s := comp[src.Intn(len(comp))]
			d := comp[src.Intn(len(comp))]
			if s == d {
				continue
			}
			attempted++
			gr, err := baseline.GreedyRoute(ud, s, d, int64(8*n))
			if err != nil {
				return err
			}
			if gr.Delivered {
				greedyOK++
			} else {
				fmt.Printf("  greedy stuck at node %d routing %d->%d (3-D void, no face recovery possible)\n",
					gr.StuckAt, s, d)
			}
			res, err := nw.Route(adhocroute.NodeID(s), adhocroute.NodeID(d),
				adhocroute.WithSeed(seed+99))
			if err != nil {
				return err
			}
			if res.Status == adhocroute.StatusSuccess {
				uesOK++
			}
		}
	}
	fmt.Printf("\ndelivery over %d connected pairs:\n", attempted)
	fmt.Printf("  greedy geographic:   %3d/%d\n", greedyOK, attempted)
	fmt.Printf("  face routing:        n/a (no planarization exists in 3-D)\n")
	fmt.Printf("  UES routing (paper): %3d/%d — guaranteed\n", uesOK, attempted)
	if uesOK != attempted {
		return fmt.Errorf("guarantee violated: %d/%d", uesOK, attempted)
	}
	return nil
}
