package dynamic

// LinkCutter is the adversarial scheduler: each epoch it restores whatever
// link it cut last epoch and then cuts the next original-graph link the
// in-flight walk intends to traverse (computed by the router's bounded
// lookahead on the current snapshot). It models the worst single-link
// adversary that watches the protocol: the walk keeps arriving at links
// that have just vanished and must find another way around.
//
// Because the cut link is restored before the next one is cut, the
// topology is only ever one link short of the underlay, so a
// 2-edge-connected underlay keeps s and t connected at every epoch — the
// scenario in which the acceptance tests demand (and observe) delivery.
type LinkCutter struct {
	cut    Edge
	hasCut bool
}

// Advance restores the previous cut and cuts the walk's next intended
// link, if the probe exposes one.
func (a *LinkCutter) Advance(w *World, _ int, p Probe) error {
	if a.hasCut {
		if _, _, err := w.AddEdge(a.cut.U, a.cut.V); err != nil {
			return err
		}
		a.hasCut = false
	}
	if !p.Active {
		return nil
	}
	link, ok := p.NextLink()
	if !ok {
		return nil
	}
	if err := w.RemoveEdgeBetween(link.U, link.V); err != nil {
		return err
	}
	a.cut, a.hasCut = link, true
	return nil
}
