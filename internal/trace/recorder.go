package trace

import "sync/atomic"

// Recorder is the flight recorder: a fixed ring of the last N retained
// traces. Writers claim a slot with one atomic add and publish with one
// atomic pointer store; readers snapshot pointers without blocking
// writers. Finished traces are immutable, so a published pointer is
// always safe to read.
type Recorder struct {
	slots   []atomic.Pointer[Trace]
	cursor  atomic.Uint64
	kept    atomic.Int64
	evicted atomic.Int64
}

// NewRecorder builds a recorder retaining the last capacity traces
// (DefaultCapacity when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{slots: make([]atomic.Pointer[Trace], capacity)}
}

// Keep publishes a finished trace, evicting the oldest when full.
func (r *Recorder) Keep(tr *Trace) {
	if tr == nil {
		return
	}
	i := (r.cursor.Add(1) - 1) % uint64(len(r.slots))
	if old := r.slots[i].Swap(tr); old != nil {
		r.evicted.Add(1)
	}
	r.kept.Add(1)
}

// Kept reports how many traces were ever retained (including evicted).
func (r *Recorder) Kept() int64 { return r.kept.Load() }

// Evicted reports how many retained traces the ring has overwritten.
func (r *Recorder) Evicted() int64 { return r.evicted.Load() }

// Capacity reports the ring size.
func (r *Recorder) Capacity() int { return len(r.slots) }

// Recent returns up to max retained traces, newest first (all of them
// when max <= 0).
func (r *Recorder) Recent(max int) []*Trace {
	n := len(r.slots)
	if max <= 0 || max > n {
		max = n
	}
	out := make([]*Trace, 0, max)
	cur := r.cursor.Load()
	for k := uint64(1); k <= uint64(n) && len(out) < max; k++ {
		// Walk backwards from the most recently claimed slot.
		i := (cur + uint64(n) - k) % uint64(n)
		if tr := r.slots[i].Load(); tr != nil {
			out = append(out, tr)
		}
	}
	return out
}

// Find returns the retained trace with the given ID, or nil.
func (r *Recorder) Find(id TraceID) *Trace {
	for i := range r.slots {
		if tr := r.slots[i].Load(); tr != nil && tr.id == id {
			return tr
		}
	}
	return nil
}
