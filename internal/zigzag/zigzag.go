// Package zigzag implements the derandomization substrate behind Reingold's
// theorem (Theorem 4 of the paper): rotation-map graphs, graph squaring,
// the zig-zag and replacement products, spectral-gap estimation, and the
// main transform that turns any connected constant-degree graph into a
// constant-degree expander in O(log n) levels. This is the machinery that
// makes log-space universal exploration sequences exist.
//
// The package follows Reingold–Vadhan–Wigderson: a D-regular multigraph on
// [N] is presented as a rotation map Rot: [N]×[D] → [N]×[D] with
// Rot(Rot(v,i)) = (v,i); Rot(v,i) = (w,j) means the i-th edge of v leads to
// w and is the j-th edge of w. Self-loops may be rotation-map fixed points.
//
// Faithfulness note (see DESIGN.md): Reingold's USTCON algorithm decides
// connectivity by enumerating all D^O(log N) walks of logarithmic length on
// the transformed expander — polynomial, but with galactic constants. We
// build the transform itself and *measure* the property that makes the
// enumeration work (constant spectral gap, hence O(log N) diameter), and
// expose a connectivity decision that certifies the log-diameter bound.
package zigzag

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/prng"
)

// Errors reported by rotation-map constructions.
var (
	ErrNotRegular    = errors.New("zigzag: graph is not regular")
	ErrBadDims       = errors.New("zigzag: incompatible product dimensions")
	ErrTooLarge      = errors.New("zigzag: construction exceeds size budget")
	ErrNotInvolution = errors.New("zigzag: rotation map is not an involution")
)

// MaxEntries bounds the size (N·D) of any constructed rotation map; the
// main transform multiplies N by D² per level, so explicit construction is
// only feasible for demonstration sizes.
const MaxEntries = 1 << 26

// RotGraph is a D-regular multigraph on N vertices in rotation-map form.
type RotGraph struct {
	n, d int
	// rot[v*d+i] = w*d+j, the packed image of (v,i).
	rot []int32
}

// NewRotGraph wraps a packed rotation table. The table is not copied.
func NewRotGraph(n, d int, rot []int32) (*RotGraph, error) {
	g := &RotGraph{n: n, d: d, rot: rot}
	if len(rot) != n*d {
		return nil, fmt.Errorf("zigzag: table has %d entries, want %d", len(rot), n*d)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// N returns the number of vertices.
func (g *RotGraph) N() int { return g.n }

// D returns the degree.
func (g *RotGraph) D() int { return g.d }

// Rot applies the rotation map to (v, i).
func (g *RotGraph) Rot(v, i int) (w, j int) {
	p := g.rot[v*g.d+i]
	return int(p) / g.d, int(p) % g.d
}

// Validate checks that the rotation map is a well-formed involution.
func (g *RotGraph) Validate() error {
	for v := 0; v < g.n; v++ {
		for i := 0; i < g.d; i++ {
			p := g.rot[v*g.d+i]
			if p < 0 || int(p) >= g.n*g.d {
				return fmt.Errorf("zigzag: entry (%d,%d) out of range: %d", v, i, p)
			}
			if g.rot[p] != int32(v*g.d+i) {
				return fmt.Errorf("%w: at (%d,%d)", ErrNotInvolution, v, i)
			}
		}
	}
	return nil
}

// FromGraph converts a regular port-labeled graph into rotation-map form.
// Node IDs are densified in insertion order.
func FromGraph(gr *graph.Graph) (*RotGraph, error) {
	n := gr.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("zigzag: empty graph")
	}
	d := gr.MaxDegree()
	if !gr.IsRegular(d) {
		return nil, fmt.Errorf("%w: degrees range %d..%d", ErrNotRegular, gr.MinDegree(), d)
	}
	ix := graph.NewIndexer(gr)
	rot := make([]int32, n*d)
	var err error
	gr.ForEachNode(func(v graph.NodeID) {
		vi, _ := ix.Index(v)
		for p := 0; p < d; p++ {
			h, nerr := gr.Neighbor(v, p)
			if nerr != nil {
				err = nerr
				return
			}
			wi, _ := ix.Index(h.To)
			rot[vi*d+p] = int32(wi*d + h.ToPort)
		}
	})
	if err != nil {
		return nil, err
	}
	return NewRotGraph(n, d, rot)
}

// Regularize pads every vertex of gr with rotation-map self-loops up to
// degree target, producing a target-regular rotation graph. target must be
// at least the maximum degree of gr. Self-loops make the walk lazy, which
// only helps spectral convergence arguments.
func Regularize(gr *graph.Graph, target int) (*RotGraph, error) {
	n := gr.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("zigzag: empty graph")
	}
	if gr.MaxDegree() > target {
		return nil, fmt.Errorf("zigzag: max degree %d exceeds target %d", gr.MaxDegree(), target)
	}
	if n*target > MaxEntries {
		return nil, fmt.Errorf("%w: %d entries", ErrTooLarge, n*target)
	}
	ix := graph.NewIndexer(gr)
	rot := make([]int32, n*target)
	var err error
	gr.ForEachNode(func(v graph.NodeID) {
		vi, _ := ix.Index(v)
		deg := gr.Degree(v)
		for p := 0; p < deg; p++ {
			h, nerr := gr.Neighbor(v, p)
			if nerr != nil {
				err = nerr
				return
			}
			wi, _ := ix.Index(h.To)
			rot[vi*target+p] = int32(wi*target + h.ToPort)
		}
		for p := deg; p < target; p++ {
			rot[vi*target+p] = int32(vi*target + p) // self-loop fixed point
		}
	})
	if err != nil {
		return nil, err
	}
	return NewRotGraph(n, target, rot)
}

// Square returns G²: same vertices, degree D², where the (a,b)-th edge of v
// follows edge a then edge b. λ(G²) = λ(G)².
func (g *RotGraph) Square() (*RotGraph, error) {
	n, d := g.n, g.d
	d2 := d * d
	if n*d2 > MaxEntries {
		return nil, fmt.Errorf("%w: %d entries", ErrTooLarge, n*d2)
	}
	rot := make([]int32, n*d2)
	for v := 0; v < n; v++ {
		for a := 0; a < d; a++ {
			u, a2 := g.Rot(v, a)
			for b := 0; b < d; b++ {
				w, b2 := g.Rot(u, b)
				// Edge label at v is a*d+b; at w it is b2*d+a2, which makes
				// the map an involution.
				rot[v*d2+a*d+b] = int32(w*d2 + b2*d + a2)
			}
		}
	}
	return NewRotGraph(n, d2, rot)
}

// ZigZag returns the zig-zag product G ⓩ H. G must be D-regular and H must
// have exactly D vertices; the result is d²-regular on N·D vertices, where
// d is H's degree. λ(GⓏH) is bounded by a function of λ(G) and λ(H)
// (RVW Theorem 4.3), and degree depends only on H.
func ZigZag(g, h *RotGraph) (*RotGraph, error) {
	if h.n != g.d {
		return nil, fmt.Errorf("%w: |V(H)| = %d, deg(G) = %d", ErrBadDims, h.n, g.d)
	}
	bigN := g.n * g.d
	d2 := h.d * h.d
	if bigN*d2 > MaxEntries {
		return nil, fmt.Errorf("%w: %d entries", ErrTooLarge, bigN*d2)
	}
	rot := make([]int32, bigN*d2)
	for v := 0; v < g.n; v++ {
		for a := 0; a < g.d; a++ {
			for i := 0; i < h.d; i++ {
				aPrime, iPrime := h.Rot(a, i)
				w, bPrime := g.Rot(v, aPrime)
				for j := 0; j < h.d; j++ {
					b, jPrime := h.Rot(bPrime, j)
					from := (v*g.d+a)*d2 + i*h.d + j
					to := (w*g.d+b)*d2 + jPrime*h.d + iPrime
					rot[from] = int32(to)
				}
			}
		}
	}
	return NewRotGraph(bigN, d2, rot)
}

// Replacement returns the replacement product G ⓡ H: every vertex of G is
// replaced by a copy of H ("cloud"); labels 0..d-1 are H's edges inside the
// cloud and label d crosses to the neighbouring cloud via G's rotation map.
// The result is (d+1)-regular on N·D vertices. A walk on G ⓡ H projects to
// a walk on G by keeping only the label-d steps — the projection property
// that lets expander walks drive base-graph exploration.
func Replacement(g, h *RotGraph) (*RotGraph, error) {
	if h.n != g.d {
		return nil, fmt.Errorf("%w: |V(H)| = %d, deg(G) = %d", ErrBadDims, h.n, g.d)
	}
	bigN := g.n * g.d
	dd := h.d + 1
	if bigN*dd > MaxEntries {
		return nil, fmt.Errorf("%w: %d entries", ErrTooLarge, bigN*dd)
	}
	rot := make([]int32, bigN*dd)
	for v := 0; v < g.n; v++ {
		for a := 0; a < g.d; a++ {
			base := (v*g.d + a) * dd
			for i := 0; i < h.d; i++ {
				b, j := h.Rot(a, i)
				rot[base+i] = int32((v*g.d+b)*dd + j)
			}
			w, b := g.Rot(v, a)
			rot[base+h.d] = int32((w*g.d+b)*dd + h.d)
		}
	}
	return NewRotGraph(bigN, dd, rot)
}

// Lambda estimates the second-largest absolute eigenvalue of the normalized
// adjacency (random-walk) matrix by power iteration on the complement of
// the all-ones vector. iters controls the iteration count (0 means a
// default that converges well for demonstration sizes). The estimate is a
// lower bound that converges from below.
func (g *RotGraph) Lambda(iters int) float64 {
	if iters <= 0 {
		iters = 120
	}
	n := g.n
	if n <= 1 {
		return 0
	}
	x := make([]float64, n)
	y := make([]float64, n)
	src := prng.New(0x5eed)
	for i := range x {
		x[i] = src.Float64() - 0.5
	}
	deflate(x)
	normalize(x)
	lambda := 0.0
	for it := 0; it < iters; it++ {
		for i := range y {
			y[i] = 0
		}
		for v := 0; v < n; v++ {
			share := x[v] / float64(g.d)
			for i := 0; i < g.d; i++ {
				w, _ := g.Rot(v, i)
				y[w] += share
			}
		}
		deflate(y)
		lambda = norm(y)
		if lambda == 0 {
			return 0
		}
		normalize(y)
		x, y = y, x
	}
	return lambda
}

// SpectralGap returns 1 - Lambda(iters).
func (g *RotGraph) SpectralGap(iters int) float64 {
	return 1 - g.Lambda(iters)
}

// ToGraph converts the rotation map back to a port-labeled graph with node
// IDs 0..N-1.
func (g *RotGraph) ToGraph() (*graph.Graph, error) {
	order := make([]graph.NodeID, g.n)
	adj := make(map[graph.NodeID][]graph.Half, g.n)
	for v := 0; v < g.n; v++ {
		order[v] = graph.NodeID(v)
		hs := make([]graph.Half, g.d)
		for i := 0; i < g.d; i++ {
			w, j := g.Rot(v, i)
			hs[i] = graph.Half{To: graph.NodeID(w), ToPort: j}
		}
		adj[graph.NodeID(v)] = hs
	}
	return graph.NewFromAdjacency(order, adj)
}

// BFSDiameter returns the eccentricity-based diameter of the rotation
// graph's connected component containing vertex 0, by BFS.
func (g *RotGraph) BFSDiameter() int {
	maxEcc := 0
	dist := make([]int, g.n)
	queue := make([]int, 0, g.n)
	for src := 0; src < g.n; src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue = append(queue[:0], src)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for i := 0; i < g.d; i++ {
				w, _ := g.Rot(v, i)
				if dist[w] == -1 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
					if dist[w] > maxEcc {
						maxEcc = dist[w]
					}
				}
			}
		}
	}
	return maxEcc
}

// Connected reports whether u and v lie in one component of g, and whether
// the connecting path (if any) respects the O(log N) length bound that
// Reingold's walk enumeration relies on. dist is the BFS distance or -1.
func (g *RotGraph) Connected(u, v int) (connected bool, withinLogBound bool, dist int) {
	if u == v {
		return true, true, 0
	}
	d := make([]int, g.n)
	for i := range d {
		d[i] = -1
	}
	d[u] = 0
	queue := []int{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for i := 0; i < g.d; i++ {
			w, _ := g.Rot(x, i)
			if d[w] == -1 {
				d[w] = d[x] + 1
				if w == v {
					bound := logBound(g.n)
					return true, d[w] <= bound, d[w]
				}
				queue = append(queue, w)
			}
		}
	}
	return false, false, -1
}

// logBound is the path-length budget c·log₂ N (c = 8) used by the
// connectivity certificate.
func logBound(n int) int {
	if n < 2 {
		return 1
	}
	return 8 * int(math.Ceil(math.Log2(float64(n))))
}

func deflate(x []float64) {
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for i := range x {
		x[i] -= mean
	}
}

func norm(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

func normalize(x []float64) {
	n := norm(x)
	if n == 0 {
		return
	}
	for i := range x {
		x[i] /= n
	}
}
