package netsim

import (
	"testing"

	"repro/internal/graph"
)

// TestHeaderBitsMatchEncode pins the arithmetic Bits computation to the
// actual serialized size across the value ranges headers carry, including
// negative node IDs and varint length boundaries.
func TestHeaderBitsMatchEncode(t *testing.T) {
	values := []int64{0, 1, -1, 2, 63, 64, -64, -65, 127, 128, 8191, 8192,
		1 << 20, -(1 << 20), 1 << 40, 1<<62 - 1, -(1 << 62)}
	for _, src := range values {
		for _, dst := range values {
			for _, idx := range values {
				h := Header{
					Src: graph.NodeID(src), Dst: graph.NodeID(dst),
					Dir: Backward, Status: StatusSuccess, Index: idx,
				}
				if got, want := h.Bits(), 8*len(h.Encode()); got != want {
					t.Fatalf("Bits(%+v) = %d, encoded size %d", h, got, want)
				}
			}
		}
	}
}
