package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/chaos"
)

// routeVerdict runs one s→t budgeted query to its verdict, resuming after
// every budget_exhausted reply, and returns the final reply plus how many
// requests (segments) the walk took.
func routeVerdict(t *testing.T, ts *httptest.Server, path string, src, dst, budget int) (routeReply, int) {
	t.Helper()
	resume := ""
	for seg := 1; ; seg++ {
		body := fmt.Sprintf(`{"src":%d,"dst":%d,"budget_hops":%d,"resume":%q}`, src, dst, budget, resume)
		var rep routeReply
		if code := postJSON(t, ts, path, body, &rep); code != http.StatusOK {
			t.Fatalf("segment %d: status %d (%+v)", seg, code, rep)
		}
		if rep.Status != statusBudgetExhausted {
			return rep, seg
		}
		if rep.Resume == "" || rep.Exhausted == "" {
			t.Fatalf("segment %d: exhausted reply missing resume/exhausted: %+v", seg, rep)
		}
		resume = rep.Resume
		if seg > 200000 {
			t.Fatal("walk did not converge")
		}
	}
}

// TestRouteBudgetResumeRoundtrip: a walk chopped into 1-hop segments by
// budget_hops reaches the same verdict with the same totals as the
// uninterrupted walk — the HTTP-level split==uninterrupted differential.
func TestRouteBudgetResumeRoundtrip(t *testing.T) {
	ts := testServer(t)
	var whole routeReply
	if code := postJSON(t, ts, "/v1/route", `{"src":0,"dst":10}`, &whole); code != http.StatusOK {
		t.Fatalf("uninterrupted route: status %d", code)
	}
	split, segs := routeVerdict(t, ts, "/v1/route", 0, 10, 1)
	if split.Status != whole.Status || split.Hops != whole.Hops || split.Bound != whole.Bound {
		t.Fatalf("split verdict %+v != uninterrupted %+v", split, whole)
	}
	if segs < 2 {
		t.Fatalf("budget of 1 hop split the walk into %d segment(s); want several", segs)
	}
}

// TestRouteCertificate: a cross-component pair on the two-component test
// network is answered without walking — zero hops, certificate attached —
// both on the plain and the budgeted path.
func TestRouteCertificate(t *testing.T) {
	ts := testServer(t)
	for _, body := range []string{
		`{"src":0,"dst":100}`,
		`{"src":0,"dst":100,"budget_hops":5}`,
	} {
		var rep routeReply
		if code := postJSON(t, ts, "/v1/route", body, &rep); code != http.StatusOK {
			t.Fatalf("%s: status %d", body, code)
		}
		if rep.Status != "failure" || rep.Certificate == nil || rep.Hops != 0 {
			t.Fatalf("%s: want O(1) certificate failure, got %+v", body, rep)
		}
		if rep.Certificate.SrcComponent == rep.Certificate.DstComponent {
			t.Fatalf("%s: certificate puts both endpoints in component %d", body, rep.Certificate.SrcComponent)
		}
	}
}

// TestRouteResumeRejections: forged, corrupted, cross-server, and
// cross-scope tokens are 400, never a walk and never a panic.
func TestRouteResumeRejections(t *testing.T) {
	ts := testServer(t)
	other := testServer(t) // distinct signer key

	var rep routeReply
	if code := postJSON(t, ts, "/v1/route", `{"src":0,"dst":10,"budget_hops":1}`, &rep); code != http.StatusOK {
		t.Fatalf("minting token: status %d", code)
	}
	if rep.Status != statusBudgetExhausted || rep.Resume == "" {
		t.Fatalf("expected exhausted reply with token, got %+v", rep)
	}
	bad := map[string]struct {
		ts   *httptest.Server
		path string
		tok  string
	}{
		"garbage":      {ts, "/v1/route", "not-a-token"},
		"truncated":    {ts, "/v1/route", rep.Resume[:len(rep.Resume)-4]},
		"tampered":     {ts, "/v1/route", "A" + rep.Resume[1:]},
		"cross-server": {other, "/v1/route", rep.Resume},
	}
	for name, tc := range bad {
		body := fmt.Sprintf(`{"src":0,"dst":10,"resume":%q}`, tc.tok)
		var eb errorBody
		if code := postJSON(t, tc.ts, tc.path, body, &eb); code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%+v), want 400", name, code, eb)
		}
	}
}

// TestRouteWithPathBudgetConflict: with_path needs the uninterrupted walk,
// so combining it with any bounded-work knob is a 400.
func TestRouteWithPathBudgetConflict(t *testing.T) {
	ts := testServer(t)
	var eb errorBody
	code := postJSON(t, ts, "/v1/route", `{"src":0,"dst":10,"with_path":true,"budget_hops":4}`, &eb)
	if code != http.StatusBadRequest {
		t.Fatalf("with_path+budget: status %d, want 400", code)
	}
}

// TestWorldRouteBudgetResume: the budgeted walk over a shared world
// resumes across requests to a success verdict, and its token is bound to
// the world — replaying it against the boot network is a 400.
func TestWorldRouteBudgetResume(t *testing.T) {
	ts, _, _ := newTestServer(t, serverConfig{})
	var wi worldInfo
	if code := do(t, ts, http.MethodPost, "/v1/worlds",
		`{"name":"budget","schedule":{"kind":"markov","p_down":0.05,"p_up":0.5,"seed":9}}`, &wi); code != http.StatusCreated {
		t.Fatalf("world create: status %d", code)
	}
	path := "/v1/worlds/" + wi.ID + "/route"

	resume, segs := "", 0
	var rep dynamicReply
	for {
		segs++
		body := fmt.Sprintf(`{"src":0,"dst":10,"hops_per_epoch":16,"budget_hops":3,"resume":%q}`, resume)
		if code := postJSON(t, ts, path, body, &rep); code != http.StatusOK {
			t.Fatalf("segment %d: status %d", segs, code)
		}
		if rep.Status != statusBudgetExhausted {
			break
		}
		resume = rep.Resume
		if segs > 200000 {
			t.Fatal("world walk did not converge")
		}
	}
	if rep.Status != "success" {
		t.Fatalf("world walk verdict %q, want success (reply %+v)", rep.Status, rep)
	}
	if segs < 2 {
		t.Fatalf("3-hop budget finished in %d segment(s); want several", segs)
	}
	if resume == "" {
		t.Fatal("never saw a resume token")
	}
	// The last minted world token must not verify against the boot scope.
	var eb errorBody
	body := fmt.Sprintf(`{"src":0,"dst":10,"resume":%q}`, resume)
	if code := postJSON(t, ts, "/v1/route", body, &eb); code != http.StatusBadRequest {
		t.Fatalf("world token on boot route: status %d, want 400", code)
	}
}

// TestRetryAfterDerived: admission rejections advise a positive, bounded,
// varying Retry-After — the regression guard for the old fixed "1" that
// synchronized every rejected client onto the same retry instant.
func TestRetryAfterDerived(t *testing.T) {
	ts, srv, _ := newTestServer(t, serverConfig{maxInflight: 1})
	// Fill the admission semaphore so every request is rejected.
	srv.inflight <- struct{}{}
	defer func() { <-srv.inflight }()

	seen := make(map[int]bool)
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/v1/route", "application/json",
			bytes.NewReader([]byte(`{"src":0,"dst":10}`)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("request %d: status %d, want 429", i, resp.StatusCode)
		}
		ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil || ra < 1 || ra > 30 {
			t.Fatalf("request %d: Retry-After %q, want integer in [1,30]", i, resp.Header.Get("Retry-After"))
		}
		seen[ra] = true
	}
	if len(seen) < 2 {
		t.Fatalf("three successive rejections all advised the same Retry-After %v; want jitter", seen)
	}
}

// TestDrain: BeginDrain flips healthz to 503 "draining" and interrupts
// budgeted walks at their next round boundary, minting a resume token that
// is also persisted to the drain log.
func TestDrain(t *testing.T) {
	var drainLog bytes.Buffer
	ts, srv, _ := newTestServer(t, serverConfig{drainLog: &drainLog})

	var health struct {
		OK     bool   `json:"ok"`
		Status string `json:"status"`
	}
	if code := getJSON(t, ts, "/healthz", &health); code != http.StatusOK || !health.OK {
		t.Fatalf("pre-drain healthz: %d %+v", code, health)
	}

	srv.BeginDrain()
	srv.BeginDrain() // idempotent

	if code := getJSON(t, ts, "/healthz", &health); code != http.StatusServiceUnavailable ||
		health.OK || health.Status != "draining" {
		t.Fatalf("draining healthz: %d %+v, want 503 draining", code, health)
	}

	// A budgeted walk started during the drain is interrupted by the drain
	// context at its first round boundary and hands back a cursor.
	var rep routeReply
	if code := postJSON(t, ts, "/v1/route", `{"src":0,"dst":10,"budget_hops":1000000}`, &rep); code != http.StatusOK {
		t.Fatalf("drained budgeted route: status %d", code)
	}
	if rep.Status != statusBudgetExhausted || rep.Exhausted != "deadline" || rep.Resume == "" {
		t.Fatalf("drained budgeted route: %+v, want deadline-exhausted with resume token", rep)
	}
	line := drainLog.String()
	if !strings.Contains(line, `"scope":"net:boot"`) || !strings.Contains(line, rep.Resume) {
		t.Fatalf("drain log %q does not record the minted token", line)
	}

	// Plain (unbudgeted) queries still finish normally during the drain —
	// that is what -drain-timeout exists for.
	var plain routeReply
	if code := postJSON(t, ts, "/v1/route", `{"src":0,"dst":10}`, &plain); code != http.StatusOK ||
		plain.Status != "success" {
		t.Fatalf("drained plain route: %d %+v", code, plain)
	}
}

// TestChaosRequestFault: an armed request-fault injector turns requests
// into 500s tagged as injected, liveness stays unaffected, and /v1/stats
// exposes the fault counters.
func TestChaosRequestFault(t *testing.T) {
	ts, _, _ := newTestServer(t, serverConfig{
		chaos: chaos.New(chaos.Config{Seed: 1, RequestFailRate: 1}),
	})
	var eb errorBody
	if code := postJSON(t, ts, "/v1/route", `{"src":0,"dst":10}`, &eb); code != http.StatusInternalServerError {
		t.Fatalf("chaos route: status %d (%+v), want 500", code, eb)
	}
	if !strings.Contains(eb.Error, "chaos") {
		t.Fatalf("chaos fault error %q not marked as injected", eb.Error)
	}
	var health struct {
		OK bool `json:"ok"`
	}
	if code := getJSON(t, ts, "/healthz", &health); code != http.StatusOK || !health.OK {
		t.Fatalf("healthz under chaos: %d %+v, want 200 ok", code, health)
	}
}

// TestChaosStatsBlock: with chaos armed (but quiet) /v1/stats reports the
// per-class fault counters; without it the block is absent.
func TestChaosStatsBlock(t *testing.T) {
	armed, _, _ := newTestServer(t, serverConfig{chaos: chaos.New(chaos.Config{Seed: 1})})
	var stats map[string]any
	if code := getJSON(t, armed, "/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if _, ok := stats["chaos"]; !ok {
		t.Fatalf("armed server stats missing chaos block: %v", stats)
	}
	plain, _, _ := newTestServer(t, serverConfig{})
	stats = nil
	if code := getJSON(t, plain, "/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if _, ok := stats["chaos"]; ok {
		t.Fatal("chaos block present with fault injection off")
	}
}
