package exp

import (
	"fmt"

	"repro/internal/degred"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ues"
)

// A5AdversarialLabeling probes Definition 3's "for any labeling"
// quantifier: how much can an adversary inflate the cover time of the
// deployed sequence by relabeling ports, and does any labeling defeat it
// outright within L?
func A5AdversarialLabeling(o Options) (*Table, error) {
	t := &Table{
		ID:     "A5",
		Title:  "Ablation: adversarial port relabelings vs the deployed sequence",
		Anchor: "Definition 3: universality must hold for any labeling and any initial edge",
		Columns: []string{"family", "n'", "baseline cover", "worst found", "inflation",
			"labelings tried", "ever defeated"},
	}
	sizes := o.sizes([]int{16, 32}, []int{12})
	tries := o.reps(24, 8)
	for _, n := range sizes {
		fams := []struct {
			name string
			g    *graph.Graph
		}{
			{name: "cycle", g: gen.Cycle(n)},
			{name: "grid", g: gen.Grid(intSqrt(n), intSqrt(n))},
			{name: "lollipop", g: gen.Lollipop(n/2, n/2)},
		}
		for _, fam := range fams {
			red, err := degred.Reduce(fam.g)
			if err != nil {
				return nil, err
			}
			gp := red.Graph()
			seq := &ues.Pseudorandom{Seed: o.Seed, N: gp.NumNodes(), Base: 3}
			res, err := ues.AdversarialLabeling(gp, seq, tries, o.Seed^0xa5)
			if err != nil {
				return nil, err
			}
			if !res.Covered {
				return nil, fmt.Errorf("A5 %s n=%d: a labeling defeated the sequence", fam.name, n)
			}
			inflation := "n/a"
			if res.BaselineSteps > 0 {
				inflation = fmtFloat(float64(res.CoverSteps) / float64(res.BaselineSteps))
			}
			t.AddRow(fam.name, fmtInt(gp.NumNodes()), fmtInt(res.BaselineSteps),
				fmtInt(res.CoverSteps), inflation, fmtInt(res.Tried), "no")
		}
	}
	t.AddNote("No sampled labeling defeats the default-length sequence; the worst found inflates cover time by a small constant factor, quantifying the empirical margin behind the Definition 3 quantifier.")
	return t, nil
}
