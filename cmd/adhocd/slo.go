package main

import (
	"fmt"
	"net/http"
	"strings"

	"repro/internal/engine"
	"repro/internal/slo"
)

// defaultSLOSpec is the -slo default: the latency objectives an operator
// gets for free, the paper-derived hop-stretch bound (Theorem 1's
// c·n·log2(n) with a 4x safety factor, resolved against the boot network's
// reduced size), a zero-tolerance engine-error objective, and the
// client-evaluated wrong-verdict objective loadgen -slo enforces.
const defaultSLOSpec = "route_p99<250ms,dynamic_p99<500ms,hop_p99<4log,errors==0,wrong_verdicts==0"

// sloDisabled is the -slo value that turns the evaluator off entirely.
const sloDisabled = "off"

// resolveSLOSpec maps the config value onto the effective spec: "" means
// the default objectives, sloDisabled means none.
func resolveSLOSpec(spec string) string {
	switch spec {
	case sloDisabled:
		return ""
	case "":
		return defaultSLOSpec
	}
	return spec
}

// buildObjectives parses an objective spec and binds each declaration to
// a source over the given engine's existing metrics. Unknown names are an
// error: a typoed objective must not silently never burn. run() calls it
// once against the boot engine to reject a bad -slo flag cleanly before
// newServer (which treats a failure here as a wiring bug).
func buildObjectives(eng *engine.Engine, spec string) ([]slo.Objective, error) {
	decls, err := slo.Parse(spec)
	if err != nil {
		return nil, err
	}
	var objs []slo.Objective
	for _, d := range decls {
		obj := slo.Objective{Decl: d}
		// The metric identity is the name minus its quantile suffix
		// ("route_p99" -> "route").
		base := d.Name
		if i := strings.LastIndex(base, "_p"); i >= 0 && !d.Zero {
			base = base[:i]
		}
		switch {
		case d.Zero && d.Name == "wrong_verdicts":
			// The server cannot see a wrong verdict — only a client
			// replaying walks against a reference can. Published for
			// loadgen -slo to enforce; never burns server-side.
			obj.ClientEvaluated = true
		case d.Zero && d.Name == "errors":
			obj.Source = slo.SourceFunc(func() (int64, int64) {
				st := eng.Stats()
				return st.Queries(), st.Errors
			})
		case d.Zero:
			return nil, fmt.Errorf("slo: unknown zero-tolerance objective %q (want errors or wrong_verdicts)", d.Name)
		case d.Latency > 0:
			obj.Threshold = d.Latency.Seconds()
			obj.Unit = "s"
			switch base {
			case "route":
				obj.Source = slo.HistogramSource(eng.RouteSecondsHistogram(), int64(d.Latency))
			case "dynamic":
				obj.Source = slo.HistogramSource(eng.DynamicSecondsHistogram(), int64(d.Latency))
			default:
				return nil, fmt.Errorf("slo: unknown latency objective %q (want route_pNN or dynamic_pNN)", d.Name)
			}
		case d.LogFactor > 0:
			if base != "hop" {
				return nil, fmt.Errorf("slo: unknown bound-derived objective %q (want hop_pNN)", d.Name)
			}
			// Resolve the compiled bound against the reduced network the
			// walks actually traverse.
			n := eng.Reduced().Graph().NumNodes()
			th := slo.HopThreshold(d.LogFactor, n)
			obj.Threshold = th
			obj.Unit = "hops"
			obj.Source = slo.HistogramSource(eng.HopsHistogram(), int64(th))
		}
		objs = append(objs, obj)
	}
	return objs, nil
}

// sloReply is the GET /v1/slo response: every objective's declaration,
// resolved threshold, and current multi-window burn state.
type sloReply struct {
	Objectives    []slo.ObjectiveReport `json:"objectives"`
	BurnThreshold float64               `json:"burn_threshold"`
}

// handleSLO serves the SLO report. Report ticks on demand (rate-limited
// inside the evaluator), so a freshly booted daemon answers without
// waiting for the background ticker.
func (s *server) handleSLO(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, sloReply{
		Objectives:    s.slo.Report(s.sloNow()),
		BurnThreshold: s.slo.BurnThreshold,
	})
}

// RunSLO drives the background burn-rate ticker until stop closes. A no-op
// when -slo=off; serve() starts it via interface assertion.
func (s *server) RunSLO(stop <-chan struct{}) {
	if s.slo == nil {
		return
	}
	s.slo.Run(s.sloInterval, stop)
}
