package exp

import (
	"fmt"

	"repro/internal/dynamic"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/prng"
)

// E11DynamicNetworks extends E10's between-attempt churn to churn *during*
// delivery: the dynamic subsystem advances the topology every few hops
// while the walk is in flight, recompiling the degree reduction and
// carrying the stateless header across snapshots. Three scenario families
// are swept — Markov link flapping, random-waypoint mobility, and the
// adversarial next-link cutter — and every verdict is audited:
//
//   - success is sound by construction (each hop rode a then-existing
//     edge, so reaching the destination is a physical delivery);
//   - failure must agree with the BFS oracle on the decision-time
//     topology (the §4 closure check makes it definitive);
//   - on the adversary's 2-edge-connected underlay the pair stays
//     connected at every epoch, so delivery is mandatory.
//
// Like E10, this extends the paper rather than reproducing it: it
// measures how much of the guarantee survives when the §1.1 static
// assumption is relaxed at hop granularity.
func E11DynamicNetworks(o Options) (*Table, error) {
	t := &Table{
		ID:     "E11",
		Title:  "Extension: routing while the topology changes mid-walk",
		Anchor: "§1.1 static assumption relaxed at hop granularity; resumption via the stateless header",
		Columns: []string{"scenario", "routes", "delivered", "definitive failures",
			"wrong verdicts", "epochs", "resumptions"},
	}
	reps := o.reps(20, 6)

	type scenario struct {
		name  string
		base  *graph.Graph
		pos   bool
		sched func(rep int) dynamic.Schedule
	}
	geo := gen.UDG2D(30, 0.35, o.Seed)
	scenarios := []scenario{
		{
			name: "markov link flapping (torus underlay)",
			base: gen.Torus(5, 5),
			sched: func(rep int) dynamic.Schedule {
				return &dynamic.MarkovLinks{Seed: o.Seed + uint64(rep)*13, PDown: 0.06, PUp: 0.5}
			},
		},
		{
			name: "random-waypoint mobility (udg2d)",
			base: geo.G,
			pos:  true,
			sched: func(rep int) dynamic.Schedule {
				return &dynamic.RandomWaypoint{
					Seed: o.Seed + uint64(rep), SpeedMin: 0.01, SpeedMax: 0.04, Radius: 0.35,
				}
			},
		},
		{
			name:  "adversarial next-link cutter (2-edge-connected)",
			base:  gen.Torus(4, 4),
			sched: func(int) dynamic.Schedule { return &dynamic.LinkCutter{} },
		},
	}

	for si, sc := range scenarios {
		src := prng.New(o.Seed ^ uint64(si)<<4)
		nodes := sc.base.Nodes()
		delivered, failures, wrong, epochs, resumptions := 0, 0, 0, 0, 0
		for rep := 0; rep < reps; rep++ {
			s := nodes[src.Intn(len(nodes))]
			d := nodes[src.Intn(len(nodes))]
			if s == d {
				d = nodes[(src.Intn(len(nodes)-1)+1+int(s))%len(nodes)]
			}
			w := dynamic.NewWorld(sc.base, sc.sched(rep))
			if sc.pos {
				w.SetPositions(geo.Pos)
			}
			res, err := dynamic.NewRouter(w, dynamic.Config{
				Seed: o.Seed + uint64(rep), HopsPerEpoch: 24,
			}).Route(s, d)
			if err != nil {
				return nil, fmt.Errorf("E11 %s rep %d: %w", sc.name, rep, err)
			}
			epochs += res.Epochs
			resumptions += res.Resumptions
			switch res.Status {
			case netsim.StatusSuccess:
				delivered++
			case netsim.StatusFailure:
				failures++
				if _, reachable := w.Graph().BFSDist(s)[d]; reachable {
					wrong++
				}
			}
		}
		t.AddRow(sc.name, fmtInt(reps), fmtInt(delivered), fmtInt(failures),
			fmtInt(wrong), fmtInt(epochs), fmtInt(resumptions))
		if wrong > 0 {
			return nil, fmt.Errorf("E11: %d wrong verdicts in %q", wrong, sc.name)
		}
		if si == 2 && delivered != reps {
			return nil, fmt.Errorf("E11: adversary defeated delivery on an always-connected underlay (%d/%d)",
				delivered, reps)
		}
	}
	t.AddNote("Success verdicts are sound by construction; failure verdicts pass the §4 closure check on the decision-time topology and match its BFS oracle.")
	t.AddNote("The adversarial row must deliver 100%%: one cut link at a time cannot disconnect a 2-edge-connected underlay.")
	return t, nil
}
