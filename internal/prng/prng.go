// Package prng provides small, deterministic pseudo-random primitives used
// throughout the repository.
//
// The package exists for two reasons. First, every randomized component in
// this reproduction (graph generators, labelings, random-walk baselines)
// must be exactly reproducible from an explicit seed, so nothing in the
// library reaches for ambient randomness. Second, the routing algorithm of
// the paper requires an oracle that evaluates the i-th symbol of an
// exploration sequence using O(log n) bits of working state; the stateless
// mixers here (notably Mix64) are that oracle's engine: computing T[i]
// touches only a constant number of 64-bit words.
package prng

import "math/bits"

// Mix64 is the SplitMix64 finalizer: a bijective mixer on 64-bit words with
// good avalanche behaviour. It is stateless, so callers can evaluate
// pseudo-random streams at arbitrary indices in O(1) words of memory.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// At returns the i-th word of the pseudo-random stream identified by seed.
// Distinct seeds give (for all practical purposes) independent streams.
func At(seed, i uint64) uint64 {
	return Mix64(seed ^ Mix64(i))
}

// Source is a tiny deterministic sequential generator (SplitMix64 state
// walk). The zero value is a valid generator seeded with 0.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, mirroring
// math/rand; callers validate n at their boundary.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling, with a simple
	// rejection loop to remove modulo bias.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		v := s.Uint64()
		hi, lo := bits.Mul64(v, bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle over n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
