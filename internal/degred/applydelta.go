package degred

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/flatgraph"
	"repro/internal/graph"
)

// Incremental reduction. A batch of journaled edge mutations touches a
// bounded set of original nodes — exactly the delta endpoints, because edge
// insertion appends ports and edge removal swap-compacts ports only at the
// removed edge's two endpoints. Gadget shape is a pure local function of
// degree, so only the touched originals need re-gadgeting; every other
// original keeps its gadget nodes, their IDs, and their port wiring, and
// the CSR snapshot is rebuilt by flatgraph.Patch from the old one plus
// O(diff) row rewrites. The result is port-preservingly isomorphic to a
// fresh Reduce of the mutated graph, so walks, verdicts, hop counts, and
// header bits are identical on either compile path.

var (
	// ErrDeltaTooLarge means the touched set exceeds the fraction of the
	// graph below which patching beats recompiling; callers fall back to a
	// full Reduce.
	ErrDeltaTooLarge = errors.New("degred: delta touches too much of the graph")
	// ErrDeltaUnusable means the delta cannot be interpreted against this
	// base (unknown node, missing snapshot); callers fall back to a full
	// Reduce.
	ErrDeltaUnusable = errors.New("degred: delta not applicable to this base")
)

// deltaMaxFraction: fall back to a full rebuild when more than 1/4 of the
// originals were touched — past that, re-gadgeting plus patching costs a
// comparable number of row writes to a fresh compile and the bookkeeping
// stops paying for itself.
const deltaMaxFraction = 4

// ApplyDelta builds the reduction of cur, the graph obtained from this
// reduction's base by applying the journaled deltas, re-gadgeting only the
// touched originals. cur must already be in its post-mutation state and
// must have the same node set as the base (node insertions and removals
// poison the journal upstream). The receiver is not modified — concurrent
// walkers holding its snapshot are undisturbed — and the returned Reduced
// is born with its CSR snapshot and component index attached.
//
// On ErrDeltaTooLarge or ErrDeltaUnusable the caller should fall back to
// Reduce(cur).
func (r *Reduced) ApplyDelta(cur *graph.Graph, deltas []graph.Delta) (*Reduced, error) {
	if len(deltas) == 0 {
		return r, nil // no topology change: the base is already current
	}
	flat := r.Flat()
	if flat == nil || !flat.Regular3() {
		return nil, fmt.Errorf("%w: base snapshot unavailable", ErrDeltaUnusable)
	}
	numOrig := len(r.origIDs)

	// Touched originals: the delta endpoints, as dense indices.
	touchedSet := make(map[int32]bool, 2*len(deltas))
	for _, d := range deltas {
		for _, v := range [2]graph.NodeID{d.U, d.V} {
			ix, ok := r.origIdx[v]
			if !ok {
				return nil, fmt.Errorf("%w: delta names unknown node %d", ErrDeltaUnusable, v)
			}
			touchedSet[ix] = true
		}
	}
	if deltaMaxFraction*len(touchedSet) > numOrig {
		return nil, fmt.Errorf("%w: %d of %d originals", ErrDeltaTooLarge, len(touchedSet), numOrig)
	}
	touched := make([]int32, 0, len(touchedSet))
	for ix := range touchedSet {
		touched = append(touched, ix)
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
	for _, ix := range touched {
		if cur.Degree(r.origIDs[ix]) < 0 {
			return nil, fmt.Errorf("%w: node %d absent from current graph", ErrDeltaUnusable, r.origIDs[ix])
		}
	}

	// Gadget ID management: free the old slots of every touched original,
	// then allocate new slots from the freed pool (ascending) before minting
	// fresh IDs, so the ID universe stays exactly {0..nNew-1}. If the graph
	// shrank, surviving gadgets stranded above nNew are relocated down into
	// leftover holes; identity dense numbering is an invariant of every
	// generation, which keeps Patch trivial and node-ID metering bounded.
	nOld := flat.NumNodes()
	var freed []int32
	need := 0
	for _, ix := range touched {
		for _, gid := range r.slots[ix] {
			freed = append(freed, int32(gid))
		}
		need += gadgetSize(cur.Degree(r.origIDs[ix]))
	}
	sort.Slice(freed, func(i, j int) bool { return freed[i] < freed[j] })
	nNew := nOld - len(freed) + need

	alloc := 0
	nextFresh := int32(nOld)
	newSlots := make(map[int32][]graph.NodeID, len(touched))
	for _, ix := range touched {
		sz := gadgetSize(cur.Degree(r.origIDs[ix]))
		s := make([]graph.NodeID, sz)
		for k := range s {
			if alloc < len(freed) {
				s[k] = graph.NodeID(freed[alloc])
				alloc++
			} else {
				s[k] = graph.NodeID(nextFresh)
				nextFresh++
			}
		}
		newSlots[ix] = s
	}
	holes := freed[alloc:] // unused freed IDs, ascending

	reloc := make(map[int32]int32)
	if nNew < nOld {
		holeSet := make(map[int32]bool, len(holes))
		for _, h := range holes {
			holeSet[h] = true
		}
		var low, liveHigh []int32
		for _, h := range holes {
			if int(h) < nNew {
				low = append(low, h)
			}
		}
		for id := int32(nNew); id < int32(nOld); id++ {
			if !holeSet[id] {
				liveHigh = append(liveHigh, id)
			}
		}
		if len(low) != len(liveHigh) {
			return nil, fmt.Errorf("degred: internal: %d holes for %d stranded gadgets", len(low), len(liveHigh))
		}
		for i, id := range liveHigh {
			reloc[id] = low[i]
		}
	}
	mapID := func(id int32) int32 {
		if n, ok := reloc[id]; ok {
			return n
		}
		return id
	}
	relocOld := make([]int32, 0, len(reloc))
	for id := range reloc {
		relocOld = append(relocOld, id)
	}
	sort.Slice(relocOld, func(i, j int) bool { return relocOld[i] < relocOld[j] })

	// Assemble the patch. rowBuf holds whole rows being rewritten (new
	// gadgets and relocated survivors); halfWrites fixes single halves at
	// untouched rows whose far end moved.
	rowBuf := make(map[int32]*[3]flatgraph.Half32, len(reloc)+need)
	var halfWrites []flatgraph.HalfWrite
	for _, oldID := range relocOld {
		var row [3]flatgraph.Half32
		for p := int32(0); p < 3; p++ {
			h := flat.Half(oldID, p)
			row[p] = flatgraph.Half32{To: mapID(h.To), Port: h.Port}
		}
		rowBuf[reloc[oldID]] = &row
	}
	for _, ix := range touched {
		for _, gid := range newSlots[ix] {
			rowBuf[int32(gid)] = &[3]flatgraph.Half32{}
		}
	}
	setHalf := func(node, port int32, h flatgraph.Half32) {
		if buf, ok := rowBuf[node]; ok {
			buf[port] = h
		} else {
			halfWrites = append(halfWrites, flatgraph.HalfWrite{Node: node, Port: port, H: h})
		}
	}

	// Back-pointers into relocated gadgets: every half that pointed at an
	// old ID must point at the new one. Far ends owned by touched originals
	// are skipped — their rows are rewritten wholesale below.
	for _, oldID := range relocOld {
		newID := reloc[oldID]
		for p := int32(0); p < 3; p++ {
			h := flat.Half(oldID, p)
			if touchedSet[r.origIx[h.To]] {
				continue
			}
			setHalf(mapID(h.To), h.Port, flatgraph.Half32{To: newID, Port: p})
		}
	}

	// Re-gadget each touched original: intra-gadget edges exactly as Reduce
	// wires them (cycle / parallel pair / self-loop / theta), so a delta
	// compile and a full compile are port-identical gadget by gadget.
	for _, ix := range touched {
		s := newSlots[ix]
		d := cur.Degree(r.origIDs[ix])
		switch {
		case d >= 3:
			g := func(i int) int32 { return int32(s[i]) }
			setHalf(g(0), 0, flatgraph.Half32{To: g(1), Port: 0})
			setHalf(g(0), 1, flatgraph.Half32{To: g(d - 1), Port: 1})
			for i := 1; i <= d-2; i++ {
				backPort := int32(1)
				if i == 1 {
					backPort = 0
				}
				setHalf(g(i), 0, flatgraph.Half32{To: g(i - 1), Port: backPort})
				setHalf(g(i), 1, flatgraph.Half32{To: g(i + 1), Port: 0})
			}
			setHalf(g(d-1), 0, flatgraph.Half32{To: g(d - 2), Port: 1})
			setHalf(g(d-1), 1, flatgraph.Half32{To: g(0), Port: 1})
		case d == 2:
			a, b := int32(s[0]), int32(s[1])
			setHalf(a, 0, flatgraph.Half32{To: b, Port: 0})
			setHalf(a, 1, flatgraph.Half32{To: b, Port: 1})
			setHalf(b, 0, flatgraph.Half32{To: a, Port: 0})
			setHalf(b, 1, flatgraph.Half32{To: a, Port: 1})
		case d == 1:
			a := int32(s[0])
			setHalf(a, 0, flatgraph.Half32{To: a, Port: 1})
			setHalf(a, 1, flatgraph.Half32{To: a, Port: 0})
		default: // d == 0: theta
			a, b := int32(s[0]), int32(s[1])
			for p := int32(0); p < 3; p++ {
				setHalf(a, p, flatgraph.Half32{To: b, Port: p})
				setHalf(b, p, flatgraph.Half32{To: a, Port: p})
			}
		}
	}

	// Original edges incident to touched nodes: rewrite both directions at
	// port 2 (the original-edge port of every non-theta gadget node). This
	// also repairs untouched neighbours whose half content went stale when
	// a touched endpoint's ports were compacted.
	slotOf := func(v graph.NodeID, p int) int32 {
		ix := r.origIdx[v]
		if touchedSet[ix] {
			s := newSlots[ix]
			return int32(s[p%len(s)])
		}
		s := r.slots[ix]
		return mapID(int32(s[p%len(s)]))
	}
	for _, ix := range touched {
		v := r.origIDs[ix]
		d := cur.Degree(v)
		for p := 0; p < d; p++ {
			h, err := cur.Neighbor(v, p)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrDeltaUnusable, err)
			}
			if _, ok := r.origIdx[h.To]; !ok {
				return nil, fmt.Errorf("%w: edge to unknown node %d", ErrDeltaUnusable, h.To)
			}
			gv := slotOf(v, p)
			gw := slotOf(h.To, h.ToPort)
			setHalf(gv, 2, flatgraph.Half32{To: gw, Port: 2})
			setHalf(gw, 2, flatgraph.Half32{To: gv, Port: 2})
		}
	}

	// New projection arrays: prefix copy, then patch relocated and
	// re-gadgeted entries.
	origArr := make([]graph.NodeID, nNew)
	origIx := make([]int32, nNew)
	pfx := nOld
	if nNew < pfx {
		pfx = nNew
	}
	copy(origArr, r.orig[:pfx])
	copy(origIx, r.origIx[:pfx])
	for _, oldID := range relocOld {
		newID := reloc[oldID]
		origArr[newID] = r.orig[oldID]
		origIx[newID] = r.origIx[oldID]
	}
	for _, ix := range touched {
		for _, gid := range newSlots[ix] {
			origArr[gid] = r.origIDs[ix]
			origIx[gid] = ix
		}
	}

	comp, sizes, err := r.incrementalComponents(cur, deltas, flat, origIx)
	if err != nil {
		return nil, err
	}

	rows := make([]flatgraph.RowWrite, 0, len(rowBuf))
	for id, buf := range rowBuf {
		rows = append(rows, flatgraph.RowWrite{Node: id, Halves: *buf})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Node < rows[j].Node })
	nf, err := flat.Patch(flatgraph.PatchSpec{
		NumNodes:  nNew,
		Orig:      origArr,
		Rows:      rows,
		Halves:    halfWrites,
		Comp:      comp,
		CompSizes: sizes,
	})
	if err != nil {
		return nil, fmt.Errorf("degred: patch: %w", err)
	}

	nr := &Reduced{
		orig:    origArr,
		origIx:  origIx,
		slots:   make([][]graph.NodeID, numOrig),
		origIDs: r.origIDs,
		origIdx: r.origIdx,
		flat:    nf,
	}
	copy(nr.slots, r.slots)
	for _, ix := range touched {
		nr.slots[ix] = newSlots[ix]
	}
	cloned := make(map[int32]bool)
	for _, oldID := range relocOld {
		ix := r.origIx[oldID]
		if !cloned[ix] {
			s := make([]graph.NodeID, len(nr.slots[ix]))
			copy(s, nr.slots[ix])
			nr.slots[ix] = s
			cloned[ix] = true
		}
		for j, gid := range nr.slots[ix] {
			if gid == graph.NodeID(oldID) {
				nr.slots[ix][j] = graph.NodeID(reloc[oldID])
				break
			}
		}
	}
	return nr, nil
}

// incrementalComponents maintains the canonical component index across a
// delta batch without a global recompute. Edge insertions can only merge
// components (label-level union-find); an edge removal can only split one,
// and only when no parallel edge survives, in which case the affected old
// components — and anything the batch connected them to — are re-labeled
// by a BFS scoped to them on the current graph. Labels are then ranked by
// minimum original NodeID, the same canonicalization computeComponents
// applies, so certificates minted from a delta compile and a full compile
// of the same topology version compare equal.
func (r *Reduced) incrementalComponents(cur *graph.Graph, deltas []graph.Delta, flat *flatgraph.Graph, newOrigIx []int32) (comp, sizes []int32, err error) {
	numOrig := len(r.origIDs)
	oldComps := flat.Components()
	oldCount := int32(oldComps.Count())
	labels := make([]int32, numOrig)
	for ix := 0; ix < numOrig; ix++ {
		labels[ix] = oldComps.Of(int32(r.slots[ix][0]))
	}

	// A removal might split its component unless it was a self-loop or a
	// parallel edge survives between the same endpoints.
	affected := make(map[int32]bool)
	for _, d := range deltas {
		if d.Op != graph.DeltaRemove || d.U == d.V || cur.HasEdge(d.U, d.V) {
			continue
		}
		affected[labels[r.origIdx[d.U]]] = true
		affected[labels[r.origIdx[d.V]]] = true
	}
	next := oldCount
	if len(affected) > 0 {
		visited := make([]bool, numOrig)
		var queue []int32
		for ix := 0; ix < numOrig; ix++ {
			if visited[ix] || !affected[labels[ix]] {
				continue
			}
			lbl := next
			next++
			queue = append(queue[:0], int32(ix))
			visited[ix] = true
			labels[ix] = lbl
			for len(queue) > 0 {
				x := queue[len(queue)-1]
				queue = queue[:len(queue)-1]
				v := r.origIDs[x]
				for p := 0; p < cur.Degree(v); p++ {
					h, nerr := cur.Neighbor(v, p)
					if nerr != nil {
						return nil, nil, fmt.Errorf("%w: %v", ErrDeltaUnusable, nerr)
					}
					// The search may legitimately flood into components the
					// batch merged with an affected one.
					wix, ok := r.origIdx[h.To]
					if !ok {
						return nil, nil, fmt.Errorf("%w: edge to unknown node %d", ErrDeltaUnusable, h.To)
					}
					if !visited[wix] {
						visited[wix] = true
						labels[wix] = lbl
						queue = append(queue, wix)
					}
				}
			}
		}
	}

	// Merges from insertions. An add whose edge did not survive the batch
	// is skipped: if it mattered, its removal was a potential split and the
	// BFS above already re-labeled from the true current graph.
	parent := make([]int32, next)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, d := range deltas {
		if d.Op != graph.DeltaAdd || !cur.HasEdge(d.U, d.V) {
			continue
		}
		a, b := find(labels[r.origIdx[d.U]]), find(labels[r.origIdx[d.V]])
		if a != b {
			parent[b] = a
		}
	}

	// Canonical relabel by minimum original NodeID, as in computeComponents.
	minOrig := make(map[int32]graph.NodeID)
	for ix := 0; ix < numOrig; ix++ {
		root := find(labels[ix])
		v := r.origIDs[ix]
		if currMin, ok := minOrig[root]; !ok || v < currMin {
			minOrig[root] = v
		}
	}
	roots := make([]int32, 0, len(minOrig))
	for root := range minOrig {
		roots = append(roots, root)
	}
	sort.Slice(roots, func(i, j int) bool { return minOrig[roots[i]] < minOrig[roots[j]] })
	rank := make(map[int32]int32, len(roots))
	for i, root := range roots {
		rank[root] = int32(i)
	}

	comp = make([]int32, len(newOrigIx))
	sizes = make([]int32, len(roots))
	for gid, ix := range newOrigIx {
		c := rank[find(labels[ix])]
		comp[gid] = c
		sizes[c]++
	}
	return comp, sizes, nil
}
