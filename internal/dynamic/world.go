package dynamic

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/degred"
	"repro/internal/flatgraph"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/prng"
)

// Edge is an undirected original-graph link in canonical order (U ≤ V;
// U == V is a self-loop).
type Edge struct {
	U, V graph.NodeID
}

// World owns an evolving network: the live mutable graph, optional node
// positions (mobility models derive connectivity from them), the epoch
// clock, and the compile cache that turns the current topology into the
// degree-reduced flat snapshot the walkers run on. All mutation goes
// through World methods so the topology version is tracked exactly; the
// compile cache is keyed by that version, which is what makes per-epoch
// recompilation an incremental cost instead of a per-hop one.
//
// A World is safe for concurrent use: any number of Routers may share one
// world (the serving layer's named long-lived worlds), each advancing the
// clock as its own walk progresses. State is guarded by an internal
// mutex; Advance additionally serializes whole epochs so a schedule's
// mutation burst is never interleaved with another schedule run, and
// Compiled rebuilds the snapshot under the lock so concurrent routers
// share one recompile instead of racing to duplicate it. The one
// concurrency caveat is Graph(): it returns the live graph, whose direct
// readers synchronize only with mutations made through World methods on
// the same goroutine — concurrent callers should use the locked
// HasNode/NumNodes/NumEdges/Edges accessors instead.
type World struct {
	// advMu serializes Advance calls: one epoch's schedule mutations
	// complete before the next epoch begins. It is always acquired before
	// mu (schedules mutate through the public locked methods), never the
	// other way around.
	advMu sync.Mutex
	// mu guards every field below.
	mu    sync.Mutex
	g     *graph.Graph
	pos   map[graph.NodeID]geom.Point
	sched Schedule

	epoch   int
	version uint64

	compiledVersion uint64
	compiledOK      bool
	red             *degred.Reduced
	flat            *flatgraph.Graph
	recompiles      int64
	cacheHits       int64
	recompileTime   time.Duration

	// Split recompile accounting: every rebuild is either a delta compile
	// (journal drained through degred.ApplyDelta, cost O(diff)) or a full
	// compile (degred.Reduce from scratch, cost O(graph)). The two counters
	// always sum to recompiles, and the two durations to recompileTime.
	deltaRecompiles int64
	fullRecompiles  int64
	deltaTime       time.Duration
	fullTime        time.Duration
	// deltaDisabled forces every rebuild down the full path — used by
	// differential tests and benchmarks that need the O(graph) baseline.
	deltaDisabled bool
	// recompObs, when set, observes every actual rebuild (never cache
	// hits). It runs under the world lock: it must be fast and must not
	// call back into the World.
	recompObs func(path string, version uint64, d time.Duration)

	// chaos is the optional fault injector (nil = off). It sits outside mu
	// so the per-hop read on the walk hot path is one atomic load.
	chaos atomic.Pointer[chaos.Injector]
}

// NewWorld builds a world over a private clone of g, evolving under sched
// (nil = static). The caller's graph is never mutated. The private clone
// carries a mutation journal so epoch recompiles can take the delta path.
func NewWorld(g *graph.Graph, sched Schedule) *World {
	w := &World{g: g.Clone(), sched: sched}
	w.g.SetJournal(graph.NewJournal(0))
	return w
}

// NewWorldFromCompiled builds a world over a private clone of g and seeds
// the epoch-0 compile cache with an existing reduction of g, so a prepared
// engine's compile work is reused until the first mutation. red must be
// the reduction of g.
func NewWorldFromCompiled(g *graph.Graph, red *degred.Reduced, sched Schedule) *World {
	w := NewWorld(g, sched)
	if red != nil {
		w.red, w.flat = red, red.Flat()
		w.compiledVersion, w.compiledOK = w.version, w.flat != nil
	}
	return w
}

// Graph returns the live graph. Callers must treat it as read-only (all
// mutation goes through the World so versioning stays exact) and, when
// other goroutines share the world, must not read it while an Advance may
// be mutating — use HasNode/NumNodes/NumEdges/Edges for synchronized
// reads.
func (w *World) Graph() *graph.Graph { return w.g }

// HasNode reports whether node v currently exists. Safe under concurrent
// mutation.
func (w *World) HasNode(v graph.NodeID) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.g.HasNode(v)
}

// NumNodes returns the current node count. Safe under concurrent mutation.
func (w *World) NumNodes() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.g.NumNodes()
}

// NumEdges returns the current link count. Safe under concurrent mutation.
func (w *World) NumEdges() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.g.NumEdges()
}

// Epoch returns the current epoch number (0 before the first Advance).
func (w *World) Epoch() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.epoch
}

// Version returns the topology version: it increments on every structural
// mutation and is the compile-cache key.
func (w *World) Version() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.version
}

// Recompiles returns how many times Compiled actually rebuilt the
// reduction+snapshot (cache misses) over the world's lifetime.
func (w *World) Recompiles() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.recompiles
}

// CacheHits returns how many Compiled calls were served from the
// per-epoch compile cache (version unchanged since the last rebuild).
func (w *World) CacheHits() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cacheHits
}

// RecompileTime returns the total wall time spent rebuilding the
// reduction+snapshot over the world's lifetime — the price churn charged
// this world so far.
func (w *World) RecompileTime() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.recompileTime
}

// DeltaRecompiles returns how many rebuilds took the O(diff) delta path.
func (w *World) DeltaRecompiles() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.deltaRecompiles
}

// FullRecompiles returns how many rebuilds took the O(graph) full path.
func (w *World) FullRecompiles() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fullRecompiles
}

// Snapshot is a consistent point-in-time summary of a world's state —
// all fields observed under one lock, so a reader racing a concurrent
// Advance never pairs one epoch's clock with another epoch's topology.
type Snapshot struct {
	Epoch      int
	Version    uint64
	Nodes      int
	Links      int
	Recompiles int64
	CacheHits  int64
	// DeltaRecompiles and FullRecompiles split Recompiles by compile path:
	// journal-driven O(diff) patches versus from-scratch O(graph) rebuilds.
	DeltaRecompiles int64
	FullRecompiles  int64
	// RecompileTime is the total wall time spent in churn-forced rebuilds;
	// DeltaRecompileTime and FullRecompileTime split it by path.
	RecompileTime      time.Duration
	DeltaRecompileTime time.Duration
	FullRecompileTime  time.Duration
}

// Snapshot returns the world's current state atomically.
func (w *World) Snapshot() Snapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Snapshot{
		Epoch:              w.epoch,
		Version:            w.version,
		Nodes:              w.g.NumNodes(),
		Links:              w.g.NumEdges(),
		Recompiles:         w.recompiles,
		CacheHits:          w.cacheHits,
		DeltaRecompiles:    w.deltaRecompiles,
		FullRecompiles:     w.fullRecompiles,
		RecompileTime:      w.recompileTime,
		DeltaRecompileTime: w.deltaTime,
		FullRecompileTime:  w.fullTime,
	}
}

// SetChaos installs (nil removes) a fault injector. Installed, it can fail
// recompiles and stall epoch advances on this world; the routers layer
// per-hop delays on top. Safe to call while routes are in flight.
func (w *World) SetChaos(inj *chaos.Injector) { w.chaos.Store(inj) }

// Chaos returns the installed fault injector, or nil.
func (w *World) Chaos() *chaos.Injector { return w.chaos.Load() }

// Advance moves the clock to the next epoch and lets the schedule mutate
// the topology. p describes the in-flight walk for reactive schedules
// (pass Probe{} when none is running). Concurrent Advances are serialized:
// on a shared world, topology time ticks with total traffic.
func (w *World) Advance(p Probe) error {
	w.advMu.Lock()
	defer w.advMu.Unlock()
	w.chaos.Load().EpochStall()
	w.mu.Lock()
	w.epoch++
	epoch := w.epoch
	w.mu.Unlock()
	if w.sched == nil {
		return nil
	}
	// The schedule runs outside mu (it mutates through the locked public
	// methods) but inside advMu, so exactly one epoch is in progress.
	if err := w.sched.Advance(w, epoch, p); err != nil {
		return fmt.Errorf("dynamic: epoch %d: %w", epoch, err)
	}
	return nil
}

// Compiled returns the degree reduction and flat CSR snapshot of the
// current topology, rebuilding them only when the version changed since
// the last call — the per-epoch compile cache. The rebuild happens under
// the world lock, so concurrent routers blocked on the same stale version
// share one recompile. The returned artifacts are immutable snapshots,
// safe to walk after the world has moved on.
//
// A rebuild prefers the delta path: if the previous compile is intact and
// the mutation journal is clean, the journaled edge deltas are replayed
// through degred.ApplyDelta, re-gadgeting only the touched nodes and
// patching the CSR snapshot in O(diff). Anything that poisons the journal
// (overflow, node insertion, label shuffles) or trips the re-gadgeting
// fraction guard falls back to a full O(graph) Reduce. Both paths produce
// byte-for-byte identical routing behaviour; only the price differs.
func (w *World) Compiled() (*degred.Reduced, *flatgraph.Graph, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.compiledOK && w.compiledVersion == w.version {
		w.cacheHits++
		return w.red, w.flat, nil
	}
	if err := w.chaos.Load().CompileFault(); err != nil {
		// The journal is NOT drained on an injected fault: the deltas are
		// still pending and the next attempt replays them.
		return nil, nil, fmt.Errorf("dynamic: recompile at version %d: %w", w.version, err)
	}
	start := time.Now()
	j := w.g.Journal()
	path := "full"
	var red *degred.Reduced
	if !w.deltaDisabled && w.compiledOK && w.red != nil && j != nil && !j.Dirty() {
		if dr, err := w.red.ApplyDelta(w.g, j.Peek()); err == nil {
			red, path = dr, "delta"
		}
	}
	if red == nil {
		r, err := degred.Reduce(w.g)
		if err != nil {
			return nil, nil, fmt.Errorf("dynamic: recompile at version %d: %w", w.version, err)
		}
		red = r
	}
	flat := red.Flat()
	if flat == nil {
		return nil, nil, fmt.Errorf("dynamic: flat snapshot failed at version %d", w.version)
	}
	if j != nil {
		j.Reset()
	}
	elapsed := time.Since(start)
	w.red, w.flat = red, flat
	w.compiledVersion, w.compiledOK = w.version, true
	w.recompiles++
	w.recompileTime += elapsed
	if path == "delta" {
		w.deltaRecompiles++
		w.deltaTime += elapsed
	} else {
		w.fullRecompiles++
		w.fullTime += elapsed
	}
	if w.recompObs != nil {
		w.recompObs(path, w.version, elapsed)
	}
	return w.red, w.flat, nil
}

// SetRecompileObserver installs fn to be called on every actual rebuild
// (cache hits never fire it) with the compile path ("delta" or "full"),
// the topology version compiled, and the wall time spent. fn runs under
// the world lock: keep it fast and never call back into the World. Pass
// nil to remove.
func (w *World) SetRecompileObserver(fn func(path string, version uint64, d time.Duration)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.recompObs = fn
}

// SetDeltaCompilation enables or disables the delta compile path (enabled
// by default). Disabling forces every rebuild through the full O(graph)
// Reduce — the baseline that differential tests and benchmarks compare
// the delta path against.
func (w *World) SetDeltaCompilation(enabled bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.deltaDisabled = !enabled
}

// AddEdge inserts an edge between u and v (assigning the next free port at
// each endpoint) and bumps the topology version.
func (w *World) AddEdge(u, v graph.NodeID) (portU, portV int, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	pu, pv, err := w.g.AddEdge(u, v)
	if err == nil {
		w.version++
	}
	return pu, pv, err
}

// RemoveEdge deletes the edge at port p of node v and bumps the topology
// version.
func (w *World) RemoveEdge(v graph.NodeID, p int) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.removeEdgeLocked(v, p)
}

func (w *World) removeEdgeLocked(v graph.NodeID, p int) error {
	if err := w.g.RemoveEdge(v, p); err != nil {
		return err
	}
	w.version++
	return nil
}

// RemoveEdgeBetween deletes one edge joining u and v (the lowest-port one
// at u), bumping the topology version. It reports graph.ErrPortRange if no
// such edge exists.
func (w *World) RemoveEdgeBetween(u, v graph.NodeID) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.g.Degree(u) < 0 {
		return fmt.Errorf("%w: %d", graph.ErrNodeNotFound, u)
	}
	p, ok := w.g.PortTo(u, v)
	if !ok {
		return fmt.Errorf("%w: no edge %d-%d", graph.ErrPortRange, u, v)
	}
	return w.removeEdgeLocked(u, p)
}

// Edges lists the current links once each, in the deterministic scan order
// (node insertion order, ports ascending). Self-loops appear once.
func (w *World) Edges() []Edge {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []Edge
	for _, v := range w.g.Nodes() {
		for p := 0; p < w.g.Degree(v); p++ {
			h, err := w.g.Neighbor(v, p)
			if err != nil {
				continue
			}
			if h.To > v || (h.To == v && h.ToPort > p) {
				out = append(out, Edge{U: v, V: h.To})
			}
		}
	}
	return out
}

// Pos returns node v's position, if one is known.
func (w *World) Pos(v graph.NodeID) (geom.Point, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	p, ok := w.pos[v]
	return p, ok
}

// SetPos places node v. Positions alone carry no topology (edges change
// only via Add/RemoveEdge), so this does not bump the version.
func (w *World) SetPos(v graph.NodeID, p geom.Point) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.setPosLocked(v, p)
}

func (w *World) setPosLocked(v graph.NodeID, p geom.Point) {
	if w.pos == nil {
		w.pos = make(map[graph.NodeID]geom.Point, w.g.NumNodes())
	}
	w.pos[v] = p
}

// SetPositions installs a full placement (copied).
func (w *World) SetPositions(pos map[graph.NodeID]geom.Point) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pos = make(map[graph.NodeID]geom.Point, len(pos))
	for v, p := range pos {
		w.pos[v] = p
	}
}

// HasPositions reports whether every node has a position.
func (w *World) HasPositions() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.pos == nil {
		return false
	}
	for _, v := range w.g.Nodes() {
		if _, ok := w.pos[v]; !ok {
			return false
		}
	}
	return true
}

// SeedPositions places every node without a position uniformly at random
// in the unit square, deterministically in seed. Mobility schedules call
// this when handed a world that has no geometry yet.
func (w *World) SeedPositions(seed uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	src := prng.New(seed)
	for _, v := range w.g.Nodes() {
		if _, ok := w.pos[v]; !ok {
			w.setPosLocked(v, geom.Point{X: src.Float64(), Y: src.Float64()})
		}
	}
}
