package engine

import (
	"repro/internal/dynamic"
	"repro/internal/graph"
)

// NewWorld returns a dynamic world seeded with this engine's network and
// its already-compiled degree reduction, evolving under sched. The world
// owns a private clone of the graph, so any number of worlds (one per
// dynamic query, in the serving layer) can evolve independently while the
// engine keeps serving static queries; none of them recompiles anything
// until its topology actually diverges.
func (e *Engine) NewWorld(sched dynamic.Schedule) *dynamic.World {
	return dynamic.NewWorldFromCompiled(e.g, e.red, sched)
}

// RouteDynamic answers one s→t query over the evolving world w, advancing
// the topology every cfg.HopsPerEpoch hops and carrying the stateless
// header across snapshot recompiles. Protocol parameters (sequence family
// seed, length factor, known bound, bound cap) always come from the
// engine so dynamic and static queries speak the same protocol; cfg
// supplies only the dynamics knobs.
func (e *Engine) RouteDynamic(w *dynamic.World, s, t graph.NodeID, cfg dynamic.Config) (*dynamic.Result, error) {
	cfg.Seed = e.cfg.Seed
	cfg.LengthFactor = e.cfg.LengthFactor
	cfg.KnownN = e.cfg.KnownBound
	if cfg.MaxBound == 0 {
		cfg.MaxBound = e.cfg.MaxBound
	}
	start := sampleStart(e.m.dynamicRoutes.Add(1))
	res, err := dynamic.NewRouter(w, cfg).Route(s, t)
	e.m.recordDynamic(res, err, start)
	return res, err
}
