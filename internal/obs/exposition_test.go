package obs

import (
	"bytes"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	c := NewCounter("test_ops_total", "Operations.", nil)
	c.Add(7)
	g := NewGauge("test_depth", "Depth.", Labels{"shard": "a"})
	g.Set(3)
	h := NewLatencyHistogram("test_op_seconds", "Op latency.", nil)
	h.Observe(2_000_000)                                              // 2 ms, plain
	h.ObserveExemplar(40_000_000, "deadbeefdeadbeefdeadbeefdeadbeef") // 40 ms, sampled
	reg.MustRegister(c, g, h)
	return reg
}

func TestContentNegotiation(t *testing.T) {
	reg := testRegistry(t)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	get := func(accept string) (string, string) {
		t.Helper()
		req := httptest.NewRequest("GET", "/metrics", nil)
		req.Header.Set("Accept", accept)
		rec := httptest.NewRecorder()
		reg.Handler().ServeHTTP(rec, req)
		body, _ := io.ReadAll(rec.Result().Body)
		return rec.Result().Header.Get("Content-Type"), string(body)
	}

	// Default (curl-style) and explicitly classic Accepts get the v0.0.4
	// text format: no EOF, counter family keeps _total, no exemplars.
	for _, accept := range []string{"", "*/*", "text/plain"} {
		ct, body := get(accept)
		if ct != ContentTypePrometheus {
			t.Fatalf("Accept %q: Content-Type = %q", accept, ct)
		}
		if strings.Contains(body, "# EOF") {
			t.Fatalf("Accept %q: classic exposition must not carry # EOF", accept)
		}
		if !strings.Contains(body, "# TYPE test_ops_total counter") {
			t.Fatalf("Accept %q: classic counter family keeps _total:\n%s", accept, body)
		}
		if strings.Contains(body, "# {") {
			t.Fatalf("Accept %q: classic exposition must not carry exemplars", accept)
		}
		if errs := Lint(body, false); errs != nil {
			t.Fatalf("Accept %q: lint: %v", accept, errs)
		}
	}

	// The Prometheus scraper's preference list negotiates OpenMetrics.
	ct, body := get("application/openmetrics-text;version=1.0.0,text/plain;version=0.0.4;q=0.5")
	if ct != ContentTypeOpenMetrics {
		t.Fatalf("OpenMetrics Content-Type = %q", ct)
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Fatalf("OpenMetrics exposition must end with # EOF:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE test_ops counter") {
		t.Fatalf("OpenMetrics counter family drops _total:\n%s", body)
	}
	if !strings.Contains(body, "test_ops_total 7") {
		t.Fatalf("OpenMetrics counter sample keeps _total:\n%s", body)
	}
	if !strings.Contains(body, `# {trace_id="deadbeefdeadbeefdeadbeefdeadbeef"} 0.04`) {
		t.Fatalf("OpenMetrics histogram must carry the exemplar:\n%s", body)
	}
	if errs := Lint(body, true); errs != nil {
		t.Fatalf("OpenMetrics lint: %v", errs)
	}
}

func TestExemplarStaysInItsBucket(t *testing.T) {
	h := NewLatencyHistogram("test_ex_seconds", "help", nil)
	h.ObserveExemplar(40_000_000, "aa") // 40 ms -> le=0.05 bucket
	var b bytes.Buffer
	h.writeOpenMetrics(&b)
	var line string
	for _, l := range strings.Split(b.String(), "\n") {
		if strings.Contains(l, "# {") {
			line = l
			break
		}
	}
	if line == "" {
		t.Fatalf("no exemplar line:\n%s", b.String())
	}
	if !strings.Contains(line, `le="0.05"`) {
		t.Fatalf("exemplar attached to the wrong bucket: %s", line)
	}
	if !strings.Contains(line, "} 0.04 ") {
		t.Fatalf("exemplar value must be the rendered observation: %s", line)
	}
}

func TestRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	if err := RegisterRuntimeMetrics(reg); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"go_goroutines ",
		"go_memstats_heap_alloc_bytes ",
		"go_gc_cycles_total ",
		"# TYPE go_gc_pause_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("runtime exposition missing %q:\n%s", want, out)
		}
	}
	if errs := Lint(out, false); errs != nil {
		t.Fatalf("lint: %v", errs)
	}
}

func TestObserveSinceExemplar(t *testing.T) {
	h := NewLatencyHistogram("test_since_seconds", "help", nil)
	h.ObserveSinceExemplar(time.Now().Add(-time.Millisecond), "ff")
	if h.Count() != 1 {
		t.Fatalf("Count = %d", h.Count())
	}
}
