package registry

import (
	"container/list"
	"fmt"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Config bounds a Registry. The zero value gets serving-appropriate
// defaults.
type Config struct {
	// Capacity is the maximum number of resident compiled engines
	// (0 = DefaultCapacity). The least recently used entry is evicted
	// beyond it.
	Capacity int
	// MaxNodes and MaxEdges cap any single spec (0 = defaults) — specs
	// are client input and compile cost grows superlinearly with size.
	MaxNodes int
	MaxEdges int
	// Workers is the batch worker-pool size compiled into each engine
	// (0 = GOMAXPROCS).
	Workers int
}

// Registry defaults.
const (
	DefaultCapacity = 8
	DefaultMaxNodes = 4096
	DefaultMaxEdges = 1 << 16
)

func (c Config) capacity() int {
	if c.Capacity <= 0 {
		return DefaultCapacity
	}
	return c.Capacity
}

func (c Config) maxNodes() int {
	if c.MaxNodes <= 0 {
		return DefaultMaxNodes
	}
	return c.MaxNodes
}

func (c Config) maxEdges() int {
	if c.MaxEdges <= 0 {
		return DefaultMaxEdges
	}
	return c.MaxEdges
}

// Entry is one resident compiled network. Immutable after insertion; the
// engine inside serves any number of concurrent queries.
type Entry struct {
	// ID is the stable spec-derived identifier (Spec.ID).
	ID string
	// Desc is the human-readable network description.
	Desc string
	// Spec is the spec the entry was compiled from.
	Spec Spec
	// Eng is the compiled engine.
	Eng *engine.Engine
	// Pos is the node placement for geometric specs (nil otherwise);
	// worlds seeded from this entry start their mobility models here.
	Pos map[graph.NodeID]geom.Point
	// CompileTime is the wall time this entry's compile took (topology
	// build + engine compile) — zero coordination cost afterwards; shown
	// by the serving layer's network info endpoints.
	CompileTime time.Duration

	key  string        // canonical Spec.Key, stored so hits compare without re-hashing
	elem *list.Element // registry LRU position; guarded by Registry.mu
}

// Stats is a point-in-time snapshot of registry traffic.
type Stats struct {
	// Hits counts Obtain/Get calls served from cache; Misses counts
	// Obtain calls that had to compile (or join a compile in flight).
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Compiles counts actual engine compiles; Dedups counts Obtain calls
	// that joined another caller's in-flight compile instead of starting
	// their own — the singleflight savings.
	Compiles int64 `json:"compiles"`
	Dedups   int64 `json:"dedups"`
	// Evictions counts entries dropped by the LRU bound.
	Evictions int64 `json:"evictions"`
	// Size and Capacity describe the cache.
	Size     int `json:"size"`
	Capacity int `json:"capacity"`
}

// flight is one in-progress compile; duplicate requesters block on done
// and share the outcome.
type flight struct {
	done chan struct{}
	ent  *Entry
	err  error
}

// Registry is the bounded LRU of compiled engines. Safe for concurrent
// use.
type Registry struct {
	cfg Config

	mu      sync.Mutex
	entries map[string]*Entry  // by ID
	order   *list.List         // of *Entry; front = most recently used
	flights map[string]*flight // by ID

	hits, misses, compiles, dedups, evictions int64

	// compileSeconds distributes the cost of actual compiles (not dedup
	// joiners) — the latency a cold tenant pays and the LRU amortizes.
	compileSeconds *obs.Histogram

	// vecs, when set, attaches every compiled engine to the process-wide
	// per-network metric families under its registry ID. Set once at
	// boot, before traffic (read without synchronization in compile).
	vecs *engine.Vecs
}

// New builds an empty registry.
func New(cfg Config) *Registry {
	return &Registry{
		cfg:     cfg,
		entries: make(map[string]*Entry),
		order:   list.New(),
		flights: make(map[string]*flight),
		compileSeconds: obs.NewLatencyHistogram("adhoc_registry_compile_seconds",
			"Latency of tenant network compiles (topology build + degree reduction + flat snapshot).", nil),
	}
}

// SetVecs binds the per-network metric families every subsequently
// compiled engine attaches to. Call once at boot, before traffic.
func (r *Registry) SetVecs(v *engine.Vecs) { r.vecs = v }

// RegisterMetrics exports the registry's traffic counters, occupancy
// gauges, compile-latency histogram, and a per-resident-network query
// gauge into o under the adhoc_registry_* / adhoc_network_* families. The
// counters are collect-time reads of the stats the registry already
// maintains, so the serving hot path pays nothing extra.
func (r *Registry) RegisterMetrics(o *obs.Registry) error {
	stat := func(f func(Stats) int64) func() float64 {
		return func() float64 { return float64(f(r.Stats())) }
	}
	return o.Register(
		obs.NewCounterFunc("adhoc_registry_hits_total", "Obtain/Get calls served from cache.", nil,
			stat(func(s Stats) int64 { return s.Hits })),
		obs.NewCounterFunc("adhoc_registry_misses_total", "Obtain calls that compiled or joined an in-flight compile.", nil,
			stat(func(s Stats) int64 { return s.Misses })),
		obs.NewCounterFunc("adhoc_registry_compiles_total", "Actual engine compiles performed.", nil,
			stat(func(s Stats) int64 { return s.Compiles })),
		obs.NewCounterFunc("adhoc_registry_dedups_total", "Obtain calls that joined another caller's compile (singleflight savings).", nil,
			stat(func(s Stats) int64 { return s.Dedups })),
		obs.NewCounterFunc("adhoc_registry_evictions_total", "Entries dropped by the LRU bound.", nil,
			stat(func(s Stats) int64 { return s.Evictions })),
		obs.NewGaugeFunc("adhoc_registry_networks", "Resident compiled engines.", nil,
			stat(func(s Stats) int64 { return int64(s.Size) })),
		obs.NewGaugeFunc("adhoc_registry_capacity", "Configured LRU capacity.", nil,
			stat(func(s Stats) int64 { return int64(s.Capacity) })),
		r.compileSeconds,
		obs.NewGaugeVecFunc("adhoc_network_queries",
			"Completed queries per resident network (drops when an engine is evicted, hence a gauge).",
			func() []obs.Sample {
				ents := r.List()
				out := make([]obs.Sample, len(ents))
				for i, ent := range ents {
					out[i] = obs.Sample{Labels: obs.Labels{"network": ent.ID}, Value: float64(ent.Eng.Stats().Queries())}
				}
				return out
			}),
	)
}

// Get returns the resident entry with the given ID, marking it most
// recently used. It never compiles: an evicted or never-compiled ID is
// simply absent (the caller re-Obtains by spec).
func (r *Registry) Get(id string) (*Entry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ent, ok := r.entries[id]
	if !ok {
		return nil, false
	}
	r.hits++
	r.order.MoveToFront(ent.elem)
	return ent, true
}

// Obtain returns the compiled engine for spec, compiling it on first use.
// cached reports whether the entry was already resident. Concurrent
// Obtains of the same spec are deduplicated: exactly one compiles, the
// rest block and share the result. Obtains of different specs compile in
// parallel.
func (r *Registry) Obtain(spec Spec) (ent *Entry, cached bool, err error) {
	return r.obtain(spec, nil)
}

// ObtainTraced is Obtain recording the cache outcome under sp: a
// "registry.hit" or "registry.join" (singleflight dedup) event, or a
// "registry.compile" child span around an actual compile. A nil
// (unsampled) span behaves exactly like Obtain.
func (r *Registry) ObtainTraced(spec Spec, sp *trace.Span) (ent *Entry, cached bool, err error) {
	return r.obtain(spec, sp)
}

func (r *Registry) obtain(spec Spec, sp *trace.Span) (ent *Entry, cached bool, err error) {
	if err := spec.validate(r.cfg.maxNodes(), r.cfg.maxEdges()); err != nil {
		return nil, false, err
	}
	key := spec.Key()
	id := idOf(key)

	r.mu.Lock()
	if ent, ok := r.entries[id]; ok {
		if ent.key != key {
			// A truncated-hash collision: never serve another spec's
			// engine under a matching ID.
			r.mu.Unlock()
			return nil, false, fmt.Errorf("%w: id %s collides with resident %s", ErrBadSpec, id, ent.Desc)
		}
		r.hits++
		r.order.MoveToFront(ent.elem)
		r.mu.Unlock()
		if sp.Recording() {
			sp.Event("registry.hit", trace.String("network", id))
		}
		return ent, true, nil
	}
	r.misses++
	if f, ok := r.flights[id]; ok {
		// Someone is already compiling this spec: join their flight.
		r.dedups++
		r.mu.Unlock()
		if sp.Recording() {
			sp.Event("registry.join", trace.String("network", id))
		}
		<-f.done
		if f.err == nil && f.ent.key != key {
			return nil, false, fmt.Errorf("%w: id %s collides with in-flight compile", ErrBadSpec, id)
		}
		return f.ent, false, f.err
	}
	f := &flight{done: make(chan struct{})}
	r.flights[id] = f
	r.compiles++
	r.mu.Unlock()

	// Compile outside the lock: distinct specs must not serialize.
	csp := sp.Child("registry.compile")
	if csp.Recording() {
		csp.SetAttr(trace.String("network", id), trace.String("spec", spec.Desc()))
	}
	f.ent, f.err = r.compile(id, key, spec)
	if csp.Recording() {
		if f.err != nil {
			csp.SetAttr(trace.String("error", f.err.Error()))
		} else {
			csp.SetAttr(trace.Int("nodes", int64(f.ent.Eng.Graph().NumNodes())),
				trace.Int("edges", int64(f.ent.Eng.Graph().NumEdges())))
		}
		csp.End()
	}

	r.mu.Lock()
	delete(r.flights, id)
	if f.err == nil {
		r.insertLocked(f.ent)
	}
	r.mu.Unlock()
	close(f.done)
	return f.ent, false, f.err
}

// compile builds the topology and the engine for spec.
func (r *Registry) compile(id, key string, spec Spec) (*Entry, error) {
	start := time.Now()
	g, pos, err := spec.build()
	if err != nil {
		return nil, err
	}
	// Authoritative size gate: validate() bounds what the generators can
	// produce, but the geometric kinds only estimate their edge count, so
	// the built graph is re-checked before the expensive compile.
	if g.NumEdges() > r.cfg.maxEdges() {
		return nil, fmt.Errorf("%w: built %d edges > limit %d", ErrTooLarge, g.NumEdges(), r.cfg.maxEdges())
	}
	eng, err := engine.Compile(g, engine.Config{
		Seed:       spec.Seed,
		KnownBound: spec.KnownBound,
		Workers:    r.cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("registry: compile %s: %w", spec.Desc(), err)
	}
	// Attach before publication: the engine must carry its per-network
	// series from its first query.
	eng.AttachVecs(r.vecs, id)
	elapsed := time.Since(start)
	r.compileSeconds.Observe(int64(elapsed))
	return &Entry{ID: id, Desc: spec.Desc(), Spec: spec, Eng: eng, Pos: pos, CompileTime: elapsed, key: key}, nil
}

// insertLocked adds ent at the front of the LRU and evicts beyond
// capacity. Evicted engines stay alive for whoever still references them
// (a world seeded from one, a request in flight); the registry merely
// forgets them.
func (r *Registry) insertLocked(ent *Entry) {
	if cur, ok := r.entries[ent.ID]; ok {
		// A concurrent flight for the same ID cannot exist (flights are
		// keyed by ID), but be idempotent anyway.
		r.order.MoveToFront(cur.elem)
		return
	}
	ent.elem = r.order.PushFront(ent)
	r.entries[ent.ID] = ent
	for r.order.Len() > r.cfg.capacity() {
		back := r.order.Back()
		victim := back.Value.(*Entry)
		r.order.Remove(back)
		delete(r.entries, victim.ID)
		r.evictions++
	}
}

// List returns the resident entries, most recently used first.
func (r *Registry) List() []*Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Entry, 0, r.order.Len())
	for e := r.order.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(*Entry))
	}
	return out
}

// Len returns the number of resident entries.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Stats snapshots the traffic counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Hits:      r.hits,
		Misses:    r.misses,
		Compiles:  r.compiles,
		Dedups:    r.dedups,
		Evictions: r.evictions,
		Size:      len(r.entries),
		Capacity:  r.cfg.capacity(),
	}
}
