package trace

import "time"

// The export types are the wire shapes served by GET /v1/traces and
// GET /v1/traces/{id}. They are plain data — building them copies out of
// the immutable finished trace, so handlers can marshal them freely.

// Summary is the list-view shape of one retained trace.
type Summary struct {
	TraceID    string    `json:"trace_id"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationNS int64     `json:"duration_ns"`
	Error      string    `json:"error,omitempty"`
	Spans      int       `json:"spans"`
	Hops       int64     `json:"hops"`
}

// Export is the full detail shape of one retained trace.
type Export struct {
	TraceID    string       `json:"trace_id"`
	ParentSpan string       `json:"parent_span,omitempty"`
	Name       string       `json:"name"`
	Start      time.Time    `json:"start"`
	DurationNS int64        `json:"duration_ns"`
	Error      string       `json:"error,omitempty"`
	Spans      []SpanExport `json:"spans"`
}

// SpanExport is one span within an Export.
type SpanExport struct {
	SpanID        string         `json:"span_id"`
	Parent        string         `json:"parent,omitempty"`
	Name          string         `json:"name"`
	Start         time.Time      `json:"start"`
	DurationNS    int64          `json:"duration_ns"`
	Attrs         map[string]any `json:"attrs,omitempty"`
	Events        []EventExport  `json:"events,omitempty"`
	EventsDropped int64          `json:"events_dropped,omitempty"`
	HopTotal      int64          `json:"hop_total,omitempty"`
	HopsDropped   int64          `json:"hops_dropped,omitempty"`
	Hops          []HopEvent     `json:"hops,omitempty"`
}

// EventExport is one timed span event on the wire.
type EventExport struct {
	Time  time.Time      `json:"time"`
	Name  string         `json:"name"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.K] = a.V
	}
	return m
}

// Summarize builds the list-view shape. Call only on finished traces.
func (tr *Trace) Summarize() Summary {
	var hops int64
	for _, sp := range tr.spans {
		hops += sp.hopTotal
	}
	return Summary{
		TraceID:    tr.id.String(),
		Name:       tr.root.name,
		Start:      tr.start,
		DurationNS: int64(tr.end.Sub(tr.start)),
		Error:      tr.Err(),
		Spans:      len(tr.spans),
		Hops:       hops,
	}
}

// Export builds the full detail shape. Call only on finished traces.
func (tr *Trace) Export() Export {
	ex := Export{
		TraceID:    tr.id.String(),
		Name:       tr.root.name,
		Start:      tr.start,
		DurationNS: int64(tr.end.Sub(tr.start)),
		Error:      tr.Err(),
		Spans:      make([]SpanExport, 0, len(tr.spans)),
	}
	if !tr.parent.IsZero() {
		ex.ParentSpan = tr.parent.String()
	}
	for _, sp := range tr.spans {
		ex.Spans = append(ex.Spans, sp.export())
	}
	return ex
}

func (sp *Span) export() SpanExport {
	se := SpanExport{
		SpanID:        sp.id.String(),
		Name:          sp.name,
		Start:         sp.start,
		DurationNS:    int64(sp.Duration()),
		Attrs:         attrMap(sp.attrs),
		EventsDropped: sp.eventsDropped,
		HopTotal:      sp.hopTotal,
	}
	if !sp.parent.IsZero() {
		se.Parent = sp.parent.String()
	}
	for _, ev := range sp.events {
		se.Events = append(se.Events, EventExport{Time: ev.Time, Name: ev.Name, Attrs: attrMap(ev.Attrs)})
	}
	// Unroll the tail ring into hop order, oldest retained hop first.
	n := int64(len(sp.hops))
	if sp.hopTotal > 0 {
		kept := sp.hopTotal
		if kept > n {
			kept = n
			se.HopsDropped = sp.hopTotal - n
		}
		se.Hops = make([]HopEvent, 0, kept)
		for h := sp.hopTotal - kept; h < sp.hopTotal; h++ {
			se.Hops = append(se.Hops, sp.hops[h%n])
		}
	}
	return se
}
