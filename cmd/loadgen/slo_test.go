package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/slo"
)

func readJSON(t *testing.T, path string, out any) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("decode %s: %v", path, err)
	}
}

// sloStub wraps the plain stubServer with a GET /v1/slo endpoint serving
// a canned objective list, so -slo evaluation can be tested without a
// real adhocd.
func sloStub(st *stubServer, objs []slo.ObjectiveReport) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", st.handler())
	mux.HandleFunc("GET /v1/slo", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(sloServerReport{Objectives: objs})
	})
	return mux
}

// TestRunSLOClean drives a short route-only run with -slo against a
// server whose objectives are healthy and generous; the run must succeed
// and report no violations.
func TestRunSLOClean(t *testing.T) {
	st := &stubServer{}
	ts := httptest.NewServer(sloStub(st, []slo.ObjectiveReport{
		{Name: "route_p99", Objective: "route_p99 < 10s", Quantile: 0.99,
			Budget: 0.01, Threshold: 10, Unit: "s"},
		{Name: "wrong_verdicts", Objective: "wrong_verdicts == 0",
			ClientEvaluated: true},
	}))
	defer ts.Close()

	jsonPath := filepath.Join(t.TempDir(), "report.json")
	var out bytes.Buffer
	err := run([]string{
		"-addr", ts.URL, "-c", "2", "-d", "150ms",
		"-mix", "route=1", "-slo", "-json", jsonPath,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v (output: %s)", err, out.String())
	}
	var rep Report
	readJSON(t, jsonPath, &rep)
	if len(rep.SLOViolations) != 0 {
		t.Fatalf("unexpected violations: %v", rep.SLOViolations)
	}
}

// TestRunSLOViolations covers the three violation classes: a burning
// server-side objective, a latency objective whose threshold no real run
// can meet, and — structurally — that each lands in the report and the
// run exits nonzero.
func TestRunSLOViolations(t *testing.T) {
	st := &stubServer{}
	ts := httptest.NewServer(sloStub(st, []slo.ObjectiveReport{
		// Burning regardless of what the client measured.
		{Name: "errors", Objective: "errors == 0", Burning: true},
		// 1ns threshold: any measured client p99 exceeds it.
		{Name: "route_p99", Objective: "route_p99 < 1ns", Quantile: 0.99,
			Budget: 0.01, Threshold: 1e-9, Unit: "s"},
	}))
	defer ts.Close()

	jsonPath := filepath.Join(t.TempDir(), "report.json")
	var out bytes.Buffer
	err := run([]string{
		"-addr", ts.URL, "-c", "2", "-d", "150ms",
		"-mix", "route=1", "-slo", "-json", jsonPath,
	}, &out)
	if err == nil {
		t.Fatalf("run succeeded despite violations (output: %s)", out.String())
	}
	if !strings.Contains(err.Error(), "SLO violation") {
		t.Fatalf("error %q does not mention SLO violation", err)
	}
	var rep Report
	readJSON(t, jsonPath, &rep)
	if len(rep.SLOViolations) != 2 {
		t.Fatalf("violations = %v, want 2", rep.SLOViolations)
	}
	joined := strings.Join(rep.SLOViolations, "\n")
	if !strings.Contains(joined, "burning server-side") {
		t.Errorf("missing burning violation: %v", rep.SLOViolations)
	}
	if !strings.Contains(joined, "route_p99") || !strings.Contains(joined, "measured") {
		t.Errorf("missing latency violation: %v", rep.SLOViolations)
	}
	if !strings.Contains(out.String(), "SLO VIOLATION") {
		t.Errorf("text report does not surface violations: %s", out.String())
	}
}

// TestRunSLOEndpointMissing: pointing -slo at a server without /v1/slo
// (the daemon booted with -slo off) is a hard error, not a silent pass.
func TestRunSLOEndpointMissing(t *testing.T) {
	st := &stubServer{}
	ts := httptest.NewServer(st.handler())
	defer ts.Close()

	var out bytes.Buffer
	err := run([]string{
		"-addr", ts.URL, "-c", "1", "-d", "100ms",
		"-mix", "route=1", "-slo",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "/v1/slo") {
		t.Fatalf("err = %v, want /v1/slo failure", err)
	}
}
