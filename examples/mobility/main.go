// Mobility: route messages through an ad hoc network whose nodes are
// moving while the messages are in flight.
//
// 40 sensors drift through the unit square under the random-waypoint
// model; every few dozen hops their radio topology is re-derived from the
// new positions, the degree reduction is recompiled, and the in-flight
// walk resumes on the fresh snapshot carrying nothing but its stateless
// O(log n) header — the resumption the paper's obliviousness argument
// makes possible.
package main

import (
	"fmt"
	"log"

	"repro/internal/dynamic"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		nodes  = 40
		radius = 0.3
	)
	geo := gen.UDG2D(nodes, radius, 11)
	fmt.Printf("network: %d mobile sensors, radio range %.2f, %d initial links\n",
		nodes, radius, geo.G.NumEdges())

	for _, speed := range []float64{0, 0.02, 0.06} {
		sched := &dynamic.RandomWaypoint{
			Seed: 5, SpeedMin: speed / 2, SpeedMax: speed, Radius: radius,
		}
		w := dynamic.NewWorld(geo.G, sched)
		w.SetPositions(geo.Pos)
		router := dynamic.NewRouter(w, dynamic.Config{Seed: 7, HopsPerEpoch: 32})

		res, err := router.Route(0, graph.NodeID(nodes-1))
		if err != nil {
			return err
		}
		verdict := "undelivered"
		switch res.Status {
		case netsim.StatusSuccess:
			verdict = "delivered"
		case netsim.StatusFailure:
			verdict = "provably unreachable right now"
		}
		fmt.Printf("speed %.2f: %s after %d hops, %d epochs elapsed, %d recompiles, %d header migrations, %d-bit header\n",
			speed, verdict, res.Hops, res.Epochs, res.Recompiles, res.Resumptions, res.MaxHeaderBits)
	}

	fmt.Println("\nThe walk never parked state at intermediate nodes, so every")
	fmt.Println("topology change cost exactly one snapshot recompile — the")
	fmt.Println("message itself just kept walking.")
	return nil
}
