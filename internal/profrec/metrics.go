package profrec

import "repro/internal/obs"

// RegisterMetrics exposes the recorder's own counters, making the
// profile flight recorder observable the same way the trace recorder is:
// trips taken, trips rate-limited away, ring evictions, capture errors,
// and the number of snapshots currently held.
func (r *Recorder) RegisterMetrics(reg *obs.Registry) error {
	return reg.Register(
		obs.NewCounterFunc("adhoc_profiles_trips_total",
			"Profile captures triggered (SLO burns and latency guards).", nil,
			func() float64 { return float64(r.trips.Load()) }),
		obs.NewCounterFunc("adhoc_profiles_dropped_total",
			"Profile trips suppressed by the rate limiter.", nil,
			func() float64 { return float64(r.dropped.Load()) }),
		obs.NewCounterFunc("adhoc_profiles_evicted_total",
			"Profile snapshots evicted from the ring.", nil,
			func() float64 { return float64(r.evicted.Load()) }),
		obs.NewCounterFunc("adhoc_profiles_errors_total",
			"Profile captures that failed (including CPU-profiler contention).", nil,
			func() float64 { return float64(r.errors.Load()) }),
		obs.NewGaugeFunc("adhoc_profiles_held",
			"Profile snapshots currently resident in the ring.", nil,
			func() float64 { return float64(r.Stats().Held) }),
	)
}
