package dynamic

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/prng"
)

// Probe exposes the in-flight walk to schedules that react to it (the
// adversarial link cutter). The next-link computation is lazy: schedules
// that ignore the walk never pay for the lookahead.
type Probe struct {
	// Active reports whether a walk is in flight.
	Active bool
	// At is the original node currently holding the message.
	At graph.NodeID
	// nextLink, when non-nil, computes the next original-graph link the
	// walk intends to traverse on the current snapshot.
	nextLink func() (Edge, bool)
}

// NextLink returns the next original-graph link the walk will traverse,
// if the walk is active and will cross one within its lookahead horizon.
func (p Probe) NextLink() (Edge, bool) {
	if p.nextLink == nil {
		return Edge{}, false
	}
	return p.nextLink()
}

// Schedule mutates a world at each epoch boundary. Implementations must
// mutate only through World methods (AddEdge, RemoveEdge, SetPos, …) so
// the topology version stays exact, and must be deterministic in their
// seeds — reruns of a scenario reproduce the identical topology history.
type Schedule interface {
	Advance(w *World, epoch int, p Probe) error
}

// Static is the no-op schedule: the topology never changes. A dynamic
// route over a Static world reproduces the static router hop-for-hop
// (pinned by the differential tests).
type Static struct{}

// Advance does nothing.
func (Static) Advance(*World, int, Probe) error { return nil }

// Compose applies its member schedules in order each epoch — e.g. mobility
// re-deriving the geometric topology followed by Bernoulli link fading on
// whatever links geometry produced.
type Compose []Schedule

// Advance runs each member in order, stopping at the first error.
func (c Compose) Advance(w *World, epoch int, p Probe) error {
	for _, s := range c {
		if err := s.Advance(w, epoch, p); err != nil {
			return err
		}
	}
	return nil
}

// EdgeChurn is Bernoulli edge churn: each epoch, every current edge is
// removed independently with probability PDrop, and AddRate new edges (in
// expectation) are inserted between uniformly random distinct non-adjacent
// node pairs. The zero value is a no-op.
type EdgeChurn struct {
	// Seed drives the churn randomness.
	Seed uint64
	// PDrop is the per-edge removal probability per epoch.
	PDrop float64
	// AddRate is the expected number of fresh edges per epoch.
	AddRate float64

	src *prng.Source
}

// Advance applies one epoch of churn.
func (c *EdgeChurn) Advance(w *World, _ int, _ Probe) error {
	if c.src == nil {
		c.src = prng.New(c.Seed)
	}
	if c.PDrop > 0 {
		for _, e := range w.Edges() {
			if c.src.Float64() < c.PDrop {
				if err := w.RemoveEdgeBetween(e.U, e.V); err != nil {
					return err
				}
			}
		}
	}
	adds := int(c.AddRate)
	if frac := c.AddRate - float64(adds); frac > 0 && c.src.Float64() < frac {
		adds++
	}
	nodes := w.Graph().Nodes()
	if len(nodes) < 2 {
		return nil
	}
	for k := 0; k < adds; k++ {
		// A few tries to find a non-adjacent distinct pair; a dense epoch
		// just adds fewer edges.
		for try := 0; try < 8; try++ {
			u := nodes[c.src.Intn(len(nodes))]
			v := nodes[c.src.Intn(len(nodes))]
			if u == v || w.Graph().HasEdge(u, v) {
				continue
			}
			if _, _, err := w.AddEdge(u, v); err != nil {
				return err
			}
			break
		}
	}
	return nil
}

// MarkovLinks evolves each link of a fixed underlay as an independent
// two-state Markov chain: an up link goes down with probability PDown per
// epoch, a down link comes back up with probability PUp. The underlay is
// captured from the world's edge set on the first Advance, so the model is
// "link flapping over the deployed radio topology" — the dynamics both the
// gossip-routing and 1/2-disk-routing evaluations (PAPERS.md) exercise.
type MarkovLinks struct {
	// Seed drives the chain randomness.
	Seed uint64
	// PDown is the per-epoch up→down transition probability.
	PDown float64
	// PUp is the per-epoch down→up transition probability.
	PUp float64

	src      *prng.Source
	underlay []Edge
	up       []bool
}

// Advance applies one epoch of link transitions.
func (m *MarkovLinks) Advance(w *World, _ int, _ Probe) error {
	if m.src == nil {
		m.src = prng.New(m.Seed)
		m.underlay = w.Edges()
		m.up = make([]bool, len(m.underlay))
		for i := range m.up {
			m.up[i] = true
		}
	}
	for i, e := range m.underlay {
		if m.up[i] {
			if m.src.Float64() < m.PDown {
				if err := w.RemoveEdgeBetween(e.U, e.V); err != nil {
					return err
				}
				m.up[i] = false
			}
		} else if m.src.Float64() < m.PUp {
			if _, _, err := w.AddEdge(e.U, e.V); err != nil {
				return err
			}
			m.up[i] = true
		}
	}
	return nil
}

// sortEdges orders edges canonically; schedules that derive edge sets from
// maps use it so the mutation order (and hence port labeling) is
// deterministic.
func sortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
}
