// Package flatgraph is the compiled hot path of the routing engine: a CSR
// (compressed sparse row) snapshot of a port-labeled multigraph plus
// allocation-free walk loops over it.
//
// Paper anchor: §2–§3. Every routing, broadcast, count, and hybrid query
// ultimately reduces to millions of exploration-sequence hops — one
// (inPort + T[i]) mod 3 step per hop on the degree-reduced graph of
// Figure 1. The reference execution path (package netsim driving the
// stateless handlers of package route) pays a map[NodeID][]Half lookup, an
// interface-dispatched Sequence.At, and error plumbing on every one of
// those hops. Braverman's walk rule is deliberately stateless per hop, so
// the entire loop compiles to flat-array arithmetic:
//
//   - nodes get dense int32 indices; the port table is one flat []Half32
//     indexed by rowStart[node]+port (stride 3 on the 3-regular reduced
//     graph);
//   - the PRF symbol derivation (ues.Symbol over prng.Mix64) is inlined via
//     the concrete Seq value — no interface call;
//   - all bounds are validated once at Compile, so the hop loop carries no
//     per-hop error values;
//   - the walkers optionally prefetch direction blocks so the sequence
//     oracle is amortized across hops.
//
// Concurrency contract: a compiled Graph is immutable after Compile and
// safe for any number of concurrent walkers — every walk loop works
// exclusively on its caller's stack plus the shared read-only arrays. The
// hop-granular RouteStepper holds per-walk state and is single-goroutine,
// but any number of steppers may share one Graph.
//
// The slow token engine remains the semantic reference: the walkers here
// replicate its verdicts, hop counts, traces, and even its header-size
// and memory-metering statistics exactly, and the differential tests in
// package route/count pin that equivalence on random labeled multigraphs.
package flatgraph
