package flatgraph_test

import (
	"testing"

	"repro/internal/degred"
	"repro/internal/flatgraph"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ues"
)

// compileReduced reduces g and compiles the flat snapshot with the gadget
// projection, the way production callers do.
func compileReduced(t *testing.T, g *graph.Graph) (*degred.Reduced, *flatgraph.Graph) {
	t.Helper()
	red, err := degred.Reduce(g)
	if err != nil {
		t.Fatal(err)
	}
	f, err := flatgraph.Compile(red.Graph(), func(v graph.NodeID) graph.NodeID {
		o, ok := red.Original(v)
		if !ok {
			return v
		}
		return o
	})
	if err != nil {
		t.Fatal(err)
	}
	return red, f
}

func TestCompileMirrorsGraph(t *testing.T) {
	g := gen.Grid(5, 4)
	g.ShuffleLabels(3)
	red, f := compileReduced(t, g)
	rg := red.Graph()
	if f.NumNodes() != rg.NumNodes() {
		t.Fatalf("nodes: flat %d, graph %d", f.NumNodes(), rg.NumNodes())
	}
	if !f.Regular3() {
		t.Fatal("reduced snapshot not 3-regular")
	}
	for _, id := range rg.Nodes() {
		i, ok := f.Index(id)
		if !ok {
			t.Fatalf("node %d missing from snapshot", id)
		}
		if f.ID(i) != id {
			t.Fatalf("ID(Index(%d)) = %d", id, f.ID(i))
		}
		if int(f.Degree(i)) != rg.Degree(id) {
			t.Fatalf("degree of %d: flat %d, graph %d", id, f.Degree(i), rg.Degree(id))
		}
		o, _ := red.Original(id)
		if f.OriginalOf(i) != o {
			t.Fatalf("original of %d: flat %d, reduction %d", id, f.OriginalOf(i), o)
		}
		for p := 0; p < rg.Degree(id); p++ {
			want, err := rg.Neighbor(id, p)
			if err != nil {
				t.Fatal(err)
			}
			got := f.Half(i, int32(p))
			if f.ID(got.To) != want.To || int(got.Port) != want.ToPort {
				t.Fatalf("half (%d,%d): flat (%d,%d), graph (%d,%d)",
					id, p, f.ID(got.To), got.Port, want.To, want.ToPort)
			}
		}
	}
}

func TestCompileNilAndIdentity(t *testing.T) {
	if _, err := flatgraph.Compile(nil, nil); err == nil {
		t.Fatal("nil graph did not error")
	}
	g := gen.Cycle(6)
	f, err := flatgraph.Compile(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Regular3() {
		t.Fatal("cycle reported 3-regular")
	}
	for i := int32(0); i < int32(f.NumNodes()); i++ {
		if f.OriginalOf(i) != f.ID(i) {
			t.Fatalf("identity projection broken at %d", i)
		}
	}
}

// TestStepMatchesUES drives the exported Step primitive against ues.Step on
// the same reduced graph and sequence.
func TestStepMatchesUES(t *testing.T) {
	g := gen.Grid(4, 4)
	g.ShuffleLabels(11)
	red, f := compileReduced(t, g)
	rg := red.Graph()
	seq := &ues.Pseudorandom{Seed: 5, N: rg.NumNodes(), Base: 3}
	pos := ues.Start(0)
	node, _ := f.Index(0)
	inPort := int32(0)
	for i := 1; i <= 5000; i++ {
		next, err := ues.Step(rg, pos, seq.At(i))
		if err != nil {
			t.Fatal(err)
		}
		node, inPort = f.Step(node, inPort, int32(seq.At(i)))
		if f.ID(node) != next.Node || int(inPort) != next.InPort {
			t.Fatalf("step %d: flat (%d,%d), reference (%d,%d)",
				i, f.ID(node), inPort, next.Node, next.InPort)
		}
		pos = next
	}
}

func TestSeqMatchesUES(t *testing.T) {
	p := &ues.Pseudorandom{Seed: 42, N: 64, Base: 3}
	s := flatgraph.Seq{Seed: 42, Base: 3, Length: p.Len()}
	for i := 1; i <= 2000; i++ {
		if int(s.At(int64(i))) != p.At(i) {
			t.Fatalf("At(%d): Seq %d, ues %d", i, s.At(int64(i)), p.At(i))
		}
	}
	buf := make([]int8, 257)
	s.Fill(buf, 100)
	for k, v := range buf {
		if int(v) != p.At(100+k) {
			t.Fatalf("Fill[%d]: %d, want %d", k, v, p.At(100+k))
		}
	}
}

func TestCoverWalkAndClosed(t *testing.T) {
	g := gen.Grid(4, 4)
	_, f := compileReduced(t, g)
	entry := int32(0)
	seq := flatgraph.Seq{Seed: 7, Base: 3, Length: ues.Length(4*f.NumNodes(), 0)}
	visited := make([]bool, f.NumNodes())
	order, err := f.CoverWalk(entry, seq, visited, make([]int32, 0, f.NumNodes()))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, v := range visited {
		if v {
			count++
		}
	}
	if count != len(order) {
		t.Fatalf("visited %d nodes but order has %d", count, len(order))
	}
	if order[0] != entry {
		t.Fatalf("order starts at %d, want %d", order[0], entry)
	}
	// A connected grid's reduction is connected: a long enough walk covers
	// it and the visited set is closed.
	if count != f.NumNodes() {
		t.Fatalf("covered %d of %d nodes", count, f.NumNodes())
	}
	if !f.Closed(visited) {
		t.Fatal("full visited set reported not closed")
	}
	visited[0] = false
	if f.Closed(visited) {
		t.Fatal("punctured visited set reported closed")
	}
}

func TestWalkRejectsIrregular(t *testing.T) {
	f, err := flatgraph.Compile(gen.Cycle(5), nil)
	if err != nil {
		t.Fatal(err)
	}
	seq := flatgraph.Seq{Seed: 1, Base: 3, Length: 100}
	if _, err := f.RouteWalk(0, 0, 1, seq); err != flatgraph.ErrNotRegular {
		t.Fatalf("RouteWalk on cycle: %v", err)
	}
	if _, err := f.BroadcastWalk(0, 0, seq, make([]bool, f.NumNodes())); err != flatgraph.ErrNotRegular {
		t.Fatalf("BroadcastWalk on cycle: %v", err)
	}
	if _, err := f.CoverWalk(0, seq, make([]bool, f.NumNodes()), nil); err != flatgraph.ErrNotRegular {
		t.Fatalf("CoverWalk on cycle: %v", err)
	}
	if _, err := f.RouteStepper(0, 0, 1, seq); err != flatgraph.ErrNotRegular {
		t.Fatalf("RouteStepper on cycle: %v", err)
	}
}

// TestRouteWalkFindsTarget checks the basic verdicts on a connected graph:
// success toward a present node, failure toward an absent one.
func TestRouteWalkFindsTarget(t *testing.T) {
	g := gen.Grid(4, 4)
	red, f := compileReduced(t, g)
	entryID, _ := red.Entry(0)
	entry, _ := f.Index(entryID)
	seq := flatgraph.Seq{Seed: 7, Base: 3, Length: ues.Length(4*f.NumNodes(), 0)}
	out, err := f.RouteWalk(entry, 0, 15, seq)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Success || out.Hops <= 0 || out.MaxIndex <= 0 || out.PeakMemoryBits <= 0 {
		t.Fatalf("success walk: %+v", out)
	}
	out, err = f.RouteWalk(entry, 0, 9999, seq)
	if err != nil {
		t.Fatal(err)
	}
	if out.Success {
		t.Fatal("walk to absent node succeeded")
	}
	if out.MaxIndex != int64(seq.Length)+1 {
		t.Fatalf("failure MaxIndex = %d, want %d", out.MaxIndex, seq.Length+1)
	}
}

// TestStepperMatchesWalk drives the stepper to completion and checks it
// agrees with the one-shot walk on verdict and hops.
func TestStepperMatchesWalk(t *testing.T) {
	g := gen.Grid(4, 4)
	g.ShuffleLabels(2)
	red, f := compileReduced(t, g)
	entryID, _ := red.Entry(0)
	entry, _ := f.Index(entryID)
	seq := flatgraph.Seq{Seed: 3, Base: 3, Length: ues.Length(4*f.NumNodes(), 0)}
	for _, dst := range []graph.NodeID{15, 9999} {
		want, err := f.RouteWalk(entry, 0, dst, seq)
		if err != nil {
			t.Fatal(err)
		}
		st, err := f.RouteStepper(entry, 0, dst, seq)
		if err != nil {
			t.Fatal(err)
		}
		steps := 0
		for !st.Step() {
			steps++
			if int64(steps) > 4*int64(seq.Length)+16 {
				t.Fatal("stepper did not terminate")
			}
		}
		if st.Err() != nil {
			t.Fatal(st.Err())
		}
		if st.Success() != want.Success || st.Hops() != want.Hops {
			t.Fatalf("dst %d: stepper (%v, %d hops), walk (%v, %d hops)",
				dst, st.Success(), st.Hops(), want.Success, want.Hops)
		}
	}
}

// TestInstrumentedStepperMatchesWalk pins the instrumented stepper to the
// one-shot walk's full RouteOutcome — verdict, hops, delivered index, max
// index, and the memory-metering peak — on both a reachable and an
// unreachable destination, and checks the hop sink saw every hop.
func TestInstrumentedStepperMatchesWalk(t *testing.T) {
	g := gen.Grid(4, 4)
	g.ShuffleLabels(2)
	red, f := compileReduced(t, g)
	entryID, _ := red.Entry(0)
	entry, _ := f.Index(entryID)
	seq := flatgraph.Seq{Seed: 3, Base: 3, Length: ues.Length(4*f.NumNodes(), 0)}
	for _, dst := range []graph.NodeID{15, 9999} {
		want, err := f.RouteWalk(entry, 0, dst, seq)
		if err != nil {
			t.Fatal(err)
		}
		st, err := f.RouteStepper(entry, 0, dst, seq)
		if err != nil {
			t.Fatal(err)
		}
		var hops int64
		var lastNode graph.NodeID
		var sawBackward bool
		st.Instrument(func(node graph.NodeID, index int64, backward bool) {
			hops++
			lastNode = node
			sawBackward = sawBackward || backward
		})
		for !st.Step() {
		}
		if st.Err() != nil {
			t.Fatal(st.Err())
		}
		if got := st.Outcome(); got != want {
			t.Fatalf("dst %d: instrumented outcome %+v, walk %+v", dst, got, want)
		}
		if hops != want.Hops {
			t.Fatalf("dst %d: sink saw %d hops, walk took %d", dst, hops, want.Hops)
		}
		if lastNode != 0 {
			t.Fatalf("dst %d: last hop landed on %d, want delivery at source 0", dst, lastNode)
		}
		if !sawBackward {
			t.Fatalf("dst %d: sink never saw the backward phase", dst)
		}
	}
}
