package gen

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/graph"
)

func checkValid(t *testing.T, g *graph.Graph) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid graph: %v", err)
	}
}

func TestPath(t *testing.T) {
	g := Path(5)
	checkValid(t, g)
	if g.NumNodes() != 5 || g.NumEdges() != 4 {
		t.Fatalf("path(5): %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if !g.IsConnected() {
		t.Fatal("path should be connected")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 || g.Degree(4) != 1 {
		t.Fatal("path degrees wrong")
	}
}

func TestCycle(t *testing.T) {
	for _, n := range []int{2, 3, 8} {
		g := Cycle(n)
		checkValid(t, g)
		if !g.IsRegular(2) {
			t.Fatalf("cycle(%d) not 2-regular", n)
		}
		if g.NumEdges() != n {
			t.Fatalf("cycle(%d) has %d edges", n, g.NumEdges())
		}
	}
}

func TestComplete(t *testing.T) {
	g := Complete(6)
	checkValid(t, g)
	if g.NumEdges() != 15 {
		t.Fatalf("K6 edges = %d, want 15", g.NumEdges())
	}
	if !g.IsRegular(5) {
		t.Fatal("K6 should be 5-regular")
	}
}

func TestStar(t *testing.T) {
	g := Star(7)
	checkValid(t, g)
	if g.Degree(0) != 6 {
		t.Fatalf("hub degree = %d", g.Degree(0))
	}
	for i := graph.NodeID(1); i < 7; i++ {
		if g.Degree(i) != 1 {
			t.Fatalf("leaf %d degree = %d", i, g.Degree(i))
		}
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	checkValid(t, g)
	if g.NumNodes() != 12 {
		t.Fatalf("grid nodes = %d", g.NumNodes())
	}
	// Edges: 3 rows × 3 horizontal + 2×4 vertical = 9 + 8 = 17.
	if g.NumEdges() != 17 {
		t.Fatalf("grid edges = %d, want 17", g.NumEdges())
	}
	if !g.IsConnected() {
		t.Fatal("grid should be connected")
	}
	if g.Degree(0) != 2 || g.Degree(5) != 4 {
		t.Fatal("grid corner/interior degrees wrong")
	}
}

func TestTorus(t *testing.T) {
	g := Torus(4, 5)
	checkValid(t, g)
	if !g.IsRegular(4) {
		t.Fatal("torus should be 4-regular")
	}
	if g.NumEdges() != 2*4*5 {
		t.Fatalf("torus edges = %d, want 40", g.NumEdges())
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	checkValid(t, g)
	if g.NumNodes() != 16 || !g.IsRegular(4) {
		t.Fatal("Q4 should have 16 nodes and be 4-regular")
	}
	if !g.IsConnected() {
		t.Fatal("hypercube should be connected")
	}
	// Diameter of Q4 is 4.
	dist := g.BFSDist(0)
	if dist[15] != 4 {
		t.Fatalf("dist(0,15) = %d, want 4", dist[15])
	}
}

func TestBinaryTree(t *testing.T) {
	g := BinaryTree(4)
	checkValid(t, g)
	if g.NumNodes() != 15 || g.NumEdges() != 14 {
		t.Fatalf("binary tree: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if !g.IsConnected() {
		t.Fatal("tree should be connected")
	}
}

func TestRandomTree(t *testing.T) {
	g := RandomTree(50, 3)
	checkValid(t, g)
	if g.NumEdges() != 49 || !g.IsConnected() {
		t.Fatal("random tree should be a connected tree")
	}
	// Determinism.
	h := RandomTree(50, 3)
	for _, v := range g.Nodes() {
		if g.Degree(v) != h.Degree(v) {
			t.Fatal("same-seed random trees differ")
		}
	}
}

func TestBarbell(t *testing.T) {
	g := Barbell(5, 4)
	checkValid(t, g)
	if !g.IsConnected() {
		t.Fatal("barbell should be connected")
	}
	if g.NumNodes() != 13 {
		t.Fatalf("barbell nodes = %d, want 13", g.NumNodes())
	}
	// dist from clique A interior to clique B interior crosses the path.
	dist := g.BFSDist(1)
	if dist[6] < 5 {
		t.Fatalf("barbell too short: dist = %d", dist[6])
	}
}

func TestLollipop(t *testing.T) {
	g := Lollipop(6, 10)
	checkValid(t, g)
	if !g.IsConnected() {
		t.Fatal("lollipop should be connected")
	}
	if g.NumNodes() != 16 {
		t.Fatalf("lollipop nodes = %d", g.NumNodes())
	}
	// The path tip is at distance pathLen from the clique attachment.
	dist := g.BFSDist(0)
	if dist[15] != 10 {
		t.Fatalf("lollipop tip distance = %d, want 10", dist[15])
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(60, 0.1, 7)
	checkValid(t, g)
	// Expected edges = C(60,2)*0.1 = 177; allow wide slack.
	if e := g.NumEdges(); e < 100 || e > 260 {
		t.Fatalf("G(60,0.1) edges = %d, outside sanity window", e)
	}
	// p=0 and p=1 extremes.
	if ErdosRenyi(10, 0, 1).NumEdges() != 0 {
		t.Fatal("G(n,0) should be empty")
	}
	if ErdosRenyi(10, 1.1, 1).NumEdges() != 45 {
		t.Fatal("G(n,>=1) should be complete")
	}
}

func TestRandomRegularMulti(t *testing.T) {
	g, err := RandomRegularMulti(20, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, g)
	if !g.IsRegular(3) {
		t.Fatal("configuration model output not 3-regular")
	}
	if _, err := RandomRegularMulti(5, 3, 1); !errors.Is(err, ErrGeneratorFailed) {
		t.Fatalf("odd n*d should fail, got %v", err)
	}
}

func TestRandomRegularSimple(t *testing.T) {
	g, err := RandomRegularSimple(24, 3, 11, 200)
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, g)
	if !g.IsRegular(3) || !isSimple(g) {
		t.Fatal("output not a simple 3-regular graph")
	}
	if _, err := RandomRegularSimple(4, 5, 1, 10); !errors.Is(err, ErrGeneratorFailed) {
		t.Fatalf("d >= n should fail, got %v", err)
	}
}

func TestUDG2D(t *testing.T) {
	ud := UDG2D(80, 0.25, 13)
	checkValid(t, ud.G)
	if ud.G.NumNodes() != 80 || len(ud.Pos) != 80 {
		t.Fatal("UDG2D sizes wrong")
	}
	// Every edge respects the radius; every non-edge pair exceeds it.
	for _, v := range ud.G.Nodes() {
		for p := 0; p < ud.G.Degree(v); p++ {
			h, err := ud.G.Neighbor(v, p)
			if err != nil {
				t.Fatal(err)
			}
			if geom.Dist(ud.Pos[v], ud.Pos[h.To]) > 0.25+1e-12 {
				t.Fatalf("edge (%d,%d) exceeds radius", v, h.To)
			}
		}
	}
	// All points in the unit square, Z = 0.
	for _, p := range ud.Pos {
		if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 || p.Z != 0 {
			t.Fatalf("bad 2D point %+v", p)
		}
	}
}

func TestUDG3D(t *testing.T) {
	ud := UDG3D(60, 0.4, 17)
	checkValid(t, ud.G)
	hasZ := false
	for _, p := range ud.Pos {
		if p.Z != 0 {
			hasZ = true
		}
	}
	if !hasZ {
		t.Fatal("UDG3D points are all planar")
	}
}

func TestGabrielSubgraph(t *testing.T) {
	ud := UDG2D(60, 0.3, 19)
	gg := Gabriel(ud)
	checkValid(t, gg.G)
	if gg.G.NumEdges() > ud.G.NumEdges() {
		t.Fatal("Gabriel graph has more edges than UDG")
	}
	// Every Gabriel edge is a UDG edge.
	for _, v := range gg.G.Nodes() {
		for p := 0; p < gg.G.Degree(v); p++ {
			h, _ := gg.G.Neighbor(v, p)
			if !ud.G.HasEdge(v, h.To) {
				t.Fatalf("Gabriel edge (%d,%d) not in UDG", v, h.To)
			}
		}
	}
}

// TestGabrielPreservesConnectivity is the key correctness property the face
// routing baseline relies on.
func TestGabrielPreservesConnectivity(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		ud := UDG2D(70, 0.3, seed)
		gg := Gabriel(ud)
		wantComps := len(ud.G.Components())
		gotComps := len(gg.G.Components())
		if gotComps != wantComps {
			t.Fatalf("seed %d: Gabriel has %d components, UDG has %d", seed, gotComps, wantComps)
		}
	}
}

func TestDisjointUnion(t *testing.T) {
	a := Cycle(4)
	b := Path(3)
	u, err := DisjointUnion(a, b, 100)
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, u)
	if u.NumNodes() != 7 || u.NumEdges() != 4+2 {
		t.Fatalf("union: %d nodes %d edges", u.NumNodes(), u.NumEdges())
	}
	if len(u.Components()) != 2 {
		t.Fatal("union should have 2 components")
	}
	if u.IsConnected() {
		t.Fatal("union should be disconnected")
	}
	// Offset collision must fail.
	if _, err := DisjointUnion(a, b, 2); err == nil {
		t.Fatal("offset below max node ID should fail")
	}
}

func TestDisjointUnionWithSelfLoops(t *testing.T) {
	b := graph.New()
	b.EnsureNode(0)
	b.EnsureNode(1)
	if _, _, err := b.AddEdge(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	u, err := DisjointUnion(Path(2), b, 10)
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, u)
	if u.NumEdges() != 1+2 {
		t.Fatalf("union edges = %d, want 3", u.NumEdges())
	}
	if u.Degree(10) != 3 { // self-loop (2) + edge to 11 (1)
		t.Fatalf("degree of copied self-loop node = %d, want 3", u.Degree(10))
	}
}

// TestGeneratorsAlwaysValid property-tests validity across the whole suite
// for arbitrary small sizes.
func TestGeneratorsAlwaysValid(t *testing.T) {
	f := func(seed uint64, sz uint8) bool {
		n := int(sz%20) + 3
		graphs := []*graph.Graph{
			Path(n), Cycle(n), Complete(n), Star(n),
			Grid(n/3+1, 3), Torus(3, n/3+1), BinaryTree(n%5 + 1),
			RandomTree(n, seed), Barbell(n/4+2, n/4+1), Lollipop(n/4+2, n/2+1),
			ErdosRenyi(n, 0.3, seed),
		}
		if rr, err := RandomRegularMulti(n+n%2, 3, seed); err == nil {
			graphs = append(graphs, rr)
		}
		for _, g := range graphs {
			if g.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
