package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/dynamic"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/profrec"
	"repro/internal/registry"
	"repro/internal/route"
	"repro/internal/slo"
	"repro/internal/token"
	"repro/internal/trace"
)

// Request-handling limits. Every knob is flag-tunable; the defaults are
// the serve(1) values.
const (
	defaultMaxBody     = 1 << 20 // 1 MiB request bodies
	defaultMaxBatch    = 4096    // batch members per request
	defaultMaxInflight = 256     // concurrently admitted requests
	maxWorldAdvance    = 1024    // epochs per explicit advance request
)

// serverConfig carries the serving-layer knobs from flags (or tests) into
// newServer. The zero value enables everything at the defaults above with
// profiling off.
type serverConfig struct {
	pprof       bool
	maxBody     int64 // bytes; < 0 disables the cap
	maxBatch    int   // batch members; < 0 disables the cap
	maxInflight int   // admitted requests; < 0 disables admission control
	registry    registry.Config
	maxWorlds   int
	// metricsAddr moves GET /metrics to a dedicated listener (the ops
	// convention that keeps the scrape surface off the public port).
	// Empty serves /metrics on the main mux.
	metricsAddr string

	// Tracing knobs (see trace.go). traceSample is the head-sampling
	// probability in [0,1]; an upstream traceparent sampled flag always
	// wins, so even at 0 a caller can force a trace. traceSlow is the
	// retention latency threshold (0 retains every sampled trace — the
	// test/debug mode; negative disables latency retention, keeping only
	// errors). traceCapacity sizes the flight-recorder ring (0 = package
	// default). logOut, when non-nil, receives one structured JSON line
	// per request (-log-format=json).
	traceSample   float64
	traceSlow     time.Duration
	traceCapacity int
	logOut        io.Writer

	// SLO knobs (see slo.go). sloSpec declares the objectives ("" = the
	// defaultSLOSpec; sloDisabled turns the evaluator and GET /v1/slo off);
	// sloInterval paces the background burn-rate ticker (0 = 10s).
	sloSpec     string
	sloInterval time.Duration

	// Profile flight-recorder knobs (see profiles.go). Zero values take the
	// profrec package defaults (16 snapshots, 5s CPU window, 30s trip rate
	// limit). profGuard is the request-latency threshold that trips a
	// capture directly from ServeHTTP; 0 disables the guard (the flag
	// default is defaultProfGuard).
	profCapacity    int
	profCPUWindow   time.Duration
	profMinInterval time.Duration
	profGuard       time.Duration

	// chaos, when non-nil, is the fault injector (-chaos-* flags, gated on
	// -chaos-enable): request-level faults/delays fire in ServeHTTP, and
	// every world this server creates inherits it for compile faults, hop
	// delays, and epoch stalls.
	chaos *chaos.Injector
	// drainLog, when non-nil, receives one JSON line per resume token
	// minted while the server was draining — the in-flight walk cursors a
	// replacement instance can pick up.
	drainLog io.Writer

	// tokenKey, when non-empty, is the shared HMAC key for resume tokens
	// (-token-key). Empty keeps the single-process default: a random
	// per-boot key. Cluster mode requires a shared key — tokens must
	// verify on whichever shard the resumed walk lands on.
	tokenKey []byte
	// cluster, when non-nil, runs this server as one shard of a
	// consistent-hash cluster (-cluster): gossip membership, ownership
	// routing on /v1/networks* and /v1/worlds*, and world rebalancing.
	cluster *clusterConfig
}

func (c serverConfig) bodyLimit() int64 {
	if c.maxBody == 0 {
		return defaultMaxBody
	}
	if c.maxBody < 0 {
		return 0
	}
	return c.maxBody
}

func (c serverConfig) batchLimit() int {
	if c.maxBatch == 0 {
		return defaultMaxBatch
	}
	if c.maxBatch < 0 {
		return 0
	}
	return c.maxBatch
}

func (c serverConfig) inflightLimit() int {
	if c.maxInflight == 0 {
		return defaultMaxInflight
	}
	if c.maxInflight < 0 {
		return 0
	}
	return c.maxInflight
}

// server exposes compiled engines over HTTP/JSON. The boot network
// (compiled from the flags) serves the classic unprefixed endpoints; the
// registry compiles and caches further networks on demand
// (/v1/networks/…), and the world table holds named long-lived evolving
// topologies shared by all their clients (/v1/worlds/…). Static queries
// need no coordination (stateless protocol on immutable compiled state);
// shared worlds carry their own locking.
type server struct {
	eng  *engine.Engine
	pos  map[graph.NodeID]geom.Point // node placement, when the boot network is geometric
	desc string

	reg    *registry.Registry
	worlds *registry.Worlds

	maxBody  int64
	maxBatch int
	inflight chan struct{} // admission semaphore; nil = unlimited

	obs *obs.Registry // Prometheus metric registry (GET /metrics)
	hm  *httpMetrics  // per-endpoint request instrumentation

	tracer *trace.Tracer // request tracing + flight recorder (GET /v1/traces)
	reqLog *requestLog   // structured request log (-log-format=json); nil = quiet

	// vecs is the process-wide per-network metric family set: the boot
	// engine and every registry tenant attach their cached label children
	// to it (capped; overflow collapses into "other").
	vecs *engine.Vecs
	// slo evaluates the declared objectives as multi-window burn rates
	// (GET /v1/slo); nil when -slo=off. sloNow is its clock (a test hook);
	// sloInterval paces the background ticker RunSLO starts.
	slo         *slo.Evaluator
	sloNow      func() time.Time
	sloInterval time.Duration
	// prof is the profile flight recorder (GET /v1/profiles): tripped by a
	// burning SLO or by profGuard-slow requests.
	prof      *profrec.Recorder
	profGuard time.Duration

	// tok signs the opaque resume tokens budgeted walks mint. Without
	// -token-key the key is per-process (tokens live exactly as long as
	// the server); with it, tokens are portable across every process
	// sharing the key — the basis of cross-shard resume in cluster mode.
	tok   *token.Signer
	chaos *chaos.Injector // nil = no fault injection

	// cluster is the distribution layer (nil in single-server mode): ring
	// ownership, gossip, forwarding, world migration. See cluster.go.
	cluster *clusterNode

	// Drain state: BeginDrain flips draining (healthz goes 503) and cancels
	// drainCtx, which interrupts in-flight budgeted walks at their next
	// round boundary so each can mint a resume token before the listener
	// closes. Tokens minted while draining are persisted to drainLog.
	draining   atomic.Bool
	drainCtx   context.Context
	drainFired context.CancelFunc
	drainMu    sync.Mutex
	drainLog   io.Writer

	// retrySeq rotates the Retry-After jitter so simultaneously rejected
	// clients do not reconverge on the same retry instant.
	retrySeq atomic.Int64

	mux *http.ServeMux
}

// newServer wires the endpoint table around the boot engine plus the
// multi-tenant registry and world table. desc describes the boot network
// (shown by /v1/network); pos, when non-nil, is the placement mobility
// schedules start from. cfg.pprof additionally mounts net/http/pprof
// under /debug/pprof/; it is opt-in (the -pprof flag) because the profile
// endpoints expose internals and can be made to burn CPU on demand.
func newServer(eng *engine.Engine, pos map[graph.NodeID]geom.Point, desc string, cfg serverConfig) *server {
	s := &server{
		eng:      eng,
		pos:      pos,
		desc:     desc,
		reg:      registry.New(cfg.registry),
		worlds:   registry.NewWorlds(cfg.maxWorlds),
		maxBody:  cfg.bodyLimit(),
		maxBatch: cfg.batchLimit(),
		obs:      obs.NewRegistry(),
		tracer: trace.New(trace.Config{
			SampleRate:    cfg.traceSample,
			SlowThreshold: cfg.traceSlow,
			Capacity:      cfg.traceCapacity,
		}),
		reqLog:      newRequestLog(cfg.logOut),
		tok:         token.NewSigner(cfg.tokenKey),
		chaos:       cfg.chaos,
		drainLog:    cfg.drainLog,
		sloNow:      time.Now,
		sloInterval: cfg.sloInterval,
		profGuard:   cfg.profGuard,
		prof: profrec.New(profrec.Config{
			Capacity:    cfg.profCapacity,
			CPUWindow:   cfg.profCPUWindow,
			MinInterval: cfg.profMinInterval,
		}),
		mux: http.NewServeMux(),
	}
	// One per-network vector set for the process: the boot engine attaches
	// under "boot", and the registry attaches each tenant inside compile()
	// before the engine is published. Capacity follows the registry bound
	// plus the boot network, with slack for LRU churn (evicted networks'
	// series persist until the cap, then collapse into "other").
	nets := cfg.registry.Capacity
	if nets <= 0 {
		nets = registry.DefaultCapacity
	}
	s.vecs = engine.NewVecs(2 * (nets + 1))
	s.eng.AttachVecs(s.vecs, "boot")
	s.reg.SetVecs(s.vecs)
	// Bind the SLO objectives to the boot engine's metrics. run() already
	// validated the flag value against the same builder, so a failure here
	// is a wiring bug, not user input.
	if spec := resolveSLOSpec(cfg.sloSpec); spec != "" {
		objs, err := buildObjectives(s.eng, spec)
		if err != nil {
			panic(fmt.Sprintf("adhocd: %v", err))
		}
		s.slo = slo.NewEvaluator(objs...)
		// A burning objective trips the profile flight recorder: the CPU
		// and heap evidence is captured during the incident, not after.
		s.slo.OnBurn = func(name string) { s.prof.Trip("slo:" + name) }
	}
	s.drainCtx, s.drainFired = context.WithCancel(context.Background())
	if n := cfg.inflightLimit(); n > 0 {
		s.inflight = make(chan struct{}, n)
	}
	// The cluster node must exist before the endpoint table: the tenant
	// routes below are wrapped with ownership routing, and the wrapper
	// reads s.cluster per request (nil = serve locally, the single-server
	// fast path).
	if cfg.cluster != nil {
		s.cluster = newClusterNode(s, *cfg.cluster)
	}
	// handle registers a route and collects its pattern so the HTTP
	// metrics layer pre-builds one latency histogram + status counters per
	// endpoint (the per-request path is then a read-only map lookup).
	var patterns []string
	handle := func(pattern string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, h)
		patterns = append(patterns, pattern)
	}
	handle("GET /healthz", s.handleHealth)
	handle("GET /v1/network", s.handleNetwork)
	handle("GET /v1/stats", s.handleStats)
	handle("POST /v1/route", s.defaultEngine(s.handleRoute))
	handle("POST /v1/batch", s.defaultEngine(s.handleBatch))
	handle("POST /v1/broadcast", s.handleBroadcast)
	handle("POST /v1/count", s.handleCount)
	handle("POST /v1/hybrid", s.handleHybrid)
	handle("POST /v1/dynamic", s.handleDynamic)

	// Multi-tenant surface: runtime-compiled networks and shared worlds.
	// Each route is wrapped with cluster ownership routing (a nil check in
	// single-server mode): the key derivations place networks by their
	// spec-derived ID and worlds by name, so every shard resolves the same
	// owner for the same resource. List endpoints stay local — each shard
	// reports what it serves.
	handle("POST /v1/networks", s.clustered(netCreateKey, s.handleNetworkCreate))
	handle("GET /v1/networks", s.handleNetworkList)
	handle("GET /v1/networks/{id}", s.clustered(netIDKey, s.handleNetworkInfo))
	handle("POST /v1/networks/{id}/route", s.clustered(netIDKey, s.namedEngine(s.handleRoute)))
	handle("POST /v1/networks/{id}/batch", s.clustered(netIDKey, s.namedEngine(s.handleBatch)))
	handle("POST /v1/worlds", s.clustered(worldCreateKey, s.handleWorldCreate))
	handle("GET /v1/worlds", s.handleWorldList)
	handle("GET /v1/worlds/{id}", s.clustered(worldIDKey, s.handleWorldInfo))
	handle("POST /v1/worlds/{id}/advance", s.clustered(worldIDKey, s.handleWorldAdvance))
	handle("POST /v1/worlds/{id}/route", s.clustered(worldIDKey, s.handleWorldRoute))
	handle("DELETE /v1/worlds/{id}", s.clustered(worldIDKey, s.handleWorldDelete))

	// The cluster control surface: the shard map, the gossip exchange, and
	// the world-migration handoff (the latter two bypass admission control
	// in ServeHTTP — membership and drain must work on a saturated shard).
	if s.cluster != nil {
		handle("GET /v1/cluster", s.cluster.handleInfo)
		handle("POST "+cluster.GossipPath, s.cluster.handleGossip)
		handle("POST "+migratePath, s.cluster.handleMigrate)
	}

	// Flight recorder: retained slow/failed traces, newest first.
	handle("GET /v1/traces", s.handleTraceList)
	handle("GET /v1/traces/{id}", s.handleTraceGet)

	// SLO burn state and the profile flight recorder's captures.
	if s.slo != nil {
		handle("GET /v1/slo", s.handleSLO)
	}
	handle("GET /v1/profiles", s.handleProfileList)
	handle("GET /v1/profiles/{id}", s.handleProfileGet)

	// The scrape endpoint stays on the main mux unless an ops-dedicated
	// listener was requested (-metrics-addr), in which case serve() mounts
	// MetricsHandler there instead.
	if cfg.metricsAddr == "" {
		handle("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			s.obs.Handler().ServeHTTP(w, r)
		})
	}

	if cfg.pprof && cfg.metricsAddr == "" {
		// pprof.Index dispatches the named profiles (heap, goroutine, …)
		// itself; only the handlers with dedicated logic need explicit
		// routes. With a dedicated ops listener (-metrics-addr) the
		// profile endpoints move there instead — serve() mounts them next
		// to /metrics — keeping the public port free of introspection
		// surfaces.
		handle("GET /debug/pprof/", pprof.Index)
		handle("GET /debug/pprof/cmdline", pprof.Cmdline)
		handle("GET /debug/pprof/profile", pprof.Profile)
		handle("GET /debug/pprof/symbol", pprof.Symbol)
		handle("GET /debug/pprof/trace", pprof.Trace)
	}
	// Registration can only fail on a static wiring bug (duplicate metric
	// family); panic so any test catches it immediately.
	if err := s.registerMetrics(patterns); err != nil {
		panic(fmt.Sprintf("adhocd: metric registration: %v", err))
	}
	return s
}

// MetricsHandler serves the Prometheus exposition — mounted on the main
// mux (default) or a dedicated -metrics-addr listener.
func (s *server) MetricsHandler() http.Handler { return s.obs.Handler() }

// ServeHTTP implements http.Handler: metering, admission control, then
// the request body cap, then the endpoint table. Liveness probes bypass
// admission — a saturated server is still alive. Every request (including
// rejected and unmatched ones) is metered: latency by endpoint pattern,
// status class, and the in-flight gauge.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sr := &statusRecorder{ResponseWriter: w}
	s.hm.inflight.Inc()
	defer s.hm.inflight.Dec()
	// Tracing decides per request (upstream traceparent or sampling coin);
	// a sampled request carries its root span in the context for the
	// handlers to hang walk spans off.
	tr, r := s.startTrace(sr, r)
	// r.Pattern is filled in by the mux match (empty for 404s and
	// admission rejections, which land in the "other" endpoint bucket).
	defer func() {
		// Sampled requests carry their trace ID into the latency histogram
		// as an OpenMetrics exemplar — the join key from a slow bucket to
		// the retained trace in /v1/traces/{id}.
		traceID := ""
		if tr.Sampled() {
			traceID = tr.ID().String()
		}
		s.hm.record(r.Pattern, sr.status(), start, traceID)
		// The latency guard: one pathological request is an incident worth
		// profiling even before an SLO window accumulates enough spend to
		// burn. Trip is rate-limited inside the recorder.
		if s.profGuard > 0 && time.Since(start) >= s.profGuard {
			s.prof.Trip("latency-guard:" + r.Pattern)
		}
		s.finishTrace(tr, r, sr.status())
		s.reqLog.write(r, sr.status(), time.Since(start), tr)
	}()
	// Liveness probes and metric scrapes bypass admission: a saturated
	// server is still alive, and monitoring must not go blind during
	// exactly the overload it exists to observe. (With -metrics-addr the
	// dedicated listener skips ServeHTTP entirely; this covers the
	// default main-mux mount.)
	if r.Method == http.MethodGet && (r.URL.Path == "/healthz" || r.URL.Path == "/metrics") {
		s.mux.ServeHTTP(sr, r)
		return
	}
	// Cluster control traffic also bypasses admission (and request chaos):
	// an overloaded shard must not be gossiped dead by its own admission
	// control, and a draining shard must be able to hand worlds to a busy
	// peer. Both handlers apply their own body caps.
	if s.cluster != nil && r.Method == http.MethodPost &&
		(r.URL.Path == cluster.GossipPath || r.URL.Path == migratePath) {
		s.mux.ServeHTTP(sr, r)
		return
	}
	if s.inflight != nil {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			s.hm.rejected.Inc()
			sr.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			writeJSON(sr, http.StatusTooManyRequests,
				errorBody{Error: "server at capacity: too many in-flight requests"})
			return
		}
	}
	// Handler-level chaos fires after admission so injected faults consume
	// a real admission slot (the overload they simulate would too), but
	// before any routing work. Nil injector costs one branch.
	s.chaos.RequestDelay()
	if err := s.chaos.RequestFault(); err != nil {
		writeJSON(sr, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	if s.maxBody > 0 && r.Body != nil {
		// Oversized bodies fail inside decodeBody with a MaxBytesError,
		// mapped to 413 there. MaxBytesReader gets the raw writer, not
		// the metering wrapper: it detects the server's response type by
		// direct assertion (no Unwrap) to set Connection: close when the
		// limit trips, and the wrapper would defeat that.
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	s.mux.ServeHTTP(sr, r)
}

// retryAfterSeconds derives backoff advice for a rejected request from how
// oversubscribed the server is: the deeper the queue of requests beyond the
// admission cap, the longer the advice, plus a small rotating jitter so the
// rejected cohort does not retry in lockstep and re-collide. Successive
// rejections therefore get different values (pinned by a regression test) —
// the old fixed "1" synchronized every rejected client onto the same retry
// instant.
func (s *server) retryAfterSeconds() int {
	over := int64(0)
	if s.inflight != nil {
		// The in-flight gauge counts every request inside ServeHTTP, admitted
		// or not; the surplus over the admission cap is the rejected crowd
		// currently being told to come back.
		over = s.hm.inflight.Value() - int64(cap(s.inflight))
	}
	if over < 0 {
		over = 0
	}
	sec := 1 + over/8 + s.retrySeq.Add(1)%3
	if sec > 30 {
		sec = 30
	}
	return int(sec)
}

// BeginDrain moves the server into draining: healthz answers 503 so load
// balancers stop sending traffic, and the drain context is canceled, which
// interrupts in-flight budgeted walks at their next round boundary so each
// can mint a resume token (persisted to the drain log when configured)
// before the listener closes. Idempotent.
func (s *server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.drainFired()
		// In cluster mode, drain is also departure: broadcast the death
		// verdict (peers shrink their rings immediately instead of waiting
		// out the failure detector) and hand every local world to its new
		// owner while the listener is still up to answer forwards.
		if s.cluster != nil {
			s.cluster.leave()
		}
	}
}

// boundedCtx builds the walk context for a budgeted query: the request
// context (client disconnects cancel the walk), joined with the drain
// context (drain interrupts the walk so it can hand back a cursor), plus
// the client's deadline when one was asked for.
func (s *server) boundedCtx(r *http.Request, deadlineMS int64) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(s.drainCtx, cancel)
	if s.drainCtx.Err() != nil {
		// AfterFunc delivers asynchronously; a walk admitted after the drain
		// began must observe the cancellation before its first round, not
		// race the callback goroutine.
		cancel()
	}
	if deadlineMS > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, time.Duration(deadlineMS)*time.Millisecond)
		inner := cancel
		cancel = func() { tcancel(); inner() }
	}
	return ctx, func() { stop(); cancel() }
}

// logDrainCursor persists one resume token minted while draining: a JSON
// line a replacement instance (or the restarted client) can replay. Outside
// a drain, or without a drain log, it is a no-op.
func (s *server) logDrainCursor(scope string, src, dst int64, tok string) {
	if s.drainLog == nil || !s.draining.Load() {
		return
	}
	line, err := json.Marshal(struct {
		Scope  string `json:"scope"`
		Src    int64  `json:"src"`
		Dst    int64  `json:"dst"`
		Resume string `json:"resume"`
	}{scope, src, dst, tok})
	if err != nil {
		return
	}
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	_, _ = s.drainLog.Write(append(line, '\n'))
}

// engineHandler is a query handler parameterized by the engine it serves —
// the same handler code serves the boot network and every registry tenant.
// scope names the engine for resume-token binding: a token minted against
// one network (or world) cannot be replayed against another.
type engineHandler func(w http.ResponseWriter, r *http.Request, eng *engine.Engine, scope string)

// scopeBoot is the resume-token scope of the boot network's endpoints.
const scopeBoot = "net:boot"

// defaultEngine binds an engineHandler to the boot network.
func (s *server) defaultEngine(h engineHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) { h(w, r, s.eng, scopeBoot) }
}

// namedEngine binds an engineHandler to the registry network named in the
// {id} path segment. An unknown (or evicted) ID is 404: the client
// re-registers the spec via POST /v1/networks, which is idempotent.
func (s *server) namedEngine(h engineHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ent, ok := s.networkFor(w, r.PathValue("id"))
		if !ok {
			return
		}
		h(w, r, ent.Eng, "net:"+ent.ID)
	}
}

// writeJSON emits v with the proper content type.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

// writeErr maps routing errors onto HTTP statuses: unknown nodes are 404,
// an unusable resume cursor or an unsupported budget combination is 400
// (the client sent it), everything else a query can provoke is 500 (the
// engine validated the request shape by then).
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, graph.ErrNodeNotFound):
		status = http.StatusNotFound
	case errors.Is(err, route.ErrBadCursor), errors.Is(err, route.ErrBudgetUnsupported):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// decodeBody parses the request body into v, rejecting unknown fields so
// client typos surface as 400s instead of silent defaults. A body over
// the server's size cap is 413; trailing data after the JSON value is
// 400 (a second concatenated payload must not be silently dropped).
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeDecodeErr(w, err)
		return false
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		if err != nil {
			writeDecodeErr(w, err)
			return false
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "trailing data after JSON body"})
		return false
	}
	return true
}

// writeDecodeErr distinguishes "body too large" (413, the cap is the
// server's) from malformed JSON (400, the bytes are the client's).
func writeDecodeErr(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorBody{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
		return
	}
	writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		// 503 tells load balancers to stop routing here; in-flight work is
		// still finishing (or minting resume tokens) under -drain-timeout.
		writeJSON(w, http.StatusServiceUnavailable, struct {
			OK     bool   `json:"ok"`
			Status string `json:"status"`
		}{false, "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// networkInfo describes a served network. The shape contract shared with
// worldInfo (pinned by TestInfoShapeContract): nodes, links, and
// compile_ms always present and consistent.
type networkInfo struct {
	ID           string  `json:"id,omitempty"`
	Desc         string  `json:"desc"`
	Nodes        int     `json:"nodes"`
	Links        int     `json:"links"`
	ReducedNodes int     `json:"reduced_nodes"`
	Workers      int     `json:"workers"`
	Seed         uint64  `json:"seed"`
	CompileMS    float64 `json:"compile_ms"`
	// Spec is the canonical spec a registry network was compiled from,
	// included by GET /v1/networks/{id} only: with it, any client (or
	// shard) can re-register the identical network anywhere — the ID is
	// spec-derived, so the round trip is exact.
	Spec *registry.Spec `json:"spec,omitempty"`
}

// infoOf summarizes a served engine. compile is the one-off preparation
// cost: the engine compile for the boot network, topology build + compile
// for registry tenants (Entry.CompileTime).
func infoOf(id, desc string, eng *engine.Engine, compile time.Duration) networkInfo {
	return networkInfo{
		ID:           id,
		Desc:         desc,
		Nodes:        eng.Graph().NumNodes(),
		Links:        eng.Graph().NumEdges(),
		ReducedNodes: eng.Reduced().Graph().NumNodes(),
		Workers:      eng.Workers(),
		Seed:         eng.Config().Seed,
		CompileMS:    float64(compile) / float64(time.Millisecond),
	}
}

func (s *server) handleNetwork(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, infoOf("", s.desc, s.eng, s.eng.CompileDuration()))
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.eng.Stats()
	// The chaos block appears only when fault injection is armed, so the
	// steady-state stats shape is unchanged.
	var chaosStats *chaos.Stats
	if s.chaos != nil {
		cs := s.chaos.Stats()
		chaosStats = &cs
	}
	writeJSON(w, http.StatusOK, struct {
		engine.Snapshot
		Queries  int64          `json:"queries"`
		Registry registry.Stats `json:"registry"`
		Worlds   int            `json:"worlds"`
		Chaos    *chaos.Stats   `json:"chaos,omitempty"`
	}{Snapshot: snap, Queries: snap.Queries(), Registry: s.reg.Stats(), Worlds: s.worlds.Len(), Chaos: chaosStats})
}

// routeRequest asks for one s→t query; WithPath additionally reconstructs
// the forward path. The bounded-work knobs: BudgetHops caps the walk's
// message hops, DeadlineMS bounds its wall time, and Resume continues an
// earlier exhausted walk from its (signed, opaque) token. Any of the three
// makes the query budgeted — incompatible with with_path, whose path
// reconstruction needs the uninterrupted walk.
type routeRequest struct {
	Src        int64  `json:"src"`
	Dst        int64  `json:"dst"`
	WithPath   bool   `json:"with_path,omitempty"`
	BudgetHops int64  `json:"budget_hops,omitempty"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
	Resume     string `json:"resume,omitempty"`
}

// bounded reports whether the request asked for a budgeted walk.
func (req routeRequest) bounded() bool {
	return req.BudgetHops > 0 || req.DeadlineMS > 0 || req.Resume != ""
}

// routeReply reports one routing outcome. Status "budget_exhausted" means
// no verdict yet: Exhausted says which limit struck (budget or deadline)
// and Resume is the token that continues the walk where it stopped.
// Certificate, when present, proves the failure verdict was answered in
// O(1) from the component index instead of by walking.
type routeReply struct {
	Src          int64              `json:"src"`
	Dst          int64              `json:"dst"`
	Status       string             `json:"status"`
	Hops         int64              `json:"hops"`
	ForwardSteps int64              `json:"forward_steps"`
	Rounds       int                `json:"rounds"`
	Bound        int                `json:"bound"`
	HeaderBits   int                `json:"header_bits"`
	Path         []int64            `json:"path,omitempty"`
	Exhausted    string             `json:"exhausted,omitempty"`
	Resume       string             `json:"resume,omitempty"`
	Certificate  *route.Certificate `json:"certificate,omitempty"`
	Error        string             `json:"error,omitempty"`
}

// statusBudgetExhausted is the reply status of a walk stopped by a budget
// or deadline: not a verdict, resume with the token to get one.
const statusBudgetExhausted = "budget_exhausted"

func routeReplyOf(src, dst graph.NodeID, res *route.Result) routeReply {
	return routeReply{
		Src:          int64(src),
		Dst:          int64(dst),
		Status:       res.Status.String(),
		Hops:         res.Hops,
		ForwardSteps: res.ForwardSteps,
		Rounds:       len(res.Rounds),
		Bound:        res.Bound,
		HeaderBits:   res.MaxHeaderBits,
		Certificate:  res.Certificate,
	}
}

func (s *server) handleRoute(w http.ResponseWriter, r *http.Request, eng *engine.Engine, scope string) {
	var req routeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	src, dst := graph.NodeID(req.Src), graph.NodeID(req.Dst)
	if req.WithPath {
		if req.bounded() {
			writeJSON(w, http.StatusBadRequest,
				errorBody{Error: "with_path cannot be combined with budget_hops, deadline_ms, or resume"})
			return
		}
		res, path, err := eng.RouteWithPath(src, dst)
		if err != nil {
			writeErr(w, err)
			return
		}
		reply := routeReplyOf(src, dst, res)
		for _, v := range path {
			reply.Path = append(reply.Path, int64(v))
		}
		writeJSON(w, http.StatusOK, reply)
		return
	}
	if !req.bounded() {
		res, err := eng.RouteTraced(src, dst, trace.FromContext(r.Context()))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, routeReplyOf(src, dst, res))
		return
	}
	cur, ok := s.verifyResume(w, scope, req.Resume)
	if !ok {
		return
	}
	ctx, cancel := s.boundedCtx(r, req.DeadlineMS)
	defer cancel()
	res, err := eng.RouteBudgetedTraced(ctx, src, dst, req.BudgetHops, cur, trace.FromContext(r.Context()))
	if err != nil {
		writeErr(w, err)
		return
	}
	reply := routeReplyOf(src, dst, res)
	if res.Exhausted != "" {
		tok, err := s.tok.Sign(scope, res.Cursor)
		if err != nil {
			writeErr(w, err)
			return
		}
		reply.Status = statusBudgetExhausted
		reply.Exhausted = string(res.Exhausted)
		reply.Resume = tok
		s.logDrainCursor(scope, req.Src, req.Dst, tok)
	}
	writeJSON(w, http.StatusOK, reply)
}

// verifyResume authenticates an optional resume token for scope, answering
// 400 itself on any verification failure. An empty token is a nil cursor.
func (s *server) verifyResume(w http.ResponseWriter, scope, tok string) (*route.Cursor, bool) {
	if tok == "" {
		return nil, true
	}
	cur, err := s.tok.Verify(scope, tok)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return nil, false
	}
	return cur, true
}

// batchRequest carries either explicit pairs or a one-to-many fan-out
// (src + targets). Exactly one of the two shapes must be used.
type batchRequest struct {
	Pairs   [][2]int64 `json:"pairs,omitempty"`
	Src     *int64     `json:"src,omitempty"`
	Targets []int64    `json:"targets,omitempty"`
}

// batchReply reports a whole batch; members appear in request order.
type batchReply struct {
	Results   []routeReply `json:"results"`
	Succeeded int          `json:"succeeded"`
	Failed    int          `json:"failed"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request, eng *engine.Engine, _ string) {
	var req batchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	// One request must not purchase unbounded walk work: the member count
	// is capped server-side (the batch analogue of the dynamics clamps).
	if n := len(req.Pairs) + len(req.Targets); s.maxBatch > 0 && n > s.maxBatch {
		writeJSON(w, http.StatusBadRequest,
			errorBody{Error: fmt.Sprintf("batch of %d members exceeds server limit %d", n, s.maxBatch)})
		return
	}
	var pairs []engine.Pair
	switch {
	case len(req.Pairs) > 0 && (req.Src != nil || len(req.Targets) > 0):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "use either pairs or src+targets, not both"})
		return
	case len(req.Pairs) > 0:
		pairs = make([]engine.Pair, len(req.Pairs))
		for i, p := range req.Pairs {
			pairs[i] = engine.Pair{Src: graph.NodeID(p[0]), Dst: graph.NodeID(p[1])}
		}
	case req.Src != nil && len(req.Targets) > 0:
		pairs = make([]engine.Pair, len(req.Targets))
		for i, t := range req.Targets {
			pairs[i] = engine.Pair{Src: graph.NodeID(*req.Src), Dst: graph.NodeID(t)}
		}
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "empty batch: provide pairs or src+targets"})
		return
	}
	// The request context cancels members that have not started when the
	// client disconnects, so an abandoned fan-out stops burning workers.
	reply := batchReply{Results: make([]routeReply, len(pairs))}
	for i, br := range eng.RouteBatch(r.Context(), pairs) {
		if br.Err != nil {
			reply.Results[i] = routeReply{Src: int64(br.Src), Dst: int64(br.Dst), Error: br.Err.Error()}
			reply.Failed++
			continue
		}
		reply.Results[i] = routeReplyOf(br.Src, br.Dst, br.Res)
		reply.Succeeded++
	}
	writeJSON(w, http.StatusOK, reply)
}

// sourceRequest is the single-source request shape (broadcast, count).
type sourceRequest struct {
	Src int64 `json:"src"`
}

func (s *server) handleBroadcast(w http.ResponseWriter, r *http.Request) {
	var req sourceRequest
	if !decodeBody(w, r, &req) {
		return
	}
	res, err := s.eng.Broadcast(graph.NodeID(req.Src))
	if err != nil {
		writeErr(w, err)
		return
	}
	nodes := make([]int64, len(res.Nodes))
	for i, v := range res.Nodes {
		nodes[i] = int64(v)
	}
	writeJSON(w, http.StatusOK, struct {
		Src     int64   `json:"src"`
		Reached int     `json:"reached"`
		Nodes   []int64 `json:"nodes"`
		Hops    int64   `json:"hops"`
		Rounds  int     `json:"rounds"`
	}{req.Src, res.Reached, nodes, res.Hops, len(res.Rounds)})
}

func (s *server) handleCount(w http.ResponseWriter, r *http.Request) {
	var req sourceRequest
	if !decodeBody(w, r, &req) {
		return
	}
	res, err := s.eng.Count(graph.NodeID(req.Src))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Src          int64 `json:"src"`
		Count        int   `json:"count"`
		ReducedCount int   `json:"reduced_count"`
		Rounds       int   `json:"rounds"`
		MessageHops  int64 `json:"message_hops"`
	}{req.Src, res.OriginalCount, res.ReducedCount, res.Rounds, res.Hops})
}

// hybridRequest asks for a Corollary 2 race. WalkSeed is a pointer so an
// explicit seed of 0 is distinguishable from "use the engine default".
type hybridRequest struct {
	Src      int64   `json:"src"`
	Dst      int64   `json:"dst"`
	WalkSeed *uint64 `json:"walk_seed,omitempty"`
}

func (s *server) handleHybrid(w http.ResponseWriter, r *http.Request) {
	var req hybridRequest
	if !decodeBody(w, r, &req) {
		return
	}
	walkSeed := s.eng.Config().Seed ^ 0x5eed
	if req.WalkSeed != nil {
		walkSeed = *req.WalkSeed
	}
	res, err := s.eng.Hybrid(graph.NodeID(req.Src), graph.NodeID(req.Dst), walkSeed)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Src           int64  `json:"src"`
		Dst           int64  `json:"dst"`
		Status        string `json:"status"`
		Winner        string `json:"winner"`
		CombinedSteps int64  `json:"combined_steps"`
	}{req.Src, req.Dst, res.Status.String(), res.Winner, res.CombinedSteps})
}

// Server-side bounds on the dynamics knobs: a round is already capped by
// the sequence budget, so capping rounds and the epoch frequency bounds
// the total recompile work one request can demand.
const (
	maxDynamicRounds       = 256
	minDynamicHopsPerEpoch = 8
)

// clampDynamics applies the server-side bounds to client dynamics knobs.
// A negative hops_per_epoch freezes the epoch clock (the world evolves
// only via explicit advances), which is cheaper than any positive value
// and therefore always allowed.
func clampDynamics(hopsPerEpoch, maxRounds int) dynamic.Config {
	cfg := dynamic.Config{HopsPerEpoch: hopsPerEpoch, MaxRounds: maxRounds}
	if cfg.MaxRounds > maxDynamicRounds {
		cfg.MaxRounds = maxDynamicRounds
	}
	if cfg.HopsPerEpoch > 0 && cfg.HopsPerEpoch < minDynamicHopsPerEpoch {
		cfg.HopsPerEpoch = minDynamicHopsPerEpoch
	}
	return cfg
}

// dynamicRequest asks for one s→t query over an evolving private copy of
// the served network. The schedule spec selects and parameterizes the
// dynamics; hops_per_epoch couples protocol time to topology time
// (values below the server minimum are raised to it; rounds are capped).
type dynamicRequest struct {
	Src          int64        `json:"src"`
	Dst          int64        `json:"dst"`
	Schedule     dynamic.Spec `json:"schedule"`
	HopsPerEpoch int          `json:"hops_per_epoch,omitempty"`
	MaxRounds    int          `json:"max_rounds,omitempty"`
}

// dynamicReply reports the outcome plus the dynamics accounting: how many
// epochs elapsed, what the churn cost in recompiles, and how often the
// stateless header migrated across snapshots.
type dynamicReply struct {
	Src           int64              `json:"src"`
	Dst           int64              `json:"dst"`
	Status        string             `json:"status"`
	Hops          int64              `json:"hops"`
	Rounds        int                `json:"rounds"`
	AbortedRounds int                `json:"aborted_rounds"`
	Bound         int                `json:"bound"`
	Epochs        int                `json:"epochs"`
	Recompiles    int                `json:"recompiles"`
	Resumptions   int                `json:"resumptions"`
	HeaderBits    int                `json:"header_bits"`
	FinalLinks    int                `json:"final_links"`
	Exhausted     string             `json:"exhausted,omitempty"`
	Resume        string             `json:"resume,omitempty"`
	Certificate   *route.Certificate `json:"certificate,omitempty"`
}

func dynamicReplyOf(src, dst int64, res *dynamic.Result, world *dynamic.World) dynamicReply {
	return dynamicReply{
		Src:           src,
		Dst:           dst,
		Status:        res.Status.String(),
		Hops:          res.Hops,
		Rounds:        res.Rounds,
		AbortedRounds: res.AbortedRounds,
		Bound:         res.Bound,
		Epochs:        res.Epochs,
		Recompiles:    res.Recompiles,
		Resumptions:   res.Resumptions,
		HeaderBits:    res.MaxHeaderBits,
		FinalLinks:    world.NumEdges(),
		Certificate:   res.Certificate,
	}
}

func (s *server) handleDynamic(w http.ResponseWriter, r *http.Request) {
	var req dynamicRequest
	if !decodeBody(w, r, &req) {
		return
	}
	sched, err := req.Schedule.Build()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	world := s.eng.NewWorld(sched)
	if s.pos != nil {
		world.SetPositions(s.pos)
	}
	world.SetChaos(s.chaos)
	// Unlike the other endpoints, a dynamic query's cost scales with its
	// knobs (each churned epoch buys a recompile), so they are clamped
	// server-side: one request must not purchase unbounded CPU.
	res, err := s.eng.RouteDynamicTraced(world, graph.NodeID(req.Src), graph.NodeID(req.Dst),
		clampDynamics(req.HopsPerEpoch, req.MaxRounds), trace.FromContext(r.Context()))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, dynamicReplyOf(req.Src, req.Dst, res, world))
}
