// Package graph implements port-labeled undirected multigraphs, the network
// model of the paper (§1.1, §2).
//
// Each vertex v assigns local labels ("ports") 0..deg(v)-1 to its incident
// half-edges, as an arbitrary permutation; the two endpoints of an edge do
// not need to agree on labels. Self-loops and parallel edges are allowed —
// the degree-reduction gadget of Figure 1 produces both. This is exactly the
// rotation-system model on which exploration sequences are defined.
package graph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/prng"
)

// NodeID is the universal name of a node, drawn from a namespace of size n
// (the paper's example: physical locations, or IPv4 addresses with n = 2^32).
type NodeID int64

// Half identifies the far end of a half-edge: the neighbouring node and the
// port (local label) under which the same edge is known at that neighbour.
type Half struct {
	To     NodeID
	ToPort int
}

// Errors reported by graph operations.
var (
	ErrNodeExists   = errors.New("graph: node already exists")
	ErrNodeNotFound = errors.New("graph: node not found")
	ErrPortRange    = errors.New("graph: port out of range")
)

// Graph is a mutable port-labeled undirected multigraph. The zero value is
// not usable; construct with New.
type Graph struct {
	order []NodeID
	adj   map[NodeID][]Half
	// edges counts the current edges (a self-loop counts once), maintained
	// by every mutation so NumEdges is O(1) instead of a full adjacency
	// rescan.
	edges int
	// journal, when attached, records mutations for delta-aware consumers
	// (see journal.go).
	journal *Journal
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{adj: make(map[NodeID][]Half)}
}

// NewFromAdjacency builds a graph directly from a port table: adj[v][p] is
// the half-edge leaving v through port p. The input is copied and validated
// (every half-edge must have a mutual partner). This constructor exists for
// callers that need exact control over port labels, such as the exhaustive
// enumeration of labeled cubic multigraphs.
func NewFromAdjacency(order []NodeID, adj map[NodeID][]Half) (*Graph, error) {
	g := &Graph{
		order: make([]NodeID, len(order)),
		adj:   make(map[NodeID][]Half, len(adj)),
	}
	copy(g.order, order)
	for v, hs := range adj {
		cp := make([]Half, len(hs))
		copy(cp, hs)
		g.adj[v] = cp
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	g.edges = g.countEdges()
	return g, nil
}

// AddNode inserts an isolated node. It returns ErrNodeExists if the ID is
// already present.
func (g *Graph) AddNode(id NodeID) error {
	if _, ok := g.adj[id]; ok {
		return fmt.Errorf("%w: %d", ErrNodeExists, id)
	}
	g.adj[id] = nil
	g.order = append(g.order, id)
	if g.journal != nil {
		g.journal.MarkDirty("node added")
	}
	return nil
}

// EnsureNode inserts the node if it is not already present.
func (g *Graph) EnsureNode(id NodeID) {
	if _, ok := g.adj[id]; !ok {
		g.adj[id] = nil
		g.order = append(g.order, id)
		if g.journal != nil {
			g.journal.MarkDirty("node added")
		}
	}
}

// AddEdge inserts an undirected edge between u and v (which may be equal: a
// self-loop), assigning the next free port at each endpoint. It returns the
// two assigned ports. Both nodes must already exist.
func (g *Graph) AddEdge(u, v NodeID) (portU, portV int, err error) {
	if _, ok := g.adj[u]; !ok {
		return 0, 0, fmt.Errorf("%w: %d", ErrNodeNotFound, u)
	}
	if _, ok := g.adj[v]; !ok {
		return 0, 0, fmt.Errorf("%w: %d", ErrNodeNotFound, v)
	}
	if u == v {
		p1 := len(g.adj[u])
		p2 := p1 + 1
		g.adj[u] = append(g.adj[u], Half{To: u, ToPort: p2}, Half{To: u, ToPort: p1})
		g.edges++
		if g.journal != nil {
			g.journal.record(Delta{Op: DeltaAdd, U: u, V: u, PortU: p1, PortV: p2})
		}
		return p1, p2, nil
	}
	pu := len(g.adj[u])
	pv := len(g.adj[v])
	g.adj[u] = append(g.adj[u], Half{To: v, ToPort: pv})
	g.adj[v] = append(g.adj[v], Half{To: u, ToPort: pu})
	g.edges++
	if g.journal != nil {
		g.journal.record(Delta{Op: DeltaAdd, U: u, V: v, PortU: pu, PortV: pv})
	}
	return pu, pv, nil
}

// RemoveEdge deletes the edge attached to port p of node v (and its mutual
// half at the other endpoint). Port labels stay compact: the last port of
// each affected endpoint is swapped into the freed slot, and the mutual
// reference of the swapped half-edge is updated. Self-loops (both halves on
// v) are handled. Used by dynamic-topology experiments; the routing
// algorithms themselves assume a static graph.
func (g *Graph) RemoveEdge(v NodeID, p int) error {
	hs, ok := g.adj[v]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNodeNotFound, v)
	}
	if p < 0 || p >= len(hs) {
		return fmt.Errorf("%w: node %d port %d (degree %d)", ErrPortRange, v, p, len(hs))
	}
	other := hs[p]
	if other.To == v {
		// Self-loop: delete the two halves at v, higher port first so the
		// lower index stays valid.
		hi, lo := p, other.ToPort
		if hi < lo {
			hi, lo = lo, hi
		}
		g.removeHalf(v, hi)
		g.removeHalf(v, lo)
		g.edges--
		if g.journal != nil {
			g.journal.record(Delta{Op: DeltaRemove, U: v, V: v, PortU: lo, PortV: hi})
		}
		return nil
	}
	g.removeHalf(v, p)
	g.removeHalf(other.To, other.ToPort)
	g.edges--
	if g.journal != nil {
		g.journal.record(Delta{Op: DeltaRemove, U: v, V: other.To, PortU: p, PortV: other.ToPort})
	}
	return nil
}

// removeHalf deletes port p of node v by swapping the last port into its
// place and fixing the mutual pointer of the moved half-edge. The caller
// is responsible for removing the partner half too; a half-edge cannot be
// its own partner, so the far-end fix below is always well-defined.
func (g *Graph) removeHalf(v NodeID, p int) {
	hs := g.adj[v]
	last := len(hs) - 1
	if p != last {
		moved := hs[last]
		hs[p] = moved
		// The far end of the moved half-edge must now point at port p.
		// When moved.To == v this writes through the same slice, which is
		// exactly the intended in-place fix.
		g.adj[moved.To][moved.ToPort] = Half{To: v, ToPort: p}
	}
	g.adj[v] = hs[:last]
}

// HasNode reports whether id is a node of g.
func (g *Graph) HasNode(id NodeID) bool {
	_, ok := g.adj[id]
	return ok
}

// HasEdge reports whether at least one edge joins u and v.
func (g *Graph) HasEdge(u, v NodeID) bool {
	for _, h := range g.adj[u] {
		if h.To == v {
			return true
		}
	}
	return false
}

// PortTo returns the lowest port at u whose edge leads to v, or ok=false
// when no edge joins them. One map lookup plus a contiguous slice scan —
// the neighbor-resolution helper for callers that would otherwise probe
// ports one Neighbor call (one map lookup) at a time.
func (g *Graph) PortTo(u, v NodeID) (port int, ok bool) {
	for p, h := range g.adj[u] {
		if h.To == v {
			return p, true
		}
	}
	return 0, false
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.order) }

// NumEdges returns the number of edges; a self-loop counts once. The count
// is maintained incrementally by every mutation, so this is O(1).
func (g *Graph) NumEdges() int { return g.edges }

// countEdges recounts edges from the adjacency lists — the O(n) oracle the
// incremental counter replaces, retained for constructors that build
// adjacency wholesale (and for tests pinning counter == recount).
func (g *Graph) countEdges() int {
	halves := 0
	for _, hs := range g.adj {
		halves += len(hs)
	}
	return halves / 2
}

// Degree returns the degree of v (a self-loop contributes 2), or -1 if v is
// not a node of g.
func (g *Graph) Degree(v NodeID) int {
	hs, ok := g.adj[v]
	if !ok {
		return -1
	}
	return len(hs)
}

// Neighbor returns the half-edge leaving v through the given port.
func (g *Graph) Neighbor(v NodeID, port int) (Half, error) {
	hs, ok := g.adj[v]
	if !ok {
		return Half{}, fmt.Errorf("%w: %d", ErrNodeNotFound, v)
	}
	if port < 0 || port >= len(hs) {
		return Half{}, fmt.Errorf("%w: node %d port %d (degree %d)", ErrPortRange, v, port, len(hs))
	}
	return hs[port], nil
}

// Nodes returns a copy of the node IDs in insertion order.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, len(g.order))
	copy(out, g.order)
	return out
}

// ForEachNode calls f for every node in insertion order.
func (g *Graph) ForEachNode(f func(NodeID)) {
	for _, id := range g.order {
		f(id)
	}
}

// MaxDegree returns the maximum degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	maxDeg := 0
	for _, hs := range g.adj {
		if len(hs) > maxDeg {
			maxDeg = len(hs)
		}
	}
	return maxDeg
}

// MinDegree returns the minimum degree, or 0 for an empty graph.
func (g *Graph) MinDegree() int {
	if len(g.order) == 0 {
		return 0
	}
	minDeg := int(^uint(0) >> 1)
	for _, hs := range g.adj {
		if len(hs) < minDeg {
			minDeg = len(hs)
		}
	}
	return minDeg
}

// IsRegular reports whether every node has degree d.
func (g *Graph) IsRegular(d int) bool {
	for _, hs := range g.adj {
		if len(hs) != d {
			return false
		}
	}
	return true
}

// Validate checks structural invariants: every half-edge points to an
// existing node and to the mutual half-edge that points back. A graph built
// only through AddNode/AddEdge always validates; Validate guards hand-built
// or decoded graphs.
func (g *Graph) Validate() error {
	if len(g.order) != len(g.adj) {
		return fmt.Errorf("graph: order/adjacency size mismatch: %d vs %d", len(g.order), len(g.adj))
	}
	for v, hs := range g.adj {
		for p, h := range hs {
			back, ok := g.adj[h.To]
			if !ok {
				return fmt.Errorf("graph: node %d port %d points to missing node %d", v, p, h.To)
			}
			if h.ToPort < 0 || h.ToPort >= len(back) {
				return fmt.Errorf("graph: node %d port %d points to %d port %d, out of range (degree %d)",
					v, p, h.To, h.ToPort, len(back))
			}
			if mutual := back[h.ToPort]; mutual.To != v || mutual.ToPort != p {
				return fmt.Errorf("graph: half-edge (%d,%d) -> (%d,%d) not mutual: reverse is (%d,%d)",
					v, p, h.To, h.ToPort, mutual.To, mutual.ToPort)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of g. The edge counter carries over; an
// attached journal does not — the clone starts unwatched.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		order: make([]NodeID, len(g.order)),
		adj:   make(map[NodeID][]Half, len(g.adj)),
		edges: g.edges,
	}
	copy(c.order, g.order)
	for v, hs := range g.adj {
		cp := make([]Half, len(hs))
		copy(cp, hs)
		c.adj[v] = cp
	}
	return c
}

// ComponentOf returns the nodes of the connected component containing s, in
// BFS order. It returns nil if s is not a node of g.
func (g *Graph) ComponentOf(s NodeID) []NodeID {
	if !g.HasNode(s) {
		return nil
	}
	visited := map[NodeID]bool{s: true}
	queue := []NodeID{s}
	var out []NodeID
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		out = append(out, v)
		for _, h := range g.adj[v] {
			if !visited[h.To] {
				visited[h.To] = true
				queue = append(queue, h.To)
			}
		}
	}
	return out
}

// Components returns all connected components, each in BFS order, ordered by
// their first node's insertion order.
func (g *Graph) Components() [][]NodeID {
	visited := make(map[NodeID]bool, len(g.order))
	var comps [][]NodeID
	for _, s := range g.order {
		if visited[s] {
			continue
		}
		comp := g.ComponentOf(s)
		for _, v := range comp {
			visited[v] = true
		}
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether g is connected. The empty graph is connected.
func (g *Graph) IsConnected() bool {
	if len(g.order) == 0 {
		return true
	}
	return len(g.ComponentOf(g.order[0])) == len(g.order)
}

// BFSDist returns the hop distance from s to every node reachable from s.
func (g *Graph) BFSDist(s NodeID) map[NodeID]int {
	if !g.HasNode(s) {
		return nil
	}
	dist := map[NodeID]int{s: 0}
	queue := []NodeID{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, h := range g.adj[v] {
			if _, ok := dist[h.To]; !ok {
				dist[h.To] = dist[v] + 1
				queue = append(queue, h.To)
			}
		}
	}
	return dist
}

// ShuffleLabels randomly permutes the port labels at every node, preserving
// the underlying multigraph. Exploration-sequence universality must hold
// "for any labeling" (Definition 3); tests use this to adversarially vary
// the labeling. The permutation is deterministic in seed.
func (g *Graph) ShuffleLabels(seed uint64) {
	perms := make(map[NodeID][]int, len(g.adj))
	src := prng.New(seed)
	for _, v := range g.order {
		perms[v] = src.Perm(len(g.adj[v]))
	}
	newAdj := make(map[NodeID][]Half, len(g.adj))
	for _, v := range g.order {
		hs := g.adj[v]
		out := make([]Half, len(hs))
		pv := perms[v]
		for p, h := range hs {
			out[pv[p]] = Half{To: h.To, ToPort: perms[h.To][h.ToPort]}
		}
		newAdj[v] = out
	}
	g.adj = newAdj
	if g.journal != nil {
		// Every port moved at once; no edge-level diff can express that.
		g.journal.MarkDirty("labels shuffled")
	}
}

// Encode writes g in a line-oriented text format that round-trips exactly,
// including port labels:
//
//	adhocgraph v1
//	node <id> <half> <half> ...
//
// where each half is "to:toport".
func (g *Graph) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "adhocgraph v1"); err != nil {
		return err
	}
	for _, v := range g.order {
		var sb strings.Builder
		sb.WriteString("node ")
		sb.WriteString(strconv.FormatInt(int64(v), 10))
		for _, h := range g.adj[v] {
			sb.WriteByte(' ')
			sb.WriteString(strconv.FormatInt(int64(h.To), 10))
			sb.WriteByte(':')
			sb.WriteString(strconv.Itoa(h.ToPort))
		}
		if _, err := fmt.Fprintln(bw, sb.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode parses the format produced by Encode and validates the result.
func Decode(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, errors.New("graph: empty input")
	}
	if got := strings.TrimSpace(sc.Text()); got != "adhocgraph v1" {
		return nil, fmt.Errorf("graph: bad header %q", got)
	}
	g := New()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] != "node" || len(fields) < 2 {
			return nil, fmt.Errorf("graph: bad line %q", line)
		}
		id, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: bad node id %q: %w", fields[1], err)
		}
		v := NodeID(id)
		g.EnsureNode(v)
		hs := make([]Half, 0, len(fields)-2)
		for _, f := range fields[2:] {
			to, toPort, ok := strings.Cut(f, ":")
			if !ok {
				return nil, fmt.Errorf("graph: bad half %q", f)
			}
			toID, err := strconv.ParseInt(to, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: bad half target %q: %w", f, err)
			}
			port, err := strconv.Atoi(toPort)
			if err != nil {
				return nil, fmt.Errorf("graph: bad half port %q: %w", f, err)
			}
			hs = append(hs, Half{To: NodeID(toID), ToPort: port})
		}
		g.adj[v] = hs
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	g.edges = g.countEdges()
	return g, nil
}

// SortedNodes returns the node IDs in increasing order (a copy).
func (g *Graph) SortedNodes() []NodeID {
	out := g.Nodes()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Indexer assigns dense indices 0..n-1 to the nodes of a graph, in insertion
// order, for algorithms that want array-based state.
type Indexer struct {
	ids   []NodeID
	index map[NodeID]int
}

// NewIndexer builds an Indexer over the current nodes of g.
func NewIndexer(g *Graph) *Indexer {
	ix := &Indexer{
		ids:   g.Nodes(),
		index: make(map[NodeID]int, g.NumNodes()),
	}
	for i, id := range ix.ids {
		ix.index[id] = i
	}
	return ix
}

// Len returns the number of indexed nodes.
func (ix *Indexer) Len() int { return len(ix.ids) }

// Index returns the dense index of id and whether it is known.
func (ix *Indexer) Index(id NodeID) (int, bool) {
	i, ok := ix.index[id]
	return i, ok
}

// ID returns the NodeID at dense index i.
func (ix *Indexer) ID(i int) NodeID { return ix.ids[i] }
