package engine

import (
	"repro/internal/obs"
)

// Vecs is the shared per-network metric family set. The serving layer
// creates one Vecs for the process and attaches every engine to it —
// the boot engine under its load name and each registry tenant under its
// network ID — so a misbehaving tenant is visible inside the fleet-wide
// aggregates instead of averaged away.
//
// Attach caches the per-network child handles on the engine's metrics
// struct, so the per-query cost of the labels is one nil-check branch
// plus the same atomic adds the unlabeled counters already pay; the
// vector map is never consulted on the query path
// (BenchmarkVecRoute pins this against the unlabeled baseline).
type Vecs struct {
	routes  *obs.CounterVec   // {network, kind=static|dynamic}
	errors  *obs.CounterVec   // {network}
	seconds *obs.HistogramVec // {network}, sampled like the global histogram
}

// NewVecs builds the per-network families, capped at maxNetworks distinct
// networks (the registry capacity plus the boot engine, with slack for
// churn; past the cap, networks collapse into the "other" series and the
// overflow is counted on obs_dropped_series_total).
func NewVecs(maxNetworks int) *Vecs {
	if maxNetworks <= 0 {
		maxNetworks = 64
	}
	return &Vecs{
		routes: obs.NewCounterVec("adhoc_network_routes_total",
			"Completed routing queries per network, split static vs dynamic.",
			[]string{"network", "kind"}, 2*maxNetworks),
		errors: obs.NewCounterVec("adhoc_network_errors_total",
			"Routing queries that returned an error, per network.",
			[]string{"network"}, maxNetworks),
		seconds: obs.NewLatencyHistogramVec("adhoc_network_route_seconds",
			"Sampled routing latency per network (same 1-in-8 grid as the engine histograms).",
			[]string{"network"}, maxNetworks),
	}
}

// Register exports the families (their overflow counters ride along).
func (v *Vecs) Register(o *obs.Registry) error {
	return o.Register(v.routes, v.errors, v.seconds)
}

// AttachVecs binds this engine to its per-network series, caching the
// child handles. Call once, before the engine serves queries (the fields
// are read without synchronization on the hot path).
func (e *Engine) AttachVecs(v *Vecs, network string) {
	if v == nil {
		return
	}
	e.m.vecStatic = v.routes.With(network, "static")
	e.m.vecDynamic = v.routes.With(network, "dynamic")
	e.m.vecErrors = v.errors.With(network)
	e.m.vecSeconds = v.seconds.With(network)
}
