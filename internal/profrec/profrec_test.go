package profrec

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached")
}

func TestTripCapturesHeapAndCPU(t *testing.T) {
	r := New(Config{Capacity: 8, CPUWindow: 50 * time.Millisecond, MinInterval: time.Millisecond})
	if !r.Trip("test-burn") {
		t.Fatal("first trip must be accepted")
	}
	// Heap is synchronous.
	infos := r.List()
	if len(infos) != 1 || infos[0].Kind != "heap" || infos[0].Reason != "test-burn" {
		t.Fatalf("after trip: %+v", infos)
	}
	if infos[0].Bytes == 0 {
		t.Fatal("heap snapshot is empty")
	}
	// CPU lands asynchronously after its window.
	waitFor(t, func() bool { return len(r.List()) == 2 })
	var cpu Info
	for _, i := range r.List() {
		if i.Kind == "cpu" {
			cpu = i
		}
	}
	if cpu.ID == 0 {
		t.Fatalf("no cpu snapshot: %+v", r.List())
	}
	info, data, ok := r.Get(cpu.ID)
	if !ok || info.Kind != "cpu" || len(data) != info.Bytes {
		t.Fatalf("Get(%d) = %+v ok=%v len=%d", cpu.ID, info, ok, len(data))
	}
	if info.Filename() != "cpu-"+itoa(cpu.ID)+".pb.gz" {
		t.Fatalf("Filename = %q", info.Filename())
	}
}

func itoa(n int64) string {
	var b bytes.Buffer
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	b.Write(digits)
	return b.String()
}

func TestRateLimit(t *testing.T) {
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	r := New(Config{Capacity: 8, CPUWindow: time.Millisecond, MinInterval: 30 * time.Second,
		now: func() time.Time { return now }})
	if !r.Trip("a") {
		t.Fatal("first trip rejected")
	}
	if r.Trip("b") {
		t.Fatal("second trip inside MinInterval accepted")
	}
	if got := r.Stats().Dropped; got != 1 {
		t.Fatalf("Dropped = %d", got)
	}
	now = now.Add(31 * time.Second)
	if !r.Trip("c") {
		t.Fatal("trip after MinInterval rejected")
	}
	if got := r.Stats().Trips; got != 2 {
		t.Fatalf("Trips = %d", got)
	}
}

func TestRingEviction(t *testing.T) {
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	r := New(Config{Capacity: 2, CPUWindow: time.Millisecond, MinInterval: time.Nanosecond,
		now: func() time.Time { now = now.Add(time.Second); return now }})
	for i := 0; i < 4; i++ {
		r.captureHeap("fill", now)
	}
	if got := len(r.List()); got != 2 {
		t.Fatalf("ring holds %d, want 2", got)
	}
	if got := r.Stats().Evicted; got != 2 {
		t.Fatalf("Evicted = %d", got)
	}
	// Oldest IDs are gone, newest remain.
	if _, _, ok := r.Get(1); ok {
		t.Fatal("evicted snapshot still resolvable")
	}
	if _, _, ok := r.Get(4); !ok {
		t.Fatal("newest snapshot lost")
	}
}

func TestCPUContention(t *testing.T) {
	r := New(Config{Capacity: 4, CPUWindow: time.Millisecond, MinInterval: time.Nanosecond})
	r.cpuActive.Store(true) // simulate a running external capture
	r.captureCPU("x")
	if got := r.Stats().Errors; got != 1 {
		t.Fatalf("Errors = %d", got)
	}
	r.cpuActive.Store(false)
}

func TestMetrics(t *testing.T) {
	r := New(Config{Capacity: 4, CPUWindow: time.Millisecond})
	reg := obs.NewRegistry()
	if err := r.RegisterMetrics(reg); err != nil {
		t.Fatal(err)
	}
	r.captureHeap("m", time.Now())
	var b bytes.Buffer
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"adhoc_profiles_trips_total 0",
		"adhoc_profiles_held 1",
		"adhoc_profiles_dropped_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if errs := obs.Lint(out, false); errs != nil {
		t.Fatalf("lint: %v", errs)
	}
}
