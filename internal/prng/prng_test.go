package prng

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestMix64Bijective(t *testing.T) {
	// Mix64 is a bijection; over a sample of inputs there must be no
	// collisions and reasonable avalanche.
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		v := Mix64(i)
		if prev, ok := seen[v]; ok {
			t.Fatalf("collision: Mix64(%d) == Mix64(%d) == %d", i, prev, v)
		}
		seen[v] = i
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	var total, samples int
	for i := uint64(1); i < 1000; i++ {
		base := Mix64(i)
		for b := 0; b < 64; b += 7 {
			diff := base ^ Mix64(i^(1<<uint(b)))
			total += bits.OnesCount64(diff)
			samples++
		}
	}
	avg := float64(total) / float64(samples)
	if avg < 24 || avg > 40 {
		t.Fatalf("poor avalanche: average %.2f flipped bits, want ~32", avg)
	}
}

func TestAtIsStateless(t *testing.T) {
	// At must return the same value regardless of evaluation order.
	forward := make([]uint64, 100)
	for i := range forward {
		forward[i] = At(42, uint64(i))
	}
	for i := len(forward) - 1; i >= 0; i-- {
		if got := At(42, uint64(i)); got != forward[i] {
			t.Fatalf("At(42,%d) order dependent: %d vs %d", i, got, forward[i])
		}
	}
}

func TestAtSeedSeparation(t *testing.T) {
	matches := 0
	for i := uint64(0); i < 1000; i++ {
		if At(1, i) == At(2, i) {
			matches++
		}
	}
	if matches > 2 {
		t.Fatalf("streams for different seeds agree at %d/1000 indices", matches)
	}
}

func TestSourceDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("same-seed sources diverged at step %d: %d vs %d", i, av, bv)
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(1)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared style sanity check over 10 buckets.
	s := New(99)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Intn(n)]++
	}
	want := trials / n
	for b, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Fatalf("bucket %d count %d far from expected %d", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(5)
	for _, n := range []int{0, 1, 2, 10, 257} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) returned %d elements", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) is not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleCoversArrangements(t *testing.T) {
	// All 6 arrangements of 3 elements should occur across many shuffles.
	s := New(11)
	seen := make(map[[3]int]bool)
	for i := 0; i < 600; i++ {
		arr := [3]int{0, 1, 2}
		s.Shuffle(3, func(i, j int) { arr[i], arr[j] = arr[j], arr[i] })
		seen[arr] = true
	}
	if len(seen) != 6 {
		t.Fatalf("shuffle produced only %d/6 arrangements", len(seen))
	}
}

func TestMix64Invertible(t *testing.T) {
	// Mix64 is a bijection on uint64; quick.Check that distinct inputs map
	// to distinct outputs (injectivity on sampled pairs).
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		return Mix64(a) != Mix64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
