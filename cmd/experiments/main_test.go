package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-only", "F1", "-quick", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	md, err := os.ReadFile(filepath.Join(dir, "F1.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "Degree reduction") {
		t.Fatalf("F1.md content wrong:\n%s", md)
	}
	csv, err := os.ReadFile(filepath.Join(dir, "F1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "family,") {
		t.Fatalf("F1.csv header wrong:\n%s", csv)
	}
}

func TestRunLowercaseID(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-only", "a3", "-quick", "-out", dir}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "A3.md")); err != nil {
		t.Fatal("lowercase -only did not resolve")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-only", "E42", "-quick", "-out", t.TempDir()}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad flag should error")
	}
}

func TestRunAllQuickWritesCombined(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick sweep in -short mode")
	}
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-quick", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	all, err := os.ReadFile(filepath.Join(dir, "ALL.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"F1", "E1", "E5", "E9", "A1", "A4"} {
		if !strings.Contains(string(all), "## "+id) {
			t.Fatalf("ALL.md missing %s", id)
		}
	}
}
