package flatgraph

import "sort"

// Connected components of the CSR snapshot, computed once and memoized on
// the Graph (which is immutable after Compile, so the index never goes
// stale). The walk of §4 can only ever reach nodes in the component of its
// start, so two nodes in different components are provably mutually
// unreachable: comparing their component ids answers in O(1) what the
// doubling loop would otherwise establish by burning its entire budget.

// Components is an immutable node→component index over one compiled
// snapshot. Component ids are canonical — components are ranked by the
// smallest original NodeID they contain and numbered 0..Count()-1 in that
// order. The ranking depends only on the projected original topology,
// never on gadget numbering or dense-index layout, so a full compile and a
// delta-patched compile of the same topology version assign identical ids
// and certificates minted from either snapshot compare equal.
type Components struct {
	comp  []int32
	sizes []int32
}

// Components returns the connected-component index of f, computing it on
// first use. Safe for concurrent callers. Delta-patched snapshots arrive
// with the index precomputed (maintained incrementally by the patcher);
// the lazy path below serves full compiles.
func (f *Graph) Components() *Components {
	f.compOnce.Do(func() {
		if f.comps == nil {
			f.comps = computeComponents(f)
		}
	})
	return f.comps
}

// NewComponents wraps a precomputed index: comp[i] is the canonical
// component id of dense node i and sizes[id] the member count of component
// id. Intended for delta compilers that maintain the index incrementally;
// the arrays are taken over, not copied, and must follow the canonical
// min-original-ID ranking documented on Components.
func NewComponents(comp, sizes []int32) *Components {
	return &Components{comp: comp, sizes: sizes}
}

// computeComponents runs union-find (path halving + union by size) over
// the half-edge table, then relabels components canonically by their
// minimum original NodeID.
func computeComponents(f *Graph) *Components {
	n := len(f.ids)
	parent := make([]int32, n)
	size := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
		size[i] = 1
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		for o := f.rowStart[i]; o < f.rowStart[i+1]; o++ {
			a, b := find(int32(i)), find(f.halves[o].To)
			if a == b {
				continue
			}
			if size[a] < size[b] {
				a, b = b, a
			}
			parent[b] = a
			size[a] += size[b]
		}
	}
	// Rank roots by the minimum original NodeID of their members, so ids do
	// not depend on how the compile path happened to number gadget nodes.
	minOrig := make(map[int32]int64, 4)
	for i := 0; i < n; i++ {
		r := find(int32(i))
		o := int64(f.orig[i])
		if cur, ok := minOrig[r]; !ok || o < cur {
			minOrig[r] = o
		}
	}
	roots := make([]int32, 0, len(minOrig))
	for r := range minOrig {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return minOrig[roots[i]] < minOrig[roots[j]] })
	label := make(map[int32]int32, len(roots))
	c := &Components{comp: make([]int32, n), sizes: make([]int32, len(roots))}
	for rank, r := range roots {
		label[r] = int32(rank)
		c.sizes[rank] = size[r]
	}
	for i := 0; i < n; i++ {
		c.comp[i] = label[find(int32(i))]
	}
	return c
}

// Of returns the component id of dense node i.
func (c *Components) Of(i int32) int32 { return c.comp[i] }

// Same reports whether dense nodes i and j lie in the same component —
// equivalently, whether a walk started at one can ever visit the other.
func (c *Components) Same(i, j int32) bool { return c.comp[i] == c.comp[j] }

// Count returns the number of components.
func (c *Components) Count() int { return len(c.sizes) }

// Size returns the number of snapshot nodes in component id.
func (c *Components) Size(id int32) int { return int(c.sizes[id]) }
