package engine

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/route"
)

// Pair is one s→t routing query in a batch.
type Pair struct {
	Src graph.NodeID
	Dst graph.NodeID
}

// BatchResult is the outcome of one batch member; exactly one of Res and
// Err is non-nil (except that Res may carry partial round statistics
// alongside an error, mirroring Router.Route).
type BatchResult struct {
	Pair
	// Res is the routing outcome (nil only if Err is set before any round
	// ran).
	Res *route.Result
	// Err reports a per-query failure; other members are unaffected.
	Err error
}

// RouteBatch answers many independent routing queries, fanning them across
// a bounded worker pool (Config.Workers, default GOMAXPROCS). Results are
// returned in input order. The member queries share the compiled network
// exactly as concurrent Route calls do — the batch adds scheduling only,
// which is the point: the stateless protocol needs no per-session setup.
//
// ctx cancels the batch between members: queries not yet started when ctx
// is done are not routed and report ctx.Err() instead (members already in
// flight run to completion — one query is microseconds, so cancellation
// latency is one walk, not one batch). A nil ctx means context.Background().
func (e *Engine) RouteBatch(ctx context.Context, pairs []Pair) []BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	defer e.m.batchSeconds.ObserveSince(start)
	e.m.batches.Add(1)
	out := make([]BatchResult, len(pairs))
	if len(pairs) == 0 {
		return out
	}
	workers := e.Workers()
	if workers > len(pairs) {
		workers = len(pairs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pairs) {
					return
				}
				if err := ctx.Err(); err != nil {
					out[i] = BatchResult{Pair: pairs[i], Err: err}
					continue
				}
				res, err := e.Route(pairs[i].Src, pairs[i].Dst)
				out[i] = BatchResult{Pair: pairs[i], Res: res, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}

// RouteAll routes from one source to every target — the one-to-many shape
// of gossip-style workloads — via the batch pool. ctx cancels as in
// RouteBatch.
func (e *Engine) RouteAll(ctx context.Context, s graph.NodeID, targets []graph.NodeID) []BatchResult {
	pairs := make([]Pair, len(targets))
	for i, t := range targets {
		pairs[i] = Pair{Src: s, Dst: t}
	}
	return e.RouteBatch(ctx, pairs)
}
