// Package route implements the paper's primary contribution: Algorithm
// Route (§3) — guaranteed-delivery ad hoc routing by universal exploration
// sequence, with the broadcast variant and the doubling outer loop that
// removes the need to know the component size in advance (§4).
//
// The message header carries (s, t, dir, status, i) and nothing else;
// intermediate nodes keep no state between activations. A message walks the
// degree-reduced 3-regular graph G′ following T_n; if it reaches (a gadget
// node of) t it turns around with status success and backtracks along the
// reversed sequence; if the index exceeds L_n it turns around with status
// failure. The source learns the outcome in either case.
//
// Index discipline (1-based, matching the paper): a forward message at
// position P_k (after k steps) carries i = k+1, the index of the next
// direction to apply. A backward message at P_k carries i = k, the index of
// the step to undo next; it is delivered as soon as it reaches any gadget
// node of s.
package route

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/degred"
	"repro/internal/flatgraph"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/trace"
	"repro/internal/ues"
)

// Errors reported by the router.
var (
	// ErrSequenceExhausted means the doubling loop hit its safety cap
	// without the exploration sequence covering the source component —
	// empirically this would mean the pseudorandom sequence is not
	// universal for the instance (never observed; the cap guards against
	// it becoming an infinite loop).
	ErrSequenceExhausted = errors.New("route: sequence bound cap reached without covering component")
	// ErrIsolatedSource is returned by the no-reduction ablation when the
	// source has no edges to walk (the reduced mode handles this case via
	// the theta gadget).
	ErrIsolatedSource = errors.New("route: source node is isolated")
)

// ConfirmMode selects how the source learns the outcome.
type ConfirmMode int

// Confirmation mechanisms.
const (
	// ConfirmBacktrack is the paper's mechanism: the confirmation retraces
	// the forward walk using the reversibility of exploration sequences.
	// The source always learns the outcome within 2·L_n hops.
	ConfirmBacktrack ConfirmMode = iota
	// ConfirmRestart is the ablation: on finding t (or exhausting the
	// sequence), the confirmation is routed by a fresh forward exploration
	// searching for s. Cheaper when s is found quickly, but a confirmation
	// leg can exhaust its sequence at too-small doubling bounds, leaving
	// the round inconclusive — the reliability gap §1.2 warns about for
	// non-backtracking confirmations.
	ConfirmRestart
)

// Config parameterizes a Router. The zero value is usable.
type Config struct {
	// Seed identifies the exploration sequence family T_n; it is shared
	// protocol configuration, not per-node state.
	Seed uint64
	// LengthFactor scales sequence lengths (ues.Length); 0 = default.
	LengthFactor int
	// KnownN, if > 0, is a promised upper bound on the size of the source
	// component of G′; the router runs a single round at this bound, as in
	// the first part of §3. If 0, the router uses the doubling loop.
	KnownN int
	// MaxBound caps the doubling loop (0 = 4·|V(G′)|, always sufficient
	// for a universal sequence).
	MaxBound int
	// MemoryBudgetBits enforces the per-activation working-memory budget;
	// 0 derives an O(log n) default from the graph size.
	MemoryBudgetBits int
	// NoDegreeReduction runs the walk directly on G with full-range
	// directions reduced mod deg(v) — the ablation of the Figure 1 gadget.
	NoDegreeReduction bool
	// Confirm selects the confirmation mechanism (default: the paper's
	// reverse-walk backtracking).
	Confirm ConfirmMode
	// GrowthFactor is the doubling-loop multiplier (default 2, the
	// paper's schedule; the ablation uses 4).
	GrowthFactor int
	// Trace observes every hop of every round.
	Trace netsim.TraceFunc
	// FaultHook, when set, injects message loss (see netsim.WithFault).
	// The paper assumes a static, reliable network; the hook lets the
	// robustness experiments verify that a violated assumption surfaces
	// as netsim.ErrMessageLost and never as a wrong verdict.
	FaultHook func(hop int64) bool
	// SequenceFactory overrides the exploration sequence family: given a
	// size bound it must return T_bound. The default is the PRF-derived
	// ues.Pseudorandom; override to plug certified explicit sequences
	// (ues.CertifiedSmall) or any future construction. The factory must be
	// deterministic — all nodes consult the same T_n.
	SequenceFactory func(bound int) ues.Sequence
	// WireFormat round-trips the header through its serialized form on
	// every hop (netsim.WithWireFormat), as a real link would.
	WireFormat bool
	// DisableFlat forces every walk through the netsim reference engine
	// even when the compiled flat snapshot is available. The flat walker is
	// proven hop-for-hop identical to the reference by the differential
	// tests; this switch exists for those tests and for debugging.
	DisableFlat bool
	// DisableCertificates turns off the O(1) reachability certificate that
	// otherwise answers provably-unreachable pairs from the compile-time
	// component index without walking. The verdict is identical either way
	// (pinned by differential tests); disabling exists for those tests and
	// for measuring the full-budget burn the certificate replaces.
	DisableCertificates bool
}

// growth returns the sanitized growth factor.
func (c Config) growth() int {
	if c.GrowthFactor < 2 {
		return 2
	}
	return c.GrowthFactor
}

// Router routes messages on a fixed graph. It precomputes the degree
// reduction once; Route/Broadcast calls are independent and reusable.
//
// Two execution paths serve each query. The hot path walks the compiled
// CSR snapshot of G′ (package flatgraph) in an allocation-free loop; the
// reference path drives the stateless per-node handlers through the netsim
// token engine. They are hop-for-hop identical (pinned by differential
// tests); the reference runs whenever a configuration needs its
// instrumentation — tracing, fault injection, wire-format round-trips,
// custom memory budgets, restart confirmation, non-PRF sequences, or the
// no-reduction ablation.
type Router struct {
	orig *graph.Graph
	red  *degred.Reduced // nil iff cfg.NoDegreeReduction
	work *graph.Graph
	flat *flatgraph.Graph // nil iff cfg.NoDegreeReduction (or disabled)
	cfg  Config
}

// RoundStat records one doubling round.
type RoundStat struct {
	// Bound is the sequence size bound n for this round.
	Bound int
	// SeqLen is L_n.
	SeqLen int
	// Hops is the number of message hops spent in this round.
	Hops int64
	// Outcome is the round's terminal status.
	Outcome netsim.Status
	// Covered reports whether the round's walk covered the source
	// component (checked only after failed rounds).
	Covered bool
}

// Result is the outcome of a Route call.
type Result struct {
	// Status is StatusSuccess if t was reached, StatusFailure if t is
	// provably outside the source component.
	Status netsim.Status
	// Hops is the total message hops across all rounds, including
	// backtracking.
	Hops int64
	// ForwardSteps is the exploration index at which t was found (0 on
	// failure).
	ForwardSteps int64
	// Rounds holds per-round statistics.
	Rounds []RoundStat
	// Bound is the sequence bound of the terminal round.
	Bound int
	// MaxHeaderBits is the largest serialized header observed.
	MaxHeaderBits int
	// PeakMemoryBits is the peak per-activation working memory.
	PeakMemoryBits int
	// Certificate, when non-nil, proves this failure verdict was answered
	// in O(1) from the component index — no hops were walked for it.
	Certificate *Certificate
	// Exhausted is set (with Status left at StatusNone) when a bounded walk
	// stopped before reaching a verdict; Cursor then holds the resumable
	// position.
	Exhausted ExhaustReason
	Cursor    *Cursor
}

// New builds a Router for g, deriving the Figure 1 degree reduction
// (unless cfg disables it). The reduction dominates construction cost;
// callers that already hold a Reduced for g should use NewFromReduced.
func New(g *graph.Graph, cfg Config) (*Router, error) {
	if cfg.NoDegreeReduction {
		return &Router{orig: g, work: g, cfg: cfg}, nil
	}
	red, err := degred.Reduce(g)
	if err != nil {
		return nil, fmt.Errorf("route: %w", err)
	}
	return NewFromReduced(g, red, cfg)
}

// NewFromReduced builds a Router for g from a precomputed degree reduction
// of g — the reusable artifact that lets one Reduce serve many routers
// (and the sibling Counter). red must be the reduction of g; cfg must not
// also request the no-reduction ablation.
func NewFromReduced(g *graph.Graph, red *degred.Reduced, cfg Config) (*Router, error) {
	if red == nil {
		return nil, errors.New("route: NewFromReduced: nil reduction")
	}
	if cfg.NoDegreeReduction {
		return nil, errors.New("route: NewFromReduced: config disables the degree reduction")
	}
	return &Router{orig: g, red: red, work: red.Graph(), flat: red.Flat(), cfg: cfg}, nil
}

// WorkGraph returns the graph actually walked (G′, or G under the
// ablation). Read-only.
func (r *Router) WorkGraph() *graph.Graph { return r.work }

// OriginalGraph returns the graph the router was built for. Read-only.
func (r *Router) OriginalGraph() *graph.Graph { return r.orig }

// Reduced returns the degree-reduction artifact (nil under the
// no-reduction ablation). Read-only.
func (r *Router) Reduced() *degred.Reduced { return r.red }

// DefaultMemoryBudget returns the enforced per-activation budget for a work
// graph of n nodes: Θ(log n) bits with a constant floor for the fixed
// registers.
func DefaultMemoryBudget(n int) int {
	return 64*(bits.Len(uint(n))+4) + 512
}

// Route sends a message from s to t and returns the outcome learned at s.
// Routing to t == s succeeds trivially with zero hops. t need not exist in
// the graph — a name outside the component yields StatusFailure, which is
// the point of guaranteed termination.
func (r *Router) Route(s, t graph.NodeID) (*Result, error) {
	return r.route(s, t, nil)
}

// RouteTraced is Route recording per-round spans and per-hop walk events
// under sp. Traced rounds stay on the compiled flat path — the
// instrumented stepper reproduces RouteWalk's exact outcome while feeding
// the span's hop ring — so tracing never changes which execution path a
// query takes. A nil (unsampled) span routes identically to Route.
func (r *Router) RouteTraced(s, t graph.NodeID, sp *trace.Span) (*Result, error) {
	return r.route(s, t, sp)
}

func (r *Router) route(s, t graph.NodeID, sp *trace.Span) (*Result, error) {
	if !r.orig.HasNode(s) {
		return nil, fmt.Errorf("route: source: %w: %d", graph.ErrNodeNotFound, s)
	}
	if s == t {
		return &Result{Status: netsim.StatusSuccess}, nil
	}
	start, err := r.entry(s)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	if cert := r.unreachableCert(start, t); cert != nil {
		res.Status = netsim.StatusFailure
		res.Certificate = cert
		if sp.Recording() {
			sp.Event("route.certificate",
				trace.Int("src_component", int64(cert.SrcComponent)),
				trace.Int("dst_component", int64(cert.DstComponent)),
				trace.Int("components", int64(cert.Components)))
		}
		return res, nil
	}
	// runRound executes one round at the given bound. delivered reports
	// whether the source learned an outcome; with ConfirmRestart a round
	// can end inconclusively (the confirmation leg exhausted its
	// sequence), which the doubling loop treats like an uncovered failure.
	runRound := func(bound int) (st netsim.Status, delivered bool, err error) {
		seq := r.sequence(bound)
		if fs, ok := r.flatSeq(seq); ok {
			return r.flatRound(start, s, t, fs, bound, res, sp)
		}
		h := netsim.Header{Src: s, Dst: t, Dir: netsim.Forward, Status: netsim.StatusNone, Index: 1}
		eng := netsim.NewEngine(r.work,
			&routeHandler{seq: seq, originalOf: r.originalOf(), confirm: r.cfg.Confirm},
			r.engineOptions()...)
		out, err := eng.Run(start, 0, h, 2*int64(seq.Len())+8)
		stat := RoundStat{Bound: bound, SeqLen: seq.Len()}
		if out != nil {
			stat.Hops = out.Hops
			res.Hops += out.Hops
			if out.MaxHeaderBits > res.MaxHeaderBits {
				res.MaxHeaderBits = out.MaxHeaderBits
			}
			if out.PeakMemoryBits > res.PeakMemoryBits {
				res.PeakMemoryBits = out.PeakMemoryBits
			}
		}
		if err != nil {
			return netsim.StatusNone, false, err
		}
		if !out.Delivered {
			if r.cfg.Confirm == ConfirmRestart {
				// Inconclusive: the restart confirmation ran out of
				// sequence before reaching s.
				stat.Outcome = netsim.StatusNone
				res.Rounds = append(res.Rounds, stat)
				res.Bound = bound
				return netsim.StatusNone, false, nil
			}
			return netsim.StatusNone, false, fmt.Errorf("route: message dropped at %d", out.Final)
		}
		stat.Outcome = out.Header.Status
		if out.Header.Status == netsim.StatusSuccess {
			// Reconstruct the exploration index at which t was found.
			// Backtrack: forward steps f and back steps b satisfy
			// f + b = hops and b = f - indexAtDelivery, so
			// f = (hops + index) / 2. Restart: the confirmation leg took
			// index-1 steps after the turnaround reset the index to 1, so
			// f = hops - (index - 1).
			if r.cfg.Confirm == ConfirmRestart {
				res.ForwardSteps = stat.Hops - (out.Header.Index - 1)
			} else {
				res.ForwardSteps = (stat.Hops + out.Header.Index) / 2
			}
		}
		if sp.Recording() {
			sp.Event("route.round.netsim",
				trace.Int("bound", int64(bound)),
				trace.Int("hops", stat.Hops),
				trace.String("outcome", stat.Outcome.String()))
		}
		res.Rounds = append(res.Rounds, stat)
		res.Bound = bound
		return out.Header.Status, true, nil
	}

	if r.cfg.KnownN > 0 {
		st, delivered, err := runRound(r.cfg.KnownN)
		if err != nil {
			return res, err
		}
		if !delivered {
			return res, fmt.Errorf("%w: bound %d (restart confirmation inconclusive)",
				ErrSequenceExhausted, r.cfg.KnownN)
		}
		res.Status = st
		return res, nil
	}

	maxBound := r.cfg.MaxBound
	if maxBound <= 0 {
		maxBound = 4 * r.work.NumNodes()
	}
	growth := r.cfg.growth()
	for bound := 4; ; bound *= growth {
		if bound > maxBound {
			bound = maxBound
		}
		st, delivered, err := runRound(bound)
		if err != nil {
			return res, err
		}
		if st == netsim.StatusSuccess {
			res.Status = st
			return res, nil
		}
		if delivered && st == netsim.StatusFailure {
			// Failed round: decide whether the failure is definitive by
			// the §4 closure check — did T_bound cover the source
			// component?
			covered, err := r.covered(start, bound)
			if err != nil {
				return res, err
			}
			if sp.Recording() {
				sp.Event("route.cover_check",
					trace.Int("bound", int64(bound)), trace.Bool("covered", covered))
			}
			res.Rounds[len(res.Rounds)-1].Covered = covered
			if covered {
				res.Status = netsim.StatusFailure
				return res, nil
			}
		}
		if bound >= maxBound {
			return res, fmt.Errorf("%w: bound %d", ErrSequenceExhausted, bound)
		}
	}
}

// flatRound runs one round on the compiled flat walker and folds its
// outcome into res exactly as the reference round does: same RoundStat,
// same hop totals, same header-size and memory-metering statistics, same
// forward-steps reconstruction.
func (r *Router) flatRound(start, s, t graph.NodeID, fs flatgraph.Seq, bound int, res *Result, sp *trace.Span) (netsim.Status, bool, error) {
	si, ok := r.flat.Index(start)
	if !ok {
		return netsim.StatusNone, false, fmt.Errorf("route: %w: %d", graph.ErrNodeNotFound, start)
	}
	var out flatgraph.RouteOutcome
	var err error
	if sp.Recording() {
		out, err = r.flatRoundTraced(si, s, t, fs, bound, sp)
	} else {
		out, err = r.flat.RouteWalk(si, s, t, fs)
	}
	stat := RoundStat{Bound: bound, SeqLen: fs.Length, Hops: out.Hops}
	res.Hops += out.Hops
	// The largest header any activation observes carries the walk's peak
	// index; src, dst, and the dir/status byte are size-constant across the
	// round, so one evaluation at the peak index reproduces the reference's
	// per-activation maximum.
	hb := netsim.Header{Src: s, Dst: t, Dir: netsim.Forward, Index: out.MaxIndex}.Bits()
	if hb > res.MaxHeaderBits {
		res.MaxHeaderBits = hb
	}
	if out.PeakMemoryBits > res.PeakMemoryBits {
		res.PeakMemoryBits = out.PeakMemoryBits
	}
	if err != nil {
		return netsim.StatusNone, false, fmt.Errorf("route: flat walk: %w", err)
	}
	st := netsim.StatusFailure
	if out.Success {
		st = netsim.StatusSuccess
		// Same reconstruction as the reference: forward steps f and back
		// steps b satisfy f + b = hops and b = f - indexAtDelivery.
		res.ForwardSteps = (out.Hops + out.DeliveredIndex) / 2
	}
	stat.Outcome = st
	res.Rounds = append(res.Rounds, stat)
	res.Bound = bound
	return st, true, nil
}

// flatRoundTraced runs one flat round hop-at-a-time on the instrumented
// stepper, recording a child span whose hop ring keeps the tail of the
// walk. The stepper's metering replica makes its Outcome identical to
// RouteWalk's, so tracing is invisible in the Result.
func (r *Router) flatRoundTraced(si int32, s, t graph.NodeID, fs flatgraph.Seq, bound int, sp *trace.Span) (flatgraph.RouteOutcome, error) {
	rsp := sp.Child("route.round")
	defer rsp.End()
	rsp.SetAttr(trace.Int("bound", int64(bound)), trace.Int("seq_len", int64(fs.Length)))
	st, err := r.flat.RouteStepper(si, s, t, fs)
	if err != nil {
		return flatgraph.RouteOutcome{}, err
	}
	st.Instrument(func(node graph.NodeID, index int64, backward bool) {
		rsp.Hop(trace.HopEvent{
			Node:       int64(node),
			Index:      index,
			HeaderBits: int32(netsim.Header{Src: s, Dst: t, Dir: netsim.Forward, Index: index}.Bits()),
			Backward:   backward,
		})
	})
	for !st.Step() {
	}
	out := st.Outcome()
	rsp.SetAttr(trace.Bool("success", out.Success), trace.Int("hops", out.Hops))
	return out, st.Err()
}

// unreachableCert answers the reachability question from the memoized
// component index: a non-nil certificate proves start's component can never
// contain a gadget of t, so the walk's verdict is StatusFailure before the
// first hop. Soundness rests on the theta gadget being internally
// connected — every gadget node of t shares the component of t's entry.
// Returns nil (walk normally) when t is reachable, the ablation is active,
// or certificates are disabled.
//
// Certificates only fire on multi-component graphs. On a single-component
// graph every existing target is reachable, and a name with no gadget is
// only provably absent once the walk covers the component — the early-out
// keeps the reachable hot path at two loads and keeps the static and
// dynamic routers answer-for-answer identical.
func (r *Router) unreachableCert(start graph.NodeID, t graph.NodeID) *Certificate {
	if r.cfg.DisableCertificates || r.flat == nil {
		return nil
	}
	comps := r.flat.Components()
	if comps.Count() == 1 {
		return nil
	}
	si, ok := r.flat.Index(start)
	if !ok {
		return nil
	}
	sc := comps.Of(si)
	te, ok := r.red.Entry(t)
	if !ok {
		// t is not a node of the graph at all: unreachable by definition.
		return &Certificate{SrcComponent: sc, DstComponent: -1, Components: comps.Count()}
	}
	ti, ok := r.flat.Index(te)
	if !ok {
		return &Certificate{SrcComponent: sc, DstComponent: -1, Components: comps.Count()}
	}
	tc := comps.Of(ti)
	if tc == sc {
		return nil
	}
	return &Certificate{SrcComponent: sc, DstComponent: tc, Components: comps.Count()}
}

// entry maps an original node to its walk entry point.
func (r *Router) entry(s graph.NodeID) (graph.NodeID, error) {
	if r.red == nil {
		if r.orig.Degree(s) == 0 {
			return 0, fmt.Errorf("%w: %d", ErrIsolatedSource, s)
		}
		return s, nil
	}
	e, ok := r.red.Entry(s)
	if !ok {
		return 0, fmt.Errorf("route: %w: %d", graph.ErrNodeNotFound, s)
	}
	return e, nil
}

// originalOf returns the gadget-to-original projection (identity under the
// ablation).
func (r *Router) originalOf() func(graph.NodeID) graph.NodeID {
	if r.red == nil {
		return func(v graph.NodeID) graph.NodeID { return v }
	}
	red := r.red
	return func(v graph.NodeID) graph.NodeID {
		o, ok := red.Original(v)
		if !ok {
			return v
		}
		return o
	}
}

// sequence returns T_bound for this protocol instance, in the compiled
// form (length frozen at construction) so the per-hop bounds check costs no
// recomputation.
func (r *Router) sequence(bound int) ues.Sequence {
	if r.cfg.SequenceFactory != nil {
		return r.cfg.SequenceFactory(bound)
	}
	base := 3
	if r.cfg.NoDegreeReduction {
		base = 0 // full-range directions, reduced mod deg(v) by the walk rule
	}
	p := &ues.Pseudorandom{
		Seed:         r.cfg.Seed,
		N:            bound,
		Base:         base,
		LengthFactor: r.cfg.LengthFactor,
	}
	return p.Compiled()
}

// flatSeq decides whether a round over seq may run on the compiled flat
// walker, and derives its inlined sequence form if so. The reference
// engine keeps the round whenever its instrumentation is requested or the
// sequence is not PRF-backed.
func (r *Router) flatSeq(seq ues.Sequence) (flatgraph.Seq, bool) {
	if r.flat == nil || r.cfg.DisableFlat || r.cfg.NoDegreeReduction ||
		r.cfg.Confirm != ConfirmBacktrack || r.cfg.Trace != nil ||
		r.cfg.FaultHook != nil || r.cfg.WireFormat || r.cfg.MemoryBudgetBits != 0 {
		return flatgraph.Seq{}, false
	}
	prf, ok := seq.(ues.PRFBacked)
	if !ok {
		return flatgraph.Seq{}, false
	}
	seed, base := prf.PRFParams()
	if base != 3 {
		return flatgraph.Seq{}, false
	}
	return flatgraph.Seq{Seed: seed, Base: 3, Length: seq.Len()}, true
}

func (r *Router) engineOptions() []netsim.Option {
	budget := r.cfg.MemoryBudgetBits
	if budget == 0 {
		budget = DefaultMemoryBudget(r.work.NumNodes())
	}
	opts := []netsim.Option{netsim.WithMemoryBudget(budget)}
	if r.cfg.Trace != nil {
		opts = append(opts, netsim.WithTrace(r.cfg.Trace))
	}
	if r.cfg.FaultHook != nil {
		opts = append(opts, netsim.WithFault(r.cfg.FaultHook))
	}
	if r.cfg.WireFormat {
		opts = append(opts, netsim.WithWireFormat())
	}
	return opts
}

// covered runs the §4 closure check for T_bound from the entry position:
// it walks the sequence, collects the visited set V, and reports whether
// every neighbour of V is in V (in which case V equals the component of s
// and a failed search is definitive). This is the simulator-local
// equivalent of CountNodes' Retrieve loops; the message-faithful version
// with its full quadratic message cost lives in package count.
func (r *Router) covered(start graph.NodeID, bound int) (bool, error) {
	seq := r.sequence(bound)
	if fs, ok := r.flatSeq(seq); ok {
		si, ok := r.flat.Index(start)
		if !ok {
			return false, fmt.Errorf("route: cover check: %w: %d", graph.ErrNodeNotFound, start)
		}
		visited := make([]bool, r.flat.NumNodes())
		if _, err := r.flat.CoverWalk(si, fs, visited, nil); err != nil {
			return false, fmt.Errorf("route: cover check: %w", err)
		}
		return r.flat.Closed(visited), nil
	}
	visited := map[graph.NodeID]bool{start: true}
	pos := ues.Start(start)
	for i := 1; i <= seq.Len(); i++ {
		next, err := ues.Step(r.work, pos, seq.At(i))
		if err != nil {
			return false, fmt.Errorf("route: cover check: %w", err)
		}
		pos = next
		visited[pos.Node] = true
	}
	for v := range visited {
		for p := 0; p < r.work.Degree(v); p++ {
			h, err := r.work.Neighbor(v, p)
			if err != nil {
				return false, err
			}
			if !visited[h.To] {
				return false, nil
			}
		}
	}
	return true, nil
}

// routeHandler is Algorithm Route as a stateless per-node handler.
type routeHandler struct {
	seq        ues.Sequence
	originalOf func(graph.NodeID) graph.NodeID
	confirm    ConfirmMode
}

// charge meters the handler's working registers: a constant number of
// words, each O(log n) bits. The meter aborts the run if a handler ever
// exceeded its O(log n) budget.
func charge(mem *netsim.Memory, values ...int64) error {
	for _, v := range values {
		w := bits.Len64(uint64(abs64(v))) + 1
		if err := mem.Charge(w); err != nil {
			return err
		}
	}
	return nil
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// OnMessage implements the pseudocode of §3 verbatim (with the index
// discipline documented in the package comment).
func (rh *routeHandler) OnMessage(self graph.NodeID, inPort, degree int, h *netsim.Header, mem *netsim.Memory) (netsim.Decision, error) {
	selfOrig := rh.originalOf(self)
	if err := charge(mem, int64(self), int64(selfOrig), int64(inPort), int64(degree), h.Index); err != nil {
		return netsim.Decision{}, err
	}
	if rh.confirm == ConfirmRestart {
		return rh.onRestartMessage(selfOrig, inPort, degree, h, mem)
	}

	if h.Dir == netsim.Backward {
		// "if dir = back and v = s: return status".
		if selfOrig == h.Src {
			return netsim.Decision{Kind: netsim.Deliver}, nil
		}
		t := rh.seq.At(int(h.Index))
		if err := charge(mem, int64(t)); err != nil {
			return netsim.Decision{}, err
		}
		out := ues.PrevPort(degree, inPort, t)
		h.Index--
		return netsim.Decision{Kind: netsim.Send, OutPort: out}, nil
	}

	// Forward direction.
	// "if dir = forward and v = t: dir := back, i := i-1, status :=
	// success, send message back".
	if selfOrig == h.Dst {
		h.Dir = netsim.Backward
		h.Status = netsim.StatusSuccess
		h.Index--
		return netsim.Decision{Kind: netsim.Send, OutPort: inPort}, nil
	}
	// "if dir = forward and i > Ln: dir := back, i := i-1, status :=
	// failure, send message back".
	if int(h.Index) > rh.seq.Len() {
		h.Dir = netsim.Backward
		h.Status = netsim.StatusFailure
		h.Index--
		return netsim.Decision{Kind: netsim.Send, OutPort: inPort}, nil
	}
	t := rh.seq.At(int(h.Index))
	if err := charge(mem, int64(t)); err != nil {
		return netsim.Decision{}, err
	}
	out := ues.NextPort(degree, inPort, t)
	h.Index++
	return netsim.Decision{Kind: netsim.Send, OutPort: out}, nil
}

// onRestartMessage implements the ConfirmRestart ablation. The message
// only ever travels forward. Phase is encoded in Status: None = searching
// for Dst; Success/Failure = confirming back to Src via a fresh
// exploration (index reset to 1 at the turnaround).
func (rh *routeHandler) onRestartMessage(selfOrig graph.NodeID, inPort, degree int, h *netsim.Header, mem *netsim.Memory) (netsim.Decision, error) {
	searching := h.Status == netsim.StatusNone
	if searching && selfOrig == h.Dst {
		// Found t: flip to the confirmation phase and keep walking with a
		// fresh index, now hunting for s.
		h.Status = netsim.StatusSuccess
		h.Index = 1
		searching = false
	} else if !searching && selfOrig == h.Src {
		return netsim.Decision{Kind: netsim.Deliver}, nil
	}
	if int(h.Index) > rh.seq.Len() {
		if searching {
			h.Status = netsim.StatusFailure
			h.Index = 1
		} else {
			// The confirmation leg itself ran out of sequence: the round
			// is inconclusive and the source never hears back — the
			// reliability gap of non-backtracking confirmations.
			return netsim.Decision{Kind: netsim.Drop}, nil
		}
	}
	t := rh.seq.At(int(h.Index))
	if err := charge(mem, int64(t)); err != nil {
		return netsim.Decision{}, err
	}
	out := ues.NextPort(degree, inPort, t)
	h.Index++
	return netsim.Decision{Kind: netsim.Send, OutPort: out}, nil
}
