package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// peers builds n alive peers named shard-0..n-1.
func peers(n int) []PeerState {
	out := make([]PeerState, n)
	for i := range out {
		out[i] = PeerState{
			Name:   fmt.Sprintf("shard-%d", i),
			Addr:   fmt.Sprintf("http://10.0.0.%d:8080", i+1),
			Status: StatusAlive,
		}
	}
	return out
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("net-%016x", i*2654435761)
	}
	return out
}

// TestRingDeterministicAcrossPeers: placement is a pure function of the
// (view, vnodes, key) triple — the same membership view presented in any
// order, built on any "member", yields identical owners for every key.
// This is the property that lets every shard route without coordination.
func TestRingDeterministicAcrossPeers(t *testing.T) {
	ps := peers(7)
	r1 := BuildRing(ps, 64)

	// The same view, shuffled (a peer's map iteration order differs) and
	// with suspect/dead noise that must not affect placement input.
	shuffled := append([]PeerState(nil), ps...)
	rand.New(rand.NewSource(42)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	r2 := BuildRing(shuffled, 64)

	if r1.Version() != r2.Version() {
		t.Fatalf("ring versions differ for the same alive set: %x vs %x", r1.Version(), r2.Version())
	}
	for _, k := range keys(5000) {
		o1, ok1 := r1.Owner(k)
		o2, ok2 := r2.Owner(k)
		if !ok1 || !ok2 || o1 != o2 {
			t.Fatalf("owner(%q) differs across identically-informed rings: %v/%v vs %v/%v", k, o1, ok1, o2, ok2)
		}
	}
}

// TestRingExcludesNonAlive: suspect and dead peers take no keys, so two
// converged views never disagree about whether a wobbly peer owns
// anything.
func TestRingExcludesNonAlive(t *testing.T) {
	ps := peers(5)
	ps[1].Status = StatusSuspect
	ps[3].Status = StatusDead
	r := BuildRing(ps, 64)
	if r.Len() != 3 {
		t.Fatalf("ring has %d members, want 3 alive", r.Len())
	}
	for _, k := range keys(2000) {
		o, ok := r.Owner(k)
		if !ok {
			t.Fatal("owner lookup failed on a non-empty ring")
		}
		if o.Name == ps[1].Name || o.Name == ps[3].Name {
			t.Fatalf("key %q placed on non-alive peer %s", k, o.Name)
		}
	}
}

// TestRingLeaveDisruption: removing one member moves ONLY the keys that
// member owned (the consistent-hashing contract, exactly), and those are
// about K/N of K keys.
func TestRingLeaveDisruption(t *testing.T) {
	const N, K = 8, 20000
	ps := peers(N)
	before := BuildRing(ps, 64)
	dead := ps[3].Name
	ps[3].Status = StatusDead
	after := BuildRing(ps, 64)

	moved := 0
	for _, k := range keys(K) {
		ob, _ := before.Owner(k)
		oa, _ := after.Owner(k)
		if ob.Name != dead && ob != oa {
			t.Fatalf("key %q moved from surviving owner %s to %s on an unrelated leave", k, ob.Name, oa.Name)
		}
		if ob.Name == dead {
			moved++
			if oa.Name == dead {
				t.Fatalf("key %q still owned by dead peer", k)
			}
		}
	}
	// The leaver's share is K/N in expectation; vnode variance keeps it
	// well inside 2x. (The bounded-disruption claim: ≤ K/N + ε.)
	if lim := 2 * K / N; moved > lim {
		t.Fatalf("leave moved %d of %d keys, over the %d disruption bound", moved, K, lim)
	}
	if moved == 0 {
		t.Fatal("leave moved no keys — dead peer owned nothing, which is itself a balance bug at these sizes")
	}
}

// TestRingJoinDisruption: adding a member moves keys only TO the joiner,
// and about K/(N+1) of them.
func TestRingJoinDisruption(t *testing.T) {
	const N, K = 8, 20000
	ps := peers(N)
	before := BuildRing(ps, 64)
	joiner := PeerState{Name: "shard-new", Addr: "http://10.0.0.99:8080", Status: StatusAlive}
	after := BuildRing(append(append([]PeerState(nil), ps...), joiner), 64)

	moved := 0
	for _, k := range keys(K) {
		ob, _ := before.Owner(k)
		oa, _ := after.Owner(k)
		if ob != oa {
			if oa.Name != joiner.Name {
				t.Fatalf("key %q moved to %s, not the joiner — joins must only shed keys to the new member", k, oa.Name)
			}
			moved++
		}
	}
	if lim := 2 * K / (N + 1); moved > lim {
		t.Fatalf("join moved %d of %d keys, over the %d disruption bound", moved, K, lim)
	}
	if moved == 0 {
		t.Fatal("join moved no keys — new peer owns nothing")
	}
}

// TestRingBalance: with 64 vnodes no member's share strays beyond ~2x of
// fair — placement is a load-spreading mechanism, not just a directory.
func TestRingBalance(t *testing.T) {
	const N, K = 5, 50000
	r := BuildRing(peers(N), 64)
	counts := map[string]int{}
	for _, k := range keys(K) {
		o, _ := r.Owner(k)
		counts[o.Name]++
	}
	fair := K / N
	for name, c := range counts {
		if c > 2*fair || c < fair/3 {
			t.Fatalf("member %s owns %d of %d keys (fair share %d) — imbalance beyond vnode tolerance", name, c, K, fair)
		}
	}
}

// TestRingEmptyAndSingle: the degenerate shapes.
func TestRingEmptyAndSingle(t *testing.T) {
	if _, ok := BuildRing(nil, 64).Owner("x"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	one := BuildRing(peers(1), 64)
	o, ok := one.Owner("anything")
	if !ok || o.Name != "shard-0" {
		t.Fatalf("single-member ring: got %v/%v", o, ok)
	}
}

// TestRingRendezvousTiebreak drives the equal-hash-point path directly:
// when several members collide on one point, the rendezvous score picks a
// winner as a pure function of (key, member) — no iteration-order leaks.
func TestRingRendezvousTiebreak(t *testing.T) {
	// Hand-build a ring whose three points share one hash.
	r := &Ring{
		members: []Member{{Name: "a"}, {Name: "b"}, {Name: "c"}},
		points: []ringPoint{
			{hash: 1000, member: 0},
			{hash: 1000, member: 1},
			{hash: 1000, member: 2},
		},
		version: 1,
	}
	for _, key := range keys(64) {
		want, _ := r.Owner(key)
		// Any permutation of the same collision run picks the same owner.
		perm := &Ring{
			members: []Member{{Name: "c"}, {Name: "a"}, {Name: "b"}},
			points: []ringPoint{
				{hash: 1000, member: 0},
				{hash: 1000, member: 1},
				{hash: 1000, member: 2},
			},
			version: 1,
		}
		got, _ := perm.Owner(key)
		if got.Name != want.Name {
			t.Fatalf("tiebreak for %q depends on layout order: %s vs %s", key, want.Name, got.Name)
		}
	}
	// And the tiebreak actually spreads keys: with 3 colliding members,
	// all of them should win sometimes over enough keys.
	winners := map[string]bool{}
	for _, key := range keys(512) {
		o, _ := r.Owner(key)
		winners[o.Name] = true
	}
	if len(winners) != 3 {
		t.Fatalf("rendezvous tiebreak always picks from %v, want all 3 members represented", winners)
	}
}

// FuzzRingLookup: arbitrary membership views and keys must never panic,
// never return a non-alive peer, and stay deterministic.
func FuzzRingLookup(f *testing.F) {
	f.Add(uint8(3), uint8(0b101), uint8(8), "net-abc")
	f.Add(uint8(0), uint8(0), uint8(1), "")
	f.Add(uint8(16), uint8(0xff), uint8(64), "world:w-1")
	f.Fuzz(func(t *testing.T, n, deadMask, vnodes uint8, key string) {
		count := int(n % 17)
		ps := peers(count)
		deadNames := map[string]bool{}
		for i := range ps {
			if deadMask&(1<<(i%8)) != 0 && i%3 == 0 {
				ps[i].Status = StatusDead
				deadNames[ps[i].Name] = true
			} else if deadMask&(1<<(i%8)) != 0 {
				ps[i].Status = StatusSuspect
				deadNames[ps[i].Name] = true
			}
		}
		r := BuildRing(ps, int(vnodes%100))
		o1, ok1 := r.Owner(key)
		if ok1 && deadNames[o1.Name] {
			t.Fatalf("lookup returned non-alive peer %s", o1.Name)
		}
		aliveCount := 0
		for _, p := range ps {
			if p.Status == StatusAlive {
				aliveCount++
			}
		}
		if ok1 != (aliveCount > 0) {
			t.Fatalf("ok=%v with %d alive members", ok1, aliveCount)
		}
		// Rebuild and re-ask: byte-for-byte deterministic.
		o2, ok2 := BuildRing(ps, int(vnodes%100)).Owner(key)
		if ok1 != ok2 || o1 != o2 {
			t.Fatalf("lookup not deterministic: %v/%v vs %v/%v", o1, ok1, o2, ok2)
		}
	})
}

func BenchmarkRingLookup(b *testing.B) {
	r := BuildRing(peers(16), 64)
	ks := keys(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Owner(ks[i&1023]); !ok {
			b.Fatal("lookup failed")
		}
	}
}

func BenchmarkRingBuild(b *testing.B) {
	ps := peers(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildRing(ps, 64)
	}
}
