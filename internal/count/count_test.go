package count

import (
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func newCounter(t *testing.T, g *graph.Graph, cfg Config) *Counter {
	t.Helper()
	c, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCountLocalExact(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		s    graph.NodeID
	}{
		{name: "path", g: gen.Path(9), s: 0},
		{name: "cycle", g: gen.Cycle(11), s: 4},
		{name: "grid", g: gen.Grid(4, 4), s: 5},
		{name: "star", g: gen.Star(8), s: 0},
		{name: "petersen", g: gen.Petersen(), s: 2},
		{name: "tree", g: gen.RandomTree(20, 1), s: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := newCounter(t, tt.g, Config{Seed: 3, Mode: ModeLocal})
			res, err := c.Count(tt.s)
			if err != nil {
				t.Fatal(err)
			}
			if want := tt.g.NumNodes(); res.OriginalCount != want {
				t.Fatalf("original count = %d, want %d", res.OriginalCount, want)
			}
			if want := c.work.NumNodes(); res.ReducedCount != want {
				t.Fatalf("reduced count = %d, want %d", res.ReducedCount, want)
			}
			if res.Rounds < 1 || res.Bound < 2 {
				t.Fatalf("implausible rounds/bound: %+v", res)
			}
		})
	}
}

func TestCountLocalComponentOnly(t *testing.T) {
	u, err := gen.DisjointUnion(gen.Cycle(7), gen.Grid(3, 3), 100)
	if err != nil {
		t.Fatal(err)
	}
	c := newCounter(t, u, Config{Seed: 5})
	res, err := c.Count(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.OriginalCount != 7 {
		t.Fatalf("count = %d, want 7 (own component)", res.OriginalCount)
	}
	res2, err := c.Count(100)
	if err != nil {
		t.Fatal(err)
	}
	if res2.OriginalCount != 9 {
		t.Fatalf("count = %d, want 9", res2.OriginalCount)
	}
}

func TestCountMissingSource(t *testing.T) {
	c := newCounter(t, gen.Cycle(3), Config{Seed: 1})
	if _, err := c.Count(42); !errors.Is(err, graph.ErrNodeNotFound) {
		t.Fatalf("error = %v", err)
	}
}

func TestCountSingleton(t *testing.T) {
	g := graph.New()
	g.EnsureNode(3)
	c := newCounter(t, g, Config{Seed: 1})
	res, err := c.Count(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.OriginalCount != 1 {
		t.Fatalf("singleton count = %d", res.OriginalCount)
	}
	if res.ReducedCount != 2 { // theta gadget
		t.Fatalf("reduced singleton count = %d, want 2", res.ReducedCount)
	}
}

// TestCountMessageModeMatchesLocal is the fidelity check: the
// message-faithful protocol computes exactly the same counts as the local
// oracle, at a real (recorded) message cost. Kept to tiny graphs because
// the faithful cost is Θ(L³) hops.
func TestCountMessageModeMatchesLocal(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"single-node": singleNode(),
		"one-edge":    gen.Path(2),
		"path3":       gen.Path(3),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			local := newCounter(t, g, Config{Seed: 9, Mode: ModeLocal, LengthFactor: 1})
			msg := newCounter(t, g, Config{Seed: 9, Mode: ModeMessages, LengthFactor: 1})
			s := g.Nodes()[0]
			lres, err := local.Count(s)
			if err != nil {
				t.Fatal(err)
			}
			mres, err := msg.Count(s)
			if err != nil {
				t.Fatal(err)
			}
			if lres.OriginalCount != mres.OriginalCount || lres.ReducedCount != mres.ReducedCount {
				t.Fatalf("modes disagree: local %+v vs messages %+v", lres, mres)
			}
			if mres.Hops == 0 {
				t.Fatal("message mode recorded no hops")
			}
			if mres.Retrieves == 0 {
				t.Fatal("message mode recorded no retrieves")
			}
			if lres.Hops != 0 {
				t.Fatal("local mode must not record hops")
			}
		})
	}
}

func singleNode() *graph.Graph {
	g := graph.New()
	g.EnsureNode(0)
	return g
}

func TestCountDeterministic(t *testing.T) {
	g := gen.Grid(3, 4)
	a := newCounter(t, g, Config{Seed: 7})
	b := newCounter(t, g, Config{Seed: 7})
	ra, err := a.Count(0)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Count(0)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Bound != rb.Bound || ra.Rounds != rb.Rounds || ra.Retrieves != rb.Retrieves {
		t.Fatalf("same-seed counts differ: %+v vs %+v", ra, rb)
	}
}

func TestCountDoublingRounds(t *testing.T) {
	// A 6x6 grid reduces to >100 nodes: several doubling rounds needed.
	c := newCounter(t, gen.Grid(6, 6), Config{Seed: 2})
	res, err := c.Count(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 3 {
		t.Fatalf("rounds = %d, expected several for a 6x6 grid", res.Rounds)
	}
	if res.OriginalCount != 36 {
		t.Fatalf("count = %d, want 36", res.OriginalCount)
	}
}

func TestCountShuffledLabels(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		g := gen.Cycle(9)
		g.ShuffleLabels(seed)
		c := newCounter(t, g, Config{Seed: 13})
		res, err := c.Count(0)
		if err != nil {
			t.Fatalf("labeling %d: %v", seed, err)
		}
		if res.OriginalCount != 9 {
			t.Fatalf("labeling %d: count = %d", seed, res.OriginalCount)
		}
	}
}
