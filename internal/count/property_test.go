package count

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/prng"
)

// TestCountMatchesOracleQuick property-tests §4 exactness on random
// multigraphs (self-loops and parallel edges included): the counted
// component size must equal the BFS oracle's.
func TestCountMatchesOracleQuick(t *testing.T) {
	f := func(seed uint64) bool {
		src := prng.New(seed)
		n := src.Intn(16) + 1
		g := graph.New()
		for i := 0; i < n; i++ {
			g.EnsureNode(graph.NodeID(i))
		}
		edges := src.Intn(2 * n)
		for i := 0; i < edges; i++ {
			if _, _, err := g.AddEdge(graph.NodeID(src.Intn(n)), graph.NodeID(src.Intn(n))); err != nil {
				return false
			}
		}
		c, err := New(g, Config{Seed: seed})
		if err != nil {
			return false
		}
		s := graph.NodeID(src.Intn(n))
		res, err := c.Count(s)
		if err != nil {
			return false
		}
		return res.OriginalCount == len(g.ComponentOf(s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestReducedCountMatchesReducedComponent checks the reduced-graph count
// (the §4 n used as a routing bound) against the reduced oracle.
func TestReducedCountMatchesReducedComponent(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		g := gen.ErdosRenyi(14, 0.25, seed)
		c, err := New(g, Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Count(0)
		if err != nil {
			t.Fatal(err)
		}
		start, _ := c.red.Entry(0)
		want := len(c.work.ComponentOf(start))
		if res.ReducedCount != want {
			t.Fatalf("seed %d: reduced count %d, oracle %d", seed, res.ReducedCount, want)
		}
	}
}

// TestCountLengthFactorInsensitive: the count is exact regardless of the
// sequence length constant (only cost changes).
func TestCountLengthFactorInsensitive(t *testing.T) {
	g := gen.Grid(4, 4)
	for _, factor := range []int{1, 2, 8} {
		c, err := New(g, Config{Seed: 3, LengthFactor: factor})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Count(0)
		if err != nil {
			t.Fatalf("factor %d: %v", factor, err)
		}
		if res.OriginalCount != 16 {
			t.Fatalf("factor %d: count %d", factor, res.OriginalCount)
		}
	}
}
