package route

// tracediff_test.go pins the tracing contract: a traced route runs on the
// compiled flat path (the instrumented stepper, never the netsim
// fallback) and returns a Result bit-for-bit identical to the untraced
// one — verdict, hops, forward steps, round schedule, header and memory
// metering — while the span tree captures every hop of every round.

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/trace"
)

// diffTraced routes s→dst untraced and traced and fails on any Result
// divergence; it returns the traced request's exported form.
func diffTraced(t *testing.T, g *graph.Graph, cfg Config, s, dst graph.NodeID) trace.Export {
	t.Helper()
	r, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, errPlain := r.Route(s, dst)

	tc := trace.New(trace.Config{SampleRate: 1})
	tr := tc.StartRequest("route", "")
	traced, errTraced := r.RouteTraced(s, dst, tr.Root())
	tr.Finish()

	if (errPlain == nil) != (errTraced == nil) {
		t.Fatalf("route %d->%d: untraced err %v, traced err %v", s, dst, errPlain, errTraced)
	}
	if errPlain == nil && !reflect.DeepEqual(plain, traced) {
		t.Fatalf("route %d->%d diverged:\nuntraced: %+v\ntraced:   %+v", s, dst, plain, traced)
	}
	kept := tc.Recorder().Find(tr.ID())
	if kept == nil {
		t.Fatalf("route %d->%d: trace not retained", s, dst)
	}
	return kept.Export()
}

// TestTracedRouteMatchesUntraced is the acceptance differential: over
// random labeled multigraphs, tracing changes nothing about the Result,
// every round appears as a flat "route.round" span (no netsim fallback),
// and the spans' hop totals sum to the Result's hop count.
func TestTracedRouteMatchesUntraced(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		g := randomMultigraph(seed, 8+int(seed%6), int(seed%8))
		nodes := g.SortedNodes()
		cfg := Config{Seed: seed, LengthFactor: 1}
		for _, dst := range []graph.NodeID{nodes[len(nodes)-1], graph.NodeID(999983)} {
			s := nodes[0]
			r, err := New(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := r.Route(s, dst)
			if err != nil {
				t.Fatal(err)
			}
			ex := diffTraced(t, g, cfg, s, dst)

			var hops int64
			rounds := 0
			for _, sp := range ex.Spans {
				hops += sp.HopTotal
				if sp.Name == "route.round" {
					rounds++
				}
				for _, ev := range sp.Events {
					if ev.Name == "route.round.netsim" {
						t.Fatalf("seed %d dst %d: traced round fell back to netsim", seed, dst)
					}
				}
			}
			if rounds != len(want.Rounds) {
				t.Fatalf("seed %d dst %d: %d round spans, Result has %d rounds", seed, dst, rounds, len(want.Rounds))
			}
			if hops != want.Hops {
				t.Fatalf("seed %d dst %d: spans recorded %d hops, Result.Hops = %d", seed, dst, hops, want.Hops)
			}
		}
	}
}

// TestTracedRouteHopTail checks the per-hop evidence on an unreachable
// pair: the terminal round's span retains the tail of the walk, with the
// header bits of every retained hop matching the reference serialization
// at that hop's index.
func TestTracedRouteHopTail(t *testing.T) {
	g := randomMultigraph(3, 10, 4)
	nodes := g.SortedNodes()
	// Certificates are disabled so the unreachable pair walks its budget
	// and leaves per-hop evidence behind.
	ex := diffTraced(t, g, Config{Seed: 3, LengthFactor: 1, DisableCertificates: true}, nodes[0], graph.NodeID(999983))
	last := ex.Spans[len(ex.Spans)-1]
	if last.Name != "route.round" || last.HopTotal == 0 {
		t.Fatalf("terminal span %+v has no hops", last)
	}
	if int64(len(last.Hops))+last.HopsDropped != last.HopTotal {
		t.Fatalf("hop accounting: kept %d + dropped %d != total %d", len(last.Hops), last.HopsDropped, last.HopTotal)
	}
	for _, h := range last.Hops {
		if h.HeaderBits <= 0 {
			t.Fatalf("hop %+v missing header bits", h)
		}
	}
	// The retained tail must end at the delivery hop (ordinal total-1).
	if lastHop := last.Hops[len(last.Hops)-1]; lastHop.Hop != last.HopTotal-1 || !lastHop.Backward {
		t.Fatalf("tail does not end at the backward delivery hop: %+v", lastHop)
	}
}
