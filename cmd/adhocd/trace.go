package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/trace"
)

// Trace serving defaults (flag-tunable). The daemon head-samples every
// request by default — the walk instrumentation is cheap enough per
// BENCH_PR6 — and the flight recorder retains only the slow and failed
// ones, so steady-state traffic costs ring writes but no retention.
const (
	defaultTraceSample   = 1.0
	defaultTraceSlow     = 100 * time.Millisecond
	defaultTraceCapacity = trace.DefaultCapacity
)

// startTrace begins (or declines) a trace for one request: the incoming
// W3C traceparent header is honored when present — an upstream sampled
// flag wins over the local sampling rate, so a caller can always force a
// trace — and a sampled request's response echoes the outgoing
// traceparent so clients learn the ID to fetch from /v1/traces/{id}.
// Returns the possibly-rewrapped request whose context carries the root
// span.
func (s *server) startTrace(w http.ResponseWriter, r *http.Request) (*trace.Trace, *http.Request) {
	tr := s.tracer.StartRequest("http", r.Header.Get("traceparent"))
	if tr.Sampled() {
		w.Header().Set("traceparent", tr.Traceparent())
		r = r.WithContext(trace.NewContext(r.Context(), tr.Root()))
	}
	return tr, r
}

// finishTrace closes out a request's trace: the root span is renamed to
// the matched mux pattern (the request's endpoint identity), annotated
// with the HTTP outcome, and a 5xx marks the trace failed so the flight
// recorder always keeps it. Safe on an unsampled (nil) trace.
func (s *server) finishTrace(tr *trace.Trace, r *http.Request, status int) {
	if !tr.Sampled() {
		return
	}
	root := tr.Root()
	if r.Pattern != "" {
		root.SetName(r.Pattern)
	}
	root.SetAttr(
		trace.String("http.method", r.Method),
		trace.String("http.path", r.URL.Path),
		trace.Int("http.status", int64(status)),
	)
	if status >= 500 {
		tr.SetError(fmt.Sprintf("HTTP %d", status))
	}
	tr.Finish()
}

// requestLog emits one structured JSON line per finished request
// (-log-format=json). Lines are pre-rendered and written under a mutex so
// concurrent requests never interleave bytes. A nil *requestLog (the
// default "text" format) is a no-op: the daemon stays quiet per request,
// as before.
type requestLog struct {
	mu  sync.Mutex
	out io.Writer
}

func newRequestLog(out io.Writer) *requestLog {
	if out == nil {
		return nil
	}
	return &requestLog{out: out}
}

// write books one finished request. The trace ID appears only on sampled
// requests — it is the join key into GET /v1/traces/{id}.
func (l *requestLog) write(r *http.Request, status int, d time.Duration, tr *trace.Trace) {
	if l == nil {
		return
	}
	line := struct {
		Time       string  `json:"time"`
		Msg        string  `json:"msg"`
		Method     string  `json:"method"`
		Path       string  `json:"path"`
		Endpoint   string  `json:"endpoint,omitempty"`
		Status     int     `json:"status"`
		DurationMS float64 `json:"duration_ms"`
		TraceID    string  `json:"trace_id,omitempty"`
	}{
		Time:       time.Now().UTC().Format(time.RFC3339Nano),
		Msg:        "request",
		Method:     r.Method,
		Path:       r.URL.Path,
		Endpoint:   r.Pattern,
		Status:     status,
		DurationMS: float64(d) / float64(time.Millisecond),
	}
	if tr.Sampled() {
		line.TraceID = tr.ID().String()
	}
	buf, err := json.Marshal(line)
	if err != nil {
		return
	}
	buf = append(buf, '\n')
	l.mu.Lock()
	_, _ = l.out.Write(buf)
	l.mu.Unlock()
}

// traceListReply is the GET /v1/traces response: newest-first summaries
// of the retained traces plus the recorder and sampler counters.
type traceListReply struct {
	Traces   []trace.Summary `json:"traces"`
	Kept     int64           `json:"kept"`
	Capacity int             `json:"capacity"`
	Started  int64           `json:"started"`
	Sampled  int64           `json:"sampled"`
}

// handleTraceList serves the flight recorder's retained traces,
// newest-first. ?limit=N caps the listing (default 50).
func (s *server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	limit := 50
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad limit %q", q)})
			return
		}
		limit = n
	}
	rec := s.tracer.Recorder()
	kept := rec.Recent(limit)
	sums := make([]trace.Summary, len(kept))
	for i, tr := range kept {
		sums[i] = tr.Summarize()
	}
	started, sampled := s.tracer.Stats()
	writeJSON(w, http.StatusOK, traceListReply{
		Traces:   sums,
		Kept:     rec.Kept(),
		Capacity: rec.Capacity(),
		Started:  started,
		Sampled:  sampled,
	})
}

// handleTraceGet serves one retained trace in full: the span tree with
// attributes, timed events, and the per-hop tail ring.
func (s *server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	raw := r.PathValue("id")
	id, err := trace.ParseTraceID(raw)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad trace id %q", raw)})
		return
	}
	tr := s.tracer.Recorder().Find(id)
	if tr == nil {
		writeJSON(w, http.StatusNotFound,
			errorBody{Error: fmt.Sprintf("trace %s not retained (evicted, unsampled, or never seen)", raw)})
		return
	}
	writeJSON(w, http.StatusOK, tr.Export())
}
