package main

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/registry"
	"repro/internal/trace"
)

// worldCreateRequest names a long-lived shared world: the network it is
// seeded from (the boot network unless network_id names a registry
// entry), the schedule that evolves it, and an optional client-chosen
// name.
type worldCreateRequest struct {
	Name      string       `json:"name,omitempty"`
	NetworkID string       `json:"network_id,omitempty"`
	Schedule  dynamic.Spec `json:"schedule"`
}

// worldInfo describes one shared world's instantaneous state. It shares
// the shape contract with networkInfo (pinned by TestInfoShapeContract):
// nodes, links, and compile_ms always present — compile_ms is the seed
// engine's one-off compile, recompile_ms the cumulative churn-forced
// rebuild time this world has paid since.
type worldInfo struct {
	ID              string  `json:"id"`
	NetworkID       string  `json:"network_id,omitempty"`
	Desc            string  `json:"desc"`
	Epoch           int     `json:"epoch"`
	Version         uint64  `json:"version"`
	Nodes           int     `json:"nodes"`
	Links           int     `json:"links"`
	Recompiles      int64   `json:"recompiles"`
	DeltaRecompiles int64   `json:"delta_recompiles"`
	FullRecompiles  int64   `json:"full_recompiles"`
	CacheHits       int64   `json:"compile_cache_hits"`
	CompileMS       float64 `json:"compile_ms"`
	RecompileMS     float64 `json:"recompile_ms"`
	DeltaMS         float64 `json:"delta_recompile_ms"`
	FullMS          float64 `json:"full_recompile_ms"`
}

func worldInfoOf(ent *registry.WorldEntry) worldInfo {
	// One atomic world snapshot: racing an advance must not pair one
	// epoch's clock with another epoch's link count.
	snap := ent.W.Snapshot()
	return worldInfo{
		ID:              ent.ID,
		NetworkID:       ent.NetworkID,
		Desc:            ent.Desc,
		Epoch:           snap.Epoch,
		Version:         snap.Version,
		Nodes:           snap.Nodes,
		Links:           snap.Links,
		Recompiles:      snap.Recompiles,
		DeltaRecompiles: snap.DeltaRecompiles,
		FullRecompiles:  snap.FullRecompiles,
		CacheHits:       snap.CacheHits,
		CompileMS:       float64(ent.Eng.CompileDuration()) / float64(time.Millisecond),
		RecompileMS:     float64(snap.RecompileTime) / float64(time.Millisecond),
		DeltaMS:         float64(snap.DeltaRecompileTime) / float64(time.Millisecond),
		FullMS:          float64(snap.FullRecompileTime) / float64(time.Millisecond),
	}
}

// handleWorldCreate builds a world over a private clone of the named
// network's topology (seeded with its compiled artifacts) and registers
// it for shared use. Creation is cheap — the first route pays any
// recompile the schedule forces.
func (s *server) handleWorldCreate(w http.ResponseWriter, r *http.Request) {
	var req worldCreateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	eng, pos := s.eng, s.pos
	if req.NetworkID != "" {
		ent, ok := s.reg.Get(req.NetworkID)
		if !ok && s.cluster != nil {
			// The world hashed here but its backing network hashed to another
			// shard: pull the spec from the network's owner and compile it
			// locally (same spec → same engine).
			ent, ok = s.cluster.fetchNetwork(r.Context(), req.NetworkID)
		}
		if !ok {
			writeJSON(w, http.StatusNotFound,
				errorBody{Error: fmt.Sprintf("unknown network %q (re-register via POST /v1/networks)", req.NetworkID)})
			return
		}
		eng, pos = ent.Eng, ent.Pos
	}
	sched, err := req.Schedule.Build()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	// Refuse doomed creates (bad name, duplicate, table full) before
	// paying for the world clone; the Create below re-checks
	// authoritatively.
	if err := s.worlds.Precheck(req.Name); err != nil {
		writeWorldCreateErr(w, err)
		return
	}
	world := eng.NewWorld(sched)
	if pos != nil {
		world.SetPositions(pos)
	}
	world.SetChaos(s.chaos)
	desc := req.Schedule.Kind
	if desc == "" {
		desc = "static"
	}
	ent, err := s.worlds.Create(req.Name, &registry.WorldEntry{
		NetworkID: req.NetworkID,
		Desc:      desc,
		Eng:       eng,
		W:         world,
		Schedule:  req.Schedule,
	})
	if err != nil {
		writeWorldCreateErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, worldInfoOf(ent))
}

// writeWorldCreateErr maps world admission errors onto HTTP statuses.
func writeWorldCreateErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, registry.ErrWorldCapacity):
		status = http.StatusTooManyRequests
	case errors.Is(err, registry.ErrWorldExists):
		status = http.StatusConflict
	case errors.Is(err, registry.ErrBadWorldName):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *server) handleWorldList(w http.ResponseWriter, _ *http.Request) {
	ents := s.worlds.List()
	infos := make([]worldInfo, len(ents))
	for i, ent := range ents {
		infos[i] = worldInfoOf(ent)
	}
	writeJSON(w, http.StatusOK, struct {
		Worlds []worldInfo `json:"worlds"`
	}{infos})
}

// worldFor resolves the {id} path segment, answering 404 itself when the
// world does not exist.
func (s *server) worldFor(w http.ResponseWriter, r *http.Request) (*registry.WorldEntry, bool) {
	id := r.PathValue("id")
	ent, ok := s.worlds.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("unknown world %q", id)})
		return nil, false
	}
	return ent, true
}

func (s *server) handleWorldInfo(w http.ResponseWriter, r *http.Request) {
	ent, ok := s.worldFor(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, worldInfoOf(ent))
}

func (s *server) handleWorldDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.worlds.Delete(id) {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("unknown world %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"deleted": true})
}

// worldAdvanceRequest ticks the world's epoch clock without routing —
// pre-evolving a scenario before queries, or driving topology time from
// an external clock.
type worldAdvanceRequest struct {
	Epochs int `json:"epochs,omitempty"`
}

func (s *server) handleWorldAdvance(w http.ResponseWriter, r *http.Request) {
	ent, ok := s.worldFor(w, r)
	if !ok {
		return
	}
	var req worldAdvanceRequest
	if !decodeBody(w, r, &req) {
		return
	}
	n := req.Epochs
	if n <= 0 {
		n = 1
	}
	// Each epoch may force a recompile, so the per-request count is capped
	// like every other cost knob.
	if n > maxWorldAdvance {
		writeJSON(w, http.StatusBadRequest,
			errorBody{Error: fmt.Sprintf("epochs %d exceeds server limit %d", n, maxWorldAdvance)})
		return
	}
	for i := 0; i < n; i++ {
		if err := ent.W.Advance(dynamic.Probe{}); err != nil {
			writeErr(w, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, worldInfoOf(ent))
}

// worldRouteRequest is one s→t query over a shared world. hops_per_epoch
// couples this walk's hops to the shared epoch clock; negative freezes
// the clock for this query (the world still evolves under other traffic
// and explicit advances). budget_hops / deadline_ms bound the walk's work,
// and resume continues an earlier exhausted walk from its token — the
// token is bound to this world, and a resumed walk survives the world
// having recompiled (epoch churn) since the cursor was minted.
type worldRouteRequest struct {
	Src          int64  `json:"src"`
	Dst          int64  `json:"dst"`
	HopsPerEpoch int    `json:"hops_per_epoch,omitempty"`
	MaxRounds    int    `json:"max_rounds,omitempty"`
	BudgetHops   int64  `json:"budget_hops,omitempty"`
	DeadlineMS   int64  `json:"deadline_ms,omitempty"`
	Resume       string `json:"resume,omitempty"`
}

func (s *server) handleWorldRoute(w http.ResponseWriter, r *http.Request) {
	ent, ok := s.worldFor(w, r)
	if !ok {
		return
	}
	var req worldRouteRequest
	if !decodeBody(w, r, &req) {
		return
	}
	ent.Routes.Add(1)
	src, dst := graph.NodeID(req.Src), graph.NodeID(req.Dst)
	cfg := clampDynamics(req.HopsPerEpoch, req.MaxRounds)
	if req.BudgetHops <= 0 && req.DeadlineMS <= 0 && req.Resume == "" {
		res, err := ent.Eng.RouteDynamicTraced(ent.W, src, dst, cfg, trace.FromContext(r.Context()))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, dynamicReplyOf(req.Src, req.Dst, res, ent.W))
		return
	}
	scope := "world:" + ent.ID
	cur, ok := s.verifyResume(w, scope, req.Resume)
	if !ok {
		return
	}
	ctx, cancel := s.boundedCtx(r, req.DeadlineMS)
	defer cancel()
	res, err := ent.Eng.RouteDynamicBudgetedTraced(ctx, ent.W, src, dst, req.BudgetHops, cur, cfg,
		trace.FromContext(r.Context()))
	if err != nil {
		writeErr(w, err)
		return
	}
	reply := dynamicReplyOf(req.Src, req.Dst, res, ent.W)
	if res.Exhausted != "" {
		tok, err := s.tok.Sign(scope, res.Cursor)
		if err != nil {
			writeErr(w, err)
			return
		}
		reply.Status = statusBudgetExhausted
		reply.Exhausted = string(res.Exhausted)
		reply.Resume = tok
		s.logDrainCursor(scope, req.Src, req.Dst, tok)
	}
	writeJSON(w, http.StatusOK, reply)
}
