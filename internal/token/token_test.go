package token

import (
	"encoding/base64"
	"errors"
	"strings"
	"testing"

	"repro/internal/route"
)

func testCursor() *route.Cursor {
	return &route.Cursor{
		Src: 0, Dst: 18, Bound: 16,
		Node: 7, InPort: 2, At: 5,
		Index: 41, Backward: true,
		Version: 3, Hops: 120, RoundHops: 17, MaxIndex: 44,
		Rounds: 3, Epochs: 2, Resumptions: 1, SinceEpoch: 9, MaxHeaderBits: 52,
	}
}

// TestRoundTrip: a signed cursor verifies under the same scope and comes
// back field-for-field identical.
func TestRoundTrip(t *testing.T) {
	s := NewSigner([]byte("test-key"))
	cur := testCursor()
	tok, err := s.Sign("world:w1", cur)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	got, err := s.Verify("world:w1", tok)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if *got != *cur {
		t.Fatalf("round trip changed the cursor:\n got %+v\nwant %+v", got, cur)
	}
}

// TestRejections: cross-scope replay, tampering, truncation, foreign keys,
// and garbage all fail with ErrInvalid.
func TestRejections(t *testing.T) {
	s := NewSigner([]byte("test-key"))
	tok, err := s.Sign("world:w1", testCursor())
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	other := NewSigner([]byte("other-key"))
	bad := map[string]struct {
		signer *Signer
		scope  string
		tok    string
	}{
		"cross-scope":    {s, "world:w2", tok},
		"foreign-key":    {other, "world:w1", tok},
		"truncated":      {s, "world:w1", tok[:len(tok)-3]},
		"tampered-body":  {s, "world:w1", "A" + tok[1:]},
		"no-signature":   {s, "world:w1", strings.Split(tok, ".")[0]},
		"empty":          {s, "world:w1", ""},
		"not-base64":     {s, "world:w1", "!!!.!!!"},
		"empty-envelope": {s, "world:w1", mustSign(t, s, "world:w1")},
	}
	for name, tc := range bad {
		if _, err := tc.signer.Verify(tc.scope, tc.tok); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: Verify = %v, want ErrInvalid", name, err)
		}
	}
}

// mustSign signs a payload whose cursor is null (exercising the no-cursor
// rejection) by marshaling through the public API with a tampered
// envelope: we just sign an empty JSON object body by hand.
func mustSign(t *testing.T, s *Signer, scope string) string {
	t.Helper()
	// Forge a structurally valid, correctly signed envelope with no cursor
	// using the signer's own primitives: Sign refuses nil cursors, so build
	// the token the way Sign would.
	payload := []byte(`{"scope":"` + scope + `"}`)
	enc := base64.RawURLEncoding
	return enc.EncodeToString(payload) + "." + enc.EncodeToString(s.mac(payload))
}

// TestRandomKeyPerSigner: the empty-key default yields per-process keys,
// so tokens do not survive a signer (server) restart.
func TestRandomKeyPerSigner(t *testing.T) {
	a, b := NewSigner(nil), NewSigner(nil)
	tok, err := a.Sign("net:boot", testCursor())
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if _, err := a.Verify("net:boot", tok); err != nil {
		t.Fatalf("self Verify: %v", err)
	}
	if _, err := b.Verify("net:boot", tok); !errors.Is(err, ErrInvalid) {
		t.Fatalf("restarted-signer Verify = %v, want ErrInvalid", err)
	}
}

// FuzzVerify: hostile tokens never panic and never verify; valid-prefix
// corpus entries keep the parser honest about partial structures.
func FuzzVerify(f *testing.F) {
	s := NewSigner([]byte("fuzz-key"))
	good, err := s.Sign("world:w1", testCursor())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add("")
	f.Add(".")
	f.Add("..")
	f.Add(good[:len(good)/2])
	f.Add(strings.Split(good, ".")[0] + ".AAAA")
	f.Add("eyJzY29wZSI6IndvcmxkOncxIn0.") // signed-ish, empty sig
	f.Fuzz(func(t *testing.T, tok string) {
		cur, err := s.Verify("world:w1", tok)
		if err == nil {
			// The only token that may verify is an authentic one; re-sign the
			// cursor and demand it round-trips.
			tok2, err2 := s.Sign("world:w1", cur)
			if err2 != nil || tok2 == "" {
				t.Fatalf("verified cursor does not re-sign: %v", err2)
			}
		} else if !errors.Is(err, ErrInvalid) {
			t.Fatalf("Verify error not wrapping ErrInvalid: %v", err)
		}
	})
}
