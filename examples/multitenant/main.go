// Multitenant: serve many networks and one shared evolving world from
// the same process — the fleet-serving shape behind adhocd's
// /v1/networks and /v1/worlds endpoints.
//
// The protocol is compile-once and stateless per query, so a bounded LRU
// of compiled engines (deduplicating concurrent compiles of the same
// spec) amortizes the expensive degree reduction across every tenant
// that names the same network, and one concurrency-safe dynamic World
// serves any number of simultaneous routers — no per-request world
// construction, warm compile cache across queries.
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/registry"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	reg := registry.New(registry.Config{Capacity: 2})

	// Sixteen concurrent tenants all ask for the same network: the
	// singleflight dedups them into one compile.
	spec := registry.Spec{Kind: "grid", Rows: 12, Cols: 12, Seed: 7}
	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := reg.Obtain(spec); err != nil {
				log.Fatal(err)
			}
		}()
	}
	wg.Wait()
	s := reg.Stats()
	fmt.Printf("16 concurrent obtains of one spec: %d compile(s), %d deduped\n", s.Compiles, s.Dedups)

	// A second tenant shares the process; both serve concurrently.
	grid, _, err := reg.Obtain(spec)
	if err != nil {
		return err
	}
	ring, _, err := reg.Obtain(registry.Spec{Kind: "cycle", N: 40, Seed: 7})
	if err != nil {
		return err
	}
	for _, ent := range []*registry.Entry{grid, ring} {
		dst := graph.NodeID(ent.Eng.Graph().NumNodes() - 1)
		res, err := ent.Eng.Route(0, dst)
		if err != nil {
			return err
		}
		fmt.Printf("%-22s route 0->%d: %s in %d hops\n", ent.Desc, dst, res.Status, res.Hops)
	}

	// One shared world: evolve it 20 churn epochs once, then let eight
	// concurrent clients route over the same warm snapshot (frozen clock
	// per query — the world moves only when advanced).
	world := grid.Eng.NewWorld(&dynamic.EdgeChurn{Seed: 11, PDrop: 0.01, AddRate: 2})
	for e := 0; e < 20; e++ {
		if err := world.Advance(dynamic.Probe{}); err != nil {
			return err
		}
	}
	var delivered, unreachable int64
	var mu sync.Mutex
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < 16; k++ {
				dst := graph.NodeID((17*c + 9*k) % grid.Eng.Graph().NumNodes())
				res, err := grid.Eng.RouteDynamic(world, 0, dst, dynamic.Config{HopsPerEpoch: -1})
				if err != nil {
					log.Fatal(err)
				}
				mu.Lock()
				if res.Status.String() == "success" {
					delivered++
				} else {
					unreachable++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	fmt.Printf("shared world after %d epochs (%d links, %d recompiles): "+
		"8 clients x 16 queries -> %d delivered, %d definitively unreachable\n",
		world.Epoch(), world.NumEdges(), world.Recompiles(), delivered, unreachable)
	return nil
}
