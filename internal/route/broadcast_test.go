package route

import (
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/netsim"
)

func TestBroadcastCoversComponent(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		s    graph.NodeID
		want int
	}{
		{name: "path", g: gen.Path(10), s: 0, want: 10},
		{name: "cycle", g: gen.Cycle(12), s: 5, want: 12},
		{name: "grid", g: gen.Grid(4, 4), s: 0, want: 16},
		{name: "star", g: gen.Star(9), s: 4, want: 9},
		{name: "petersen", g: gen.Petersen(), s: 0, want: 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := newRouter(t, tt.g, Config{Seed: 3})
			res, err := r.Broadcast(tt.s)
			if err != nil {
				t.Fatal(err)
			}
			if res.Reached != tt.want {
				t.Fatalf("reached %d nodes, want %d (nodes %v)", res.Reached, tt.want, res.Nodes)
			}
			if res.Hops <= 0 {
				t.Fatal("no hops recorded")
			}
			last := res.Rounds[len(res.Rounds)-1]
			if !last.Covered {
				t.Fatal("terminal round not certified covered")
			}
			if last.Outcome != netsim.StatusSuccess {
				t.Fatalf("confirmation status = %v", last.Outcome)
			}
		})
	}
}

func TestBroadcastOnlyOwnComponent(t *testing.T) {
	u, err := gen.DisjointUnion(gen.Cycle(6), gen.Grid(3, 3), 50)
	if err != nil {
		t.Fatal(err)
	}
	r := newRouter(t, u, Config{Seed: 5})
	res, err := r.Broadcast(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 6 {
		t.Fatalf("reached %d, want 6 (own component only)", res.Reached)
	}
	for _, v := range res.Nodes {
		if v >= 50 {
			t.Fatalf("broadcast leaked into other component: %v", res.Nodes)
		}
	}
}

func TestBroadcastSingleton(t *testing.T) {
	g := graph.New()
	g.EnsureNode(7)
	r := newRouter(t, g, Config{Seed: 1})
	res, err := r.Broadcast(7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 1 || res.Nodes[0] != 7 {
		t.Fatalf("singleton broadcast = %+v", res)
	}
}

func TestBroadcastMissingSource(t *testing.T) {
	r := newRouter(t, gen.Cycle(3), Config{Seed: 1})
	if _, err := r.Broadcast(55); !errors.Is(err, graph.ErrNodeNotFound) {
		t.Fatalf("error = %v", err)
	}
}

func TestBroadcastKnownBound(t *testing.T) {
	g := gen.Cycle(5)
	r := newRouter(t, g, Config{Seed: 1, KnownN: 10})
	res, err := r.Broadcast(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 5 {
		t.Fatalf("reached %d, want 5", res.Reached)
	}
	if len(res.Rounds) != 1 {
		t.Fatalf("rounds = %d, want 1", len(res.Rounds))
	}
}

func TestBroadcastHopsAreTwiceSequence(t *testing.T) {
	// The broadcast walk always runs the full sequence forward and unwinds
	// back to s (modulo early delivery at an s-gadget node): hops per round
	// is at most 2·L_n.
	r := newRouter(t, gen.Cycle(4), Config{Seed: 2, KnownN: 8})
	res, err := r.Broadcast(0)
	if err != nil {
		t.Fatal(err)
	}
	round := res.Rounds[0]
	if round.Hops > 2*int64(round.SeqLen) {
		t.Fatalf("hops %d exceed 2·L = %d", round.Hops, 2*round.SeqLen)
	}
	if round.Hops < int64(round.SeqLen) {
		t.Fatalf("hops %d below L = %d: forward pass incomplete", round.Hops, round.SeqLen)
	}
}

func TestBroadcastAblation(t *testing.T) {
	r := newRouter(t, gen.Grid(3, 3), Config{Seed: 4, NoDegreeReduction: true})
	res, err := r.Broadcast(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 9 {
		t.Fatalf("ablation broadcast reached %d/9", res.Reached)
	}
}
