package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVnodes is the virtual-node count per member when none is
// configured. 64 points per member keeps the per-member load imbalance
// near 1/sqrt(64) ≈ 12% and the disruption bound tight, while a whole
// fleet's ring still rebuilds in microseconds.
const DefaultVnodes = 64

// Member is one placement target on the ring: the name is the stable
// shard identity, the addr is where its HTTP surface lives.
type Member struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
}

// ringPoint is one virtual node: a position on the 64-bit circle owned by
// a member.
type ringPoint struct {
	hash   uint64
	member int32 // index into Ring.members
}

// Ring is an immutable consistent-hash ring over the alive members of a
// membership view. Build a new one on every view change; lookups are
// lock-free on the snapshot.
type Ring struct {
	members []Member
	points  []ringPoint
	version uint64
}

// hash64 is the ring's hash: FNV-1a over the bytes, pushed through a
// murmur-style finalizer. Raw FNV output clusters badly on short similar
// inputs ("shard-0", "shard-1", …) — its high bits barely move — and a
// consistent-hash circle needs uniform point spread; the finalizer's
// avalanche fixes that. Placement only needs speed, determinism across
// processes, and dispersion — not cryptographic strength (spec IDs
// already are sha256-derived).
func hash64(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		_, _ = h.Write([]byte(p))
		_, _ = h.Write([]byte{0}) // unambiguous part boundary
	}
	return mix64(h.Sum64())
}

// mix64 is the MurmurHash3 64-bit finalizer: full avalanche, so every
// input bit flips about half the output bits.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// BuildRing constructs the ring over the alive peers of a view (dead and
// suspect peers take no keys: a suspect peer may still be serving, but
// placement must be pessimistic so two members with the same view never
// disagree about an owner). vnodes <= 0 takes DefaultVnodes. The ring
// version is a content hash of the alive set, so two members with
// converged views report identical versions — the convergence signal the
// tests and metrics key on.
func BuildRing(peers []PeerState, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	alive := make([]PeerState, 0, len(peers))
	for _, p := range peers {
		if p.Status == StatusAlive && p.Name != "" {
			alive = append(alive, p)
		}
	}
	sort.Slice(alive, func(i, j int) bool { return alive[i].Name < alive[j].Name })
	r := &Ring{
		members: make([]Member, len(alive)),
		points:  make([]ringPoint, 0, len(alive)*vnodes),
	}
	vh := fnv.New64a()
	for i, p := range alive {
		r.members[i] = Member{Name: p.Name, Addr: p.Addr}
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   hash64("vnode", p.Name, fmt.Sprintf("%d", v)),
				member: int32(i),
			})
		}
		_, _ = vh.Write([]byte(p.Name))
		_, _ = vh.Write([]byte{0})
		_, _ = vh.Write([]byte(p.Addr))
		_, _ = vh.Write([]byte{0})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Equal points sort by member name so the ring layout itself is
		// iteration-order independent; the key-level tiebreak in Owner
		// picks among them by rendezvous hash.
		return r.members[r.points[i].member].Name < r.members[r.points[j].member].Name
	})
	r.version = vh.Sum64()
	return r
}

// Version is the content hash of the alive set the ring was built from.
// Two members whose gossip views have converged build rings with equal
// versions — and therefore agree on every key's owner.
func (r *Ring) Version() uint64 { return r.version }

// Members returns the ring's members, sorted by name.
func (r *Ring) Members() []Member {
	out := make([]Member, len(r.members))
	copy(out, r.members)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Owner returns the member that owns key: the first virtual node at or
// clockwise after the key's hash. When several members collide on that
// exact point (a 64-bit coincidence), rendezvous hashing on (key, member)
// breaks the tie, so the answer is still a pure function of the view and
// the key. ok is false only on an empty ring.
func (r *Ring) Owner(key string) (Member, bool) {
	if len(r.points) == 0 {
		return Member{}, false
	}
	kh := hash64("key", key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	if i == len(r.points) {
		i = 0 // wrap past the top of the circle
	}
	// Gather the (almost always single) run of points sharing this hash.
	h := r.points[i].hash
	best := r.members[r.points[i].member]
	bestScore := hash64("rendezvous", key, best.Name)
	for j := i + 1; j < len(r.points) && r.points[j].hash == h; j++ {
		cand := r.members[r.points[j].member]
		if score := hash64("rendezvous", key, cand.Name); score > bestScore ||
			(score == bestScore && cand.Name < best.Name) {
			best, bestScore = cand, score
		}
	}
	return best, true
}
