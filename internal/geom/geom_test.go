package geom

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func TestVectorOps(t *testing.T) {
	p := Point{X: 1, Y: 2, Z: 3}
	q := Point{X: 4, Y: 6, Z: 3}
	if d := p.Sub(q); d != (Point{X: -3, Y: -4, Z: 0}) {
		t.Errorf("Sub = %+v", d)
	}
	if s := p.Add(q); s != (Point{X: 5, Y: 8, Z: 6}) {
		t.Errorf("Add = %+v", s)
	}
	if sc := p.Scale(2); sc != (Point{X: 2, Y: 4, Z: 6}) {
		t.Errorf("Scale = %+v", sc)
	}
	if dot := p.Dot(q); !almostEqual(dot, 1*4+2*6+3*3) {
		t.Errorf("Dot = %v", dot)
	}
	if !almostEqual(Dist(p, q), 5) {
		t.Errorf("Dist = %v, want 5", Dist(p, q))
	}
	if !almostEqual(Dist2(p, q), 25) {
		t.Errorf("Dist2 = %v, want 25", Dist2(p, q))
	}
	if m := Midpoint(p, q); m != (Point{X: 2.5, Y: 4, Z: 3}) {
		t.Errorf("Midpoint = %+v", m)
	}
}

func TestCCW(t *testing.T) {
	o := Point{}
	right := Point{X: 1}
	up := Point{Y: 1}
	if CCW(o, right, up) <= 0 {
		t.Error("o->right->up should be CCW")
	}
	if CCW(o, up, right) >= 0 {
		t.Error("o->up->right should be CW")
	}
	if CCW(o, right, Point{X: 2}) != 0 {
		t.Error("collinear points should give 0")
	}
}

func TestAngle(t *testing.T) {
	o := Point{}
	tests := []struct {
		q    Point
		want float64
	}{
		{Point{X: 1}, 0},
		{Point{Y: 1}, math.Pi / 2},
		{Point{X: -1}, math.Pi},
		{Point{Y: -1}, -math.Pi / 2},
	}
	for _, tt := range tests {
		if got := Angle(o, tt.q); !almostEqual(got, tt.want) {
			t.Errorf("Angle to %+v = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestUnitDiskEdges(t *testing.T) {
	pts := []Point{
		{X: 0, Y: 0},
		{X: 1, Y: 0},
		{X: 5, Y: 0},
		{X: 0.5, Y: 0.5},
	}
	edges := UnitDiskEdges(pts, 1.0)
	want := map[[2]int]bool{{0, 1}: true, {0, 3}: true, {1, 3}: true}
	if len(edges) != len(want) {
		t.Fatalf("got %d edges %v, want %d", len(edges), edges, len(want))
	}
	for _, e := range edges {
		if !want[e] {
			t.Errorf("unexpected edge %v", e)
		}
	}
}

func TestUnitDiskRadiusBoundaryInclusive(t *testing.T) {
	pts := []Point{{X: 0}, {X: 1}}
	if edges := UnitDiskEdges(pts, 1.0); len(edges) != 1 {
		t.Fatalf("boundary distance should be connected, got %v", edges)
	}
	if edges := UnitDiskEdges(pts, 0.999); len(edges) != 0 {
		t.Fatalf("beyond radius should be disconnected, got %v", edges)
	}
}

func TestGabrielRemovesCoveredEdge(t *testing.T) {
	// w sits at the midpoint of uv, so edge (u,v) must be removed while
	// (u,w) and (w,v) survive.
	pts := []Point{
		{X: 0, Y: 0},   // u
		{X: 2, Y: 0},   // v
		{X: 1, Y: 0.1}, // w, inside the uv diameter disk
	}
	udg := UnitDiskEdges(pts, 3)
	gg := GabrielEdges(pts, udg)
	for _, e := range gg {
		if e == [2]int{0, 1} {
			t.Fatal("Gabriel graph kept covered edge (0,1)")
		}
	}
	if len(gg) != 2 {
		t.Fatalf("Gabriel edges = %v, want 2 surviving edges", gg)
	}
}

func TestGabrielKeepsEmptyDiskEdges(t *testing.T) {
	pts := []Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0.5, Y: 5}}
	udg := [][2]int{{0, 1}}
	gg := GabrielEdges(pts, udg)
	if len(gg) != 1 {
		t.Fatalf("far-away point should not remove edge, got %v", gg)
	}
}

// TestGabrielPlanarity checks the defining planarity property on random
// point sets: no two Gabriel edges cross in the plane.
func TestGabrielPlanarity(t *testing.T) {
	f := func(seed uint64) bool {
		src := prng.New(seed)
		n := src.Intn(20) + 4
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: src.Float64(), Y: src.Float64()}
		}
		gg := GabrielEdges(pts, UnitDiskEdges(pts, 0.5))
		for i := 0; i < len(gg); i++ {
			for j := i + 1; j < len(gg); j++ {
				a, b := pts[gg[i][0]], pts[gg[i][1]]
				c, d := pts[gg[j][0]], pts[gg[j][1]]
				if gg[i][0] == gg[j][0] || gg[i][0] == gg[j][1] ||
					gg[i][1] == gg[j][0] || gg[i][1] == gg[j][1] {
					continue // shared endpoint
				}
				if segmentsCross(a, b, c, d) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func segmentsCross(a, b, c, d Point) bool {
	d1 := CCW(c, d, a)
	d2 := CCW(c, d, b)
	d3 := CCW(a, b, c)
	d4 := CCW(a, b, d)
	return ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))
}

func TestSortByAngle(t *testing.T) {
	pts := []Point{
		{X: 0, Y: 0}, // center
		{X: 1, Y: 0},
		{X: 0, Y: 1},
		{X: -1, Y: 0},
		{X: 0, Y: -1},
	}
	neighbors := []int{2, 4, 1, 3}
	SortByAngle(pts, 0, neighbors)
	want := []int{4, 1, 2, 3} // angles: -π/2, 0, π/2, π
	for i := range want {
		if neighbors[i] != want[i] {
			t.Fatalf("SortByAngle = %v, want %v", neighbors, want)
		}
	}
}

func TestNextCCW(t *testing.T) {
	pts := []Point{
		{X: 0, Y: 0},  // u = 0
		{X: 1, Y: 0},  // east
		{X: 0, Y: 1},  // north
		{X: -1, Y: 0}, // west
		{X: 0, Y: -1}, // south
	}
	neighbors := []int{1, 2, 3, 4}
	// Coming from east (1), next CCW is north (2).
	if got := NextCCW(pts, 0, 1, neighbors); got != 2 {
		t.Errorf("NextCCW from east = %d, want 2 (north)", got)
	}
	// Coming from south (4), next CCW is east (1).
	if got := NextCCW(pts, 0, 4, neighbors); got != 1 {
		t.Errorf("NextCCW from south = %d, want 1 (east)", got)
	}
	// A single neighbour bounces back.
	if got := NextCCW(pts, 0, 1, []int{1}); got != 1 {
		t.Errorf("NextCCW with single neighbour = %d, want 1", got)
	}
}
