package registry

import (
	"testing"
)

// BenchmarkRegistryObtainHit is the steady-state multi-tenant path: the
// network is resident, so Obtain is a key derivation plus an LRU touch —
// the cost every request pays before routing.
func BenchmarkRegistryObtainHit(b *testing.B) {
	r := New(Config{Capacity: 4})
	spec := Spec{Kind: "grid", Rows: 16, Cols: 16, Seed: 7}
	if _, _, err := r.Obtain(spec); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, cached, err := r.Obtain(spec); err != nil || !cached {
			b.Fatalf("cached=%v err=%v", cached, err)
		}
	}
}

// BenchmarkRegistryObtainMiss is the cold path: every iteration names a
// network the registry has never seen, paying the full generator + engine
// compile (degree reduction, flat CSR snapshot) — what the cache and
// singleflight save every other request.
func BenchmarkRegistryObtainMiss(b *testing.B) {
	r := New(Config{Capacity: 2})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := Spec{Kind: "grid", Rows: 16, Cols: 16, Seed: uint64(i) + 1000}
		if _, cached, err := r.Obtain(spec); err != nil || cached {
			b.Fatalf("cached=%v err=%v", cached, err)
		}
	}
}
