package route

import (
	"context"
	"fmt"

	"repro/internal/flatgraph"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/trace"
)

// RouteBudgeted is Route with bounded work: the walk performs at most
// maxHops message hops (0 = unlimited) and honors ctx's deadline or
// cancellation, checked at round starts rather than per hop. When either
// limit strikes first the call returns with Status none, Exhausted set, and
// a Cursor from which a later call continues the walk exactly where it
// stopped — a walk split across continuations is hop-for-hop identical to
// the uninterrupted one (verdict, total hops, header bits; pinned by
// differential tests). Pass cur (from a prior exhausted Result) to
// continue, nil to start fresh. Only the compiled flat path supports
// bounded work; instrumented or ablated configs return
// ErrBudgetUnsupported.
func (r *Router) RouteBudgeted(ctx context.Context, s, t graph.NodeID, maxHops int64, cur *Cursor) (*Result, error) {
	return r.routeBudgeted(ctx, s, t, maxHops, cur, nil)
}

// RouteBudgetedTraced is RouteBudgeted recording budget and resume events
// under sp. A nil (unsampled) span routes identically.
func (r *Router) RouteBudgetedTraced(ctx context.Context, s, t graph.NodeID, maxHops int64, cur *Cursor, sp *trace.Span) (*Result, error) {
	return r.routeBudgeted(ctx, s, t, maxHops, cur, sp)
}

func (r *Router) routeBudgeted(ctx context.Context, s, t graph.NodeID, maxHops int64, cur *Cursor, sp *trace.Span) (*Result, error) {
	if r.flat == nil || r.cfg.DisableFlat || r.cfg.Confirm != ConfirmBacktrack ||
		r.cfg.Trace != nil || r.cfg.FaultHook != nil || r.cfg.WireFormat ||
		r.cfg.MemoryBudgetBits != 0 {
		return nil, ErrBudgetUnsupported
	}
	if !r.orig.HasNode(s) {
		return nil, fmt.Errorf("route: source: %w: %d", graph.ErrNodeNotFound, s)
	}
	if s == t {
		return &Result{Status: netsim.StatusSuccess}, nil
	}
	if cur != nil {
		if cur.Src != s || cur.Dst != t {
			return nil, fmt.Errorf("%w: cursor is for %d->%d, request is for %d->%d",
				ErrBadCursor, cur.Src, cur.Dst, s, t)
		}
		if cur.Version != 0 {
			return nil, fmt.Errorf("%w: dynamic-world cursor (version %d) on a static router",
				ErrBadCursor, cur.Version)
		}
		if cur.Bound < 1 || cur.Index < 0 {
			return nil, fmt.Errorf("%w: bound %d, index %d", ErrBadCursor, cur.Bound, cur.Index)
		}
	}
	start, err := r.entry(s)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	if cur == nil {
		if cert := r.unreachableCert(start, t); cert != nil {
			res.Status = netsim.StatusFailure
			res.Certificate = cert
			if sp.Recording() {
				sp.Event("route.certificate",
					trace.Int("src_component", int64(cert.SrcComponent)),
					trace.Int("dst_component", int64(cert.DstComponent)))
			}
			return res, nil
		}
	}
	si, ok := r.flat.Index(start)
	if !ok {
		return nil, fmt.Errorf("route: %w: %d", graph.ErrNodeNotFound, start)
	}

	maxBound := r.cfg.MaxBound
	if maxBound <= 0 {
		maxBound = 4 * r.work.NumNodes()
	}
	growth := r.cfg.growth()
	armed := maxHops > 0
	remaining := maxHops

	// compiledSeq insists on the PRF-backed base-3 form budgeted rounds run
	// on; a custom SequenceFactory that is not PRF-backed cannot be
	// budgeted.
	compiledSeq := func(bound int) (flatgraph.Seq, error) {
		fs, ok := r.flatSeq(r.sequence(bound))
		if !ok {
			return flatgraph.Seq{}, ErrBudgetUnsupported
		}
		return fs, nil
	}

	var (
		st        *flatgraph.RouteStepper
		bound     int
		seq       flatgraph.Seq
		roundBase int64 // hops of the current round spent in earlier continuations
		maxIdx    int64 = 1
		rounds    int   // rounds started, across all continuations
	)
	if cur != nil {
		bound = cur.Bound
		if seq, err = compiledSeq(bound); err != nil {
			return nil, err
		}
		st, err = r.flat.ResumeRouteStepper(cur.Node, cur.InPort, s, t, seq, cur.Index, cur.Backward, cur.Success)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadCursor, err)
		}
		roundBase = cur.RoundHops
		if cur.MaxIndex > maxIdx {
			maxIdx = cur.MaxIndex
		}
		res.Hops = cur.Hops
		res.MaxHeaderBits = cur.MaxHeaderBits
		rounds = cur.Rounds
		if sp.Recording() {
			sp.Event("route.cursor_resume",
				trace.Int("bound", int64(bound)), trace.Int("index", cur.Index),
				trace.Int("round_hops", cur.RoundHops))
		}
	} else {
		bound = 4
		if r.cfg.KnownN > 0 {
			bound = r.cfg.KnownN
		} else if bound > maxBound {
			bound = maxBound
		}
		if seq, err = compiledSeq(bound); err != nil {
			return nil, err
		}
		if st, err = r.flat.RouteStepper(si, s, t, seq); err != nil {
			return nil, fmt.Errorf("route: %w", err)
		}
		rounds = 1
	}

	// exhaust snapshots the walk into a resumable cursor. res.Hops still
	// holds only completed-round hops here; the in-flight round's hops are
	// reported in the Result but kept apart in the cursor so the continued
	// round folds in without double counting.
	exhaust := func(reason ExhaustReason) (*Result, error) {
		node, inPort := st.Position()
		if idx := st.Index(); idx > maxIdx {
			maxIdx = idx
		}
		if hb := (netsim.Header{Src: s, Dst: t, Dir: netsim.Forward, Index: maxIdx}).Bits(); hb > res.MaxHeaderBits {
			res.MaxHeaderBits = hb
		}
		res.Cursor = &Cursor{
			Src: s, Dst: t, Bound: bound,
			Node: node, InPort: inPort, At: r.flat.OriginalOf(node),
			Index: st.Index(), Backward: st.Backward(), Success: st.Success(),
			Hops: res.Hops, RoundHops: roundBase + st.Hops(), MaxIndex: maxIdx,
			Rounds: rounds, MaxHeaderBits: res.MaxHeaderBits,
		}
		res.Hops += roundBase + st.Hops()
		res.Exhausted = reason
		res.Bound = bound
		if sp.Recording() {
			sp.Event("route.budget_exhausted",
				trace.String("reason", string(reason)),
				trace.Int("hops", res.Hops), trace.Int("bound", int64(bound)))
		}
		return res, nil
	}

	for {
		// Deadlines are checked once per round (and once on resume entry),
		// never per hop — a round is the paper's unit of bounded work.
		if ctx != nil && ctx.Err() != nil {
			return exhaust(ExhaustDeadline)
		}
		for !st.Done() {
			if armed && remaining <= 0 {
				return exhaust(ExhaustBudget)
			}
			if idx := st.Index(); idx > maxIdx {
				maxIdx = idx
			}
			ph := st.Hops()
			st.Step()
			if st.Hops() != ph {
				remaining--
			}
		}
		if err := st.Err(); err != nil {
			return res, fmt.Errorf("route: flat walk: %w", err)
		}
		// Round complete: fold it into the result exactly as flatRound does.
		roundHops := roundBase + st.Hops()
		res.Hops += roundHops
		if hb := (netsim.Header{Src: s, Dst: t, Dir: netsim.Forward, Index: maxIdx}).Bits(); hb > res.MaxHeaderBits {
			res.MaxHeaderBits = hb
		}
		stat := RoundStat{Bound: bound, SeqLen: seq.Length, Hops: roundHops}
		res.Bound = bound
		if st.Success() {
			stat.Outcome = netsim.StatusSuccess
			res.Rounds = append(res.Rounds, stat)
			res.Status = netsim.StatusSuccess
			res.ForwardSteps = (roundHops + st.Index()) / 2
			return res, nil
		}
		stat.Outcome = netsim.StatusFailure
		if r.cfg.KnownN > 0 {
			// A single promised-bound round: its failure is the verdict.
			res.Rounds = append(res.Rounds, stat)
			res.Status = netsim.StatusFailure
			return res, nil
		}
		covered, err := r.covered(start, bound)
		if err != nil {
			res.Rounds = append(res.Rounds, stat)
			return res, err
		}
		stat.Covered = covered
		res.Rounds = append(res.Rounds, stat)
		if sp.Recording() {
			sp.Event("route.cover_check",
				trace.Int("bound", int64(bound)), trace.Bool("covered", covered))
		}
		if covered {
			res.Status = netsim.StatusFailure
			return res, nil
		}
		if bound >= maxBound {
			return res, fmt.Errorf("%w: bound %d", ErrSequenceExhausted, bound)
		}
		bound *= growth
		if bound > maxBound {
			bound = maxBound
		}
		if seq, err = compiledSeq(bound); err != nil {
			return res, err
		}
		if st, err = r.flat.RouteStepper(si, s, t, seq); err != nil {
			return res, fmt.Errorf("route: %w", err)
		}
		roundBase, maxIdx = 0, 1
		rounds++
	}
}
