// Prepared: compile a network once and serve many concurrent queries from
// the shared Router — the amortization contract of the prepared engine
// (and the serving model behind cmd/adhocd).
package main

import (
	"fmt"
	"log"

	adhocroute "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	nw := adhocroute.NewUnitDisk2D(120, 0.18, 42)
	fmt.Printf("network: %d nodes, %d links\n", nw.NumNodes(), nw.NumLinks())

	// Compile performs the degree reduction and sequence-family setup
	// once; the Router is safe for any number of concurrent queries.
	r, err := nw.Compile(adhocroute.WithSeed(2026), adhocroute.WithWorkers(4))
	if err != nil {
		return err
	}

	// One-to-many fan-out across the worker pool: route from node 0 to
	// every node in the network (unreachable ones fail definitively).
	results := r.RouteAll(0, nw.Nodes())
	var delivered, unreachable int
	var hops int64
	for _, br := range results {
		if br.Err != nil {
			return br.Err
		}
		if br.Result.Status == adhocroute.StatusSuccess {
			delivered++
		} else {
			unreachable++
		}
		hops += br.Result.Hops
	}
	fmt.Printf("fan-out 0 -> *: %d delivered, %d definitively unreachable, %d total hops\n",
		delivered, unreachable, hops)

	// The engine metrics summarize the serving session.
	s := r.Stats()
	fmt.Printf("stats: %d queries, %d hops, %d rounds, seq cache %d hits / %d misses, peak header %d bits\n",
		s.Queries, s.Hops, s.Rounds, s.SeqCacheHits, s.SeqCacheMisses, s.PeakHeaderBits)
	return nil
}
