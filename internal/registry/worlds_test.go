package registry

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/dynamic"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/netsim"
)

func testWorldEntry(t *testing.T, sched dynamic.Schedule) *WorldEntry {
	t.Helper()
	eng, err := engine.Compile(gen.Torus(4, 4), engine.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return &WorldEntry{Eng: eng, W: eng.NewWorld(sched), Desc: "test"}
}

// TestWorldLifecycle checks naming, duplicates, capacity, and deletion.
func TestWorldLifecycle(t *testing.T) {
	ws := NewWorlds(2)
	a, err := ws.Create("", testWorldEntry(t, dynamic.Static{}))
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != "w1" {
		t.Fatalf("first generated ID %q, want w1", a.ID)
	}
	// Generated IDs are consecutive, with no gaps from interleaved named
	// creates.
	ws2 := NewWorlds(4)
	for i := 1; i <= 3; i++ {
		e, err := ws2.Create("", testWorldEntry(t, dynamic.Static{}))
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("w%d", i); e.ID != want {
			t.Fatalf("generated ID %q, want %s", e.ID, want)
		}
	}
	named, err := ws.Create("sweep-1", testWorldEntry(t, dynamic.Static{}))
	if err != nil {
		t.Fatal(err)
	}
	if named.ID != "sweep-1" {
		t.Fatalf("ID %q, want sweep-1", named.ID)
	}
	if _, err := ws.Create("sweep-1", testWorldEntry(t, dynamic.Static{})); !errors.Is(err, ErrWorldExists) {
		t.Fatalf("duplicate name err = %v", err)
	}
	if _, err := ws.Create("", testWorldEntry(t, dynamic.Static{})); !errors.Is(err, ErrWorldCapacity) {
		t.Fatalf("over-capacity err = %v", err)
	}
	if _, err := ws.Create("no spaces!", testWorldEntry(t, dynamic.Static{})); !errors.Is(err, ErrBadWorldName) {
		t.Fatalf("bad name err = %v", err)
	}
	if !ws.Delete(a.ID) {
		t.Fatal("delete of existing world failed")
	}
	if ws.Delete(a.ID) {
		t.Fatal("double delete succeeded")
	}
	got, ok := ws.Get(named.ID)
	if !ok || got != named {
		t.Fatal("Get lost the named world")
	}
	list := ws.List()
	if len(list) != 1 || list[0] != named {
		t.Fatalf("List: %v", list)
	}
}

// TestSharedWorldConcurrentRouters drives one registered world from many
// goroutines at once — the serving-layer shape /v1/worlds/{id}/route
// creates — under churn, and checks every query gets a verdict (or the
// explicit rounds-exhausted error) while the world stays consistent.
func TestSharedWorldConcurrentRouters(t *testing.T) {
	ws := NewWorlds(4)
	ent, err := ws.Create("shared", testWorldEntry(t, &dynamic.EdgeChurn{Seed: 5, PDrop: 0.05, AddRate: 1}))
	if err != nil {
		t.Fatal(err)
	}
	g := ent.Eng.Graph()
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < 6; k++ {
				dst := graph.NodeID((c*7 + k*3) % g.NumNodes())
				res, err := ent.Eng.RouteDynamic(ent.W, 0, dst, dynamic.Config{HopsPerEpoch: 16})
				if err != nil && !errors.Is(err, dynamic.ErrRoundsExhausted) {
					t.Errorf("router %d: %v", c, err)
					return
				}
				if err == nil && res.Status != netsim.StatusSuccess && res.Status != netsim.StatusFailure {
					t.Errorf("router %d: no verdict: %+v", c, res)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if ent.W.Epoch() == 0 {
		t.Fatal("shared world never advanced")
	}
	// The engine's own topology must be untouched by the evolving world.
	if g.NumEdges() != gen.Torus(4, 4).NumEdges() {
		t.Fatalf("engine topology mutated: %d edges", g.NumEdges())
	}
}
