package route

// flatdiff_test.go is the correctness gate of the compiled flat walk core:
// on random labeled multigraphs (self-loops, parallel edges, isolated
// nodes, shuffled port labels), the flat walker and the netsim reference
// engine must produce identical traces, hop counts, verdicts, and resource
// statistics. DisableFlat pins the reference path; the default path rides
// the flat walker whenever eligible.

import (
	"reflect"
	"testing"

	"repro/internal/degred"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/prng"
)

// randomMultigraph builds an arbitrary port-labeled multigraph: n nodes
// with non-contiguous IDs, n+extra random edges (self-loops and parallel
// edges included, some nodes possibly isolated), and adversarially
// shuffled labels.
func randomMultigraph(seed uint64, n, extra int) *graph.Graph {
	src := prng.New(seed)
	g := graph.New()
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = graph.NodeID(i*3 + 1)
		g.EnsureNode(ids[i])
	}
	for e := 0; e < n+extra; e++ {
		u := ids[src.Intn(n)]
		v := ids[src.Intn(n)]
		if _, _, err := g.AddEdge(u, v); err != nil {
			panic(err)
		}
	}
	g.ShuffleLabels(seed ^ 0xabcd)
	return g
}

// diffRoute routes s→t on both execution paths and fails the test on any
// divergence in outcome or statistics.
func diffRoute(t *testing.T, g *graph.Graph, cfg Config, s, dst graph.NodeID) {
	t.Helper()
	slowCfg := cfg
	slowCfg.DisableFlat = true
	fast, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fast.flat == nil {
		t.Fatal("fast router has no flat snapshot")
	}
	slow, err := New(g, slowCfg)
	if err != nil {
		t.Fatal(err)
	}
	rf, ef := fast.Route(s, dst)
	rs, es := slow.Route(s, dst)
	if (ef == nil) != (es == nil) {
		t.Fatalf("route %d->%d: flat err %v, reference err %v", s, dst, ef, es)
	}
	if ef != nil {
		return
	}
	if !reflect.DeepEqual(rf, rs) {
		t.Fatalf("route %d->%d diverged:\nflat:      %+v\nreference: %+v", s, dst, rf, rs)
	}
}

// TestFlatRouteMatchesReference is the property test over random labeled
// multigraphs: identical Route results — verdict, hops, forward steps,
// bound schedule, per-round statistics, header and memory metering — on
// reachable targets, unreachable targets, and absent targets.
func TestFlatRouteMatchesReference(t *testing.T) {
	for seed := uint64(0); seed < 14; seed++ {
		g := randomMultigraph(seed, 8+int(seed%6), int(seed%8))
		nodes := g.SortedNodes()
		cfg := Config{Seed: seed, LengthFactor: 1}
		diffRoute(t, g, cfg, nodes[0], nodes[len(nodes)-1])
		diffRoute(t, g, cfg, nodes[len(nodes)/2], nodes[1])
		diffRoute(t, g, cfg, nodes[0], graph.NodeID(999983)) // absent target
		// Known-bound single round.
		red, err := degred.Reduce(g)
		if err != nil {
			t.Fatal(err)
		}
		kcfg := Config{Seed: seed, LengthFactor: 1, KnownN: red.Graph().NumNodes()}
		diffRoute(t, g, kcfg, nodes[0], nodes[len(nodes)-1])
	}
}

// TestFlatBroadcastMatchesReference checks broadcast parity: identical
// reached sets, hop totals, round schedules, and statistics.
func TestFlatBroadcastMatchesReference(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		g := randomMultigraph(seed, 7+int(seed%5), int(seed%6))
		s := g.SortedNodes()[0]
		fast, err := New(g, Config{Seed: seed, LengthFactor: 1})
		if err != nil {
			t.Fatal(err)
		}
		slow, err := New(g, Config{Seed: seed, LengthFactor: 1, DisableFlat: true})
		if err != nil {
			t.Fatal(err)
		}
		bf, ef := fast.Broadcast(s)
		bs, es := slow.Broadcast(s)
		if (ef == nil) != (es == nil) {
			t.Fatalf("broadcast from %d: flat err %v, reference err %v", s, ef, es)
		}
		if ef != nil {
			continue
		}
		if !reflect.DeepEqual(bf, bs) {
			t.Fatalf("broadcast from %d diverged:\nflat:      %+v\nreference: %+v", s, bf, bs)
		}
	}
}

// TestFlatStepperMatchesReferenceTrace pins hop-for-hop equality: the
// activation sequence (node, arrival port, header index) of the flat
// stepper must be identical to the reference engine's trace.
func TestFlatStepperMatchesReferenceTrace(t *testing.T) {
	type activation struct {
		node   graph.NodeID
		inPort int
		index  int64
	}
	for seed := uint64(0); seed < 6; seed++ {
		g := randomMultigraph(seed, 6+int(seed%4), int(seed%5))
		nodes := g.SortedNodes()
		s := nodes[0]
		red, err := degred.Reduce(g)
		if err != nil {
			t.Fatal(err)
		}
		bound := red.Graph().NumNodes()
		for _, dst := range []graph.NodeID{nodes[len(nodes)-1], 999983} {
			var ref []activation
			slow, err := New(g, Config{
				Seed: seed, LengthFactor: 1, KnownN: bound,
				// The unreachable-dst case must actually walk for the trace
				// comparison, not be answered by the component certificate.
				DisableCertificates: true,
				Trace: func(hop int64, at graph.NodeID, inPort int, h netsim.Header) {
					ref = append(ref, activation{at, inPort, h.Index})
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := slow.Route(s, dst); err != nil {
				t.Fatal(err)
			}

			fast, err := New(g, Config{Seed: seed, LengthFactor: 1, KnownN: bound})
			if err != nil {
				t.Fatal(err)
			}
			fs, ok := fast.flatSeq(fast.sequence(bound))
			if !ok {
				t.Fatal("flat path not eligible")
			}
			start, err := fast.entry(s)
			if err != nil {
				t.Fatal(err)
			}
			si, ok := fast.flat.Index(start)
			if !ok {
				t.Fatalf("entry %d not in snapshot", start)
			}
			st, err := fast.flat.RouteStepper(si, s, dst, fs)
			if err != nil {
				t.Fatal(err)
			}
			var got []activation
			for {
				node, inPort := st.Position()
				got = append(got, activation{fast.flat.ID(node), int(inPort), st.Index()})
				if st.Step() {
					break
				}
			}
			if st.Err() != nil {
				t.Fatal(st.Err())
			}
			if len(got) != len(ref) {
				t.Fatalf("seed %d dst %d: %d flat activations, %d reference", seed, dst, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("seed %d dst %d: activation %d diverged: flat %+v, reference %+v",
						seed, dst, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestFlatWalkerMatchesReference drives the steppable Walker (the hybrid
// race's guaranteed prober) to completion on both paths.
func TestFlatWalkerMatchesReference(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		g := randomMultigraph(seed, 7+int(seed%5), int(seed%4))
		nodes := g.SortedNodes()
		s := nodes[0]
		for _, dst := range []graph.NodeID{nodes[len(nodes)-1], 999983} {
			fast, err := New(g, Config{Seed: seed, LengthFactor: 1})
			if err != nil {
				t.Fatal(err)
			}
			slow, err := New(g, Config{Seed: seed, LengthFactor: 1, DisableFlat: true})
			if err != nil {
				t.Fatal(err)
			}
			wf, ef := fast.Walker(s, dst)
			ws, es := slow.Walker(s, dst)
			if (ef == nil) != (es == nil) {
				t.Fatalf("walker %d->%d: flat err %v, reference err %v", s, dst, ef, es)
			}
			if ef != nil {
				continue
			}
			for steps := 0; ; steps++ {
				df, ds := wf.Step(), ws.Step()
				if df != ds {
					t.Fatalf("walker %d->%d: done diverged after %d steps (flat %v, reference %v)",
						s, dst, steps, df, ds)
				}
				if wf.Hops() != ws.Hops() {
					t.Fatalf("walker %d->%d: hops diverged after %d steps (flat %d, reference %d)",
						s, dst, steps, wf.Hops(), ws.Hops())
				}
				if df {
					break
				}
			}
			if (wf.Err() == nil) != (ws.Err() == nil) {
				t.Fatalf("walker %d->%d: terminal err flat %v, reference %v", s, dst, wf.Err(), ws.Err())
			}
			if wf.Err() == nil && wf.Status() != ws.Status() {
				t.Fatalf("walker %d->%d: status flat %v, reference %v", s, dst, wf.Status(), ws.Status())
			}
		}
	}
}

// FuzzFlatRouteMatchesReference extends the property test under go test
// -fuzz; the seed corpus below runs as part of the ordinary test suite.
func FuzzFlatRouteMatchesReference(f *testing.F) {
	f.Add(uint64(1), uint8(9), uint8(4), uint8(0), uint8(6))
	f.Add(uint64(7), uint8(5), uint8(9), uint8(2), uint8(1))
	f.Add(uint64(42), uint8(16), uint8(2), uint8(3), uint8(200))
	f.Fuzz(func(t *testing.T, seed uint64, n, extra, srcSel, dstSel uint8) {
		nn := 2 + int(n)%18
		g := randomMultigraph(seed, nn, int(extra)%12)
		nodes := g.SortedNodes()
		s := nodes[int(srcSel)%len(nodes)]
		dst := nodes[int(dstSel)%len(nodes)]
		if dstSel > 250 {
			dst = graph.NodeID(999983) // absent target
		}
		if s == dst {
			return // trivially identical, no walk
		}
		diffRoute(t, g, Config{Seed: seed, LengthFactor: 1}, s, dst)
	})
}
