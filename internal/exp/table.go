// Package exp is the experiment harness: one runner per experiment in
// DESIGN.md's index (F1, E1–E11, A1–A5), each producing a Table that cmd/experiments
// renders to Markdown and CSV, and that bench_test.go wraps as benchmarks.
//
// The paper is a theory note with a single figure and no evaluation tables;
// the experiments operationalize each claim of the text (see DESIGN.md §4
// for the mapping from experiment ID to paper anchor).
package exp

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a named experiment result.
type Table struct {
	// ID is the experiment identifier (e.g. "E1").
	ID string
	// Title is the human-readable headline.
	Title string
	// Anchor cites the paper claim the experiment reproduces.
	Anchor string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, as formatted strings.
	Rows [][]string
	// Notes hold free-form observations appended to the rendering.
	Notes []string
}

// AddRow appends a row; the cell count must match the columns.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Markdown renders the table as GitHub-flavoured Markdown.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "## %s — %s\n\n", t.ID, t.Title)
	if t.Anchor != "" {
		fmt.Fprintf(&sb, "*Paper anchor: %s*\n\n", t.Anchor)
	}
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if len(t.Notes) > 0 {
		sb.WriteString("\n")
		for _, n := range t.Notes {
			sb.WriteString("- " + n + "\n")
		}
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (cells are escaped by
// quoting when needed).
func (t *Table) CSV() string {
	var sb strings.Builder
	writeCSVRow(&sb, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(&sb, row)
	}
	return sb.String()
}

func writeCSVRow(sb *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			sb.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			sb.WriteString(strconv.Quote(c))
		} else {
			sb.WriteString(c)
		}
	}
	sb.WriteByte('\n')
}

// Options configures experiment runners.
type Options struct {
	// Quick shrinks sweeps to sizes suitable for unit tests and CI.
	Quick bool
	// Seed drives all randomness in the runner.
	Seed uint64
}

// sizes picks between full and quick sweeps.
func (o Options) sizes(full, quick []int) []int {
	if o.Quick {
		return quick
	}
	return full
}

// reps picks between full and quick repetition counts.
func (o Options) reps(full, quick int) int {
	if o.Quick {
		return quick
	}
	return full
}

// fmtInt formats an int cell.
func fmtInt(v int) string { return strconv.Itoa(v) }

// fmtInt64 formats an int64 cell.
func fmtInt64(v int64) string { return strconv.FormatInt(v, 10) }

// fmtFloat formats a float cell with 3 decimals.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// fmtRate formats a ratio as a percentage.
func fmtRate(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(num)/float64(den))
}

// Median returns the median of a slice (which it sorts in place; 0 for an
// empty slice). Exported for workload drivers (cmd/churnsim) that render
// their sweeps through this package's tables.
func Median(xs []int64) int64 { return median(xs) }

// median returns the median of a slice (which it sorts in place).
func median(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs[len(xs)/2]
}
