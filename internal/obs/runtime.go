package obs

import (
	"runtime"
	"sync"
	"time"
)

// runtimeStats caches one runtime.ReadMemStats per refresh window so a
// scrape hitting several go_* families pays the (stop-the-world-adjacent)
// read once, and feeds newly completed GC pauses from the MemStats PauseNs
// ring into a histogram between refreshes.
type runtimeStats struct {
	mu        sync.Mutex
	ms        runtime.MemStats
	fetched   time.Time
	lastNumGC uint32
	pauses    *Histogram
}

const runtimeStatsTTL = time.Second

// snapshot refreshes the cached MemStats when stale and returns it.
func (rs *runtimeStats) snapshot() runtime.MemStats {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if time.Since(rs.fetched) >= runtimeStatsTTL {
		runtime.ReadMemStats(&rs.ms)
		rs.fetched = time.Now()
		// PauseNs is a 256-entry ring indexed by GC cycle; replay the
		// cycles completed since the last refresh (capped at one lap).
		n := rs.ms.NumGC
		from := rs.lastNumGC
		if n > from+uint32(len(rs.ms.PauseNs)) {
			from = n - uint32(len(rs.ms.PauseNs))
		}
		for c := from + 1; c <= n; c++ { // cycle c's pause sits at (c+255)%256
			rs.pauses.Observe(int64(rs.ms.PauseNs[(c+255)%256]))
		}
		rs.lastNumGC = n
	}
	return rs.ms
}

// gcPauseBounds resolve microsecond-scale GC pauses: 10 µs to 100 ms.
var gcPauseBounds = []int64{
	10_000, 25_000, 50_000, 100_000, 250_000, 500_000, // 10 µs .. 0.5 ms
	1e6, 2.5e6, 5e6, 10e6, 25e6, 50e6, 100e6, // 1 ms .. 100 ms
}

// RegisterRuntimeMetrics registers process-level Go runtime metrics:
// goroutine count, heap usage, GC cycle counter, and a GC pause
// histogram. All values come from one cached ReadMemStats per scrape.
func RegisterRuntimeMetrics(reg *Registry) error {
	rs := &runtimeStats{
		pauses: newHistogram("go_gc_pause_seconds",
			"Stop-the-world GC pause durations, from the runtime's pause ring.",
			nil, gcPauseBounds, 1e9),
	}
	return reg.Register(
		NewGaugeFunc("go_goroutines", "Number of live goroutines.", nil,
			func() float64 { return float64(runtime.NumGoroutine()) }),
		NewGaugeFunc("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.", nil,
			func() float64 { return float64(rs.snapshot().HeapAlloc) }),
		NewGaugeFunc("go_memstats_heap_objects", "Number of allocated heap objects.", nil,
			func() float64 { return float64(rs.snapshot().HeapObjects) }),
		NewGaugeFunc("go_memstats_sys_bytes", "Bytes of memory obtained from the OS.", nil,
			func() float64 { return float64(rs.snapshot().Sys) }),
		NewCounterFunc("go_gc_cycles_total", "Completed GC cycles.", nil,
			func() float64 { return float64(rs.snapshot().NumGC) }),
		rs.pauses,
	)
}
