// Package degred implements the degree reduction of Figure 1 (paper §3):
// converting an arbitrary port-labeled multigraph G into a 3-regular
// multigraph G′ in which every original node v is "simulated" by a small
// gadget of degree-3 nodes, at most roughly squaring the size of the graph.
//
// Construction (following Koucky 2003, p. 80, as cited by the paper):
//
//   - deg(v) ≥ 3: v becomes a cycle of deg(v) gadget nodes; gadget node i
//     carries the original edge at port i of v (2 cycle edges + 1 original
//     edge = degree 3).
//   - deg(v) = 2: v becomes two gadget nodes joined by a pair of parallel
//     edges; each carries one original edge.
//   - deg(v) = 1: v becomes a single gadget node with a self-loop plus the
//     original edge.
//   - deg(v) = 0: v becomes a "theta" gadget — two nodes joined by three
//     parallel edges (3-regular, no original edges).
//
// Original edges are wired between the gadget nodes that own the
// corresponding ports, so the reduction is purely local: a real node could
// simulate its own gadget with O(log n) state, which is what the paper's
// model requires.
package degred

import (
	"fmt"
	"sync"

	"repro/internal/flatgraph"
	"repro/internal/graph"
)

// Reduced is a 3-regular multigraph G′ together with the bidirectional
// mapping between gadget nodes and the original nodes they simulate.
type Reduced struct {
	g     *graph.Graph
	orig  map[graph.NodeID]graph.NodeID
	slots map[graph.NodeID][]graph.NodeID

	flatOnce sync.Once
	flat     *flatgraph.Graph
}

// Reduce builds the 3-regular version of g. The input graph is not
// modified. Gadget node IDs are assigned densely from 0 in the insertion
// order of the original nodes.
func Reduce(g *graph.Graph) (*Reduced, error) {
	r := &Reduced{
		g:     graph.New(),
		orig:  make(map[graph.NodeID]graph.NodeID),
		slots: make(map[graph.NodeID][]graph.NodeID, g.NumNodes()),
	}
	next := graph.NodeID(0)
	fresh := func(owner graph.NodeID) graph.NodeID {
		id := next
		next++
		r.g.EnsureNode(id)
		r.orig[id] = owner
		r.slots[owner] = append(r.slots[owner], id)
		return id
	}

	// Phase 1: gadgets and intra-gadget edges.
	var buildErr error
	g.ForEachNode(func(v graph.NodeID) {
		if buildErr != nil {
			return
		}
		d := g.Degree(v)
		switch {
		case d >= 3:
			first := fresh(v)
			prev := first
			for i := 1; i < d; i++ {
				cur := fresh(v)
				if _, _, err := r.g.AddEdge(prev, cur); err != nil {
					buildErr = err
					return
				}
				prev = cur
			}
			if _, _, err := r.g.AddEdge(prev, first); err != nil {
				buildErr = err
			}
		case d == 2:
			a, b := fresh(v), fresh(v)
			for i := 0; i < 2; i++ {
				if _, _, err := r.g.AddEdge(a, b); err != nil {
					buildErr = err
					return
				}
			}
		case d == 1:
			a := fresh(v)
			if _, _, err := r.g.AddEdge(a, a); err != nil {
				buildErr = err
			}
		default: // d == 0
			a, b := fresh(v), fresh(v)
			for i := 0; i < 3; i++ {
				if _, _, err := r.g.AddEdge(a, b); err != nil {
					buildErr = err
					return
				}
			}
		}
	})
	if buildErr != nil {
		return nil, fmt.Errorf("degred: gadget construction: %w", buildErr)
	}

	// Phase 2: original edges between port-owning gadget nodes. Each edge
	// is added once, from the canonical endpoint.
	g.ForEachNode(func(v graph.NodeID) {
		if buildErr != nil {
			return
		}
		for p := 0; p < g.Degree(v); p++ {
			h, err := g.Neighbor(v, p)
			if err != nil {
				buildErr = err
				return
			}
			if h.To < v || (h.To == v && h.ToPort < p) {
				continue // already added from the other side
			}
			from := r.portOwner(v, p)
			to := r.portOwner(h.To, h.ToPort)
			if _, _, err := r.g.AddEdge(from, to); err != nil {
				buildErr = err
				return
			}
		}
	})
	if buildErr != nil {
		return nil, fmt.Errorf("degred: edge wiring: %w", buildErr)
	}
	if err := r.g.Validate(); err != nil {
		return nil, fmt.Errorf("degred: %w", err)
	}
	if !r.g.IsRegular(3) {
		return nil, fmt.Errorf("degred: result is not 3-regular (max degree %d)", r.g.MaxDegree())
	}
	return r, nil
}

// Graph returns the reduced 3-regular multigraph. Callers must treat it as
// read-only.
func (r *Reduced) Graph() *graph.Graph { return r.g }

// Flat returns the compiled CSR snapshot of the reduced graph, including
// the gadget-to-original projection — the shared hot-path artifact every
// router and counter built from this reduction walks. It is built on first
// use and memoized, so one reduction serves any number of engines with a
// single snapshot. Flat returns nil only if compilation fails, which a
// validated reduction cannot provoke; callers treat nil as "use the
// reference engine".
func (r *Reduced) Flat() *flatgraph.Graph {
	r.flatOnce.Do(func() {
		fg, err := flatgraph.Compile(r.g, func(v graph.NodeID) graph.NodeID {
			if o, ok := r.orig[v]; ok {
				return o
			}
			return v
		})
		if err == nil {
			r.flat = fg
		}
	})
	return r.flat
}

// Original returns the original node simulated by gadget node v.
func (r *Reduced) Original(v graph.NodeID) (graph.NodeID, bool) {
	o, ok := r.orig[v]
	return o, ok
}

// Gadget returns the gadget nodes simulating original node v, in cycle
// order (a copy).
func (r *Reduced) Gadget(v graph.NodeID) []graph.NodeID {
	s, ok := r.slots[v]
	if !ok {
		return nil
	}
	out := make([]graph.NodeID, len(s))
	copy(out, s)
	return out
}

// Entry returns the canonical gadget node for original node v — the place
// where a message originating at v enters the reduced graph.
func (r *Reduced) Entry(v graph.NodeID) (graph.NodeID, bool) {
	s, ok := r.slots[v]
	if !ok || len(s) == 0 {
		return 0, false
	}
	return s[0], true
}

// SameOriginal reports whether gadget node v simulates original node o.
func (r *Reduced) SameOriginal(v, o graph.NodeID) bool {
	got, ok := r.orig[v]
	return ok && got == o
}

// portOwner returns the gadget node owning the original port p of original
// node v. Degree ≥ 3 gadgets own port i at slot i; degree-2 gadgets own one
// port per slot; the degree-1 gadget owns its single port.
func (r *Reduced) portOwner(v graph.NodeID, p int) graph.NodeID {
	return r.slots[v][p%len(r.slots[v])]
}
