package flatgraph

import (
	"errors"
	"math/bits"

	"repro/internal/graph"
)

// Errors reported by the walkers. Both indicate misuse or an internal
// invariant violation, never a routing outcome — all bounds the hop loop
// relies on are validated before it starts.
var (
	// ErrNotRegular means a walk was requested on a snapshot that is not
	// 3-regular or with a sequence whose alphabet is not base 3; the flat
	// loops rely on both for stride addressing and branchless mod-3 steps.
	ErrNotRegular = errors.New("flatgraph: walk requires a 3-regular snapshot and a base-3 sequence")
	// ErrUnwound is the defensive guard on the backward loop: the reversed
	// walk consumed its whole index budget without reaching a node of the
	// source — impossible for a well-formed reduction, since the unwind
	// terminates at the start position at the latest.
	ErrUnwound = errors.New("flatgraph: backward walk unwound past the origin")
)

// dirBlock is the direction-prefetch block size: walkers derive this many
// sequence symbols at a time into a stack buffer, amortizing the PRF oracle
// across hops instead of calling it mid-loop.
const dirBlock = 128

// Memory-metering replica. The reference engine charges every handler
// activation for its working registers (route.charge): each of self,
// selfOrig, inPort, degree, and the header index always, plus the direction
// t on stepping activations, at bits.Len64(|v|)+1 bits per register. The
// flat walkers reproduce those sums exactly so the PeakMemoryBits they
// report is bit-for-bit the reference's. On the 3-regular walk the small
// registers collapse to constants: w(deg=3) = 3, w(inPort) = inPort+1 and
// w(t) = t+1 for values in {0,1,2}.

// wordBits is route.charge's per-register accounting: value width plus a
// sign bit.
func wordBits(v int64) int {
	if v < 0 {
		v = -v
	}
	return bits.Len64(uint64(v)) + 1
}

// RouteOutcome reports one completed flat route round, carrying exactly the
// statistics the reference round reports.
type RouteOutcome struct {
	// Success is the verdict: true if the walk reached (a gadget node of)
	// the destination, false if it exhausted the sequence.
	Success bool
	// Hops is the total edge traversals, forward and backward.
	Hops int64
	// DeliveredIndex is the header index at backward delivery — the input
	// to the reference's forward-steps reconstruction.
	DeliveredIndex int64
	// MaxIndex is the largest header index any activation observed, from
	// which the caller derives the reference's MaxHeaderBits.
	MaxIndex int64
	// PeakMemoryBits replicates the reference's per-activation memory
	// metering peak.
	PeakMemoryBits int
}

// RouteWalk runs one full round of Algorithm Route (§3) on the snapshot:
// the forward exploration from the start node's port-0 edge until the
// destination is found or seq is exhausted, then the reversed walk carrying
// the verdict back to the first node simulating src. It is the compiled
// equivalent of the netsim token engine driving route's handler — same
// positions, same hop counts, same verdict, same metering — with no
// allocations and no per-hop error paths.
func (f *Graph) RouteWalk(start int32, src, dst graph.NodeID, seq Seq) (RouteOutcome, error) {
	if !f.regular3 || seq.Base != 3 {
		return RouteOutcome{}, ErrNotRegular
	}
	var (
		out    RouteOutcome
		dirs   [dirBlock]int8
		node   = start
		inPort = int32(0)
		L      = int64(seq.Length)
		i      = int64(1) // index of the next direction to apply
		bBase  = int64(1) // dirs[k] holds T[bBase+k]
		bLen   = int64(0)
		peak   = 0
		hops   = int64(0)
	)
	// Forward phase.
	for {
		act := int(f.memw[node]) + int(inPort) + 4 + wordBits(i)
		if f.orig[node] == dst {
			if act > peak {
				peak = act
			}
			out.Success = true
			break
		}
		if i > L {
			if act > peak {
				peak = act
			}
			break
		}
		if i >= bBase+bLen {
			bBase, bLen = i, dirBlock
			if rem := L - i + 1; rem < bLen {
				bLen = rem
			}
			seq.Fill(dirs[:bLen], bBase)
		}
		t := int32(dirs[i-bBase])
		if s := act + int(t) + 1; s > peak {
			peak = s
		}
		exit := inPort + t
		if exit >= 3 {
			exit -= 3
		}
		h := f.halves[node*3+exit]
		node, inPort = h.To, h.Port
		i++
		hops++
	}
	out.MaxIndex = i

	// Turnaround: the terminal forward activation bounces the message back
	// through its arrival port with the index pointing at the step to undo.
	j := i - 1
	h := f.halves[node*3+inPort]
	node, inPort = h.To, h.Port
	hops++

	// Backward phase: undo steps until any node simulating src is reached.
	bLow := j + 1 // nothing prefetched yet
	for {
		act := int(f.memw[node]) + int(inPort) + 4 + wordBits(j)
		if f.orig[node] == src {
			if act > peak {
				peak = act
			}
			out.DeliveredIndex = j
			break
		}
		if j < 1 {
			return out, ErrUnwound
		}
		if j < bLow {
			bLow = j - dirBlock + 1
			if bLow < 1 {
				bLow = 1
			}
			seq.Fill(dirs[:j-bLow+1], bLow)
		}
		t := int32(dirs[j-bLow])
		if s := act + int(t) + 1; s > peak {
			peak = s
		}
		exit := inPort - t
		if exit < 0 {
			exit += 3
		}
		h := f.halves[node*3+exit]
		node, inPort = h.To, h.Port
		j--
		hops++
	}
	out.Hops = hops
	out.PeakMemoryBits = peak
	return out, nil
}

// BroadcastOutcome reports one completed flat broadcast round.
type BroadcastOutcome struct {
	// Hops is the total edge traversals, forward and backward.
	Hops int64
	// MaxIndex is the largest header index any activation observed.
	MaxIndex int64
	// PeakMemoryBits replicates the reference's memory metering peak.
	PeakMemoryBits int
}

// BroadcastWalk runs one full broadcast round: the complete forward
// exploration (marking every visited node in the dense visited set, which
// must have length NumNodes) followed by the backtracking confirmation to
// the first node simulating src. The marking matches the reference's
// trace-based collection: every position of the forward walk, including the
// start and the turnaround node.
func (f *Graph) BroadcastWalk(start int32, src graph.NodeID, seq Seq, visited []bool) (BroadcastOutcome, error) {
	if !f.regular3 || seq.Base != 3 {
		return BroadcastOutcome{}, ErrNotRegular
	}
	var (
		out    BroadcastOutcome
		dirs   [dirBlock]int8
		node   = start
		inPort = int32(0)
		L      = int64(seq.Length)
		peak   = 0
		hops   = int64(0)
	)
	visited[node] = true
	// Forward phase: exactly L steps — broadcast has no destination check.
	for i := int64(1); i <= L; {
		bLen := int64(dirBlock)
		if rem := L - i + 1; rem < bLen {
			bLen = rem
		}
		seq.Fill(dirs[:bLen], i)
		for k := int64(0); k < bLen; k++ {
			t := int32(dirs[k])
			if s := int(f.memw[node]) + int(inPort) + 4 + wordBits(i+k) + int(t) + 1; s > peak {
				peak = s
			}
			exit := inPort + t
			if exit >= 3 {
				exit -= 3
			}
			h := f.halves[node*3+exit]
			node, inPort = h.To, h.Port
			visited[node] = true
		}
		i += bLen
		hops += bLen
	}
	out.MaxIndex = L + 1
	if act := int(f.memw[node]) + int(inPort) + 4 + wordBits(L+1); act > peak {
		peak = act // turnaround activation
	}

	// Turnaround + backward confirmation, exactly as in RouteWalk.
	j := L
	h := f.halves[node*3+inPort]
	node, inPort = h.To, h.Port
	hops++
	bLow := j + 1
	for {
		act := int(f.memw[node]) + int(inPort) + 4 + wordBits(j)
		if f.orig[node] == src {
			if act > peak {
				peak = act
			}
			break
		}
		if j < 1 {
			return out, ErrUnwound
		}
		if j < bLow {
			bLow = j - dirBlock + 1
			if bLow < 1 {
				bLow = 1
			}
			seq.Fill(dirs[:j-bLow+1], bLow)
		}
		t := int32(dirs[j-bLow])
		if s := act + int(t) + 1; s > peak {
			peak = s
		}
		exit := inPort - t
		if exit < 0 {
			exit += 3
		}
		h := f.halves[node*3+exit]
		node, inPort = h.To, h.Port
		j--
		hops++
	}
	out.Hops = hops
	out.PeakMemoryBits = peak
	return out, nil
}

// CoverWalk walks seq from (start, port 0) to its end, marking every
// visited node in the dense visited set (length NumNodes). If order is
// non-nil, dense indices are appended in first-visit order (starting with
// start) and the grown slice is returned. This is the local simulation
// behind the §4 closure check and the counting walks — no metering, no
// messages.
func (f *Graph) CoverWalk(start int32, seq Seq, visited []bool, order []int32) ([]int32, error) {
	if !f.regular3 || seq.Base != 3 {
		return order, ErrNotRegular
	}
	var dirs [dirBlock]int8
	node, inPort := start, int32(0)
	visited[node] = true
	if order != nil {
		order = append(order, node)
	}
	L := int64(seq.Length)
	for i := int64(1); i <= L; {
		bLen := int64(dirBlock)
		if rem := L - i + 1; rem < bLen {
			bLen = rem
		}
		seq.Fill(dirs[:bLen], i)
		for k := int64(0); k < bLen; k++ {
			t := int32(dirs[k])
			exit := inPort + t
			if exit >= 3 {
				exit -= 3
			}
			h := f.halves[node*3+exit]
			node, inPort = h.To, h.Port
			if !visited[node] {
				visited[node] = true
				if order != nil {
					order = append(order, node)
				}
			}
		}
		i += bLen
	}
	return order, nil
}
