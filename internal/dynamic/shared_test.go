package dynamic

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/netsim"
)

// TestSharedWorldFrozenMatchesPrivate is the multi-tenant correctness
// pin: a world pre-advanced through a deterministic churn history and
// then queried concurrently with a frozen epoch clock must answer every
// query exactly as a private world replaying the same history does —
// verdicts and hop counts both. This is what lets the serving layer hand
// one long-lived world to many clients.
func TestSharedWorldFrozenMatchesPrivate(t *testing.T) {
	g := gen.Torus(5, 5)
	const preEpochs = 10
	mkWorld := func() *World {
		w := NewWorld(g, &EdgeChurn{Seed: 11, PDrop: 0.08, AddRate: 1})
		for i := 0; i < preEpochs; i++ {
			if err := w.Advance(Probe{}); err != nil {
				t.Fatal(err)
			}
		}
		return w
	}
	shared, private := mkWorld(), mkWorld()
	if shared.Version() != private.Version() {
		t.Fatalf("deterministic schedule diverged: versions %d vs %d", shared.Version(), private.Version())
	}

	// Frozen clock: the topology holds still during each query, so runs
	// are reproducible and comparable.
	frozen := Config{Seed: 3, HopsPerEpoch: -1}
	type want struct {
		status netsim.Status
		hops   int64
	}
	wants := make(map[graph.NodeID]want)
	for dst := graph.NodeID(0); dst < 25; dst += 3 {
		res, err := NewRouter(private, frozen).Route(0, dst)
		if err != nil {
			t.Fatalf("private route 0->%d: %v", dst, err)
		}
		wants[dst] = want{res.Status, res.Hops}
	}

	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for dst, w := range wants {
				res, err := NewRouter(shared, frozen).Route(0, dst)
				if err != nil {
					t.Errorf("shared route 0->%d: %v", dst, err)
					return
				}
				if res.Status != w.status || res.Hops != w.hops {
					t.Errorf("shared route 0->%d: status %v hops %d, private says %v/%d",
						dst, res.Status, res.Hops, w.status, w.hops)
					return
				}
			}
		}()
	}
	wg.Wait()
	if shared.Epoch() != preEpochs {
		t.Fatalf("frozen queries advanced the clock: epoch %d", shared.Epoch())
	}
}

// TestSharedWorldConcurrentChurnRouters races many routers over one world
// whose clock is live (each walk advances it), under -race: locking must
// keep the world consistent, and every route must end in a verdict or the
// explicit rounds-exhausted error — never a wrong answer or a panic.
func TestSharedWorldConcurrentChurnRouters(t *testing.T) {
	g := gen.Torus(6, 6)
	w := NewWorld(g, &MarkovLinks{Seed: 9, PDown: 0.05, PUp: 0.5})
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				dst := graph.NodeID((7*c + 5*k) % g.NumNodes())
				res, err := NewRouter(w, Config{Seed: 3, HopsPerEpoch: 16}).Route(0, dst)
				if err != nil {
					if errors.Is(err, ErrRoundsExhausted) {
						continue
					}
					t.Errorf("router %d: %v", c, err)
					return
				}
				if res.Status != netsim.StatusSuccess && res.Status != netsim.StatusFailure {
					t.Errorf("router %d: no verdict: %+v", c, res)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if w.Epoch() == 0 {
		t.Fatal("live shared world never ticked")
	}
	// The world must still compile and serve after the storm.
	if _, _, err := w.Compiled(); err != nil {
		t.Fatalf("post-storm compile: %v", err)
	}
}

// TestSharedWorldConcurrentAdvance checks that explicit epoch advances
// (the /v1/worlds/{id}/advance shape) interleaved with concurrent routes
// are serialized and counted exactly.
func TestSharedWorldConcurrentAdvance(t *testing.T) {
	w := NewWorld(gen.Torus(4, 4), &EdgeChurn{Seed: 2, PDrop: 0.02, AddRate: 0.5})
	const drivers, each = 4, 25
	var wg sync.WaitGroup
	for d := 0; d < drivers; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := w.Advance(Probe{}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Routers read snapshots while the clock spins.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := NewRouter(w, Config{Seed: 3, HopsPerEpoch: -1}).Route(0, 9); err != nil &&
					!errors.Is(err, ErrRoundsExhausted) {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := w.Epoch(); got != drivers*each {
		t.Fatalf("epoch %d after %d advances", got, drivers*each)
	}
}

// TestWorldLockedAccessors sanity-checks the synchronized read surface
// the serving layer uses.
func TestWorldLockedAccessors(t *testing.T) {
	g := gen.Grid(3, 3)
	w := NewWorld(g, nil)
	if !w.HasNode(0) || w.HasNode(99) {
		t.Fatal("HasNode wrong")
	}
	if w.NumNodes() != 9 || w.NumEdges() != g.NumEdges() {
		t.Fatalf("NumNodes/NumEdges: %d/%d", w.NumNodes(), w.NumEdges())
	}
	if err := w.RemoveEdgeBetween(0, 1); err != nil {
		t.Fatal(err)
	}
	if w.NumEdges() != g.NumEdges()-1 {
		t.Fatalf("NumEdges after removal: %d", w.NumEdges())
	}
	if fmt.Sprint(w.Version()) != "1" {
		t.Fatalf("version %d", w.Version())
	}
}
