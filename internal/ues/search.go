package ues

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/prng"
)

// FindVerified searches for an explicit exploration sequence that is
// *certified universal* for the given corpus: it covers every graph from
// every initial edge. When the corpus is the exhaustive enumeration of all
// labeled cubic multigraphs on ≤ n nodes (EnumerateCubicPairings), the
// result is a true universal exploration sequence for that size class in
// the sense of Definition 3 — a concrete finite object of the kind
// Theorem 4 promises asymptotically.
//
// The search draws random candidate sequences of the given length and
// verifies each one; by the probabilistic argument in §2, almost any
// sufficiently long sequence works, so few candidates are needed. It fails
// with ErrNotUniversal after tries candidates.
func FindVerified(corpus []*graph.Graph, length, tries int, seed uint64) (Precomputed, error) {
	if length <= 0 {
		return nil, fmt.Errorf("ues: non-positive candidate length %d", length)
	}
	if tries <= 0 {
		tries = 8
	}
	src := prng.New(seed)
	for try := 0; try < tries; try++ {
		cand := make(Precomputed, length)
		for i := range cand {
			cand[i] = src.Intn(3)
		}
		if err := Verify(cand, corpus); err == nil {
			return cand, nil
		}
	}
	return nil, fmt.Errorf("%w: no certified sequence of length %d in %d tries",
		ErrNotUniversal, length, tries)
}

// MinimalPrefix bisects a verified sequence down to its shortest prefix
// that still verifies against the corpus. The result is a locally minimal
// certificate: the returned prefix verifies, and no shorter prefix of the
// same sequence does.
func MinimalPrefix(seq Precomputed, corpus []*graph.Graph) (Precomputed, error) {
	if err := Verify(seq, corpus); err != nil {
		return nil, fmt.Errorf("ues: minimal prefix of non-verifying sequence: %w", err)
	}
	lo, hi := 0, len(seq) // lo: fails (or trivial), hi: verifies
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if Verify(seq[:mid], corpus) == nil {
			hi = mid
		} else {
			lo = mid
		}
	}
	return seq[:hi], nil
}

// CertifiedSmall returns a certified universal exploration sequence for all
// labeled cubic multigraphs on at most maxN nodes (maxN ∈ {2, 4}),
// minimized to a locally shortest prefix. This is the strongest artifact
// the repository produces about Definition 3: not "covers everything we
// sampled" but "covers everything that exists at this size".
func CertifiedSmall(maxN int, seed uint64) (Precomputed, error) {
	if maxN != 2 && maxN != 4 {
		return nil, fmt.Errorf("ues: exhaustive certification supports maxN 2 or 4, got %d", maxN)
	}
	var corpus []*graph.Graph
	for _, n := range []int{2, 4} {
		if n > maxN {
			break
		}
		gs, err := EnumerateCubicPairings(n)
		if err != nil {
			return nil, err
		}
		corpus = append(corpus, gs...)
	}
	// Empirically, random length ~48 sequences certify for n=2 and length
	// ~384 for n=4; start from a comfortable length.
	length := 64
	if maxN == 4 {
		length = 512
	}
	seq, err := FindVerified(corpus, length, 8, seed)
	if err != nil {
		return nil, err
	}
	return MinimalPrefix(seq, corpus)
}
