package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// envelope is a message in flight in the concurrent engine.
type envelope struct {
	session int64
	inPort  int
	header  Header
	hops    int64
}

// session tracks one in-flight token run.
type session struct {
	results   chan concurrentResult
	headerMax atomic.Int64
}

// Concurrent runs the same token protocol as Engine but with one goroutine
// per node exchanging messages over channels — the protocol executing on an
// actual (in-process) distributed system.
//
// Because handlers are stateless and all routing state lives in message
// headers, *any number of sessions can run concurrently on one network
// with zero coordination*: Run is safe to call from multiple goroutines,
// and messages of different sessions interleave freely through the same
// node goroutines. This is a direct, testable consequence of Theorem 1's
// "intermediate nodes store no information".
//
// The zero value is not usable; construct with NewConcurrent and always
// call Close (it is idempotent) to stop the node goroutines.
type Concurrent struct {
	g       *graph.Graph
	handler Handler
	inboxes map[graph.NodeID]chan envelope
	stop    chan struct{}
	wg      sync.WaitGroup
	closed  atomic.Bool

	maxHops  int64
	sessions sync.Map // int64 -> *session
	nextID   atomic.Int64
}

type concurrentResult struct {
	res *Result
	err error
}

// NewConcurrent spins up one goroutine per node of g. maxHops bounds every
// run (0 means unbounded).
func NewConcurrent(g *graph.Graph, h Handler, maxHops int64) *Concurrent {
	c := &Concurrent{
		g:       g,
		handler: h,
		inboxes: make(map[graph.NodeID]chan envelope, g.NumNodes()),
		stop:    make(chan struct{}),
		maxHops: maxHops,
	}
	g.ForEachNode(func(v graph.NodeID) {
		// Each session is a token protocol (at most one message in flight
		// per session), so a buffer equal to a small multiple of expected
		// concurrent sessions keeps sends non-blocking in practice; the
		// select below remains correct even if a buffer fills.
		c.inboxes[v] = make(chan envelope, 8)
	})
	g.ForEachNode(func(v graph.NodeID) {
		c.wg.Add(1)
		go c.nodeLoop(v)
	})
	return c
}

// nodeLoop is the per-node agent: receive, run the handler, act.
func (c *Concurrent) nodeLoop(self graph.NodeID) {
	defer c.wg.Done()
	inbox := c.inboxes[self]
	for {
		select {
		case <-c.stop:
			return
		case env := <-inbox:
			c.process(self, env)
		}
	}
}

func (c *Concurrent) process(self graph.NodeID, env envelope) {
	sessVal, ok := c.sessions.Load(env.session)
	if !ok {
		return // session abandoned (timeout); drop silently
	}
	sess := sessVal.(*session)
	if bits := int64(env.header.Bits()); bits > sess.headerMax.Load() {
		sess.headerMax.Store(bits)
	}
	mem := NewMemory(0)
	dec, err := c.handler.OnMessage(self, env.inPort, c.g.Degree(self), &env.header, mem)
	if err != nil {
		c.finish(sess, nil, fmt.Errorf("netsim: handler at %d: %w", self, err))
		return
	}
	switch dec.Kind {
	case Deliver, Drop:
		c.finish(sess, &Result{
			Final:         self,
			Delivered:     dec.Kind == Deliver,
			Hops:          env.hops,
			Header:        env.header,
			MaxHeaderBits: int(sess.headerMax.Load()),
		}, nil)
	case Send:
		half, err := c.g.Neighbor(self, dec.OutPort)
		if err != nil {
			c.finish(sess, nil, fmt.Errorf("netsim: send from %d: %w", self, err))
			return
		}
		hops := env.hops + 1
		if c.maxHops > 0 && hops > c.maxHops {
			c.finish(sess, nil, fmt.Errorf("%w: %d hops", ErrHopBudget, c.maxHops))
			return
		}
		next := envelope{session: env.session, inPort: half.ToPort, header: env.header, hops: hops}
		select {
		case c.inboxes[half.To] <- next:
		case <-c.stop:
		}
	default:
		c.finish(sess, nil, ErrNoDecision)
	}
}

func (c *Concurrent) finish(sess *session, res *Result, err error) {
	select {
	case sess.results <- concurrentResult{res: res, err: err}:
	case <-c.stop:
	}
}

// Run injects a message at start and blocks until that session terminates
// or timeout elapses (timeout <= 0 means wait forever). Run is safe to
// call concurrently from multiple goroutines: sessions share the node
// goroutines but have independent results.
func (c *Concurrent) Run(start graph.NodeID, startPort int, h Header, timeout time.Duration) (*Result, error) {
	inbox, ok := c.inboxes[start]
	if !ok {
		return nil, fmt.Errorf("%w: %d", graph.ErrNodeNotFound, start)
	}
	id := c.nextID.Add(1)
	sess := &session{results: make(chan concurrentResult, 1)}
	c.sessions.Store(id, sess)
	defer c.sessions.Delete(id)

	select {
	case inbox <- envelope{session: id, inPort: startPort, header: h}:
	case <-c.stop:
		return nil, fmt.Errorf("netsim: network closed")
	}
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case r := <-sess.results:
		return r.res, r.err
	case <-timer:
		return nil, fmt.Errorf("netsim: run timed out after %v", timeout)
	case <-c.stop:
		return nil, fmt.Errorf("netsim: network closed")
	}
}

// Close stops all node goroutines and waits for them to exit. It is safe to
// call multiple times.
func (c *Concurrent) Close() {
	if c.closed.Swap(true) {
		return
	}
	close(c.stop)
	c.wg.Wait()
}
