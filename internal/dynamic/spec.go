package dynamic

import (
	"errors"
	"fmt"
)

// Spec is a declarative schedule description, the wire/flag form used by
// the adhocd /v1/dynamic endpoint and the churnsim driver. Exactly the
// fields relevant to Kind are consulted.
type Spec struct {
	// Kind selects the schedule: "static", "churn" (Bernoulli edge
	// churn), "markov" (on/off links over the deployed underlay),
	// "waypoint" (random-waypoint mobility), or "adversary" (the
	// next-link cutter).
	Kind string `json:"kind"`
	// Seed drives the schedule's randomness.
	Seed uint64 `json:"seed,omitempty"`
	// PDrop is the per-edge removal probability (churn) per epoch.
	PDrop float64 `json:"p_drop,omitempty"`
	// AddRate is the expected fresh edges per epoch (churn).
	AddRate float64 `json:"add_rate,omitempty"`
	// PDown and PUp are the Markov link transition probabilities.
	PDown float64 `json:"p_down,omitempty"`
	PUp   float64 `json:"p_up,omitempty"`
	// SpeedMin and SpeedMax bound waypoint travel per epoch.
	SpeedMin float64 `json:"speed_min,omitempty"`
	SpeedMax float64 `json:"speed_max,omitempty"`
	// Radius is the waypoint model's unit-disk connectivity radius.
	Radius float64 `json:"radius,omitempty"`
	// Gabriel planarizes the waypoint model's per-epoch topology.
	Gabriel bool `json:"gabriel,omitempty"`
}

// ErrUnknownKind reports an unrecognized schedule kind.
var ErrUnknownKind = errors.New("dynamic: unknown schedule kind")

// Build instantiates the described schedule.
func (s Spec) Build() (Schedule, error) {
	switch s.Kind {
	case "", "static":
		return Static{}, nil
	case "churn":
		return &EdgeChurn{Seed: s.Seed, PDrop: s.PDrop, AddRate: s.AddRate}, nil
	case "markov":
		return &MarkovLinks{Seed: s.Seed, PDown: s.PDown, PUp: s.PUp}, nil
	case "waypoint":
		if s.Radius <= 0 {
			return nil, ErrNoRadius
		}
		return &RandomWaypoint{
			Seed: s.Seed, SpeedMin: s.SpeedMin, SpeedMax: s.SpeedMax,
			Radius: s.Radius, Gabriel: s.Gabriel,
		}, nil
	case "adversary":
		return &LinkCutter{}, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownKind, s.Kind)
	}
}
