package obs

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func TestCounterVecBasic(t *testing.T) {
	v := NewCounterVec("test_requests_total", "help", []string{"network", "verdict"}, 8)
	v.With("net1", "found").Inc()
	v.With("net1", "found").Inc()
	v.With("net2", "unreachable").Add(3)

	if got := v.With("net1", "found").Value(); got != 2 {
		t.Fatalf("net1/found = %d, want 2", got)
	}
	if got := v.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	var b bytes.Buffer
	v.Write(&b)
	want := `test_requests_total{network="net1",verdict="found"} 2
test_requests_total{network="net2",verdict="unreachable"} 3
`
	if b.String() != want {
		t.Fatalf("Write:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestVecCardinalityCap(t *testing.T) {
	v := NewCounterVec("test_capped_total", "help", []string{"id"}, 3)
	for i := 0; i < 10; i++ {
		v.With(fmt.Sprint(i)).Inc()
	}
	if got := v.Len(); got != 4 { // 3 real + other
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := v.Dropped(); got != 7 {
		t.Fatalf("Dropped = %d, want 7", got)
	}
	if got := v.With("other").Value(); got != 7 {
		t.Fatalf("other bucket = %d, want 7", got)
	}
	// Existing children keep working at the cap.
	v.With("0").Inc()
	if got := v.With("0").Value(); got != 2 {
		t.Fatalf("existing child after cap = %d, want 2", got)
	}
	if got := v.Dropped(); got != 7 {
		t.Fatalf("Dropped after existing-child write = %d, want 7", got)
	}
}

// TestVecLabelStorm hammers a capped vector from many goroutines with a
// randomized label stream far wider than the cap, under -race in CI:
// memory must stay bounded (cap + other), every observation must land
// somewhere, and the overflow counter must account for every drop.
func TestVecLabelStorm(t *testing.T) {
	const (
		cap        = 64
		workers    = 8
		perWorker  = 2500
		labelSpace = 10000
	)
	v := NewHistogramVec("test_storm_seconds", "help", []string{"tenant"}, []int64{1, 10, 100}, cap)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				v.With(fmt.Sprintf("t%d", rng.Intn(labelSpace))).Observe(int64(rng.Intn(200)))
			}
		}(int64(w))
	}
	wg.Wait()

	if got := v.Len(); got > cap+1 {
		t.Fatalf("Len = %d, want <= %d (cap + other)", got, cap+1)
	}
	var total int64
	v.children.Range(func(_, c any) bool {
		total += c.(*Histogram).Count()
		return true
	})
	if want := int64(workers * perWorker); total != want {
		t.Fatalf("observations recorded = %d, want %d (none lost)", total, want)
	}
	if v.Dropped() != v.With("other").Count() {
		t.Fatalf("Dropped = %d but other bucket holds %d", v.Dropped(), v.With("other").Count())
	}
	if v.Dropped() == 0 {
		t.Fatal("storm over 10k labels with cap 64 must drop")
	}
}

func TestVecDroppedCounterAutoRegistered(t *testing.T) {
	reg := NewRegistry()
	v := NewCounterVec("test_auto_total", "help", []string{"k"}, 1)
	reg.MustRegister(v)
	v.With("a").Inc()
	v.With("b").Inc() // over cap -> other + drop

	var b bytes.Buffer
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE obs_dropped_series_total counter",
		`obs_dropped_series_total{family="test_auto_total"} 1`,
		`test_auto_total{k="other"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Two capped vecs share the obs_dropped_series_total family.
	reg.MustRegister(NewCounterVec("test_auto2_total", "help", []string{"k"}, 1))
	b.Reset()
	reg.WritePrometheus(&b)
	if errs := Lint(b.String(), false); errs != nil {
		t.Fatalf("lint: %v", errs)
	}
}

func TestVecEscapesLabelValues(t *testing.T) {
	v := NewCounterVec("test_escape_total", "help", []string{"k"}, 4)
	v.With("a\"b\\c\nd").Inc()
	var b bytes.Buffer
	v.Write(&b)
	want := `test_escape_total{k="a\"b\\c\nd"} 1` + "\n"
	if b.String() != want {
		t.Fatalf("Write = %q, want %q", b.String(), want)
	}
}

func TestHistogramVecSharesBounds(t *testing.T) {
	v := NewLatencyHistogramVec("test_lat_seconds", "help", []string{"k"}, 4)
	h := v.With("a")
	h.Observe(2_000) // 2 µs
	if got := h.Count(); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
	var b bytes.Buffer
	v.Write(&b)
	if !strings.Contains(b.String(), `test_lat_seconds_bucket{k="a",le="2.5e-06"} 1`) {
		t.Fatalf("unexpected rendering:\n%s", b.String())
	}
}

func TestHistogramTotals(t *testing.T) {
	h := NewHistogram("test_totals", "help", nil, []int64{10, 100, 1000})
	for _, v := range []int64{5, 50, 500, 5000} {
		h.Observe(v)
	}
	total, above := h.Totals(100)
	if total != 4 || above != 2 {
		t.Fatalf("Totals(100) = (%d, %d), want (4, 2)", total, above)
	}
	total, above = h.Totals(10)
	if total != 4 || above != 3 {
		t.Fatalf("Totals(10) = (%d, %d), want (4, 3)", total, above)
	}
	// Threshold inside a bucket: the whole containing bucket counts bad.
	total, above = h.Totals(60)
	if total != 4 || above != 3 {
		t.Fatalf("Totals(60) = (%d, %d), want (4, 3)", total, above)
	}
}

func BenchmarkCounterVecWith(b *testing.B) {
	v := NewCounterVec("bench_total", "help", []string{"network"}, 64)
	v.With("net1").Inc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.With("net1").Inc()
	}
}

func BenchmarkCounterVecCachedChild(b *testing.B) {
	v := NewCounterVec("bench_cached_total", "help", []string{"network"}, 64)
	c := v.With("net1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
