package registry

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/graph"
)

func gridSpec(rows, cols int, seed uint64) Spec {
	return Spec{Kind: "grid", Rows: rows, Cols: cols, Seed: seed}
}

// TestObtainCompilesAndCaches checks the basic hit/miss lifecycle and that
// the compiled engine actually routes.
func TestObtainCompilesAndCaches(t *testing.T) {
	r := New(Config{Capacity: 4})
	ent, cached, err := r.Obtain(gridSpec(4, 4, 7))
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first Obtain reported cached")
	}
	if ent.Eng.Graph().NumNodes() != 16 {
		t.Fatalf("compiled %d nodes, want 16", ent.Eng.Graph().NumNodes())
	}
	res, err := ent.Eng.Route(0, 15)
	if err != nil || res.Status.String() != "success" {
		t.Fatalf("route on compiled engine: %+v err %v", res, err)
	}

	again, cached, err := r.Obtain(gridSpec(4, 4, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !cached || again != ent {
		t.Fatalf("second Obtain: cached=%v same=%v", cached, again == ent)
	}
	got, ok := r.Get(ent.ID)
	if !ok || got != ent {
		t.Fatalf("Get(%s): ok=%v", ent.ID, ok)
	}
	if _, ok := r.Get("net-nope"); ok {
		t.Fatal("Get of unknown ID succeeded")
	}
	s := r.Stats()
	if s.Compiles != 1 || s.Misses != 1 || s.Hits != 2 || s.Size != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestSpecIdentity checks that the cache key separates what must be
// separate (topology, protocol seed) and joins what must join.
func TestSpecIdentity(t *testing.T) {
	distinct := []Spec{
		gridSpec(4, 4, 7),
		gridSpec(4, 4, 8), // different protocol seed
		gridSpec(4, 5, 7), // different shape
		{Kind: "torus", Rows: 4, Cols: 4, Seed: 7},
		{Kind: "udg2d", N: 16, Radius: 0.4, GenSeed: 1, Seed: 7},
		{Kind: "edges", Edges: [][2]int64{{0, 1}, {1, 2}}, Seed: 7},
		{Kind: "edges", Edges: [][2]int64{{0, 1}, {1, 3}}, Seed: 7},
		{Kind: "edges", Edges: [][2]int64{{0, 1}, {1, 2}}, Nodes: 9, Seed: 7},
	}
	seen := make(map[string]int)
	for i, s := range distinct {
		id := s.ID()
		if j, dup := seen[id]; dup {
			t.Fatalf("specs %d and %d share ID %s", i, j, id)
		}
		seen[id] = i
	}
	if gridSpec(4, 4, 7).ID() != gridSpec(4, 4, 7).ID() {
		t.Fatal("equal specs produced different IDs")
	}
}

// TestSpecValidation checks the size and shape gates.
func TestSpecValidation(t *testing.T) {
	r := New(Config{Capacity: 2, MaxNodes: 64, MaxEdges: 32})
	cases := []struct {
		spec Spec
		want error
	}{
		{Spec{Kind: "grid", Rows: 100, Cols: 100, Seed: 1}, ErrTooLarge},
		// rows*cols wraps around int (2^62 * 4 = 2^64 ≡ 0): must still be
		// refused, not passed to the generator to panic.
		{Spec{Kind: "grid", Rows: 1 << 62, Cols: 4}, ErrTooLarge},
		{Spec{Kind: "torus", Rows: 1 << 62, Cols: 4}, ErrTooLarge},
		{Spec{Kind: "edges", Edges: [][2]int64{{0, 1000000}}}, ErrTooLarge},
		// int(MaxInt64)+1 wraps negative: the id itself must be capped.
		{Spec{Kind: "edges", Edges: [][2]int64{{0, 1<<63 - 1}}}, ErrTooLarge},
		{Spec{Kind: "edges", Edges: make([][2]int64, 33)}, ErrTooLarge},
		{Spec{Kind: "grid", Rows: 0, Cols: 4}, ErrBadSpec},
		{Spec{Kind: "udg2d", N: 10}, ErrBadSpec}, // no radius
		{Spec{Kind: "edges", Edges: [][2]int64{{-1, 0}}}, ErrBadSpec},
		{Spec{Kind: "wormhole", N: 4}, ErrBadSpec},
		{Spec{}, ErrBadSpec},
	}
	for _, c := range cases {
		if _, _, err := r.Obtain(c.spec); !errors.Is(err, c.want) {
			t.Fatalf("Obtain(%+v) err = %v, want %v", c.spec, err, c.want)
		}
	}
	if s := r.Stats(); s.Compiles != 0 || s.Size != 0 {
		t.Fatalf("rejected specs reached the compiler: %+v", s)
	}
}

// TestBuiltEdgeCap checks the authoritative post-build gate: a geometric
// spec whose estimate squeaks past validate but whose built graph blows
// the edge limit is refused before the engine compile.
func TestBuiltEdgeCap(t *testing.T) {
	r := New(Config{Capacity: 2, MaxNodes: 256, MaxEdges: 64})
	// radius 1.5 over the unit square connects everything: ~n^2/2 edges.
	if _, _, err := r.Obtain(Spec{Kind: "udg2d", N: 40, Radius: 1.5, GenSeed: 1}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("dense udg err = %v, want ErrTooLarge", err)
	}
	if s := r.Stats(); s.Size != 0 {
		t.Fatalf("rejected build cached: %+v", s)
	}
}

// TestEdgeSpecBuild checks the explicit edge-list kind end to end,
// including isolated forced nodes.
func TestEdgeSpecBuild(t *testing.T) {
	r := New(Config{})
	ent, _, err := r.Obtain(Spec{
		Kind:  "edges",
		Edges: [][2]int64{{0, 1}, {1, 2}, {2, 0}},
		Nodes: 5, // nodes 3,4 isolated
		Seed:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := ent.Eng.Graph()
	if g.NumNodes() != 5 || g.NumEdges() != 3 {
		t.Fatalf("edge spec built %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	res, err := ent.Eng.Route(0, 2)
	if err != nil || res.Status.String() != "success" {
		t.Fatalf("route in triangle: %+v err %v", res, err)
	}
	res, err = ent.Eng.Route(0, 4)
	if err != nil || res.Status.String() != "failure" {
		t.Fatalf("route to isolated node: %+v err %v", res, err)
	}
}

// TestLRUEviction checks the bound: least recently used falls out first,
// and touching an entry protects it.
func TestLRUEviction(t *testing.T) {
	r := New(Config{Capacity: 2})
	a, _, err := r.Obtain(gridSpec(3, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := r.Obtain(gridSpec(3, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Touch a so b is the LRU.
	if _, ok := r.Get(a.ID); !ok {
		t.Fatal("a missing before eviction")
	}
	c, _, err := r.Obtain(gridSpec(3, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get(b.ID); ok {
		t.Fatal("LRU entry b survived past capacity")
	}
	if _, ok := r.Get(a.ID); !ok {
		t.Fatal("recently used entry a was evicted")
	}
	if _, ok := r.Get(c.ID); !ok {
		t.Fatal("fresh entry c missing")
	}
	s := r.Stats()
	if s.Evictions != 1 || s.Size != 2 {
		t.Fatalf("stats after eviction: %+v", s)
	}
	// The evicted engine still works for holders of the old reference.
	if res, err := b.Eng.Route(0, 8); err != nil || res.Status.String() != "success" {
		t.Fatalf("evicted engine: %+v err %v", res, err)
	}
	// Re-obtaining b recompiles under the same ID.
	b2, cached, err := r.Obtain(gridSpec(3, 3, 2))
	if err != nil || cached {
		t.Fatalf("re-obtain after eviction: cached=%v err=%v", cached, err)
	}
	if b2.ID != b.ID {
		t.Fatalf("recompiled ID %s != original %s", b2.ID, b.ID)
	}
}

// TestSingleflight launches many concurrent Obtains of one uncached spec
// and asserts exactly one compile happened and everyone shares the entry.
func TestSingleflight(t *testing.T) {
	r := New(Config{Capacity: 4})
	const clients = 32
	var wg sync.WaitGroup
	ents := make([]*Entry, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A non-trivial compile so the flight window is real.
			ents[i], _, errs[i] = r.Obtain(gridSpec(12, 12, 99))
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if ents[i] != ents[0] {
			t.Fatalf("client %d got a different entry", i)
		}
	}
	s := r.Stats()
	if s.Compiles != 1 {
		t.Fatalf("%d compiles for one spec under concurrency, want 1 (stats %+v)", s.Compiles, s)
	}
	if s.Dedups+1 != s.Misses {
		t.Fatalf("dedup accounting off: %+v", s)
	}
}

// TestConcurrentMixedTraffic races obtains of several specs against gets
// and evictions — run under -race in CI.
func TestConcurrentMixedTraffic(t *testing.T) {
	r := New(Config{Capacity: 2})
	specs := []Spec{gridSpec(3, 3, 1), gridSpec(3, 3, 2), gridSpec(3, 3, 3), gridSpec(4, 3, 1)}
	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < 8; k++ {
				spec := specs[(c+k)%len(specs)]
				ent, _, err := r.Obtain(spec)
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if res, err := ent.Eng.Route(0, graph.NodeID(ent.Eng.Graph().NumNodes()-1)); err != nil || res == nil {
					t.Errorf("client %d route: %v", c, err)
					return
				}
				r.Get(spec.ID())
				r.List()
				r.Stats()
			}
		}(c)
	}
	wg.Wait()
	if n := r.Len(); n > 2 {
		t.Fatalf("capacity 2 exceeded: %d resident", n)
	}
}
