package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/dynamic"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/registry"
)

// newTestServer builds a server over a fresh 4x4-torus engine with the
// given serving config, returning both so tests can reach the engine.
func newTestServer(t *testing.T, cfg serverConfig) (*httptest.Server, *server, *engine.Engine) {
	t.Helper()
	eng, err := engine.Compile(gen.Torus(4, 4), engine.Config{Seed: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(eng, nil, "test 4x4 torus", cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv, eng
}

func do(t *testing.T, ts *httptest.Server, method, path, body string, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

// TestBodyLimit checks the 413 surface: a body over -max-body is refused
// before any JSON work, on every POST endpoint shape.
func TestBodyLimit(t *testing.T) {
	ts, _, _ := newTestServer(t, serverConfig{maxBody: 128})
	big := fmt.Sprintf(`{"src":0,"dst":1,"with_path":%s}`, strings.Repeat(" ", 200)+"false")
	var e errorBody
	if code := do(t, ts, "POST", "/v1/route", big, &e); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: code %d, want 413 (%+v)", code, e)
	}
	if !strings.Contains(e.Error, "128") {
		t.Fatalf("413 error does not name the limit: %q", e.Error)
	}
	// Under the cap still works.
	var reply routeReply
	if code := do(t, ts, "POST", "/v1/route", `{"src":0,"dst":5}`, &reply); code != http.StatusOK {
		t.Fatalf("small body: code %d", code)
	}
	// The networks endpoint is covered by the same middleware.
	bigSpec := `{"kind":"edges","edges":[` + strings.Repeat("[0,1],", 40) + `[0,1]]}`
	if code := do(t, ts, "POST", "/v1/networks", bigSpec, nil); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized spec body: code %d, want 413", code)
	}
}

// TestTrailingGarbage checks that concatenated or trailing payloads are
// rejected instead of silently dropped after the first JSON value.
func TestTrailingGarbage(t *testing.T) {
	ts, _, _ := newTestServer(t, serverConfig{})
	cases := []string{
		`{"src":0,"dst":5}{"src":9,"dst":9}`, // second message would be ignored
		`{"src":0,"dst":5} true`,
		`{"src":0,"dst":5} garbage`,
	}
	for _, body := range cases {
		var e errorBody
		if code := do(t, ts, "POST", "/v1/route", body, &e); code != http.StatusBadRequest {
			t.Fatalf("trailing data %q: code %d, want 400 (%+v)", body, code, e)
		}
	}
	// Trailing whitespace/newlines are fine.
	if code := do(t, ts, "POST", "/v1/route", "{\"src\":0,\"dst\":5}\n\t ", nil); code != http.StatusOK {
		t.Fatal("trailing whitespace rejected")
	}
}

// TestBatchCap checks the server-side member cap on both batch shapes.
func TestBatchCap(t *testing.T) {
	ts, _, _ := newTestServer(t, serverConfig{maxBatch: 4})
	var e errorBody
	if code := do(t, ts, "POST", "/v1/batch",
		`{"pairs":[[0,1],[0,2],[0,3],[0,4],[0,5]]}`, &e); code != http.StatusBadRequest {
		t.Fatalf("over-cap pairs: code %d, want 400", code)
	}
	if !strings.Contains(e.Error, "limit 4") {
		t.Fatalf("cap error does not name the limit: %q", e.Error)
	}
	if code := do(t, ts, "POST", "/v1/batch",
		`{"src":0,"targets":[1,2,3,4,5]}`, nil); code != http.StatusBadRequest {
		t.Fatalf("over-cap targets: code %d, want 400", code)
	}
	var reply batchReply
	if code := do(t, ts, "POST", "/v1/batch", `{"pairs":[[0,1],[0,2],[0,3],[0,4]]}`, &reply); code != http.StatusOK {
		t.Fatalf("at-cap batch: code %d", code)
	}
	if reply.Succeeded != 4 {
		t.Fatalf("at-cap batch: %+v", reply)
	}
}

// TestAdmissionControl checks the 429 surface deterministically by
// saturating the admission semaphore directly, and that liveness bypasses
// it.
func TestAdmissionControl(t *testing.T) {
	ts, srv, _ := newTestServer(t, serverConfig{maxInflight: 1})
	srv.inflight <- struct{}{} // one request permanently "in flight"
	var e errorBody
	resp, err := http.Post(ts.URL+"/v1/route", "application/json",
		bytes.NewReader([]byte(`{"src":0,"dst":5}`)))
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server: code %d, want 429 (%+v)", resp.StatusCode, e)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Liveness still answers.
	if code := do(t, ts, "GET", "/healthz", "", nil); code != http.StatusOK {
		t.Fatalf("healthz under pressure: code %d", code)
	}
	// Scrapes too: monitoring must not go blind during the overload it
	// exists to observe.
	if code := do(t, ts, "GET", "/metrics", "", nil); code != http.StatusOK {
		t.Fatalf("metrics under pressure: code %d", code)
	}
	// Releasing the slot restores service.
	<-srv.inflight
	if code := do(t, ts, "POST", "/v1/route", `{"src":0,"dst":5}`, nil); code != http.StatusOK {
		t.Fatalf("after release: code %d", code)
	}
}

// TestNetworkRegistryEndpoints walks the multi-network lifecycle:
// idempotent creation, singleflight-deduped concurrent creation, serving
// two distinct networks concurrently, and LRU eviction.
func TestNetworkRegistryEndpoints(t *testing.T) {
	ts, _, _ := newTestServer(t, serverConfig{registry: registry.Config{Capacity: 2}})

	var grid networkCreateReply
	if code := do(t, ts, "POST", "/v1/networks",
		`{"kind":"grid","rows":6,"cols":6,"seed":7}`, &grid); code != http.StatusCreated {
		t.Fatalf("create grid: code %d", code)
	}
	if grid.Cached || grid.Nodes != 36 || grid.ID == "" {
		t.Fatalf("create grid reply: %+v", grid)
	}
	var again networkCreateReply
	if code := do(t, ts, "POST", "/v1/networks",
		`{"kind":"grid","rows":6,"cols":6,"seed":7}`, &again); code != http.StatusOK {
		t.Fatalf("re-create grid: code %d", code)
	}
	if !again.Cached || again.ID != grid.ID {
		t.Fatalf("re-create not idempotent: %+v vs %+v", again, grid)
	}

	var ring networkCreateReply
	if code := do(t, ts, "POST", "/v1/networks",
		`{"kind":"cycle","n":12,"seed":7}`, &ring); code != http.StatusCreated {
		t.Fatalf("create cycle: code %d", code)
	}
	if ring.ID == grid.ID {
		t.Fatal("distinct specs share an ID")
	}

	// Serve both tenants concurrently: grid routes 0->35, ring routes
	// 0->6; each must answer on its own topology.
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			id, dst := grid.ID, 35
			if c%2 == 1 {
				id, dst = ring.ID, 6
			}
			var reply routeReply
			code := do(t, ts, "POST", "/v1/networks/"+id+"/route",
				fmt.Sprintf(`{"src":0,"dst":%d}`, dst), &reply)
			if code != http.StatusOK || reply.Status != "success" {
				t.Errorf("tenant %s route: code %d reply %+v", id, code, reply)
			}
		}(c)
	}
	wg.Wait()

	// Tenant batch endpoint.
	var breply batchReply
	if code := do(t, ts, "POST", "/v1/networks/"+grid.ID+"/batch",
		`{"src":0,"targets":[1,2,3]}`, &breply); code != http.StatusOK || breply.Succeeded != 3 {
		t.Fatalf("tenant batch: code %d reply %+v", code, breply)
	}

	// Info + list.
	var info networkInfo
	if code := do(t, ts, "GET", "/v1/networks/"+grid.ID, "", &info); code != http.StatusOK || info.Nodes != 36 {
		t.Fatalf("network info: code %d %+v", code, info)
	}
	var list struct {
		Networks []networkInfo  `json:"networks"`
		Stats    registry.Stats `json:"stats"`
	}
	if code := do(t, ts, "GET", "/v1/networks", "", &list); code != http.StatusOK || len(list.Networks) != 2 {
		t.Fatalf("network list: code %d %+v", code, list)
	}

	// Error surface.
	if code := do(t, ts, "POST", "/v1/networks", `{"kind":"wormhole"}`, nil); code != http.StatusBadRequest {
		t.Fatalf("bad kind: code %d, want 400", code)
	}
	if code := do(t, ts, "POST", "/v1/networks",
		`{"kind":"grid","rows":1000,"cols":1000}`, nil); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized spec: code %d, want 413", code)
	}
	if code := do(t, ts, "POST", "/v1/networks/net-nope/route", `{"src":0,"dst":1}`, nil); code != http.StatusNotFound {
		t.Fatalf("unknown tenant: code %d, want 404", code)
	}

	// Capacity 2: a third network evicts the LRU (the grid was touched
	// most recently by the info call above — create order makes ring
	// colder... touch ring, then the grid is the victim).
	do(t, ts, "GET", "/v1/networks/"+ring.ID, "", nil)
	var third networkCreateReply
	if code := do(t, ts, "POST", "/v1/networks",
		`{"kind":"torus","rows":3,"cols":4,"seed":1}`, &third); code != http.StatusCreated {
		t.Fatalf("third network: code %d", code)
	}
	if code := do(t, ts, "POST", "/v1/networks/"+grid.ID+"/route", `{"src":0,"dst":1}`, nil); code != http.StatusNotFound {
		t.Fatalf("evicted tenant still routable: code %d, want 404", code)
	}
	// Re-registering revives it under the same ID.
	var revived networkCreateReply
	if code := do(t, ts, "POST", "/v1/networks",
		`{"kind":"grid","rows":6,"cols":6,"seed":7}`, &revived); code != http.StatusCreated || revived.ID != grid.ID {
		t.Fatalf("revive: code %d id %s want %s", code, revived.ID, grid.ID)
	}
}

// TestNetworkCreateSingleflight fires concurrent creates of one uncached
// spec and asserts the registry compiled exactly once.
func TestNetworkCreateSingleflight(t *testing.T) {
	ts, srv, _ := newTestServer(t, serverConfig{})
	var wg sync.WaitGroup
	ids := make([]string, 16)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var reply networkCreateReply
			if code := do(t, ts, "POST", "/v1/networks",
				`{"kind":"grid","rows":12,"cols":12,"seed":42}`, &reply); code != http.StatusCreated && code != http.StatusOK {
				t.Errorf("client %d: code %d", i, code)
				return
			}
			ids[i] = reply.ID
		}(i)
	}
	wg.Wait()
	for i, id := range ids {
		if id != ids[0] {
			t.Fatalf("client %d got ID %s, client 0 got %s", i, id, ids[0])
		}
	}
	if s := srv.reg.Stats(); s.Compiles != 1 {
		t.Fatalf("%d compiles for one concurrent spec, want 1 (%+v)", s.Compiles, s)
	}
}

// TestWorldEndpoints walks the shared-world lifecycle and pins the
// acceptance property: a pre-advanced shared world answers concurrent
// frozen-clock queries exactly as an equivalent private world does.
func TestWorldEndpoints(t *testing.T) {
	ts, _, eng := newTestServer(t, serverConfig{})

	var info worldInfo
	if code := do(t, ts, "POST", "/v1/worlds",
		`{"name":"sweep","schedule":{"kind":"churn","p_drop":0.08,"add_rate":1,"seed":11}}`, &info); code != http.StatusCreated {
		t.Fatalf("create world: code %d", code)
	}
	if info.ID != "sweep" || info.Epoch != 0 {
		t.Fatalf("create world reply: %+v", info)
	}

	// Pre-advance the scenario 10 epochs.
	if code := do(t, ts, "POST", "/v1/worlds/sweep/advance", `{"epochs":10}`, &info); code != http.StatusOK {
		t.Fatalf("advance: code %d", code)
	}
	if info.Epoch != 10 {
		t.Fatalf("advance reply: %+v", info)
	}

	// Private-world oracle: same engine artifacts, same deterministic
	// schedule, same 10 epochs, frozen-clock routes.
	private := eng.NewWorld(&dynamic.EdgeChurn{Seed: 11, PDrop: 0.08, AddRate: 1})
	for i := 0; i < 10; i++ {
		if err := private.Advance(dynamic.Probe{}); err != nil {
			t.Fatal(err)
		}
	}
	type want struct {
		status string
		hops   int64
	}
	wants := make(map[int]want)
	for dst := 1; dst < 16; dst += 2 {
		res, err := eng.RouteDynamic(private, 0, graph.NodeID(dst), dynamic.Config{HopsPerEpoch: -1})
		if err != nil {
			t.Fatalf("private 0->%d: %v", dst, err)
		}
		if res.Status != netsim.StatusSuccess && res.Status != netsim.StatusFailure {
			t.Fatalf("private 0->%d: no verdict", dst)
		}
		wants[dst] = want{res.Status.String(), res.Hops}
	}

	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for dst, wnt := range wants {
				var reply dynamicReply
				code := do(t, ts, "POST", "/v1/worlds/sweep/route",
					fmt.Sprintf(`{"src":0,"dst":%d,"hops_per_epoch":-1}`, dst), &reply)
				if code != http.StatusOK {
					t.Errorf("shared 0->%d: code %d", dst, code)
					return
				}
				if reply.Status != wnt.status || reply.Hops != wnt.hops {
					t.Errorf("shared 0->%d: %s/%d hops, private says %s/%d",
						dst, reply.Status, reply.Hops, wnt.status, wnt.hops)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Frozen queries must not have ticked the shared clock.
	if code := do(t, ts, "GET", "/v1/worlds/sweep", "", &info); code != http.StatusOK || info.Epoch != 10 {
		t.Fatalf("world info after frozen queries: code %d %+v", code, info)
	}

	// Listing, duplicate, deletion, and the error surface.
	var list struct {
		Worlds []worldInfo `json:"worlds"`
	}
	if code := do(t, ts, "GET", "/v1/worlds", "", &list); code != http.StatusOK || len(list.Worlds) != 1 {
		t.Fatalf("world list: code %d %+v", code, list)
	}
	if code := do(t, ts, "POST", "/v1/worlds", `{"name":"sweep","schedule":{"kind":"static"}}`, nil); code != http.StatusConflict {
		t.Fatalf("duplicate world: code %d, want 409", code)
	}
	if code := do(t, ts, "POST", "/v1/worlds", `{"name":"bad name!","schedule":{"kind":"static"}}`, nil); code != http.StatusBadRequest {
		t.Fatalf("bad world name: code %d, want 400", code)
	}
	if code := do(t, ts, "POST", "/v1/worlds", `{"schedule":{"kind":"wormhole"}}`, nil); code != http.StatusBadRequest {
		t.Fatalf("bad schedule: code %d, want 400", code)
	}
	if code := do(t, ts, "POST", "/v1/worlds/sweep/advance", `{"epochs":999999}`, nil); code != http.StatusBadRequest {
		t.Fatalf("oversized advance: code %d, want 400", code)
	}
	if code := do(t, ts, "POST", "/v1/worlds/nope/route", `{"src":0,"dst":1}`, nil); code != http.StatusNotFound {
		t.Fatalf("unknown world: code %d, want 404", code)
	}
	if code := do(t, ts, "DELETE", "/v1/worlds/sweep", "", nil); code != http.StatusOK {
		t.Fatalf("delete world: code %d", code)
	}
	if code := do(t, ts, "GET", "/v1/worlds/sweep", "", nil); code != http.StatusNotFound {
		t.Fatalf("deleted world still present: code %d", code)
	}
}

// TestWorldCapacityAndTenantWorlds checks the world bound (429) and a
// world seeded from a registry network rather than the boot network.
func TestWorldCapacityAndTenantWorlds(t *testing.T) {
	ts, _, _ := newTestServer(t, serverConfig{maxWorlds: 1})

	var net networkCreateReply
	if code := do(t, ts, "POST", "/v1/networks",
		`{"kind":"grid","rows":5,"cols":5,"seed":2}`, &net); code != http.StatusCreated {
		t.Fatalf("tenant network: code %d", code)
	}
	var info worldInfo
	if code := do(t, ts, "POST", "/v1/worlds",
		fmt.Sprintf(`{"network_id":%q,"schedule":{"kind":"static"}}`, net.ID), &info); code != http.StatusCreated {
		t.Fatalf("tenant world: code %d", code)
	}
	if info.NetworkID != net.ID {
		t.Fatalf("tenant world info: %+v", info)
	}
	// Routes run on the tenant topology (5x5 grid: node 24 exists).
	var reply dynamicReply
	if code := do(t, ts, "POST", "/v1/worlds/"+info.ID+"/route",
		`{"src":0,"dst":24,"hops_per_epoch":-1}`, &reply); code != http.StatusOK || reply.Status != "success" {
		t.Fatalf("tenant world route: code %d %+v", code, reply)
	}
	// Capacity 1: the next create is refused with 429.
	if code := do(t, ts, "POST", "/v1/worlds", `{"schedule":{"kind":"static"}}`, nil); code != http.StatusTooManyRequests {
		t.Fatalf("world over capacity: code %d, want 429", code)
	}
	// A world from an unknown network is 404.
	if code := do(t, ts, "POST", "/v1/worlds",
		`{"network_id":"net-nope","schedule":{"kind":"static"}}`, nil); code != http.StatusNotFound {
		t.Fatalf("world on unknown network: code %d, want 404", code)
	}
}
