package degred

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ues"
)

// TestGadgetExhaustiveDegrees checks the Figure 1 construction for every
// degree class 0..8 in one graph: a hub of each degree built from stars.
func TestGadgetExhaustiveDegrees(t *testing.T) {
	for d := 0; d <= 8; d++ {
		t.Run(map[bool]string{true: "degree-"}[true]+string(rune('0'+d)), func(t *testing.T) {
			g := graph.New()
			g.EnsureNode(0)
			for i := 1; i <= d; i++ {
				g.EnsureNode(graph.NodeID(i))
				if _, _, err := g.AddEdge(0, graph.NodeID(i)); err != nil {
					t.Fatal(err)
				}
			}
			r, err := Reduce(g)
			if err != nil {
				t.Fatal(err)
			}
			if !r.Graph().IsRegular(3) {
				t.Fatalf("degree %d: not 3-regular", d)
			}
			wantGadget := d
			switch {
			case d == 0:
				wantGadget = 2 // theta
			case d == 1:
				wantGadget = 1 // self-loop node
			case d == 2:
				wantGadget = 2 // parallel pair
			}
			if got := len(r.Gadget(0)); got != wantGadget {
				t.Fatalf("degree %d: gadget size %d, want %d", d, got, wantGadget)
			}
			if len(g.Components()) != len(r.Graph().Components()) {
				t.Fatalf("degree %d: components changed", d)
			}
		})
	}
}

// TestReducedWalkProjectsToOriginal: an exploration walk on G′ visits
// gadget nodes whose originals form a connected progression — every time
// the original changes, the two originals are adjacent in G.
func TestReducedWalkProjectsToOriginal(t *testing.T) {
	g := gen.Grid(4, 4)
	r, err := Reduce(g)
	if err != nil {
		t.Fatal(err)
	}
	gp := r.Graph()
	seq := &ues.Pseudorandom{Seed: 5, N: gp.NumNodes(), Base: 3}
	start, _ := r.Entry(0)
	trace, err := ues.Trace(gp, start, seq, 2000)
	if err != nil {
		t.Fatal(err)
	}
	prev, _ := r.Original(trace[0].Node)
	for i := 1; i < len(trace); i++ {
		cur, ok := r.Original(trace[i].Node)
		if !ok {
			t.Fatalf("gadget node %d has no original", trace[i].Node)
		}
		if cur != prev && !g.HasEdge(prev, cur) {
			t.Fatalf("walk jumped between non-adjacent originals %d -> %d", prev, cur)
		}
		prev = cur
	}
}

// TestReduceEntryIsFirstSlot verifies the canonical entry point contract.
func TestReduceEntryIsFirstSlot(t *testing.T) {
	g := gen.Star(5)
	r, err := Reduce(g)
	if err != nil {
		t.Fatal(err)
	}
	g.ForEachNode(func(v graph.NodeID) {
		e, ok := r.Entry(v)
		if !ok {
			t.Fatalf("no entry for %d", v)
		}
		if slots := r.Gadget(v); slots[0] != e {
			t.Fatalf("entry of %d is %d, want first slot %d", v, e, slots[0])
		}
	})
}

// TestReduceGadgetInternalConnectivity: each gadget is internally connected
// (a message can circulate inside a node's simulated cycle).
func TestReduceGadgetInternalConnectivity(t *testing.T) {
	g := gen.Complete(6) // degree 5 gadgets
	r, err := Reduce(g)
	if err != nil {
		t.Fatal(err)
	}
	gp := r.Graph()
	g.ForEachNode(func(v graph.NodeID) {
		slots := r.Gadget(v)
		inGadget := make(map[graph.NodeID]bool, len(slots))
		for _, s := range slots {
			inGadget[s] = true
		}
		// BFS within the gadget only.
		visited := map[graph.NodeID]bool{slots[0]: true}
		queue := []graph.NodeID{slots[0]}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for p := 0; p < gp.Degree(x); p++ {
				h, err := gp.Neighbor(x, p)
				if err != nil {
					t.Fatal(err)
				}
				if inGadget[h.To] && !visited[h.To] {
					visited[h.To] = true
					queue = append(queue, h.To)
				}
			}
		}
		if len(visited) != len(slots) {
			t.Fatalf("gadget of %d not internally connected: %d/%d reachable",
				v, len(visited), len(slots))
		}
	})
}
