package netsim

import (
	"fmt"

	"repro/internal/graph"
)

// Stepper advances a token run one hop at a time. It exists for the
// Corollary 2 composition, which interleaves two routing processes
// step-for-step and stops as soon as either terminates.
type Stepper struct {
	e       *Engine
	at      graph.NodeID
	inPort  int
	header  Header
	maxHops int64
	res     *Result
	done    bool
	err     error
}

// Stepper returns a manual-advance run. Semantics match Run: the first
// Step performs the first handler activation.
func (e *Engine) Stepper(start graph.NodeID, startPort int, h Header, maxHops int64) (*Stepper, error) {
	if !e.g.HasNode(start) {
		return nil, fmt.Errorf("%w: %d", graph.ErrNodeNotFound, start)
	}
	return &Stepper{
		e:       e,
		at:      start,
		inPort:  startPort,
		header:  h,
		maxHops: maxHops,
		res:     &Result{Final: start},
	}, nil
}

// Done reports whether the run has terminated.
func (s *Stepper) Done() bool { return s.done }

// Header returns the message header as it stands right now — the complete
// routing state of the in-flight run. Callers that migrate a run onto a new
// topology snapshot (the dynamic subsystem) carry this header into a fresh
// Stepper; nothing else needs to survive the migration, which is the
// paper's statelessness made operational.
func (s *Stepper) Header() Header { return s.header }

// At returns the current position: the node holding the message and the
// port it arrived on.
func (s *Stepper) At() (graph.NodeID, int) { return s.at, s.inPort }

// Result returns the result so far (final once Done).
func (s *Stepper) Result() *Result { return s.res }

// Err returns the terminal error, if any.
func (s *Stepper) Err() error { return s.err }

// Step performs one handler activation and, if the handler forwards the
// message, one hop. It returns true when the run has terminated (delivered,
// dropped, errored, or out of hop budget).
func (s *Stepper) Step() bool {
	if s.done {
		return true
	}
	e := s.e
	if bits := s.header.Bits(); bits > s.res.MaxHeaderBits {
		s.res.MaxHeaderBits = bits
	}
	if e.trace != nil {
		e.trace(s.res.Hops, s.at, s.inPort, s.header)
	}
	e.budget.Reset()
	dec, err := e.handler.OnMessage(s.at, s.inPort, e.g.Degree(s.at), &s.header, e.budget)
	if p := e.budget.Peak(); p > s.res.PeakMemoryBits {
		s.res.PeakMemoryBits = p
	}
	if err != nil {
		s.fail(fmt.Errorf("netsim: handler at %d: %w", s.at, err))
		return true
	}
	switch dec.Kind {
	case Deliver:
		s.res.Final, s.res.Delivered, s.res.Header = s.at, true, s.header
		s.done = true
	case Drop:
		s.res.Final, s.res.Header = s.at, s.header
		s.done = true
	case Send:
		half, err := e.g.Neighbor(s.at, dec.OutPort)
		if err != nil {
			s.fail(fmt.Errorf("netsim: send from %d: %w", s.at, err))
			return true
		}
		s.at, s.inPort = half.To, half.ToPort
		s.res.Hops++
		if s.maxHops > 0 && s.res.Hops > s.maxHops {
			s.fail(fmt.Errorf("%w: %d hops", ErrHopBudget, s.maxHops))
		}
	default:
		s.fail(ErrNoDecision)
	}
	return s.done
}

func (s *Stepper) fail(err error) {
	s.err = err
	s.res.Final, s.res.Header = s.at, s.header
	s.done = true
}
