package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

const cleanClassic = `# HELP demo_total A demo counter.
# TYPE demo_total counter
demo_total 3
`

const cleanOM = `# HELP demo A demo counter.
# TYPE demo counter
demo_total 3
# EOF
`

const brokenClassic = `demo_total 3
demo_total 4
`

func TestLintFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.txt")
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(good, []byte(cleanClassic), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, []byte(brokenClassic), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errOut bytes.Buffer
	if err := run([]string{good}, &out, &errOut); err != nil {
		t.Fatalf("clean file: %v (%s)", err, errOut.String())
	}
	if !strings.HasPrefix(out.String(), "ok:") {
		t.Errorf("output %q, want ok:", out.String())
	}

	out.Reset()
	errOut.Reset()
	err := run([]string{bad}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "lint error") {
		t.Fatalf("broken file err = %v", err)
	}
	if errOut.Len() == 0 {
		t.Error("no lint errors printed")
	}
}

func TestLintURLNegotiation(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.Header.Get("Accept"), "openmetrics") {
			w.Header().Set("Content-Type", obs.ContentTypeOpenMetrics)
			_, _ = w.Write([]byte(cleanOM))
			return
		}
		w.Header().Set("Content-Type", obs.ContentTypePrometheus)
		_, _ = w.Write([]byte(cleanClassic))
	}))
	defer ts.Close()

	var out, errOut bytes.Buffer
	if err := run([]string{"-url", ts.URL}, &out, &errOut); err != nil {
		t.Fatalf("classic fetch: %v (%s)", err, errOut.String())
	}
	out.Reset()
	if err := run([]string{"-url", ts.URL, "-openmetrics"}, &out, &errOut); err != nil {
		t.Fatalf("openmetrics fetch: %v (%s)", err, errOut.String())
	}
	if !strings.Contains(out.String(), "openmetrics") {
		t.Errorf("output %q does not note the format", out.String())
	}
}

// TestLintURLWrongContentType: a server ignoring the OpenMetrics
// negotiation (classic content type back) must fail the scrape, not
// lint the wrong format.
func TestLintURLWrongContentType(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", obs.ContentTypePrometheus)
		_, _ = w.Write([]byte(cleanClassic))
	}))
	defer ts.Close()

	var out, errOut bytes.Buffer
	err := run([]string{"-url", ts.URL, "-openmetrics"}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "Content-Type") {
		t.Fatalf("err = %v, want content-type mismatch", err)
	}
}

func TestLintBadArgs(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-url", "http://x", "file.txt"}, &out, &errOut); err == nil {
		t.Error("-url plus file accepted")
	}
	if err := run([]string{"a.txt", "b.txt"}, &out, &errOut); err == nil {
		t.Error("two files accepted")
	}
}
