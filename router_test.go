package adhocroute

import (
	"sync"
	"testing"
)

func compiledGrid(t *testing.T, rows, cols int, opts ...Option) (*Network, *Router) {
	t.Helper()
	nw := NewGrid(rows, cols)
	r, err := nw.Compile(opts...)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return nw, r
}

// TestCompiledRouterMatchesOneShot checks that a compiled Router and the
// one-shot facade produce identical results for the same seed — the
// amortization must be pure caching.
func TestCompiledRouterMatchesOneShot(t *testing.T) {
	nw, r := compiledGrid(t, 5, 5, WithSeed(7))
	for _, dst := range nw.Nodes() {
		got, err := r.Route(0, dst)
		if err != nil {
			t.Fatalf("Router.Route(0,%d): %v", dst, err)
		}
		want, err := nw.Route(0, dst, WithSeed(7))
		if err != nil {
			t.Fatalf("Network.Route(0,%d): %v", dst, err)
		}
		if *got != *want {
			t.Fatalf("Route(0,%d): compiled %+v, one-shot %+v", dst, got, want)
		}
	}
}

// TestCompiledRouterQueries smoke-tests every query kind on one compiled
// router and the stats accounting.
func TestCompiledRouterQueries(t *testing.T) {
	nw := NewNetwork()
	for i := 0; i < 6; i++ {
		if err := nw.AddNode(NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := nw.AddLink(NodeID(i), NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	// Node 5 is isolated: routing 0→5 must fail definitively.
	r, err := nw.Compile(WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}

	res, err := r.Route(0, 4)
	if err != nil || res.Status != StatusSuccess {
		t.Fatalf("Route(0,4): %+v, %v", res, err)
	}
	res, err = r.Route(0, 5)
	if err != nil || res.Status != StatusFailure {
		t.Fatalf("Route(0,5): %+v, %v", res, err)
	}

	res, path, err := r.RouteWithPath(0, 3)
	if err != nil || res.Status != StatusSuccess {
		t.Fatalf("RouteWithPath: %+v, %v", res, err)
	}
	if len(path) == 0 || path[0] != 0 || path[len(path)-1] != 3 {
		t.Fatalf("path: %v", path)
	}

	b, err := r.Broadcast(0)
	if err != nil || b.Reached != 5 {
		t.Fatalf("Broadcast: %+v, %v", b, err)
	}

	c, err := r.CountComponent(0)
	if err != nil || c.Count != 5 {
		t.Fatalf("CountComponent: %+v, %v", c, err)
	}

	h, err := r.RouteHybrid(0, 4)
	if err != nil || h.Status != StatusSuccess {
		t.Fatalf("RouteHybrid: %+v, %v", h, err)
	}

	batch := r.RouteBatch([]BatchQuery{{Src: 0, Dst: 4}, {Src: 1, Dst: 5}})
	if len(batch) != 2 {
		t.Fatalf("batch: %+v", batch)
	}
	if batch[0].Err != nil || batch[0].Result.Status != StatusSuccess {
		t.Fatalf("batch[0]: %+v", batch[0])
	}
	if batch[1].Err != nil || batch[1].Result.Status != StatusFailure {
		t.Fatalf("batch[1]: %+v", batch[1])
	}

	all := r.RouteAll(0, []NodeID{1, 2, 3})
	for _, br := range all {
		if br.Err != nil || br.Result.Status != StatusSuccess {
			t.Fatalf("RouteAll member: %+v", br)
		}
	}

	s := r.Stats()
	if s.Queries == 0 || s.Routes == 0 || s.Broadcasts != 1 || s.Counts != 1 ||
		s.Hybrids != 1 || s.Batches != 2 || s.Errors != 0 {
		t.Fatalf("stats: %+v", s)
	}
	if s.PeakHeaderBits <= 0 || s.Hops <= 0 {
		t.Fatalf("stats totals: %+v", s)
	}
}

// TestCompiledRouterConcurrent issues simultaneous facade queries against
// one compiled Router (run with -race).
func TestCompiledRouterConcurrent(t *testing.T) {
	nw, r := compiledGrid(t, 6, 6, WithSeed(11), WithWorkers(4))
	nodes := nw.Nodes()
	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			res, err := r.Route(0, nodes[(c*7)%len(nodes)])
			if err != nil || res.Status != StatusSuccess {
				t.Errorf("client %d: %+v, %v", c, res, err)
				return
			}
			for _, br := range r.RouteAll(nodes[c%len(nodes)], nodes[:8]) {
				if br.Err != nil || br.Result.Status != StatusSuccess {
					t.Errorf("client %d batch: %+v", c, br)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestRouterSurvivesMutation: a compiled Router keeps serving its snapshot
// while the Network's own lazy cache is invalidated and rebuilt.
func TestRouterSurvivesMutation(t *testing.T) {
	nw, r := compiledGrid(t, 3, 3, WithSeed(5))
	if err := nw.AddNode(100); err != nil {
		t.Fatal(err)
	}
	if err := nw.AddLink(8, 100); err != nil {
		t.Fatal(err)
	}
	// The compiled router predates node 100: definitive failure there.
	res, err := r.Route(0, 100)
	if err != nil || res.Status != StatusFailure {
		t.Fatalf("stale router Route(0,100): %+v, %v", res, err)
	}
	// The one-shot path sees the new topology.
	res, err = nw.Route(0, 100, WithSeed(5))
	if err != nil || res.Status != StatusSuccess {
		t.Fatalf("fresh Route(0,100): %+v, %v", res, err)
	}
	// Recompiling picks up the change.
	r2, err := nw.Compile(WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	res, err = r2.Route(0, 100)
	if err != nil || res.Status != StatusSuccess {
		t.Fatalf("recompiled Route(0,100): %+v, %v", res, err)
	}
}

// TestCompileNoDegreeReduction covers the ablation through the facade.
func TestCompileNoDegreeReduction(t *testing.T) {
	_, r := compiledGrid(t, 4, 4, WithSeed(2), WithoutDegreeReduction())
	res, err := r.Route(0, 15)
	if err != nil || res.Status != StatusSuccess {
		t.Fatalf("Route: %+v, %v", res, err)
	}
}
