package dynamic

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/route"
)

// diffCase is one graph/pair scenario for the no-op differential.
type diffCase struct {
	name string
	g    *graph.Graph
	s, t graph.NodeID
}

func diffCases(t *testing.T) []diffCase {
	t.Helper()
	grid := gen.Grid(5, 5)
	udg := gen.UDG2D(40, 0.25, 3).G
	multi, err := gen.RandomRegularMulti(14, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	barbell := gen.Barbell(5, 4)
	twoComp, err := gen.DisjointUnion(gen.Cycle(6), gen.Path(5), 100)
	if err != nil {
		t.Fatal(err)
	}
	cases := []diffCase{
		{"grid", grid, 0, 24},
		{"grid-self", grid, 7, 7},
		{"udg2d", udg, 0, 17},
		{"multigraph", multi, 0, 13},
		{"barbell", barbell, 0, 9},
		{"unreachable", twoComp, 0, 102},
		{"nonexistent-target", grid, 3, 9999},
	}
	return cases
}

// TestNoOpScheduleMatchesStaticRoute is the differential satellite: over a
// schedule that never changes the graph, the dynamic router must reproduce
// the static router exactly — verdict, hop count, and header bits — on
// both execution paths. The epoch clock still ticks (HopsPerEpoch is set
// low enough that many no-op advances fire mid-walk), so the test pins
// that epoch bookkeeping alone perturbs nothing.
func TestNoOpScheduleMatchesStaticRoute(t *testing.T) {
	for _, disableFlat := range []bool{false, true} {
		for _, tc := range diffCases(t) {
			name := fmt.Sprintf("%s/flat=%v", tc.name, !disableFlat)
			t.Run(name, func(t *testing.T) {
				const seed = 7
				static, err := route.New(tc.g, route.Config{Seed: seed, DisableFlat: disableFlat})
				if err != nil {
					t.Fatal(err)
				}
				want, err := static.Route(tc.s, tc.t)
				if err != nil {
					t.Fatal(err)
				}

				w := NewWorld(tc.g, Static{})
				dyn := NewRouter(w, Config{Seed: seed, HopsPerEpoch: 16, DisableFlat: disableFlat})
				got, err := dyn.Route(tc.s, tc.t)
				if err != nil {
					t.Fatal(err)
				}

				if got.Status != want.Status {
					t.Errorf("status: dynamic %v, static %v", got.Status, want.Status)
				}
				if got.Hops != want.Hops {
					t.Errorf("hops: dynamic %d, static %d", got.Hops, want.Hops)
				}
				if got.MaxHeaderBits != want.MaxHeaderBits {
					t.Errorf("header bits: dynamic %d, static %d", got.MaxHeaderBits, want.MaxHeaderBits)
				}
				if got.Rounds != len(want.Rounds) {
					t.Errorf("rounds: dynamic %d, static %d", got.Rounds, len(want.Rounds))
				}
				if got.Resumptions != 0 || got.Recompiles != 0 {
					t.Errorf("no-op schedule triggered %d resumptions, %d recompiles",
						got.Resumptions, got.Recompiles)
				}
				if tc.s != tc.t && got.Epochs == 0 && want.Hops >= 16 {
					t.Error("epoch clock never ticked despite a multi-epoch walk")
				}
			})
		}
	}
}

// TestNoOpKnownBoundMatchesStatic pins the fixed-bound mode against the
// static router's KnownN round.
func TestNoOpKnownBoundMatchesStatic(t *testing.T) {
	g := gen.Grid(4, 4)
	static, err := route.New(g, route.Config{Seed: 5, KnownN: 256})
	if err != nil {
		t.Fatal(err)
	}
	want, err := static.Route(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	dyn := NewRouter(NewWorld(g, Static{}), Config{Seed: 5, KnownN: 256, HopsPerEpoch: 32})
	got, err := dyn.Route(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != netsim.StatusSuccess || got.Status != want.Status {
		t.Fatalf("status: dynamic %v, static %v", got.Status, want.Status)
	}
	if got.Hops != want.Hops || got.MaxHeaderBits != want.MaxHeaderBits {
		t.Fatalf("dynamic (hops %d, header %d) != static (hops %d, header %d)",
			got.Hops, got.MaxHeaderBits, want.Hops, want.MaxHeaderBits)
	}
}

// TestBothPathsAgreeUnderChurn cross-checks the flat and reference
// execution paths against each other on an actually-changing topology:
// identical seeds and schedules must produce identical verdicts, hops, and
// epoch counts, because the walk rule and the resumption convention are
// the same on both paths.
func TestBothPathsAgreeUnderChurn(t *testing.T) {
	base := gen.Torus(4, 5)
	run := func(disableFlat bool) *Result {
		t.Helper()
		sched := &MarkovLinks{Seed: 99, PDown: 0.08, PUp: 0.5}
		w := NewWorld(base, sched)
		res, err := NewRouter(w, Config{Seed: 13, HopsPerEpoch: 24, DisableFlat: disableFlat}).Route(0, 19)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	flat, ref := run(false), run(true)
	if flat.Status != ref.Status || flat.Hops != ref.Hops ||
		flat.Epochs != ref.Epochs || flat.Resumptions != ref.Resumptions ||
		flat.Rounds != ref.Rounds {
		t.Fatalf("paths diverged under churn:\nflat %+v\nref  %+v", flat, ref)
	}
}
