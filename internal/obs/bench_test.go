package obs

import (
	"testing"
	"time"
)

// BenchmarkHistogramObserve prices one hot-path observation: the budget is
// single-digit nanoseconds, because it sits inside a ~1 µs route.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewLatencyHistogram("adhoc_bench_seconds", "bench", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(900) // a warm-route-sized latency: early bucket exit
	}
}

// BenchmarkHistogramObserveSince adds the time.Since call the instrumented
// paths actually pay.
func BenchmarkHistogramObserveSince(b *testing.B) {
	h := NewLatencyHistogram("adhoc_bench2_seconds", "bench", nil)
	t0 := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(t0)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewCounter("adhoc_bench_total", "bench", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewLatencyHistogram("adhoc_bench3_seconds", "bench", nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(900)
		}
	})
}
