package engine

import (
	"context"

	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/route"
	"repro/internal/trace"
)

// NewWorld returns a dynamic world seeded with this engine's network and
// its already-compiled degree reduction, evolving under sched. The world
// owns a private clone of the graph, so any number of worlds (one per
// dynamic query, in the serving layer) can evolve independently while the
// engine keeps serving static queries; none of them recompiles anything
// until its topology actually diverges.
func (e *Engine) NewWorld(sched dynamic.Schedule) *dynamic.World {
	return dynamic.NewWorldFromCompiled(e.g, e.red, sched)
}

// RouteDynamic answers one s→t query over the evolving world w, advancing
// the topology every cfg.HopsPerEpoch hops and carrying the stateless
// header across snapshot recompiles. Protocol parameters (sequence family
// seed, length factor, known bound, bound cap) always come from the
// engine so dynamic and static queries speak the same protocol; cfg
// supplies only the dynamics knobs.
func (e *Engine) RouteDynamic(w *dynamic.World, s, t graph.NodeID, cfg dynamic.Config) (*dynamic.Result, error) {
	return e.routeDynamic(nil, w, s, t, 0, nil, cfg, nil)
}

// RouteDynamicTraced is RouteDynamic recording the evolving walk under
// sp: one span per round with the hop tail, plus timed events for epoch
// advances, snapshot resumptions, and aborted rounds. A nil (unsampled)
// span serves the query exactly like RouteDynamic.
func (e *Engine) RouteDynamicTraced(w *dynamic.World, s, t graph.NodeID, cfg dynamic.Config, sp *trace.Span) (*dynamic.Result, error) {
	return e.routeDynamic(nil, w, s, t, 0, nil, cfg, sp)
}

// RouteDynamicBudgeted is RouteDynamic with bounded work: at most maxHops
// message hops (0 = unlimited), ctx's deadline honored at round and epoch
// boundaries, and a resume Cursor minted when either limit strikes so a
// later call — even after the world has advanced or recompiled — picks the
// walk up exactly where it stopped. Provably-unreachable pairs on
// multi-component snapshots are answered in O(1) with a reachability
// Certificate stamped with the world epoch and version it was computed at.
func (e *Engine) RouteDynamicBudgeted(ctx context.Context, w *dynamic.World, s, t graph.NodeID, maxHops int64, cur *route.Cursor, cfg dynamic.Config) (*dynamic.Result, error) {
	return e.routeDynamic(ctx, w, s, t, maxHops, cur, cfg, nil)
}

// RouteDynamicBudgetedTraced is RouteDynamicBudgeted recording the walk,
// budget, and resume events under sp.
func (e *Engine) RouteDynamicBudgetedTraced(ctx context.Context, w *dynamic.World, s, t graph.NodeID, maxHops int64, cur *route.Cursor, cfg dynamic.Config, sp *trace.Span) (*dynamic.Result, error) {
	return e.routeDynamic(ctx, w, s, t, maxHops, cur, cfg, sp)
}

func (e *Engine) routeDynamic(ctx context.Context, w *dynamic.World, s, t graph.NodeID, maxHops int64, cur *route.Cursor, cfg dynamic.Config, sp *trace.Span) (*dynamic.Result, error) {
	cfg.Seed = e.cfg.Seed
	cfg.LengthFactor = e.cfg.LengthFactor
	cfg.KnownN = e.cfg.KnownBound
	if cfg.MaxBound == 0 {
		cfg.MaxBound = e.cfg.MaxBound
	}
	if e.cfg.DisableCertificates {
		cfg.DisableCertificates = true
	}
	var qsp *trace.Span
	if sp.Recording() {
		qsp = sp.Child("engine.route_dynamic")
		defer qsp.End()
		qsp.SetAttr(trace.Int("src", int64(s)), trace.Int("dst", int64(t)))
	}
	start := sampleStart(e.m.dynamicRoutes.Add(1))
	if cur != nil {
		e.m.resumedWalks.Add(1)
	}
	res, err := dynamic.NewRouter(w, cfg).RouteBudgetedTraced(ctx, s, t, maxHops, cur, qsp)
	e.m.recordDynamic(res, err, start)
	if qsp.Recording() {
		if err != nil {
			qsp.SetAttr(trace.String("error", err.Error()))
		}
		if res != nil {
			qsp.SetAttr(
				trace.String("status", res.Status.String()),
				trace.Int("hops", res.Hops),
				trace.Int("rounds", int64(res.Rounds)),
				trace.Int("aborted_rounds", int64(res.AbortedRounds)),
				trace.Int("epochs", int64(res.Epochs)),
				trace.Int("recompiles", int64(res.Recompiles)),
				trace.Int("resumptions", int64(res.Resumptions)),
				trace.Int("max_header_bits", int64(res.MaxHeaderBits)),
			)
			if res.Certificate != nil {
				qsp.SetAttr(trace.Bool("certificate", true))
			}
			if res.Exhausted != "" {
				qsp.SetAttr(trace.String("exhausted", string(res.Exhausted)))
			}
		}
	}
	return res, err
}
