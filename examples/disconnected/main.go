// Disconnected demonstrates the two "impossible for naive approaches"
// capabilities of the paper: detecting that a destination is unreachable
// (Algorithm Route returns a definitive failure instead of looping
// forever), and counting the component size with zero prior knowledge
// (Algorithm CountNodes, §4).
package main

import (
	"fmt"
	"log"

	adhocroute "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Two islands: a 4x4 mesh (nodes 0..15) and a ring (nodes 100..105).
	nw := adhocroute.NewNetwork()
	for i := 0; i < 16; i++ {
		if err := nw.AddNode(adhocroute.NodeID(i)); err != nil {
			return err
		}
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if c+1 < 4 {
				if err := nw.AddLink(adhocroute.NodeID(4*r+c), adhocroute.NodeID(4*r+c+1)); err != nil {
					return err
				}
			}
			if r+1 < 4 {
				if err := nw.AddLink(adhocroute.NodeID(4*r+c), adhocroute.NodeID(4*r+c+4)); err != nil {
					return err
				}
			}
		}
	}
	for i := 0; i < 6; i++ {
		if err := nw.AddNode(adhocroute.NodeID(100 + i)); err != nil {
			return err
		}
	}
	for i := 0; i < 6; i++ {
		if err := nw.AddLink(adhocroute.NodeID(100+i), adhocroute.NodeID(100+(i+1)%6)); err != nil {
			return err
		}
	}
	fmt.Printf("network: %d nodes in two islands\n\n", nw.NumNodes())

	// 1. Cross-island routing terminates with a *definitive* failure.
	res, err := nw.Route(0, 103, adhocroute.WithSeed(7))
	if err != nil {
		return err
	}
	fmt.Printf("route 0 -> 103: %s after %d hops and %d doubling rounds\n",
		res.Status, res.Hops, res.Rounds)
	fmt.Println("  (a random-walk router would wander forever; a TTL would give up without a verdict)")

	// 2. Component counting with no prior knowledge (§4).
	for _, s := range []adhocroute.NodeID{0, 100} {
		cnt, err := nw.CountComponent(s, adhocroute.WithSeed(7))
		if err != nil {
			return err
		}
		fmt.Printf("CountNodes(%d): component has %d nodes (%d in the 3-regular reduction, %d rounds)\n",
			s, cnt.Count, cnt.ReducedCount, cnt.Rounds)
	}

	// 3. The counted bound feeds back into single-round routing.
	cnt, err := nw.CountComponent(0, adhocroute.WithSeed(7))
	if err != nil {
		return err
	}
	fast, err := nw.Route(0, 15, adhocroute.WithSeed(7), adhocroute.WithKnownBound(cnt.ReducedCount))
	if err != nil {
		return err
	}
	fmt.Printf("route 0 -> 15 with counted bound %d: %s in %d hops, %d round\n",
		cnt.ReducedCount, fast.Status, fast.Hops, fast.Rounds)
	return nil
}
