package dynamic

import (
	"errors"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/prng"
)

// ErrNoRadius is returned by RandomWaypoint when no connectivity radius is
// configured.
var ErrNoRadius = errors.New("dynamic: random waypoint requires Radius > 0")

// RandomWaypoint is the classic mobility model over the unit square: each
// node walks toward a uniformly random waypoint at its own uniformly
// random speed, picks a new waypoint (and speed) on arrival, and the radio
// topology is re-derived each epoch as the unit-disk graph of the current
// positions — optionally Gabriel-planarized, matching the gen.UDG2D /
// gen.Gabriel workload families. Nodes without positions are placed
// uniformly at random (deterministically in Seed) on the first epoch.
//
// Topology updates are applied as an edge diff against the current graph
// in canonical edge order, so an epoch that moves nobody out of range
// mutates nothing (the compile cache stays warm) and identical seeds
// replay identical topology histories.
type RandomWaypoint struct {
	// Seed drives placement, waypoint choice, and speed choice.
	Seed uint64
	// SpeedMin and SpeedMax bound the per-epoch travel distance, in units
	// of the unit square. SpeedMax <= 0 freezes all nodes (pure
	// re-derivation, useful as a baseline cell in sweeps).
	SpeedMin, SpeedMax float64
	// Radius is the unit-disk connectivity radius.
	Radius float64
	// Gabriel additionally planarizes each epoch's unit-disk graph by the
	// empty-diameter-disk rule.
	Gabriel bool

	rng      *prng.Source
	waypoint map[graph.NodeID]geom.Point
	speed    map[graph.NodeID]float64
}

// Advance moves every node one epoch along its leg and re-derives the
// edge set from the new positions.
func (m *RandomWaypoint) Advance(w *World, _ int, _ Probe) error {
	if m.Radius <= 0 {
		return ErrNoRadius
	}
	if m.rng == nil {
		m.rng = prng.New(m.Seed)
		m.waypoint = make(map[graph.NodeID]geom.Point)
		m.speed = make(map[graph.NodeID]float64)
		w.SeedPositions(m.Seed ^ 0x9e3779b97f4a7c15)
	}
	for _, v := range w.Graph().Nodes() {
		pos, ok := w.Pos(v)
		if !ok {
			// A node added after the first epoch: place it now.
			pos = geom.Point{X: m.rng.Float64(), Y: m.rng.Float64()}
		}
		wp, hasWP := m.waypoint[v]
		if !hasWP || geom.Dist(pos, wp) < 1e-12 {
			wp = geom.Point{X: m.rng.Float64(), Y: m.rng.Float64()}
			m.waypoint[v] = wp
			m.speed[v] = m.legSpeed()
		}
		step := m.speed[v]
		if d := geom.Dist(pos, wp); d <= step {
			pos = wp // arrive; a new leg starts next epoch
		} else if d > 0 {
			pos = pos.Add(wp.Sub(pos).Scale(step / d))
		}
		w.SetPos(v, pos)
	}
	return m.applyGeometry(w)
}

// legSpeed draws a per-leg speed in [SpeedMin, SpeedMax].
func (m *RandomWaypoint) legSpeed() float64 {
	lo, hi := m.SpeedMin, m.SpeedMax
	if hi <= 0 {
		return 0
	}
	if lo < 0 {
		lo = 0
	}
	if lo > hi {
		lo = hi
	}
	return lo + (hi-lo)*m.rng.Float64()
}

// applyGeometry diffs the position-derived edge set against the current
// graph and applies removals then insertions in canonical order.
func (m *RandomWaypoint) applyGeometry(w *World) error {
	nodes := w.Graph().Nodes()
	pts := make([]geom.Point, len(nodes))
	for i, v := range nodes {
		p, _ := w.Pos(v)
		pts[i] = p
	}
	udg := geom.UnitDiskEdges(pts, m.Radius)
	if m.Gabriel {
		udg = geom.GabrielEdges(pts, udg)
	}
	want := make(map[Edge]int, len(udg))
	for _, e := range udg {
		u, v := nodes[e[0]], nodes[e[1]]
		if v < u {
			u, v = v, u
		}
		want[Edge{U: u, V: v}]++
	}
	cur := make(map[Edge]int)
	for _, e := range w.Edges() {
		cur[e]++
	}

	var removals, adds []Edge
	for e, c := range cur {
		for k := want[e]; k < c; k++ {
			removals = append(removals, e)
		}
	}
	for e, c := range want {
		for k := cur[e]; k < c; k++ {
			adds = append(adds, e)
		}
	}
	sortEdges(removals)
	sortEdges(adds)
	for _, e := range removals {
		if err := w.RemoveEdgeBetween(e.U, e.V); err != nil {
			return err
		}
	}
	for _, e := range adds {
		if _, _, err := w.AddEdge(e.U, e.V); err != nil {
			return err
		}
	}
	return nil
}
