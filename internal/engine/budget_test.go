package engine

import (
	"context"
	"testing"

	"repro/internal/dynamic"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/route"
)

// disjointGraph is a two-component network: a 4×4 grid and a 5-cycle at
// offset 100. Cross-component pairs are provably unreachable.
func disjointGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := gen.DisjointUnion(gen.Grid(4, 4), gen.Cycle(5), 100)
	if err != nil {
		t.Fatalf("DisjointUnion: %v", err)
	}
	return g
}

// TestEngineCertificate: an unreachable pair on a multi-component network
// is answered in O(1) with a certificate through the plain Route path, the
// certificate is counted, and DisableCertificates forces the full walk.
func TestEngineCertificate(t *testing.T) {
	e := mustCompile(t, disjointGraph(t), Config{Seed: 7})
	res, err := e.Route(0, 102)
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if res.Status != netsim.StatusFailure || res.Certificate == nil {
		t.Fatalf("unreachable pair: status %v, certificate %v", res.Status, res.Certificate)
	}
	if res.Hops != 0 || len(res.Rounds) != 0 {
		t.Fatalf("certified failure walked: %d hops, %d rounds", res.Hops, len(res.Rounds))
	}
	if s := e.Stats(); s.Certificates != 1 {
		t.Fatalf("Certificates = %d, want 1", s.Certificates)
	}

	burn := mustCompile(t, disjointGraph(t), Config{Seed: 7, DisableCertificates: true})
	res, err = burn.Route(0, 102)
	if err != nil {
		t.Fatalf("Route (certificates off): %v", err)
	}
	if res.Status != netsim.StatusFailure || res.Certificate != nil {
		t.Fatalf("certificates off: status %v, certificate %v", res.Status, res.Certificate)
	}
	if res.Hops == 0 {
		t.Fatal("certificates off but the failure verdict cost no hops")
	}
	if s := burn.Stats(); s.Certificates != 0 {
		t.Fatalf("certificates off but counted %d", s.Certificates)
	}
}

// engineRunToVerdict drives a budgeted walk to its verdict in budget-sized
// continuations, returning the final result and the continuation count.
func engineRunToVerdict(t *testing.T, e *Engine, s, dst graph.NodeID, budget int64) (*route.Result, int) {
	t.Helper()
	var cur *route.Cursor
	for i := 0; i < 200000; i++ {
		res, err := e.RouteBudgeted(context.Background(), s, dst, budget, cur)
		if err != nil {
			t.Fatalf("RouteBudgeted (continuation %d): %v", i, err)
		}
		if res.Exhausted == "" {
			return res, i
		}
		if res.Cursor == nil {
			t.Fatalf("exhausted %q without a cursor", res.Exhausted)
		}
		cur = res.Cursor
	}
	t.Fatal("walk did not finish in 200000 continuations")
	return nil, 0
}

// TestEngineRouteBudgetedSplitEqualsUninterrupted: the engine entry point
// preserves the router's split == uninterrupted equality and books the
// exhaustion/resume metrics.
func TestEngineRouteBudgetedSplitEqualsUninterrupted(t *testing.T) {
	e := mustCompile(t, gen.Torus(5, 5), Config{Seed: 3})
	full, n := engineRunToVerdict(t, e, 0, 18, 0)
	if n != 0 || full.Status != netsim.StatusSuccess {
		t.Fatalf("uninterrupted run: %d continuations, status %v", n, full.Status)
	}
	split, n := engineRunToVerdict(t, e, 0, 18, 1)
	if n < 2 {
		t.Fatalf("budget-1 walk finished in %d continuations", n)
	}
	if split.Status != full.Status || split.Hops != full.Hops ||
		split.Bound != full.Bound || split.MaxHeaderBits != full.MaxHeaderBits {
		t.Fatalf("split (%v, %d hops, bound %d, %d bits) != uninterrupted (%v, %d hops, bound %d, %d bits)",
			split.Status, split.Hops, split.Bound, split.MaxHeaderBits,
			full.Status, full.Hops, full.Bound, full.MaxHeaderBits)
	}
	s := e.Stats()
	if s.BudgetExhausted != int64(n) {
		t.Fatalf("BudgetExhausted = %d, want %d", s.BudgetExhausted, n)
	}
	if s.ResumedWalks != int64(n) {
		t.Fatalf("ResumedWalks = %d, want %d", s.ResumedWalks, n)
	}
}

// TestEngineRouteBudgetedDeadline: an already-canceled context exhausts at
// the first round boundary and the walk resumes to the uninterrupted
// verdict.
func TestEngineRouteBudgetedDeadline(t *testing.T) {
	e := mustCompile(t, gen.Torus(4, 5), Config{Seed: 5})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e.RouteBudgeted(ctx, 0, 13, 0, nil)
	if err != nil {
		t.Fatalf("RouteBudgeted: %v", err)
	}
	if res.Exhausted != route.ExhaustDeadline || res.Cursor == nil {
		t.Fatalf("canceled ctx: exhausted %q, cursor %v", res.Exhausted, res.Cursor)
	}
	resumed, err := e.RouteBudgeted(context.Background(), 0, 13, 0, res.Cursor)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	full, err := e.RouteBudgeted(context.Background(), 0, 13, 0, nil)
	if err != nil {
		t.Fatalf("uninterrupted: %v", err)
	}
	if resumed.Status != full.Status || resumed.Hops != full.Hops {
		t.Fatalf("resumed (%v, %d hops) != uninterrupted (%v, %d hops)",
			resumed.Status, resumed.Hops, full.Status, full.Hops)
	}
}

// TestEngineRouteDynamicBudgeted: the dynamic engine entry point exhausts,
// resumes to the same verdict as an uninterrupted run over an identical
// fresh world, and answers unreachable pairs with an epoch-stamped
// certificate.
func TestEngineRouteDynamicBudgeted(t *testing.T) {
	e := mustCompile(t, gen.Torus(5, 5), Config{Seed: 3})
	dcfg := dynamic.Config{HopsPerEpoch: 16}
	sched := func() dynamic.Schedule { return &dynamic.EdgeChurn{Seed: 11, PDrop: 0.08, AddRate: 1} }

	full, err := e.RouteDynamicBudgeted(context.Background(), e.NewWorld(sched()), 0, 18, 0, nil, dcfg)
	if err != nil {
		t.Fatalf("uninterrupted: %v", err)
	}
	if full.Status != netsim.StatusSuccess {
		t.Fatalf("uninterrupted status %v", full.Status)
	}

	w := e.NewWorld(sched())
	var cur *route.Cursor
	var res *dynamic.Result
	continuations := 0
	for {
		res, err = e.RouteDynamicBudgeted(context.Background(), w, 0, 18, 7, cur, dcfg)
		if err != nil {
			t.Fatalf("continuation %d: %v", continuations, err)
		}
		if res.Exhausted == "" {
			break
		}
		if res.Cursor == nil {
			t.Fatalf("exhausted %q without a cursor", res.Exhausted)
		}
		cur = res.Cursor
		continuations++
		if continuations > 200000 {
			t.Fatal("walk did not finish")
		}
	}
	if continuations == 0 {
		t.Fatal("budget-7 dynamic walk never exhausted")
	}
	if res.Status != full.Status || res.Hops != full.Hops || res.Epochs != full.Epochs ||
		res.MaxHeaderBits != full.MaxHeaderBits {
		t.Fatalf("split (%v, %d hops, %d epochs, %d bits) != uninterrupted (%v, %d hops, %d epochs, %d bits)",
			res.Status, res.Hops, res.Epochs, res.MaxHeaderBits,
			full.Status, full.Hops, full.Epochs, full.MaxHeaderBits)
	}
	s := e.Stats()
	if s.BudgetExhausted == 0 || s.ResumedWalks == 0 {
		t.Fatalf("budget metrics not booked: %+v", s)
	}

	// Unreachable pair over a static multi-component world: certified in
	// O(1), stamped with the world's epoch and version.
	de := mustCompile(t, disjointGraph(t), Config{Seed: 7})
	dw := de.NewWorld(dynamic.Static{})
	dres, err := de.RouteDynamicBudgeted(context.Background(), dw, 0, 102, 0, nil, dynamic.Config{})
	if err != nil {
		t.Fatalf("dynamic certificate route: %v", err)
	}
	if dres.Status != netsim.StatusFailure || dres.Certificate == nil {
		t.Fatalf("dynamic unreachable pair: status %v, certificate %v", dres.Status, dres.Certificate)
	}
	if dres.Hops != 0 {
		t.Fatalf("dynamic certified failure walked %d hops", dres.Hops)
	}
	snap := dw.Snapshot()
	if dres.Certificate.Epoch != snap.Epoch || dres.Certificate.Version != snap.Version {
		t.Fatalf("certificate stamp (%d, %d) != world (%d, %d)",
			dres.Certificate.Epoch, dres.Certificate.Version, snap.Epoch, snap.Version)
	}
	if ds := de.Stats(); ds.Certificates != 1 {
		t.Fatalf("dynamic Certificates = %d, want 1", ds.Certificates)
	}
}
