package route

import (
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/netsim"
)

func runWalker(t *testing.T, w *Walker, maxSteps int) {
	t.Helper()
	for i := 0; i < maxSteps; i++ {
		if w.Step() {
			return
		}
	}
	t.Fatalf("walker did not terminate within %d steps", maxSteps)
}

func TestWalkerSuccess(t *testing.T) {
	g := gen.Grid(3, 4)
	r := newRouter(t, g, Config{Seed: 7})
	w, err := r.Walker(0, 11)
	if err != nil {
		t.Fatal(err)
	}
	runWalker(t, w, 1<<22)
	if !w.Done() || w.Status() != netsim.StatusSuccess {
		t.Fatalf("walker = done %v status %v err %v", w.Done(), w.Status(), w.Err())
	}
	if w.Hops() <= 0 {
		t.Fatal("no hops recorded")
	}
	// Further steps are no-ops.
	if !w.Step() {
		t.Fatal("Step after done must return true")
	}
}

func TestWalkerMatchesRoute(t *testing.T) {
	// The step-wise walker must agree with the monolithic Route on both
	// verdict and total hops.
	g := gen.Grid(3, 3)
	r := newRouter(t, g, Config{Seed: 5})
	res, err := r.Route(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	w, err := r.Walker(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	runWalker(t, w, 1<<22)
	if w.Status() != res.Status {
		t.Fatalf("status %v vs %v", w.Status(), res.Status)
	}
	if w.Hops() != res.Hops {
		t.Fatalf("hops %d vs %d", w.Hops(), res.Hops)
	}
}

func TestWalkerDefinitiveFailure(t *testing.T) {
	u, err := gen.DisjointUnion(gen.Cycle(5), gen.Cycle(4), 100)
	if err != nil {
		t.Fatal(err)
	}
	r := newRouter(t, u, Config{Seed: 3})
	w, err := r.Walker(0, 101)
	if err != nil {
		t.Fatal(err)
	}
	runWalker(t, w, 1<<22)
	if w.Status() != netsim.StatusFailure {
		t.Fatalf("status = %v, want failure (err %v)", w.Status(), w.Err())
	}
	if w.Err() != nil {
		t.Fatalf("definitive failure should not be an error: %v", w.Err())
	}
}

func TestWalkerSelfRoute(t *testing.T) {
	r := newRouter(t, gen.Cycle(4), Config{Seed: 1})
	w, err := r.Walker(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Done() || w.Status() != netsim.StatusSuccess || w.Hops() != 0 {
		t.Fatalf("self walker = %v/%v/%d", w.Done(), w.Status(), w.Hops())
	}
}

func TestWalkerMissingSource(t *testing.T) {
	r := newRouter(t, gen.Cycle(4), Config{Seed: 1})
	if _, err := r.Walker(99, 0); !errors.Is(err, graph.ErrNodeNotFound) {
		t.Fatalf("error = %v", err)
	}
}

func TestWalkerKnownBound(t *testing.T) {
	g := gen.Cycle(6)
	r := newRouter(t, g, Config{Seed: 2, KnownN: 12})
	w, err := r.Walker(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	runWalker(t, w, 1<<22)
	if w.Status() != netsim.StatusSuccess {
		t.Fatalf("status = %v", w.Status())
	}
}

func TestWalkerHopsMonotonic(t *testing.T) {
	g := gen.Grid(3, 3)
	r := newRouter(t, g, Config{Seed: 9})
	w, err := r.Walker(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(0)
	for i := 0; i < 1<<22; i++ {
		done := w.Step()
		if h := w.Hops(); h < prev {
			t.Fatalf("hops decreased: %d -> %d", prev, h)
		} else {
			prev = h
		}
		if done {
			return
		}
	}
	t.Fatal("did not terminate")
}
