package dynamic

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/degred"
	"repro/internal/flatgraph"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/route"
	"repro/internal/trace"
	"repro/internal/ues"
)

// ErrRoundsExhausted reports that the router hit its round budget without
// obtaining a verdict — the dynamic analogue of route.ErrSequenceExhausted,
// reachable only when the schedule keeps breaking rounds faster than the
// walk completes them (e.g. a relentless adversary). It is an explicit
// error, never a wrong verdict.
var ErrRoundsExhausted = errors.New("dynamic: round budget exhausted without a verdict")

// Config parameterizes a dynamic Router. The zero value is usable: paper
// defaults for the protocol, and the world advancing every DefaultHopsPerEpoch
// hops.
type Config struct {
	// Seed selects the exploration sequence family T_n (shared protocol
	// configuration, identical for every node and every snapshot).
	Seed uint64
	// LengthFactor scales sequence lengths (ues.Length); 0 = default.
	LengthFactor int
	// KnownN, if > 0, fixes the sequence bound instead of doubling.
	KnownN int
	// MaxBound caps the doubling loop (0 = 4·|V(G′)| of the snapshot
	// current at each round start).
	MaxBound int
	// HopsPerEpoch is how many message hops elapse between epochs — the
	// coupling between protocol time and topology time. 0 = DefaultHopsPerEpoch;
	// negative freezes the clock (the world never advances).
	HopsPerEpoch int
	// MaxRounds bounds the retry loop (0 = DefaultMaxRounds).
	MaxRounds int
	// Lookahead bounds the probe's next-link scan, in hops of G′
	// (0 = DefaultLookahead).
	Lookahead int
	// DisableFlat drives the walk through the netsim reference stepper and
	// the stateless per-node handler instead of the compiled flat stepper.
	// The two are hop-for-hop identical (pinned by the differential
	// tests); the reference path exists for those tests and debugging.
	// Budgeted routing (RouteBudgeted) requires the flat path.
	DisableFlat bool
	// DisableCertificates skips the O(1) component-index check at route
	// start, forcing even provably-unreachable pairs to burn the walk.
	// Verdicts are identical either way; the flag exists for differential
	// tests and for measuring the full doubling burn.
	DisableCertificates bool
}

// Defaults for the dynamics knobs.
const (
	DefaultHopsPerEpoch = 64
	DefaultMaxRounds    = 64
	DefaultLookahead    = 32
)

func (c Config) hopsPerEpoch() int {
	if c.HopsPerEpoch == 0 {
		return DefaultHopsPerEpoch
	}
	if c.HopsPerEpoch < 0 {
		return 0
	}
	return c.HopsPerEpoch
}

func (c Config) maxRounds() int {
	if c.MaxRounds <= 0 {
		return DefaultMaxRounds
	}
	return c.MaxRounds
}

func (c Config) lookahead() int {
	if c.Lookahead <= 0 {
		return DefaultLookahead
	}
	return c.Lookahead
}

// Result is the outcome of a dynamic route.
type Result struct {
	// Status is StatusSuccess if (a gadget of) t was physically reached,
	// StatusFailure if the §4 closure check certified, on the topology at
	// decision time, that t lies outside the source component.
	Status netsim.Status
	// Hops is the total message hops across all rounds and snapshots.
	Hops int64
	// Rounds is the number of rounds run (including aborted ones).
	Rounds int
	// AbortedRounds counts rounds abandoned because topology change broke
	// the confirmation leg (the walk resumed on a snapshot where the
	// backtrack could not complete).
	AbortedRounds int
	// Bound is the sequence bound of the terminal round.
	Bound int
	// Epochs is how many epochs the world advanced during this route.
	Epochs int
	// Recompiles is how many degree-reduction + snapshot recompiles the
	// route triggered (cache misses; epochs that left the topology
	// untouched cost nothing).
	Recompiles int
	// Resumptions counts mid-walk snapshot migrations: the stateless
	// header carried onto a freshly compiled topology.
	Resumptions int
	// MaxHeaderBits is the largest serialized header observed — the
	// O(log n) overhead claim measured under dynamics.
	MaxHeaderBits int
	// Certificate is non-nil when a failure verdict was answered in O(1)
	// from the component index of the snapshot current at route start,
	// instead of by walking the doubling budget.
	Certificate *route.Certificate
	// Exhausted is non-empty when the walk stopped on a budget or deadline
	// instead of a verdict; Cursor then holds the resume position.
	Exhausted route.ExhaustReason
	// Cursor continues an exhausted walk in a later RouteBudgeted call.
	Cursor *route.Cursor
}

// Router routes messages over an evolving World, advancing the walk
// hop-by-hop and the world every HopsPerEpoch hops. It holds no state
// between Route calls beyond what the World itself carries.
//
// Any number of Routers may drive one shared World concurrently: each
// walk runs on the immutable snapshot current at its last epoch boundary,
// and the World serializes epoch advances and shares recompiles. On a
// shared world the per-Result Epochs/Recompiles counters attribute
// whatever happened during the route, which may include epochs triggered
// by concurrent walks.
type Router struct {
	w   *World
	cfg Config
}

// NewRouter builds a dynamic router over w.
func NewRouter(w *World, cfg Config) *Router {
	return &Router{w: w, cfg: cfg}
}

// World returns the world this router drives.
func (r *Router) World() *World { return r.w }

// runState threads per-call accounting through the round loop. The epoch
// phase (hops since the last epoch boundary) deliberately carries across
// rounds: topology time is global, not per-round.
type runState struct {
	res        *Result
	sinceEpoch int
	sp         *trace.Span // current round's span; nil when unsampled

	// Bounded-work state. ctx carries the deadline (nil = never expires,
	// checked at round starts and epoch boundaries, never per hop); budget
	// is the hops remaining when armed. resume holds the caller's cursor
	// until the first round consumes it. When a round stops early it sets
	// exhausted and mints cursor instead of returning a verdict.
	ctx       context.Context
	armed     bool
	budget    int64
	resume    *route.Cursor
	exhausted route.ExhaustReason
	cursor    *route.Cursor
	chaos     *chaos.Injector
}

// Route sends a message from s to t over the evolving topology and
// returns the outcome learned at s. Routing to t == s succeeds trivially.
// The round structure mirrors the static router's doubling loop, with two
// dynamic additions: a round whose confirmation is broken by churn is
// retried rather than failed, and a failed round's verdict is only
// accepted after the closure check passes on the instantaneous topology.
func (r *Router) Route(s, t graph.NodeID) (*Result, error) {
	return r.route(s, t, nil)
}

// RouteTraced is Route recording one child span per round under sp, with
// per-hop walk events and timed events for epoch advances, snapshot
// resumptions, and aborted rounds. Tracing keeps the walk on the compiled
// flat stepper; a nil (unsampled) span routes identically to Route.
func (r *Router) RouteTraced(s, t graph.NodeID, sp *trace.Span) (*Result, error) {
	return r.route(s, t, sp)
}

// RouteBudgeted is Route with bounded work: the walk stops after maxHops
// message hops (0 = unlimited) or when ctx expires — deadlines are checked
// at round starts and epoch boundaries, never per hop — returning a Result
// with Exhausted set and a Cursor that continues the walk in a later call
// exactly where it stopped. Pass cur = nil for a fresh walk. A cursor
// minted on a snapshot the world has since recompiled re-enters at the
// canonical gadget of the original node it was at, the same rule a
// mid-walk epoch recompile applies. Budgeted routing requires the compiled
// flat path; DisableFlat configurations get route.ErrBudgetUnsupported.
func (r *Router) RouteBudgeted(ctx context.Context, s, t graph.NodeID, maxHops int64, cur *route.Cursor) (*Result, error) {
	return r.routeBudgeted(ctx, s, t, maxHops, cur, nil)
}

// RouteBudgetedTraced is RouteBudgeted recording spans under sp.
func (r *Router) RouteBudgetedTraced(ctx context.Context, s, t graph.NodeID, maxHops int64,
	cur *route.Cursor, sp *trace.Span) (*Result, error) {
	return r.routeBudgeted(ctx, s, t, maxHops, cur, sp)
}

func (r *Router) route(s, t graph.NodeID, sp *trace.Span) (*Result, error) {
	return r.routeBudgeted(nil, s, t, 0, nil, sp)
}

func (r *Router) routeBudgeted(ctx context.Context, s, t graph.NodeID, maxHops int64,
	cur *route.Cursor, sp *trace.Span) (*Result, error) {
	if (ctx != nil || maxHops > 0 || cur != nil) && r.cfg.DisableFlat {
		return nil, fmt.Errorf("%w (DisableFlat)", route.ErrBudgetUnsupported)
	}
	if !r.w.HasNode(s) {
		return nil, fmt.Errorf("dynamic: source: %w: %d", graph.ErrNodeNotFound, s)
	}
	res := &Result{}
	if s == t {
		res.Status = netsim.StatusSuccess
		return res, nil
	}
	if cur != nil {
		if cur.Src != s || cur.Dst != t {
			return nil, fmt.Errorf("%w: cursor is for %d->%d", route.ErrBadCursor, cur.Src, cur.Dst)
		}
		if cur.Bound < 1 || cur.Index < 0 {
			return nil, fmt.Errorf("%w: bound %d, index %d", route.ErrBadCursor, cur.Bound, cur.Index)
		}
		res.Hops = cur.Hops
		res.Rounds = cur.Rounds
		res.AbortedRounds = cur.AbortedRounds
		res.Epochs = cur.Epochs
		res.Resumptions = cur.Resumptions
		res.MaxHeaderBits = cur.MaxHeaderBits
	}
	rt := &runState{res: res, ctx: ctx, armed: maxHops > 0, budget: maxHops,
		resume: cur, chaos: r.w.Chaos()}
	if cur != nil {
		rt.sinceEpoch = cur.SinceEpoch
	}
	// Warm the compile cache before counting: Recompiles measures what the
	// topology churn cost this route, not the unavoidable initial compile.
	red, flat, err := r.w.Compiled()
	if err != nil {
		return res, err
	}
	recompBase := r.w.Recompiles()
	defer func() { res.Recompiles = int(r.w.Recompiles() - recompBase) }()

	// The O(1) reachability answer, from the component index of the
	// snapshot current right now. A resumed walk skips it: its budget was
	// already committed to walking, and the walk's own verdict is sound.
	if cur == nil && !r.cfg.DisableCertificates {
		if cert := r.certificate(red, flat, s, t); cert != nil {
			res.Status = netsim.StatusFailure
			res.Certificate = cert
			if sp.Recording() {
				sp.Event("dynamic.certificate",
					trace.Int("src_component", int64(cert.SrcComponent)),
					trace.Int("dst_component", int64(cert.DstComponent)),
					trace.Int("components", int64(cert.Components)),
					trace.Int("version", int64(cert.Version)))
			}
			return res, nil
		}
	}

	bound := 0
	round := 1
	maxRounds := r.cfg.maxRounds()
	if cur != nil {
		bound = cur.Bound
		if round = cur.Rounds; round < 1 {
			round = 1
		}
		if maxRounds < round {
			// The interrupted round always gets to finish, even when the
			// resuming router's round budget is tighter than the minter's.
			maxRounds = round
		}
	}
	for ; round <= maxRounds; round++ {
		if rt.resume == nil {
			var err error
			bound, err = r.nextBound(bound)
			if err != nil {
				return res, err
			}
			res.Rounds++
		}
		res.Bound = bound
		rt.sp = sp.Child("dynamic.round")
		if rt.sp.Recording() {
			rt.sp.SetAttr(trace.Int("round", int64(round)), trace.Int("bound", int64(bound)))
		}
		st, delivered, err := r.runRound(s, t, bound, rt)
		if rt.sp.Recording() {
			rt.sp.SetAttr(trace.Bool("delivered", delivered), trace.String("status", st.String()))
			rt.sp.End()
		}
		if err != nil {
			return res, err
		}
		if rt.exhausted != "" {
			res.Exhausted = rt.exhausted
			res.Cursor = rt.cursor
			return res, nil
		}
		if !delivered {
			res.AbortedRounds++
			continue
		}
		if st == netsim.StatusSuccess {
			res.Status = st
			return res, nil
		}
		if st == netsim.StatusFailure {
			definitive, err := r.definitiveFailure(s, t, bound)
			if err != nil {
				return res, err
			}
			if definitive {
				res.Status = netsim.StatusFailure
				return res, nil
			}
		}
	}
	return res, fmt.Errorf("%w: %d rounds", ErrRoundsExhausted, maxRounds)
}

// nextBound advances the doubling schedule, mirroring the static router:
// start at 4, double, clamp at MaxBound (default 4·|V(G′)| of the current
// snapshot). Under KnownN the bound is fixed. A shrinking graph never
// shrinks the bound below its previous value.
func (r *Router) nextBound(prev int) (int, error) {
	if r.cfg.KnownN > 0 {
		return r.cfg.KnownN, nil
	}
	maxBound := r.cfg.MaxBound
	if maxBound <= 0 {
		_, flat, err := r.w.Compiled()
		if err != nil {
			return 0, err
		}
		maxBound = 4 * flat.NumNodes()
	}
	b := 4
	if prev > 0 {
		b = prev * 2
	}
	if b > maxBound {
		b = maxBound
	}
	if b < prev {
		b = prev
	}
	return b, nil
}

// runRound executes one round at the given bound, interleaving epochs.
// delivered=false means the round was broken by topology change (no
// verdict; the caller retries).
func (r *Router) runRound(s, t graph.NodeID, bound int, rt *runState) (netsim.Status, bool, error) {
	if r.cfg.DisableFlat {
		return r.runRoundRef(s, t, bound, rt)
	}
	return r.runRoundFlat(s, t, bound, rt)
}

// seqLen is L_bound for this protocol instance.
func (r *Router) seqLen(bound int) int {
	return ues.Length(bound, r.cfg.LengthFactor)
}

// roundHopCap bounds one round's total hops across resumptions. A clean
// round takes at most 2L+2 hops (the index is monotone in each phase);
// the slack absorbs resumption turbulence, and hitting the cap aborts the
// round rather than erroring.
func roundHopCap(L int) int64 { return 4*int64(L) + 16 }

// flatStepperAt builds a (possibly resumed) flat stepper entering at the
// canonical gadget of original node at, carrying the given header state.
func flatStepperAt(red *degred.Reduced, flat *flatgraph.Graph, at, s, t graph.NodeID,
	seq flatgraph.Seq, index int64, backward, success bool) (*flatgraph.RouteStepper, error) {
	entry, ok := red.Entry(at)
	if !ok {
		return nil, fmt.Errorf("dynamic: %w: %d", graph.ErrNodeNotFound, at)
	}
	dense, ok := flat.Index(entry)
	if !ok {
		return nil, fmt.Errorf("dynamic: gadget %d missing from snapshot", entry)
	}
	return flat.ResumeRouteStepper(dense, 0, s, t, seq, index, backward, success)
}

// runRoundFlat drives the round on the compiled flat stepper.
func (r *Router) runRoundFlat(s, t graph.NodeID, bound int, rt *runState) (netsim.Status, bool, error) {
	L := r.seqLen(bound)
	seq := flatgraph.Seq{Seed: r.cfg.Seed, Base: 3, Length: L}
	red, flat, err := r.w.Compiled()
	if err != nil {
		return netsim.StatusNone, false, err
	}
	var (
		st      *flatgraph.RouteStepper
		segBase int64 // hops accumulated in completed segments
		maxIdx  = int64(1)
	)
	if cur := rt.resume; cur != nil {
		rt.resume = nil
		segBase = cur.RoundHops
		if cur.MaxIndex > maxIdx {
			maxIdx = cur.MaxIndex
		}
		if cur.Version == r.w.Version() {
			// Same topology the cursor was minted on: the dense position is
			// still valid, re-enter exactly.
			st, err = flat.ResumeRouteStepper(cur.Node, cur.InPort, s, t, seq,
				cur.Index, cur.Backward, cur.Success)
		} else {
			// The world moved on: re-enter at the canonical gadget of the
			// original node, the same rule a mid-walk recompile applies.
			st, err = flatStepperAt(red, flat, cur.At, s, t, seq,
				cur.Index, cur.Backward, cur.Success)
			if err == nil {
				rt.res.Resumptions++
			}
		}
		if err != nil {
			return netsim.StatusNone, false, fmt.Errorf("%w: %v", route.ErrBadCursor, err)
		}
		if rt.sp.Recording() {
			rt.sp.Event("dynamic.cursor_resume",
				trace.Int("index", cur.Index), trace.Bool("backward", cur.Backward),
				trace.Int("round_hops", cur.RoundHops))
		}
	} else {
		st, err = flatStepperAt(red, flat, s, s, t, seq, 1, false, false)
		if err != nil {
			return netsim.StatusNone, false, err
		}
	}
	sink := r.hopSink(rt, s, t)
	if sink != nil {
		st.Instrument(sink)
	}
	var (
		prevHops int64
		hopCap   = roundHopCap(L)
		perEpoch = r.cfg.hopsPerEpoch()
		armed    = rt.armed
		budget   = rt.budget
		chz      = rt.chaos
	)
	finishHops := func() {
		rt.res.Hops += segBase + st.Hops()
		rt.budget = budget
	}
	// exhaust stops the round without a verdict: fold the partial round's
	// hops into the result, and mint the cursor that re-enters this exact
	// position. Hops/RoundHops stay split so the continued round's total
	// folds in without double counting.
	exhaust := func(reason route.ExhaustReason) {
		if idx := st.Index(); idx > maxIdx {
			maxIdx = idx
		}
		node, inPort := st.Position()
		completed := rt.res.Hops
		roundHops := segBase + st.Hops()
		finishHops()
		r.mergeHeaderBits(rt, s, t, maxIdx)
		rt.exhausted = reason
		rt.cursor = &route.Cursor{
			Src: s, Dst: t, Bound: bound,
			Node: node, InPort: inPort, At: flat.OriginalOf(node),
			Index: st.Index(), Backward: st.Backward(), Success: st.Success(),
			Version:       r.w.Version(),
			Hops:          completed,
			RoundHops:     roundHops,
			MaxIndex:      maxIdx,
			Rounds:        rt.res.Rounds,
			AbortedRounds: rt.res.AbortedRounds,
			Epochs:        rt.res.Epochs,
			Resumptions:   rt.res.Resumptions,
			SinceEpoch:    rt.sinceEpoch,
			MaxHeaderBits: rt.res.MaxHeaderBits,
		}
		if rt.sp.Recording() {
			rt.sp.Event("dynamic.exhausted", trace.String("reason", string(reason)),
				trace.Int("round_hops", roundHops), trace.Int("index", rt.cursor.Index))
		}
	}
	// Deadlines are checked at round starts and epoch boundaries, never per
	// hop: a frozen-clock walk costs one Err read per round.
	if rt.ctx != nil && rt.ctx.Err() != nil {
		exhaust(route.ExhaustDeadline)
		return netsim.StatusNone, false, nil
	}
	for !st.Done() {
		if idx := st.Index(); idx > maxIdx {
			maxIdx = idx
		}
		st.Step()
		h := st.Hops()
		if h == prevHops {
			continue // terminal activation: no hop
		}
		prevHops = h
		rt.sinceEpoch++
		if chz != nil {
			chz.HopDelay()
		}
		if segBase+h > hopCap {
			finishHops()
			r.mergeHeaderBits(rt, s, t, maxIdx)
			if rt.sp.Recording() {
				rt.sp.Event("dynamic.round_abort", trace.String("reason", "hop_cap"),
					trace.Int("hops", segBase+h))
			}
			return netsim.StatusNone, false, nil
		}
		if perEpoch > 0 && rt.sinceEpoch >= perEpoch {
			rt.sinceEpoch = 0
			ver := r.w.Version()
			node, _ := st.Position()
			probe := Probe{
				Active:   true,
				At:       flat.OriginalOf(node),
				nextLink: r.flatLookahead(flat, st, s, t, seq),
			}
			if err := r.w.Advance(probe); err != nil {
				finishHops()
				return netsim.StatusNone, false, err
			}
			rt.res.Epochs++
			if rt.sp.Recording() {
				rt.sp.Event("dynamic.epoch",
					trace.Int("epoch", int64(rt.res.Epochs)), trace.Int("hops", segBase+h))
			}
			if r.w.Version() != ver {
				red2, flat2, err := r.w.Compiled()
				if err != nil {
					finishHops()
					return netsim.StatusNone, false, err
				}
				node, _ = st.Position()
				cur := flat.OriginalOf(node)
				st2, err := flatStepperAt(red2, flat2, cur, s, t, seq, st.Index(), st.Backward(), st.Success())
				if err != nil {
					finishHops()
					return netsim.StatusNone, false, err
				}
				segBase += st.Hops()
				prevHops = 0
				st, red, flat = st2, red2, flat2
				if sink != nil {
					st.Instrument(sink)
				}
				rt.res.Resumptions++
				if rt.sp.Recording() {
					rt.sp.Event("dynamic.resume",
						trace.Int("version", int64(r.w.Version())),
						trace.Int("at", int64(cur)),
						trace.Int("index", st.Index()),
						trace.Bool("backward", st.Backward()))
				}
			}
			if rt.ctx != nil && rt.ctx.Err() != nil {
				exhaust(route.ExhaustDeadline)
				return netsim.StatusNone, false, nil
			}
		}
		if armed {
			// The budget pays for message hops, nothing else. Decrementing
			// after the epoch work keeps the epoch clock identical between a
			// split and an uninterrupted walk; skipping the check when the
			// hop delivered keeps a budget that expires exactly at delivery
			// from stealing the verdict.
			budget--
			if budget <= 0 && !st.Done() {
				exhaust(route.ExhaustBudget)
				return netsim.StatusNone, false, nil
			}
		}
	}
	finishHops()
	r.mergeHeaderBits(rt, s, t, maxIdx)
	if err := st.Err(); err != nil {
		if errors.Is(err, flatgraph.ErrUnwound) {
			// Churn redirected the confirmation until it unwound its whole
			// index budget without finding s: no verdict, retry the round.
			if rt.sp.Recording() {
				rt.sp.Event("dynamic.round_abort", trace.String("reason", "confirmation_unwound"))
			}
			return netsim.StatusNone, false, nil
		}
		return netsim.StatusNone, false, fmt.Errorf("dynamic: flat walk: %w", err)
	}
	if st.Success() {
		return netsim.StatusSuccess, true, nil
	}
	return netsim.StatusFailure, true, nil
}

// hopSink adapts the round span's hop ring to the flat stepper's sink,
// stamping each hop with the header size the reference serialization
// would put on the wire at that index. Returns nil when the round is
// unsampled, which keeps the stepper on its uninstrumented path.
func (r *Router) hopSink(rt *runState, s, t graph.NodeID) flatgraph.HopSink {
	if !rt.sp.Recording() {
		return nil
	}
	sp := rt.sp
	return func(node graph.NodeID, index int64, backward bool) {
		sp.Hop(trace.HopEvent{
			Node:       int64(node),
			Index:      index,
			HeaderBits: int32(netsim.Header{Src: s, Dst: t, Dir: netsim.Forward, Index: index}.Bits()),
			Backward:   backward,
		})
	}
}

// mergeHeaderBits folds a round's peak header size into the result. The
// largest header any activation observes carries the round's peak index;
// src, dst, and the dir/status byte are size-constant, so one evaluation
// at the peak reproduces the reference's per-activation maximum (the same
// reconstruction the static flat round uses).
func (r *Router) mergeHeaderBits(rt *runState, s, t graph.NodeID, maxIdx int64) {
	hb := netsim.Header{Src: s, Dst: t, Dir: netsim.Forward, Index: maxIdx}.Bits()
	if hb > rt.res.MaxHeaderBits {
		rt.res.MaxHeaderBits = hb
	}
}

// flatLookahead returns the lazy next-link computation for the probe: it
// clones the walk's stateless coordinates into a throwaway stepper and
// scans ahead on the current snapshot for the first hop that crosses
// between gadgets of different original nodes — the next real link the
// message will ride. (Under parallel edges the adversary cuts one link
// between that node pair, not necessarily the walk's exact copy.)
func (r *Router) flatLookahead(flat *flatgraph.Graph, st *flatgraph.RouteStepper,
	s, t graph.NodeID, seq flatgraph.Seq) func() (Edge, bool) {
	return func() (Edge, bool) {
		node, inPort := st.Position()
		la, err := flat.ResumeRouteStepper(node, inPort, s, t, seq, st.Index(), st.Backward(), st.Success())
		if err != nil {
			return Edge{}, false
		}
		prev := node
		for k := 0; k < r.cfg.lookahead(); k++ {
			if la.Step() {
				return Edge{}, false
			}
			cur, _ := la.Position()
			if ou, ov := flat.OriginalOf(prev), flat.OriginalOf(cur); ou != ov {
				if ov < ou {
					ou, ov = ov, ou
				}
				return Edge{U: ou, V: ov}, true
			}
			prev = cur
		}
		return Edge{}, false
	}
}

// runRoundRef drives the round on the netsim reference engine: the
// stateless per-node handler behind a token stepper, with the carried
// header re-injected into a fresh engine after each snapshot change.
func (r *Router) runRoundRef(s, t graph.NodeID, bound int, rt *runState) (netsim.Status, bool, error) {
	p := &ues.Pseudorandom{Seed: r.cfg.Seed, N: bound, Base: 3, LengthFactor: r.cfg.LengthFactor}
	seq := p.Compiled()
	L := seq.Len()
	red, flat, err := r.w.Compiled()
	if err != nil {
		return netsim.StatusNone, false, err
	}
	mkStepper := func(red *degred.Reduced, at graph.NodeID, h netsim.Header) (*netsim.Stepper, error) {
		work := red.Graph()
		eng := netsim.NewEngine(work,
			route.StepHandler(seq, projector(red)),
			netsim.WithMemoryBudget(route.DefaultMemoryBudget(work.NumNodes())))
		entry, ok := red.Entry(at)
		if !ok {
			return nil, fmt.Errorf("dynamic: %w: %d", graph.ErrNodeNotFound, at)
		}
		return eng.Stepper(entry, 0, h, 2*int64(L)+8)
	}
	st, err := mkStepper(red, s, netsim.Header{Src: s, Dst: t, Dir: netsim.Forward, Status: netsim.StatusNone, Index: 1})
	if err != nil {
		return netsim.StatusNone, false, err
	}
	var (
		segBase  int64
		prevHops int64
		hopCap   = roundHopCap(L)
		perEpoch = r.cfg.hopsPerEpoch()
	)
	finish := func() {
		rt.res.Hops += segBase + st.Result().Hops
		if hb := st.Result().MaxHeaderBits; hb > rt.res.MaxHeaderBits {
			rt.res.MaxHeaderBits = hb
		}
	}
	for !st.Done() {
		if h := st.Header(); h.Dir == netsim.Backward && h.Index < 1 {
			// A resumed confirmation unwound its whole budget somewhere
			// other than the source; the handler has no step left to undo.
			// Abort the round (the flat path reports ErrUnwound here).
			at, _ := st.At()
			if o, ok := red.Original(at); !ok || o != s {
				finish()
				return netsim.StatusNone, false, nil
			}
		}
		st.Step()
		h := st.Result().Hops
		if h == prevHops {
			continue
		}
		prevHops = h
		rt.sinceEpoch++
		if segBase+h > hopCap {
			finish()
			return netsim.StatusNone, false, nil
		}
		if perEpoch > 0 && rt.sinceEpoch >= perEpoch {
			rt.sinceEpoch = 0
			ver := r.w.Version()
			probe, perr := r.refProbe(red, flat, st, s, t, bound)
			if perr != nil {
				finish()
				return netsim.StatusNone, false, perr
			}
			if err := r.w.Advance(probe); err != nil {
				finish()
				return netsim.StatusNone, false, err
			}
			rt.res.Epochs++
			if r.w.Version() != ver {
				red2, flat2, err := r.w.Compiled()
				if err != nil {
					finish()
					return netsim.StatusNone, false, err
				}
				at, _ := st.At()
				cur, ok := red.Original(at)
				if !ok {
					cur = at
				}
				hdr := st.Header()
				if hb := st.Result().MaxHeaderBits; hb > rt.res.MaxHeaderBits {
					rt.res.MaxHeaderBits = hb
				}
				segBase += st.Result().Hops
				st2, err := mkStepper(red2, cur, hdr)
				if err != nil {
					rt.res.Hops += segBase
					return netsim.StatusNone, false, err
				}
				prevHops = 0
				st, red, flat = st2, red2, flat2
				rt.res.Resumptions++
			}
		}
	}
	finish()
	out := st.Result()
	if err := st.Err(); err != nil {
		if errors.Is(err, netsim.ErrHopBudget) {
			return netsim.StatusNone, false, nil // churn turbulence: retry round
		}
		return netsim.StatusNone, false, fmt.Errorf("dynamic: reference walk: %w", err)
	}
	if !out.Delivered {
		return netsim.StatusNone, false, fmt.Errorf("dynamic: message dropped at %d", out.Final)
	}
	return out.Header.Status, true, nil
}

// refProbe builds the probe for the reference path. The lookahead runs on
// the flat snapshot of the same reduced graph (identical structure), so
// both execution paths expose identical adversary semantics.
func (r *Router) refProbe(red *degred.Reduced, flat *flatgraph.Graph, st *netsim.Stepper,
	s, t graph.NodeID, bound int) (Probe, error) {
	at, inPort := st.At()
	orig, ok := red.Original(at)
	if !ok {
		orig = at
	}
	dense, ok := flat.Index(at)
	if !ok {
		return Probe{Active: true, At: orig}, nil
	}
	h := st.Header()
	seq := flatgraph.Seq{Seed: r.cfg.Seed, Base: 3, Length: r.seqLen(bound)}
	la, err := flat.ResumeRouteStepper(dense, int32(inPort), s, t, seq,
		h.Index, h.Dir == netsim.Backward, h.Status == netsim.StatusSuccess)
	if err != nil {
		return Probe{Active: true, At: orig}, nil
	}
	return Probe{
		Active:   true,
		At:       orig,
		nextLink: r.flatLookahead(flat, la, s, t, seq),
	}, nil
}

// projector returns the gadget-to-original projection of a reduction.
func projector(red *degred.Reduced) func(graph.NodeID) graph.NodeID {
	return func(v graph.NodeID) graph.NodeID {
		if o, ok := red.Original(v); ok {
			return o
		}
		return v
	}
}

// certificate answers the reachability question in O(1) from the snapshot's
// memoized component index (flatgraph.Components, rebuilt lazily per
// compiled snapshot, so the index survives epoch recompiles at the price of
// one union-find per topology version). A non-nil certificate proves s and
// t lie in different components of the snapshot current at decision time —
// the same decision-time semantics as definitiveFailure, precomputed.
//
// Like the static router, certificates only fire on multi-component
// snapshots: on a single-component snapshot every existing target is
// reachable, and a name with no gadget is only provably absent once the
// walk covers the component. The Count()==1 early-out is what keeps the
// shared-world hot path at two loads.
func (r *Router) certificate(red *degred.Reduced, flat *flatgraph.Graph, s, t graph.NodeID) *route.Certificate {
	comps := flat.Components()
	if comps.Count() == 1 {
		return nil
	}
	se, ok := red.Entry(s)
	if !ok {
		return nil
	}
	si, ok := flat.Index(se)
	if !ok {
		return nil
	}
	sc := comps.Of(si)
	tc := int32(-1)
	if te, ok := red.Entry(t); ok {
		if ti, ok := flat.Index(te); ok {
			tc = comps.Of(ti)
		}
	}
	if tc == sc {
		return nil
	}
	snap := r.w.Snapshot()
	return &route.Certificate{
		SrcComponent: sc,
		DstComponent: tc,
		Components:   comps.Count(),
		Epoch:        snap.Epoch,
		Version:      snap.Version,
	}
}

// definitiveFailure runs the §4 closure check on the instantaneous
// topology: walk T_bound from the source entry, and accept the failure
// verdict only if the visited set is closed under neighbourhood (it equals
// the source component) and contains no gadget of t. This is what makes a
// dynamic failure verdict oracle-sound: it certifies unreachability on the
// topology as it stands at decision time.
func (r *Router) definitiveFailure(s, t graph.NodeID, bound int) (bool, error) {
	red, flat, err := r.w.Compiled()
	if err != nil {
		return false, err
	}
	entry, ok := red.Entry(s)
	if !ok {
		return false, fmt.Errorf("dynamic: cover check: %w: %d", graph.ErrNodeNotFound, s)
	}
	dense, ok := flat.Index(entry)
	if !ok {
		return false, fmt.Errorf("dynamic: cover check: gadget %d missing from snapshot", entry)
	}
	seq := flatgraph.Seq{Seed: r.cfg.Seed, Base: 3, Length: r.seqLen(bound)}
	visited := make([]bool, flat.NumNodes())
	if _, err := flat.CoverWalk(dense, seq, visited, nil); err != nil {
		return false, fmt.Errorf("dynamic: cover check: %w", err)
	}
	if !flat.Closed(visited) {
		return false, nil
	}
	for i, vis := range visited {
		if vis && flat.OriginalOf(int32(i)) == t {
			return false, nil // t is reachable right now; not a failure
		}
	}
	return true, nil
}
