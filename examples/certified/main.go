// Certified demonstrates end-to-end routing with a *certified* universal
// exploration sequence: an explicit sequence verified against every labeled
// 3-regular multigraph on ≤ 4 nodes, from every initial edge — the finite
// analogue of the object Theorem 4 promises asymptotically. A 3-node path
// network reduces to exactly 4 gadget nodes, so routing on it with the
// certified sequence is guaranteed by exhaustive verification, with no
// empirical assumptions anywhere in the chain.
package main

import (
	"fmt"
	"log"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/route"
	"repro/internal/ues"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("searching for a certified universal exploration sequence (n <= 4)...")
	seq, err := ues.CertifiedSmall(4, 2026)
	if err != nil {
		return err
	}
	fmt.Printf("found and minimized: length %d\n  ", seq.Len())
	for i := 1; i <= seq.Len(); i++ {
		fmt.Printf("%d", seq.At(i))
	}
	fmt.Println()

	// The certificate quantifies over EVERY labeled cubic multigraph on
	// <= 4 nodes: re-verify it here, from scratch.
	var count int
	for _, n := range []int{2, 4} {
		gs, err := ues.EnumerateCubicPairings(n)
		if err != nil {
			return err
		}
		count += len(gs)
		if err := ues.Verify(seq, gs); err != nil {
			return err
		}
	}
	fmt.Printf("verified against all %d connected labeled cubic multigraphs on <= 4 nodes\n\n", count)

	// A 3-node path reduces (Figure 1) to a 4-node 3-regular multigraph —
	// inside the certified class. Routing with this sequence is therefore
	// guaranteed by certification alone.
	g := gen.Path(3)
	r, err := route.New(g, route.Config{
		KnownN:          4,
		SequenceFactory: func(bound int) ues.Sequence { return seq },
		WireFormat:      true, // serialize headers on every hop, like a real link
	})
	if err != nil {
		return err
	}
	fmt.Printf("network: path of 3 nodes (reduces to %d gadget nodes)\n", r.WorkGraph().NumNodes())
	for _, target := range []graph.NodeID{1, 2} {
		res, err := r.Route(0, target)
		if err != nil {
			return err
		}
		fmt.Printf("route 0 -> %d: %s in %d hops (certified sequence, wire-format headers)\n",
			target, res.Status, res.Hops)
	}

	// Failure detection is certified too: an unknown destination bounces
	// back after the sequence is exhausted.
	res, err := r.Route(0, 99)
	if err != nil {
		return err
	}
	fmt.Printf("route 0 -> 99: %s after %d hops — certified termination\n", res.Status, res.Hops)
	return nil
}
