package obs

import (
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the edge semantics of the bucket
// scan (`v > bounds[i]` advances): a value exactly on a bound lands in
// that bound's bucket (le is inclusive, the Prometheus contract), values
// below the first bound — including negatives — land in the first
// bucket, and values above the last bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram("adhoc_edge", "edge behavior", nil, []int64{0, 10, 100})
	for _, v := range []int64{-7, -1, 0, 1, 10, 11, 100, 101, 1 << 40} {
		h.Observe(v)
	}
	r := NewRegistry()
	r.MustRegister(h)
	out := render(t, r)
	for _, want := range []string{
		`adhoc_edge_bucket{le="0"} 3`,    // -7, -1, and 0 exactly on the bound
		`adhoc_edge_bucket{le="10"} 5`,   // 1, and 10 exactly on the bound
		`adhoc_edge_bucket{le="100"} 7`,  // 11, and 100 exactly on the bound
		`adhoc_edge_bucket{le="+Inf"} 9`, // 101 and 1<<40 overflow
		"adhoc_edge_count 9",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("boundary exposition missing %q in:\n%s", want, out)
		}
	}
	wantSum := int64(-7 - 1 + 0 + 1 + 10 + 11 + 100 + 101 + (1 << 40))
	if got := h.Sum(); got != wantSum {
		t.Errorf("Sum = %d, want %d (negatives must subtract)", got, wantSum)
	}
	if got := h.Count(); got != 9 {
		t.Errorf("Count = %d, want 9", got)
	}
}

// checkCumulative parses one histogram exposition and verifies the
// snapshot invariants that must hold even mid-race: cumulative bucket
// counts are nondecreasing in bound order and _count equals the +Inf
// bucket.
func checkCumulative(t *testing.T, name, out string) {
	t.Helper()
	var prev, inf int64 = -1, -1
	var count int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if v, ok := strings.CutPrefix(line, name+"_count "); ok {
			count, _ = strconv.ParseInt(v, 10, 64)
			continue
		}
		if !strings.HasPrefix(line, name+"_bucket{") {
			continue
		}
		_, val, ok := strings.Cut(line, "} ")
		if !ok {
			t.Errorf("unparseable bucket line %q", line)
			return
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			t.Errorf("bucket line %q: %v", line, err)
			return
		}
		if n < prev {
			t.Errorf("cumulative buckets decreased (%d after %d):\n%s", n, prev, out)
			return
		}
		prev = n
		inf = n
	}
	if count != inf {
		t.Errorf("_count %d != +Inf bucket %d:\n%s", count, inf, out)
	}
}

// TestHistogramObserveVsCollect races the lock-free Observe path against
// a scraping collector: renders taken mid-write must still be internally
// consistent (nondecreasing cumulative buckets, _count == +Inf), and
// once the writers stop the totals must be exact. Run under -race this
// also proves the paths are data-race-free.
func TestHistogramObserveVsCollect(t *testing.T) {
	h := NewHistogram("adhoc_race", "collect race", nil, []int64{1, 10, 100, 1000})
	const workers, per = 4, 5_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64((w*per + i) % 2000))
			}
		}(w)
	}
	stop := make(chan struct{})
	collectDone := make(chan struct{})
	go func() {
		defer close(collectDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b bytes.Buffer
			h.Write(&b)
			checkCumulative(t, "adhoc_race", b.String())
			if q := h.Quantile(0.9); q < 0 {
				t.Errorf("mid-race quantile went negative: %g", q)
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-collectDone

	if got := h.Count(); got != workers*per {
		t.Errorf("final count = %d, want %d", got, workers*per)
	}
	var b bytes.Buffer
	h.Write(&b)
	checkCumulative(t, "adhoc_race", b.String())
	if !strings.Contains(b.String(), "adhoc_race_count "+strconv.Itoa(workers*per)) {
		t.Errorf("final exposition count wrong:\n%s", b.String())
	}
}
