// Command metriclint holds a Prometheus/OpenMetrics text exposition to
// the format contract a strict scraper enforces: metadata before
// samples, label syntax, histogram bucket ordering and cumulativity,
// duplicate-series detection, and — in OpenMetrics mode — the # EOF
// terminator, counter sample naming, and exemplar syntax.
//
// Usage:
//
//	curl -s localhost:7070/metrics | metriclint
//	metriclint -url http://localhost:7070/metrics -openmetrics
//	metriclint exposition.txt
//
// With -url it fetches the exposition itself, sending the OpenMetrics
// Accept header when -openmetrics is set and verifying the server
// negotiated the requested content type. Exit status is nonzero when
// the exposition (or the fetch) fails, one lint error per line on
// stderr — so CI can scrape a live daemon without a client library.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "metriclint:", err)
		os.Exit(1)
	}
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("metriclint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		url     = fs.String("url", "", "fetch the exposition from this URL instead of stdin/file")
		om      = fs.Bool("openmetrics", false, "lint as OpenMetrics (and negotiate it when fetching)")
		timeout = fs.Duration("timeout", 10*time.Second, "fetch timeout with -url")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url != "" && fs.NArg() > 0 {
		return errors.New("pass either -url or a file, not both")
	}

	text, err := read(*url, *om, *timeout, fs.Args())
	if err != nil {
		return err
	}
	errs := obs.Lint(text, *om)
	for _, e := range errs {
		fmt.Fprintln(errOut, e)
	}
	if n := len(errs); n > 0 {
		return fmt.Errorf("%d lint error(s)", n)
	}
	format := "prometheus"
	if *om {
		format = "openmetrics"
	}
	fmt.Fprintf(out, "ok: %d lines, %s\n", strings.Count(text, "\n"), format)
	return nil
}

// read resolves the exposition source: -url wins, then a file argument,
// then stdin.
func read(url string, om bool, timeout time.Duration, files []string) (string, error) {
	switch {
	case url != "":
		return fetch(url, om, timeout)
	case len(files) == 1:
		data, err := os.ReadFile(files[0])
		return string(data), err
	case len(files) == 0:
		data, err := io.ReadAll(os.Stdin)
		return string(data), err
	default:
		return "", fmt.Errorf("expected at most one file, got %d", len(files))
	}
}

// fetch scrapes url the way a monitoring agent would, negotiating the
// OpenMetrics content type when asked and failing when the server does
// not honor the negotiation — a daemon silently falling back to the
// classic format would otherwise pass an -openmetrics lint by luck.
func fetch(url string, om bool, timeout time.Duration) (string, error) {
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		return "", err
	}
	want := obs.ContentTypePrometheus
	if om {
		req.Header.Set("Accept", obs.ContentTypeOpenMetrics+",text/plain;q=0.5")
		want = obs.ContentTypeOpenMetrics
	}
	client := &http.Client{Timeout: timeout}
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !sameMediaType(ct, want) {
		return "", fmt.Errorf("GET %s: Content-Type %q, want %q", url, ct, want)
	}
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// sameMediaType compares the media type and any version parameter,
// ignoring charset and parameter order.
func sameMediaType(got, want string) bool {
	norm := func(ct string) (string, string) {
		parts := strings.Split(ct, ";")
		media, version := strings.TrimSpace(parts[0]), ""
		for _, p := range parts[1:] {
			p = strings.TrimSpace(p)
			if v, ok := strings.CutPrefix(p, "version="); ok {
				version = v
			}
		}
		return media, version
	}
	gm, gv := norm(got)
	wm, wv := norm(want)
	return gm == wm && gv == wv
}
