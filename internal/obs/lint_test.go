package obs

import (
	"bytes"
	"strings"
	"testing"
)

func lintErrs(t *testing.T, text string, om bool) []string {
	t.Helper()
	var out []string
	for _, err := range Lint(text, om) {
		out = append(out, err.Error())
	}
	return out
}

func wantErr(t *testing.T, errs []string, substr string) {
	t.Helper()
	for _, e := range errs {
		if strings.Contains(e, substr) {
			return
		}
	}
	t.Fatalf("no error containing %q in %v", substr, errs)
}

func TestLintCleanClassic(t *testing.T) {
	text := `# HELP test_ops_total Operations.
# TYPE test_ops_total counter
test_ops_total{shard="a"} 7
test_ops_total{shard="b"} 9
# HELP test_seconds Latency.
# TYPE test_seconds histogram
test_seconds_bucket{le="0.1"} 1
test_seconds_bucket{le="1"} 3
test_seconds_bucket{le="+Inf"} 4
test_seconds_sum 1.5
test_seconds_count 4
`
	if errs := Lint(text, false); errs != nil {
		t.Fatalf("clean exposition flagged: %v", errs)
	}
}

func TestLintCleanOpenMetrics(t *testing.T) {
	text := `# HELP test_ops Operations.
# TYPE test_ops counter
test_ops_total 7
# HELP test_seconds Latency.
# TYPE test_seconds histogram
test_seconds_bucket{le="0.1"} 1 # {trace_id="abc123"} 0.05 1700000000.123
test_seconds_bucket{le="+Inf"} 2
test_seconds_sum 1.1
test_seconds_count 2
# EOF
`
	if errs := Lint(text, true); errs != nil {
		t.Fatalf("clean OpenMetrics flagged: %v", errs)
	}
}

func TestLintCatchesProblems(t *testing.T) {
	cases := []struct {
		name string
		text string
		om   bool
		want string
	}{
		{"missing type", "foo 1\n", false, "no # TYPE"},
		{"bad name", "# TYPE 9bad counter\n", false, "invalid metric name"},
		{"bad label", `# TYPE a_total counter` + "\n" + `a_total{9x="1"} 1` + "\n", false, "invalid label name"},
		{"unquoted value", `# TYPE a_total counter` + "\n" + `a_total{x=1} 1` + "\n", false, "not quoted"},
		{"duplicate series", "# TYPE a_total counter\na_total 1\na_total 2\n", false, "duplicate series"},
		{"duplicate label", `# TYPE a_total counter` + "\n" + `a_total{x="1",x="2"} 1` + "\n", false, "duplicate label"},
		{"bad value", "# TYPE a_total counter\na_total x\n", false, "bad value"},
		{"le out of order", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"0.5\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n", false, "out of order"},
		{"cum decrease", "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"2\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n", false, "decreased"},
		{"missing inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", false, "missing +Inf"},
		{"count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n", false, "disagrees"},
		{"missing sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n", false, "missing _sum"},
		{"interleaved", "# TYPE a_total counter\na_total 1\n# TYPE b_total counter\nb_total 1\na_total{x=\"2\"} 1\n", false, "interleaved"},
		{"missing eof", "# TYPE a counter\na_total 1\n", true, "missing # EOF"},
		{"content after eof", "# EOF\n# TYPE a counter\n", true, "after # EOF"},
		{"om counter suffix", "# TYPE a_total counter\na_total 1\n# EOF\n", true, "must not carry the _total suffix"},
		{"om sample suffix", "# TYPE a counter\na 1\n# EOF\n", true, "must end in _total"},
		{"exemplar classic", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 # {t=\"1\"} 0.5\nh_sum 1\nh_count 1\n", false, "non-OpenMetrics"},
		{"exemplar on gauge", "# TYPE g gauge\ng 1 # {t=\"1\"} 0.5\n# EOF\n", true, "only valid on counters and histogram buckets"},
		{"exemplar bad value", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 # {t=\"1\"} zz\nh_sum 1\nh_count 1\n# EOF\n", true, "bad exemplar value"},
		{"exemplar too long", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 # {t=\"" + strings.Repeat("x", 140) + "\"} 0.5\nh_sum 1\nh_count 1\n# EOF\n", true, "128 runes"},
		{"histogram bare sample", "# TYPE h histogram\nh 1\n", false, "without _bucket"},
		{"bucket without le", "# TYPE h histogram\nh_bucket{x=\"1\"} 1\nh_sum 1\nh_count 1\n", false, "without le label"},
		{"duplicate help", "# HELP a_total x\n# HELP a_total y\n# TYPE a_total counter\na_total 1\n", false, "duplicate HELP"},
		{"unknown type", "# TYPE a widget\n", false, "unknown TYPE"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantErr(t, lintErrs(t, tc.text, tc.om), tc.want)
		})
	}
}

func TestLintEscapedLabelValues(t *testing.T) {
	text := "# TYPE a_total counter\n" + `a_total{x="q\"uo\\te\n"} 1` + "\n"
	if errs := Lint(text, false); errs != nil {
		t.Fatalf("escaped label value flagged: %v", errs)
	}
}

// TestLintSelf holds the package's own writers to the linter's contract.
func TestLintSelf(t *testing.T) {
	reg := NewRegistry()
	cv := NewCounterVec("self_ops_total", "Ops.", []string{"net"}, 2)
	hv := NewLatencyHistogramVec("self_seconds", "Latency.", []string{"net"}, 2)
	reg.MustRegister(cv, hv)
	if err := RegisterRuntimeMetrics(reg); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"a", "b", "c", "d"} { // past the cap
		cv.With(n).Inc()
		hv.With(n).ObserveExemplar(5_000_000, "cafe")
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if errs := Lint(buf.String(), false); errs != nil {
		t.Fatalf("self-lint classic: %v", errs)
	}
	buf.Reset()
	reg.WriteOpenMetrics(&buf)
	if errs := Lint(buf.String(), true); errs != nil {
		t.Fatalf("self-lint OpenMetrics: %v", errs)
	}
}
