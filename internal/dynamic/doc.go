// Package dynamic is the dynamic-network subsystem: routing over
// topologies that change while messages are in flight.
//
// Paper anchor: §1.1 assumes the contrary ("we assume that the network is
// static"), but the mechanism the paper builds — stateless intermediate
// nodes, all routing state in an O(log n) header (Theorem 1) — is exactly
// what makes the walk *resumable*: at any instant the entire run is
// (current node, header), so when the topology changes the message simply
// keeps applying the walk rule on whatever graph now exists. This package
// operationalizes that observation:
//
//   - a World owns a mutable port-labeled graph (plus optional node
//     positions), an epoch clock, and a per-epoch compile cache of the
//     Figure 1 degree reduction and its flat CSR snapshot;
//   - Schedules mutate the world at epoch boundaries: Bernoulli edge
//     churn, Markov on/off links, random-waypoint mobility that re-derives
//     unit-disk (optionally Gabriel) edges from moving positions, and an
//     adversarial scheduler that cuts the link the walk is about to use;
//   - a Router advances the walk hop-by-hop through the existing steppers
//     (flatgraph.RouteStepper on the hot path, netsim.Stepper as the
//     instrumented reference), advancing the world every HopsPerEpoch hops
//     and carrying the stateless header across snapshot recompiles.
//
// Verdict semantics under dynamics: a success verdict is sound by
// construction (every hop traversed a then-existing edge, so reaching a
// gadget of t is a real delivery); a failure verdict is only reported
// after the §4 closure check certifies, on the instantaneous topology,
// that t lies outside the source's component.
//
// Concurrency contract: a World is safe for concurrent use — any number
// of Routers may share one (the serving layer's named long-lived worlds),
// each advancing the clock as its own walk progresses. All world state is
// guarded by an internal mutex; Advance additionally serializes whole
// epochs so one schedule's mutation burst never interleaves with
// another's, and Compiled rebuilds the snapshot under the lock so
// concurrent routers blocked on the same stale version share one
// recompile (cache hits, misses, and rebuild time are tracked per world —
// see Snapshot). The compiled artifacts returned by Compiled are
// immutable snapshots, safe to walk after the world has moved on. A
// Router, by contrast, is per-query state: build one per walk. The one
// unlocked accessor is Graph(); concurrent readers must use the locked
// HasNode/NumNodes/NumEdges/Edges instead.
package dynamic
