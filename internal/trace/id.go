package trace

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// TraceID is the 128-bit request identity shared by every span of one
// trace and propagated across process boundaries via traceparent.
type TraceID [16]byte

// SpanID is the 64-bit identity of one span within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value (the W3C
// spec reserves it as "no trace").
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the 32-char lowercase hex form used by traceparent.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the 16-char lowercase hex form used by traceparent.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseTraceID parses the 32-char hex form.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 32 {
		return id, fmt.Errorf("trace: trace id %q: want 32 hex chars", s)
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return id, fmt.Errorf("trace: trace id %q: %w", s, err)
	}
	if id.IsZero() {
		return id, errors.New("trace: all-zero trace id is invalid")
	}
	return id, nil
}

// FlagSampled is the traceparent trace-flags bit meaning the caller has
// decided this request should be recorded.
const FlagSampled = 0x01

// Traceparent renders the W3C trace-context header value
// (version 00): 00-<trace-id>-<parent-id>-<flags>.
func Traceparent(tid TraceID, sid SpanID, flags byte) string {
	b := make([]byte, 0, 55)
	b = append(b, "00-"...)
	b = hex.AppendEncode(b, tid[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, sid[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, []byte{flags})
	return string(b)
}

// ParseTraceparent parses a W3C traceparent header value, accepting any
// version whose first four fields have the version-00 layout (per the
// spec's forward-compatibility rule; version ff is explicitly invalid).
// Malformed values are errors — the caller treats them as "no parent"
// and starts a fresh trace rather than failing the request.
func ParseTraceparent(s string) (tid TraceID, sid SpanID, flags byte, err error) {
	if len(s) < 55 {
		return tid, sid, 0, fmt.Errorf("trace: traceparent %q too short", s)
	}
	if len(s) > 55 && s[55] != '-' {
		return tid, sid, 0, fmt.Errorf("trace: traceparent %q: bad field separator", s)
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tid, sid, 0, fmt.Errorf("trace: traceparent %q: bad field separator", s)
	}
	var ver [1]byte
	if _, err := hex.Decode(ver[:], []byte(s[0:2])); err != nil {
		return tid, sid, 0, fmt.Errorf("trace: traceparent version: %w", err)
	}
	if ver[0] == 0xff {
		return tid, sid, 0, errors.New("trace: traceparent version ff is invalid")
	}
	if ver[0] == 0 && len(s) != 55 {
		return tid, sid, 0, fmt.Errorf("trace: version-00 traceparent %q: want 55 chars", s)
	}
	if tid, err = ParseTraceID(s[3:35]); err != nil {
		return tid, sid, 0, err
	}
	if _, err := hex.Decode(sid[:], []byte(s[36:52])); err != nil {
		return tid, sid, 0, fmt.Errorf("trace: parent id: %w", err)
	}
	if sid.IsZero() {
		return tid, sid, 0, errors.New("trace: all-zero parent id is invalid")
	}
	var fl [1]byte
	if _, err := hex.Decode(fl[:], []byte(s[53:55])); err != nil {
		return tid, sid, 0, fmt.Errorf("trace: trace flags: %w", err)
	}
	return tid, sid, fl[0], nil
}

// idState is the process-wide ID source: a splitmix64 stream over an
// atomic counter, seeded once from the wall clock. One atomic add per
// 64 bits of ID — no locks, no syscalls, and unique within the process
// by construction (the counter never repeats).
var idState atomic.Uint64

func init() {
	idState.Store(uint64(time.Now().UnixNano()))
}

// splitmix64 is the finalizer of the SplitMix64 generator — a bijection
// on uint64, so distinct counter values give distinct outputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func nextWord() uint64 {
	for {
		if w := splitmix64(idState.Add(1)); w != 0 {
			return w
		}
	}
}

// NewTraceID draws a fresh non-zero 128-bit trace ID.
func NewTraceID() TraceID {
	var id TraceID
	binary.BigEndian.PutUint64(id[0:8], nextWord())
	binary.BigEndian.PutUint64(id[8:16], nextWord())
	return id
}

// NewSpanID draws a fresh non-zero 64-bit span ID.
func NewSpanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint64(id[:], nextWord())
	return id
}
