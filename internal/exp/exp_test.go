package exp

import (
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Quick: true, Seed: 7} }

// TestAllExperimentsQuick runs every experiment in quick mode and checks
// each produced a well-formed, non-empty table. The runners contain their
// own hard assertions (e.g. E1/E2 fail if UES misses a single delivery),
// so a green run here certifies the paper's claims at test scale.
func TestAllExperimentsQuick(t *testing.T) {
	tables, err := All(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(Runners()) {
		t.Fatalf("got %d tables, want %d", len(tables), len(Runners()))
	}
	for _, tbl := range tables {
		if tbl.ID == "" || tbl.Title == "" || tbl.Anchor == "" {
			t.Errorf("table %q missing metadata", tbl.ID)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("table %s has no rows", tbl.ID)
		}
		for i, row := range tbl.Rows {
			if len(row) != len(tbl.Columns) {
				t.Errorf("table %s row %d has %d cells, want %d",
					tbl.ID, i, len(row), len(tbl.Columns))
			}
		}
	}
}

func TestByID(t *testing.T) {
	r, err := ByID("E4")
	if err != nil || r.ID != "E4" {
		t.Fatalf("ByID(E4) = %+v, %v", r, err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := &Table{
		ID:      "T0",
		Title:   "demo",
		Anchor:  "none",
		Columns: []string{"a", "b"},
	}
	tbl.AddRow("1", "2")
	tbl.AddNote("note %d", 5)
	md := tbl.Markdown()
	for _, want := range []string{"## T0 — demo", "| a | b |", "| 1 | 2 |", "- note 5"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Columns: []string{"x", "y"}}
	tbl.AddRow("a,b", "plain")
	csv := tbl.CSV()
	if !strings.Contains(csv, `"a,b"`) {
		t.Errorf("CSV did not quote comma cell:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "x,y\n") {
		t.Errorf("CSV header wrong:\n%s", csv)
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		in   []int64
		want int64
	}{
		{in: nil, want: 0},
		{in: []int64{5}, want: 5},
		{in: []int64{3, 1, 2}, want: 2},
		{in: []int64{4, 1, 3, 2}, want: 3},
	}
	for _, tt := range tests {
		if got := median(append([]int64(nil), tt.in...)); got != tt.want {
			t.Errorf("median(%v) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestIntSqrt(t *testing.T) {
	tests := []struct{ in, want int }{
		{1, 1}, {3, 1}, {4, 2}, {15, 3}, {16, 4}, {17, 4}, {100, 10},
	}
	for _, tt := range tests {
		if got := intSqrt(tt.in); got != tt.want {
			t.Errorf("intSqrt(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestFmtRate(t *testing.T) {
	if fmtRate(1, 2) != "50%" || fmtRate(0, 0) != "n/a" {
		t.Fatal("fmtRate wrong")
	}
}
