package registry

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/graph"
)

// Spec declaratively describes a network to compile — the wire form of
// POST /v1/networks. Two shapes exist: a generator invocation (Kind names
// a gen family and the numeric fields parameterize it) or an explicit
// edge list (Kind "edges"). Seed and KnownBound configure the protocol
// the compiled engine speaks; everything else fixes the topology. Equal
// specs compile to identical engines, which is what makes the spec the
// registry's cache key.
type Spec struct {
	// Kind selects the topology family: "grid", "torus", "cycle", "path",
	// "udg2d", "udg3d", or "edges" (explicit edge list).
	Kind string `json:"kind"`
	// Rows and Cols size the grid/torus kinds.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// N is the node count for cycle, path, and the udg kinds.
	N int `json:"n,omitempty"`
	// Radius is the unit-disk connectivity radius (udg kinds).
	Radius float64 `json:"radius,omitempty"`
	// GenSeed seeds the randomized generators (udg kinds).
	GenSeed uint64 `json:"gen_seed,omitempty"`
	// Edges is the explicit link list for Kind "edges". Node IDs are
	// created as referenced; parallel edges and self-loops are allowed,
	// as everywhere in the model.
	Edges [][2]int64 `json:"edges,omitempty"`
	// Nodes optionally forces nodes 0..Nodes-1 to exist for Kind "edges"
	// even when isolated.
	Nodes int `json:"nodes,omitempty"`
	// Seed selects the exploration sequence family T_n the engine serves.
	Seed uint64 `json:"seed,omitempty"`
	// KnownBound, if > 0, promises a component-size bound, skipping the
	// doubling loop on every query.
	KnownBound int `json:"known_bound,omitempty"`
}

// Spec validation errors; the serving layer maps them to 400s.
var (
	ErrBadSpec  = errors.New("registry: invalid network spec")
	ErrTooLarge = errors.New("registry: network spec exceeds server limits")
)

// Key returns the canonical identity of the spec: equal keys mean
// byte-identical compiled engines. Generator kinds key on their
// parameters; edge lists key on a digest of the canonical edge encoding.
func (s Spec) Key() string {
	switch s.Kind {
	case "edges":
		h := sha256.New()
		var buf [16]byte
		for _, e := range s.Edges {
			binary.LittleEndian.PutUint64(buf[0:8], uint64(e[0]))
			binary.LittleEndian.PutUint64(buf[8:16], uint64(e[1]))
			h.Write(buf[:])
		}
		return fmt.Sprintf("edges sha=%x nodes=%d seed=%d known=%d",
			h.Sum(nil), s.Nodes, s.Seed, s.KnownBound)
	default:
		return fmt.Sprintf("kind=%s rows=%d cols=%d n=%d radius=%g genseed=%d seed=%d known=%d",
			s.Kind, s.Rows, s.Cols, s.N, s.Radius, s.GenSeed, s.Seed, s.KnownBound)
	}
}

// ID returns the stable registry identifier derived from Key — the {id}
// segment of /v1/networks/{id}/…. Deterministic, so re-POSTing a spec is
// idempotent. 96 hash bits keep birthday collisions out of reach, and
// the registry additionally verifies the full Key on every cache hit.
func (s Spec) ID() string { return idOf(s.Key()) }

// idOf derives the registry ID from an already-computed canonical key,
// so hot paths hash the spec once.
func idOf(key string) string {
	sum := sha256.Sum256([]byte(key))
	return "net-" + hex.EncodeToString(sum[:12])
}

// Desc returns the human-readable one-liner shown in listings.
func (s Spec) Desc() string {
	switch s.Kind {
	case "grid", "torus":
		return fmt.Sprintf("%s %dx%d seed=%d", s.Kind, s.Rows, s.Cols, s.Seed)
	case "cycle", "path":
		return fmt.Sprintf("%s n=%d seed=%d", s.Kind, s.N, s.Seed)
	case "udg2d", "udg3d":
		return fmt.Sprintf("%s n=%d r=%g seed=%d", s.Kind, s.N, s.Radius, s.Seed)
	case "edges":
		return fmt.Sprintf("edges m=%d seed=%d", len(s.Edges), s.Seed)
	default:
		return s.Kind
	}
}

// validate bounds the spec against the registry limits before any
// construction work happens — a spec is attacker-controlled input, and
// compile cost grows superlinearly with size.
func (s Spec) validate(maxNodes, maxEdges int) error {
	nodes := 0
	switch s.Kind {
	case "grid", "torus":
		if s.Rows < 1 || s.Cols < 1 {
			return fmt.Errorf("%w: %s needs rows >= 1 and cols >= 1", ErrBadSpec, s.Kind)
		}
		// Divide instead of multiplying: rows*cols on attacker-chosen
		// dimensions can wrap around int and slip under the cap.
		if s.Rows > maxNodes/s.Cols {
			return fmt.Errorf("%w: %dx%d nodes > limit %d", ErrTooLarge, s.Rows, s.Cols, maxNodes)
		}
		nodes = s.Rows * s.Cols
	case "cycle", "path":
		if s.N < 1 {
			return fmt.Errorf("%w: %s needs n >= 1", ErrBadSpec, s.Kind)
		}
		nodes = s.N
	case "udg2d", "udg3d":
		if s.N < 1 {
			return fmt.Errorf("%w: %s needs n >= 1", ErrBadSpec, s.Kind)
		}
		if s.Radius <= 0 {
			return fmt.Errorf("%w: %s needs radius > 0", ErrBadSpec, s.Kind)
		}
		nodes = s.N
	case "edges":
		if len(s.Edges) == 0 && s.Nodes < 1 {
			return fmt.Errorf("%w: edges kind needs edges or nodes", ErrBadSpec)
		}
		if len(s.Edges) > maxEdges {
			return fmt.Errorf("%w: %d edges > limit %d", ErrTooLarge, len(s.Edges), maxEdges)
		}
		if s.Nodes < 0 {
			return fmt.Errorf("%w: negative nodes", ErrBadSpec)
		}
		nodes = s.Nodes
		for _, e := range s.Edges {
			if e[0] < 0 || e[1] < 0 {
				return fmt.Errorf("%w: negative node id in edge [%d,%d]", ErrBadSpec, e[0], e[1])
			}
			for _, v := range e {
				// Node IDs must land inside the cap: comparing v itself
				// (not int(v)+1, which overflows at MaxInt64) keeps huge
				// IDs from wrapping past the limit.
				if v >= int64(maxNodes) {
					return fmt.Errorf("%w: node id %d >= node limit %d", ErrTooLarge, v, maxNodes)
				}
				if int(v)+1 > nodes {
					nodes = int(v) + 1
				}
			}
		}
	case "":
		return fmt.Errorf("%w: missing kind", ErrBadSpec)
	default:
		return fmt.Errorf("%w: unknown kind %q", ErrBadSpec, s.Kind)
	}
	if nodes > maxNodes {
		return fmt.Errorf("%w: %d nodes > limit %d", ErrTooLarge, nodes, maxNodes)
	}
	// The structured kinds cap edges implicitly via nodes; the udg kinds
	// are quadratic in the worst case (radius ~ 1), so check their
	// potential against the edge limit too.
	if (s.Kind == "udg2d" || s.Kind == "udg3d") && nodes*(nodes-1)/2 > maxEdges*8 {
		return fmt.Errorf("%w: udg on %d nodes may exceed edge limit %d", ErrTooLarge, nodes, maxEdges)
	}
	return nil
}

// build constructs the described topology. Geometric kinds additionally
// return the node placement (mobility schedules start from it).
func (s Spec) build() (*graph.Graph, map[graph.NodeID]geom.Point, error) {
	switch s.Kind {
	case "grid":
		return gen.Grid(s.Rows, s.Cols), nil, nil
	case "torus":
		return gen.Torus(s.Rows, s.Cols), nil, nil
	case "cycle":
		return gen.Cycle(s.N), nil, nil
	case "path":
		return gen.Path(s.N), nil, nil
	case "udg2d":
		geo := gen.UDG2D(s.N, s.Radius, s.GenSeed)
		return geo.G, geo.Pos, nil
	case "udg3d":
		geo := gen.UDG3D(s.N, s.Radius, s.GenSeed)
		return geo.G, geo.Pos, nil
	case "edges":
		g := graph.New()
		for i := 0; i < s.Nodes; i++ {
			g.EnsureNode(graph.NodeID(i))
		}
		for _, e := range s.Edges {
			g.EnsureNode(graph.NodeID(e[0]))
			g.EnsureNode(graph.NodeID(e[1]))
			if _, _, err := g.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1])); err != nil {
				return nil, nil, fmt.Errorf("%w: edge [%d,%d]: %v", ErrBadSpec, e[0], e[1], err)
			}
		}
		return g, nil, nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown kind %q", ErrBadSpec, s.Kind)
	}
}
