package route

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/prng"
	"repro/internal/ues"
)

// TestEngineWalkMatchesPureWalk cross-validates the two walk
// implementations: the message-driven engine walk (routeHandler forward
// phase) must visit exactly the same positions as the pure ues.Trace walk.
func TestEngineWalkMatchesPureWalk(t *testing.T) {
	g := gen.Grid(4, 4)
	r := newRouter(t, g, Config{Seed: 21})
	gp := r.WorkGraph()
	seq := r.sequence(gp.NumNodes())

	// Pure walk.
	start, err := r.entry(0)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 500
	pure, err := ues.Trace(gp, start, seq, steps)
	if err != nil {
		t.Fatal(err)
	}

	// Engine walk, traced. Route to an unreachable target so the forward
	// phase runs unimpeded; capture the first `steps` forward activations.
	var engineNodes []graph.NodeID
	// Certificates would answer the unreachable target without walking;
	// this test needs the forward phase to run.
	cfg := Config{Seed: 21, KnownN: gp.NumNodes(), DisableCertificates: true, Trace: func(hop int64, at graph.NodeID, inPort int, h netsim.Header) {
		if h.Dir == netsim.Forward && len(engineNodes) <= steps {
			engineNodes = append(engineNodes, at)
		}
	}}
	r2 := newRouter(t, g, cfg)
	if _, err := r2.Route(0, 424242); err != nil {
		t.Fatal(err)
	}
	if len(engineNodes) < steps {
		t.Fatalf("engine produced only %d forward activations", len(engineNodes))
	}
	for i := 0; i <= steps; i++ {
		if engineNodes[i] != pure[i].Node {
			t.Fatalf("walks diverge at step %d: engine %d, pure %d",
				i, engineNodes[i], pure[i].Node)
		}
	}
}

// TestRouteQuickRandomGraphs property-tests verdict-vs-oracle agreement on
// random multigraphs with self-loops and parallel edges.
func TestRouteQuickRandomGraphs(t *testing.T) {
	f := func(seed uint64) bool {
		src := prng.New(seed)
		n := src.Intn(14) + 2
		g := graph.New()
		for i := 0; i < n; i++ {
			g.EnsureNode(graph.NodeID(i))
		}
		edges := src.Intn(2 * n)
		for i := 0; i < edges; i++ {
			if _, _, err := g.AddEdge(graph.NodeID(src.Intn(n)), graph.NodeID(src.Intn(n))); err != nil {
				return false
			}
		}
		r, err := New(g, Config{Seed: seed})
		if err != nil {
			return false
		}
		s := graph.NodeID(src.Intn(n))
		d := graph.NodeID(src.Intn(n))
		res, err := r.Route(s, d)
		if err != nil {
			return false
		}
		_, reachable := g.BFSDist(s)[d]
		want := netsim.StatusFailure
		if reachable {
			want = netsim.StatusSuccess
		}
		return res.Status == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentAgreesOnRandomGraphs property-tests that the goroutine
// engine and the sequential engine compute identical routes.
func TestConcurrentAgreesOnRandomGraphs(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		src := prng.New(seed)
		n := src.Intn(8) + 3
		g := gen.RandomTree(n, seed) // connected, so routes succeed
		r := newRouter(t, g, Config{Seed: seed})
		d := graph.NodeID(n - 1)
		seqRes, err := r.Route(0, d)
		if err != nil {
			t.Fatal(err)
		}
		conRes, err := r.RouteConcurrent(0, d, seqRes.Bound, 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if conRes.Status != seqRes.Status || conRes.ForwardSteps != seqRes.ForwardSteps {
			t.Fatalf("seed %d: concurrent %+v != sequential %+v", seed, conRes, seqRes)
		}
	}
}

// TestBroadcastReachMatchesComponentQuick property-tests broadcast reach
// against the oracle component size.
func TestBroadcastReachMatchesComponentQuick(t *testing.T) {
	f := func(seed uint64) bool {
		src := prng.New(seed)
		n := src.Intn(12) + 2
		g := gen.ErdosRenyi(n, 0.3, seed)
		r, err := New(g, Config{Seed: seed})
		if err != nil {
			return false
		}
		res, err := r.Broadcast(0)
		if err != nil {
			return false
		}
		return res.Reached == len(g.ComponentOf(0))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
