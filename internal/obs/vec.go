package obs

import (
	"bytes"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DroppedSeriesHelp is the shared help text of the obs_dropped_series_total
// family — one counter per capped vector, labeled by family name.
const DroppedSeriesHelp = "Observations redirected to the catch-all other series because their metric vector reached its cardinality cap."

// droppedMetric is the hook Registry.Register uses to pull a vector's
// overflow counter into the exposition alongside the vector itself, so
// callers registering a vec never forget its drop signal.
type droppedMetric interface {
	droppedMetric() Metric
}

// vecCore is the machinery shared by CounterVec and HistogramVec: a
// lock-free child lookup keyed by the rendered label values, a
// mutex-guarded insert path, and a hard cardinality cap. At the cap, new
// label combinations collapse into a catch-all child whose every label is
// "other", and each such observation bumps an obs_dropped_series_total
// counter labeled with the family name — cardinality explosions become a
// visible, bounded signal instead of unbounded memory growth.
type vecCore struct {
	d    desc     // family identity; labels field stays empty (children carry them)
	keys []string // label names, in declaration order
	max  int      // hard cap on distinct children (the other child is extra)

	children sync.Map // rendered labels -> child Metric
	mu       sync.Mutex
	n        int // children count, guarded by mu

	dropped *Counter
}

func newVecCore(name, help, typ string, keys []string, maxCard int) vecCore {
	if len(keys) == 0 {
		panic("obs: vector needs at least one label key")
	}
	if maxCard < 1 {
		panic("obs: vector cardinality cap must be >= 1")
	}
	return vecCore{
		d:    desc{name: name, help: help, typ: typ},
		keys: append([]string(nil), keys...),
		max:  maxCard,
		dropped: NewCounter("obs_dropped_series_total", DroppedSeriesHelp,
			Labels{"family": name}),
	}
}

// renderKey joins label values into the canonical `k1="v1",k2="v2"` form.
// Missing values render empty; extras are ignored.
func (v *vecCore) renderKey(values []string) string {
	var b strings.Builder
	for i, k := range v.keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		if i < len(values) {
			b.WriteString(escapeLabel(values[i]))
		}
		b.WriteByte('"')
	}
	return b.String()
}

// otherKey is renderKey with every value set to "other".
func (v *vecCore) otherKey() string {
	vals := make([]string, len(v.keys))
	for i := range vals {
		vals[i] = "other"
	}
	return v.renderKey(vals)
}

// lookup returns the child for the rendered key, or (nil, false) when it
// does not exist yet. Lock-free: one sync.Map read.
func (v *vecCore) lookup(key string) (any, bool) {
	return v.children.Load(key)
}

// insert adds a child under key unless the cap is reached, in which case
// it returns the catch-all other child (creating it on first overflow)
// and counts the drop. build constructs the child from its rendered
// label set.
func (v *vecCore) insert(key string, build func(labels string) any) any {
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children.Load(key); ok { // lost the race to another insert
		return c
	}
	if v.n >= v.max {
		v.dropped.Inc()
		ok := v.otherKey()
		if c, found := v.children.Load(ok); found {
			return c
		}
		c := build(ok)
		v.children.Store(ok, c)
		return c
	}
	c := build(key)
	v.children.Store(key, c)
	v.n++
	return c
}

// Len returns the number of distinct children (the other child, once
// materialized, counts as one more on top of the cap).
func (v *vecCore) Len() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := v.n
	if _, ok := v.children.Load(v.otherKey()); ok && n >= v.max {
		n++
	}
	return n
}

// Dropped returns the number of observations that landed in the other
// series because the cap was reached.
func (v *vecCore) Dropped() int64 { return v.dropped.Value() }

func (v *vecCore) droppedMetric() Metric { return v.dropped }

func (v *vecCore) metricDesc() *desc { return &v.d }

// sortedChildren snapshots the children in key order so the exposition is
// deterministic. Bounded by the cap, so sorting at scrape time is cheap.
func (v *vecCore) sortedChildren() []Metric {
	type kv struct {
		k string
		m Metric
	}
	var all []kv
	v.children.Range(func(k, val any) bool {
		all = append(all, kv{k.(string), val.(Metric)})
		return true
	})
	sort.Slice(all, func(i, j int) bool { return all[i].k < all[j].k })
	ms := make([]Metric, len(all))
	for i, e := range all {
		ms[i] = e.m
	}
	return ms
}

// CounterVec is a counter family with label values decided at use time:
// With(values...) returns the per-series Counter, creating it on first
// use. Hot paths either cache the returned child or pay one map read per
// call; the cardinality cap bounds memory no matter what callers feed in.
type CounterVec struct {
	vecCore
}

// NewCounterVec builds a counter vector over the given label keys with a
// hard cap on distinct label combinations.
func NewCounterVec(name, help string, keys []string, maxCard int) *CounterVec {
	return &CounterVec{newVecCore(name, help, "counter", keys, maxCard)}
}

// With returns the counter for the given label values (positional, in key
// order), creating it if the cap allows and otherwise returning the
// catch-all other series.
func (v *CounterVec) With(values ...string) *Counter {
	key := v.renderKey(values)
	if c, ok := v.lookup(key); ok {
		return c.(*Counter)
	}
	return v.insert(key, func(labels string) any {
		return &Counter{d: desc{name: v.d.name, help: v.d.help, typ: "counter", labels: labels}}
	}).(*Counter)
}

// Write renders every child series, sorted by label set.
func (v *CounterVec) Write(b *bytes.Buffer) {
	for _, m := range v.sortedChildren() {
		m.Write(b)
	}
}

// HistogramVec is a histogram family with label values decided at use
// time. All children share the same bucket bounds and unit.
type HistogramVec struct {
	vecCore
	bounds []int64
	unit   float64
}

// NewHistogramVec builds a raw-unit histogram vector over the given label
// keys and bucket bounds, with a hard cap on distinct label combinations.
func NewHistogramVec(name, help string, keys []string, bounds []int64, maxCard int) *HistogramVec {
	return newHistogramVec(name, help, keys, bounds, 1, maxCard)
}

// NewLatencyHistogramVec builds a nanosecond-valued histogram vector
// rendered in seconds, with DefaultLatencyBounds.
func NewLatencyHistogramVec(name, help string, keys []string, maxCard int) *HistogramVec {
	return newHistogramVec(name, help, keys, DefaultLatencyBounds, 1e9, maxCard)
}

func newHistogramVec(name, help string, keys []string, bounds []int64, unit float64, maxCard int) *HistogramVec {
	if !sort.SliceIsSorted(bounds, func(i, j int) bool { return bounds[i] < bounds[j] }) {
		panic("obs: histogram bounds must be ascending")
	}
	return &HistogramVec{
		vecCore: newVecCore(name, help, "histogram", keys, maxCard),
		bounds:  append([]int64(nil), bounds...),
		unit:    unit,
	}
}

// With returns the histogram for the given label values (positional, in
// key order), creating it if the cap allows and otherwise returning the
// catch-all other series.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := v.renderKey(values)
	if c, ok := v.lookup(key); ok {
		return c.(*Histogram)
	}
	return v.insert(key, func(labels string) any {
		h := &Histogram{
			d:      desc{name: v.d.name, help: v.d.help, typ: "histogram", labels: labels},
			bounds: v.bounds,
			unit:   v.unit,
		}
		h.buckets = make([]atomic.Int64, len(v.bounds)+1)
		h.exemplars = make([]atomic.Pointer[Exemplar], len(v.bounds)+1)
		return h
	}).(*Histogram)
}

// Write renders every child series, sorted by label set.
func (v *HistogramVec) Write(b *bytes.Buffer) {
	for _, m := range v.sortedChildren() {
		m.Write(b)
	}
}

// writeOpenMetrics renders every child with its exemplars.
func (v *HistogramVec) writeOpenMetrics(b *bytes.Buffer) {
	for _, m := range v.sortedChildren() {
		m.(*Histogram).writeOpenMetrics(b)
	}
}
