package route

import (
	"fmt"

	"repro/internal/flatgraph"
	"repro/internal/graph"
	"repro/internal/netsim"
)

// roundStepper is the per-round execution engine behind Walker: one Step
// per handler activation, terminating with hops, a delivery flag, and a
// status. The netsim token stepper is the reference implementation; the
// compiled flat stepper is the hot path, with identical step granularity.
type roundStepper interface {
	// Step advances one activation; it returns true when the round ended.
	Step() bool
	// Hops returns the edge traversals so far (final once the round ended).
	Hops() int64
	// Outcome reports the terminal state: delivered says whether the
	// source learned a verdict, status which verdict.
	Outcome() (status netsim.Status, delivered bool)
	// Final returns the node where the round ended (for drop diagnostics).
	Final() graph.NodeID
	// Err returns the terminal error, if any.
	Err() error
}

// netsimRound adapts netsim.Stepper to roundStepper.
type netsimRound struct{ st *netsim.Stepper }

func (r netsimRound) Step() bool          { return r.st.Step() }
func (r netsimRound) Hops() int64         { return r.st.Result().Hops }
func (r netsimRound) Err() error          { return r.st.Err() }
func (r netsimRound) Final() graph.NodeID { return r.st.Result().Final }
func (r netsimRound) Outcome() (netsim.Status, bool) {
	out := r.st.Result()
	return out.Header.Status, out.Delivered
}

// flatRoundStepper adapts flatgraph.RouteStepper to roundStepper.
type flatRoundStepper struct {
	st flatStepper
	g  *flatgraph.Graph
}

// flatStepper is the subset of flatgraph.RouteStepper the walker needs
// (kept as an interface only to avoid a direct struct dependency here; the
// concrete type comes from Router.flat).
type flatStepper interface {
	Step() bool
	Hops() int64
	Success() bool
	Err() error
	Position() (node, inPort int32)
}

func (r flatRoundStepper) Step() bool  { return r.st.Step() }
func (r flatRoundStepper) Hops() int64 { return r.st.Hops() }
func (r flatRoundStepper) Err() error  { return r.st.Err() }
func (r flatRoundStepper) Final() graph.NodeID {
	node, _ := r.st.Position()
	return r.g.ID(node)
}
func (r flatRoundStepper) Outcome() (netsim.Status, bool) {
	if r.st.Err() != nil {
		return netsim.StatusNone, false
	}
	if r.st.Success() {
		return netsim.StatusSuccess, true
	}
	return netsim.StatusFailure, true
}

// Walker is a step-at-a-time view of Route, used by the Corollary 2
// composition (package hybrid): the guaranteed router advances one message
// hop per Step so it can be interleaved with a probabilistic router.
type Walker struct {
	r        *Router
	s, t     graph.NodeID
	bound    int
	maxBound int
	round    roundStepper
	// completedHops accumulates hops from finished rounds; the current
	// round's hops live in the round stepper.
	completedHops int64
	status        netsim.Status
	done          bool
	err           error
}

// Walker returns a steppable guaranteed route from s to t, including the
// doubling outer loop. The inter-round coverage check runs locally and is
// not charged as steps (the walk cost dominates; see DESIGN.md).
func (r *Router) Walker(s, t graph.NodeID) (*Walker, error) {
	if !r.orig.HasNode(s) {
		return nil, fmt.Errorf("route: source: %w: %d", graph.ErrNodeNotFound, s)
	}
	w := &Walker{r: r, s: s, t: t, maxBound: r.cfg.MaxBound}
	if w.maxBound <= 0 {
		w.maxBound = 4 * r.work.NumNodes()
	}
	if s == t {
		w.done = true
		w.status = netsim.StatusSuccess
		return w, nil
	}
	w.bound = 4
	if r.cfg.KnownN > 0 {
		w.bound = r.cfg.KnownN
		w.maxBound = r.cfg.KnownN
	}
	if err := w.startRound(); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *Walker) startRound() error {
	start, err := w.r.entry(w.s)
	if err != nil {
		return err
	}
	seq := w.r.sequence(w.bound)
	if fs, ok := w.r.flatSeq(seq); ok {
		si, ok := w.r.flat.Index(start)
		if !ok {
			return fmt.Errorf("route: %w: %d", graph.ErrNodeNotFound, start)
		}
		st, err := w.r.flat.RouteStepper(si, w.s, w.t, fs)
		if err != nil {
			return err
		}
		w.round = flatRoundStepper{st: st, g: w.r.flat}
		return nil
	}
	h := netsim.Header{Src: w.s, Dst: w.t, Dir: netsim.Forward, Status: netsim.StatusNone, Index: 1}
	eng := netsim.NewEngine(w.r.work,
		// The walker always uses the paper's backtracking confirmation:
		// the hybrid composition needs every round to end with a verdict.
		&routeHandler{seq: seq, originalOf: w.r.originalOf(), confirm: ConfirmBacktrack},
		w.r.engineOptions()...)
	stepper, err := eng.Stepper(start, 0, h, 2*int64(seq.Len())+8)
	if err != nil {
		return err
	}
	w.round = netsimRound{st: stepper}
	return nil
}

// Step advances the guaranteed route by one hop. It returns true when the
// route has terminated (success, definitive failure, or error).
func (w *Walker) Step() bool {
	if w.done {
		return true
	}
	if !w.round.Step() {
		return false
	}
	// Round ended.
	w.completedHops += w.round.Hops()
	if err := w.round.Err(); err != nil {
		w.fail(err)
		return true
	}
	status, delivered := w.round.Outcome()
	if !delivered {
		w.fail(fmt.Errorf("route: message dropped at %d", w.round.Final()))
		return true
	}
	if status == netsim.StatusSuccess {
		w.done = true
		w.status = netsim.StatusSuccess
		return true
	}
	// Failed round: definitive iff covered.
	start, err := w.r.entry(w.s)
	if err != nil {
		w.fail(err)
		return true
	}
	covered, err := w.r.covered(start, w.bound)
	if err != nil {
		w.fail(err)
		return true
	}
	if covered {
		w.done = true
		w.status = netsim.StatusFailure
		return true
	}
	if w.bound >= w.maxBound {
		w.fail(fmt.Errorf("%w: bound %d", ErrSequenceExhausted, w.bound))
		return true
	}
	w.bound *= w.r.cfg.growth()
	if w.bound > w.maxBound {
		w.bound = w.maxBound
	}
	if err := w.startRound(); err != nil {
		w.fail(err)
	}
	return w.done
}

func (w *Walker) fail(err error) {
	w.err = err
	w.done = true
}

// Done reports whether the route has terminated.
func (w *Walker) Done() bool { return w.done }

// Status returns the terminal status (valid once Done).
func (w *Walker) Status() netsim.Status { return w.status }

// Hops returns the hops consumed so far across all rounds.
func (w *Walker) Hops() int64 {
	if w.round == nil || w.done {
		return w.completedHops
	}
	return w.completedHops + w.round.Hops()
}

// Err returns the terminal error, if any.
func (w *Walker) Err() error { return w.err }
