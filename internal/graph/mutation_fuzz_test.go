package graph

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/prng"
)

// The dynamic-network subsystem drives AddEdge/RemoveEdge continuously
// (churn schedules, mobility re-derivation), so the mutation invariants —
// port compactness, mutual half-edge pointers, self-loop handling — get
// property and fuzz coverage here against an independent edge-multiset
// model, beyond the example-based cases in remove_test.go.

// edgeKey canonicalizes an undirected edge for the model multiset.
func edgeKey(u, v NodeID) [2]NodeID {
	if v < u {
		u, v = v, u
	}
	return [2]NodeID{u, v}
}

// modelOf extracts g's edge multiset by scanning half-edges.
func modelOf(t *testing.T, g *Graph) map[[2]NodeID]int {
	t.Helper()
	m := make(map[[2]NodeID]int)
	for _, v := range g.Nodes() {
		for p := 0; p < g.Degree(v); p++ {
			h, err := g.Neighbor(v, p)
			if err != nil {
				t.Fatalf("neighbor(%d,%d): %v", v, p, err)
			}
			if h.To > v || (h.To == v && h.ToPort > p) {
				m[edgeKey(v, h.To)]++
			}
		}
	}
	return m
}

// checkInvariants verifies the structural contract after a mutation: the
// graph validates (mutual pointers, ports in range), the port space of
// every node is compact (exactly 0..deg-1, enforced by Neighbor's range
// errors at both fenceposts), degrees sum to twice the edge count, and
// the edge multiset matches the independently maintained model.
func checkInvariants(t *testing.T, g *Graph, model map[[2]NodeID]int) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	degSum := 0
	for _, v := range g.Nodes() {
		d := g.Degree(v)
		degSum += d
		if _, err := g.Neighbor(v, d); err == nil {
			t.Fatalf("node %d: port %d beyond degree resolved", v, d)
		}
		if _, err := g.Neighbor(v, -1); err == nil {
			t.Fatalf("node %d: negative port resolved", v)
		}
	}
	if degSum != 2*g.NumEdges() {
		t.Fatalf("degree sum %d != 2×edges %d", degSum, 2*g.NumEdges())
	}
	got := modelOf(t, g)
	if len(got) != len(model) {
		t.Fatalf("edge multiset diverged: got %v, want %v", got, model)
	}
	for k, c := range model {
		if got[k] != c {
			t.Fatalf("edge %v count %d, want %d", k, got[k], c)
		}
	}
}

// mutate applies ops random mutations to a fresh graph, cross-checking
// the model after every step. Returns the number of mutations that took
// effect (for the fuzz target's interestingness signal).
func mutate(t *testing.T, seed uint64, ops int) int {
	t.Helper()
	g := New()
	model := make(map[[2]NodeID]int)
	src := prng.New(seed)
	const idSpace = 12
	applied := 0
	for i := 0; i < ops; i++ {
		switch src.Intn(10) {
		case 0, 1: // ensure a node
			g.EnsureNode(NodeID(src.Intn(idSpace)))
		case 2, 3, 4, 5: // add an edge (self-loops and parallels welcome)
			u := NodeID(src.Intn(idSpace))
			v := NodeID(src.Intn(idSpace))
			g.EnsureNode(u)
			g.EnsureNode(v)
			pu, pv, err := g.AddEdge(u, v)
			if err != nil {
				t.Fatalf("op %d: AddEdge(%d,%d): %v", i, u, v, err)
			}
			if u == v && pu == pv {
				t.Fatalf("op %d: self-loop got one port (%d) for both halves", i, pu)
			}
			model[edgeKey(u, v)]++
			applied++
		default: // remove a random port of a random node
			nodes := g.Nodes()
			if len(nodes) == 0 {
				continue
			}
			v := nodes[src.Intn(len(nodes))]
			d := g.Degree(v)
			if d == 0 {
				if err := g.RemoveEdge(v, 0); err == nil {
					t.Fatalf("op %d: removing port 0 of isolated node %d succeeded", i, v)
				}
				continue
			}
			p := src.Intn(d)
			h, err := g.Neighbor(v, p)
			if err != nil {
				t.Fatalf("op %d: neighbor(%d,%d): %v", i, v, p, err)
			}
			if err := g.RemoveEdge(v, p); err != nil {
				t.Fatalf("op %d: RemoveEdge(%d,%d): %v", i, v, p, err)
			}
			k := edgeKey(v, h.To)
			model[k]--
			if model[k] == 0 {
				delete(model, k)
			} else if model[k] < 0 {
				t.Fatalf("op %d: removed nonexistent edge %v", i, k)
			}
			applied++
		}
		checkInvariants(t, g, model)
	}
	return applied
}

// TestMutationInvariantsProperty is the deterministic property sweep that
// always runs in the ordinary suite.
func TestMutationInvariantsProperty(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			mutate(t, seed, 120)
		})
	}
}

// FuzzMutationInvariants lets the fuzzer drive the op mix; the seed corpus
// runs as part of the ordinary suite.
func FuzzMutationInvariants(f *testing.F) {
	f.Add(uint64(1), uint16(64))
	f.Add(uint64(0xdead), uint16(200))
	f.Add(uint64(42), uint16(7))
	f.Fuzz(func(t *testing.T, seed uint64, opsRaw uint16) {
		mutate(t, seed, int(opsRaw)%256+1)
	})
}

// TestRemoveEdgePreservesOtherAdjacency pins the subtle part of the
// swap-with-last compaction: removing one edge must not reorder the
// neighbor multiset of any *other* node (only the two endpoints' port
// tables may change), and on the endpoints exactly the removed half must
// disappear.
func TestRemoveEdgePreservesOtherAdjacency(t *testing.T) {
	src := prng.New(99)
	g := New()
	const n = 8
	for i := 0; i < n; i++ {
		g.EnsureNode(NodeID(i))
	}
	for i := 0; i < 24; i++ {
		if _, _, err := g.AddEdge(NodeID(src.Intn(n)), NodeID(src.Intn(n))); err != nil {
			t.Fatal(err)
		}
	}
	neighborsOf := func(v NodeID) []NodeID {
		var out []NodeID
		for p := 0; p < g.Degree(v); p++ {
			h, _ := g.Neighbor(v, p)
			out = append(out, h.To)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	for iter := 0; iter < 24; iter++ {
		var v NodeID = -1
		for _, cand := range g.Nodes() {
			if g.Degree(cand) > 0 {
				v = cand
				break
			}
		}
		if v < 0 {
			break
		}
		p := src.Intn(g.Degree(v))
		h, _ := g.Neighbor(v, p)
		before := make(map[NodeID][]NodeID)
		for _, u := range g.Nodes() {
			before[u] = neighborsOf(u)
		}
		if err := g.RemoveEdge(v, p); err != nil {
			t.Fatal(err)
		}
		for _, u := range g.Nodes() {
			if u == v || u == h.To {
				continue
			}
			after := neighborsOf(u)
			if len(after) != len(before[u]) {
				t.Fatalf("bystander %d changed degree removing (%d,%d)", u, v, p)
			}
			for i := range after {
				if after[i] != before[u][i] {
					t.Fatalf("bystander %d neighbor multiset changed removing (%d,%d)", u, v, p)
				}
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}
