// Package gen builds the graph families used as workloads throughout the
// evaluation: structured topologies (paths, grids, tori, hypercubes, trees),
// random families (Erdős–Rényi, random regular), adversarial random-walk
// instances (barbell, lollipop), and the ad hoc wireless model itself —
// unit-disk graphs in 2 and 3 dimensions with optional Gabriel
// planarization.
//
// Every generator is deterministic: randomized families take an explicit
// seed. Node IDs are always 0..n-1.
package gen

import (
	"errors"
	"fmt"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/prng"
)

// ErrGeneratorFailed reports that a randomized generator could not satisfy
// its constraints (e.g. simple random regular graph) within its retry budget.
var ErrGeneratorFailed = errors.New("gen: generator failed to satisfy constraints")

// Geometric couples a graph with node coordinates; the geometric baselines
// (greedy, face routing) need positions, and the paper's model notes that
// physical locations can serve as the universal names.
type Geometric struct {
	G   *graph.Graph
	Pos map[graph.NodeID]geom.Point
}

// Path returns the path graph on n nodes 0-1-…-(n-1).
func Path(n int) *graph.Graph {
	g := withNodes(n)
	for i := 0; i < n-1; i++ {
		mustEdge(g, i, i+1)
	}
	return g
}

// Cycle returns the cycle graph on n nodes.
func Cycle(n int) *graph.Graph {
	g := Path(n)
	if n >= 3 {
		mustEdge(g, n-1, 0)
	} else if n == 2 {
		mustEdge(g, 1, 0) // 2-cycle: a pair of parallel edges
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	g := withNodes(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			mustEdge(g, i, j)
		}
	}
	return g
}

// CompleteBipartite returns K_{m,n}: parts {0..m-1} and {m..m+n-1}.
func CompleteBipartite(m, n int) *graph.Graph {
	g := withNodes(m + n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			mustEdge(g, i, m+j)
		}
	}
	return g
}

// CircularLadder returns CL_n = C_n × K_2 (the n-prism), a 3-regular graph
// on 2n nodes. n must be ≥ 3.
func CircularLadder(n int) *graph.Graph {
	g := withNodes(2 * n)
	for i := 0; i < n; i++ {
		mustEdge(g, i, (i+1)%n)     // outer cycle
		mustEdge(g, n+i, n+(i+1)%n) // inner cycle
		mustEdge(g, i, n+i)         // rungs
	}
	return g
}

// Petersen returns the Petersen graph: 10 nodes, 3-regular, girth 5 — a
// standard stress case for exploration sequences.
func Petersen() *graph.Graph {
	g := withNodes(10)
	for i := 0; i < 5; i++ {
		mustEdge(g, i, (i+1)%5)     // outer 5-cycle
		mustEdge(g, 5+i, 5+(i+2)%5) // inner pentagram
		mustEdge(g, i, 5+i)         // spokes
	}
	return g
}

// Star returns the star with one hub (node 0) and n-1 leaves.
func Star(n int) *graph.Graph {
	g := withNodes(n)
	for i := 1; i < n; i++ {
		mustEdge(g, 0, i)
	}
	return g
}

// Grid returns the rows×cols grid graph.
func Grid(rows, cols int) *graph.Graph {
	g := withNodes(rows * cols)
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				mustEdge(g, at(r, c), at(r, c+1))
			}
			if r+1 < rows {
				mustEdge(g, at(r, c), at(r+1, c))
			}
		}
	}
	return g
}

// Torus returns the rows×cols torus (grid with wraparound). rows and cols
// should be ≥ 3 to avoid parallel edges; smaller values still produce a
// valid multigraph.
func Torus(rows, cols int) *graph.Graph {
	g := withNodes(rows * cols)
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			mustEdge(g, at(r, c), at(r, (c+1)%cols))
			mustEdge(g, at(r, c), at((r+1)%rows, c))
		}
	}
	return g
}

// Hypercube returns the dim-dimensional hypercube on 2^dim nodes.
func Hypercube(dim int) *graph.Graph {
	n := 1 << uint(dim)
	g := withNodes(n)
	for v := 0; v < n; v++ {
		for b := 0; b < dim; b++ {
			w := v ^ (1 << uint(b))
			if v < w {
				mustEdge(g, v, w)
			}
		}
	}
	return g
}

// BinaryTree returns the complete binary tree with the given number of
// levels (a single root for levels = 1).
func BinaryTree(levels int) *graph.Graph {
	n := 1<<uint(levels) - 1
	g := withNodes(n)
	for v := 1; v < n; v++ {
		mustEdge(g, (v-1)/2, v)
	}
	return g
}

// RandomTree returns a uniform random attachment tree on n nodes: node i
// attaches to a uniformly random earlier node.
func RandomTree(n int, seed uint64) *graph.Graph {
	g := withNodes(n)
	src := prng.New(seed)
	for v := 1; v < n; v++ {
		mustEdge(g, src.Intn(v), v)
	}
	return g
}

// Barbell returns two cliques K_k joined by a path of pathLen edges.
func Barbell(k, pathLen int) *graph.Graph {
	n := 2*k + max(0, pathLen-1)
	g := withNodes(n)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			mustEdge(g, i, j)
			mustEdge(g, k+i, k+j)
		}
	}
	// Path from node 0 of clique A to node k of clique B through the
	// pathLen-1 intermediate nodes.
	prev := 0
	for i := 0; i < pathLen-1; i++ {
		mid := 2*k + i
		mustEdge(g, prev, mid)
		prev = mid
	}
	mustEdge(g, prev, k)
	return g
}

// Lollipop returns the lollipop graph: a clique K_k with a path of pathLen
// nodes attached — the classic worst case for random-walk cover time
// (Θ(n³)), used by experiment E4 to contrast UES with the random walk.
func Lollipop(k, pathLen int) *graph.Graph {
	n := k + pathLen
	g := withNodes(n)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			mustEdge(g, i, j)
		}
	}
	prev := 0
	for i := 0; i < pathLen; i++ {
		mustEdge(g, prev, k+i)
		prev = k + i
	}
	return g
}

// ErdosRenyi returns G(n, p): each of the n·(n-1)/2 possible edges is
// present independently with probability p.
func ErdosRenyi(n int, p float64, seed uint64) *graph.Graph {
	g := withNodes(n)
	src := prng.New(seed)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if src.Float64() < p {
				mustEdge(g, i, j)
			}
		}
	}
	return g
}

// RandomRegularMulti returns a random d-regular multigraph on n nodes via
// the configuration (pairing) model. Self-loops and parallel edges may
// occur. n·d must be even.
func RandomRegularMulti(n, d int, seed uint64) (*graph.Graph, error) {
	if n*d%2 != 0 {
		return nil, fmt.Errorf("%w: n*d = %d*%d is odd", ErrGeneratorFailed, n, d)
	}
	g := withNodes(n)
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for k := 0; k < d; k++ {
			stubs = append(stubs, v)
		}
	}
	src := prng.New(seed)
	src.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	for i := 0; i < len(stubs); i += 2 {
		mustEdge(g, stubs[i], stubs[i+1])
	}
	return g, nil
}

// RandomRegularSimple returns a random simple d-regular graph on n nodes,
// retrying the pairing model until no self-loops or parallel edges occur.
// It fails with ErrGeneratorFailed after maxTries attempts.
func RandomRegularSimple(n, d int, seed uint64, maxTries int) (*graph.Graph, error) {
	if n*d%2 != 0 {
		return nil, fmt.Errorf("%w: n*d = %d*%d is odd", ErrGeneratorFailed, n, d)
	}
	if d >= n {
		return nil, fmt.Errorf("%w: degree %d >= n %d", ErrGeneratorFailed, d, n)
	}
	for try := 0; try < maxTries; try++ {
		g, err := RandomRegularMulti(n, d, seed+uint64(try)*0x9e37)
		if err != nil {
			return nil, err
		}
		if isSimple(g) {
			return g, nil
		}
	}
	return nil, fmt.Errorf("%w: no simple %d-regular graph on %d nodes in %d tries",
		ErrGeneratorFailed, d, n, maxTries)
}

// UDG2D returns the unit-disk graph of n points placed uniformly in the
// unit square, connecting points within radius.
func UDG2D(n int, radius float64, seed uint64) *Geometric {
	src := prng.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: src.Float64(), Y: src.Float64()}
	}
	return fromPoints(pts, radius)
}

// UDG3D returns the unit-disk (unit-ball) graph of n points placed
// uniformly in the unit cube — the 3-dimensional networks for which the
// paper notes guaranteed geometric routing "appears to be hard".
func UDG3D(n int, radius float64, seed uint64) *Geometric {
	src := prng.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: src.Float64(), Y: src.Float64(), Z: src.Float64()}
	}
	return fromPoints(pts, radius)
}

// Gabriel returns the Gabriel-planarized version of a geometric graph: same
// nodes and positions, edges filtered by the empty-diameter-disk rule. Face
// routing requires this planar subgraph.
func Gabriel(in *Geometric) *Geometric {
	n := in.G.NumNodes()
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		pts[i] = in.Pos[graph.NodeID(i)]
	}
	var udg [][2]int
	for i := 0; i < n; i++ {
		for p := 0; p < in.G.Degree(graph.NodeID(i)); p++ {
			h, err := in.G.Neighbor(graph.NodeID(i), p)
			if err == nil && int(h.To) > i {
				udg = append(udg, [2]int{i, int(h.To)})
			}
		}
	}
	gg := geom.GabrielEdges(pts, udg)
	g := withNodes(n)
	for _, e := range gg {
		mustEdge(g, e[0], e[1])
	}
	return &Geometric{G: g, Pos: clonePos(in.Pos)}
}

// DisjointUnion returns a graph holding a copy of a and a copy of b with
// b's node IDs shifted by offset. Used to build graphs with multiple
// components for the failure-detection experiments. offset must exceed
// every node ID in a.
func DisjointUnion(a, b *graph.Graph, offset graph.NodeID) (*graph.Graph, error) {
	g := a.Clone()
	for _, v := range a.Nodes() {
		if v >= offset {
			return nil, fmt.Errorf("gen: offset %d not above node %d", offset, v)
		}
	}
	for _, v := range b.Nodes() {
		if err := g.AddNode(v + offset); err != nil {
			return nil, fmt.Errorf("disjoint union: %w", err)
		}
	}
	// Re-add b's edges by scanning half-edges once (To > v, or self-loop
	// counted at its first port).
	for _, v := range b.Nodes() {
		for p := 0; p < b.Degree(v); p++ {
			h, err := b.Neighbor(v, p)
			if err != nil {
				return nil, err
			}
			switch {
			case h.To > v:
				if _, _, err := g.AddEdge(v+offset, h.To+offset); err != nil {
					return nil, err
				}
			case h.To == v && h.ToPort > p:
				if _, _, err := g.AddEdge(v+offset, v+offset); err != nil {
					return nil, err
				}
			case h.To < v:
				// counted from the other side
			}
		}
	}
	return g, nil
}

func withNodes(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.EnsureNode(graph.NodeID(i))
	}
	return g
}

func mustEdge(g *graph.Graph, u, v int) {
	if _, _, err := g.AddEdge(graph.NodeID(u), graph.NodeID(v)); err != nil {
		// All callers add edges between nodes they just created; a failure
		// is a programming error in this package.
		panic(fmt.Sprintf("gen: internal edge add failed: %v", err))
	}
}

func isSimple(g *graph.Graph) bool {
	simple := true
	g.ForEachNode(func(v graph.NodeID) {
		seen := make(map[graph.NodeID]bool, g.Degree(v))
		for p := 0; p < g.Degree(v); p++ {
			h, err := g.Neighbor(v, p)
			if err != nil || h.To == v || seen[h.To] {
				simple = false
				return
			}
			seen[h.To] = true
		}
	})
	return simple
}

func fromPoints(pts []geom.Point, radius float64) *Geometric {
	g := withNodes(len(pts))
	for _, e := range geom.UnitDiskEdges(pts, radius) {
		mustEdge(g, e[0], e[1])
	}
	pos := make(map[graph.NodeID]geom.Point, len(pts))
	for i, p := range pts {
		pos[graph.NodeID(i)] = p
	}
	return &Geometric{G: g, Pos: pos}
}

func clonePos(in map[graph.NodeID]geom.Point) map[graph.NodeID]geom.Point {
	out := make(map[graph.NodeID]geom.Point, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}
