package route

import (
	"errors"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/netsim"
)

func newRouter(t *testing.T, g *graph.Graph, cfg Config) *Router {
	t.Helper()
	r, err := New(g, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func TestRouteTrivialSelf(t *testing.T) {
	r := newRouter(t, gen.Cycle(4), Config{Seed: 1})
	res, err := r.Route(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != netsim.StatusSuccess || res.Hops != 0 {
		t.Fatalf("self route = %+v", res)
	}
}

func TestRouteMissingSource(t *testing.T) {
	r := newRouter(t, gen.Cycle(4), Config{Seed: 1})
	if _, err := r.Route(99, 0); !errors.Is(err, graph.ErrNodeNotFound) {
		t.Fatalf("error = %v", err)
	}
}

func TestRouteDeliversOnFamilies(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		s, d graph.NodeID
	}{
		{name: "path", g: gen.Path(12), s: 0, d: 11},
		{name: "cycle", g: gen.Cycle(15), s: 3, d: 11},
		{name: "grid", g: gen.Grid(4, 5), s: 0, d: 19},
		{name: "star-hub-to-leaf", g: gen.Star(9), s: 0, d: 7},
		{name: "star-leaf-to-leaf", g: gen.Star(9), s: 3, d: 7},
		{name: "petersen", g: gen.Petersen(), s: 0, d: 7},
		{name: "tree", g: gen.RandomTree(25, 3), s: 0, d: 24},
		{name: "lollipop", g: gen.Lollipop(6, 8), s: 1, d: 13},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := newRouter(t, tt.g, Config{Seed: 7})
			res, err := r.Route(tt.s, tt.d)
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != netsim.StatusSuccess {
				t.Fatalf("status = %v, want success (rounds %+v)", res.Status, res.Rounds)
			}
			if res.Hops <= 0 || res.ForwardSteps <= 0 {
				t.Fatalf("implausible accounting: %+v", res)
			}
			if res.MaxHeaderBits <= 0 || res.MaxHeaderBits > 512 {
				t.Fatalf("header bits = %d", res.MaxHeaderBits)
			}
		})
	}
}

func TestRouteAllPairsSmall(t *testing.T) {
	g := gen.Grid(3, 3)
	r := newRouter(t, g, Config{Seed: 5})
	for _, s := range g.Nodes() {
		for _, d := range g.Nodes() {
			res, err := r.Route(s, d)
			if err != nil {
				t.Fatalf("route %d->%d: %v", s, d, err)
			}
			if res.Status != netsim.StatusSuccess {
				t.Fatalf("route %d->%d failed", s, d)
			}
		}
	}
}

func TestRouteFailureDetection(t *testing.T) {
	// Two components: every cross pair must terminate with failure, with
	// the terminal round covered.
	u, err := gen.DisjointUnion(gen.Cycle(5), gen.Path(4), 100)
	if err != nil {
		t.Fatal(err)
	}
	// Disable the O(1) certificate: this test pins the walked §4 closure
	// check (certificate-vs-walk agreement is pinned in budget_test.go).
	r := newRouter(t, u, Config{Seed: 11, DisableCertificates: true})
	res, err := r.Route(0, 101)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != netsim.StatusFailure {
		t.Fatalf("cross-component route status = %v, want failure", res.Status)
	}
	last := res.Rounds[len(res.Rounds)-1]
	if !last.Covered {
		t.Fatal("terminal failed round did not certify coverage")
	}
	if res.ForwardSteps != 0 {
		t.Fatalf("failure reported forward steps %d", res.ForwardSteps)
	}
}

func TestRouteToNonexistentTarget(t *testing.T) {
	// The network cannot know whether t exists: routing to an unknown name
	// must terminate with failure, not error.
	r := newRouter(t, gen.Cycle(6), Config{Seed: 2})
	res, err := r.Route(0, 424242)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != netsim.StatusFailure {
		t.Fatalf("status = %v, want failure", res.Status)
	}
}

func TestRouteKnownBoundSingleRound(t *testing.T) {
	g := gen.Cycle(8)
	// Reduced cycle has 2n gadget nodes; 16 is a valid known bound.
	r := newRouter(t, g, Config{Seed: 3, KnownN: 16})
	res, err := r.Route(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != netsim.StatusSuccess {
		t.Fatalf("status = %v", res.Status)
	}
	if len(res.Rounds) != 1 {
		t.Fatalf("rounds = %d, want 1", len(res.Rounds))
	}
	if res.Bound != 16 {
		t.Fatalf("bound = %d", res.Bound)
	}
}

func TestRouteDoublingGrowsBound(t *testing.T) {
	// On a larger graph the first (bound 4) round cannot cover, so the
	// doubling loop must run multiple rounds for a failure case.
	u, err := gen.DisjointUnion(gen.Grid(4, 4), gen.Cycle(3), 1000)
	if err != nil {
		t.Fatal(err)
	}
	r := newRouter(t, u, Config{Seed: 13, DisableCertificates: true})
	res, err := r.Route(0, 1001)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != netsim.StatusFailure {
		t.Fatalf("status = %v", res.Status)
	}
	if len(res.Rounds) < 2 {
		t.Fatalf("expected multiple doubling rounds, got %+v", res.Rounds)
	}
	for i := 1; i < len(res.Rounds); i++ {
		if res.Rounds[i].Bound <= res.Rounds[i-1].Bound {
			t.Fatalf("bounds not increasing: %+v", res.Rounds)
		}
	}
}

func TestRouteBacktrackAccounting(t *testing.T) {
	// hops = 2*forward - indexAtDelivery; with delivery at the entry node
	// the full unwind gives hops <= 2*forward.
	r := newRouter(t, gen.Path(6), Config{Seed: 17})
	res, err := r.Route(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != netsim.StatusSuccess {
		t.Fatal("route failed")
	}
	if res.Hops < res.ForwardSteps || res.Hops > 2*res.ForwardSteps {
		t.Fatalf("hops %d vs forward %d outside [f, 2f]", res.Hops, res.ForwardSteps)
	}
}

func TestRouteMemoryBudgetEnforced(t *testing.T) {
	// An absurdly small budget must trip the meter, proving enforcement is
	// real.
	r := newRouter(t, gen.Cycle(6), Config{Seed: 1, MemoryBudgetBits: 8})
	_, err := r.Route(0, 3)
	if !errors.Is(err, netsim.ErrMemoryExceeded) {
		t.Fatalf("error = %v, want ErrMemoryExceeded", err)
	}
}

func TestRoutePeakMemoryIsLogarithmic(t *testing.T) {
	// Peak working memory grows like O(log n): going from n=8 to n=64
	// must add only a handful of bits.
	small := newRouter(t, gen.Cycle(8), Config{Seed: 1})
	large := newRouter(t, gen.Cycle(64), Config{Seed: 1})
	rs, err := small.Route(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := large.Route(0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if rl.PeakMemoryBits > rs.PeakMemoryBits+64 {
		t.Fatalf("memory grew too fast: %d -> %d bits", rs.PeakMemoryBits, rl.PeakMemoryBits)
	}
}

func TestRouteNoDegreeReductionAblation(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		s, d graph.NodeID
	}{
		{name: "grid", g: gen.Grid(4, 4), s: 0, d: 15},
		{name: "star", g: gen.Star(10), s: 1, d: 9},
		{name: "complete", g: gen.Complete(8), s: 0, d: 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := newRouter(t, tt.g, Config{Seed: 23, NoDegreeReduction: true})
			res, err := r.Route(tt.s, tt.d)
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != netsim.StatusSuccess {
				t.Fatalf("ablation route failed: %+v", res)
			}
		})
	}
}

func TestRouteAblationIsolatedSource(t *testing.T) {
	g := graph.New()
	g.EnsureNode(0)
	g.EnsureNode(1)
	r := newRouter(t, g, Config{Seed: 1, NoDegreeReduction: true})
	if _, err := r.Route(0, 1); !errors.Is(err, ErrIsolatedSource) {
		t.Fatalf("error = %v, want ErrIsolatedSource", err)
	}
}

func TestRouteIsolatedSourceReduced(t *testing.T) {
	// With degree reduction the isolated source becomes a theta gadget and
	// the algorithm terminates with failure — no special case.
	g := graph.New()
	g.EnsureNode(0)
	g.EnsureNode(1)
	r := newRouter(t, g, Config{Seed: 1})
	res, err := r.Route(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != netsim.StatusFailure {
		t.Fatalf("status = %v, want failure", res.Status)
	}
}

func TestRouteDeterministic(t *testing.T) {
	g := gen.Grid(4, 4)
	a := newRouter(t, g, Config{Seed: 9})
	b := newRouter(t, g, Config{Seed: 9})
	ra, err := a.Route(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Route(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Hops != rb.Hops || ra.ForwardSteps != rb.ForwardSteps || ra.Bound != rb.Bound {
		t.Fatalf("same-seed routes differ: %+v vs %+v", ra, rb)
	}
}

func TestRouteTraceObservesWalk(t *testing.T) {
	var hops int
	cfg := Config{Seed: 4, Trace: func(hop int64, at graph.NodeID, inPort int, h netsim.Header) {
		hops++
	}}
	r := newRouter(t, gen.Cycle(5), cfg)
	res, err := r.Route(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if hops == 0 {
		t.Fatal("trace never fired")
	}
	if int64(hops) < res.Hops {
		t.Fatalf("trace saw %d activations, result says %d hops", hops, res.Hops)
	}
}

func TestRouteLabelingInvariance(t *testing.T) {
	// Delivery is guaranteed under any port labeling (Definition 3).
	for seed := uint64(0); seed < 5; seed++ {
		g := gen.Grid(3, 4)
		g.ShuffleLabels(seed)
		r := newRouter(t, g, Config{Seed: 31})
		res, err := r.Route(0, 11)
		if err != nil {
			t.Fatalf("labeling %d: %v", seed, err)
		}
		if res.Status != netsim.StatusSuccess {
			t.Fatalf("labeling %d: delivery failed", seed)
		}
	}
}

func TestRouteConcurrentMatchesSequential(t *testing.T) {
	g := gen.Grid(3, 3)
	r := newRouter(t, g, Config{Seed: 7})
	seq, err := r.Route(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	con, err := r.RouteConcurrent(0, 8, seq.Bound, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if con.Status != netsim.StatusSuccess {
		t.Fatalf("concurrent status = %v", con.Status)
	}
	if con.Hops != seq.Rounds[len(seq.Rounds)-1].Hops {
		t.Fatalf("concurrent hops %d != sequential terminal round hops %d",
			con.Hops, seq.Rounds[len(seq.Rounds)-1].Hops)
	}
	if con.ForwardSteps != seq.ForwardSteps {
		t.Fatalf("forward steps differ: %d vs %d", con.ForwardSteps, seq.ForwardSteps)
	}
}

func TestRouteConcurrentSelf(t *testing.T) {
	r := newRouter(t, gen.Cycle(4), Config{Seed: 1})
	res, err := r.RouteConcurrent(1, 1, 8, time.Second)
	if err != nil || res.Status != netsim.StatusSuccess {
		t.Fatalf("self concurrent route = %+v, %v", res, err)
	}
}

func TestDefaultMemoryBudgetGrowth(t *testing.T) {
	if DefaultMemoryBudget(16) >= DefaultMemoryBudget(1<<20) {
		t.Fatal("budget must grow with n")
	}
	// Budget at a million nodes is still comfortably small (Θ(log n)).
	if DefaultMemoryBudget(1<<20) > 4096 {
		t.Fatalf("budget = %d bits, suspiciously large", DefaultMemoryBudget(1<<20))
	}
}
