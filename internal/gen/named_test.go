package gen

import (
	"testing"

	"repro/internal/graph"
)

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	checkValid(t, g)
	if g.NumNodes() != 7 || g.NumEdges() != 12 {
		t.Fatalf("K_{3,4}: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	// Bipartite: no edges within parts.
	for i := graph.NodeID(0); i < 3; i++ {
		for j := graph.NodeID(0); j < 3; j++ {
			if i != j && g.HasEdge(i, j) {
				t.Fatalf("edge inside left part: (%d,%d)", i, j)
			}
		}
	}
	if !g.IsConnected() {
		t.Fatal("K_{3,4} should be connected")
	}
	// K_{3,3} is 3-regular.
	if !CompleteBipartite(3, 3).IsRegular(3) {
		t.Fatal("K_{3,3} should be 3-regular")
	}
}

func TestCircularLadder(t *testing.T) {
	for _, n := range []int{3, 5, 8} {
		g := CircularLadder(n)
		checkValid(t, g)
		if g.NumNodes() != 2*n || !g.IsRegular(3) {
			t.Fatalf("CL_%d: %d nodes, 3-regular=%v", n, g.NumNodes(), g.IsRegular(3))
		}
		if !g.IsConnected() {
			t.Fatalf("CL_%d should be connected", n)
		}
		if g.NumEdges() != 3*n {
			t.Fatalf("CL_%d edges = %d, want %d", n, g.NumEdges(), 3*n)
		}
	}
}

func TestPetersenProperties(t *testing.T) {
	g := Petersen()
	checkValid(t, g)
	if g.NumNodes() != 10 || g.NumEdges() != 15 || !g.IsRegular(3) {
		t.Fatal("Petersen basic counts wrong")
	}
	if !g.IsConnected() {
		t.Fatal("Petersen should be connected")
	}
	// Girth 5: no cycles of length 3 or 4. Check via neighborhood: no two
	// adjacent vertices share a neighbour (no triangles), and no two
	// non-adjacent vertices share more than one neighbour (no 4-cycles).
	neighbors := func(v graph.NodeID) map[graph.NodeID]bool {
		out := make(map[graph.NodeID]bool)
		for p := 0; p < g.Degree(v); p++ {
			h, err := g.Neighbor(v, p)
			if err != nil {
				t.Fatal(err)
			}
			out[h.To] = true
		}
		return out
	}
	for u := graph.NodeID(0); u < 10; u++ {
		nu := neighbors(u)
		for v := graph.NodeID(u + 1); v < 10; v++ {
			nv := neighbors(v)
			shared := 0
			for w := range nu {
				if nv[w] {
					shared++
				}
			}
			if nu[v] && shared > 0 {
				t.Fatalf("triangle through edge (%d,%d)", u, v)
			}
			if !nu[v] && shared > 1 {
				t.Fatalf("4-cycle through (%d,%d): %d shared neighbours", u, v, shared)
			}
		}
	}
	// Diameter 2.
	dist := g.BFSDist(0)
	for v, d := range dist {
		if d > 2 {
			t.Fatalf("dist(0,%d) = %d, Petersen has diameter 2", v, d)
		}
	}
}
