package flatgraph

// Connected components of the CSR snapshot, computed once and memoized on
// the Graph (which is immutable after Compile, so the index never goes
// stale). The walk of §4 can only ever reach nodes in the component of its
// start, so two nodes in different components are provably mutually
// unreachable: comparing their component ids answers in O(1) what the
// doubling loop would otherwise establish by burning its entire budget.

// Components is an immutable node→component index over one compiled
// snapshot. Component ids are canonical — numbered 0..Count()-1 by first
// appearance in dense-index order — so two compiles of the same graph
// assign identical ids and a certificate minted from one snapshot can be
// compared against a recompile of the same topology version.
type Components struct {
	comp  []int32
	sizes []int32
}

// Components returns the connected-component index of f, computing it on
// first use. Safe for concurrent callers.
func (f *Graph) Components() *Components {
	f.compOnce.Do(func() { f.comps = computeComponents(f) })
	return f.comps
}

// computeComponents runs union-find (path halving + union by size) over
// the half-edge table, then relabels roots in dense-index order so ids are
// deterministic.
func computeComponents(f *Graph) *Components {
	n := len(f.ids)
	parent := make([]int32, n)
	size := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
		size[i] = 1
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		for o := f.rowStart[i]; o < f.rowStart[i+1]; o++ {
			a, b := find(int32(i)), find(f.halves[o].To)
			if a == b {
				continue
			}
			if size[a] < size[b] {
				a, b = b, a
			}
			parent[b] = a
			size[a] += size[b]
		}
	}
	c := &Components{comp: make([]int32, n)}
	label := make([]int32, n)
	for i := range label {
		label[i] = -1
	}
	for i := 0; i < n; i++ {
		r := find(int32(i))
		if label[r] < 0 {
			label[r] = int32(len(c.sizes))
			c.sizes = append(c.sizes, size[r])
		}
		c.comp[i] = label[r]
	}
	return c
}

// Of returns the component id of dense node i.
func (c *Components) Of(i int32) int32 { return c.comp[i] }

// Same reports whether dense nodes i and j lie in the same component —
// equivalently, whether a walk started at one can ever visit the other.
func (c *Components) Same(i, j int32) bool { return c.comp[i] == c.comp[j] }

// Count returns the number of components.
func (c *Components) Count() int { return len(c.sizes) }

// Size returns the number of snapshot nodes in component id.
func (c *Components) Size(id int32) int { return int(c.sizes[id]) }
