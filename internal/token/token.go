// Package token mints and verifies the opaque resume tokens the HTTP
// layer hands to clients whose walks stopped on a budget or deadline. A
// token is the route.Cursor serialized and bound to a scope (which engine
// or world it may resume against), authenticated with HMAC-SHA256 so a
// client cannot forge or tamper with a walk position — the server trusts a
// verified cursor enough to re-enter a walk from it without re-validating
// the whole walk history.
//
// Wire format: base64url(JSON envelope) "." base64url(HMAC-SHA256 of the
// first part). Tokens are opaque to clients by contract, not by
// encryption: the cursor contents are visible, only unforgeable.
package token

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"repro/internal/route"
)

// ErrInvalid marks every verification failure — malformed encoding, bad
// signature, or a scope mismatch. Callers need only errors.Is it; the
// wrapped detail says which check failed (safe to log, not to act on).
var ErrInvalid = errors.New("token: invalid resume token")

// envelope is the signed payload: the cursor plus the scope it was minted
// for. The scope rides inside the MAC'd bytes, so a token for one
// network's world cannot be replayed against another's.
type envelope struct {
	Scope  string        `json:"scope"`
	Cursor *route.Cursor `json:"cursor"`
}

// Signer mints and verifies tokens under one secret key. Safe for
// concurrent use (the key is immutable after construction).
type Signer struct {
	key []byte
}

// NewSigner builds a signer from key. An empty key is replaced by a fresh
// random one, which is the right default for a single process: tokens
// then survive exactly as long as the server that minted them, and a
// restart invalidates every outstanding cursor along with the worlds they
// pointed into.
func NewSigner(key []byte) *Signer {
	if len(key) == 0 {
		key = make([]byte, 32)
		if _, err := rand.Read(key); err != nil {
			panic(fmt.Sprintf("token: reading random key: %v", err))
		}
	}
	return &Signer{key: append([]byte(nil), key...)}
}

func (s *Signer) mac(payload []byte) []byte {
	h := hmac.New(sha256.New, s.key)
	h.Write(payload)
	return h.Sum(nil)
}

// Sign serializes cur bound to scope and returns the opaque token.
func (s *Signer) Sign(scope string, cur *route.Cursor) (string, error) {
	if cur == nil {
		return "", errors.New("token: nil cursor")
	}
	payload, err := json.Marshal(envelope{Scope: scope, Cursor: cur})
	if err != nil {
		return "", fmt.Errorf("token: %w", err)
	}
	enc := base64.RawURLEncoding
	return enc.EncodeToString(payload) + "." + enc.EncodeToString(s.mac(payload)), nil
}

// Verify authenticates tok and returns its cursor. The token must have
// been minted by this signer for exactly this scope; anything else —
// truncation, tampering, a foreign key, a token for another scope —
// returns an error wrapping ErrInvalid. Verify never panics on hostile
// input (pinned by a fuzz test).
func (s *Signer) Verify(scope, tok string) (*route.Cursor, error) {
	body, sig, ok := strings.Cut(tok, ".")
	if !ok {
		return nil, fmt.Errorf("%w: missing signature", ErrInvalid)
	}
	enc := base64.RawURLEncoding
	payload, err := enc.DecodeString(body)
	if err != nil {
		return nil, fmt.Errorf("%w: payload encoding", ErrInvalid)
	}
	got, err := enc.DecodeString(sig)
	if err != nil {
		return nil, fmt.Errorf("%w: signature encoding", ErrInvalid)
	}
	if !hmac.Equal(got, s.mac(payload)) {
		return nil, fmt.Errorf("%w: signature mismatch", ErrInvalid)
	}
	var env envelope
	if err := json.Unmarshal(payload, &env); err != nil {
		return nil, fmt.Errorf("%w: payload", ErrInvalid)
	}
	if env.Scope != scope {
		return nil, fmt.Errorf("%w: token is for scope %q", ErrInvalid, env.Scope)
	}
	if env.Cursor == nil {
		return nil, fmt.Errorf("%w: no cursor", ErrInvalid)
	}
	return env.Cursor, nil
}
