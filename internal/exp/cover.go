package exp

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/count"
	"repro/internal/degred"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/route"
	"repro/internal/ues"
)

// E4CoverTime compares the exploration-sequence cover time against the
// random walk's, on structured families and the lollipop worst case (§2:
// exploration sequences are "a derandomized version of the randomized
// walk"; refs [3,7] give the O(n²) bound for bounded degree).
func E4CoverTime(o Options) (*Table, error) {
	t := &Table{
		ID:     "E4",
		Title:  "Cover time: UES vs random walk, and what degree reduction buys",
		Anchor: "§2 and refs [3,7]: random-walk cover O(n²) for 3-regular graphs; UES derandomizes it",
		Columns: []string{"family", "n", "n'", "UES on G' ", "RW on G' (median)",
			"RW on G (median)", "UES/n'²", "RW(G')/n'²", "RW(G)/n³"},
	}
	type instance struct {
		fam string
		g   *graph.Graph
	}
	sizes := o.sizes([]int{16, 36, 64}, []int{9, 16})
	reps := o.reps(5, 3)
	for _, n := range sizes {
		k := intSqrt(n)
		instances := []instance{
			{fam: "cycle", g: gen.Cycle(n)},
			{fam: "grid", g: gen.Grid(k, k)},
			{fam: "lollipop", g: gen.Lollipop(n/2, n/2)},
		}
		if rr, err := gen.RandomRegularSimple(n+n%2, 3, o.Seed, 400); err == nil {
			instances = append(instances, instance{fam: "regular3", g: rr})
		}
		for _, inst := range instances {
			red, err := degred.Reduce(inst.g)
			if err != nil {
				return nil, err
			}
			gp := red.Graph()
			np := gp.NumNodes()
			seq := &ues.Pseudorandom{Seed: o.Seed, N: np, Base: 3}
			start, _ := red.Entry(0)
			uesSteps, ok, err := ues.CoverSteps(gp, ues.Start(start), seq)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("E4 %s n=%d: UES did not cover within L", inst.fam, n)
			}
			var rwReduced, rwOriginal []int64
			for k := 0; k < reps; k++ {
				steps, ok, err := baseline.RandomWalkCover(gp, start, o.Seed+uint64(k)*31, int64(np)*int64(np)*256)
				if err != nil {
					return nil, err
				}
				if !ok {
					steps = int64(np) * int64(np) * 256 // censored at budget
				}
				rwReduced = append(rwReduced, steps)

				no := int64(inst.g.NumNodes())
				budget := no * no * no * 64
				oSteps, ok, err := baseline.RandomWalkCover(inst.g, 0, o.Seed+uint64(k)*37, budget)
				if err != nil {
					return nil, err
				}
				if !ok {
					oSteps = budget // censored
				}
				rwOriginal = append(rwOriginal, oSteps)
			}
			rwMed := median(rwReduced)
			rwOrigMed := median(rwOriginal)
			no := float64(inst.g.NumNodes())
			t.AddRow(inst.fam, fmtInt(inst.g.NumNodes()), fmtInt(np), fmtInt(uesSteps),
				fmtInt64(rwMed), fmtInt64(rwOrigMed),
				fmtFloat(float64(uesSteps)/float64(np)/float64(np)),
				fmtFloat(float64(rwMed)/float64(np)/float64(np)),
				fmtFloat(float64(rwOrigMed)/(no*no*no)))
		}
	}
	t.AddNote("On the 3-regular G' both walks sit inside the O(n'²) envelope — bounded degree is what buys the quadratic bound, which is exactly why §3 reduces the graph.")
	t.AddNote("On the original lollipop the random walk pays its classic Θ(n³) toll (RW(G)/n³ stays near a constant there while other families are far below it).")
	return t, nil
}

// E5FailureDetect measures guaranteed failure detection on disconnected
// pairs: Algorithm Route terminates with status=failure and a coverage
// certificate; the random walk only stops via its TTL and learns nothing.
func E5FailureDetect(o Options) (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "Failure detection on disconnected pairs",
		Anchor: "§3: after L_n steps the message backtracks and s learns \"failure\"; §1.2 defect 3 of the random walk",
		Columns: []string{"component size", "rounds", "total hops", "status", "covered certificate",
			"random walk outcome"},
	}
	sizes := o.sizes([]int{8, 16, 32}, []int{4, 8})
	for _, n := range sizes {
		a := gen.Grid(intSqrt(n), intSqrt(n))
		b := gen.Cycle(5)
		g, err := gen.DisjointUnion(a, b, 10000)
		if err != nil {
			return nil, err
		}
		// The experiment measures the walked §4 failure detection, so the
		// O(1) component certificate is disabled here.
		r, err := route.New(g, route.Config{Seed: o.Seed, DisableCertificates: true})
		if err != nil {
			return nil, err
		}
		res, err := r.Route(0, 10001)
		if err != nil {
			return nil, err
		}
		if res.Status != netsim.StatusFailure {
			return nil, fmt.Errorf("E5 n=%d: expected failure, got %v", n, res.Status)
		}
		last := res.Rounds[len(res.Rounds)-1]
		rw, err := baseline.RandomWalkRoute(g, 0, 10001, o.Seed, int64(64*n*n))
		if err != nil {
			return nil, err
		}
		rwOutcome := fmt.Sprintf("TTL expired after %d hops (no verdict)", rw.Hops)
		if rw.Delivered {
			rwOutcome = "delivered (impossible)"
		}
		t.AddRow(fmtInt(a.NumNodes()), fmtInt(len(res.Rounds)), fmtInt64(res.Hops),
			res.Status.String(), fmt.Sprintf("%v", last.Covered), rwOutcome)
	}
	t.AddNote("Route's failure verdict is definitive: the terminal round certifies that the walk covered C_s and t was not in it.")
	return t, nil
}

// E6CountNodes validates §4: CountNodes computes |C_s| exactly with no
// prior knowledge, in local mode across sizes and in the message-faithful
// mode (with its full hop cost) on small instances.
func E6CountNodes(o Options) (*Table, error) {
	t := &Table{
		ID:     "E6",
		Title:  "CountNodes: exact component counting without prior knowledge (§4)",
		Anchor: "§4: counting in time poly(|Cs|) via T_1, T_2, T_4, … and neighbourhood closure",
		Columns: []string{"family", "n", "mode", "count (original)", "count (reduced)", "exact",
			"rounds", "bound", "retrieves", "hops"},
	}
	sizes := o.sizes([]int{8, 18, 32, 64}, []int{6, 12})
	for _, n := range sizes {
		k := intSqrt(n)
		for _, fam := range []struct {
			name string
			g    *graph.Graph
		}{
			{name: "grid", g: gen.Grid(k, k)},
			{name: "cycle", g: gen.Cycle(n)},
			{name: "tree", g: gen.RandomTree(n, o.Seed)},
		} {
			c, err := count.New(fam.g, count.Config{Seed: o.Seed, Mode: count.ModeLocal})
			if err != nil {
				return nil, err
			}
			res, err := c.Count(0)
			if err != nil {
				return nil, err
			}
			exact := res.OriginalCount == fam.g.NumNodes()
			if !exact {
				return nil, fmt.Errorf("E6 %s n=%d: count %d != %d", fam.name, n,
					res.OriginalCount, fam.g.NumNodes())
			}
			t.AddRow(fam.name, fmtInt(fam.g.NumNodes()), "local", fmtInt(res.OriginalCount),
				fmtInt(res.ReducedCount), "yes", fmtInt(res.Rounds), fmtInt(res.Bound),
				fmtInt64(res.Retrieves), "-")
		}
	}
	// Message-faithful mode on tiny instances: the full Θ(L³) hop cost.
	for _, tiny := range []struct {
		name string
		g    *graph.Graph
	}{
		{name: "one-edge", g: gen.Path(2)},
		{name: "path3", g: gen.Path(3)},
	} {
		c, err := count.New(tiny.g, count.Config{Seed: o.Seed, Mode: count.ModeMessages, LengthFactor: 1})
		if err != nil {
			return nil, err
		}
		res, err := c.Count(0)
		if err != nil {
			return nil, err
		}
		exact := res.OriginalCount == tiny.g.NumNodes()
		t.AddRow(tiny.name, fmtInt(tiny.g.NumNodes()), "messages", fmtInt(res.OriginalCount),
			fmtInt(res.ReducedCount), fmt.Sprintf("%v", exact), fmtInt(res.Rounds),
			fmtInt(res.Bound), fmtInt64(res.Retrieves), fmtInt64(res.Hops))
	}
	t.AddNote("Counts are exact in every instance; the message-faithful mode shows the Θ(L²) retrieves / Θ(L³) hops price §4 pays.")
	return t, nil
}
