package ues

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/prng"
)

// EnumerateCubicPairings returns every connected labeled 3-regular
// multigraph on n nodes, generated as all perfect matchings of the 3n
// half-edge stubs (stub 3v+p is port p of node v). Because ports are
// assigned by stub index, the enumeration is exhaustive over *labelings* as
// well as over multigraph structures — exactly the quantifiers of
// Definition 3. n must be even (3n stubs must pair up); practical for
// n ≤ 4 ((3n-1)!! growth).
func EnumerateCubicPairings(n int) ([]*graph.Graph, error) {
	if n <= 0 || n%2 != 0 {
		return nil, fmt.Errorf("ues: cubic enumeration needs positive even n, got %d", n)
	}
	stubs := 3 * n
	matched := make([]int, stubs)
	for i := range matched {
		matched[i] = -1
	}
	var out []*graph.Graph
	var rec func(int) error
	rec = func(lo int) error {
		for lo < stubs && matched[lo] != -1 {
			lo++
		}
		if lo == stubs {
			g, err := pairingGraph(n, matched)
			if err != nil {
				return err
			}
			if g.IsConnected() {
				out = append(out, g)
			}
			return nil
		}
		for hi := lo + 1; hi < stubs; hi++ {
			if matched[hi] != -1 {
				continue
			}
			matched[lo], matched[hi] = hi, lo
			if err := rec(lo + 1); err != nil {
				return err
			}
			matched[lo], matched[hi] = -1, -1
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}

// pairingGraph converts a stub matching into a port-labeled graph.
func pairingGraph(n int, matched []int) (*graph.Graph, error) {
	order := make([]graph.NodeID, n)
	adj := make(map[graph.NodeID][]graph.Half, n)
	for v := 0; v < n; v++ {
		order[v] = graph.NodeID(v)
		adj[graph.NodeID(v)] = make([]graph.Half, 3)
	}
	for s, m := range matched {
		adj[graph.NodeID(s/3)][s%3] = graph.Half{
			To:     graph.NodeID(m / 3),
			ToPort: m % 3,
		}
	}
	return graph.NewFromAdjacency(order, adj)
}

// CorpusOptions configures CubicCorpus.
type CorpusOptions struct {
	// MaxN is the largest graph size to include (even sizes only).
	MaxN int
	// SamplesPerSize is how many random cubic multigraphs to draw for each
	// size above the exhaustive range.
	SamplesPerSize int
	// LabelingsPerGraph is how many additional shuffled-label variants to
	// add per sampled graph.
	LabelingsPerGraph int
	// Seed drives all sampling.
	Seed uint64
	// SkipExhaustive omits the exhaustive n ∈ {2,4} enumeration (useful
	// for benchmarks that only want the sampled tail).
	SkipExhaustive bool
}

// CubicCorpus builds a deterministic verification corpus of connected
// labeled cubic multigraphs:
//
//   - exhaustive: every labeled cubic multigraph on 2 and 4 nodes,
//   - structured: named cubic graphs (K4, K_3,3, Petersen, prisms) under
//     several labelings,
//   - sampled: random cubic multigraphs (configuration model) of each even
//     size 6..MaxN, each under several labelings.
func CubicCorpus(opts CorpusOptions) ([]*graph.Graph, error) {
	if opts.MaxN < 2 {
		opts.MaxN = 2
	}
	if opts.SamplesPerSize <= 0 {
		opts.SamplesPerSize = 3
	}
	if opts.LabelingsPerGraph <= 0 {
		opts.LabelingsPerGraph = 2
	}
	var out []*graph.Graph
	if !opts.SkipExhaustive {
		for _, n := range []int{2, 4} {
			if n > opts.MaxN {
				break
			}
			gs, err := EnumerateCubicPairings(n)
			if err != nil {
				return nil, err
			}
			out = append(out, gs...)
		}
	}
	seed := opts.Seed
	addLabelings := func(g *graph.Graph) {
		out = append(out, g)
		for k := 0; k < opts.LabelingsPerGraph; k++ {
			c := g.Clone()
			seed++
			c.ShuffleLabels(seed)
			out = append(out, c)
		}
	}
	for _, g := range structuredCubic(opts.MaxN) {
		addLabelings(g)
	}
	src := prng.New(opts.Seed ^ 0xc0ffee)
	for n := 6; n <= opts.MaxN; n += 2 {
		for s := 0; s < opts.SamplesPerSize; s++ {
			g, err := gen.RandomRegularMulti(n, 3, src.Uint64())
			if err != nil {
				return nil, err
			}
			if !g.IsConnected() {
				continue
			}
			addLabelings(g)
		}
	}
	return out, nil
}

// structuredCubic returns the named cubic graphs with at most maxN nodes.
func structuredCubic(maxN int) []*graph.Graph {
	var out []*graph.Graph
	if maxN >= 4 {
		out = append(out, gen.Complete(4))
	}
	if maxN >= 6 {
		out = append(out, gen.CompleteBipartite(3, 3), gen.CircularLadder(3))
	}
	if maxN >= 8 {
		out = append(out, gen.CircularLadder(4))
	}
	if maxN >= 10 {
		out = append(out, gen.Petersen())
	}
	if maxN >= 12 {
		out = append(out, gen.CircularLadder(6))
	}
	return out
}

// Verify checks that seq covers every graph in the corpus from every
// initial edge (the Definition 3 condition over the given family). It
// returns ErrNotUniversal wrapped with the index of the first failing graph.
func Verify(seq Sequence, corpus []*graph.Graph) error {
	for i, g := range corpus {
		ok, err := Covers(g, g.Nodes()[0], seq)
		if err != nil {
			return fmt.Errorf("ues: verify graph %d: %w", i, err)
		}
		if !ok {
			return fmt.Errorf("%w: graph %d (%d nodes)", ErrNotUniversal, i, g.NumNodes())
		}
	}
	return nil
}
