// Quickstart: build a small ad hoc network, route a message with
// guaranteed delivery, and inspect the resource accounting of Theorem 1.
package main

import (
	"fmt"
	"log"

	adhocroute "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A random 2-D unit-disk network: 60 sensors in the unit square,
	// radios with range 0.25.
	nw := adhocroute.NewUnitDisk2D(60, 0.25, 42)
	fmt.Printf("network: %d nodes, %d links\n", nw.NumNodes(), nw.NumLinks())

	// Pick a connected pair using the oracle (tooling only — the protocol
	// itself needs no global knowledge).
	nodes := nw.Nodes()
	s := nodes[0]
	var t adhocroute.NodeID = -1
	for _, v := range nodes[1:] {
		if nw.ConnectedTo(s, v) {
			t = v // farthest-inserted connected node wins
		}
	}
	if t < 0 {
		return fmt.Errorf("seed produced an isolated source; try another seed")
	}

	// Route with guaranteed delivery. No node stores routing state; the
	// message header carries O(log n) bits.
	res, err := nw.Route(s, t, adhocroute.WithSeed(2026))
	if err != nil {
		return err
	}
	fmt.Printf("route %d -> %d: %s\n", s, t, res.Status)
	fmt.Printf("  hops: %d (target found at exploration step %d)\n", res.Hops, res.ForwardSteps)
	fmt.Printf("  doubling rounds: %d (final bound %d)\n", res.Rounds, res.Bound)
	fmt.Printf("  max header: %d bits, peak node memory: %d bits\n",
		res.HeaderBits, res.NodeMemoryBits)

	// Routing to a name that does not exist terminates too — with a
	// definitive failure verdict (Theorem 1's guarantee).
	ghost, err := nw.Route(s, 999999, adhocroute.WithSeed(2026))
	if err != nil {
		return err
	}
	fmt.Printf("route %d -> 999999: %s (terminated after %d hops)\n", s, ghost.Status, ghost.Hops)
	return nil
}
