package adhocroute_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links/images: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// docFiles returns README.md plus every markdown file under docs/.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md"}
	matches, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	return append(files, matches...)
}

// TestDocLinks fails on broken intra-repo links in README.md and
// docs/*.md: every relative link target must exist on disk, resolved
// against the linking file's directory. External links (http/https) and
// pure anchors are skipped — this pins the repo's own structure, not the
// internet. CI runs this as the docs job.
func TestDocLinks(t *testing.T) {
	checked := 0
	for _, file := range docFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue
			}
			// Strip an in-file anchor: FILE.md#section checks FILE.md.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s): %v", file, m[1], resolved, err)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no intra-repo links found — the matcher or the docs tree is broken")
	}
	t.Logf("checked %d intra-repo links", checked)
}

// TestDocsReferencedFilesExist pins the repo files the prose leans on by
// backtick mention rather than by link — benchmark records and the
// PR history — so a doc rot (renamed artifact) fails fast.
func TestDocsReferencedFilesExist(t *testing.T) {
	benchRef := regexp.MustCompile("`(BENCH_PR[0-9]+\\.json|CHANGES\\.md|ROADMAP\\.md|PAPER\\.md)`")
	for _, file := range docFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range benchRef.FindAllStringSubmatch(string(data), -1) {
			if _, err := os.Stat(m[1]); err != nil {
				t.Errorf("%s mentions %s which does not exist", file, m[1])
			}
		}
	}
}
