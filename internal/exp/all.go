package exp

import "fmt"

// Runner is a named experiment entry point.
type Runner struct {
	ID   string
	Name string
	Run  func(Options) (*Table, error)
}

// Runners lists every experiment in DESIGN.md order.
func Runners() []Runner {
	return []Runner{
		{ID: "F1", Name: "degree reduction", Run: F1DegreeReduction},
		{ID: "E1", Name: "delivery 2D", Run: E1Delivery2D},
		{ID: "E2", Name: "delivery 3D", Run: E2Delivery3D},
		{ID: "E3", Name: "hops vs n", Run: E3HopsVsN},
		{ID: "E4", Name: "cover time", Run: E4CoverTime},
		{ID: "E5", Name: "failure detection", Run: E5FailureDetect},
		{ID: "E6", Name: "count nodes", Run: E6CountNodes},
		{ID: "E7", Name: "space overhead", Run: E7SpaceOverhead},
		{ID: "E8", Name: "zig-zag transform", Run: E8ZigZag},
		{ID: "E9", Name: "hybrid", Run: E9Hybrid},
		{ID: "E10", Name: "static assumption stress", Run: E10StaticAssumption},
		{ID: "E11", Name: "dynamic networks", Run: E11DynamicNetworks},
		{ID: "A1", Name: "confirm mode ablation", Run: A1ConfirmMode},
		{ID: "A2", Name: "growth factor ablation", Run: A2GrowthFactor},
		{ID: "A3", Name: "length factor ablation", Run: A3LengthFactor},
		{ID: "A4", Name: "degree reduction ablation", Run: A4DegreeReduction},
		{ID: "A5", Name: "adversarial labeling ablation", Run: A5AdversarialLabeling},
	}
}

// ByID returns the runner for an experiment ID.
func ByID(id string) (Runner, error) {
	for _, r := range Runners() {
		if r.ID == id {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("exp: unknown experiment %q", id)
}

// All runs every experiment and returns the tables in order.
func All(o Options) ([]*Table, error) {
	var out []*Table
	for _, r := range Runners() {
		tbl, err := r.Run(o)
		if err != nil {
			return out, fmt.Errorf("exp: %s: %w", r.ID, err)
		}
		out = append(out, tbl)
	}
	return out, nil
}
