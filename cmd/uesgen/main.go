// Command uesgen works with universal exploration sequences: emit the
// first symbols of T_n, verify universality against a corpus of labeled
// cubic multigraphs, and report cover times.
//
// Usage:
//
//	uesgen emit   -n 16 -seed 2026 -count 64
//	uesgen verify -n 12 -seed 2026 [-samples 3] [-labelings 2]
//	uesgen cover  -n 64 -seed 2026 -kind lollipop
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/degred"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ues"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "uesgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return errors.New("usage: uesgen <emit|verify|cover> [flags]")
	}
	switch args[0] {
	case "emit":
		return runEmit(args[1:], out)
	case "verify":
		return runVerify(args[1:], out)
	case "cover":
		return runCover(args[1:], out)
	case "find":
		return runFind(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// runFind searches for a certified universal exploration sequence over the
// exhaustive corpus of labeled cubic multigraphs on ≤ maxn nodes and prints
// the locally minimal certificate.
func runFind(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("find", flag.ContinueOnError)
	var (
		maxN = fs.Int("maxn", 4, "certify for all labeled cubic multigraphs up to this size (2 or 4)")
		seed = fs.Uint64("seed", 2026, "search seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	seq, err := ues.CertifiedSmall(*maxN, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "certified universal exploration sequence for ALL labeled cubic multigraphs on <= %d nodes\n", *maxN)
	fmt.Fprintf(out, "length: %d (locally minimal prefix)\n", seq.Len())
	for i := 1; i <= seq.Len(); i++ {
		if i > 1 {
			fmt.Fprint(out, " ")
		}
		fmt.Fprint(out, seq.At(i))
	}
	fmt.Fprintln(out)
	return nil
}

func runEmit(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("emit", flag.ContinueOnError)
	var (
		n     = fs.Int("n", 16, "graph size bound")
		seed  = fs.Uint64("seed", 2026, "sequence seed")
		count = fs.Int("count", 64, "symbols to emit (0 = full length)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	seq := &ues.Pseudorandom{Seed: *seed, N: *n, Base: 3}
	total := seq.Len()
	fmt.Fprintf(out, "# T_%d seed=%d length=%d\n", *n, *seed, total)
	emit := *count
	if emit <= 0 || emit > total {
		emit = total
	}
	for i := 1; i <= emit; i++ {
		if i > 1 {
			fmt.Fprint(out, " ")
		}
		fmt.Fprint(out, seq.At(i))
	}
	fmt.Fprintln(out)
	return nil
}

func runVerify(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 12, "verify against cubic multigraphs up to this size")
		seed      = fs.Uint64("seed", 2026, "sequence seed")
		samples   = fs.Int("samples", 3, "random graphs per size above the exhaustive range")
		labelings = fs.Int("labelings", 2, "extra shuffled labelings per graph")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	corpus, err := ues.CubicCorpus(ues.CorpusOptions{
		MaxN:              *n,
		SamplesPerSize:    *samples,
		LabelingsPerGraph: *labelings,
		Seed:              *seed ^ 0xc0de,
	})
	if err != nil {
		return err
	}
	seq := &ues.Pseudorandom{Seed: *seed, N: *n, Base: 3}
	fmt.Fprintf(out, "verifying T_%d (seed %d, length %d) against %d labeled cubic multigraphs...\n",
		*n, *seed, seq.Len(), len(corpus))
	if err := ues.Verify(seq, corpus); err != nil {
		return err
	}
	fmt.Fprintln(out, "OK: every graph covered from every initial edge (Definition 3)")
	return nil
}

func runCover(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cover", flag.ContinueOnError)
	var (
		n    = fs.Int("n", 64, "graph size")
		seed = fs.Uint64("seed", 2026, "sequence seed")
		kind = fs.String("kind", "grid", "graph kind: grid, cycle, lollipop, tree")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var g *graph.Graph
	switch *kind {
	case "grid":
		k := 1
		for (k+1)*(k+1) <= *n {
			k++
		}
		g = gen.Grid(k, k)
	case "cycle":
		g = gen.Cycle(*n)
	case "lollipop":
		g = gen.Lollipop(*n/2, *n-*n/2)
	case "tree":
		g = gen.RandomTree(*n, *seed)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	red, err := degred.Reduce(g)
	if err != nil {
		return err
	}
	gp := red.Graph()
	seq := &ues.Pseudorandom{Seed: *seed, N: gp.NumNodes(), Base: 3}
	start, _ := red.Entry(0)
	steps, ok, err := ues.CoverSteps(gp, ues.Start(start), seq)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s n=%d: reduced to %d nodes\n", *kind, g.NumNodes(), gp.NumNodes())
	if !ok {
		fmt.Fprintf(out, "NOT covered within L = %d\n", seq.Len())
		return nil
	}
	np := float64(gp.NumNodes())
	fmt.Fprintf(out, "covered in %d steps (L = %d, steps/n'^2 = %.3f)\n",
		steps, seq.Len(), float64(steps)/(np*np))
	return nil
}
