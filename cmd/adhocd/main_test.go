package main

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/gen"
)

func TestBuildGraph(t *testing.T) {
	g, pos, desc, err := buildGraph("", "grid", 3, 4, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 12 || !strings.Contains(desc, "grid") {
		t.Fatalf("grid: %d nodes, desc %q", g.NumNodes(), desc)
	}
	if pos != nil {
		t.Fatal("grid returned a placement")
	}
	for _, kind := range []string{"udg2d", "udg3d"} {
		g, pos, _, err := buildGraph("", kind, 0, 0, 32, 0.3, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if g.NumNodes() != 32 {
			t.Fatalf("%s: %d nodes", kind, g.NumNodes())
		}
		if len(pos) != 32 {
			t.Fatalf("%s: %d positions, want 32", kind, len(pos))
		}
	}
	if _, _, _, err := buildGraph("", "torus", 0, 0, 0, 0, 0); err == nil {
		t.Fatal("unknown kind did not error")
	}
	if _, _, _, err := buildGraph("/nonexistent/net.txt", "", 0, 0, 0, 0, 0); err == nil {
		t.Fatal("missing file did not error")
	}
}

func TestBuildGraphFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "net.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.Cycle(8).Encode(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	g, _, desc, err := buildGraph(path, "", 0, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 8 || !strings.Contains(desc, "file:") {
		t.Fatalf("loaded: %d nodes, desc %q", g.NumNodes(), desc)
	}
}

func TestRunBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-gen", "nope"}, &out, nil); err == nil {
		t.Fatal("bad -gen did not error")
	}
	if err := run([]string{"-bogus"}, &out, nil); err == nil {
		t.Fatal("unknown flag did not error")
	}
}

// TestPprofFlag boots the daemon with -pprof and checks the profiling
// surface is live, then shuts it down.
func TestPprofFlag(t *testing.T) {
	var out bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-gen", "grid", "-rows", "3", "-cols", "3", "-pprof"},
			&out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v (output: %s)", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof request: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ = %d, want 200", resp.StatusCode)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v (output: %s)", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// syncBuffer is a goroutine-safe output sink: unlike the other daemon
// tests (which only read the log after the daemon has exited, so the
// done channel orders the accesses), TestMetricsAddr parses the log
// while the daemon is still running and may still write to it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestMetricsAddr boots the daemon with a dedicated metrics listener and
// checks the exposition moved there: scrapes answer on the ops port and
// 404 on the serving port.
func TestMetricsAddr(t *testing.T) {
	var out syncBuffer
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0",
			"-gen", "grid", "-rows", "3", "-cols", "3"}, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v (output: %s)", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	// The metrics address is printed before ready fires; parse it out.
	var maddr string
	for _, line := range strings.Split(out.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "adhocd: metrics on "); ok {
			maddr = rest
		}
	}
	if maddr == "" {
		t.Fatalf("metrics address not logged: %s", out.String())
	}

	resp, err := http.Get("http://" + maddr + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET metrics listener /metrics = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET main listener /metrics = %d, want 404 (moved to -metrics-addr)", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v (output: %s)", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestPprofOnMetricsAddr boots the daemon with both -pprof and
// -metrics-addr and checks the profiling surface moved to the ops
// listener: live there, absent from the public port.
func TestPprofOnMetricsAddr(t *testing.T) {
	var out syncBuffer
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0", "-pprof",
			"-gen", "grid", "-rows", "3", "-cols", "3"}, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v (output: %s)", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	var maddr string
	for _, line := range strings.Split(out.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "adhocd: metrics on "); ok {
			maddr = rest
		}
	}
	if maddr == "" {
		t.Fatalf("metrics address not logged: %s", out.String())
	}

	resp, err := http.Get("http://" + maddr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("ops pprof: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET ops listener /debug/pprof/ = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET main listener /debug/pprof/ = %d, want 404 (moved to ops port)", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v (output: %s)", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestServeAndGracefulShutdown boots the daemon on an ephemeral port,
// serves a real request, then delivers SIGINT and expects a clean drain.
func TestServeAndGracefulShutdown(t *testing.T) {
	var out bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-gen", "grid", "-rows", "4", "-cols", "4"}, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v (output: %s)", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Post("http://"+addr+"/v1/route", "application/json",
		bytes.NewReader([]byte(`{"src":0,"dst":15}`)))
	if err != nil {
		t.Fatalf("route request: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("route request: code %d", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v (output: %s)", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Fatalf("missing shutdown log: %s", out.String())
	}
}
