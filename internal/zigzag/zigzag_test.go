package zigzag

import (
	"errors"
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/prng"
)

func cycleRot(t *testing.T, n int) *RotGraph {
	t.Helper()
	rg, err := FromGraph(gen.Cycle(n))
	if err != nil {
		t.Fatal(err)
	}
	return rg
}

func TestFromGraphRoundTrip(t *testing.T) {
	g := gen.Petersen()
	rg, err := FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if rg.N() != 10 || rg.D() != 3 {
		t.Fatalf("dims = (%d,%d)", rg.N(), rg.D())
	}
	back, err := rg.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != 10 || !back.IsRegular(3) || !back.IsConnected() {
		t.Fatal("round trip broke the graph")
	}
}

func TestFromGraphRejectsIrregular(t *testing.T) {
	if _, err := FromGraph(gen.Star(4)); !errors.Is(err, ErrNotRegular) {
		t.Fatalf("error = %v, want ErrNotRegular", err)
	}
}

func TestNewRotGraphRejectsNonInvolution(t *testing.T) {
	// Two vertices, degree 1, but both map to (0,0).
	rot := []int32{0, 0}
	if _, err := NewRotGraph(2, 1, rot); !errors.Is(err, ErrNotInvolution) {
		t.Fatalf("error = %v, want ErrNotInvolution", err)
	}
}

func TestNewRotGraphRejectsBadSize(t *testing.T) {
	if _, err := NewRotGraph(2, 2, []int32{0}); err == nil {
		t.Fatal("short table accepted")
	}
}

func TestRegularize(t *testing.T) {
	rg, err := Regularize(gen.Path(5), 3)
	if err != nil {
		t.Fatal(err)
	}
	if rg.N() != 5 || rg.D() != 3 {
		t.Fatalf("dims = (%d,%d)", rg.N(), rg.D())
	}
	if err := rg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Padding self-loops are fixed points of the rotation map.
	w, j := rg.Rot(0, 2)
	if w != 0 || j != 2 {
		t.Fatalf("padding slot is not a self-loop: (%d,%d)", w, j)
	}
	// Connectivity is preserved.
	g, err := rg.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Fatal("regularized path must stay connected")
	}
	// Degree above target rejected.
	if _, err := Regularize(gen.Star(6), 3); err == nil {
		t.Fatal("over-degree input accepted")
	}
}

func TestSquareDims(t *testing.T) {
	rg := cycleRot(t, 8)
	sq, err := rg.Square()
	if err != nil {
		t.Fatal(err)
	}
	if sq.N() != 8 || sq.D() != 4 {
		t.Fatalf("square dims = (%d,%d), want (8,4)", sq.N(), sq.D())
	}
	if err := sq.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSquareSpectrum checks λ(G²) = λ(G)² on an odd cycle, whose spectrum
// is known in closed form: for odd n the eigenvalues are cos(2πk/n), so the
// largest non-trivial magnitude is cos(π/n). (Even cycles are bipartite and
// have |λ| = 1, which is why the spectral pipeline uses lazy/regularized
// graphs.)
func TestSquareSpectrum(t *testing.T) {
	const n = 15
	rg := cycleRot(t, n)
	sq, err := rg.Square()
	if err != nil {
		t.Fatal(err)
	}
	lg := rg.Lambda(600)
	lsq := sq.Lambda(600)
	if want := math.Cos(math.Pi / n); math.Abs(lg-want) > 0.02 {
		t.Fatalf("odd cycle lambda = %.4f, want %.4f", lg, want)
	}
	if math.Abs(lsq-lg*lg) > 0.03 {
		t.Fatalf("lambda(G²) = %.4f, want %.4f", lsq, lg*lg)
	}
}

func TestLambdaCompleteGraph(t *testing.T) {
	rg, err := FromGraph(gen.Complete(8))
	if err != nil {
		t.Fatal(err)
	}
	// K_n walk matrix has non-trivial eigenvalue -1/(n-1).
	if l := rg.Lambda(200); math.Abs(l-1.0/7) > 0.02 {
		t.Fatalf("K8 lambda = %.4f, want %.4f", l, 1.0/7)
	}
}

func TestLambdaDisconnected(t *testing.T) {
	u, err := gen.DisjointUnion(gen.Cycle(4), gen.Cycle(4), 10)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := FromGraph(u)
	if err != nil {
		t.Fatal(err)
	}
	// Disconnected graphs have a second eigenvalue 1.
	if l := rg.Lambda(300); l < 0.99 {
		t.Fatalf("disconnected lambda = %.4f, want ~1", l)
	}
}

func TestLambdaSingleton(t *testing.T) {
	rg, err := Regularize(singleton(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if l := rg.Lambda(10); l != 0 {
		t.Fatalf("singleton lambda = %v, want 0", l)
	}
}

func singleton() *graph.Graph {
	g := graph.New()
	g.EnsureNode(0)
	return g
}

func TestZigZagDims(t *testing.T) {
	// G = C9 squared twice is 16-regular on 9 nodes (odd cycles stay
	// connected under squaring); H must be on 16 vertices. Use a 4-regular
	// H on 16 vertices: result is 16-regular on 9*16 nodes.
	g, err := cycleRot(t, 9).Square()
	if err != nil {
		t.Fatal(err)
	}
	g, err = g.Square() // 16-regular
	if err != nil {
		t.Fatal(err)
	}
	h, err := FindExpander(16, 4, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	z, err := ZigZag(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if z.N() != 9*16 || z.D() != 16 {
		t.Fatalf("zigzag dims = (%d,%d), want (144,16)", z.N(), z.D())
	}
	if err := z.Validate(); err != nil {
		t.Fatal(err)
	}
	zg, err := z.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	if !zg.IsConnected() {
		t.Fatal("zig-zag of connected graphs must be connected")
	}
}

func TestZigZagDimensionMismatch(t *testing.T) {
	g := cycleRot(t, 8)
	h := cycleRot(t, 5)
	if _, err := ZigZag(g, h); !errors.Is(err, ErrBadDims) {
		t.Fatalf("error = %v, want ErrBadDims", err)
	}
}

// TestZigZagSpectralBound checks the measured λ(G ⓩ H) against the RVW
// closed-form bound.
func TestZigZagSpectralBound(t *testing.T) {
	g, err := cycleRot(t, 11).Square()
	if err != nil {
		t.Fatal(err)
	}
	g, err = g.Square() // 16-regular on 10 nodes
	if err != nil {
		t.Fatal(err)
	}
	h, err := FindExpander(16, 4, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	z, err := ZigZag(g, h)
	if err != nil {
		t.Fatal(err)
	}
	lz := z.Lambda(300)
	bound := RVWBound(g.Lambda(300), h.Lambda(300))
	if lz > bound+0.02 {
		t.Fatalf("lambda(zigzag) = %.4f exceeds RVW bound %.4f", lz, bound)
	}
}

func TestReplacementProduct(t *testing.T) {
	// G = C6 (2-regular), H = single edge on 2 vertices (1-regular):
	// replacement is 2-regular on 12 vertices.
	g := cycleRot(t, 6)
	edge := []int32{1, 0} // K2 rotation map
	h, err := NewRotGraph(2, 1, edge)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Replacement(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if r.N() != 12 || r.D() != 2 {
		t.Fatalf("replacement dims = (%d,%d), want (12,2)", r.N(), r.D())
	}
	rg, err := r.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	if !rg.IsConnected() {
		t.Fatal("replacement product must stay connected")
	}
	// Label d (here 1) must cross clouds: walking it changes the cloud.
	for v := 0; v < r.N(); v++ {
		w, _ := r.Rot(v, h.D())
		if w/g.D() == v/g.D() {
			t.Fatalf("inter-cloud edge stayed within cloud at vertex %d", v)
		}
	}
	// Labels < d stay within the cloud.
	for v := 0; v < r.N(); v++ {
		for i := 0; i < h.D(); i++ {
			w, _ := r.Rot(v, i)
			if w/g.D() != v/g.D() {
				t.Fatalf("cloud edge left cloud at vertex %d label %d", v, i)
			}
		}
	}
}

func TestReplacementDimsMismatch(t *testing.T) {
	g := cycleRot(t, 6)
	h := cycleRot(t, 5)
	if _, err := Replacement(g, h); !errors.Is(err, ErrBadDims) {
		t.Fatalf("error = %v, want ErrBadDims", err)
	}
}

func TestFindExpanderQuality(t *testing.T) {
	h, err := FindExpander(64, 4, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 64 || h.D() != 4 {
		t.Fatalf("dims = (%d,%d)", h.N(), h.D())
	}
	// Random 4-regular graphs are near-Ramanujan: λ ≈ 2√3/4 ≈ 0.866.
	if l := h.Lambda(300); l > 0.95 {
		t.Fatalf("expander lambda = %.4f, too weak", l)
	}
}

func TestTransformLevelDims(t *testing.T) {
	base, err := Regularize(gen.Cycle(12), TransformDegree)
	if err != nil {
		t.Fatal(err)
	}
	h, err := DefaultExpander()
	if err != nil {
		t.Fatal(err)
	}
	next, err := TransformLevel(base, h)
	if err != nil {
		t.Fatal(err)
	}
	if next.D() != TransformDegree {
		t.Fatalf("transform changed degree to %d", next.D())
	}
	if next.N() != base.N()*TransformDegree*TransformDegree {
		t.Fatalf("transform size = %d, want %d", next.N(), base.N()*256)
	}
	if err := next.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTransformLevelRejectsBadDims(t *testing.T) {
	base := cycleRot(t, 8) // 2-regular: wrong degree
	h, err := FindExpander(16, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TransformLevel(base, h); !errors.Is(err, ErrBadDims) {
		t.Fatalf("error = %v, want ErrBadDims", err)
	}
}

// TestTransformImprovesGap is the E8 headline: one level of the main
// transform strictly increases the spectral gap of a lazy cycle, and the
// result remains connected with the same constant degree.
func TestTransformImprovesGap(t *testing.T) {
	base, err := Regularize(gen.Cycle(16), TransformDegree)
	if err != nil {
		t.Fatal(err)
	}
	h, err := DefaultExpander()
	if err != nil {
		t.Fatal(err)
	}
	reports, err := Transform(base, h, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	if reports[1].Gap <= reports[0].Gap {
		t.Fatalf("transform did not improve gap: %.4f -> %.4f",
			reports[0].Gap, reports[1].Gap)
	}
	if reports[1].D != TransformDegree {
		t.Fatalf("level-1 degree = %d", reports[1].D)
	}
}

func TestConnectedCertificate(t *testing.T) {
	rg, err := FromGraph(gen.Complete(8))
	if err != nil {
		t.Fatal(err)
	}
	conn, within, dist := rg.Connected(0, 5)
	if !conn || !within || dist != 1 {
		t.Fatalf("K8 Connected = (%v,%v,%d)", conn, within, dist)
	}
	if c, _, d := rg.Connected(3, 3); !c || d != 0 {
		t.Fatal("self connectivity failed")
	}
	u, err := gen.DisjointUnion(gen.Cycle(4), gen.Cycle(4), 10)
	if err != nil {
		t.Fatal(err)
	}
	ru, err := FromGraph(u)
	if err != nil {
		t.Fatal(err)
	}
	if c, _, d := ru.Connected(0, 4); c || d != -1 {
		t.Fatal("cross-component pair reported connected")
	}
}

func TestBFSDiameter(t *testing.T) {
	rg := cycleRot(t, 10)
	if d := rg.BFSDiameter(); d != 5 {
		t.Fatalf("C10 diameter = %d, want 5", d)
	}
}

func TestProjectReplacementWalk(t *testing.T) {
	// G = C6 (2-regular), H = K2 (1-regular on 2 vertices). A walk on
	// R(G,H) that alternates cloud and cross edges must project to a walk
	// on C6 moving one base vertex per cross step.
	g := cycleRot(t, 6)
	h, err := NewRotGraph(2, 1, []int32{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Labels: 1 = inter-cloud (h.D() = 1), 0 = within cloud.
	labels := []int{1, 0, 1, 0, 1}
	visited, err := ProjectReplacementWalk(g, h, 0, labels)
	if err != nil {
		t.Fatal(err)
	}
	// start cloud + one base vertex per label-1 step = 4 entries.
	if len(visited) != 4 {
		t.Fatalf("projected %d base vertices, want 4: %v", len(visited), visited)
	}
	if visited[0] != 0 {
		t.Fatalf("projection must start at the start cloud: %v", visited)
	}
	// Each consecutive pair must be adjacent in the base graph.
	bg, err := g.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(visited); i++ {
		if !bg.HasEdge(graph.NodeID(visited[i-1]), graph.NodeID(visited[i])) {
			t.Fatalf("projected step %d->%d is not a base edge", visited[i-1], visited[i])
		}
	}
}

// TestProjectedWalkCoversBase: a long pseudo-random walk on R(G,H) projects
// to a walk covering the base graph — expander walks drive base-graph
// exploration.
func TestProjectedWalkCoversBase(t *testing.T) {
	g := cycleRot(t, 8)
	h, err := NewRotGraph(2, 1, []int32{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	src := prngSource(99)
	labels := make([]int, 2000)
	for i := range labels {
		labels[i] = src.Intn(2)
	}
	visited, err := ProjectReplacementWalk(g, h, 3, labels)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool, len(visited))
	for _, v := range visited {
		seen[v] = true
	}
	if len(seen) != g.N() {
		t.Fatalf("projected walk covered %d/%d base vertices", len(seen), g.N())
	}
}

func TestProjectReplacementWalkErrors(t *testing.T) {
	g := cycleRot(t, 6)
	h, err := NewRotGraph(2, 1, []int32{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ProjectReplacementWalk(g, h, -1, nil); err == nil {
		t.Fatal("negative start accepted")
	}
	if _, err := ProjectReplacementWalk(g, h, 0, []int{9}); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	bad := cycleRot(t, 5)
	if _, err := ProjectReplacementWalk(g, bad, 0, nil); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

// prngSource adapts the deterministic source for tests in this file.
func prngSource(seed uint64) *prng.Source { return prng.New(seed) }
