package degred

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/prng"
)

// slotRef names a gadget node independently of its ID: the original it
// simulates plus its position in that original's cycle order.
type slotRef struct {
	orig graph.NodeID
	slot int
}

// signature renders the reduced topology in ID-free form: for every
// (original, slot, port) triple, the (original, slot, port) triple on the
// far side. Two reductions of the same graph are port-preservingly
// isomorphic iff their signatures are equal, which is exactly the parity
// ApplyDelta promises against a fresh Reduce.
func signature(t *testing.T, r *Reduced) string {
	t.Helper()
	f := r.Flat()
	if f == nil {
		t.Fatal("reduction has no snapshot")
	}
	ref := make(map[graph.NodeID]slotRef, f.NumNodes())
	for _, v := range r.origIDs {
		for j, gid := range r.Gadget(v) {
			ref[gid] = slotRef{orig: v, slot: j}
		}
	}
	if len(ref) != f.NumNodes() {
		t.Fatalf("slot map covers %d of %d gadgets", len(ref), f.NumNodes())
	}
	lines := make([]string, 0, 3*f.NumNodes())
	for i := 0; i < f.NumNodes(); i++ {
		a := ref[graph.NodeID(i)]
		for p := int32(0); p < 3; p++ {
			h := f.Half(int32(i), p)
			b := ref[graph.NodeID(h.To)]
			lines = append(lines, fmt.Sprintf("%d.%d:%d->%d.%d:%d", a.orig, a.slot, p, b.orig, b.slot, h.Port))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// checkParity asserts that got (a delta compile) is indistinguishable from
// a fresh Reduce of g: structure, component index, and validity.
func checkParity(t *testing.T, g *graph.Graph, got *Reduced) {
	t.Helper()
	want, err := Reduce(g)
	if err != nil {
		t.Fatalf("reference Reduce: %v", err)
	}
	if gs, ws := signature(t, got), signature(t, want); gs != ws {
		t.Fatalf("delta and full reductions differ structurally:\ndelta:\n%s\nfull:\n%s", gs, ws)
	}
	gf, wf := got.Flat(), want.Flat()
	if err := gf.CheckConsistent(); err != nil {
		t.Fatalf("delta snapshot inconsistent: %v", err)
	}
	gc, wc := gf.Components(), wf.Components()
	if gc.Count() != wc.Count() {
		t.Fatalf("component count: delta %d, full %d", gc.Count(), wc.Count())
	}
	for _, v := range got.origIDs {
		ge, _ := got.Entry(v)
		we, _ := want.Entry(v)
		gi, _ := gf.Index(ge)
		wi, _ := wf.Index(we)
		if gc.Of(gi) != wc.Of(wi) {
			t.Fatalf("node %d: delta component %d, full component %d", v, gc.Of(gi), wc.Of(wi))
		}
	}
	for id := int32(0); id < int32(gc.Count()); id++ {
		if gc.Size(id) != wc.Size(id) {
			t.Fatalf("component %d: delta size %d, full size %d", id, gc.Size(id), wc.Size(id))
		}
	}
	mg := got.Graph()
	if mg == nil {
		t.Fatal("delta reduction failed to materialize a graph")
	}
	if err := mg.Validate(); err != nil {
		t.Fatalf("materialized graph invalid: %v", err)
	}
	if !mg.IsRegular(3) {
		t.Fatal("materialized graph is not 3-regular")
	}
}

// seedGraph builds a graph on n nodes with roughly e random edges.
func seedGraph(t *testing.T, src *prng.Source, n, e int) *graph.Graph {
	t.Helper()
	g := graph.New()
	for i := 0; i < n; i++ {
		if err := g.AddNode(graph.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < e; i++ {
		u, v := graph.NodeID(src.Intn(n)), graph.NodeID(src.Intn(n))
		if _, _, err := g.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// mutateOnce applies one random mutation, biased to exercise adds, removes,
// self-loops, and parallel edges.
func mutateOnce(t *testing.T, g *graph.Graph, src *prng.Source, n int) {
	t.Helper()
	u := graph.NodeID(src.Intn(n))
	switch src.Intn(4) {
	case 0: // remove a random edge if possible
		if d := g.Degree(u); d > 0 {
			if err := g.RemoveEdge(u, src.Intn(d)); err != nil {
				t.Fatal(err)
			}
			return
		}
		fallthrough
	case 1: // self-loop
		if _, _, err := g.AddEdge(u, u); err != nil {
			t.Fatal(err)
		}
	default:
		v := graph.NodeID(src.Intn(n))
		if _, _, err := g.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
}

// TestApplyDeltaMatchesReduce chains many delta generations over a churning
// graph and checks each against a from-scratch reduction: identical
// structure (up to the gadget-ID isomorphism), identical canonical
// component ids and sizes, and a valid 3-regular materialized graph. The
// small node count keeps degree transitions (0↔1↔2↔3↔more), splits,
// merges, and gadget-ID relocation all in constant rotation.
func TestApplyDeltaMatchesReduce(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			src := prng.New(seed)
			const n = 48
			g := seedGraph(t, src, n, 60)
			j := graph.NewJournal(0)
			g.SetJournal(j)
			red, err := Reduce(g)
			if err != nil {
				t.Fatal(err)
			}
			deltaGens := 0
			for gen := 0; gen < 40; gen++ {
				for m := 0; m < 1+src.Intn(3); m++ {
					mutateOnce(t, g, src, n)
				}
				if j.Dirty() {
					t.Fatalf("gen %d: journal unexpectedly dirty: %s", gen, j.DirtyReason())
				}
				next, err := red.ApplyDelta(g, j.Peek())
				if errors.Is(err, ErrDeltaTooLarge) {
					next, err = Reduce(g)
				} else if err == nil {
					deltaGens++
				}
				if err != nil {
					t.Fatalf("gen %d: %v", gen, err)
				}
				j.Reset()
				checkParity(t, g, next)
				red = next
			}
			if deltaGens < 30 {
				t.Fatalf("only %d of 40 generations took the delta path", deltaGens)
			}
		})
	}
}

// TestApplyDeltaFallbacks pins the errors that route callers to a full
// rebuild.
func TestApplyDeltaFallbacks(t *testing.T) {
	src := prng.New(7)
	g := seedGraph(t, src, 12, 16)
	red, err := Reduce(g)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("too-large", func(t *testing.T) {
		j := graph.NewJournal(0)
		g2 := g.Clone()
		g2.SetJournal(j)
		for i := 0; i < 12; i++ { // touch every node
			if _, _, err := g2.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%12)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := red.ApplyDelta(g2, j.Peek()); !errors.Is(err, ErrDeltaTooLarge) {
			t.Fatalf("got %v, want ErrDeltaTooLarge", err)
		}
	})
	t.Run("unknown-node", func(t *testing.T) {
		deltas := []graph.Delta{{Op: graph.DeltaAdd, U: 99, V: 0}}
		if _, err := red.ApplyDelta(g, deltas); !errors.Is(err, ErrDeltaUnusable) {
			t.Fatalf("got %v, want ErrDeltaUnusable", err)
		}
	})
	t.Run("empty-delta-is-identity", func(t *testing.T) {
		got, err := red.ApplyDelta(g, nil)
		if err != nil || got != red {
			t.Fatalf("empty delta: got (%p, %v), want the base back", got, err)
		}
	})
}

// FuzzApplyDelta drives random journal/apply sequences from fuzzer-chosen
// bytes: each byte picks a mutation, every few mutations the journal is
// drained through ApplyDelta, and the result must match a fresh Reduce.
func FuzzApplyDelta(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x90, 0x17, 0xfe, 0x33, 0x08, 0x77})
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xab, 0xcd})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 256 {
			t.Skip()
		}
		const n = 32
		src := prng.New(11)
		g := seedGraph(t, src, n, 40)
		j := graph.NewJournal(0)
		g.SetJournal(j)
		red, err := Reduce(g)
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range data {
			u := graph.NodeID(int(b>>3) % n)
			v := graph.NodeID(int(b&0x07) * 4 % n)
			if b&0x80 != 0 && g.Degree(u) > 0 {
				if err := g.RemoveEdge(u, int(b)%g.Degree(u)); err != nil {
					t.Fatal(err)
				}
			} else if _, _, err := g.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
			if i%3 != 2 && i != len(data)-1 {
				continue
			}
			next, err := red.ApplyDelta(g, j.Peek())
			if errors.Is(err, ErrDeltaTooLarge) {
				next, err = Reduce(g)
			}
			if err != nil {
				t.Fatal(err)
			}
			j.Reset()
			checkParity(t, g, next)
			red = next
		}
	})
}
