package gen

import (
	"bytes"
	"testing"

	"repro/internal/graph"
)

// encode renders a graph in the canonical text codec, port labels
// included, so byte equality is exact structural equality.
func encode(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSeededGeneratorsDeterministic is the determinism satellite for the
// generators the dynamic subsystem rests on: the same seed must reproduce
// the identical edge set (and port labeling), run after run, and a
// different seed must actually change the randomized families.
func TestSeededGeneratorsDeterministic(t *testing.T) {
	type genCase struct {
		name   string
		build  func(seed uint64) *graph.Graph
		seeded bool // false: fully deterministic families, no seed axis
	}
	cases := []genCase{
		{"udg2d", func(s uint64) *graph.Graph { return UDG2D(60, 0.2, s).G }, true},
		{"udg3d", func(s uint64) *graph.Graph { return UDG3D(60, 0.3, s).G }, true},
		{"gabriel", func(s uint64) *graph.Graph { return Gabriel(UDG2D(60, 0.25, s)).G }, true},
		{"erdos-renyi", func(s uint64) *graph.Graph { return ErdosRenyi(50, 0.1, s) }, true},
		{"random-tree", func(s uint64) *graph.Graph { return RandomTree(40, s) }, true},
		{"random-regular", func(s uint64) *graph.Graph {
			g, err := RandomRegularMulti(30, 3, s)
			if err != nil {
				t.Fatal(err)
			}
			return g
		}, true},
		{"grid", func(uint64) *graph.Graph { return Grid(6, 6) }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := encode(t, tc.build(7))
			b := encode(t, tc.build(7))
			if !bytes.Equal(a, b) {
				t.Fatalf("same seed produced different graphs:\n%s\nvs\n%s", a, b)
			}
			if tc.seeded {
				c := encode(t, tc.build(8))
				if bytes.Equal(a, c) {
					t.Fatalf("different seeds produced identical graphs (%s)", tc.name)
				}
			}
		})
	}
}

// TestGabrielPositionsDeterministic checks the geometric side too: same
// seed, same placement.
func TestGabrielPositionsDeterministic(t *testing.T) {
	a, b := UDG2D(40, 0.25, 5), UDG2D(40, 0.25, 5)
	for v, p := range a.Pos {
		if q, ok := b.Pos[v]; !ok || p != q {
			t.Fatalf("node %d placed at %v vs %v", v, p, q)
		}
	}
	ga, gb := Gabriel(a), Gabriel(b)
	if !bytes.Equal(encode(t, ga.G), encode(t, gb.G)) {
		t.Fatal("gabriel planarization not deterministic")
	}
	// Planarization must preserve the placement untouched.
	for v, p := range a.Pos {
		if ga.Pos[v] != p {
			t.Fatalf("gabriel moved node %d", v)
		}
	}
}
