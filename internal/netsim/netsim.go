// Package netsim simulates the paper's network model: a static
// port-labeled graph of independent agents with O(log n) memory each,
// passing a message whose header carries O(log n) bits of routing state.
//
// The simulator makes the paper's resource claims *enforceable* rather than
// asserted:
//
//   - protocol handlers are structurally stateless — a handler activation
//     sees only (own identity, arrival port, message header) and returns a
//     decision, so intermediate nodes cannot "remember" anything between
//     messages (Theorem 1's "does not require intermediate nodes to store
//     any information");
//   - each activation charges its working registers against a Memory meter
//     with an O(log n)-bit budget and fails loudly if exceeded;
//   - headers are serialized, and their measured bit-size is reported so
//     the O(log n) overhead claim is a measurement (experiment E7).
//
// Two execution engines are provided: a deterministic sequential token
// engine (used by all experiments) and a goroutine-per-node concurrent
// engine with identical semantics (used by integration tests to exercise
// the protocol under real message passing).
package netsim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/graph"
)

// Direction is the dir bit of the message header (paper §3).
type Direction int

// Directions of travel along the exploration sequence.
const (
	Forward Direction = iota + 1
	Backward
)

// String returns "forward" or "back" as in the paper's pseudocode.
func (d Direction) String() string {
	switch d {
	case Forward:
		return "forward"
	case Backward:
		return "back"
	default:
		return fmt.Sprintf("direction(%d)", int(d))
	}
}

// Status is the status bit of the message header.
type Status int

// Message statuses; None while the forward search is still running.
const (
	StatusNone Status = iota
	StatusSuccess
	StatusFailure
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case StatusNone:
		return "none"
	case StatusSuccess:
		return "success"
	case StatusFailure:
		return "failure"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Header is the message header of Algorithm Route: source, target,
// direction, status, and the index i into the exploration sequence. Its
// serialized size is Θ(log n) bits.
type Header struct {
	Src    graph.NodeID
	Dst    graph.NodeID
	Dir    Direction
	Status Status
	Index  int64
}

// Encode serializes the header compactly (varints; one byte for
// dir+status).
func (h Header) Encode() []byte {
	buf := make([]byte, 0, 2*binary.MaxVarintLen64+binary.MaxVarintLen64+1)
	buf = binary.AppendVarint(buf, int64(h.Src))
	buf = binary.AppendVarint(buf, int64(h.Dst))
	buf = append(buf, byte(h.Dir)<<4|byte(h.Status))
	buf = binary.AppendVarint(buf, h.Index)
	return buf
}

// DecodeHeader parses the Encode format.
func DecodeHeader(b []byte) (Header, error) {
	var h Header
	src, n := binary.Varint(b)
	if n <= 0 {
		return h, errors.New("netsim: bad header src")
	}
	b = b[n:]
	dst, n := binary.Varint(b)
	if n <= 0 {
		return h, errors.New("netsim: bad header dst")
	}
	b = b[n:]
	if len(b) == 0 {
		return h, errors.New("netsim: bad header flags")
	}
	flags := b[0]
	b = b[1:]
	idx, n := binary.Varint(b)
	if n <= 0 {
		return h, errors.New("netsim: bad header index")
	}
	h.Src = graph.NodeID(src)
	h.Dst = graph.NodeID(dst)
	h.Dir = Direction(flags >> 4)
	h.Status = Status(flags & 0xf)
	h.Index = idx
	return h, nil
}

// Bits returns the serialized header size in bits — the message overhead
// the paper bounds by O(log n). It is computed arithmetically rather than
// by calling Encode: the token engine evaluates it on every activation, and
// materializing a buffer per hop was the single allocation in the hop loop
// (TestHeaderBitsMatchEncode pins the two in sync).
func (h Header) Bits() int {
	return 8 * (varintLen(int64(h.Src)) + varintLen(int64(h.Dst)) + 1 + varintLen(h.Index))
}

// varintLen is the byte length binary.AppendVarint produces for v: zig-zag
// encode, then one byte per started 7-bit group.
func varintLen(v int64) int {
	ux := uint64(v) << 1
	if v < 0 {
		ux = ^ux
	}
	return (bits.Len64(ux|1) + 6) / 7
}

// Errors reported by the engines.
var (
	ErrHopBudget      = errors.New("netsim: hop budget exhausted")
	ErrMemoryExceeded = errors.New("netsim: node memory budget exceeded")
	ErrNoDecision     = errors.New("netsim: handler returned no decision")
	// ErrMessageLost reports a fault-injected loss (WithFault): the paper
	// assumes a static, reliable network; the fault hook exists to verify
	// the implementation fails loudly — never with a wrong verdict — when
	// that assumption is violated.
	ErrMessageLost = errors.New("netsim: message lost (injected fault)")
)

// Memory meters the working registers of one handler activation against a
// bit budget. Handlers charge every local register they materialize;
// exceeding the budget aborts the run, which is how the O(log n)-space
// claim is enforced rather than assumed.
type Memory struct {
	budget int
	used   int
	peak   int
}

// NewMemory returns a meter with the given bit budget; budget <= 0 means
// unlimited (used by baselines that deliberately exceed O(log n)).
func NewMemory(budgetBits int) *Memory {
	return &Memory{budget: budgetBits}
}

// Charge reserves bits and fails if the budget would be exceeded.
func (m *Memory) Charge(bits int) error {
	m.used += bits
	if m.used > m.peak {
		m.peak = m.used
	}
	if m.budget > 0 && m.used > m.budget {
		return fmt.Errorf("%w: %d bits used, budget %d", ErrMemoryExceeded, m.used, m.budget)
	}
	return nil
}

// Release returns bits to the meter.
func (m *Memory) Release(bits int) {
	m.used -= bits
	if m.used < 0 {
		m.used = 0
	}
}

// Reset clears the current usage (between activations) while keeping the
// peak statistic.
func (m *Memory) Reset() { m.used = 0 }

// Peak returns the maximum bits held at once across all activations.
func (m *Memory) Peak() int { return m.peak }

// Budget returns the configured budget in bits (0 = unlimited).
func (m *Memory) Budget() int { return m.budget }

// DecisionKind says what a handler wants done with the message.
type DecisionKind int

// Handler decisions: forward through a port, deliver locally (terminal), or
// drop (terminal, e.g. budget exhaustion in baselines).
const (
	Send DecisionKind = iota + 1
	Deliver
	Drop
)

// Decision is a handler's verdict for one message activation.
type Decision struct {
	Kind    DecisionKind
	OutPort int
}

// Handler is the per-node protocol logic. Implementations must be
// stateless with respect to the node: all routing state travels in the
// header. Degree reports the local degree; mem meters the activation's
// working registers.
type Handler interface {
	OnMessage(self graph.NodeID, inPort int, degree int, h *Header, mem *Memory) (Decision, error)
}

// TraceFunc observes each activation: hop count so far, current node,
// arrival port, and the header as received.
type TraceFunc func(hop int64, at graph.NodeID, inPort int, h Header)

// Result summarizes a token run.
type Result struct {
	// Final is the node where the message was delivered or dropped.
	Final graph.NodeID
	// Delivered is true if the handler returned Deliver.
	Delivered bool
	// Hops is the number of edge traversals performed.
	Hops int64
	// Header is the header at termination.
	Header Header
	// MaxHeaderBits is the largest serialized header observed.
	MaxHeaderBits int
	// PeakMemoryBits is the peak per-activation working memory.
	PeakMemoryBits int
}

// Engine is the deterministic sequential token engine: exactly one message
// exists; each step hands it to the handler of the current node and follows
// the decision.
type Engine struct {
	g       *graph.Graph
	handler Handler
	budget  *Memory
	trace   TraceFunc
	fault   func(hop int64) bool
	wire    bool
}

// Option configures an Engine.
type Option interface{ apply(*Engine) }

type optionFunc func(*Engine)

func (f optionFunc) apply(e *Engine) { f(e) }

// WithMemoryBudget enforces a per-activation working-memory budget in bits.
func WithMemoryBudget(bits int) Option {
	return optionFunc(func(e *Engine) { e.budget = NewMemory(bits) })
}

// WithTrace registers a per-hop observer.
func WithTrace(f TraceFunc) Option {
	return optionFunc(func(e *Engine) { e.trace = f })
}

// WithFault installs a fault injector: when f returns true for the hop
// about to be performed, the message is lost in transit and the run ends
// with ErrMessageLost. Used by failure-injection tests to verify the
// static-network assumption fails loudly rather than silently.
func WithFault(f func(hop int64) bool) Option {
	return optionFunc(func(e *Engine) { e.fault = f })
}

// WithWireFormat makes every hop round-trip the header through its
// serialized form (Encode/DecodeHeader), exactly as a real radio link
// would. This catches any divergence between the in-memory header and the
// O(log n)-bit wire representation under real protocol traffic.
func WithWireFormat() Option {
	return optionFunc(func(e *Engine) { e.wire = true })
}

// NewEngine builds a token engine over g.
func NewEngine(g *graph.Graph, h Handler, opts ...Option) *Engine {
	e := &Engine{g: g, handler: h, budget: NewMemory(0)}
	for _, o := range opts {
		o.apply(e)
	}
	return e
}

// Run injects a message at start (as if arriving on startPort) and drives
// it until the handler delivers or drops it, or maxHops is exceeded.
func (e *Engine) Run(start graph.NodeID, startPort int, h Header, maxHops int64) (*Result, error) {
	if !e.g.HasNode(start) {
		return nil, fmt.Errorf("%w: %d", graph.ErrNodeNotFound, start)
	}
	res := &Result{Final: start}
	at, inPort := start, startPort
	for {
		if bits := h.Bits(); bits > res.MaxHeaderBits {
			res.MaxHeaderBits = bits
		}
		if e.trace != nil {
			e.trace(res.Hops, at, inPort, h)
		}
		e.budget.Reset()
		dec, err := e.handler.OnMessage(at, inPort, e.g.Degree(at), &h, e.budget)
		if p := e.budget.Peak(); p > res.PeakMemoryBits {
			res.PeakMemoryBits = p
		}
		if err != nil {
			return res, fmt.Errorf("netsim: handler at %d: %w", at, err)
		}
		switch dec.Kind {
		case Deliver:
			res.Final, res.Delivered, res.Header = at, true, h
			return res, nil
		case Drop:
			res.Final, res.Header = at, h
			return res, nil
		case Send:
			half, err := e.g.Neighbor(at, dec.OutPort)
			if err != nil {
				return res, fmt.Errorf("netsim: send from %d: %w", at, err)
			}
			if e.fault != nil && e.fault(res.Hops) {
				res.Final, res.Header = at, h
				return res, fmt.Errorf("%w: at hop %d from node %d", ErrMessageLost, res.Hops, at)
			}
			if e.wire {
				decoded, err := DecodeHeader(h.Encode())
				if err != nil {
					return res, fmt.Errorf("netsim: wire round trip at %d: %w", at, err)
				}
				h = decoded
			}
			at, inPort = half.To, half.ToPort
			res.Hops++
			if maxHops > 0 && res.Hops > maxHops {
				res.Final, res.Header = at, h
				return res, fmt.Errorf("%w: %d hops", ErrHopBudget, maxHops)
			}
		default:
			return res, ErrNoDecision
		}
	}
}
