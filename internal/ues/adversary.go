package ues

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/prng"
)

// AdversaryResult reports an adversarial labeling search.
type AdversaryResult struct {
	// Labeling is the seed of the worst labeling found (apply with
	// Graph.ShuffleLabels on a fresh copy).
	Labeling uint64
	// CoverSteps is the cover time under that labeling.
	CoverSteps int
	// Covered is false if some tried labeling defeated the sequence
	// entirely (never observed for default-length sequences).
	Covered bool
	// BaselineSteps is the cover time under the original labeling.
	BaselineSteps int
	// Tried is the number of labelings evaluated.
	Tried int
}

// AdversarialLabeling searches for a port labeling of g that maximizes the
// cover time of seq — probing the margin behind Definition 3's "for any
// labeling" quantifier. The search is a random-restart sampler (labelings
// are permutations per node; local moves are not meaningfully smooth, so
// independent sampling matches hill climbing in practice and is
// deterministic in seed). g is not modified.
func AdversarialLabeling(g *graph.Graph, seq Sequence, tries int, seed uint64) (*AdversaryResult, error) {
	if tries <= 0 {
		tries = 16
	}
	start := g.Nodes()
	if len(start) == 0 {
		return nil, fmt.Errorf("ues: empty graph")
	}
	baseSteps, baseOK, err := CoverSteps(g, Start(start[0]), seq)
	if err != nil {
		return nil, err
	}
	res := &AdversaryResult{
		CoverSteps:    baseSteps,
		Covered:       baseOK,
		BaselineSteps: baseSteps,
		Tried:         1,
	}
	if !baseOK {
		return res, nil
	}
	src := prng.New(seed)
	for k := 0; k < tries; k++ {
		labelSeed := src.Uint64()
		c := g.Clone()
		c.ShuffleLabels(labelSeed)
		steps, ok, err := CoverSteps(c, Start(start[0]), seq)
		if err != nil {
			return nil, err
		}
		res.Tried++
		if !ok {
			res.Labeling = labelSeed
			res.Covered = false
			res.CoverSteps = seq.Len()
			return res, nil
		}
		if steps > res.CoverSteps {
			res.CoverSteps = steps
			res.Labeling = labelSeed
		}
	}
	return res, nil
}
