package adhocroute_test

import (
	"fmt"

	adhocroute "repro"
)

// buildRing constructs a small ring network.
func buildRing(n int) *adhocroute.Network {
	nw := adhocroute.NewNetwork()
	for i := 0; i < n; i++ {
		if err := nw.AddNode(adhocroute.NodeID(i)); err != nil {
			panic(err)
		}
	}
	for i := 0; i < n; i++ {
		if err := nw.AddLink(adhocroute.NodeID(i), adhocroute.NodeID((i+1)%n)); err != nil {
			panic(err)
		}
	}
	return nw
}

// Example routes a message across a small ring with guaranteed delivery.
func Example() {
	nw := buildRing(6)
	res, err := nw.Route(0, 3, adhocroute.WithSeed(42))
	if err != nil {
		panic(err)
	}
	fmt.Println("status:", res.Status)
	fmt.Println("delivered within hop budget:", res.Hops > 0)
	// Output:
	// status: success
	// delivered within hop budget: true
}

// ExampleNetwork_Route_failure shows the definitive failure verdict for an
// unreachable destination: the source learns that t is provably not in its
// component — something no TTL-based scheme can report.
func ExampleNetwork_Route_failure() {
	nw := buildRing(4)
	if err := nw.AddNode(100); err != nil { // an isolated island
		panic(err)
	}
	res, err := nw.Route(0, 100, adhocroute.WithSeed(7))
	if err != nil {
		panic(err)
	}
	fmt.Println("verdict:", res.Status)
	// Output:
	// verdict: failure
}

// ExampleNetwork_CountComponent runs §4's CountNodes: the exact component
// size with no prior knowledge of the network.
func ExampleNetwork_CountComponent() {
	nw := buildRing(9)
	cnt, err := nw.CountComponent(0, adhocroute.WithSeed(5))
	if err != nil {
		panic(err)
	}
	fmt.Println("component size:", cnt.Count)
	// Output:
	// component size: 9
}

// ExampleNetwork_Broadcast delivers a payload to every node of the source
// component with a single stateless token.
func ExampleNetwork_Broadcast() {
	nw := buildRing(5)
	res, err := nw.Broadcast(2, adhocroute.WithSeed(3))
	if err != nil {
		panic(err)
	}
	fmt.Println("reached:", res.Reached)
	fmt.Println("nodes:", res.Nodes)
	// Output:
	// reached: 5
	// nodes: [0 1 2 3 4]
}

// ExampleNetwork_Compile shows the serving hot path: compile the network
// once, then share the returned Router across any number of concurrent
// queries — single routes, batches, and the serving metrics. This is the
// amortization contract the one-shot Network methods trade away.
func ExampleNetwork_Compile() {
	nw := buildRing(8)
	r, err := nw.Compile(adhocroute.WithSeed(7))
	if err != nil {
		panic(err)
	}

	// One s→t query on the compiled state.
	res, err := r.Route(0, 4)
	if err != nil {
		panic(err)
	}
	fmt.Println("route:", res.Status)

	// A batch fans out over the engine's bounded worker pool; members run
	// concurrently and come back in input order.
	batch := r.RouteBatch([]adhocroute.BatchQuery{
		{Src: 0, Dst: 3}, {Src: 5, Dst: 1}, {Src: 2, Dst: 2},
	})
	delivered := 0
	for _, br := range batch {
		if br.Err == nil && br.Result.Status == adhocroute.StatusSuccess {
			delivered++
		}
	}
	fmt.Println("batch delivered:", delivered)

	// The Router meters itself: 4 routes so far (1 + 3 batch members).
	stats := r.Stats()
	fmt.Println("routes served:", stats.Routes)
	fmt.Println("header fits in O(log n) bits:", stats.PeakHeaderBits < 128)
	// Output:
	// route: success
	// batch delivered: 3
	// routes served: 4
	// header fits in O(log n) bits: true
}

// ExampleNetwork_RouteWithPath reconstructs the walk the message took.
func ExampleNetwork_RouteWithPath() {
	nw := buildRing(4)
	res, path, err := nw.RouteWithPath(0, 2, adhocroute.WithSeed(1))
	if err != nil {
		panic(err)
	}
	fmt.Println("status:", res.Status)
	fmt.Println("path starts at:", path[0])
	fmt.Println("path ends at:", path[len(path)-1])
	// Output:
	// status: success
	// path starts at: 0
	// path ends at: 2
}
