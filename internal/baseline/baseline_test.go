package baseline

import (
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/graph"
)

func TestRandomWalkRouteDelivers(t *testing.T) {
	g := gen.Cycle(10)
	res, err := RandomWalkRoute(g, 0, 5, 1, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Fatal("random walk on a 10-cycle should find the target")
	}
	if res.Hops < 5 {
		t.Fatalf("hops = %d, below BFS distance 5", res.Hops)
	}
}

func TestRandomWalkRouteSelf(t *testing.T) {
	res, err := RandomWalkRoute(gen.Cycle(4), 2, 2, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered || res.Hops != 0 {
		t.Fatalf("self route = %+v", res)
	}
}

func TestRandomWalkRouteTTLOnDisconnected(t *testing.T) {
	// The §1.2 defect: with an unreachable target the walk never
	// terminates on its own — only the TTL stops it.
	u, err := gen.DisjointUnion(gen.Cycle(5), gen.Cycle(5), 50)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RandomWalkRoute(u, 0, 51, 3, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered {
		t.Fatal("cross-component walk cannot deliver")
	}
	if res.Hops != 5000 {
		t.Fatalf("walk stopped early: %d hops", res.Hops)
	}
}

func TestRandomWalkRouteErrors(t *testing.T) {
	if _, err := RandomWalkRoute(gen.Cycle(3), 99, 0, 1, 10); !errors.Is(err, graph.ErrNodeNotFound) {
		t.Fatalf("error = %v", err)
	}
}

func TestRandomWalkRouteIsolatedDeadEnd(t *testing.T) {
	g := graph.New()
	g.EnsureNode(0)
	g.EnsureNode(1)
	res, err := RandomWalkRoute(g, 0, 1, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered {
		t.Fatal("isolated source cannot deliver")
	}
}

func TestRandomWalkCover(t *testing.T) {
	g := gen.Complete(8)
	steps, ok, err := RandomWalkCover(g, 0, 7, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("walk on K8 must cover")
	}
	if steps < 7 {
		t.Fatalf("cover in %d steps is impossible for 8 nodes", steps)
	}
	// Singleton covers instantly.
	s := graph.New()
	s.EnsureNode(0)
	if st, ok, err := RandomWalkCover(s, 0, 1, 10); err != nil || !ok || st != 0 {
		t.Fatalf("singleton cover = (%d,%v,%v)", st, ok, err)
	}
}

func TestRandomWalkCoverBudgetExpiry(t *testing.T) {
	g := gen.Path(50)
	_, ok, err := RandomWalkCover(g, 0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("10 steps cannot cover a 50-path")
	}
}

func TestFloodBroadcast(t *testing.T) {
	g := gen.Grid(4, 5)
	res, err := Flood(g, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 20 {
		t.Fatalf("flood reached %d/20", res.Reached)
	}
	// Every reached node transmits once per incident edge: total = sum of
	// degrees = 2|E|.
	if res.Messages != int64(2*g.NumEdges()) {
		t.Fatalf("messages = %d, want %d", res.Messages, 2*g.NumEdges())
	}
	if res.Rounds != 7 { // eccentricity of corner in 4x5 grid = 3+4
		t.Fatalf("rounds = %d, want 7", res.Rounds)
	}
	if res.PerNodeStateBits <= 0 {
		t.Fatal("flooding requires per-node state")
	}
	if res.ReplyHops != -1 {
		t.Fatal("no-target flood must not report a reply path")
	}
}

func TestFloodWithTarget(t *testing.T) {
	g := gen.Grid(4, 5)
	res, err := Flood(g, 0, 19, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReplyHops != 7 {
		t.Fatalf("reply hops = %d, want BFS distance 7", res.ReplyHops)
	}
}

func TestFloodComponentBounded(t *testing.T) {
	u, err := gen.DisjointUnion(gen.Cycle(4), gen.Cycle(6), 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Flood(u, 0, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 4 {
		t.Fatalf("flood crossed components: reached %d", res.Reached)
	}
	if res.ReplyHops != -1 {
		t.Fatal("unreachable target must have no reply path")
	}
}

func TestGreedyDeliversOnDenseUDG(t *testing.T) {
	// Dense enough that greedy rarely sticks; use a connected pair.
	ud := gen.UDG2D(100, 0.35, 3)
	comp := ud.G.ComponentOf(0)
	if len(comp) < 10 {
		t.Skip("seed produced a tiny component")
	}
	s, d := comp[0], comp[len(comp)-1]
	res, err := GreedyRoute(ud, s, d, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered && res.StuckAt == -1 {
		t.Fatal("greedy neither delivered nor reported a local minimum")
	}
}

func TestGreedyStuckAtVoid(t *testing.T) {
	// Hand-built void: s must route around, but its only neighbour is
	// farther from t than s is.
	ng := handBuiltVoid()
	res, err := GreedyRoute(ng, 0, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered {
		t.Fatal("greedy should be stuck at the void")
	}
	if res.StuckAt != 0 {
		t.Fatalf("stuck at %d, want 0", res.StuckAt)
	}
}

// handBuiltVoid: 0 at origin, target 3 to the east; the only path detours
// north through 1 and 2, both farther from 3 than 0 is.
func handBuiltVoid() *gen.Geometric {
	g := graph.New()
	for i := graph.NodeID(0); i <= 3; i++ {
		g.EnsureNode(i)
	}
	edge := func(u, v graph.NodeID) {
		if _, _, err := g.AddEdge(u, v); err != nil {
			panic(err)
		}
	}
	edge(0, 1)
	edge(1, 2)
	edge(2, 3)
	return &gen.Geometric{
		G: g,
		Pos: map[graph.NodeID]geom.Point{
			0: {X: 0, Y: 0},
			1: {X: 0, Y: 3},
			2: {X: 2, Y: 3},
			3: {X: 1, Y: 0},
		},
	}
}

func TestGFGRecoversAroundVoid(t *testing.T) {
	res, err := GFGRoute(handBuiltVoid(), 0, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Fatalf("GFG failed to route around the void: %+v", res)
	}
	if res.FaceTransitions == 0 {
		t.Fatal("GFG should have entered face mode")
	}
}

func TestGFGDeliversOnGabrielGraphs(t *testing.T) {
	delivered, attempted := 0, 0
	for seed := uint64(0); seed < 6; seed++ {
		ud := gen.UDG2D(80, 0.22, seed)
		gg := gen.Gabriel(ud)
		comp := gg.G.ComponentOf(0)
		if len(comp) < 8 {
			continue
		}
		for k := 1; k <= 5; k++ {
			d := comp[len(comp)*k/6]
			if d == 0 {
				continue
			}
			attempted++
			res, err := GFGRoute(gg, 0, d, 10000)
			if err != nil {
				t.Fatal(err)
			}
			if res.Delivered {
				delivered++
			}
		}
	}
	if attempted == 0 {
		t.Skip("no usable instances")
	}
	if rate := float64(delivered) / float64(attempted); rate < 0.9 {
		t.Fatalf("GFG delivery rate on planar graphs = %.2f (%d/%d), want >= 0.9",
			rate, delivered, attempted)
	}
}

func TestGFGErrors(t *testing.T) {
	ud := gen.UDG2D(10, 0.3, 1)
	if _, err := GFGRoute(ud, 0, 999, 10); !errors.Is(err, graph.ErrNodeNotFound) {
		t.Fatalf("error = %v", err)
	}
	if _, err := GreedyRoute(ud, 999, 0, 10); !errors.Is(err, graph.ErrNodeNotFound) {
		t.Fatalf("error = %v", err)
	}
}

func TestShortestPathHops(t *testing.T) {
	g := gen.Grid(3, 3)
	if d, ok := ShortestPathHops(g, 0, 8); !ok || d != 4 {
		t.Fatalf("dist = (%d,%v), want (4,true)", d, ok)
	}
	u, err := gen.DisjointUnion(gen.Cycle(3), gen.Cycle(3), 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ShortestPathHops(u, 0, 10); ok {
		t.Fatal("cross-component distance reported reachable")
	}
}

func TestDFSRouteDelivers(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		s, d graph.NodeID
	}{
		{name: "path", g: gen.Path(10), s: 0, d: 9},
		{name: "grid", g: gen.Grid(4, 4), s: 0, d: 15},
		{name: "petersen", g: gen.Petersen(), s: 0, d: 7},
		{name: "tree", g: gen.RandomTree(20, 1), s: 0, d: 19},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := DFSRoute(tt.g, tt.s, tt.d, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Delivered {
				t.Fatal("DFS token must deliver on connected pairs")
			}
			// DFS visits each edge at most twice.
			if res.Hops > int64(2*tt.g.NumEdges()) {
				t.Fatalf("hops %d exceed 2|E| = %d", res.Hops, 2*tt.g.NumEdges())
			}
			if res.PerNodeStateBits <= 0 || res.NodesWithState <= 1 {
				t.Fatalf("DFS must report its state cost: %+v", res)
			}
		})
	}
}

func TestDFSRouteUnreachable(t *testing.T) {
	u, err := gen.DisjointUnion(gen.Cycle(5), gen.Cycle(4), 50)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DFSRoute(u, 0, 51, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered {
		t.Fatal("cross-component DFS cannot deliver")
	}
	// Full exploration traverses each spanning-tree edge twice; cross
	// edges to visited nodes are skipped (the token peeks before moving).
	if res.Hops != int64(2*(5-1)) {
		t.Fatalf("hops = %d, want 8 (full DFS of C5)", res.Hops)
	}
}

func TestDFSRouteSelfAndErrors(t *testing.T) {
	g := gen.Cycle(4)
	res, err := DFSRoute(g, 1, 1, 0)
	if err != nil || !res.Delivered || res.Hops != 0 {
		t.Fatalf("self DFS = %+v, %v", res, err)
	}
	if _, err := DFSRoute(g, 99, 0, 0); !errors.Is(err, graph.ErrNodeNotFound) {
		t.Fatalf("error = %v", err)
	}
}

func TestDFSRouteHopCap(t *testing.T) {
	g := gen.Grid(5, 5)
	res, err := DFSRoute(g, 0, 24, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered || res.Hops > 3 {
		t.Fatalf("hop cap ignored: %+v", res)
	}
}

func TestDFSRouteWithLoopsAndParallel(t *testing.T) {
	g := graph.New()
	for i := graph.NodeID(0); i < 3; i++ {
		g.EnsureNode(i)
	}
	if _, _, err := g.AddEdge(0, 0); err != nil { // self-loop
		t.Fatal(err)
	}
	if _, _, err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.AddEdge(0, 1); err != nil { // parallel
		t.Fatal(err)
	}
	if _, _, err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	res, err := DFSRoute(g, 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Fatal("DFS must handle loops and parallel edges")
	}
}
