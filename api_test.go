package adhocroute

import (
	"bytes"
	"errors"
	"testing"
)

func buildPath(t *testing.T, n int) *Network {
	t.Helper()
	nw := NewNetwork()
	for i := 0; i < n; i++ {
		if err := nw.AddNode(NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n-1; i++ {
		if err := nw.AddLink(NodeID(i), NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return nw
}

func TestStatusMirrorsInternal(t *testing.T) {
	if !statusMirror {
		t.Fatal("public Status constants diverged from netsim")
	}
	if StatusSuccess.String() != "success" || StatusFailure.String() != "failure" ||
		StatusNone.String() != "none" || Status(77).String() == "" {
		t.Fatal("status strings wrong")
	}
}

func TestNetworkBuilding(t *testing.T) {
	nw := buildPath(t, 5)
	if nw.NumNodes() != 5 || nw.NumLinks() != 4 {
		t.Fatalf("sizes = %d/%d", nw.NumNodes(), nw.NumLinks())
	}
	if err := nw.AddNode(0); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("duplicate error = %v", err)
	}
	if err := nw.AddLink(0, 99); !errors.Is(err, ErrNodeNotFound) {
		t.Fatalf("missing-node error = %v", err)
	}
	ns, err := nw.Neighbors(1)
	if err != nil || len(ns) != 2 {
		t.Fatalf("Neighbors(1) = %v, %v", ns, err)
	}
	if _, err := nw.Neighbors(99); !errors.Is(err, ErrNodeNotFound) {
		t.Fatalf("neighbors error = %v", err)
	}
	if got := nw.Nodes(); len(got) != 5 || got[0] != 0 {
		t.Fatalf("Nodes = %v", got)
	}
}

func TestSetPosition(t *testing.T) {
	nw := buildPath(t, 2)
	if err := nw.SetPosition(0, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := nw.SetPosition(9, 0, 0, 0); !errors.Is(err, ErrNodeNotFound) {
		t.Fatalf("error = %v", err)
	}
}

func TestRoutePublicAPI(t *testing.T) {
	nw := buildPath(t, 8)
	res, err := nw.Route(0, 7, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusSuccess {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Hops <= 0 || res.ForwardSteps <= 0 || res.Rounds <= 0 {
		t.Fatalf("accounting = %+v", res)
	}
	if res.HeaderBits <= 0 || res.NodeMemoryBits <= 0 {
		t.Fatalf("resource metrics missing: %+v", res)
	}
}

func TestRouteFailureVerdict(t *testing.T) {
	nw := buildPath(t, 4)
	// Node 100 exists in a separate component.
	if err := nw.AddNode(100); err != nil {
		t.Fatal(err)
	}
	res, err := nw.Route(0, 100, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusFailure {
		t.Fatalf("status = %v, want failure", res.Status)
	}
	// Unknown names also terminate with failure.
	res, err = nw.Route(0, 123456, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusFailure {
		t.Fatalf("unknown target status = %v", res.Status)
	}
}

func TestBroadcastPublicAPI(t *testing.T) {
	nw := buildPath(t, 6)
	res, err := nw.Broadcast(2, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 6 || len(res.Nodes) != 6 {
		t.Fatalf("broadcast = %+v", res)
	}
}

func TestCountComponentPublicAPI(t *testing.T) {
	nw := buildPath(t, 7)
	res, err := nw.CountComponent(3, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 7 {
		t.Fatalf("count = %d, want 7", res.Count)
	}
	if res.ReducedCount < res.Count {
		t.Fatalf("reduced count %d < original %d", res.ReducedCount, res.Count)
	}
	if res.MessageHops != 0 {
		t.Fatal("local mode should not report hops")
	}
}

func TestCountMessageFaithful(t *testing.T) {
	nw := buildPath(t, 2)
	res, err := nw.CountComponent(0, WithSeed(5),
		WithMessageFaithfulCounting(), WithLengthFactor(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 2 {
		t.Fatalf("count = %d", res.Count)
	}
	if res.MessageHops == 0 {
		t.Fatal("message-faithful mode must report hops")
	}
}

func TestRouteHybridPublicAPI(t *testing.T) {
	nw := buildPath(t, 10)
	res, err := nw.RouteHybrid(0, 9, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusSuccess || res.Winner == "" {
		t.Fatalf("hybrid = %+v", res)
	}
}

func TestCountThenRouteWithKnownBound(t *testing.T) {
	// The §4 workflow: count the component, then route with a known bound
	// in a single round.
	nw := buildPath(t, 9)
	cnt, err := nw.CountComponent(0, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Route(0, 8, WithSeed(11), WithKnownBound(cnt.ReducedCount))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusSuccess || res.Rounds != 1 {
		t.Fatalf("known-bound route = %+v", res)
	}
}

func TestWithoutDegreeReduction(t *testing.T) {
	nw := buildPath(t, 6)
	res, err := nw.Route(0, 5, WithSeed(2), WithoutDegreeReduction())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusSuccess {
		t.Fatalf("ablation status = %v", res.Status)
	}
}

func TestGenerators(t *testing.T) {
	ud2 := NewUnitDisk2D(30, 0.3, 7)
	if ud2.NumNodes() != 30 {
		t.Fatal("2D generator size wrong")
	}
	ud3 := NewUnitDisk3D(30, 0.4, 7)
	if ud3.NumNodes() != 30 {
		t.Fatal("3D generator size wrong")
	}
	gr := NewGrid(3, 5)
	if gr.NumNodes() != 15 || gr.NumLinks() != 22 {
		t.Fatalf("grid = %d/%d", gr.NumNodes(), gr.NumLinks())
	}
	if !gr.ConnectedTo(0, 14) {
		t.Fatal("grid should be connected")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	nw := buildPath(t, 5)
	var buf bytes.Buffer
	if err := nw.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 5 || got.NumLinks() != 4 {
		t.Fatal("round trip changed the network")
	}
	res, err := got.Route(0, 4, WithSeed(1))
	if err != nil || res.Status != StatusSuccess {
		t.Fatalf("route on loaded network: %+v, %v", res, err)
	}
}

func TestRouteDisconnectedAndConnectedMatchOracle(t *testing.T) {
	// Route's verdict must agree with the BFS oracle on every pair of a
	// mixed network.
	nw := NewNetwork()
	for i := 0; i < 9; i++ {
		if err := nw.AddNode(NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Component A: 0-1-2-3; component B: 4-5-6; isolated: 7, 8.
	links := [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}}
	for _, l := range links {
		if err := nw.AddLink(l[0], l[1]); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range nw.Nodes() {
		for _, d := range nw.Nodes() {
			res, err := nw.Route(s, d, WithSeed(13))
			if err != nil {
				t.Fatalf("route %d->%d: %v", s, d, err)
			}
			want := StatusFailure
			if nw.ConnectedTo(s, d) {
				want = StatusSuccess
			}
			if res.Status != want {
				t.Fatalf("route %d->%d = %v, oracle says %v", s, d, res.Status, want)
			}
		}
	}
}
