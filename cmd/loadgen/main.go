// Command loadgen is a closed-loop HTTP load generator for adhocd: a
// fixed pool of concurrent workers, each issuing the next request as soon
// as the previous one completes, so measured latency includes queueing at
// the server but the offered load never outruns the server's admission
// (the closed-loop discipline — throughput is a *result*, not an input).
//
// Scenarios model the daemon's serving shapes, mixed by weight:
//
//	route    POST /v1/route            — the warm static path (µs-scale)
//	batch    POST /v1/batch            — amortized fan-out (-batch-size pairs)
//	world    POST /v1/worlds/{id}/route — shared dynamic world, frozen clock
//	compile  POST /v1/networks         — registry-miss compile storm (every
//	                                     request posts a never-seen spec)
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8080 -c 32 -d 10s \
//	        -mix route=8,batch=1,world=1,compile=1 -json report.json
//
// The report gives throughput and p50/p90/p95/p99/max latency overall and
// per scenario, as text on stdout and optionally as JSON (-json path, "-"
// for stdout) — the shape CI archives next to the benchstat artifact.
//
// Every request carries a generated W3C traceparent (sampled), so the
// daemon traces each one; the report lists the trace IDs of the k slowest
// requests per scenario (-slowest), resolvable against the daemon's
// flight recorder via GET /v1/traces/{id}.
//
// Percentiles are exact (every sample is kept and sorted at the end), not
// bucket-estimated: a 10-second run at full tilt stores a few million
// int64s, which is cheap, and exactness matters when the thing under test
// is a sub-microsecond route behind an HTTP stack.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// scenarioNames is the fixed scenario order (reports list them this way).
var scenarioNames = []string{"route", "batch", "world", "compile"}

// config carries the parsed flags.
type config struct {
	addr      string
	c         int
	d         time.Duration
	mix       map[string]int
	batchSize int
	seed      int64
	jsonPath  string
	slowest   int
}

func parseFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "http://127.0.0.1:8080", "adhocd base URL")
		c         = fs.Int("c", 8, "concurrent closed-loop workers")
		d         = fs.Duration("d", 10*time.Second, "test duration")
		mix       = fs.String("mix", "route=1", "scenario mix as name=weight[,name=weight...]; scenarios: route, batch, world, compile")
		batchSize = fs.Int("batch-size", 16, "pairs per batch request")
		seed      = fs.Int64("seed", 1, "workload randomness seed")
		jsonOut   = fs.String("json", "", "write the JSON report to this path (\"-\" = stdout)")
		slowest   = fs.Int("slowest", 3, "report the trace IDs of the k slowest requests per scenario (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	m, err := parseMix(*mix)
	if err != nil {
		return nil, err
	}
	if *c < 1 {
		return nil, fmt.Errorf("need -c >= 1, got %d", *c)
	}
	if *d <= 0 {
		return nil, fmt.Errorf("need -d > 0, got %v", *d)
	}
	if *slowest < 0 {
		return nil, fmt.Errorf("need -slowest >= 0, got %d", *slowest)
	}
	return &config{
		addr:      strings.TrimSuffix(*addr, "/"),
		c:         *c,
		d:         *d,
		mix:       m,
		batchSize: *batchSize,
		seed:      *seed,
		jsonPath:  *jsonOut,
		slowest:   *slowest,
	}, nil
}

// parseMix parses "route=8,batch=1" into weights. Unknown scenario names
// and non-positive weights are errors: a typo must not silently skew the
// load shape.
func parseMix(s string) (map[string]int, error) {
	known := make(map[string]bool, len(scenarioNames))
	for _, n := range scenarioNames {
		known[n] = true
	}
	m := make(map[string]int)
	total := 0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, w, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want name=weight)", part)
		}
		if !known[name] {
			return nil, fmt.Errorf("unknown scenario %q (want one of %s)", name, strings.Join(scenarioNames, ", "))
		}
		n, err := strconv.Atoi(w)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad weight in %q (want a positive integer)", part)
		}
		m[name] += n
		total += n
	}
	if total == 0 {
		return nil, fmt.Errorf("empty mix %q", s)
	}
	return m, nil
}

// sample is one completed request. Every request carries a generated
// traceparent, so trace holds the ID the server knows this request by —
// the join key into adhocd's GET /v1/traces/{id} for the slow tail.
type sample struct {
	scenario int8
	ok       bool
	ns       int64
	trace    trace.TraceID
}

// worker runs the closed loop until deadline, appending samples to its
// private slice (merged after the run — no cross-worker contention).
type worker struct {
	gen     *generator
	rng     *rand.Rand
	picks   []int8 // weighted scenario table
	samples []sample
}

// generator is the shared run state.
type generator struct {
	cfg     *config
	client  *http.Client
	nodes   int64  // boot network size, for random src/dst
	worldID string // shared world, when the mix includes "world"
	// compileSeq makes every compile-storm spec distinct, guaranteeing a
	// registry miss (the cold path under test).
	compileSeq atomic.Int64
}

// probe fetches the boot network summary so src/dst can be drawn from
// real node IDs (generated networks number nodes 0..n-1).
func (g *generator) probe() error {
	resp, err := g.client.Get(g.cfg.addr + "/v1/network")
	if err != nil {
		return fmt.Errorf("probe %s/v1/network: %w (is adhocd running?)", g.cfg.addr, err)
	}
	defer resp.Body.Close()
	var info struct {
		Nodes int64 `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return fmt.Errorf("probe: decode network info: %w", err)
	}
	if info.Nodes < 1 {
		return fmt.Errorf("probe: server reports %d nodes", info.Nodes)
	}
	g.nodes = info.Nodes
	return nil
}

// setupWorld creates (or re-creates) the shared world the "world"
// scenario routes over. A leftover world from a previous run is deleted
// first so the schedule is always the expected one.
func (g *generator) setupWorld() error {
	const name = "loadgen"
	req, _ := http.NewRequest(http.MethodDelete, g.cfg.addr+"/v1/worlds/"+name, nil)
	if resp, err := g.client.Do(req); err == nil {
		resp.Body.Close() // 404 is fine: nothing to clean up
	}
	body := fmt.Sprintf(`{"name":%q,"schedule":{"kind":"churn","p_drop":0.02,"add_rate":1,"seed":%d}}`, name, g.cfg.seed)
	resp, err := g.client.Post(g.cfg.addr+"/v1/worlds", "application/json", strings.NewReader(body))
	if err != nil {
		return fmt.Errorf("create world: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("create world: %d (%s)", resp.StatusCode, bytes.TrimSpace(b))
	}
	g.worldID = name
	return nil
}

// post issues one POST with the given traceparent and reports success
// (2xx). The body is drained so the connection is reused.
func (g *generator) post(path, body, traceparent string) bool {
	req, err := http.NewRequest(http.MethodPost, g.cfg.addr+path, strings.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", traceparent)
	resp, err := g.client.Do(req)
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}

// do runs one request of the given scenario under the given traceparent.
func (g *generator) do(s int8, rng *rand.Rand, traceparent string) bool {
	switch scenarioNames[s] {
	case "route":
		return g.post("/v1/route",
			fmt.Sprintf(`{"src":%d,"dst":%d}`, rng.Int63n(g.nodes), rng.Int63n(g.nodes)), traceparent)
	case "batch":
		var b strings.Builder
		b.WriteString(`{"pairs":[`)
		for i := 0; i < g.cfg.batchSize; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "[%d,%d]", rng.Int63n(g.nodes), rng.Int63n(g.nodes))
		}
		b.WriteString(`]}`)
		return g.post("/v1/batch", b.String(), traceparent)
	case "world":
		return g.post("/v1/worlds/"+g.worldID+"/route",
			fmt.Sprintf(`{"src":%d,"dst":%d,"hops_per_epoch":-1}`, rng.Int63n(g.nodes), rng.Int63n(g.nodes)),
			traceparent)
	case "compile":
		// Every spec is new (seq-distinct protocol seed): a guaranteed
		// registry miss, compiling an 8x8 grid and churning the LRU.
		return g.post("/v1/networks",
			fmt.Sprintf(`{"kind":"grid","rows":8,"cols":8,"seed":%d}`, g.compileSeq.Add(1)), traceparent)
	}
	return false
}

func (w *worker) loop(deadline time.Time) {
	for time.Now().Before(deadline) {
		s := w.picks[w.rng.Intn(len(w.picks))]
		// Every request carries a fresh sampled traceparent, so the server
		// traces it and the slow tail can be pulled from /v1/traces by ID.
		tid := trace.NewTraceID()
		tp := trace.Traceparent(tid, trace.NewSpanID(), trace.FlagSampled)
		t0 := time.Now()
		ok := w.gen.do(s, w.rng, tp)
		w.samples = append(w.samples, sample{scenario: s, ok: ok, ns: int64(time.Since(t0)), trace: tid})
	}
}

// ScenarioReport summarizes one scenario's (or the whole run's) samples.
type ScenarioReport struct {
	Name     string  `json:"name"`
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	RPS      float64 `json:"rps"`
	MeanUS   float64 `json:"mean_us"`
	P50US    float64 `json:"p50_us"`
	P90US    float64 `json:"p90_us"`
	P95US    float64 `json:"p95_us"`
	P99US    float64 `json:"p99_us"`
	MaxUS    float64 `json:"max_us"`
	// Slowest lists the k worst successful requests (-slowest), worst
	// first, with the trace IDs the server knows them by — fetch the full
	// walk timeline from adhocd's GET /v1/traces/{id}.
	Slowest []SlowRequest `json:"slowest,omitempty"`
}

// SlowRequest identifies one slow-tail request for trace lookup.
type SlowRequest struct {
	TraceID string  `json:"trace_id"`
	US      float64 `json:"us"`
}

// Report is the loadgen output shape (-json).
type Report struct {
	Addr        string           `json:"addr"`
	Concurrency int              `json:"concurrency"`
	DurationSec float64          `json:"duration_sec"`
	Mix         map[string]int   `json:"mix"`
	Total       ScenarioReport   `json:"total"`
	Scenarios   []ScenarioReport `json:"scenarios"`
}

// percentile returns the exact q-quantile (0 < q <= 1) of sorted ns
// samples, by the nearest-rank method.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// summarize builds one report row from the scenario's successful samples,
// including the k-slowest tail with trace IDs.
func summarize(name string, requests, errors int64, oks []sample, elapsed time.Duration, k int) ScenarioReport {
	sort.Slice(oks, func(i, j int) bool { return oks[i].ns < oks[j].ns })
	lats := make([]int64, len(oks))
	for i, s := range oks {
		lats[i] = s.ns
	}
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	r := ScenarioReport{
		Name:     name,
		Requests: requests,
		Errors:   errors,
		RPS:      float64(requests) / elapsed.Seconds(),
		P50US:    us(percentile(lats, 0.50)),
		P90US:    us(percentile(lats, 0.90)),
		P95US:    us(percentile(lats, 0.95)),
		P99US:    us(percentile(lats, 0.99)),
	}
	if len(oks) > 0 {
		var sum int64
		for _, v := range lats {
			sum += v
		}
		r.MeanUS = us(sum / int64(len(lats)))
		r.MaxUS = us(lats[len(lats)-1])
	}
	for i := len(oks) - 1; i >= 0 && len(r.Slowest) < k; i-- {
		r.Slowest = append(r.Slowest, SlowRequest{TraceID: oks[i].trace.String(), US: us(oks[i].ns)})
	}
	return r
}

func run(args []string, out io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	gen := &generator{
		cfg: cfg,
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        cfg.c * 2,
			MaxIdleConnsPerHost: cfg.c * 2,
		}},
	}
	if err := gen.probe(); err != nil {
		return err
	}
	if cfg.mix["world"] > 0 {
		if err := gen.setupWorld(); err != nil {
			return err
		}
	}

	// The weighted pick table: scenario s appears mix[s] times.
	var picks []int8
	for i, name := range scenarioNames {
		for k := 0; k < cfg.mix[name]; k++ {
			picks = append(picks, int8(i))
		}
	}

	workers := make([]*worker, cfg.c)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.d)
	for i := range workers {
		workers[i] = &worker{
			gen:   gen,
			rng:   rand.New(rand.NewSource(cfg.seed + int64(i)*7919)),
			picks: picks,
		}
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.loop(deadline)
		}(workers[i])
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Merge per-worker samples by scenario (successes keep their trace ID
	// for the slow-tail report).
	perOK := make([][]sample, len(scenarioNames))
	perReq := make([]int64, len(scenarioNames))
	perErr := make([]int64, len(scenarioNames))
	var allOK []sample
	var allReq, allErr int64
	for _, w := range workers {
		for _, s := range w.samples {
			perReq[s.scenario]++
			allReq++
			if !s.ok {
				perErr[s.scenario]++
				allErr++
				continue
			}
			perOK[s.scenario] = append(perOK[s.scenario], s)
			allOK = append(allOK, s)
		}
	}

	rep := Report{
		Addr:        cfg.addr,
		Concurrency: cfg.c,
		DurationSec: elapsed.Seconds(),
		Mix:         cfg.mix,
		Total:       summarize("total", allReq, allErr, allOK, elapsed, cfg.slowest),
	}
	for i, name := range scenarioNames {
		if cfg.mix[name] == 0 {
			continue
		}
		rep.Scenarios = append(rep.Scenarios, summarize(name, perReq[i], perErr[i], perOK[i], elapsed, cfg.slowest))
	}

	writeText(out, &rep)
	if cfg.jsonPath != "" {
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if cfg.jsonPath == "-" {
			_, err = out.Write(data)
			return err
		}
		return os.WriteFile(cfg.jsonPath, data, 0o644)
	}
	return nil
}

// writeText renders the human-readable report table.
func writeText(out io.Writer, rep *Report) {
	fmt.Fprintf(out, "loadgen: %s  c=%d  %.2fs\n", rep.Addr, rep.Concurrency, rep.DurationSec)
	fmt.Fprintf(out, "%-8s %10s %7s %12s %10s %10s %10s %10s %10s\n",
		"scenario", "requests", "errors", "rps", "mean", "p50", "p95", "p99", "max")
	row := func(r ScenarioReport) {
		fmt.Fprintf(out, "%-8s %10d %7d %12.1f %9.1fµs %9.1fµs %9.1fµs %9.1fµs %9.1fµs\n",
			r.Name, r.Requests, r.Errors, r.RPS, r.MeanUS, r.P50US, r.P95US, r.P99US, r.MaxUS)
	}
	row(rep.Total)
	if len(rep.Scenarios) > 1 {
		for _, r := range rep.Scenarios {
			row(r)
		}
	}
	// The slow tail, per scenario: trace IDs resolvable against the
	// daemon's flight recorder (GET /v1/traces/{id}).
	for _, r := range rep.Scenarios {
		for _, s := range r.Slowest {
			fmt.Fprintf(out, "slowest %-8s %9.1fµs  trace=%s\n", r.Name, s.US, s.TraceID)
		}
	}
}
