// Package registry is the multi-tenant serving layer's state: a bounded
// LRU cache of compiled routing engines keyed by network spec, and a
// bounded table of named long-lived dynamic worlds.
//
// Paper anchor: the protocol is compile-once and stateless per query
// (Theorem 1 keeps every per-message register in the O(log n) header and
// intermediate nodes memoryless), which is exactly the shape that serves
// many tenants from shared artifacts. The expensive work — the Figure 1
// degree reduction, the flat CSR snapshot, the §2 sequence family —
// happens once per distinct network, and every subsequent query, from any
// client, reads the immutable compiled state. The registry
// operationalizes that amortization across networks: requests name a
// network by spec, the first request compiles it, and a bounded LRU keeps
// the hottest engines resident. Worlds do the same for dynamic state:
// instead of paying a private evolving World per request, clients create
// a named world once and route over it concurrently.
//
// Concurrency contract: Registry and Worlds are safe for concurrent use;
// each is a single mutex around its table (held only for map/list
// bookkeeping, never during a compile). Concurrent Obtains of one spec
// are deduplicated by a hand-rolled singleflight — exactly one caller
// compiles, the rest block on the flight and share the outcome — while
// Obtains of distinct specs compile in parallel. Evicted engines are
// merely forgotten, never torn down: whoever still references one (a
// world seeded from it, a request in flight) keeps using it safely,
// because compiled engines are immutable. Compile latency and
// hit/miss/dedup/eviction traffic are exported via RegisterMetrics.
package registry
