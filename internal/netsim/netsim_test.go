package netsim

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestHeaderRoundTrip(t *testing.T) {
	tests := []Header{
		{},
		{Src: 1, Dst: 2, Dir: Forward, Status: StatusNone, Index: 1},
		{Src: 1 << 40, Dst: -5, Dir: Backward, Status: StatusFailure, Index: 1 << 50},
		{Src: 0, Dst: 0, Dir: Forward, Status: StatusSuccess, Index: 0},
	}
	for _, h := range tests {
		got, err := DecodeHeader(h.Encode())
		if err != nil {
			t.Fatalf("decode(%+v): %v", h, err)
		}
		if got != h {
			t.Fatalf("round trip %+v -> %+v", h, got)
		}
	}
}

func TestHeaderRoundTripQuick(t *testing.T) {
	f := func(src, dst, idx int64, dir uint8, st uint8) bool {
		h := Header{
			Src:    graph.NodeID(src),
			Dst:    graph.NodeID(dst),
			Dir:    Direction(dir%2 + 1),
			Status: Status(st % 3),
			Index:  idx,
		}
		got, err := DecodeHeader(h.Encode())
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeHeaderErrors(t *testing.T) {
	good := Header{Src: 5, Dst: 9, Dir: Forward, Index: 3}.Encode()
	for cut := 0; cut < len(good); cut++ {
		if _, err := DecodeHeader(good[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}

func TestHeaderBitsGrowLogarithmically(t *testing.T) {
	// Bits must grow with the magnitude of the IDs/index, but slowly:
	// doubling n adds O(1) bits.
	small := Header{Src: 3, Dst: 5, Dir: Forward, Index: 10}.Bits()
	big := Header{Src: 1 << 30, Dst: 1 << 30, Dir: Forward, Index: 1 << 40}.Bits()
	if big <= small {
		t.Fatalf("bits did not grow: %d vs %d", big, small)
	}
	if big > 8*(2*10+1+10) {
		t.Fatalf("header suspiciously large: %d bits", big)
	}
}

func TestDirectionStatusStrings(t *testing.T) {
	if Forward.String() != "forward" || Backward.String() != "back" {
		t.Fatal("direction strings do not match the paper")
	}
	if StatusSuccess.String() != "success" || StatusFailure.String() != "failure" ||
		StatusNone.String() != "none" {
		t.Fatal("status strings wrong")
	}
	if Direction(9).String() == "" || Status(9).String() == "" {
		t.Fatal("unknown values must still render")
	}
}

func TestMemoryMeter(t *testing.T) {
	m := NewMemory(100)
	if err := m.Charge(60); err != nil {
		t.Fatal(err)
	}
	if err := m.Charge(39); err != nil {
		t.Fatal(err)
	}
	if err := m.Charge(2); !errors.Is(err, ErrMemoryExceeded) {
		t.Fatalf("over budget error = %v", err)
	}
	if m.Peak() != 101 {
		t.Fatalf("peak = %d, want 101", m.Peak())
	}
	m.Release(50)
	if err := m.Charge(30); err != nil {
		t.Fatalf("after release: %v", err)
	}
	m.Reset()
	if err := m.Charge(100); err != nil {
		t.Fatalf("after reset: %v", err)
	}
	if m.Budget() != 100 {
		t.Fatalf("budget = %d", m.Budget())
	}
}

func TestMemoryUnlimited(t *testing.T) {
	m := NewMemory(0)
	if err := m.Charge(1 << 30); err != nil {
		t.Fatalf("unlimited meter errored: %v", err)
	}
}

func TestMemoryReleaseFloor(t *testing.T) {
	m := NewMemory(10)
	m.Release(100)
	if err := m.Charge(10); err != nil {
		t.Fatalf("negative usage leaked: %v", err)
	}
}

// hopCountHandler walks a fixed number of steps through port 0/1 and then
// delivers: a minimal protocol for engine testing.
type hopCountHandler struct {
	stopAt int64
}

func (hh *hopCountHandler) OnMessage(self graph.NodeID, inPort, degree int, h *Header, mem *Memory) (Decision, error) {
	if err := mem.Charge(128); err != nil {
		return Decision{}, err
	}
	if h.Index >= hh.stopAt {
		return Decision{Kind: Deliver}, nil
	}
	h.Index++
	// Leave through the port after the arrival port (mod degree) — walks
	// around cycles forever.
	return Decision{Kind: Send, OutPort: (inPort + 1) % degree}, nil
}

func TestEngineRunDelivers(t *testing.T) {
	g := gen.Cycle(6)
	e := NewEngine(g, &hopCountHandler{stopAt: 10})
	res, err := e.Run(0, 0, Header{Src: 0, Dir: Forward}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Fatal("not delivered")
	}
	if res.Hops != 10 {
		t.Fatalf("hops = %d, want 10", res.Hops)
	}
	if res.MaxHeaderBits <= 0 {
		t.Fatal("header bits not measured")
	}
}

func TestEngineHopBudget(t *testing.T) {
	g := gen.Cycle(6)
	e := NewEngine(g, &hopCountHandler{stopAt: 1 << 40})
	_, err := e.Run(0, 0, Header{}, 25)
	if !errors.Is(err, ErrHopBudget) {
		t.Fatalf("error = %v, want ErrHopBudget", err)
	}
}

func TestEngineMemoryBudgetEnforced(t *testing.T) {
	g := gen.Cycle(6)
	e := NewEngine(g, &hopCountHandler{stopAt: 10}, WithMemoryBudget(64))
	_, err := e.Run(0, 0, Header{}, 100)
	if !errors.Is(err, ErrMemoryExceeded) {
		t.Fatalf("error = %v, want ErrMemoryExceeded", err)
	}
}

func TestEngineMissingStart(t *testing.T) {
	g := gen.Cycle(3)
	e := NewEngine(g, &hopCountHandler{stopAt: 1})
	if _, err := e.Run(99, 0, Header{}, 10); !errors.Is(err, graph.ErrNodeNotFound) {
		t.Fatalf("error = %v", err)
	}
}

func TestEngineTrace(t *testing.T) {
	g := gen.Cycle(5)
	var visits []graph.NodeID
	e := NewEngine(g, &hopCountHandler{stopAt: 4}, WithTrace(
		func(hop int64, at graph.NodeID, inPort int, h Header) {
			visits = append(visits, at)
		}))
	if _, err := e.Run(0, 0, Header{}, 50); err != nil {
		t.Fatal(err)
	}
	if len(visits) != 5 { // start + 4 hops
		t.Fatalf("trace saw %d activations, want 5", len(visits))
	}
	if visits[0] != 0 {
		t.Fatalf("first activation at %d, want 0", visits[0])
	}
}

// dropHandler drops immediately.
type dropHandler struct{}

func (dropHandler) OnMessage(graph.NodeID, int, int, *Header, *Memory) (Decision, error) {
	return Decision{Kind: Drop}, nil
}

func TestEngineDrop(t *testing.T) {
	e := NewEngine(gen.Cycle(3), dropHandler{})
	res, err := e.Run(1, 0, Header{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered || res.Final != 1 || res.Hops != 0 {
		t.Fatalf("drop result = %+v", res)
	}
}

// badHandler returns a zero Decision.
type badHandler struct{}

func (badHandler) OnMessage(graph.NodeID, int, int, *Header, *Memory) (Decision, error) {
	return Decision{}, nil
}

func TestEngineNoDecision(t *testing.T) {
	e := NewEngine(gen.Cycle(3), badHandler{})
	if _, err := e.Run(0, 0, Header{}, 10); !errors.Is(err, ErrNoDecision) {
		t.Fatalf("error = %v, want ErrNoDecision", err)
	}
}

func TestEngineBadPort(t *testing.T) {
	// Handler sends through a port that does not exist.
	h := &portHandler{port: 99}
	e := NewEngine(gen.Cycle(3), h)
	if _, err := e.Run(0, 0, Header{}, 10); !errors.Is(err, graph.ErrPortRange) {
		t.Fatalf("error = %v, want ErrPortRange", err)
	}
}

type portHandler struct{ port int }

func (p *portHandler) OnMessage(graph.NodeID, int, int, *Header, *Memory) (Decision, error) {
	return Decision{Kind: Send, OutPort: p.port}, nil
}

func TestConcurrentMatchesSequential(t *testing.T) {
	g := gen.Cycle(8)
	seqEngine := NewEngine(g, &hopCountHandler{stopAt: 23})
	seqRes, err := seqEngine.Run(2, 0, Header{Src: 2, Dir: Forward}, 100)
	if err != nil {
		t.Fatal(err)
	}

	c := NewConcurrent(g, &hopCountHandler{stopAt: 23}, 100)
	defer c.Close()
	conRes, err := c.Run(2, 0, Header{Src: 2, Dir: Forward}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if conRes.Final != seqRes.Final || conRes.Hops != seqRes.Hops ||
		conRes.Delivered != seqRes.Delivered {
		t.Fatalf("concurrent %+v != sequential %+v", conRes, seqRes)
	}
}

func TestConcurrentHopBudget(t *testing.T) {
	c := NewConcurrent(gen.Cycle(4), &hopCountHandler{stopAt: 1 << 40}, 10)
	defer c.Close()
	_, err := c.Run(0, 0, Header{}, 5*time.Second)
	if !errors.Is(err, ErrHopBudget) {
		t.Fatalf("error = %v, want ErrHopBudget", err)
	}
}

func TestConcurrentCloseIdempotent(t *testing.T) {
	c := NewConcurrent(gen.Cycle(4), dropHandler{}, 10)
	c.Close()
	c.Close() // must not panic or deadlock
}

func TestConcurrentMissingStart(t *testing.T) {
	c := NewConcurrent(gen.Cycle(4), dropHandler{}, 10)
	defer c.Close()
	if _, err := c.Run(77, 0, Header{}, time.Second); !errors.Is(err, graph.ErrNodeNotFound) {
		t.Fatalf("error = %v", err)
	}
}

func TestConcurrentRunAfterClose(t *testing.T) {
	c := NewConcurrent(gen.Cycle(4), dropHandler{}, 10)
	c.Close()
	if _, err := c.Run(0, 0, Header{}, time.Second); err == nil {
		t.Fatal("run after close should fail")
	}
}

func TestConcurrentSequentialRuns(t *testing.T) {
	// The network is reusable across runs.
	c := NewConcurrent(gen.Cycle(8), &hopCountHandler{stopAt: 5}, 100)
	defer c.Close()
	for i := 0; i < 3; i++ {
		res, err := c.Run(0, 0, Header{}, 5*time.Second)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !res.Delivered || res.Hops != 5 {
			t.Fatalf("run %d result = %+v", i, res)
		}
	}
}

// TestConcurrentMultiSession runs several sessions simultaneously over one
// network — the direct payoff of stateless handlers: sessions share node
// goroutines with zero coordination and do not interfere.
func TestConcurrentMultiSession(t *testing.T) {
	g := gen.Cycle(10)
	c := NewConcurrent(g, &hopCountHandler{stopAt: 13}, 1000)
	defer c.Close()

	const sessions = 8
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	results := make([]*Result, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.Run(graph.NodeID(i%g.NumNodes()), 0,
				Header{Src: graph.NodeID(i), Dir: Forward}, 30*time.Second)
			results[i], errs[i] = res, err
		}(i)
	}
	wg.Wait()
	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if !results[i].Delivered || results[i].Hops != 13 {
			t.Fatalf("session %d result = %+v", i, results[i])
		}
		// Headers never cross sessions: the Src we injected must be the
		// Src we got back.
		if results[i].Header.Src != graph.NodeID(i) {
			t.Fatalf("session %d got header of session %d", i, results[i].Header.Src)
		}
	}
}
