package chaos

import (
	"errors"
	"testing"
	"time"
)

// TestNilInjectorInert: every method of a nil injector is a no-op, so call
// sites can hook chaos unconditionally.
func TestNilInjectorInert(t *testing.T) {
	var i *Injector
	if err := i.CompileFault(); err != nil {
		t.Fatalf("nil CompileFault = %v", err)
	}
	if err := i.RequestFault(); err != nil {
		t.Fatalf("nil RequestFault = %v", err)
	}
	i.HopDelay()
	i.EpochStall()
	i.RequestDelay()
	if s := i.Stats(); s != (Stats{}) {
		t.Fatalf("nil Stats = %+v", s)
	}
}

// TestZeroConfigNeverFires: a zero Config is equivalent to no chaos.
func TestZeroConfigNeverFires(t *testing.T) {
	i := New(Config{Seed: 42})
	for k := 0; k < 1000; k++ {
		if err := i.CompileFault(); err != nil {
			t.Fatalf("zero-config compile fault fired: %v", err)
		}
		if err := i.RequestFault(); err != nil {
			t.Fatalf("zero-config request fault fired: %v", err)
		}
		i.HopDelay()
		i.EpochStall()
	}
	if s := i.Stats(); s != (Stats{}) {
		t.Fatalf("zero-config stats = %+v", s)
	}
}

// TestDeterministicFaultStream: identical seeds and call sequences produce
// identical fault decisions — the property that makes a chaos run
// replayable.
func TestDeterministicFaultStream(t *testing.T) {
	run := func() []bool {
		i := New(Config{Seed: 7, CompileFailRate: 0.3, RequestFailRate: 0.2})
		var fired []bool
		for k := 0; k < 200; k++ {
			fired = append(fired, i.CompileFault() != nil, i.RequestFault() != nil)
		}
		return fired
	}
	a, b := run(), run()
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("fault streams diverged at call %d", k)
		}
	}
}

// TestRatesAndStats: rates roughly hold and every fired fault is counted
// and tagged ErrInjected.
func TestRatesAndStats(t *testing.T) {
	i := New(Config{Seed: 3, CompileFailRate: 0.5, RequestFailRate: 1})
	const n = 2000
	fails := 0
	for k := 0; k < n; k++ {
		if err := i.CompileFault(); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("compile fault not tagged: %v", err)
			}
			fails++
		}
		if err := i.RequestFault(); err == nil {
			t.Fatal("rate-1 request fault did not fire")
		}
	}
	if fails < n/3 || fails > 2*n/3 {
		t.Fatalf("rate-0.5 fired %d/%d times", fails, n)
	}
	s := i.Stats()
	if s.CompileFaults != int64(fails) || s.RequestFaults != n {
		t.Fatalf("stats %+v do not match observed (%d, %d)", s, fails, n)
	}
}

// TestDelaysFireAndCount: duration faults block and are counted; a rate
// gates them.
func TestDelaysFireAndCount(t *testing.T) {
	i := New(Config{Seed: 5, HopDelay: time.Microsecond, EpochStall: time.Microsecond,
		RequestDelay: time.Microsecond})
	for k := 0; k < 10; k++ {
		i.HopDelay()
		i.EpochStall()
		i.RequestDelay()
	}
	s := i.Stats()
	if s.HopDelays != 10 || s.EpochStalls != 10 || s.RequestDelays != 10 {
		t.Fatalf("ungated delays = %+v, want 10 each", s)
	}
	gated := New(Config{Seed: 5, HopDelay: time.Microsecond, HopDelayRate: 0.5})
	for k := 0; k < 2000; k++ {
		gated.HopDelay()
	}
	if d := gated.Stats().HopDelays; d < 600 || d > 1400 {
		t.Fatalf("rate-0.5 hop delay fired %d/2000 times", d)
	}
}
