package zigzag

import (
	"fmt"
	"math"

	"repro/internal/gen"
)

// ExpanderDegree and ExpanderSize fix the dimensions of the auxiliary
// expander H used by the main transform: H is d-regular on d⁴ vertices so
// that the transform G ↦ (G²) ⓩ H preserves degree D = d².
const (
	ExpanderDegree = 4
	ExpanderSize   = ExpanderDegree * ExpanderDegree * ExpanderDegree * ExpanderDegree // d⁴ = 256
	// TransformDegree is the degree D = d² the transform operates at.
	TransformDegree = ExpanderDegree * ExpanderDegree // 16
)

// FindExpander searches candidate random d-regular graphs on n vertices and
// returns the one with the smallest measured λ. The search is deterministic
// in seed. Used to construct the auxiliary H; random regular graphs are
// near-Ramanujan with high probability.
func FindExpander(n, d, candidates int, seed uint64) (*RotGraph, error) {
	if candidates <= 0 {
		candidates = 4
	}
	var (
		best       *RotGraph
		bestLambda = 2.0
	)
	for c := 0; c < candidates; c++ {
		g, err := gen.RandomRegularSimple(n, d, seed+uint64(c)*0x9e3779b9, 400)
		if err != nil {
			continue
		}
		if !g.IsConnected() {
			continue
		}
		rg, err := FromGraph(g)
		if err != nil {
			return nil, fmt.Errorf("zigzag: expander candidate: %w", err)
		}
		if l := rg.Lambda(0); l < bestLambda {
			bestLambda = l
			best = rg
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: no connected candidate among %d", gen.ErrGeneratorFailed, candidates)
	}
	return best, nil
}

// DefaultExpander returns the canonical auxiliary expander H (4-regular on
// 256 vertices) used by the main transform.
func DefaultExpander() (*RotGraph, error) {
	return FindExpander(ExpanderSize, ExpanderDegree, 6, 0xe8a2d)
}

// TransformLevel applies one level of Reingold's main transform:
// T(G) = (G²) ⓩ H. G must be D-regular with D = deg(H)² and H must have D²
// vertices; the result is again D-regular, on N·D² vertices, with
// λ(T(G)) < λ(G) for suitable H — squaring amplifies the gap, the zig-zag
// product restores constant degree at a modest gap cost.
func TransformLevel(g, h *RotGraph) (*RotGraph, error) {
	if g.D() != h.D()*h.D() {
		return nil, fmt.Errorf("%w: deg(G) = %d, want deg(H)² = %d", ErrBadDims, g.D(), h.D()*h.D())
	}
	if h.N() != g.D()*g.D() {
		return nil, fmt.Errorf("%w: |V(H)| = %d, want deg(G)² = %d", ErrBadDims, h.N(), g.D()*g.D())
	}
	sq, err := g.Square()
	if err != nil {
		return nil, fmt.Errorf("zigzag: transform square: %w", err)
	}
	out, err := ZigZag(sq, h)
	if err != nil {
		return nil, fmt.Errorf("zigzag: transform zig-zag: %w", err)
	}
	return out, nil
}

// LevelReport records per-level measurements of the main transform.
type LevelReport struct {
	Level    int
	N        int
	D        int
	Lambda   float64
	Gap      float64
	Diameter int
}

// Transform iterates the main transform for the requested number of levels
// (stopping early if the next level would exceed the size budget) and
// returns measurements for the base graph and every constructed level.
// measureDiameter enables the O(N²) BFS diameter measurement.
func Transform(base, h *RotGraph, levels int, measureDiameter bool) ([]LevelReport, error) {
	report := func(level int, g *RotGraph) LevelReport {
		r := LevelReport{
			Level:  level,
			N:      g.N(),
			D:      g.D(),
			Lambda: g.Lambda(0),
		}
		r.Gap = 1 - r.Lambda
		if measureDiameter {
			r.Diameter = g.BFSDiameter()
		}
		return r
	}
	out := []LevelReport{report(0, base)}
	cur := base
	for l := 1; l <= levels; l++ {
		if cur.N()*cur.D()*cur.D()*cur.D() > MaxEntries {
			break
		}
		next, err := TransformLevel(cur, h)
		if err != nil {
			return out, err
		}
		out = append(out, report(l, next))
		cur = next
	}
	return out, nil
}

// RVWBound is the Reingold–Vadhan–Wigderson bound on λ(G ⓩ H) as a
// function of λ(G) and λ(H) (RVW 2000, Theorem 4.3). Tests check the
// measured zig-zag spectrum against it.
func RVWBound(lg, lh float64) float64 {
	a := (1 - lh*lh) * lg / 2
	return a + math.Sqrt(a*a+lh*lh)
}

// ProjectReplacementWalk maps a walk on the replacement product R(G, H)
// down to the base graph G: a step with label deg(H) crosses to the
// neighbouring cloud (one base edge), labels < deg(H) move within the
// cloud (no base step). This is the projection property that lets walks on
// the constant-degree expander drive exploration of the base graph —
// the bridge between the transform and graph exploration. start is a
// vertex of R(G, H) (i.e. in [N·D]); labels are the walk's edge labels.
// It returns the base-graph vertices visited, starting with start's cloud.
func ProjectReplacementWalk(g, h *RotGraph, start int, labels []int) ([]int, error) {
	r, err := Replacement(g, h)
	if err != nil {
		return nil, err
	}
	if start < 0 || start >= r.N() {
		return nil, fmt.Errorf("zigzag: start %d outside replacement product [0,%d)", start, r.N())
	}
	cur := start
	visited := []int{cur / g.D()}
	for i, l := range labels {
		if l < 0 || l >= r.D() {
			return visited, fmt.Errorf("zigzag: label %d at step %d outside degree %d", l, i, r.D())
		}
		next, _ := r.Rot(cur, l)
		if l == h.D() {
			// Inter-cloud edge: one base-graph step.
			visited = append(visited, next/g.D())
		}
		cur = next
	}
	return visited, nil
}
