// Package ues implements exploration sequences (paper §2): the walk rule,
// its reversibility, sequence generators with O(log n)-space random access,
// cover checking, and empirical universality verification.
//
// An exploration sequence is a list of integer "directions" t_1, t_2, ….
// If before step i the walk entered vertex v on the edge labeled a (at v),
// it leaves on the edge labeled (a + t_i) mod deg(v). A sequence is a
// universal exploration sequence (UES) for 3-regular graphs of size ≤ n if
// following it visits every vertex, for every connected 3-regular graph of
// that size, every labeling, and every initial edge (Definition 3).
//
// Reingold's theorem (Theorem 4 in the paper) guarantees a log-space
// constructible UES; the explicit object is astronomically long and is used
// by the paper purely as an existence result. This package supplies the
// protocol-visible equivalent: Pseudorandom sequences whose i-th symbol is
// computable statelessly in O(1) words (= O(log n) bits) — the exact
// property §2 requires of T_n — with polynomial length and empirically
// verified universality over corpora of labeled cubic multigraphs (see
// Verify and corpus.go). The derandomization machinery behind Reingold's
// theorem lives in the sibling package zigzag.
package ues

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/prng"
)

// Errors reported by walks and verification.
var (
	ErrIndexRange   = errors.New("ues: sequence index out of range")
	ErrNotUniversal = errors.New("ues: sequence failed universality check")
)

// Sequence is random access to an exploration sequence. Indices are
// 1-based, matching the paper's i ∈ [1..Ln].
type Sequence interface {
	// At returns the i-th direction, 1 ≤ i ≤ Len.
	At(i int) int
	// Len returns the number of directions.
	Len() int
}

// Position is the walker state: the walk is at Node, having entered it
// through the port InPort (the label l(v,u) of the arrival edge at v). A
// walk starting at s uses the convention InPort = 0, i.e. the initial edge
// e0 is the port-0 edge of s.
type Position struct {
	Node   graph.NodeID
	InPort int
}

// Start returns the canonical initial position at s.
func Start(s graph.NodeID) Position {
	return Position{Node: s, InPort: 0}
}

// NextPort returns the exit label after entering on inPort with direction
// t, at a vertex of degree deg: (inPort + t) mod deg.
func NextPort(deg, inPort, t int) int {
	return mod(inPort+t, deg)
}

// PrevPort inverts NextPort: the arrival label given the exit label and
// direction t: (exitPort - t) mod deg.
func PrevPort(deg, exitPort, t int) int {
	return mod(exitPort-t, deg)
}

// Step advances the walk one step from pos using direction t — the paper's
// next_v((u,v), T[i]).
func Step(g *graph.Graph, pos Position, t int) (Position, error) {
	deg := g.Degree(pos.Node)
	if deg <= 0 {
		return Position{}, fmt.Errorf("ues: step from degree-%d node %d", deg, pos.Node)
	}
	exit := NextPort(deg, pos.InPort, t)
	h, err := g.Neighbor(pos.Node, exit)
	if err != nil {
		return Position{}, fmt.Errorf("ues: step: %w", err)
	}
	return Position{Node: h.To, InPort: h.ToPort}, nil
}

// StepBack inverts Step: given the position *after* a step with direction
// t, it returns the position before that step — the paper's
// prev_v((v,w), T[i]), using the reversibility of exploration sequences.
func StepBack(g *graph.Graph, pos Position, t int) (Position, error) {
	h, err := g.Neighbor(pos.Node, pos.InPort)
	if err != nil {
		return Position{}, fmt.Errorf("ues: step back: %w", err)
	}
	deg := g.Degree(h.To)
	if deg <= 0 {
		return Position{}, fmt.Errorf("ues: step back into degree-%d node %d", deg, h.To)
	}
	return Position{Node: h.To, InPort: PrevPort(deg, h.ToPort, t)}, nil
}

// Trace follows seq from Start(s) for at most maxSteps steps (capped at
// seq.Len()) and returns the sequence of positions visited, starting with
// the initial position. Used by tests and the cover checker; the routing
// protocol itself never materializes a trace.
func Trace(g *graph.Graph, s graph.NodeID, seq Sequence, maxSteps int) ([]Position, error) {
	if maxSteps > seq.Len() {
		maxSteps = seq.Len()
	}
	out := make([]Position, 0, maxSteps+1)
	pos := Start(s)
	out = append(out, pos)
	for i := 1; i <= maxSteps; i++ {
		next, err := Step(g, pos, seq.At(i))
		if err != nil {
			return out, err
		}
		pos = next
		out = append(out, pos)
	}
	return out, nil
}

// CoverSteps walks seq from the given start position and returns the number
// of steps after which every node of start's component has been visited. ok
// is false if the sequence was exhausted before covering.
func CoverSteps(g *graph.Graph, start Position, seq Sequence) (steps int, ok bool, err error) {
	comp := g.ComponentOf(start.Node)
	if comp == nil {
		return 0, false, fmt.Errorf("%w: %d", graph.ErrNodeNotFound, start.Node)
	}
	remaining := make(map[graph.NodeID]bool, len(comp))
	for _, v := range comp {
		remaining[v] = true
	}
	pos := start
	delete(remaining, pos.Node)
	if len(remaining) == 0 {
		return 0, true, nil
	}
	for i := 1; i <= seq.Len(); i++ {
		pos, err = Step(g, pos, seq.At(i))
		if err != nil {
			return i, false, err
		}
		delete(remaining, pos.Node)
		if len(remaining) == 0 {
			return i, true, nil
		}
	}
	return seq.Len(), false, nil
}

// Covers reports whether following seq from every possible initial edge of
// s's component visits the entire component — the Definition 3 condition
// restricted to one labeled graph and one component.
func Covers(g *graph.Graph, s graph.NodeID, seq Sequence) (bool, error) {
	comp := g.ComponentOf(s)
	if comp == nil {
		return false, fmt.Errorf("%w: %d", graph.ErrNodeNotFound, s)
	}
	for _, v := range comp {
		for p := 0; p < g.Degree(v); p++ {
			_, ok, err := CoverSteps(g, Position{Node: v, InPort: p}, seq)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
	}
	return true, nil
}

func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// Pseudorandom is an exploration sequence whose i-th symbol is derived from
// a stateless PRF: At(i) touches O(1) machine words, so a node can compute
// any T[i] with O(log n) bits of memory — the random-access property §2
// requires from Reingold's construction. Empirically these sequences cover
// all tested cubic multigraphs well within the default length (see the E4
// experiment and TestPseudorandomUniversalSmall).
type Pseudorandom struct {
	// Seed selects the sequence; all nodes participating in one routing run
	// must share it (it is part of the protocol configuration, not state).
	Seed uint64
	// N is the graph-size bound the sequence targets.
	N int
	// Base is the direction alphabet size: 3 for 3-regular graphs
	// (Definition 3). If Base == 0, At returns a full-range value, which
	// the walk rule reduces mod deg(v) — used by the no-degree-reduction
	// ablation on irregular graphs.
	Base int
	// LengthFactor scales the sequence length; 0 means DefaultLengthFactor.
	LengthFactor int

	// length memoizes Len (a Θ(log n) computation otherwise repeated by
	// every At bounds check). N and LengthFactor must not change after the
	// first At/Len call.
	length atomic.Int64
}

// DefaultLengthFactor is the constant c in L(n) = c·n²·(⌈log₂ n⌉+1); n² is
// the random-walk cover-time envelope for bounded-degree graphs (paper §2,
// refs [3,7]) and the log factor is the high-probability margin.
const DefaultLengthFactor = 8

// Length returns c·n²·(⌈log₂ n⌉+1), the default sequence length for graphs
// of size ≤ n.
func Length(n, factor int) int {
	if n < 2 {
		n = 2
	}
	if factor <= 0 {
		factor = DefaultLengthFactor
	}
	lg := 1
	for v := n; v > 1; v >>= 1 {
		lg++
	}
	return factor * n * n * lg
}

// At returns the i-th direction. It panics only on out-of-range indices,
// which indicates a protocol bug (walkers always bound i by Len).
func (p *Pseudorandom) At(i int) int {
	if i < 1 || i > p.Len() {
		panic(fmt.Sprintf("ues: At(%d) outside [1..%d]", i, p.Len()))
	}
	return Symbol(p.Seed, uint64(i), p.Base)
}

// Symbol is the single shared PRF-to-direction derivation; every sequence
// flavour (and the compiled flat walker) must agree on it, since all nodes
// of a deployment consult the same T_n.
func Symbol(seed, i uint64, base int) int {
	v := prng.At(seed, i)
	if base == 3 {
		// The 3-regular alphabet is the protocol's hot case; the constant
		// divisor lets the compiler emit a multiply-shift reduction instead
		// of a hardware divide in the per-hop oracle.
		return int(v % 3)
	}
	if base <= 0 {
		return int(v >> 1 & 0x7fffffff) // non-negative full-range direction
	}
	return int(v % uint64(base))
}

// Len returns the sequence length for the configured size bound, computed
// once and memoized.
func (p *Pseudorandom) Len() int {
	if l := p.length.Load(); l != 0 {
		return int(l)
	}
	l := Length(p.N, p.LengthFactor)
	p.length.Store(int64(l))
	return l
}

// PRFParams implements PRFBacked.
func (p *Pseudorandom) PRFParams() (seed uint64, base int) { return p.Seed, p.Base }

var _ Sequence = (*Pseudorandom)(nil)

// PRFBacked is implemented by sequences whose i-th symbol is exactly
// Symbol(seed, i, base). Exposing the derivation parameters lets compiled
// walkers (package flatgraph) inline the symbol computation into their hop
// loop instead of paying an interface call per hop; sequences that are not
// PRF-backed (explicit certified sequences, test doubles) simply do not
// implement it and keep the generic path.
type PRFBacked interface {
	Sequence
	// PRFParams returns the Symbol derivation parameters.
	PRFParams() (seed uint64, base int)
}

var (
	_ PRFBacked = (*Pseudorandom)(nil)
	_ PRFBacked = (*compiled)(nil)
)

// Compiled returns a sequence identical to p with the length computed once
// at construction instead of on every At/Len call. A walk makes one At call
// per hop, and the naive Len recomputation costs Θ(log n) per call — the
// compiled form removes that from the hot loop, and being immutable it is
// safe to share across any number of concurrent walkers.
func (p *Pseudorandom) Compiled() Sequence {
	return &compiled{seed: p.Seed, base: p.Base, length: p.Len()}
}

// compiled is the frozen form of a Pseudorandom sequence.
type compiled struct {
	seed   uint64
	base   int
	length int
}

// At returns the i-th direction.
func (c *compiled) At(i int) int {
	if i < 1 || i > c.length {
		panic(fmt.Sprintf("ues: At(%d) outside [1..%d]", i, c.length))
	}
	return Symbol(c.seed, uint64(i), c.base)
}

// Len returns the precomputed sequence length.
func (c *compiled) Len() int { return c.length }

// PRFParams implements PRFBacked.
func (c *compiled) PRFParams() (seed uint64, base int) { return c.seed, c.base }

var _ Sequence = (*compiled)(nil)

// Precomputed is an explicit in-memory exploration sequence, used for tiny
// verified sequences and in tests.
type Precomputed []int

// At returns the i-th direction (1-based).
func (s Precomputed) At(i int) int {
	if i < 1 || i > len(s) {
		panic(fmt.Sprintf("ues: At(%d) outside [1..%d]", i, len(s)))
	}
	return s[i-1]
}

// Len returns the sequence length.
func (s Precomputed) Len() int { return len(s) }

var _ Sequence = Precomputed(nil)
