package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestQuickSweepEndToEnd runs the whole driver in quick mode and checks a
// well-formed delivery-vs-churn table comes out — the acceptance check
// that cmd/churnsim works end to end (wrong verdicts abort the sweep
// inside runCell, so a rendered table certifies oracle agreement too).
func TestQuickSweepEndToEnd(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"delivery rate", "churn p", "| 0 |", "100%"} {
		if !strings.Contains(got, want) {
			t.Fatalf("table missing %q:\n%s", want, got)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-quick", "-csv", "-reps", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "churn p,speed,routes") {
		t.Fatalf("missing CSV header:\n%s", out.String())
	}
}

// TestScaleSweepSmall drives the -nodes scaling sweep end to end on small
// worlds and checks the table shape plus the delta-path floor: after the
// one seeding full compile, journal-sized churn must recompile via the
// delta path.
func TestScaleSweepSmall(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nodes", "64,256", "-scale-epochs", "20"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"delta path", "speedup", "| 64 |", "| 256 |"} {
		if !strings.Contains(got, want) {
			t.Fatalf("scaling table missing %q:\n%s", want, got)
		}
	}
	st, err := scaleCell(256, 20, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if st.totalRebuilds == 0 || st.deltaRebuilds < st.totalRebuilds/2 {
		t.Fatalf("delta path underused: %d of %d rebuilds", st.deltaRebuilds, st.totalRebuilds)
	}
}

// TestScale100kSmoke proves interactive-rate epoch advances on a
// 100k-node world: the delta path must recompile in well under a second
// and beat the forced full rebuild by a wide margin. Skipped under -short
// (the twin full-compile world makes this a multi-second test).
func TestScale100kSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-node scaling smoke skipped in -short mode")
	}
	st, err := scaleCell(100_000, 5, 8, 13)
	if err != nil {
		t.Fatal(err)
	}
	if st.nodes < 99_000 {
		t.Fatalf("world only reached %d nodes", st.nodes)
	}
	if st.deltaRebuilds == 0 {
		t.Fatal("no rebuild took the delta path at 100k nodes")
	}
	// Interactive rate: a churned epoch recompiles in well under a second.
	if st.deltaMeanUS > 250_000 {
		t.Fatalf("delta recompile averaged %.0fµs at 100k nodes, want interactive (<250ms)", st.deltaMeanUS)
	}
	if st.deltaMeanUS*3 > st.fullMeanUS {
		t.Fatalf("delta path (%.0fµs) not meaningfully faster than full (%.0fµs) at 100k nodes",
			st.deltaMeanUS, st.fullMeanUS)
	}
}

func TestFlagErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-churn", "x"}, &out); err == nil {
		t.Fatal("bad -churn accepted")
	}
	if err := run([]string{"-speeds", ""}, &out); err == nil {
		t.Fatal("empty -speeds accepted")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestParseFloats(t *testing.T) {
	got, err := parseFloats(" 0, 0.5 ,1 ")
	if err != nil || len(got) != 3 || got[1] != 0.5 {
		t.Fatalf("parseFloats: %v, %v", got, err)
	}
	if _, err := parseFloats(","); err == nil {
		t.Fatal("empty list accepted")
	}
}
