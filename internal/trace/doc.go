// Package trace is the dependency-free request-tracing core: Dapper-style
// spans with 128-bit trace identities, W3C traceparent propagation, and an
// always-on flight recorder that retains the last N slow or failed request
// traces for post-hoc inspection.
//
// The design is shaped by the workload it observes. A §3 routing query is
// one message walking a compiled graph: each hop is a natural span event
// carrying the O(log n) header of Theorem 1, and a slow request is almost
// always a long walk (a large doubling bound, an unreachable pair burning
// the full sequence budget, or churn repeatedly breaking the confirmation
// leg). The latency histograms of package obs say *that* such a tail
// exists; a retained trace says *which* walk caused it and what the walk
// was doing hop by hop.
//
// # Model
//
// A Tracer starts one Trace per request. The Trace owns a tree of Spans;
// every Span carries key/value attributes, a bounded list of timed Events
// (round starts, epoch advances, snapshot resumptions), and a fixed-size
// ring of HopEvents that keeps the *tail* of the walk — the last
// DefaultHopRing hops before the verdict, which for a slow walk is exactly
// the evidence worth keeping (where the message was when the budget ran
// out), at O(1) memory however long the walk ran.
//
// # Sampling and retention
//
// Head sampling decides at request start whether a trace records at all:
// an explicit upstream decision (the traceparent sampled flag) always
// wins, otherwise a probabilistic coin at Config.SampleRate is tossed.
// Unsampled traces cost a few nanoseconds — every recording method is
// nil-receiver safe and the hot paths carry a single pointer test.
//
// Retention decides at request end whether a sampled trace enters the
// flight recorder: always on error (Trace.SetError or ForceRetain),
// always when the request latency reached Config.SlowThreshold (the
// tail-latency trigger), and unconditionally when SlowThreshold is zero.
// The recorder is a lock-free ring of atomic pointers — the last
// Config.Capacity retained traces, readable at any time while requests
// keep landing.
//
// Concurrency: one Trace/Span tree belongs to one request goroutine while
// recording (hop rings are single-writer by design); finished traces are
// immutable and safely shared by recorder readers. The Tracer and
// Recorder themselves are fully concurrent-safe.
package trace
