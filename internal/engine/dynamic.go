package engine

import (
	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/trace"
)

// NewWorld returns a dynamic world seeded with this engine's network and
// its already-compiled degree reduction, evolving under sched. The world
// owns a private clone of the graph, so any number of worlds (one per
// dynamic query, in the serving layer) can evolve independently while the
// engine keeps serving static queries; none of them recompiles anything
// until its topology actually diverges.
func (e *Engine) NewWorld(sched dynamic.Schedule) *dynamic.World {
	return dynamic.NewWorldFromCompiled(e.g, e.red, sched)
}

// RouteDynamic answers one s→t query over the evolving world w, advancing
// the topology every cfg.HopsPerEpoch hops and carrying the stateless
// header across snapshot recompiles. Protocol parameters (sequence family
// seed, length factor, known bound, bound cap) always come from the
// engine so dynamic and static queries speak the same protocol; cfg
// supplies only the dynamics knobs.
func (e *Engine) RouteDynamic(w *dynamic.World, s, t graph.NodeID, cfg dynamic.Config) (*dynamic.Result, error) {
	return e.routeDynamic(w, s, t, cfg, nil)
}

// RouteDynamicTraced is RouteDynamic recording the evolving walk under
// sp: one span per round with the hop tail, plus timed events for epoch
// advances, snapshot resumptions, and aborted rounds. A nil (unsampled)
// span serves the query exactly like RouteDynamic.
func (e *Engine) RouteDynamicTraced(w *dynamic.World, s, t graph.NodeID, cfg dynamic.Config, sp *trace.Span) (*dynamic.Result, error) {
	return e.routeDynamic(w, s, t, cfg, sp)
}

func (e *Engine) routeDynamic(w *dynamic.World, s, t graph.NodeID, cfg dynamic.Config, sp *trace.Span) (*dynamic.Result, error) {
	cfg.Seed = e.cfg.Seed
	cfg.LengthFactor = e.cfg.LengthFactor
	cfg.KnownN = e.cfg.KnownBound
	if cfg.MaxBound == 0 {
		cfg.MaxBound = e.cfg.MaxBound
	}
	var qsp *trace.Span
	if sp.Recording() {
		qsp = sp.Child("engine.route_dynamic")
		defer qsp.End()
		qsp.SetAttr(trace.Int("src", int64(s)), trace.Int("dst", int64(t)))
	}
	start := sampleStart(e.m.dynamicRoutes.Add(1))
	res, err := dynamic.NewRouter(w, cfg).RouteTraced(s, t, qsp)
	e.m.recordDynamic(res, err, start)
	if qsp.Recording() {
		if err != nil {
			qsp.SetAttr(trace.String("error", err.Error()))
		}
		if res != nil {
			qsp.SetAttr(
				trace.String("status", res.Status.String()),
				trace.Int("hops", res.Hops),
				trace.Int("rounds", int64(res.Rounds)),
				trace.Int("aborted_rounds", int64(res.AbortedRounds)),
				trace.Int("epochs", int64(res.Epochs)),
				trace.Int("recompiles", int64(res.Recompiles)),
				trace.Int("resumptions", int64(res.Resumptions)),
				trace.Int("max_header_bits", int64(res.MaxHeaderBits)),
			)
		}
	}
	return res, err
}
