package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dynamic"
	"repro/internal/engine"
	"repro/internal/obs"
)

// World lifecycle errors; the serving layer maps capacity to 429 and the
// rest to 4xx shape errors.
var (
	ErrWorldCapacity = errors.New("registry: world capacity exhausted")
	ErrWorldExists   = errors.New("registry: world name already in use")
	ErrBadWorldName  = errors.New("registry: invalid world name")
)

// DefaultWorldLimit bounds the world table when no limit is configured.
const DefaultWorldLimit = 16

// WorldEntry is one named long-lived dynamic world: a shared evolving
// dynamic.World plus the engine whose protocol configuration its routes
// speak. The World itself is concurrency-safe; any number of requests
// route over it at once.
type WorldEntry struct {
	// ID names the world in /v1/worlds/{id}/…: client-chosen or generated.
	ID string
	// NetworkID is the registry ID of the network the world was seeded
	// from ("" = the daemon's boot network).
	NetworkID string
	// Desc describes the schedule driving the world.
	Desc string
	// Schedule is the dynamics spec the world was created with. Schedules
	// are epoch-deterministic, so (network spec, Schedule, epoch) fully
	// determines a world's topology — which is what lets cluster mode
	// migrate a world between shards by replaying it rather than
	// serializing evolved state.
	Schedule dynamic.Spec
	// Eng is the engine the world was seeded from; dynamic routes take
	// their protocol parameters (seed, bounds) from it.
	Eng *engine.Engine
	// W is the shared evolving world.
	W *dynamic.World
	// Routes counts routing queries served over this world; the serving
	// layer increments it per request and the metric exposition lists it
	// per resident world.
	Routes atomic.Int64

	seq int // creation order, for stable listings
}

// Worlds is the bounded table of named worlds. Unlike the engine LRU,
// worlds are stateful (they have evolved), so they are never silently
// evicted: creation beyond the bound fails and clients delete explicitly.
type Worlds struct {
	mu    sync.Mutex
	limit int
	m     map[string]*WorldEntry
	names int // generated-name counter ("w<n>")
	seq   int // creation counter, for stable listing order

	// recompDelta/recompFull aggregate recompile latency across all worlds
	// (deleted ones included — latency history outlives the world), split
	// by compile path. Create installs the observer feeding them.
	recompDelta *obs.Histogram
	recompFull  *obs.Histogram
}

// NewWorlds builds an empty world table holding at most limit worlds
// (0 = DefaultWorldLimit).
func NewWorlds(limit int) *Worlds {
	if limit <= 0 {
		limit = DefaultWorldLimit
	}
	const recompHelp = "World snapshot recompile latency, by compile path (delta = journal-driven patch, full = from-scratch reduction)."
	return &Worlds{
		limit:       limit,
		m:           make(map[string]*WorldEntry),
		recompDelta: obs.NewLatencyHistogram("adhoc_world_recompile_duration_seconds", recompHelp, obs.Labels{"path": "delta"}),
		recompFull:  obs.NewLatencyHistogram("adhoc_world_recompile_duration_seconds", recompHelp, obs.Labels{"path": "full"}),
	}
}

// validWorldName accepts 1..64 chars of [A-Za-z0-9_-] — IDs appear in
// URL paths.
func validWorldName(name string) bool {
	if len(name) == 0 || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// admitLocked is the shared gate for Create and Precheck: name rules,
// duplicates, then capacity.
func (ws *Worlds) admitLocked(name string) error {
	if name != "" {
		if !validWorldName(name) {
			return fmt.Errorf("%w: %q (want 1-64 chars of [A-Za-z0-9_-])", ErrBadWorldName, name)
		}
		if _, taken := ws.m[name]; taken {
			return fmt.Errorf("%w: %q", ErrWorldExists, name)
		}
	}
	if len(ws.m) >= ws.limit {
		return fmt.Errorf("%w: %d worlds resident (delete one first)", ErrWorldCapacity, len(ws.m))
	}
	return nil
}

// Precheck reports whether Create(name, …) would currently be admitted,
// without reserving anything. The serving layer calls it before paying
// for world construction (a full graph clone); Create remains the
// authoritative check.
func (ws *Worlds) Precheck(name string) error {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.admitLocked(name)
}

// Create registers ent under name (empty = a generated "w<n>" ID) and
// returns it with ID and ordering filled in.
func (ws *Worlds) Create(name string, ent *WorldEntry) (*WorldEntry, error) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if err := ws.admitLocked(name); err != nil {
		return nil, err
	}
	if name == "" {
		for {
			ws.names++
			name = fmt.Sprintf("w%d", ws.names)
			if _, taken := ws.m[name]; !taken {
				break
			}
		}
	}
	ent.ID = name
	ws.seq++
	ent.seq = ws.seq
	ws.m[name] = ent
	// Feed the shared recompile-latency histograms from this world's
	// rebuilds. The observer runs under the world's lock, so it only does
	// the lock-free histogram observe.
	ent.W.SetRecompileObserver(func(path string, _ uint64, d time.Duration) {
		if path == "delta" {
			ws.recompDelta.Observe(int64(d))
		} else {
			ws.recompFull.Observe(int64(d))
		}
	})
	return ent, nil
}

// Get returns the named world.
func (ws *Worlds) Get(id string) (*WorldEntry, bool) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	ent, ok := ws.m[id]
	return ent, ok
}

// Delete removes the named world, reporting whether it existed. In-flight
// routes over it finish normally (they hold their own reference).
func (ws *Worlds) Delete(id string) bool {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	_, ok := ws.m[id]
	delete(ws.m, id)
	return ok
}

// List returns the resident worlds in creation order.
func (ws *Worlds) List() []*WorldEntry {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	out := make([]*WorldEntry, 0, len(ws.m))
	for _, ent := range ws.m {
		out = append(out, ent)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// Len returns the number of resident worlds.
func (ws *Worlds) Len() int {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return len(ws.m)
}

// RegisterMetrics exports the world table into o: an occupancy gauge plus
// per-world epoch/link/recompile/cache-hit gauges labeled by world ID.
// Everything is read at collect time: each family lists the table and
// snapshots every world under its routing mutex, so one scrape costs a
// handful of brief lock acquisitions per resident world — held only for
// field copies, never across a recompile, and paid at scrape cadence
// (seconds), not query cadence.
func (ws *Worlds) RegisterMetrics(o *obs.Registry) error {
	samples := func(f func(dynamic.Snapshot) float64) func() []obs.Sample {
		return func() []obs.Sample {
			ents := ws.List()
			out := make([]obs.Sample, len(ents))
			for i, ent := range ents {
				out[i] = obs.Sample{Labels: obs.Labels{"world": ent.ID}, Value: f(ent.W.Snapshot())}
			}
			return out
		}
	}
	perWorld := func(name, help string, f func(dynamic.Snapshot) float64) *obs.VecFunc {
		return obs.NewGaugeVecFunc(name, help, samples(f))
	}
	perWorldCounter := func(name, help string, f func(dynamic.Snapshot) float64) *obs.VecFunc {
		return obs.NewCounterVecFunc(name, help, samples(f))
	}
	return o.Register(
		obs.NewGaugeFunc("adhoc_worlds", "Resident named dynamic worlds.", nil,
			func() float64 { return float64(ws.Len()) }),
		perWorld("adhoc_world_epoch", "Current epoch per resident world.",
			func(s dynamic.Snapshot) float64 { return float64(s.Epoch) }),
		perWorld("adhoc_world_links", "Current link count per resident world.",
			func(s dynamic.Snapshot) float64 { return float64(s.Links) }),
		perWorld("adhoc_world_recompiles", "Churn-forced snapshot recompiles per resident world.",
			func(s dynamic.Snapshot) float64 { return float64(s.Recompiles) }),
		perWorldCounter("adhoc_world_delta_recompiles_total",
			"Rebuilds that took the O(diff) journal/delta compile path, per resident world.",
			func(s dynamic.Snapshot) float64 { return float64(s.DeltaRecompiles) }),
		perWorldCounter("adhoc_world_full_recompiles_total",
			"Rebuilds that took the O(graph) full compile path, per resident world.",
			func(s dynamic.Snapshot) float64 { return float64(s.FullRecompiles) }),
		ws.recompDelta,
		ws.recompFull,
		perWorld("adhoc_world_compile_cache_hits", "Compile-cache hits per resident world.",
			func(s dynamic.Snapshot) float64 { return float64(s.CacheHits) }),
		perWorld("adhoc_world_recompile_seconds", "Total wall time spent in churn-forced rebuilds per resident world.",
			func(s dynamic.Snapshot) float64 { return s.RecompileTime.Seconds() }),
		obs.NewGaugeVecFunc("adhoc_world_routes",
			"Routing queries served per resident world (drops when the world is deleted, hence a gauge).",
			func() []obs.Sample {
				ents := ws.List()
				out := make([]obs.Sample, len(ents))
				for i, ent := range ents {
					out[i] = obs.Sample{Labels: obs.Labels{"world": ent.ID}, Value: float64(ent.Routes.Load())}
				}
				return out
			}),
	)
}
