package token

import (
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/route"
)

func writeKeyFile(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "token.key")
	if err := os.WriteFile(p, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadKeyFromFile(t *testing.T) {
	want := make([]byte, 32)
	for i := range want {
		want[i] = byte(i * 7)
	}
	p := writeKeyFile(t, "  "+hex.EncodeToString(want)+"\n")
	got, err := LoadKey(p)
	if err != nil {
		t.Fatalf("LoadKey(file): %v", err)
	}
	if hex.EncodeToString(got) != hex.EncodeToString(want) {
		t.Fatalf("key mismatch: got %x", got)
	}
}

func TestLoadKeyFromEnv(t *testing.T) {
	t.Setenv("ADHOC_TOKEN_KEY_TEST", "00112233445566778899aabbccddeeff")
	got, err := LoadKey("env:ADHOC_TOKEN_KEY_TEST")
	if err != nil {
		t.Fatalf("LoadKey(env): %v", err)
	}
	if len(got) != 16 {
		t.Fatalf("got %d bytes, want 16", len(got))
	}
}

func TestLoadKeyRejects(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty source", ""},
		{"missing file", filepath.Join(t.TempDir(), "nope")},
		{"unset env var", "env:ADHOC_TOKEN_KEY_DEFINITELY_UNSET"},
		{"empty env name", "env:"},
		{"not hex", writeKeyFile(t, "this is not hex material")},
		{"too short", writeKeyFile(t, "aabbccdd")},
	}
	for _, c := range cases {
		if _, err := LoadKey(c.src); err == nil {
			t.Errorf("%s: LoadKey(%q) succeeded, want error", c.name, c.src)
		}
	}
}

// TestSharedKeyCrossSigner is the cluster-critical property: two signers
// built from the same key material are interchangeable — a token minted
// on shard A verifies on shard B, byte-identical cursor included. This is
// what makes budgeted walks resumable on a different shard than the one
// that paused them.
func TestSharedKeyCrossSigner(t *testing.T) {
	key, err := LoadKey(writeKeyFile(t, "9f86d081884c7d659a2feaa0c55ad015a3bf4f1b2b0b822cd15d6c15b0f00a08"))
	if err != nil {
		t.Fatal(err)
	}
	shardA, shardB := NewSigner(key), NewSigner(key)

	cur := &route.Cursor{At: 17, Hops: 42, Bound: 8, Version: 3}
	tok, err := shardA.Sign("world:w-demo", cur)
	if err != nil {
		t.Fatal(err)
	}
	got, err := shardB.Verify("world:w-demo", tok)
	if err != nil {
		t.Fatalf("token minted on shard A failed on shard B: %v", err)
	}
	if got.At != cur.At || got.Hops != cur.Hops || got.Bound != cur.Bound || got.Version != cur.Version {
		t.Fatalf("cursor mutated in cross-shard transit: %+v vs %+v", got, cur)
	}

	// Same key, same scope, same cursor → byte-identical token: the
	// differential cluster test depends on this determinism.
	tok2, err := shardB.Sign("world:w-demo", cur)
	if err != nil {
		t.Fatal(err)
	}
	if tok != tok2 {
		t.Fatal("two signers with one key minted different tokens for the same cursor")
	}
}

// TestRotatedKeyFailsClosed: after a key rotation, outstanding tokens
// are rejected with ErrInvalid — a clean refusal the HTTP layer maps to
// 400, never a panic or a false accept.
func TestRotatedKeyFailsClosed(t *testing.T) {
	old, err := LoadKey(writeKeyFile(t, "000102030405060708090a0b0c0d0e0f000102030405060708090a0b0c0d0e0f"))
	if err != nil {
		t.Fatal(err)
	}
	rotated, err := LoadKey(writeKeyFile(t, "f0e0d0c0b0a090807060504030201000f0e0d0c0b0a090807060504030201000"))
	if err != nil {
		t.Fatal(err)
	}
	tok, err := NewSigner(old).Sign("net:boot", &route.Cursor{At: 5})
	if err != nil {
		t.Fatal(err)
	}
	cur, err := NewSigner(rotated).Verify("net:boot", tok)
	if cur != nil || !errors.Is(err, ErrInvalid) {
		t.Fatalf("rotated key: got cursor=%v err=%v, want nil + ErrInvalid", cur, err)
	}
}
