package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b bytes.Buffer
	r.WritePrometheus(&b)
	return b.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := NewCounter("adhoc_test_total", "test counter", Labels{"kind": "a"})
	g := NewGauge("adhoc_test_inflight", "test gauge", nil)
	r.MustRegister(c, g)
	c.Add(3)
	c.Inc()
	g.Set(7)
	g.Dec()

	out := render(t, r)
	for _, want := range []string{
		"# HELP adhoc_test_total test counter",
		"# TYPE adhoc_test_total counter",
		`adhoc_test_total{kind="a"} 4`,
		"# TYPE adhoc_test_inflight gauge",
		"adhoc_test_inflight 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestFamilyGrouping checks that two series of one family render under a
// single HELP/TYPE header — scrapers reject repeated headers.
func TestFamilyGrouping(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(
		NewCounter("adhoc_req_total", "requests", Labels{"endpoint": "route"}),
		NewCounter("adhoc_other_total", "other", nil),
		NewCounter("adhoc_req_total", "requests", Labels{"endpoint": "batch"}),
	)
	out := render(t, r)
	if n := strings.Count(out, "# TYPE adhoc_req_total counter"); n != 1 {
		t.Errorf("family header rendered %d times, want 1:\n%s", n, out)
	}
	i := strings.Index(out, `endpoint="route"`)
	j := strings.Index(out, `endpoint="batch"`)
	h := strings.Index(out, "# TYPE adhoc_req_total")
	if i < 0 || j < 0 || h < 0 || i < h || j < h {
		t.Errorf("family series not grouped under their header:\n%s", out)
	}
}

func TestRegisterConflicts(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(NewCounter("adhoc_x_total", "x", nil))
	if err := r.Register(NewCounter("adhoc_x_total", "x", nil)); err == nil {
		t.Error("duplicate series accepted")
	}
	if err := r.Register(NewGauge("adhoc_x_total", "x", Labels{"a": "b"})); err == nil {
		t.Error("family type conflict accepted")
	}
	// Same family, different labels: fine.
	if err := r.Register(NewCounter("adhoc_x_total", "x", Labels{"a": "b"})); err != nil {
		t.Errorf("distinct series of one family rejected: %v", err)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := NewCounter("adhoc_esc_total", "esc", Labels{"v": "a\"b\\c\nd"})
	r.MustRegister(c)
	c.Inc()
	out := render(t, r)
	if !strings.Contains(out, `v="a\"b\\c\nd"`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestHistogramExposition(t *testing.T) {
	h := NewHistogram("adhoc_hops", "hops per route", nil, []int64{1, 10, 100})
	for _, v := range []int64{0, 1, 5, 50, 500} {
		h.Observe(v)
	}
	r := NewRegistry()
	r.MustRegister(h)
	out := render(t, r)
	for _, want := range []string{
		"# TYPE adhoc_hops histogram",
		`adhoc_hops_bucket{le="1"} 2`,
		`adhoc_hops_bucket{le="10"} 3`,
		`adhoc_hops_bucket{le="100"} 4`,
		`adhoc_hops_bucket{le="+Inf"} 5`,
		"adhoc_hops_sum 556",
		"adhoc_hops_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram exposition missing %q in:\n%s", want, out)
		}
	}
	if got := h.Count(); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	if got := h.Sum(); got != 556 {
		t.Errorf("Sum = %d, want 556", got)
	}
}

// TestLatencyHistogramSeconds checks the ns -> seconds rendering: bounds
// and sum must come out in seconds or every latency alert threshold would
// be off by 1e9.
func TestLatencyHistogramSeconds(t *testing.T) {
	h := NewLatencyHistogram("adhoc_route_seconds", "route latency", nil)
	h.Observe(1_000)     // 1 µs
	h.Observe(2_000_000) // 2 ms
	r := NewRegistry()
	r.MustRegister(h)
	out := render(t, r)
	for _, want := range []string{
		`adhoc_route_seconds_bucket{le="1e-06"} 1`,
		`adhoc_route_seconds_bucket{le="0.0025"} 2`,
		`adhoc_route_seconds_bucket{le="+Inf"} 2`,
		"adhoc_route_seconds_sum 0.002001",
		"adhoc_route_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("latency exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("adhoc_q", "q", nil, []int64{10, 20, 30, 40})
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	// 100 observations uniform over (0,40]: 25 per bucket.
	for v := int64(1); v <= 100; v++ {
		h.Observe(v % 40)
	}
	p50 := h.Quantile(0.50)
	if p50 < 15 || p50 > 25 {
		t.Errorf("p50 = %g, want ~20", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 35 || p99 > 40 {
		t.Errorf("p99 = %g, want ~40", p99)
	}
	// Everything past the last bound clamps to it.
	h2 := NewHistogram("adhoc_q2", "q", nil, []int64{10})
	h2.Observe(1000)
	if got := h2.Quantile(0.99); got != 10 {
		t.Errorf("overflow quantile = %g, want clamp to 10", got)
	}
}

func TestVecFunc(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(NewGaugeVecFunc("adhoc_world_epoch", "epoch per world", func() []Sample {
		return []Sample{
			{Labels: Labels{"world": "w1"}, Value: 3},
			{Labels: Labels{"world": "w2"}, Value: 9},
		}
	}))
	out := render(t, r)
	for _, want := range []string{
		`adhoc_world_epoch{world="w1"} 3`,
		`adhoc_world_epoch{world="w2"} 9`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("vec exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	n := int64(0)
	r.MustRegister(NewCounterFunc("adhoc_fn_total", "fn", nil, func() float64 { return float64(n) }))
	n = 42
	if out := render(t, r); !strings.Contains(out, "adhoc_fn_total 42") {
		t.Errorf("func metric not read at collect time:\n%s", out)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	c := NewCounter("adhoc_h_total", "h", nil)
	r.MustRegister(c)
	c.Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "adhoc_h_total 1") {
		t.Errorf("handler body missing sample:\n%s", rec.Body.String())
	}
}

// TestConcurrentObserve exercises the lock-free write paths under -race
// and checks nothing is lost: the bucket sums must equal the observation
// count exactly (atomic adds drop nothing).
func TestConcurrentObserve(t *testing.T) {
	h := NewLatencyHistogram("adhoc_conc_seconds", "c", nil)
	c := NewCounter("adhoc_conc_total", "c", nil)
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*1000 + i))
				c.Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
}
