package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tid := NewTraceID()
	sid := NewSpanID()
	h := Traceparent(tid, sid, FlagSampled)
	if len(h) != 55 {
		t.Fatalf("traceparent %q: len %d, want 55", h, len(h))
	}
	gtid, gsid, flags, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", h, err)
	}
	if gtid != tid || gsid != sid || flags != FlagSampled {
		t.Fatalf("round trip mismatch: got %v %v %#x", gtid, gsid, flags)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	cases := map[string]string{
		"empty":          "",
		"short":          valid[:54],
		"v00 long":       valid + "x",
		"bad sep":        strings.Replace(valid, "-b7ad", "_b7ad", 1),
		"zero trace id":  "00-00000000000000000000000000000000-b7ad6b7169203331-01",
		"zero parent id": "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
		"version ff":     "ff" + valid[2:],
		"non-hex ver":    "zz" + valid[2:],
		"non-hex flags":  valid[:53] + "zz",
	}
	for name, s := range cases {
		if _, _, _, err := ParseTraceparent(s); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted, want error", name, s)
		}
	}
	// Forward compatibility: a higher version may append extra fields
	// after a dash; the first four fields still parse.
	future := "cc" + valid[2:] + "-extrastate"
	if _, _, fl, err := ParseTraceparent(future); err != nil || fl != FlagSampled {
		t.Errorf("future version: err=%v flags=%#x", err, fl)
	}
}

func TestIDGeneration(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id.IsZero() {
			t.Fatal("zero trace id generated")
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %v", id)
		}
		seen[id] = true
	}
	if len(NewTraceID().String()) != 32 || len(NewSpanID().String()) != 16 {
		t.Fatal("hex lengths wrong")
	}
}

func TestSamplingDecision(t *testing.T) {
	// Rate 0: only an upstream sampled flag records.
	tr0 := New(Config{SampleRate: 0})
	if tr := tr0.StartRequest("r", ""); tr != nil {
		t.Fatal("rate 0 without parent sampled")
	}
	tid := NewTraceID()
	parent := Traceparent(tid, NewSpanID(), FlagSampled)
	tr := tr0.StartRequest("r", parent)
	if tr == nil {
		t.Fatal("upstream sampled flag ignored")
	}
	if tr.ID() != tid {
		t.Fatalf("trace id not propagated: got %v want %v", tr.ID(), tid)
	}
	if tr0.StartRequest("r", Traceparent(NewTraceID(), NewSpanID(), 0)) != nil {
		t.Fatal("unsampled parent recorded at rate 0")
	}

	// Rate 1: everything records.
	tr1 := New(Config{SampleRate: 1})
	if tr1.StartRequest("r", "") == nil {
		t.Fatal("rate 1 not sampled")
	}
	started, sampled := tr1.Stats()
	if started != 1 || sampled != 1 {
		t.Fatalf("stats = %d/%d, want 1/1", started, sampled)
	}

	// An unsampled parent is authoritative at any rate: flag 00 means
	// the caller already declined, so even rate 1 must not record.
	if tr1.StartRequest("r", Traceparent(NewTraceID(), NewSpanID(), 0)) != nil {
		t.Fatal("unsampled parent recorded at rate 1")
	}

	// Fractional rate: local coin only for parentless requests.
	half := New(Config{SampleRate: 0.5})
	for i := 0; i < 5; i++ {
		if half.StartRequest("r", Traceparent(NewTraceID(), NewSpanID(), 0)) != nil {
			t.Fatal("unsampled parent recorded at rate 0.5")
		}
	}
	// And roughly calibrated.
	n, hits := 2000, 0
	for i := 0; i < n; i++ {
		if w := half.StartRequest("r", ""); w != nil {
			hits++
			w.Finish()
		}
	}
	if hits < n/3 || hits > 2*n/3 {
		t.Fatalf("rate 0.5 sampled %d/%d", hits, n)
	}
}

func TestRetentionPolicy(t *testing.T) {
	// SlowThreshold 0: every sampled trace retained.
	keepAll := New(Config{SampleRate: 1, Capacity: 8})
	keepAll.StartRequest("r", "").Finish()
	if got := keepAll.Recorder().Kept(); got != 1 {
		t.Fatalf("SlowThreshold 0: kept %d, want 1", got)
	}

	// Negative threshold: clean fast traces dropped; errors retained.
	sel := New(Config{SampleRate: 1, SlowThreshold: -1, Capacity: 8})
	sel.StartRequest("clean", "").Finish()
	if sel.Recorder().Kept() != 0 {
		t.Fatal("clean trace retained with retention disabled")
	}
	bad := sel.StartRequest("bad", "")
	bad.SetError("boom")
	bad.Finish()
	forced := sel.StartRequest("forced", "")
	forced.ForceRetain()
	forced.Finish()
	if got := sel.Recorder().Kept(); got != 2 {
		t.Fatalf("error+forced: kept %d, want 2", got)
	}
	if sel.Recorder().Find(bad.ID()).Err() != "boom" {
		t.Fatal("error message lost")
	}

	// Positive threshold: only the slow trace survives.
	slow := New(Config{SampleRate: 1, SlowThreshold: 5 * time.Millisecond, Capacity: 8})
	slow.StartRequest("fast", "").Finish()
	w := slow.StartRequest("slow", "")
	time.Sleep(10 * time.Millisecond)
	w.Finish()
	if got := slow.Recorder().Kept(); got != 1 {
		t.Fatalf("latency trigger: kept %d, want 1", got)
	}
	if slow.Recorder().Recent(0)[0].Root() == nil {
		t.Fatal("retained trace lost its root")
	}
}

func TestSpanTreeAndExport(t *testing.T) {
	tc := New(Config{SampleRate: 1, HopRing: 4, EventCap: 2})
	tr := tc.StartRequest("req", "")
	root := tr.Root()
	root.SetAttr(String("endpoint", "/v1/route"), Int("src", 3))
	walk := root.Child("walk")
	walk.Event("round", Int("bound", 4))
	walk.Event("epoch", Int("version", 2))
	walk.Event("overflow") // beyond EventCap: dropped, counted
	for i := 0; i < 10; i++ {
		walk.Hop(HopEvent{Node: int64(i), Index: int64(i + 1), HeaderBits: 24})
	}
	walk.End()
	tr.SetError("unreachable")
	tr.Finish()

	if tr.Traceparent() == "" || !strings.Contains(tr.Traceparent(), tr.ID().String()) {
		t.Fatalf("bad outgoing traceparent %q", tr.Traceparent())
	}

	ex := tc.Recorder().Find(tr.ID()).Export()
	if len(ex.Spans) != 2 {
		t.Fatalf("exported %d spans, want 2", len(ex.Spans))
	}
	if ex.Error != "unreachable" {
		t.Fatalf("export error %q", ex.Error)
	}
	rootEx, walkEx := ex.Spans[0], ex.Spans[1]
	if walkEx.Parent != rootEx.SpanID {
		t.Fatalf("child parent %q != root %q", walkEx.Parent, rootEx.SpanID)
	}
	if rootEx.Attrs["endpoint"] != "/v1/route" || rootEx.Attrs["src"] != int64(3) {
		t.Fatalf("root attrs %v", rootEx.Attrs)
	}
	if len(walkEx.Events) != 2 || walkEx.EventsDropped != 1 {
		t.Fatalf("events %d dropped %d, want 2/1", len(walkEx.Events), walkEx.EventsDropped)
	}
	// Tail capture: 10 hops through a ring of 4 keeps hops 6..9.
	if walkEx.HopTotal != 10 || walkEx.HopsDropped != 6 || len(walkEx.Hops) != 4 {
		t.Fatalf("hop tail: total=%d dropped=%d kept=%d", walkEx.HopTotal, walkEx.HopsDropped, len(walkEx.Hops))
	}
	for i, h := range walkEx.Hops {
		if h.Hop != int64(6+i) || h.Node != int64(6+i) {
			t.Fatalf("tail hop %d = %+v", i, h)
		}
	}

	sum := tc.Recorder().Find(tr.ID()).Summarize()
	if sum.Spans != 2 || sum.Hops != 10 || sum.Error != "unreachable" {
		t.Fatalf("summary %+v", sum)
	}
	if _, err := json.Marshal(ex); err != nil {
		t.Fatalf("export not marshalable: %v", err)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Trace
	var sp *Span
	// None of these may panic; Child must return nil so chains stay no-op.
	tr.Finish()
	tr.SetError("x")
	tr.ForceRetain()
	if tr.Sampled() || tr.Err() != "" || tr.Traceparent() != "" || !tr.ID().IsZero() || tr.Root() != nil || tr.Duration() != 0 {
		t.Fatal("nil Trace not inert")
	}
	if sp.Recording() || sp.Child("c") != nil || sp.HopCount() != 0 || !sp.ID().IsZero() {
		t.Fatal("nil Span not inert")
	}
	sp.SetAttr(String("k", "v"))
	sp.SetName("n")
	sp.Event("e")
	sp.Hop(HopEvent{})
	sp.End()
}

func TestRecorderRing(t *testing.T) {
	tc := New(Config{SampleRate: 1, Capacity: 3})
	ids := make([]TraceID, 5)
	for i := range ids {
		w := tc.StartRequest("r", "")
		ids[i] = w.ID()
		w.Finish()
	}
	rec := tc.Recorder()
	if rec.Capacity() != 3 || rec.Kept() != 5 {
		t.Fatalf("capacity=%d kept=%d", rec.Capacity(), rec.Kept())
	}
	recent := rec.Recent(0)
	if len(recent) != 3 {
		t.Fatalf("recent: %d traces, want 3", len(recent))
	}
	// Newest first: ids[4], ids[3], ids[2].
	for i, want := range []TraceID{ids[4], ids[3], ids[2]} {
		if recent[i].ID() != want {
			t.Fatalf("recent[%d] = %v, want %v", i, recent[i].ID(), want)
		}
	}
	if got := rec.Recent(1); len(got) != 1 || got[0].ID() != ids[4] {
		t.Fatal("Recent(1) wrong")
	}
	if rec.Find(ids[0]) != nil {
		t.Fatal("evicted trace still findable")
	}
	if rec.Find(ids[4]) == nil {
		t.Fatal("newest trace not findable")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	tc := New(Config{SampleRate: 1, Capacity: 16})
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				w := tc.StartRequest("r", "")
				w.Root().Hop(HopEvent{Node: int64(i)})
				w.Finish()
			}
		}()
	}
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, tr := range tc.Recorder().Recent(0) {
				_ = tr.Summarize()
				_ = tr.Export()
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-readerDone
	if got := tc.Recorder().Kept(); got != 2000 {
		t.Fatalf("kept %d, want 2000", got)
	}
}
