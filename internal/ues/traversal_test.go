package ues

import (
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestTraversalStepBasics(t *testing.T) {
	g := gen.Cycle(5)
	next, err := TraversalStep(g, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := g.Neighbor(2, 0)
	if next != h.To {
		t.Fatalf("TraversalStep = %d, want %d", next, h.To)
	}
	// Absolute label reduced mod degree.
	next7, err := TraversalStep(g, 2, 7) // 7 mod 2 = 1
	if err != nil {
		t.Fatal(err)
	}
	h1, _ := g.Neighbor(2, 1)
	if next7 != h1.To {
		t.Fatalf("mod reduction wrong: %d vs %d", next7, h1.To)
	}
}

func TestTraversalStepIsolated(t *testing.T) {
	g := graph.New()
	g.EnsureNode(0)
	if _, err := TraversalStep(g, 0, 1); err == nil {
		t.Fatal("isolated traversal step should fail")
	}
}

func TestTraversalTrace(t *testing.T) {
	g := gen.Complete(4)
	trace, err := TraversalTrace(g, 0, Precomputed{0, 1, 2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 4 || trace[0] != 0 {
		t.Fatalf("trace = %v", trace)
	}
}

func TestTraversalCoversComplete(t *testing.T) {
	g := gen.Complete(4)
	seq := &Pseudorandom{Seed: 3, N: 4, Base: 3}
	ok, err := TraversalCovers(g, 0, seq)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("pseudorandom traversal should cover K4")
	}
}

func TestTraversalCoverStepsBudget(t *testing.T) {
	g := gen.Path(10)
	_, ok, err := TraversalCoverSteps(g, 0, Precomputed{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("2 steps cannot cover a 10-path")
	}
	if _, _, err := TraversalCoverSteps(g, 99, Precomputed{0}); !errors.Is(err, graph.ErrNodeNotFound) {
		t.Fatalf("error = %v", err)
	}
	if _, err := TraversalCovers(g, 99, Precomputed{0}); !errors.Is(err, graph.ErrNodeNotFound) {
		t.Fatalf("error = %v", err)
	}
}

func TestTraversalSingleton(t *testing.T) {
	g := graph.New()
	g.EnsureNode(5)
	steps, ok, err := TraversalCoverSteps(g, 5, Precomputed{0})
	if err != nil || !ok || steps != 0 {
		t.Fatalf("singleton = (%d,%v,%v)", steps, ok, err)
	}
}

// TestTraversalNotReversible demonstrates why the paper uses exploration
// sequences: two different arrival edges at the same node continue to the
// same successor under a traversal step (information is lost), whereas
// exploration steps from distinct arrival ports diverge and can be undone.
func TestTraversalNotReversible(t *testing.T) {
	g := gen.Complete(4)
	// Traversal: successor depends only on (node, t).
	a, err := TraversalStep(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TraversalStep(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("traversal step must ignore arrival edge")
	}
	// Exploration: successor depends on the arrival port, so the step is
	// invertible.
	p0, err := Step(g, Position{Node: 0, InPort: 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := Step(g, Position{Node: 0, InPort: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p0 == p1 {
		t.Fatal("exploration steps from distinct ports should diverge on K4")
	}
}

func TestFindVerifiedN2(t *testing.T) {
	corpus, err := EnumerateCubicPairings(2)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := FindVerified(corpus, 64, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(seq, corpus); err != nil {
		t.Fatalf("returned sequence does not verify: %v", err)
	}
}

func TestFindVerifiedErrors(t *testing.T) {
	corpus, err := EnumerateCubicPairings(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FindVerified(corpus, 0, 2, 1); err == nil {
		t.Fatal("zero length should error")
	}
	// Length 1 cannot cover 2-node graphs from every edge... it can
	// actually (one step reaches the other node on cross-edge labelings,
	// but loop labelings need more). Use an adversarially short length.
	if _, err := FindVerified(corpus, 1, 4, 1); !errors.Is(err, ErrNotUniversal) {
		t.Fatalf("error = %v, want ErrNotUniversal", err)
	}
}

func TestMinimalPrefix(t *testing.T) {
	corpus, err := EnumerateCubicPairings(2)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := FindVerified(corpus, 64, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	minSeq, err := MinimalPrefix(seq, corpus)
	if err != nil {
		t.Fatal(err)
	}
	if len(minSeq) > len(seq) {
		t.Fatal("minimal prefix longer than input")
	}
	if err := Verify(minSeq, corpus); err != nil {
		t.Fatalf("minimal prefix does not verify: %v", err)
	}
	if len(minSeq) > 1 {
		if err := Verify(minSeq[:len(minSeq)-1], corpus); err == nil {
			t.Fatal("prefix is not minimal: one shorter still verifies")
		}
	}
}

func TestMinimalPrefixRejectsBadInput(t *testing.T) {
	corpus, err := EnumerateCubicPairings(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MinimalPrefix(make(Precomputed, 3), corpus); !errors.Is(err, ErrNotUniversal) {
		t.Fatalf("error = %v, want ErrNotUniversal", err)
	}
}

// TestCertifiedSmall produces the repository's strongest Definition 3
// artifact: a certified universal exploration sequence for every labeled
// cubic multigraph on ≤ 4 nodes, minimized to a locally shortest prefix.
func TestCertifiedSmall(t *testing.T) {
	seq, err := CertifiedSmall(4, 2026)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) == 0 {
		t.Fatal("empty certified sequence")
	}
	t.Logf("certified UES for all labeled cubic multigraphs on <=4 nodes: length %d", len(seq))
	// Re-verify independently against a freshly built exhaustive corpus.
	var corpus []*graph.Graph
	for _, n := range []int{2, 4} {
		gs, err := EnumerateCubicPairings(n)
		if err != nil {
			t.Fatal(err)
		}
		corpus = append(corpus, gs...)
	}
	if err := Verify(seq, corpus); err != nil {
		t.Fatalf("certified sequence failed independent verification: %v", err)
	}
}

func TestCertifiedSmallRejectsBadN(t *testing.T) {
	if _, err := CertifiedSmall(6, 1); err == nil {
		t.Fatal("maxN=6 should be rejected (not exhaustive)")
	}
}

func TestAdversarialLabelingFindsWorseLabeling(t *testing.T) {
	g := gen.CircularLadder(5) // already 3-regular
	seq := &Pseudorandom{Seed: 7, N: g.NumNodes(), Base: 3}
	res, err := AdversarialLabeling(g, seq, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatal("default-length sequence should survive all sampled labelings")
	}
	if res.CoverSteps < res.BaselineSteps {
		t.Fatalf("worst found %d below baseline %d", res.CoverSteps, res.BaselineSteps)
	}
	if res.Tried != 13 {
		t.Fatalf("tried = %d, want 13", res.Tried)
	}
}

func TestAdversarialLabelingDetectsDefeat(t *testing.T) {
	// A deliberately short sequence is defeated by some labeling.
	g := gen.CircularLadder(6)
	short := make(Precomputed, 8)
	res, err := AdversarialLabeling(g, short, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered {
		t.Fatal("an 8-step sequence cannot cover 12 nodes under every labeling")
	}
}

func TestAdversarialLabelingEmptyGraph(t *testing.T) {
	if _, err := AdversarialLabeling(graph.New(), Precomputed{0}, 2, 1); err == nil {
		t.Fatal("empty graph accepted")
	}
}
