package graph

// Mutation journal: a bounded record of edge-level changes since the last
// drain, attached to a Graph so a delta-aware compiler can re-derive only
// the parts of its artifacts the mutations actually touched. The journal
// is deliberately conservative: anything it cannot express as an edge
// add/remove with endpoints and ports — node insertion, wholesale label
// shuffles, overflow past its capacity — marks it dirty, and a dirty
// journal means "diff unknown, rebuild from scratch". That staged
// surrender is what lets the fast path skip nothing it would need.

// DeltaOp is the kind of one journal record.
type DeltaOp uint8

const (
	// DeltaAdd records an edge inserted between U and V, assigned ports
	// PortU and PortV.
	DeltaAdd DeltaOp = iota
	// DeltaRemove records an edge deleted between U and V. PortU/PortV are
	// the ports the edge occupied at deletion time — note RemoveEdge
	// compacts ports by swapping the last port into the freed slot, so
	// later records' ports are always relative to the state they mutated.
	DeltaRemove
)

// Delta is one recorded mutation. For a self-loop U == V and PortU/PortV
// are the loop's two ports at that node.
type Delta struct {
	Op           DeltaOp
	U, V         NodeID
	PortU, PortV int
}

// Journal accumulates Delta records between drains, up to a fixed
// capacity. The zero value is not usable; construct with NewJournal.
// A Journal is not safe for concurrent use — callers synchronize exactly
// as they do for the Graph it watches.
type Journal struct {
	recs   []Delta
	cap    int
	dirty  bool
	reason string
}

// DefaultJournalCap bounds a journal's memory when no explicit capacity is
// chosen: enough for thousands of mutations per compile window, small
// enough to be irrelevant next to the graph itself.
const DefaultJournalCap = 4096

// NewJournal returns an empty journal holding at most capacity records
// before going dirty (capacity <= 0 selects DefaultJournalCap).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCap
	}
	return &Journal{cap: capacity}
}

// record appends one delta, tripping the overflow ladder at capacity.
func (j *Journal) record(d Delta) {
	if j.dirty {
		return
	}
	if len(j.recs) >= j.cap {
		j.MarkDirty("journal overflow")
		return
	}
	j.recs = append(j.recs, d)
}

// MarkDirty poisons the journal: the mutation history is no longer a
// faithful diff and consumers must fall back to a full rebuild. The first
// reason sticks until Reset.
func (j *Journal) MarkDirty(reason string) {
	if !j.dirty {
		j.dirty, j.reason = true, reason
		j.recs = j.recs[:0]
	}
}

// Dirty reports whether the journal has surrendered (overflow or an
// inexpressible mutation) since the last Reset.
func (j *Journal) Dirty() bool { return j.dirty }

// DirtyReason returns why the journal went dirty ("" when clean).
func (j *Journal) DirtyReason() string { return j.reason }

// Len returns the number of buffered records (0 when dirty).
func (j *Journal) Len() int { return len(j.recs) }

// Peek returns the buffered records without consuming them. The slice is
// owned by the journal and valid only until the next mutation or Reset.
func (j *Journal) Peek() []Delta { return j.recs }

// Reset empties the journal and clears the dirty flag: the consumer has
// either applied the diff or rebuilt from scratch, and a new window
// starts now.
func (j *Journal) Reset() {
	j.recs = j.recs[:0]
	j.dirty, j.reason = false, ""
}

// SetJournal attaches j to the graph (nil detaches): every subsequent
// mutation is recorded or, when inexpressible, marks it dirty. Attaching
// starts a new window — the journal is not reset, so a caller can attach
// a pre-poisoned journal deliberately.
func (g *Graph) SetJournal(j *Journal) { g.journal = j }

// Journal returns the attached journal, or nil.
func (g *Graph) Journal() *Journal { return g.journal }
