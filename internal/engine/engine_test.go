package engine

import (
	"context"
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/route"
)

func mustCompile(t *testing.T, g *graph.Graph, cfg Config) *Engine {
	t.Helper()
	e, err := Compile(g, cfg)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return e
}

// TestRouteMatchesOracle checks the Theorem 1 contract on the compiled
// engine: success iff the target is reachable, across several families.
func TestRouteMatchesOracle(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"grid":  gen.Grid(5, 5),
		"cycle": gen.Cycle(12),
		"tree":  gen.RandomTree(16, 3),
		"udg2d": gen.UDG2D(48, 0.2, 5).G,
	}
	for name, g := range graphs {
		e := mustCompile(t, g, Config{Seed: 7})
		dist := g.BFSDist(0)
		for _, v := range g.Nodes() {
			res, err := e.Route(0, v)
			if err != nil {
				t.Fatalf("%s: Route(0,%d): %v", name, v, err)
			}
			_, reachable := dist[v]
			want := netsim.StatusFailure
			if reachable {
				want = netsim.StatusSuccess
			}
			if res.Status != want {
				t.Fatalf("%s: Route(0,%d) = %v, want %v", name, v, res.Status, want)
			}
		}
	}
}

// TestRouteDefinitiveFailure routes to a node outside the component and to
// a nonexistent name; both must terminate with StatusFailure.
func TestRouteDefinitiveFailure(t *testing.T) {
	g, err := gen.DisjointUnion(gen.Grid(3, 3), gen.Cycle(5), 100)
	if err != nil {
		t.Fatal(err)
	}
	e := mustCompile(t, g, Config{Seed: 3})
	for _, dst := range []graph.NodeID{100, 9999} {
		res, err := e.Route(0, dst)
		if err != nil {
			t.Fatalf("Route(0,%d): %v", dst, err)
		}
		if res.Status != netsim.StatusFailure {
			t.Fatalf("Route(0,%d) = %v, want failure", dst, res.Status)
		}
	}
}

// TestEngineMatchesPerCallRouter checks the amortization is pure caching:
// a compiled engine must produce hop-for-hop identical results to a fresh
// route.Router with the same configuration.
func TestEngineMatchesPerCallRouter(t *testing.T) {
	g := gen.UDG2D(40, 0.22, 9).G
	cfg := Config{Seed: 11}
	e := mustCompile(t, g, cfg)
	r, err := route.New(g, route.Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range g.Nodes() {
		got, err1 := e.Route(0, v)
		want, err2 := r.Route(0, v)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("Route(0,%d): engine err %v, router err %v", v, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if got.Status != want.Status || got.Hops != want.Hops ||
			got.ForwardSteps != want.ForwardSteps || got.Bound != want.Bound {
			t.Fatalf("Route(0,%d): engine %+v, per-call router %+v", v, got, want)
		}
	}
}

// TestRouteWithPath checks path endpoints and edge validity.
func TestRouteWithPath(t *testing.T) {
	g := gen.Grid(4, 4)
	e := mustCompile(t, g, Config{Seed: 2})
	res, path, err := e.RouteWithPath(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != netsim.StatusSuccess {
		t.Fatalf("status = %v", res.Status)
	}
	if len(path) < 2 || path[0] != 0 || path[len(path)-1] != 15 {
		t.Fatalf("bad path endpoints: %v", path)
	}
	for i := 1; i < len(path); i++ {
		if !g.HasEdge(path[i-1], path[i]) {
			t.Fatalf("path step %d: no edge %d-%d", i, path[i-1], path[i])
		}
	}
}

// TestBroadcastAndCount checks component coverage and exact counting on a
// disconnected network.
func TestBroadcastAndCount(t *testing.T) {
	g, err := gen.DisjointUnion(gen.Grid(4, 4), gen.Cycle(6), 50)
	if err != nil {
		t.Fatal(err)
	}
	e := mustCompile(t, g, Config{Seed: 5})
	b, err := e.Broadcast(0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Reached != 16 {
		t.Fatalf("Broadcast reached %d, want 16", b.Reached)
	}
	c, err := e.Count(50)
	if err != nil {
		t.Fatal(err)
	}
	if c.OriginalCount != 6 {
		t.Fatalf("Count = %d, want 6", c.OriginalCount)
	}
}

// TestHybrid checks the Corollary 2 race on the compiled engine.
func TestHybrid(t *testing.T) {
	e := mustCompile(t, gen.Grid(5, 5), Config{Seed: 13})
	res, err := e.Hybrid(0, 24, 99)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != netsim.StatusSuccess {
		t.Fatalf("Hybrid status = %v", res.Status)
	}
	if res.Winner == "" {
		t.Fatal("Hybrid winner empty")
	}
}

// TestRouteBatch checks ordering, per-member isolation, and the one-to-many
// fan-out.
func TestRouteBatch(t *testing.T) {
	g := gen.Grid(4, 4)
	e := mustCompile(t, g, Config{Seed: 1, Workers: 3})
	pairs := []Pair{{0, 15}, {0, 7777}, {3, 12}, {5, 5}, {4242, 0}}
	out := e.RouteBatch(context.Background(), pairs)
	if len(out) != len(pairs) {
		t.Fatalf("got %d results, want %d", len(out), len(pairs))
	}
	for i, br := range out {
		if br.Pair != pairs[i] {
			t.Fatalf("result %d is for %+v, want %+v", i, br.Pair, pairs[i])
		}
	}
	if out[0].Err != nil || out[0].Res.Status != netsim.StatusSuccess {
		t.Fatalf("member 0: %+v err %v", out[0].Res, out[0].Err)
	}
	if out[1].Err != nil || out[1].Res.Status != netsim.StatusFailure {
		t.Fatalf("member 1 (absent dst): %+v err %v", out[1].Res, out[1].Err)
	}
	if out[3].Err != nil || out[3].Res.Status != netsim.StatusSuccess {
		t.Fatalf("member 3 (s==t): %+v err %v", out[3].Res, out[3].Err)
	}
	if out[4].Err == nil || !errors.Is(out[4].Err, graph.ErrNodeNotFound) {
		t.Fatalf("member 4 (absent src) err = %v, want ErrNodeNotFound", out[4].Err)
	}

	all := e.RouteAll(context.Background(), 0, g.Nodes())
	for _, br := range all {
		if br.Err != nil || br.Res.Status != netsim.StatusSuccess {
			t.Fatalf("RouteAll member %+v: %v err %v", br.Pair, br.Res, br.Err)
		}
	}
	if e.RouteBatch(nil, nil) == nil {
		t.Fatal("RouteBatch(nil) returned nil slice")
	}
}

// TestRouteBatchCancellation checks the context contract: members not yet
// started when ctx is done are skipped and report the context error.
func TestRouteBatchCancellation(t *testing.T) {
	g := gen.Grid(4, 4)
	e := mustCompile(t, g, Config{Seed: 1, Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: no member may route
	for _, br := range e.RouteAll(ctx, 0, g.Nodes()) {
		if !errors.Is(br.Err, context.Canceled) {
			t.Fatalf("member %+v: err %v, want context.Canceled", br.Pair, br.Err)
		}
		if br.Res != nil {
			t.Fatalf("member %+v routed despite canceled ctx", br.Pair)
		}
	}
	// A live context routes normally.
	for _, br := range e.RouteBatch(context.Background(), []Pair{{0, 15}}) {
		if br.Err != nil || br.Res.Status != netsim.StatusSuccess {
			t.Fatalf("live ctx member: %+v err %v", br.Res, br.Err)
		}
	}
}

// TestStats checks the metric counters and the sequence cache.
func TestStats(t *testing.T) {
	e := mustCompile(t, gen.Grid(4, 4), Config{Seed: 1})
	if s := e.Stats(); s.Queries() != 0 {
		t.Fatalf("fresh engine reports %d queries", s.Queries())
	}
	if _, err := e.Route(0, 15); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Route(0, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Broadcast(0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Count(0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Hybrid(0, 15, 4); err != nil {
		t.Fatal(err)
	}
	e.RouteBatch(context.Background(), []Pair{{0, 1}, {0, 2}})
	s := e.Stats()
	if s.Routes != 4 || s.Broadcasts != 1 || s.Counts != 1 || s.Hybrids != 1 || s.Batches != 1 {
		t.Fatalf("counters off: %+v", s)
	}
	if s.Queries() != 7 {
		t.Fatalf("Queries = %d, want 7", s.Queries())
	}
	if s.Hops <= 0 || s.Rounds <= 0 {
		t.Fatalf("hops/rounds not recorded: %+v", s)
	}
	if s.PeakHeaderBits <= 0 {
		t.Fatalf("peak header bits not recorded: %+v", s)
	}
	if s.SeqCacheHits == 0 {
		t.Fatalf("sequence cache never hit: %+v", s)
	}
	if s.Errors != 0 {
		t.Fatalf("unexpected errors: %+v", s)
	}
	if _, err := e.Route(31337, 0); err == nil {
		t.Fatal("Route from absent source did not error")
	}
	if s := e.Stats(); s.Errors != 1 {
		t.Fatalf("Errors = %d, want 1", s.Errors)
	}
}

// TestNoDegreeReduction exercises the ablation configuration end to end.
func TestNoDegreeReduction(t *testing.T) {
	e := mustCompile(t, gen.Grid(4, 4), Config{Seed: 1, NoDegreeReduction: true})
	res, err := e.Route(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != netsim.StatusSuccess {
		t.Fatalf("status = %v", res.Status)
	}
	// Counting always runs on the reduction (§4), even under the ablation.
	c, err := e.Count(0)
	if err != nil {
		t.Fatal(err)
	}
	if c.OriginalCount != 16 {
		t.Fatalf("Count = %d, want 16", c.OriginalCount)
	}
}

// TestKnownBound exercises the single-round §3 variant.
func TestKnownBound(t *testing.T) {
	g := gen.Grid(4, 4)
	e := mustCompile(t, g, Config{Seed: 1, KnownBound: 64})
	res, err := e.Route(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != netsim.StatusSuccess || len(res.Rounds) != 1 {
		t.Fatalf("known-bound route: %+v", res)
	}
}

// TestCompileErrors checks constructor validation.
func TestCompileErrors(t *testing.T) {
	if _, err := Compile(nil, Config{}); !errors.Is(err, ErrNoGraph) {
		t.Fatalf("Compile(nil) err = %v", err)
	}
	if _, err := CompileWithReduced(gen.Grid(2, 2), nil, Config{}); err == nil {
		t.Fatal("CompileWithReduced(nil reduction) did not error")
	}
}
