package dynamic

import (
	"bytes"
	"testing"

	"repro/internal/degred"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/netsim"
)

// --- World mechanics ---

func TestWorldCloneIsolation(t *testing.T) {
	g := gen.Grid(3, 3)
	w := NewWorld(g, nil)
	if _, _, err := w.AddEdge(0, 8); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 8) {
		t.Fatal("world mutation leaked into the caller's graph")
	}
	if !w.Graph().HasEdge(0, 8) {
		t.Fatal("world lost its own mutation")
	}
}

func TestWorldVersioningAndCompileCache(t *testing.T) {
	w := NewWorld(gen.Cycle(6), nil)
	red1, flat1, err := w.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	red2, flat2, err := w.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	if red1 != red2 || flat1 != flat2 {
		t.Fatal("unchanged version recompiled")
	}
	if w.Recompiles() != 1 {
		t.Fatalf("recompiles = %d, want 1", w.Recompiles())
	}
	v := w.Version()
	if _, _, err := w.AddEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	if w.Version() == v {
		t.Fatal("AddEdge did not bump version")
	}
	red3, _, err := w.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	if red3 == red1 {
		t.Fatal("mutated topology served a stale reduction")
	}
	if w.Recompiles() != 2 {
		t.Fatalf("recompiles = %d, want 2", w.Recompiles())
	}
	if err := w.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWorldFromCompiledReusesEngineArtifacts(t *testing.T) {
	g := gen.Grid(3, 3)
	red, err := degred.Reduce(g)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorldFromCompiled(g, red, nil)
	got, _, err := w.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	if got != red {
		t.Fatal("seeded compile cache was not reused")
	}
	if w.Recompiles() != 0 {
		t.Fatalf("recompiles = %d, want 0 (seeded)", w.Recompiles())
	}
}

func TestRemoveEdgeBetween(t *testing.T) {
	w := NewWorld(gen.Cycle(4), nil)
	if err := w.RemoveEdgeBetween(1, 2); err != nil {
		t.Fatal(err)
	}
	if w.Graph().HasEdge(1, 2) {
		t.Fatal("edge 1-2 still present")
	}
	if err := w.RemoveEdgeBetween(1, 2); err == nil {
		t.Fatal("removing a missing edge succeeded")
	}
	if err := w.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWorldEdgesCanonical(t *testing.T) {
	g := graph.New()
	for i := 0; i < 3; i++ {
		g.EnsureNode(graph.NodeID(i))
	}
	g.AddEdge(0, 1)
	g.AddEdge(0, 1) // parallel
	g.AddEdge(2, 2) // self-loop
	w := NewWorld(g, nil)
	es := w.Edges()
	want := []Edge{{0, 1}, {0, 1}, {2, 2}}
	if len(es) != len(want) {
		t.Fatalf("edges = %v, want %v", es, want)
	}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("edges = %v, want %v", es, want)
		}
	}
}

// --- Schedules ---

// advanceN advances w through n epochs with an idle probe, failing the
// test on any error and validating the graph after every epoch.
func advanceN(t *testing.T, w *World, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := w.Advance(Probe{}); err != nil {
			t.Fatal(err)
		}
		if err := w.Graph().Validate(); err != nil {
			t.Fatalf("epoch %d: %v", w.Epoch(), err)
		}
	}
}

func TestEdgeChurnEvolves(t *testing.T) {
	w := NewWorld(gen.Grid(5, 5), &EdgeChurn{Seed: 3, PDrop: 0.2, AddRate: 1.5})
	before := len(w.Edges())
	advanceN(t, w, 20)
	after := len(w.Edges())
	if w.Version() == 0 {
		t.Fatal("churn never mutated the topology")
	}
	if before == after && w.Epoch() != 20 {
		t.Fatalf("suspicious: %d epochs, edges %d -> %d", w.Epoch(), before, after)
	}
}

func TestMarkovLinksStayWithinUnderlay(t *testing.T) {
	base := gen.Torus(4, 4)
	underlay := make(map[Edge]int)
	for _, e := range NewWorld(base, nil).Edges() {
		underlay[e]++
	}
	w := NewWorld(base, &MarkovLinks{Seed: 5, PDown: 0.3, PUp: 0.4})
	advanceN(t, w, 30)
	for _, e := range w.Edges() {
		if underlay[e] == 0 {
			t.Fatalf("link %v outside the deployed underlay", e)
		}
	}
	if w.Version() == 0 {
		t.Fatal("markov links never flapped")
	}
}

func TestWaypointRederivesGeometry(t *testing.T) {
	geo := gen.UDG2D(30, 0.3, 9)
	sched := &RandomWaypoint{Seed: 21, SpeedMin: 0.02, SpeedMax: 0.08, Radius: 0.3}
	w := NewWorld(geo.G, sched)
	w.SetPositions(geo.Pos)
	advanceN(t, w, 15)
	if !w.HasPositions() {
		t.Fatal("positions lost")
	}
	// Every surviving edge must respect the disk radius; every in-range
	// pair must be connected (the UDG re-derivation invariant).
	nodes := w.Graph().Nodes()
	for i, u := range nodes {
		pu, _ := w.Pos(u)
		for _, v := range nodes[i+1:] {
			pv, _ := w.Pos(v)
			inRange := (pu.Sub(pv)).Dot(pu.Sub(pv)) <= 0.3*0.3
			if inRange != w.Graph().HasEdge(u, v) {
				t.Fatalf("edge %d-%d disagrees with geometry (inRange=%v)", u, v, inRange)
			}
		}
	}
}

func TestWaypointSeedsMissingPositions(t *testing.T) {
	w := NewWorld(gen.Grid(3, 3), &RandomWaypoint{Seed: 4, SpeedMax: 0.1, Radius: 0.5})
	advanceN(t, w, 1)
	if !w.HasPositions() {
		t.Fatal("waypoint did not place position-less nodes")
	}
}

func TestWaypointRequiresRadius(t *testing.T) {
	w := NewWorld(gen.Grid(2, 2), &RandomWaypoint{Seed: 4, SpeedMax: 0.1})
	if err := w.Advance(Probe{}); err == nil {
		t.Fatal("waypoint without radius accepted")
	}
}

// encodeGraph renders a world's graph to the canonical text codec.
func encodeGraph(t *testing.T, w *World) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := w.Graph().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestScheduleDeterminism is the seeded-generator determinism satellite
// for the mobility stack: identical seeds must replay identical topology
// histories, epoch by epoch, for every schedule kind.
func TestScheduleDeterminism(t *testing.T) {
	mk := func(kind string) (*World, *World) {
		spec := Spec{Kind: kind, Seed: 17, PDrop: 0.15, AddRate: 1,
			PDown: 0.2, PUp: 0.3, SpeedMin: 0.01, SpeedMax: 0.1, Radius: 0.3}
		build := func() *World {
			s, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			geo := gen.UDG2D(25, 0.3, 8)
			w := NewWorld(geo.G, s)
			w.SetPositions(geo.Pos)
			return w
		}
		return build(), build()
	}
	for _, kind := range []string{"churn", "markov", "waypoint"} {
		t.Run(kind, func(t *testing.T) {
			a, b := mk(kind)
			for epoch := 0; epoch < 12; epoch++ {
				if err := a.Advance(Probe{}); err != nil {
					t.Fatal(err)
				}
				if err := b.Advance(Probe{}); err != nil {
					t.Fatal(err)
				}
				ea, eb := encodeGraph(t, a), encodeGraph(t, b)
				if !bytes.Equal(ea, eb) {
					t.Fatalf("epoch %d diverged:\n%s\nvs\n%s", epoch+1, ea, eb)
				}
			}
			if a.Version() != b.Version() {
				t.Fatalf("version diverged: %d vs %d", a.Version(), b.Version())
			}
		})
	}
}

// --- Dynamic routing ---

// guarded wraps a schedule and records whether s and t were ever in
// different components after an epoch — the oracle precondition for the
// guaranteed-delivery acceptance check.
type guarded struct {
	inner        Schedule
	s, t         graph.NodeID
	disconnected bool
}

func (g *guarded) Advance(w *World, epoch int, p Probe) error {
	if err := g.inner.Advance(w, epoch, p); err != nil {
		return err
	}
	if _, ok := w.Graph().BFSDist(g.s)[g.t]; !ok {
		g.disconnected = true
	}
	return nil
}

// TestDeliveryUnderMarkovChurn routes many pairs under link flapping and
// verifies every verdict against the decision-time oracle: success means
// t was physically reached; failure must coincide with t being outside
// s's component in the world's instantaneous graph; and on runs where the
// pair never disconnected, delivery is mandatory.
func TestDeliveryUnderMarkovChurn(t *testing.T) {
	base := gen.Torus(5, 5)
	delivered := 0
	for rep := 0; rep < 12; rep++ {
		s, dst := graph.NodeID(0), graph.NodeID(12+rep%12)
		gd := &guarded{inner: &MarkovLinks{Seed: uint64(rep) * 31, PDown: 0.05, PUp: 0.5}, s: s, t: dst}
		w := NewWorld(base, gd)
		res, err := NewRouter(w, Config{Seed: uint64(rep), HopsPerEpoch: 32}).Route(s, dst)
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		switch res.Status {
		case netsim.StatusSuccess:
			delivered++
		case netsim.StatusFailure:
			if _, reachable := w.Graph().BFSDist(s)[dst]; reachable {
				t.Fatalf("rep %d: failure verdict while oracle says reachable", rep)
			}
			if !gd.disconnected {
				t.Fatalf("rep %d: failure verdict on a never-disconnected scenario", rep)
			}
		default:
			t.Fatalf("rep %d: no verdict: %+v", rep, res)
		}
	}
	if delivered == 0 {
		t.Fatal("no route delivered under mild churn")
	}
}

// TestDeliveryUnderMobility runs the full mobility stack: random-waypoint
// motion re-deriving the unit-disk topology each epoch, with the same
// oracle discipline.
func TestDeliveryUnderMobility(t *testing.T) {
	verdicts := 0
	for rep := 0; rep < 6; rep++ {
		geo := gen.UDG2D(30, 0.35, uint64(40+rep))
		sched := &RandomWaypoint{Seed: uint64(rep), SpeedMin: 0.01, SpeedMax: 0.05, Radius: 0.35}
		w := NewWorld(geo.G, sched)
		w.SetPositions(geo.Pos)
		s, dst := graph.NodeID(0), graph.NodeID(29)
		res, err := NewRouter(w, Config{Seed: uint64(rep) ^ 0xd, HopsPerEpoch: 48}).Route(s, dst)
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		switch res.Status {
		case netsim.StatusSuccess:
			verdicts++
		case netsim.StatusFailure:
			if _, reachable := w.Graph().BFSDist(s)[dst]; reachable {
				t.Fatalf("rep %d: failure verdict while oracle says reachable", rep)
			}
			verdicts++
		}
	}
	if verdicts == 0 {
		t.Fatal("mobility runs produced no verdicts at all")
	}
}

// TestAdversarialLinkCutter pins the acceptance scenario: on a
// 2-edge-connected underlay the cutter removes at most one link at a
// time, so s and t stay connected at every epoch and delivery is
// guaranteed — while the walk demonstrably suffers (resumptions happen).
func TestAdversarialLinkCutter(t *testing.T) {
	base := gen.Torus(4, 4) // 4-regular, 2-edge-connected
	sawResumption := false
	for rep := 0; rep < 8; rep++ {
		cutter := &LinkCutter{}
		gd := &guarded{inner: cutter, s: 0, t: 10}
		w := NewWorld(base, gd)
		res, err := NewRouter(w, Config{Seed: uint64(rep), HopsPerEpoch: 16}).Route(0, 10)
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		if gd.disconnected {
			t.Fatalf("rep %d: cutter disconnected a 2-edge-connected underlay", rep)
		}
		if res.Status != netsim.StatusSuccess {
			t.Fatalf("rep %d: adversary defeated delivery on an always-connected scenario: %+v", rep, res)
		}
		if res.Resumptions > 0 {
			sawResumption = true
		}
	}
	if !sawResumption {
		t.Error("the adversary never actually forced a snapshot migration")
	}
}

// TestResumptionAccounting checks that a churning scenario reports its
// dynamics: epochs advanced, recompiles paid, resumptions taken.
func TestResumptionAccounting(t *testing.T) {
	w := NewWorld(gen.Torus(5, 5), &MarkovLinks{Seed: 2, PDown: 0.15, PUp: 0.4})
	res, err := NewRouter(w, Config{Seed: 3, HopsPerEpoch: 16}).Route(0, 18)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs == 0 {
		t.Error("no epochs elapsed")
	}
	if res.Recompiles == 0 || res.Resumptions == 0 {
		t.Errorf("expected churn to force recompiles+resumptions, got %+v", res)
	}
	if res.Hops <= 0 || res.MaxHeaderBits <= 0 {
		t.Errorf("missing accounting: %+v", res)
	}
	if w.Epoch() != res.Epochs {
		t.Errorf("world epoch %d != result epochs %d", w.Epoch(), res.Epochs)
	}
}

// TestRouteErrors covers the argument-validation paths.
func TestRouteErrors(t *testing.T) {
	w := NewWorld(gen.Grid(2, 2), nil)
	r := NewRouter(w, Config{})
	if _, err := r.Route(99, 0); err == nil {
		t.Fatal("unknown source accepted")
	}
	res, err := r.Route(2, 2)
	if err != nil || res.Status != netsim.StatusSuccess || res.Hops != 0 {
		t.Fatalf("self route: %+v, %v", res, err)
	}
}

// TestSpecBuild covers the spec constructor table.
func TestSpecBuild(t *testing.T) {
	for _, tc := range []struct {
		spec Spec
		ok   bool
	}{
		{Spec{Kind: "static"}, true},
		{Spec{Kind: ""}, true},
		{Spec{Kind: "churn", PDrop: 0.1}, true},
		{Spec{Kind: "markov", PDown: 0.1, PUp: 0.2}, true},
		{Spec{Kind: "waypoint", Radius: 0.3}, true},
		{Spec{Kind: "waypoint"}, false}, // no radius
		{Spec{Kind: "adversary"}, true},
		{Spec{Kind: "nope"}, false},
	} {
		_, err := tc.spec.Build()
		if (err == nil) != tc.ok {
			t.Errorf("Build(%+v): err=%v, want ok=%v", tc.spec, err, tc.ok)
		}
	}
}
