package dynamic

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

// structSig renders a world's compiled topology in gadget-ID-free form:
// every (original, slot, port) half-edge names its far side the same way.
// Delta and full compiles of the same topology version must be equal under
// this signature — it is exactly the port-preserving isomorphism the delta
// compiler promises.
func structSig(t *testing.T, w *World) string {
	t.Helper()
	red, flat, err := w.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	type ref struct {
		orig graph.NodeID
		slot int
	}
	refs := make(map[graph.NodeID]ref, flat.NumNodes())
	for _, v := range w.Graph().Nodes() {
		for j, gid := range red.Gadget(v) {
			refs[gid] = ref{orig: v, slot: j}
		}
	}
	comps := flat.Components()
	lines := make([]string, 0, 4*flat.NumNodes())
	for i := 0; i < flat.NumNodes(); i++ {
		a := refs[flat.ID(int32(i))]
		lines = append(lines, fmt.Sprintf("%d.%d@c%d", a.orig, a.slot, comps.Of(int32(i))))
		for p := int32(0); p < 3; p++ {
			h := flat.Half(int32(i), p)
			b := refs[flat.ID(h.To)]
			lines = append(lines, fmt.Sprintf("%d.%d:%d->%d.%d:%d", a.orig, a.slot, p, b.orig, b.slot, h.Port))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// routePair routes s→t with a frozen epoch clock (so the comparison run
// perturbs neither world) and returns the result.
func routePair(t *testing.T, w *World, s, dst graph.NodeID) *Result {
	t.Helper()
	res, err := NewRouter(w, Config{Seed: 9, HopsPerEpoch: -1}).Route(s, dst)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// compareWorlds asserts that the delta-compiled and full-compiled worlds
// are indistinguishable: same topology accounting, isomorphic snapshots,
// identical canonical components, and identical routing behaviour on
// sampled pairs — verdicts, hops, header bits, and certificate fields.
func compareWorlds(t *testing.T, ctx string, wd, wf *World, routed bool) {
	t.Helper()
	sd, sf := wd.Snapshot(), wf.Snapshot()
	if sd.Nodes != sf.Nodes || sd.Links != sf.Links || sd.Version != sf.Version {
		t.Fatalf("%s: worlds diverged: delta %+v, full %+v", ctx, sd, sf)
	}
	if gd, gf := structSig(t, wd), structSig(t, wf); gd != gf {
		t.Fatalf("%s: compiled snapshots differ structurally:\ndelta:\n%s\nfull:\n%s", ctx, gd, gf)
	}
	if !routed {
		return
	}
	_, fd, err := wd.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	n := graph.NodeID(sd.Nodes)
	pairs := [][2]graph.NodeID{{0, n - 1}, {1, n / 2}, {n / 3, 0}}
	// When the topology is split, add a provably-unreachable pair so the
	// certificate path is compared too.
	if comps := fd.Components(); comps.Count() > 1 {
		var a, b graph.NodeID = -1, -1
		for i := int32(0); i < int32(fd.NumNodes()); i++ {
			if comps.Of(i) == 0 && a < 0 {
				a = fd.OriginalOf(i)
			}
			if comps.Of(i) == 1 && b < 0 {
				b = fd.OriginalOf(i)
			}
		}
		if a >= 0 && b >= 0 {
			pairs = append(pairs, [2]graph.NodeID{a, b})
		}
	}
	for _, p := range pairs {
		rd := routePair(t, wd, p[0], p[1])
		rf := routePair(t, wf, p[0], p[1])
		if rd.Status != rf.Status || rd.Hops != rf.Hops || rd.Rounds != rf.Rounds ||
			rd.MaxHeaderBits != rf.MaxHeaderBits || rd.Bound != rf.Bound {
			t.Fatalf("%s: route %d->%d diverged:\ndelta %+v\nfull  %+v", ctx, p[0], p[1], rd, rf)
		}
		if (rd.Certificate == nil) != (rf.Certificate == nil) {
			t.Fatalf("%s: route %d->%d: delta certificate %v, full certificate %v",
				ctx, p[0], p[1], rd.Certificate, rf.Certificate)
		}
		if rd.Certificate != nil {
			cd, cf := rd.Certificate, rf.Certificate
			if cd.SrcComponent != cf.SrcComponent || cd.DstComponent != cf.DstComponent ||
				cd.Components != cf.Components {
				t.Fatalf("%s: route %d->%d certificates diverged:\ndelta %+v\nfull  %+v",
					ctx, p[0], p[1], cd, cf)
			}
		}
	}
}

// TestDeltaCompileMatchesFull is the tentpole differential: two identical
// worlds under identical schedules, one compiling through the journal/delta
// path and one forced through full rebuilds, must stay indistinguishable
// across >1000 churned epochs — structure, canonical components, verdicts,
// hop counts, header bits, and certificate fields.
func TestDeltaCompileMatchesFull(t *testing.T) {
	cases := []struct {
		name   string
		epochs int
		mk     func() Schedule
		// minDeltaFrac is the fraction of rebuilds that must take the
		// delta path — the O(diff) promise, not just correctness.
		minDeltaFrac float64
	}{
		{"edge-churn", 400, func() Schedule { return &EdgeChurn{Seed: 21, PDrop: 0.04, AddRate: 1.5} }, 0.5},
		{"markov-links", 400, func() Schedule { return &MarkovLinks{Seed: 22, PDown: 0.015, PUp: 0.25} }, 0.5},
		{"random-waypoint", 250, func() Schedule {
			return &RandomWaypoint{Seed: 23, SpeedMin: 0.005, SpeedMax: 0.02, Radius: 0.35}
		}, 0.0},
	}
	total := 0
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			base := gen.Torus(6, 6)
			wd := NewWorld(base, tc.mk())
			wf := NewWorld(base, tc.mk())
			wf.SetDeltaCompilation(false)
			for e := 1; e <= tc.epochs; e++ {
				if err := wd.Advance(Probe{}); err != nil {
					t.Fatal(err)
				}
				if err := wf.Advance(Probe{}); err != nil {
					t.Fatal(err)
				}
				compareWorlds(t, fmt.Sprintf("%s epoch %d", tc.name, e), wd, wf, e%10 == 0)
			}
			sd := wd.Snapshot()
			if sd.FullRecompiles+sd.DeltaRecompiles != sd.Recompiles {
				t.Fatalf("split accounting: %d delta + %d full != %d total",
					sd.DeltaRecompiles, sd.FullRecompiles, sd.Recompiles)
			}
			if frac := float64(sd.DeltaRecompiles) / float64(sd.Recompiles); frac < tc.minDeltaFrac {
				t.Fatalf("only %d of %d rebuilds (%.0f%%) took the delta path, want >= %.0f%%",
					sd.DeltaRecompiles, sd.Recompiles, 100*frac, 100*tc.minDeltaFrac)
			}
			if sf := wf.Snapshot(); sf.DeltaRecompiles != 0 {
				t.Fatalf("delta-disabled world took the delta path %d times", sf.DeltaRecompiles)
			}
		})
		total += tc.epochs
	}

	// The adversarial schedule reacts to in-flight walks, so it is driven
	// by real routes on each world; walk parity makes the adversary's cuts
	// — and therefore the topologies — identical on both sides.
	t.Run("link-cutter", func(t *testing.T) {
		base := gen.Torus(6, 6)
		wd := NewWorld(base, &LinkCutter{})
		wf := NewWorld(base, &LinkCutter{})
		wf.SetDeltaCompilation(false)
		for i := 0; i < 60; i++ {
			s, dst := graph.NodeID(i%36), graph.NodeID((i*7+11)%36)
			rd, err := NewRouter(wd, Config{Seed: 31, HopsPerEpoch: 8}).Route(s, dst)
			if err != nil {
				t.Fatal(err)
			}
			rf, err := NewRouter(wf, Config{Seed: 31, HopsPerEpoch: 8}).Route(s, dst)
			if err != nil {
				t.Fatal(err)
			}
			if rd.Status != rf.Status || rd.Hops != rf.Hops || rd.Epochs != rf.Epochs ||
				rd.MaxHeaderBits != rf.MaxHeaderBits || rd.Resumptions != rf.Resumptions {
				t.Fatalf("route %d (%d->%d) diverged under the adversary:\ndelta %+v\nfull  %+v",
					i, s, dst, rd, rf)
			}
			compareWorlds(t, fmt.Sprintf("after route %d", i), wd, wf, false)
		}
		sd := wd.Snapshot()
		if sd.Epoch < 200 {
			t.Fatalf("adversary run advanced only %d epochs", sd.Epoch)
		}
		if sd.DeltaRecompiles < sd.Recompiles/2 {
			t.Fatalf("adversary churn: only %d of %d rebuilds took the delta path",
				sd.DeltaRecompiles, sd.Recompiles)
		}
		total += sd.Epoch
	})

	if total < 1000 {
		t.Fatalf("differential covered only %d churned epochs, want >= 1000", total)
	}
}

// TestCompiledConcurrentChurn hammers World.Compiled from many goroutines
// while a mutator churns the topology: every version must be rebuilt at
// most once (concurrent routers share the rebuild), accounting must never
// tear (delta + full == total, observed == total), and the compile cache
// must end warm. Run with -race to check the locking, not just the
// counters.
func TestCompiledConcurrentChurn(t *testing.T) {
	w := NewWorld(gen.Torus(6, 6), &EdgeChurn{Seed: 5, PDrop: 0.02, AddRate: 0.8})
	var obsMu sync.Mutex
	built := make(map[uint64]int)
	observed := 0
	w.SetRecompileObserver(func(path string, version uint64, d time.Duration) {
		obsMu.Lock()
		built[version]++
		observed++
		obsMu.Unlock()
	})

	const (
		readers     = 8
		readerCalls = 400
		epochs      = 200
	)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < readerCalls; j++ {
				if _, _, err := w.Compiled(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// The mutator churns while the readers hammer, compiling every other
	// epoch itself so the delta path is exercised even if the readers
	// drain their quota early.
	for e := 0; e < epochs; e++ {
		if err := w.Advance(Probe{}); err != nil {
			t.Fatal(err)
		}
		if e%2 == 0 {
			if _, _, err := w.Compiled(); err != nil {
				t.Fatal(err)
			}
		}
		runtime.Gosched()
	}
	wg.Wait()
	if _, _, err := w.Compiled(); err != nil {
		t.Fatal(err)
	}

	s := w.Snapshot()
	obsMu.Lock()
	defer obsMu.Unlock()
	for v, n := range built {
		if n != 1 {
			t.Errorf("version %d was rebuilt %d times", v, n)
		}
	}
	if int64(observed) != s.Recompiles {
		t.Errorf("observer saw %d rebuilds, accounting says %d", observed, s.Recompiles)
	}
	if s.DeltaRecompiles+s.FullRecompiles != s.Recompiles {
		t.Errorf("torn split: %d delta + %d full != %d total",
			s.DeltaRecompiles, s.FullRecompiles, s.Recompiles)
	}
	if s.DeltaRecompileTime+s.FullRecompileTime != s.RecompileTime {
		t.Errorf("torn time split: %v + %v != %v",
			s.DeltaRecompileTime, s.FullRecompileTime, s.RecompileTime)
	}
	if s.DeltaRecompiles == 0 {
		t.Error("no rebuild took the delta path under churn")
	}
	if s.CacheHits == 0 {
		t.Error("no Compiled call hit the cache despite 8 hammering readers")
	}
}
