package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
)

// memNet is an in-memory gossip fabric: addresses resolve to Gossip
// instances and Exchange calls HandleExchange directly. Killing a member
// removes its address, so exchanges to it fail the way a closed socket
// would. Safe for concurrent use (the -race convergence test ticks
// members from separate goroutines).
type memNet struct {
	mu    sync.Mutex
	nodes map[string]*Gossip
}

func newMemNet() *memNet { return &memNet{nodes: map[string]*Gossip{}} }

func (n *memNet) add(addr string, g *Gossip) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[addr] = g
}

func (n *memNet) kill(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, addr)
}

func (n *memNet) Exchange(_ context.Context, addr string, states []PeerState) ([]PeerState, error) {
	n.mu.Lock()
	g := n.nodes[addr]
	n.mu.Unlock()
	if g == nil {
		return nil, fmt.Errorf("memnet: %s unreachable", addr)
	}
	return g.HandleExchange(states), nil
}

// swapTransport lets a test run a chaotic phase and then settle on a
// clean fabric without rebuilding the gossip instances.
type swapTransport struct {
	mu sync.Mutex
	t  Transport
}

func (s *swapTransport) set(t Transport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.t = t
}

func (s *swapTransport) Exchange(ctx context.Context, addr string, states []PeerState) ([]PeerState, error) {
	s.mu.Lock()
	t := s.t
	s.mu.Unlock()
	return t.Exchange(ctx, addr, states)
}

// buildCluster wires n members over the given transports (one per member;
// nil entries take the shared fabric) with member 0's address as the only
// seed.
func buildCluster(t *testing.T, net *memNet, n int, wrap func(i int, base Transport) Transport) []*Gossip {
	t.Helper()
	gs := make([]*Gossip, n)
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("mem://node-%d", i)
		var tr Transport = net
		if wrap != nil {
			tr = wrap(i, net)
		}
		g := New(Config{
			Self:      PeerState{Name: fmt.Sprintf("node-%d", i), Addr: addr},
			Seeds:     []string{"mem://node-0"},
			Fanout:    2,
			Transport: tr,
			Seed:      uint64(1000 + i),
		})
		net.add(addr, g)
		gs[i] = g
	}
	return gs
}

// ringVersions returns each member's current ring version.
func ringVersions(gs []*Gossip, vnodes int) []uint64 {
	out := make([]uint64, len(gs))
	for i, g := range gs {
		out[i] = BuildRing(g.Membership().Alive(), vnodes).Version()
	}
	return out
}

func converged(gs []*Gossip) bool {
	vs := ringVersions(gs, 1)
	for _, v := range vs[1:] {
		if v != vs[0] {
			return false
		}
	}
	return true
}

// tickAll runs one synchronized protocol round: every member ticks
// concurrently, as in production where cadences are unsynchronized —
// under -race this is also the data-race probe for the whole package.
func tickAll(gs []*Gossip, skip map[int]bool) {
	var wg sync.WaitGroup
	for i, g := range gs {
		if skip[i] {
			continue
		}
		wg.Add(1)
		go func(g *Gossip) {
			defer wg.Done()
			g.Tick(context.Background())
		}(g)
	}
	wg.Wait()
}

// TestGossipConvergesAndSurvivesKill is the headline protocol test: 5
// members bootstrap from one seed and converge; then one is killed
// (silently — no Leave) and the survivors re-converge to a 4-member
// ring within the failure-detector bound, all agreeing on a new ring
// version and on every key's owner.
func TestGossipConvergesAndSurvivesKill(t *testing.T) {
	net := newMemNet()
	gs := buildCluster(t, net, 5, nil)

	// Phase 1: bootstrap. With fanout 2 and push-pull, 5 members learn
	// the full view in a handful of rounds.
	bootTicks := 0
	for ; bootTicks < 20; bootTicks++ {
		tickAll(gs, nil)
		if converged(gs) && len(gs[0].Membership().Alive()) == 5 {
			break
		}
	}
	if !converged(gs) || len(gs[2].Membership().Alive()) != 5 {
		t.Fatalf("cluster did not bootstrap within 20 ticks: %d alive at node-2, versions %v",
			len(gs[2].Membership().Alive()), ringVersions(gs, 1))
	}
	t.Logf("bootstrap converged in %d ticks", bootTicks+1)

	// Phase 2: kill node-3 without ceremony. Survivors must suspect it
	// after suspectAfter ticks of silence, declare it dead deadAfter
	// later, and agree on the shrunken ring. Bound: the two timers plus
	// a few propagation rounds.
	net.kill("mem://node-3")
	survivors := []*Gossip{gs[0], gs[1], gs[2], gs[4]}
	skip := map[int]bool{3: true}
	const bound = DefaultSuspectAfterTicks + DefaultDeadAfterTicks + 10
	killTicks := 0
	for ; killTicks < bound; killTicks++ {
		tickAll(gs, skip)
		if converged(survivors) && len(survivors[0].Membership().Alive()) == 4 {
			break
		}
	}
	if killTicks == bound {
		t.Fatalf("survivors did not converge to 4 members within %d ticks; alive at node-0: %d, versions %v",
			bound, len(gs[0].Membership().Alive()), ringVersions(survivors, 1))
	}
	t.Logf("kill converged in %d ticks (bound %d)", killTicks+1, bound)

	// Converged versions must agree — and so must every key's owner (the
	// placement-level wrong_verdicts==0 analog: no two shards may ever
	// disagree about who serves a key).
	assertOwnerAgreement(t, survivors, "node-3")
}

// assertOwnerAgreement checks that every survivor places 1000 sampled
// keys identically and never on deadName.
func assertOwnerAgreement(t *testing.T, gs []*Gossip, deadName string) {
	t.Helper()
	rings := make([]*Ring, len(gs))
	for i, g := range gs {
		rings[i] = BuildRing(g.Membership().Alive(), 64)
	}
	for _, v := range rings[1:] {
		if v.Version() != rings[0].Version() {
			t.Fatalf("ring versions diverge after convergence: %v", ringVersions(gs, 64))
		}
	}
	divergent := 0
	for _, k := range keys(1000) {
		o0, ok := rings[0].Owner(k)
		if !ok {
			t.Fatalf("no owner for %q on a non-empty ring", k)
		}
		if o0.Name == deadName {
			t.Fatalf("key %q placed on dead member %s", k, deadName)
		}
		for _, r := range rings[1:] {
			if o, _ := r.Owner(k); o != o0 {
				divergent++
			}
		}
	}
	if divergent != 0 {
		t.Fatalf("%d divergent placements across converged members, want 0", divergent)
	}
}

// TestGossipConvergesUnderChaos re-runs bootstrap and kill with the
// repo's fault injector dropping ~30%% of gossip messages and delaying
// the rest: the protocol must still converge (within a looser bound) and
// the final placements must still be unanimous.
func TestGossipConvergesUnderChaos(t *testing.T) {
	net := newMemNet()
	swaps := make([]*swapTransport, 5)
	gs := buildCluster(t, net, 5, func(i int, base Transport) Transport {
		inj := chaos.New(chaos.Config{
			Seed:             uint64(7000 + i),
			RequestFailRate:  0.3,
			RequestDelay:     200 * time.Microsecond,
			RequestDelayRate: 0.5,
		})
		sw := &swapTransport{t: &ChaosTransport{T: base, Inj: inj}}
		swaps[i] = sw
		return sw
	})

	// Bootstrap under loss: allow a generous tick budget.
	for i := 0; i < 60; i++ {
		tickAll(gs, nil)
		if converged(gs) && len(gs[0].Membership().Alive()) == 5 {
			break
		}
	}
	if !converged(gs) || len(gs[0].Membership().Alive()) != 5 {
		t.Fatalf("cluster did not bootstrap under chaos: %d alive, versions %v",
			len(gs[0].Membership().Alive()), ringVersions(gs, 1))
	}

	// Kill one member while messages are still dropping.
	net.kill("mem://node-1")
	survivors := []*Gossip{gs[0], gs[2], gs[3], gs[4]}
	skip := map[int]bool{1: true}
	for i := 0; i < 80; i++ {
		tickAll(gs, skip)
		if converged(survivors) && len(survivors[0].Membership().Alive()) == 4 {
			break
		}
	}

	// Storm over: lift the injection and let the protocol settle. The
	// timers may have suspected healthy-but-unlucky peers mid-storm;
	// refutation must heal all of that and land everyone on one ring.
	for _, sw := range swaps {
		sw.set(net)
	}
	for i := 0; i < 20; i++ {
		tickAll(gs, skip)
		if converged(survivors) && len(survivors[0].Membership().Alive()) == 4 {
			break
		}
	}
	if !converged(survivors) || len(survivors[0].Membership().Alive()) != 4 {
		t.Fatalf("survivors did not converge after chaos: alive=%d versions=%v",
			len(survivors[0].Membership().Alive()), ringVersions(survivors, 1))
	}
	assertOwnerAgreement(t, survivors, "node-1")

	var st Stats
	for _, g := range gs {
		s := g.Stats()
		st.Exchanges += s.Exchanges
		st.Failures += s.Failures
	}
	if st.Failures == 0 {
		t.Fatal("chaos run recorded zero dropped exchanges — injector not wired")
	}
	t.Logf("chaos run: %d exchanges, %d dropped", st.Exchanges, st.Failures)
}

// TestGossipLeaveSpreadsImmediately: a deliberate Leave pushes the death
// verdict in one round — peers do not wait out the failure detector.
func TestGossipLeaveSpreadsImmediately(t *testing.T) {
	net := newMemNet()
	gs := buildCluster(t, net, 3, nil)
	for i := 0; i < 10; i++ {
		tickAll(gs, nil)
	}
	if len(gs[0].Membership().Alive()) != 3 {
		t.Fatalf("bootstrap failed: %d alive", len(gs[0].Membership().Alive()))
	}

	gs[2].Leave(context.Background())
	for i, g := range gs[:2] {
		alive := g.Membership().Alive()
		if len(alive) != 2 {
			t.Fatalf("node-%d still sees %d alive right after leave — verdict should arrive with the leave push", i, len(alive))
		}
		for _, p := range alive {
			if p.Name == "node-2" {
				t.Fatalf("node-%d still counts the leaver alive", i)
			}
		}
	}

	// And the tombstone holds: stale alive gossip about the leaver must
	// not resurrect it.
	gs[0].HandleExchange([]PeerState{{Name: "node-2", Addr: "mem://node-2", Incarnation: 0, Heartbeat: 99, Status: StatusAlive}})
	for _, p := range gs[0].Membership().Alive() {
		if p.Name == "node-2" {
			t.Fatal("stale gossip resurrected a left member over its tombstone")
		}
	}
}

// TestMembershipRefutation: a suspicion about self is refuted with an
// incarnation bump that wins the merge everywhere.
func TestMembershipRefutation(t *testing.T) {
	m := NewMembership(PeerState{Name: "a", Addr: "mem://a"}, 0, 0)
	m.Merge([]PeerState{{Name: "a", Addr: "mem://a", Incarnation: 4, Status: StatusSuspect}})
	self := m.Self()
	if self.Status != StatusAlive || self.Incarnation != 5 {
		t.Fatalf("refutation gave %s/inc=%d, want alive/inc=5", self.Status, self.Incarnation)
	}

	// The refuted state must supersede the suspicion on any other member.
	other := NewMembership(PeerState{Name: "b", Addr: "mem://b"}, 0, 0)
	other.Merge([]PeerState{{Name: "a", Addr: "mem://a", Incarnation: 4, Status: StatusSuspect}})
	other.Merge([]PeerState{self})
	for _, p := range other.Snapshot() {
		if p.Name == "a" && (p.Status != StatusAlive || p.Incarnation != 5) {
			t.Fatalf("peer b kept %s/inc=%d after refutation", p.Status, p.Incarnation)
		}
	}
}

// TestSupersedesPrecedence pins the merge ordering the protocol depends
// on: incarnation beats status beats heartbeat.
func TestSupersedesPrecedence(t *testing.T) {
	base := PeerState{Name: "x", Incarnation: 2, Heartbeat: 10, Status: StatusSuspect}
	cases := []struct {
		name string
		n    PeerState
		want bool
	}{
		{"higher incarnation wins despite lower status+beat", PeerState{Name: "x", Incarnation: 3, Heartbeat: 1, Status: StatusAlive}, true},
		{"lower incarnation loses despite death verdict", PeerState{Name: "x", Incarnation: 1, Heartbeat: 99, Status: StatusDead}, false},
		{"equal incarnation, more doomed wins", PeerState{Name: "x", Incarnation: 2, Heartbeat: 1, Status: StatusDead}, true},
		{"equal incarnation, less doomed loses", PeerState{Name: "x", Incarnation: 2, Heartbeat: 99, Status: StatusAlive}, false},
		{"equal incarnation+status, newer beat wins", PeerState{Name: "x", Incarnation: 2, Heartbeat: 11, Status: StatusSuspect}, true},
		{"identical does not supersede", base, false},
	}
	for _, c := range cases {
		if got := supersedes(c.n, base); got != c.want {
			t.Errorf("%s: supersedes=%v, want %v", c.name, got, c.want)
		}
	}
}

// TestStatusJSONRoundTrip: the wire form is the lowercase name, and
// unknown names are rejected rather than zero-valued into "alive".
func TestStatusJSONRoundTrip(t *testing.T) {
	for _, s := range []Status{StatusAlive, StatusSuspect, StatusDead} {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal %v: %v", s, err)
		}
		var back Status
		if err := json.Unmarshal(b, &back); err != nil || back != s {
			t.Fatalf("round trip %v via %s: got %v err %v", s, b, back, err)
		}
	}
	var s Status
	if err := json.Unmarshal([]byte(`"zombie"`), &s); err == nil {
		t.Fatal("unknown status name decoded without error")
	}
	if err := json.Unmarshal([]byte(`7`), &s); err == nil {
		t.Fatal("numeric status decoded without error")
	}
}

func BenchmarkGossipTick(b *testing.B) {
	net := newMemNet()
	gs := make([]*Gossip, 8)
	for i := range gs {
		addr := fmt.Sprintf("mem://bench-%d", i)
		gs[i] = New(Config{
			Self:      PeerState{Name: fmt.Sprintf("bench-%d", i), Addr: addr},
			Seeds:     []string{"mem://bench-0"},
			Fanout:    2,
			Transport: net,
			Seed:      uint64(i),
		})
		net.add(addr, gs[i])
	}
	// Pre-converge so the benchmark measures steady-state rounds.
	for i := 0; i < 10; i++ {
		for _, g := range gs {
			g.Tick(context.Background())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gs[i%len(gs)].Tick(context.Background())
	}
}
