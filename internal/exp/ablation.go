package exp

import (
	"fmt"

	"repro/internal/degred"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/route"
	"repro/internal/ues"
)

// A1ConfirmMode ablates the confirmation mechanism: the paper's reverse
// walk (reversibility of exploration sequences, §2) versus a restart
// confirmation that searches for s with a fresh forward walk.
func A1ConfirmMode(o Options) (*Table, error) {
	t := &Table{
		ID:     "A1",
		Title:  "Ablation: backtrack vs restart confirmation",
		Anchor: "§2 reversibility / §1.2: \"there is no reliable way of returning a confirmation\" without it",
		Columns: []string{"family", "n", "pair", "backtrack hops", "restart hops",
			"restart/backtrack", "verdicts agree"},
	}
	sizes := o.sizes([]int{16, 36, 64}, []int{9, 16})
	reps := o.reps(3, 2)
	for _, n := range sizes {
		k := intSqrt(n)
		fams := []struct {
			name string
			g    *graph.Graph
		}{
			{name: "grid", g: gen.Grid(k, k)},
			{name: "cycle", g: gen.Cycle(n)},
		}
		for _, fam := range fams {
			target := farthestFrom(fam.g, 0)
			var backHops, restartHops []int64
			agree := true
			for rep := 0; rep < reps; rep++ {
				seed := o.Seed + uint64(rep)*211
				rb, err := route.New(fam.g, route.Config{Seed: seed, Confirm: route.ConfirmBacktrack})
				if err != nil {
					return nil, err
				}
				resB, err := rb.Route(0, target)
				if err != nil {
					return nil, err
				}
				rr, err := route.New(fam.g, route.Config{Seed: seed, Confirm: route.ConfirmRestart})
				if err != nil {
					return nil, err
				}
				resR, err := rr.Route(0, target)
				if err != nil {
					return nil, err
				}
				if resB.Status != resR.Status {
					agree = false
				}
				backHops = append(backHops, resB.Hops)
				restartHops = append(restartHops, resR.Hops)
			}
			if !agree {
				return nil, fmt.Errorf("A1 %s n=%d: verdicts diverged", fam.name, n)
			}
			bm, rm := median(backHops), median(restartHops)
			ratio := "n/a"
			if bm > 0 {
				ratio = fmtFloat(float64(rm) / float64(bm))
			}
			t.AddRow(fam.name, fmtInt(fam.g.NumNodes()),
				fmt.Sprintf("0→%d", target), fmtInt64(bm), fmtInt64(rm), ratio, "yes")
		}
	}
	t.AddNote("Verdicts always agree; the cost ratio swings both ways (the restart leg can luck into s quickly or wander).")
	t.AddNote("Only backtracking guarantees the confirmation arrives within the round — restart legs can exhaust the sequence and leave the round inconclusive, which the doubling loop must absorb.")
	return t, nil
}

// A2GrowthFactor ablates the doubling schedule: ×2 (the paper) vs ×4 on
// definitive-failure instances, where every round's full cost is paid.
func A2GrowthFactor(o Options) (*Table, error) {
	t := &Table{
		ID:     "A2",
		Title:  "Ablation: doubling schedule ×2 vs ×4 (failure instances)",
		Anchor: "§4: \"we run universal exploration sequences from s of T_1, T_2, T_4, …\"",
		Columns: []string{"component n", "×2 rounds", "×2 hops", "×4 rounds", "×4 hops",
			"hops ratio ×4/×2"},
	}
	sizes := o.sizes([]int{16, 49, 100}, []int{9, 25})
	for _, n := range sizes {
		k := intSqrt(n)
		u, err := gen.DisjointUnion(gen.Grid(k, k), gen.Cycle(3), 100000)
		if err != nil {
			return nil, err
		}
		var rounds [2]int
		var hops [2]int64
		for i, gf := range []int{2, 4} {
			r, err := route.New(u, route.Config{Seed: o.Seed, GrowthFactor: gf})
			if err != nil {
				return nil, err
			}
			res, err := r.Route(0, 100001)
			if err != nil {
				return nil, err
			}
			if res.Status != netsim.StatusFailure {
				return nil, fmt.Errorf("A2 n=%d gf=%d: expected failure", n, gf)
			}
			rounds[i] = len(res.Rounds)
			hops[i] = res.Hops
		}
		ratio := "n/a"
		if hops[0] > 0 {
			ratio = fmtFloat(float64(hops[1]) / float64(hops[0]))
		}
		t.AddRow(fmtInt(k*k), fmtInt(rounds[0]), fmtInt64(hops[0]),
			fmtInt(rounds[1]), fmtInt64(hops[1]), ratio)
	}
	t.AddNote("×4 reaches a covering bound in fewer rounds but can overshoot the needed sequence length, paying a longer terminal round; the geometric-sum argument behind the paper's poly(|Cs|) bound holds for both.")
	return t, nil
}

// A3LengthFactor ablates the sequence-length constant c in
// L(n) = c·n²·(⌈log₂ n⌉+1): the safety margin between the random-walk
// cover-time envelope and the sequence length actually deployed.
func A3LengthFactor(o Options) (*Table, error) {
	t := &Table{
		ID:     "A3",
		Title:  "Ablation: sequence length constant c (coverage margin)",
		Anchor: "§2: almost any sufficiently long sequence is universal; the constant buys the margin",
		Columns: []string{"c", "graphs covered", "total", "coverage rate",
			"median cover steps / L"},
	}
	sizes := o.sizes([]int{16, 32}, []int{12, 16})
	reps := o.reps(4, 2)
	for _, factor := range []int{1, 2, 4, 8, 16} {
		covered, total := 0, 0
		var fracs []int64 // cover-steps as permille of L
		for _, n := range sizes {
			for rep := 0; rep < reps; rep++ {
				seed := o.Seed + uint64(rep)*1009
				g, err := gen.RandomRegularMulti(n, 3, seed)
				if err != nil {
					return nil, err
				}
				if !g.IsConnected() {
					continue
				}
				g.ShuffleLabels(seed ^ 0xa3)
				seq := &ues.Pseudorandom{Seed: o.Seed, N: n, Base: 3, LengthFactor: factor}
				steps, ok, err := ues.CoverSteps(g, ues.Start(0), seq)
				if err != nil {
					return nil, err
				}
				total++
				if ok {
					covered++
					fracs = append(fracs, int64(steps)*1000/int64(seq.Len()))
				}
			}
		}
		medFrac := "n/a"
		if len(fracs) > 0 {
			medFrac = fmtFloat(float64(median(fracs)) / 1000)
		}
		t.AddRow(fmtInt(factor), fmtInt(covered), fmtInt(total),
			fmtRate(covered, total), medFrac)
	}
	t.AddNote("Already c=1 covers every sampled instance; the default c=8 leaves an order-of-magnitude margin, mirroring the paper's 'almost any sufficiently long sequence is universal'.")
	return t, nil
}

// A4DegreeReduction ablates the Figure 1 gadget: walking the original
// irregular graph with full-range directions versus the 3-regular
// reduction.
func A4DegreeReduction(o Options) (*Table, error) {
	t := &Table{
		ID:     "A4",
		Title:  "Ablation: routing with vs without degree reduction",
		Anchor: "§3: reduction to 3-regular is needed only to apply Theorem 4; the walk rule itself is degree-generic",
		Columns: []string{"family", "n", "reduced hops", "direct hops", "direct/reduced",
			"verdicts agree"},
	}
	sizes := o.sizes([]int{16, 36, 64}, []int{9, 16})
	for _, n := range sizes {
		k := intSqrt(n)
		fams := []struct {
			name string
			g    *graph.Graph
		}{
			{name: "grid", g: gen.Grid(k, k)},
			{name: "star", g: gen.Star(n)},
		}
		for _, fam := range fams {
			target := farthestFrom(fam.g, 0)
			red, err := route.New(fam.g, route.Config{Seed: o.Seed})
			if err != nil {
				return nil, err
			}
			resR, err := red.Route(0, target)
			if err != nil {
				return nil, err
			}
			direct, err := route.New(fam.g, route.Config{Seed: o.Seed, NoDegreeReduction: true})
			if err != nil {
				return nil, err
			}
			resD, err := direct.Route(0, target)
			if err != nil {
				return nil, err
			}
			if resR.Status != resD.Status {
				return nil, fmt.Errorf("A4 %s n=%d: verdicts diverged", fam.name, n)
			}
			ratio := "n/a"
			if resR.Hops > 0 {
				ratio = fmtFloat(float64(resD.Hops) / float64(resR.Hops))
			}
			t.AddRow(fam.name, fmtInt(fam.g.NumNodes()), fmtInt64(resR.Hops),
				fmtInt64(resD.Hops), ratio, "yes")
		}
	}
	// Context: reduction size overhead on a dense graph.
	red, err := degred.Reduce(gen.Complete(16))
	if err != nil {
		return nil, err
	}
	t.AddNote("Walking G directly avoids the reduction's node blow-up (%.1fx on K16) and often costs fewer hops, but forfeits Theorem 4: universality guarantees exist only for the bounded-degree direction alphabet.",
		float64(red.Graph().NumNodes())/16)
	return t, nil
}
