package flatgraph

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/ues"
)

// Half32 is a compact half-edge: the dense index of the far node and the
// port (local label) under which the same edge is known there.
type Half32 struct {
	To   int32
	Port int32
}

// Graph is an immutable CSR snapshot of a port-labeled multigraph together
// with the projection back to the original nodes each snapshot node
// simulates. All fields are read-only after Compile, so one Graph is safely
// shared by any number of concurrent walkers.
type Graph struct {
	// rowStart[i] is the offset of node i's ports in halves; node i has
	// degree rowStart[i+1]-rowStart[i].
	rowStart []int32
	// halves is the flat port table: halves[rowStart[i]+p] is the half-edge
	// leaving node i through port p.
	halves []Half32
	// ids maps dense index -> NodeID in the snapshotted graph.
	ids []graph.NodeID
	// orig maps dense index -> the original node it simulates (the gadget
	// projection of degred; identity when the graph is not a reduction).
	orig []graph.NodeID
	// idx is the reverse map NodeID -> dense index. It is nil when identIDs
	// holds — the common case for degree-reduced graphs, whose gadget node
	// IDs are assigned densely from 0, so index == ID and the map (the one
	// O(n)-allocation-heavy part of a snapshot build) is never needed.
	idx map[graph.NodeID]int32
	// identIDs records that ids[i] == i for every node, making Index a
	// bounds check instead of a map lookup.
	identIDs bool
	// memw caches, per node, the metering width of its two identity
	// registers (wordBits(ids[i]) + wordBits(orig[i])) so the walkers'
	// memory-metering replica costs one byte load per hop instead of two
	// Len64 computations.
	memw []uint8
	// regular3 records that every node has degree exactly 3, which the walk
	// loops rely on for stride addressing and branchless mod-3 steps.
	regular3 bool
	// compOnce/comps memoize the connected-component index (see
	// components.go); computed lazily on first Components call, like the
	// Flat memoization one layer up.
	compOnce sync.Once
	comps    *Components
}

// ErrNilGraph is returned by Compile when given a nil graph.
var ErrNilGraph = errors.New("flatgraph: nil graph")

// Compile snapshots g into CSR form. originalOf projects each node to the
// original node it simulates (pass nil for identity). The graph is fully
// validated here — mutual half-edges, ports in range — so the walk loops
// can drop all per-hop checks. g must not be mutated afterwards.
func Compile(g *graph.Graph, originalOf func(graph.NodeID) graph.NodeID) (*Graph, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("flatgraph: %w", err)
	}
	n := g.NumNodes()
	f := &Graph{
		rowStart: make([]int32, n+1),
		ids:      g.Nodes(),
		orig:     make([]graph.NodeID, n),
		regular3: true,
		identIDs: true,
	}
	for i, id := range f.ids {
		if id != graph.NodeID(i) {
			f.identIDs = false
			break
		}
	}
	if !f.identIDs {
		f.idx = make(map[graph.NodeID]int32, n)
	}
	f.memw = make([]uint8, n)
	for i, id := range f.ids {
		if f.idx != nil {
			f.idx[id] = int32(i)
		}
		if originalOf != nil {
			f.orig[i] = originalOf(id)
		} else {
			f.orig[i] = id
		}
		f.memw[i] = uint8(wordBits(int64(id)) + wordBits(int64(f.orig[i])))
	}
	total := int32(0)
	for i, id := range f.ids {
		f.rowStart[i] = total
		d := g.Degree(id)
		if d != 3 {
			f.regular3 = false
		}
		total += int32(d)
	}
	f.rowStart[n] = total
	f.halves = make([]Half32, total)
	for i, id := range f.ids {
		for p := 0; p < g.Degree(id); p++ {
			h, err := g.Neighbor(id, p)
			if err != nil {
				return nil, fmt.Errorf("flatgraph: %w", err)
			}
			to, ok := f.Index(h.To)
			if !ok {
				return nil, fmt.Errorf("flatgraph: half-edge (%d,%d) targets unknown node %d", id, p, h.To)
			}
			f.halves[f.rowStart[i]+int32(p)] = Half32{To: to, Port: int32(h.ToPort)}
		}
	}
	return f, nil
}

// NumNodes returns the number of snapshot nodes.
func (f *Graph) NumNodes() int { return len(f.ids) }

// Regular3 reports whether every node has degree exactly 3 (true for any
// Figure 1 reduction); the walk loops require it.
func (f *Graph) Regular3() bool { return f.regular3 }

// Index returns the dense index of id and whether it is a snapshot node.
func (f *Graph) Index(id graph.NodeID) (int32, bool) {
	if f.identIDs {
		if id < 0 || id >= graph.NodeID(len(f.ids)) {
			return 0, false
		}
		return int32(id), true
	}
	i, ok := f.idx[id]
	return i, ok
}

// ID returns the NodeID at dense index i.
func (f *Graph) ID(i int32) graph.NodeID { return f.ids[i] }

// OriginalOf returns the original node simulated by dense node i.
func (f *Graph) OriginalOf(i int32) graph.NodeID { return f.orig[i] }

// Degree returns the degree of dense node i.
func (f *Graph) Degree(i int32) int32 { return f.rowStart[i+1] - f.rowStart[i] }

// Half returns the half-edge leaving dense node i through port p.
func (f *Graph) Half(i, p int32) Half32 { return f.halves[f.rowStart[i]+p] }

// Step performs one exploration hop from (node, inPort) with direction t:
// leave through port (inPort + t) mod deg and return the far half-edge as
// the next position. t must lie in [0, deg) — true for base-3 sequences on
// the 3-regular reduced graph, where this is the whole per-hop work of the
// paper's walk rule.
func (f *Graph) Step(node, inPort, t int32) (int32, int32) {
	exit := inPort + t
	if f.regular3 {
		if exit >= 3 {
			exit -= 3
		}
		h := f.halves[node*3+exit]
		return h.To, h.Port
	}
	row := f.rowStart[node]
	deg := f.rowStart[node+1] - row
	if exit >= deg {
		exit -= deg
	}
	h := f.halves[row+exit]
	return h.To, h.Port
}

// Closed reports whether the visited set (dense indices with visited[i]
// true) is closed under neighbourhood — the §4 check deciding that a walk
// covered its whole component. visited must have length NumNodes.
func (f *Graph) Closed(visited []bool) bool {
	for i := range visited {
		if !visited[i] {
			continue
		}
		for o := f.rowStart[i]; o < f.rowStart[i+1]; o++ {
			if !visited[f.halves[o].To] {
				return false
			}
		}
	}
	return true
}

// Seq is a compiled exploration sequence: the i-th direction is
// ues.Symbol(Seed, i, Base), with the length frozen at construction. Being
// a small value type with concrete methods, the symbol derivation inlines
// into the walk loops.
type Seq struct {
	Seed   uint64
	Base   int
	Length int
}

// At returns the i-th direction, 1 ≤ i ≤ Length (not bounds-checked: the
// walk loops bound i structurally).
func (s Seq) At(i int64) int32 { return int32(ues.Symbol(s.Seed, uint64(i), s.Base)) }

// Fill writes directions from..from+len(buf)-1 into buf — the per-walk
// block prefetch that amortizes the sequence oracle across hops.
func (s Seq) Fill(buf []int8, from int64) {
	for k := range buf {
		buf[k] = int8(ues.Symbol(s.Seed, uint64(from+int64(k)), s.Base))
	}
}
