// Package obs is the observability core: counters, gauges, and
// fixed-bucket histograms rendered in the Prometheus text exposition
// format (version 0.0.4), built for instrumenting hot paths that complete
// in under a microsecond.
//
// Paper anchor: the metrics this package carries are the paper's own
// quantities made operational. Theorem 1 bounds the message header at
// O(log n) bits and node memory likewise — the header-bit histogram is
// that bound measured empirically per route; §3's doubling schedule bounds
// hops polynomially — the hop histogram is that bound's observed
// distribution; and the latency histograms price the universal
// exploration-sequence walk in wall-clock terms under serving load.
//
// Concurrency contract: every metric type is safe for concurrent use from
// any number of goroutines. The write paths (Counter.Add, Gauge.Set,
// Histogram.Observe) are lock-free — single atomic adds, plus a short
// linear scan over the histogram's bucket bounds — and allocation-free, so
// instrumenting a ~1 µs route path costs nanoseconds, not microseconds.
// Registration is not lock-free (a registry-wide mutex) and is expected to
// happen once at startup; collection (WritePrometheus) takes the same
// mutex to snapshot the metric list, then reads each metric's atomics
// without stopping writers, so a scrape observes each value atomically but
// the family as a whole may be torn by at most the traffic that arrived
// mid-render — the standard Prometheus contract.
//
// The package is dependency-free by design (standard library only): the
// engine, registry, dynamic, and serving layers all import it, and it must
// never import them back.
package obs
