package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunUsage(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("no args should error")
	}
	if err := run([]string{"nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown subcommand should error")
	}
}

func TestEmit(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"emit", "-n", "8", "-seed", "5", "-count", "20"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "# T_8 seed=5") {
		t.Fatalf("missing header:\n%s", got)
	}
	fields := strings.Fields(strings.Split(got, "\n")[1])
	if len(fields) != 20 {
		t.Fatalf("emitted %d symbols, want 20", len(fields))
	}
	for _, f := range fields {
		if f != "0" && f != "1" && f != "2" {
			t.Fatalf("symbol %q outside {0,1,2}", f)
		}
	}
}

func TestEmitFullLength(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"emit", "-n", "2", "-count", "0"}, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.String()) == 0 {
		t.Fatal("no output")
	}
}

func TestVerify(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"verify", "-n", "6", "-samples", "2", "-labelings", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "OK: every graph covered") {
		t.Fatalf("verify output wrong:\n%s", out.String())
	}
}

func TestCoverAllKinds(t *testing.T) {
	for _, kind := range []string{"grid", "cycle", "lollipop", "tree"} {
		t.Run(kind, func(t *testing.T) {
			var out bytes.Buffer
			if err := run([]string{"cover", "-kind", kind, "-n", "16"}, &out); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out.String(), "covered in") {
				t.Fatalf("cover output wrong:\n%s", out.String())
			}
		})
	}
	if err := run([]string{"cover", "-kind", "bogus"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown kind should error")
	}
}

func TestFind(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"find", "-maxn", "2", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "certified universal exploration sequence") {
		t.Fatalf("find output wrong:\n%s", out.String())
	}
	if err := run([]string{"find", "-maxn", "8"}, &bytes.Buffer{}); err == nil {
		t.Fatal("maxn=8 should be rejected")
	}
}
