// Package cluster is the distribution layer that turns a set of adhocd
// processes into one sharded fleet: a gossip membership protocol decides
// who is in the cluster and alive, and a consistent-hash ring built from
// that view places registry networks and named dynamic worlds across the
// members.
//
// The split of responsibilities mirrors the paper's own economy: the
// routing protocol is stateless-by-construction (the O(log n) header plus
// a signed cursor capture a whole walk), so the cluster layer never has to
// move walk state — only decide, identically on every member, which shard
// owns which key. Ownership is a pure function of (membership view,
// vnodes, key): two members with converged views compute the same owner
// for every key, which is what makes the thin proxy tier (any shard
// forwards a misrouted request one hop to the owner) correct without any
// coordination service.
//
// Membership is a SWIM-flavored push-pull gossip: each member keeps a
// versioned state per peer (alive/suspect/dead with an incarnation
// number and a self-incremented heartbeat), periodically exchanges its
// whole view with a few random peers, and merges by precedence — higher
// incarnation wins, then the more doomed status, then the larger
// heartbeat. A member that stops ticking stops advancing its heartbeat,
// gets suspected after SuspectAfterTicks of silence and declared dead
// after DeadAfterTicks more; a live member that learns it is suspected
// refutes by bumping its own incarnation (Haas/Halpern/Li's gossip made
// fleet infrastructure — see PAPERS.md).
//
// The ring hashes every alive member onto Vnodes points of a 64-bit
// circle; a key is owned by the member whose point follows the key's
// hash clockwise, with an (astronomically rare) equal-point collision
// broken by rendezvous hashing on (key, member) so the answer still never
// depends on iteration order. Virtual nodes bound the disruption of a
// membership change: a join or leave moves only the keys adjacent to the
// changed member's points — about K/N of K keys across N members — and
// every other key keeps its owner (pinned by property tests).
package cluster
