package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func genFile(t *testing.T, args ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "net.txt")
	full := append([]string{"gen", "-out", path}, args...)
	var out bytes.Buffer
	if err := run(full, &out); err != nil {
		t.Fatalf("gen: %v", err)
	}
	return path
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("no args should error")
	}
	if err := run([]string{"bogus"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown subcommand should error")
	}
}

func TestGenAllKinds(t *testing.T) {
	for _, kind := range []string{"udg2d", "udg3d", "grid", "cycle", "path", "tree", "lollipop", "regular3"} {
		t.Run(kind, func(t *testing.T) {
			path := genFile(t, "-kind", kind, "-n", "20", "-seed", "3")
			if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
				t.Fatalf("no output written: %v", err)
			}
		})
	}
	if err := run([]string{"gen", "-kind", "bogus"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown kind should error")
	}
}

func TestRouteCommand(t *testing.T) {
	path := genFile(t, "-kind", "cycle", "-n", "12")
	var out bytes.Buffer
	if err := run([]string{"route", "-in", path, "-from", "0", "-to", "6", "-seed", "9"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "status: success") {
		t.Fatalf("output missing success status:\n%s", got)
	}
	if !strings.Contains(got, "hops:") || !strings.Contains(got, "max header:") {
		t.Fatalf("output missing accounting:\n%s", got)
	}
}

func TestRouteCommandVerbose(t *testing.T) {
	path := genFile(t, "-kind", "path", "-n", "4")
	var out bytes.Buffer
	if err := run([]string{"route", "-in", path, "-from", "0", "-to", "3", "-v"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "hop ") {
		t.Fatal("verbose mode printed no hops")
	}
}

func TestRouteCommandFailureVerdict(t *testing.T) {
	path := genFile(t, "-kind", "cycle", "-n", "8")
	var out bytes.Buffer
	if err := run([]string{"route", "-in", path, "-from", "0", "-to", "4242"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "status: failure") {
		t.Fatalf("expected failure verdict:\n%s", out.String())
	}
}

func TestRouteCommandNoReduce(t *testing.T) {
	path := genFile(t, "-kind", "grid", "-n", "16")
	var out bytes.Buffer
	if err := run([]string{"route", "-in", path, "-from", "0", "-to", "8", "-noreduce"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "status: success") {
		t.Fatal("ablation route failed")
	}
}

func TestBroadcastCommand(t *testing.T) {
	path := genFile(t, "-kind", "cycle", "-n", "9")
	var out bytes.Buffer
	if err := run([]string{"bcast", "-in", path, "-from", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "reached: 9 nodes") {
		t.Fatalf("broadcast output wrong:\n%s", out.String())
	}
}

func TestCountCommand(t *testing.T) {
	path := genFile(t, "-kind", "path", "-n", "7")
	var out bytes.Buffer
	if err := run([]string{"count", "-in", path, "-from", "0"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "component size: 7 original nodes") {
		t.Fatalf("count output wrong:\n%s", out.String())
	}
}

func TestCountCommandMessages(t *testing.T) {
	path := genFile(t, "-kind", "path", "-n", "2")
	var out bytes.Buffer
	if err := run([]string{"count", "-in", path, "-from", "0", "-messages", "-factor", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "hops:") {
		t.Fatalf("message mode output missing hops:\n%s", out.String())
	}
}

func TestReduceCommand(t *testing.T) {
	path := genFile(t, "-kind", "grid", "-n", "16")
	var out bytes.Buffer
	if err := run([]string{"reduce", "-in", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "3-regular: true") {
		t.Fatalf("reduce output wrong:\n%s", out.String())
	}
}

func TestLoadGraphMissingFile(t *testing.T) {
	if err := run([]string{"route", "-in", "/nonexistent/x.txt", "-from", "0", "-to", "1"}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"route", "-bogusflag"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad flag should error")
	}
}
