package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/gen"
)

// testClusterKey is the shared resume-token HMAC key every shard (and the
// single reference server) signs with in these tests — the cluster-mode
// analog of -token-key pointing at one key file.
var testClusterKey = bytes.Repeat([]byte{0x42}, 32)

// clusterShard is one in-process adhocd shard: the server value (package
// main, so tests reach the cluster internals directly) plus its listener.
type clusterShard struct {
	name string
	srv  *server
	ts   *httptest.Server
}

// clusterHarness is an in-process N-shard cluster over httptest listeners.
// Membership is converged deterministically by direct view exchange, not
// timers, so tests never sleep.
type clusterHarness struct {
	shards []*clusterShard
}

func testClusterEngine(t *testing.T) *engine.Engine {
	t.Helper()
	g, err := gen.DisjointUnion(gen.Grid(4, 4), gen.Cycle(5), 100)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.Compile(g, engine.Config{Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// newTestCluster boots n shards with identical boot engines and the shared
// token key, wires their advertised addresses, and converges membership.
func newTestCluster(t *testing.T, n int) *clusterHarness {
	t.Helper()
	h := &clusterHarness{}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("shard-%d", i)
		srv := newServer(testClusterEngine(t), nil, "test 4x4 grid + 5-cycle", serverConfig{
			tokenKey: testClusterKey,
			cluster:  &clusterConfig{name: name},
		})
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		srv.cluster.setAdvertise(ts.URL)
		h.shards = append(h.shards, &clusterShard{name: name, srv: srv, ts: ts})
	}
	// Deterministic bootstrap: two full rounds of pairwise push-pull makes
	// every view complete regardless of exchange order.
	for round := 0; round < 2; round++ {
		for i, a := range h.shards {
			for j, b := range h.shards {
				if i == j {
					continue
				}
				a.srv.cluster.gossip.HandleExchange(b.srv.cluster.gossip.Membership().Snapshot())
			}
		}
	}
	h.assertConverged(t, n)
	for _, sh := range h.shards {
		sh.srv.cluster.started.Store(true)
	}
	return h
}

// assertConverged checks every shard sees the same ring (equal content
// hash) with want members on it.
func (h *clusterHarness) assertConverged(t *testing.T, want int) {
	t.Helper()
	v0 := h.shards[0].srv.cluster.ring.Load().Version()
	for _, sh := range h.shards {
		r := sh.srv.cluster.ring.Load()
		if r.Len() != want {
			t.Fatalf("%s: ring has %d members, want %d", sh.name, r.Len(), want)
		}
		if r.Version() != v0 {
			t.Fatalf("%s: ring version %016x != shard-0's %016x", sh.name, r.Version(), v0)
		}
	}
}

// ownerOf resolves which shard owns key on the converged ring.
func (h *clusterHarness) ownerOf(t *testing.T, key string) *clusterShard {
	t.Helper()
	m, ok := h.shards[0].srv.cluster.owner(key)
	if !ok {
		t.Fatalf("no owner for %q", key)
	}
	for _, sh := range h.shards {
		if sh.name == m.Name {
			return sh
		}
	}
	t.Fatalf("owner %q of %q is not a harness shard", m.Name, key)
	return nil
}

// doRaw issues one request and returns the status, raw body, and headers —
// raw because the differential tests compare reply bytes, not decoded
// values.
func doRaw(t *testing.T, base, method, path, body string) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(method, base+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("%s %s: read body: %v", method, path, err)
	}
	return resp.StatusCode, buf.Bytes(), resp.Header
}

// diffStep sends the same request to the single reference server and to
// one cluster shard and requires byte-identical status and reply body.
func diffStep(t *testing.T, single *httptest.Server, sh *clusterShard, method, path, body string) []byte {
	t.Helper()
	sc, sb, _ := doRaw(t, single.URL, method, path, body)
	cc, cb, _ := doRaw(t, sh.ts.URL, method, path, body)
	if sc != cc {
		t.Fatalf("%s %s via %s: status %d (cluster) != %d (single)\ncluster: %s\nsingle:  %s",
			method, path, sh.name, cc, sc, cb, sb)
	}
	if !bytes.Equal(sb, cb) {
		t.Fatalf("%s %s via %s: reply diverged\ncluster: %s\nsingle:  %s", method, path, sh.name, cb, sb)
	}
	return cb
}

// TestClusterDifferentialVsSingle drives the same request stream through a
// 3-shard cluster (rotating the entry shard per request, so most requests
// are forwarded) and a single adhocd sharing the token key, and requires
// byte-identical verdicts, hops, certificates, and resume tokens —
// including budgeted walks whose segments enter through different shards
// than the one that minted the token.
func TestClusterDifferentialVsSingle(t *testing.T) {
	single := httptest.NewServer(newServer(testClusterEngine(t), nil, "test 4x4 grid + 5-cycle",
		serverConfig{tokenKey: testClusterKey}))
	t.Cleanup(single.Close)
	h := newTestCluster(t, 3)
	rotate := func(i int) *clusterShard { return h.shards[i%len(h.shards)] }

	// Boot-network routes are served locally by any shard; identical boot
	// engines must answer byte-identically, verdicts and certificates both.
	for i, body := range []string{
		`{"src":0,"dst":15}`,
		`{"src":3,"dst":12,"with_path":true}`,
		`{"src":0,"dst":102}`, // cross-component: certificate-backed unreachable
		`{"src":100,"dst":104}`,
	} {
		diffStep(t, single, rotate(i), "POST", "/v1/route", body)
	}
	diffStep(t, single, rotate(1), "POST", "/v1/batch", `{"pairs":[[0,15],[1,14],[2,100],[5,10]]}`)

	// Registry network: create on both sides, then route against it through
	// every shard in rotation.
	const spec = `{"kind":"grid","rows":6,"cols":7,"seed":3}`
	var sNet, cNet struct {
		ID    string `json:"id"`
		Nodes int    `json:"nodes"`
	}
	if sc, sb, _ := doRaw(t, single.URL, "POST", "/v1/networks", spec); sc != http.StatusCreated {
		t.Fatalf("single create: %d %s", sc, sb)
	} else if err := json.Unmarshal(sb, &sNet); err != nil {
		t.Fatal(err)
	}
	if cc, cb, _ := doRaw(t, h.shards[0].ts.URL, "POST", "/v1/networks", spec); cc != http.StatusCreated {
		t.Fatalf("cluster create: %d %s", cc, cb)
	} else if err := json.Unmarshal(cb, &cNet); err != nil {
		t.Fatal(err)
	}
	if sNet.ID == "" || sNet.ID != cNet.ID || sNet.Nodes != cNet.Nodes {
		t.Fatalf("network identity diverged: single %+v, cluster %+v", sNet, cNet)
	}
	netPath := "/v1/networks/" + sNet.ID + "/route"
	for i, body := range []string{
		`{"src":0,"dst":41}`,
		`{"src":5,"dst":17,"with_path":true}`,
		`{"src":40,"dst":1}`,
		`{"src":3,"dst":3}`,
	} {
		diffStep(t, single, rotate(i), "POST", netPath, body)
	}

	// Budgeted walk over the registry network, resumed through a DIFFERENT
	// shard each segment. The shared key makes the tokens byte-identical,
	// so whole replies — token included — must match.
	resume, segs := "", 0
	for ; segs < 200; segs++ {
		body := fmt.Sprintf(`{"src":0,"dst":41,"budget_hops":4,"resume":%q}`, resume)
		rb := diffStep(t, single, rotate(segs), "POST", netPath, body)
		var rep routeReply
		if err := json.Unmarshal(rb, &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Status != statusBudgetExhausted {
			if rep.Status != "success" {
				t.Fatalf("budgeted walk verdict %q, want success", rep.Status)
			}
			break
		}
		resume = rep.Resume
	}
	if segs < 2 {
		t.Fatalf("budgeted walk finished in %d segments; too few to cross shards", segs)
	}

	// Shared world backed by the registry network. Create/advance replies
	// carry wall-clock compile timings, so those compare decoded fields;
	// route replies compare bytes.
	const worldBody = `{"name":"w-diff","network_id":"%s","schedule":{"kind":"markov","p_down":0.05,"p_up":0.5,"seed":9}}`
	sc, sb, _ := doRaw(t, single.URL, "POST", "/v1/worlds", fmt.Sprintf(worldBody, sNet.ID))
	cc, cb, _ := doRaw(t, h.shards[1].ts.URL, "POST", "/v1/worlds", fmt.Sprintf(worldBody, cNet.ID))
	if sc != http.StatusCreated || cc != http.StatusCreated {
		t.Fatalf("world create: single %d %s, cluster %d %s", sc, sb, cc, cb)
	}
	var sw, cw worldInfo
	if err := json.Unmarshal(sb, &sw); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(cb, &cw); err != nil {
		t.Fatal(err)
	}
	if sw.ID != "w-diff" || cw.ID != sw.ID || cw.Epoch != sw.Epoch || cw.Links != sw.Links {
		t.Fatalf("world identity diverged: single %+v, cluster %+v", sw, cw)
	}

	worldPath := "/v1/worlds/w-diff"
	sc, sb, _ = doRaw(t, single.URL, "POST", worldPath+"/advance", `{"epochs":3}`)
	cc, cb, _ = doRaw(t, h.shards[2].ts.URL, "POST", worldPath+"/advance", `{"epochs":3}`)
	if sc != http.StatusOK || cc != http.StatusOK {
		t.Fatalf("world advance: single %d %s, cluster %d %s", sc, sb, cc, cb)
	}
	if err := json.Unmarshal(sb, &sw); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(cb, &cw); err != nil {
		t.Fatal(err)
	}
	if cw.Epoch != sw.Epoch || cw.Version != sw.Version || cw.Links != sw.Links {
		t.Fatalf("world state diverged after advance: single %+v, cluster %+v", sw, cw)
	}

	for i, body := range []string{
		`{"src":0,"dst":41,"hops_per_epoch":8}`,
		`{"src":5,"dst":30,"hops_per_epoch":8}`,
		`{"src":41,"dst":0,"hops_per_epoch":-1}`,
	} {
		diffStep(t, single, rotate(i), "POST", worldPath+"/route", body)
	}

	// Budgeted world walk, entry shard rotating — the world lives on ONE
	// owner shard, so rotation guarantees segments that enter elsewhere and
	// resume a token minted by the owner.
	resume, segs = "", 0
	for ; segs < 200; segs++ {
		body := fmt.Sprintf(`{"src":0,"dst":41,"hops_per_epoch":16,"budget_hops":3,"resume":%q}`, resume)
		rb := diffStep(t, single, rotate(segs), "POST", worldPath+"/route", body)
		var rep dynamicReply
		if err := json.Unmarshal(rb, &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Status != statusBudgetExhausted {
			if rep.Status != "success" {
				t.Fatalf("budgeted world walk verdict %q, want success", rep.Status)
			}
			break
		}
		resume = rep.Resume
	}
	if segs < 2 {
		t.Fatalf("budgeted world walk finished in %d segments; too few to cross shards", segs)
	}

	// The stream above must actually have exercised the proxy tier.
	var forwards int64
	for _, sh := range h.shards {
		forwards += sh.srv.cluster.forwards.Value()
	}
	if forwards == 0 {
		t.Fatal("no request was forwarded; differential never crossed a shard boundary")
	}
}

// TestClusterForwardingAndLoopGuard pins the proxy-tier mechanics: a
// misrouted request is forwarded one hop and stamped with the serving
// shard's name, while a request already carrying the forwarded header is
// served locally no matter what the ring says.
func TestClusterForwardingAndLoopGuard(t *testing.T) {
	h := newTestCluster(t, 3)
	const spec = `{"kind":"cycle","n":30,"seed":11}`
	cc, cb, _ := doRaw(t, h.shards[0].ts.URL, "POST", "/v1/networks", spec)
	if cc != http.StatusCreated {
		t.Fatalf("create: %d %s", cc, cb)
	}
	var net struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(cb, &net); err != nil {
		t.Fatal(err)
	}
	owner := h.ownerOf(t, "net:"+net.ID)
	if ent, ok := owner.srv.reg.Get(net.ID); !ok || ent == nil {
		t.Fatalf("network %s not resident on its owner %s", net.ID, owner.name)
	}
	var nonOwner *clusterShard
	for _, sh := range h.shards {
		if sh != owner {
			nonOwner = sh
			break
		}
	}

	// Misrouted GET is forwarded: the reply is served by the owner.
	_, _, hdr := doRaw(t, nonOwner.ts.URL, "GET", "/v1/networks/"+net.ID, "")
	if got := hdr.Get(shardHeader); got != owner.name {
		t.Fatalf("forwarded GET served by %q, want owner %q", got, owner.name)
	}
	status, _, _ := doRaw(t, nonOwner.ts.URL, "GET", "/v1/networks/"+net.ID, "")
	if status != http.StatusOK {
		t.Fatalf("forwarded GET status %d", status)
	}

	// Same request with the loop guard set: served locally by the
	// non-owner, which does not have the network resident — 404, and the
	// shard header names the non-owner. One hop, never two.
	req, err := http.NewRequest("GET", nonOwner.ts.URL+"/v1/networks/"+net.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(forwardedHeader, "test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("loop-guarded GET on non-owner: %d, want 404", resp.StatusCode)
	}
	if got := resp.Header.Get(shardHeader); got != nonOwner.name {
		t.Fatalf("loop-guarded GET served by %q, want local %q", got, nonOwner.name)
	}

	// GET /v1/cluster: every shard reports the same ring version.
	var first string
	for _, sh := range h.shards {
		status, body, _ := doRaw(t, sh.ts.URL, "GET", "/v1/cluster", "")
		if status != http.StatusOK {
			t.Fatalf("GET /v1/cluster on %s: %d", sh.name, status)
		}
		var info struct {
			Self        string `json:"self"`
			RingVersion string `json:"ring_version"`
		}
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		if info.Self != sh.name {
			t.Fatalf("cluster info self %q, want %q", info.Self, sh.name)
		}
		if first == "" {
			first = info.RingVersion
		} else if info.RingVersion != first {
			t.Fatalf("%s ring_version %s != %s", sh.name, info.RingVersion, first)
		}
	}
}

// TestClusterDrainMigratesWorldAndResumesElsewhere is the drain/rebalance
// path end to end: a budgeted walk is started on a world, its owner shard
// drains (broadcasting departure and handing the world off by replay), and
// the walk's resume token — minted by the drained shard — is redeemed
// through a surviving shard against the migrated world.
func TestClusterDrainMigratesWorldAndResumesElsewhere(t *testing.T) {
	h := newTestCluster(t, 3)
	const spec = `{"kind":"grid","rows":6,"cols":6,"seed":5}`
	cc, cb, _ := doRaw(t, h.shards[0].ts.URL, "POST", "/v1/networks", spec)
	if cc != http.StatusCreated {
		t.Fatalf("create network: %d %s", cc, cb)
	}
	var net struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(cb, &net); err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"name":"w-mig","network_id":%q,"schedule":{"kind":"markov","p_down":0.05,"p_up":0.5,"seed":13}}`, net.ID)
	if cc, cb, _ = doRaw(t, h.shards[1].ts.URL, "POST", "/v1/worlds", body); cc != http.StatusCreated {
		t.Fatalf("create world: %d %s", cc, cb)
	}
	owner := h.ownerOf(t, "world:w-mig")
	if _, ok := owner.srv.worlds.Get("w-mig"); !ok {
		t.Fatalf("world not resident on its owner %s", owner.name)
	}

	// Pre-evolve, then start a budgeted walk through a non-owner entry
	// shard until it exhausts and mints a token.
	var entry *clusterShard
	for _, sh := range h.shards {
		if sh != owner {
			entry = sh
			break
		}
	}
	if cc, cb, _ = doRaw(t, entry.ts.URL, "POST", "/v1/worlds/w-mig/advance", `{"epochs":4}`); cc != http.StatusOK {
		t.Fatalf("advance: %d %s", cc, cb)
	}
	var rep dynamicReply
	cc, cb, _ = doRaw(t, entry.ts.URL, "POST", "/v1/worlds/w-mig/route",
		`{"src":0,"dst":35,"hops_per_epoch":16,"budget_hops":2}`)
	if cc != http.StatusOK {
		t.Fatalf("budgeted route: %d %s", cc, cb)
	}
	if err := json.Unmarshal(cb, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Status != statusBudgetExhausted || rep.Resume == "" {
		t.Fatalf("budgeted route: %+v, want exhausted with token", rep)
	}
	preEpoch := owner.srv.worlds.List()[0].W.Snapshot().Epoch

	// Drain the owner. BeginDrain broadcasts departure and synchronously
	// rebalances, so by return the world must live elsewhere.
	owner.srv.BeginDrain()
	if n := owner.srv.worlds.Len(); n != 0 {
		t.Fatalf("drained shard still holds %d worlds", n)
	}
	survivors := make([]*clusterShard, 0, 2)
	for _, sh := range h.shards {
		if sh != owner {
			survivors = append(survivors, sh)
		}
	}
	v0 := survivors[0].srv.cluster.ring.Load()
	v1 := survivors[1].srv.cluster.ring.Load()
	if v0.Len() != 2 || v0.Version() != v1.Version() {
		t.Fatalf("survivors did not converge after drain: %d members, versions %016x vs %016x",
			v0.Len(), v0.Version(), v1.Version())
	}
	var newOwner *clusterShard
	for _, sh := range survivors {
		if _, ok := sh.srv.worlds.Get("w-mig"); ok {
			newOwner = sh
		}
	}
	if newOwner == nil {
		t.Fatal("world w-mig resident on no survivor after drain")
	}
	if got := newOwner.srv.worlds.List()[0].W.Snapshot().Epoch; got < preEpoch {
		t.Fatalf("migrated world at epoch %d, want >= %d (replay fell short)", got, preEpoch)
	}

	// Redeem the drained shard's token through the OTHER survivor, so the
	// resume is both cross-shard-minted and cross-shard-entered.
	entry = survivors[0]
	if entry == newOwner {
		entry = survivors[1]
	}
	resume := rep.Resume
	for seg := 0; ; seg++ {
		if seg >= 200 {
			t.Fatal("resumed walk never reached a verdict")
		}
		body := fmt.Sprintf(`{"src":0,"dst":35,"hops_per_epoch":16,"budget_hops":8,"resume":%q}`, resume)
		cc, cb, _ = doRaw(t, entry.ts.URL, "POST", "/v1/worlds/w-mig/route", body)
		if cc != http.StatusOK {
			t.Fatalf("resumed segment %d: %d %s", seg, cc, cb)
		}
		if err := json.Unmarshal(cb, &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Status != statusBudgetExhausted {
			if rep.Status != "success" {
				t.Fatalf("resumed walk verdict %q, want success", rep.Status)
			}
			if rep.Resumptions == 0 {
				t.Fatalf("verdict reports zero resumptions: %+v", rep)
			}
			break
		}
		resume = rep.Resume
	}
}

// TestClusterGossipOverHTTPAndKill exercises the real wire path — gossip
// over POST /v1/cluster/gossip between live listeners, seeded bootstrap —
// then kills a shard's listener and requires the survivors' failure
// detectors to converge on its death within the documented tick bound.
func TestClusterGossipOverHTTPAndKill(t *testing.T) {
	// Built by hand (not newTestCluster): bootstrap must flow through the
	// seed URLs and HTTP transport, not direct view exchange.
	mk := func(name string, peers []string) *clusterShard {
		srv := newServer(testClusterEngine(t), nil, "test 4x4 grid + 5-cycle", serverConfig{
			tokenKey: testClusterKey,
			cluster:  &clusterConfig{name: name, peers: peers},
		})
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		srv.cluster.setAdvertise(ts.URL)
		srv.cluster.started.Store(true)
		return &clusterShard{name: name, srv: srv, ts: ts}
	}
	s0 := mk("shard-0", nil)
	s1 := mk("shard-1", []string{s0.ts.URL})
	s2 := mk("shard-2", []string{s0.ts.URL})
	all := []*clusterShard{s0, s1, s2}

	ctx := context.Background()
	tick := func(shards []*clusterShard) {
		for _, sh := range shards {
			sh.srv.cluster.gossip.Tick(ctx)
		}
	}
	converged := func(shards []*clusterShard, members int) bool {
		v := shards[0].srv.cluster.ring.Load().Version()
		for _, sh := range shards {
			r := sh.srv.cluster.ring.Load()
			if r.Len() != members || r.Version() != v {
				return false
			}
		}
		return true
	}

	const bootstrapBound = 20
	ok := false
	for i := 0; i < bootstrapBound; i++ {
		tick(all)
		if converged(all, 3) {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatalf("cluster did not bootstrap over HTTP within %d ticks", bootstrapBound)
	}

	// Kill shard-2's listener. No goodbye: the survivors must notice via
	// heartbeat silence alone.
	s2.ts.Close()
	survivors := []*clusterShard{s0, s1}
	bound := cluster.DefaultSuspectAfterTicks + cluster.DefaultDeadAfterTicks + 10
	ok = false
	for i := 0; i < bound; i++ {
		tick(survivors)
		if converged(survivors, 2) {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatalf("survivors did not converge on the kill within %d ticks", bound)
	}
	for _, sh := range survivors {
		for _, m := range sh.srv.cluster.ring.Load().Members() {
			if m.Name == "shard-2" {
				t.Fatalf("%s still has shard-2 on its ring", sh.name)
			}
		}
	}

	// The two-shard cluster still serves: create a network and route it
	// through both survivors.
	cc, cb, _ := doRaw(t, s0.ts.URL, "POST", "/v1/networks", `{"kind":"grid","rows":5,"cols":5,"seed":2}`)
	if cc != http.StatusCreated {
		t.Fatalf("post-kill create: %d %s", cc, cb)
	}
	var net struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(cb, &net); err != nil {
		t.Fatal(err)
	}
	for _, sh := range survivors {
		status, body, _ := doRaw(t, sh.ts.URL, "POST", "/v1/networks/"+net.ID+"/route", `{"src":0,"dst":24}`)
		if status != http.StatusOK {
			t.Fatalf("post-kill route via %s: %d %s", sh.name, status, body)
		}
	}
}

// TestClusterSharedKeyAndRotationHTTP is the -token-key contract at the
// HTTP level: a resume token minted on shard A validates on shard B
// sharing the key, and the same token presented to a server holding a
// rotated key fails closed with 400 — never a panic, never acceptance.
func TestClusterSharedKeyAndRotationHTTP(t *testing.T) {
	mk := func(key []byte) *httptest.Server {
		ts := httptest.NewServer(newServer(testClusterEngine(t), nil, "test 4x4 grid + 5-cycle",
			serverConfig{tokenKey: key}))
		t.Cleanup(ts.Close)
		return ts
	}
	a, b := mk(testClusterKey), mk(testClusterKey)
	rotated := mk(bytes.Repeat([]byte{0x99}, 32))

	cc, cb, _ := doRaw(t, a.URL, "POST", "/v1/route", `{"src":0,"dst":15,"budget_hops":2}`)
	if cc != http.StatusOK {
		t.Fatalf("budgeted route on A: %d %s", cc, cb)
	}
	var rep routeReply
	if err := json.Unmarshal(cb, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Status != statusBudgetExhausted || rep.Resume == "" {
		t.Fatalf("budgeted route on A: %+v, want exhausted with token", rep)
	}

	resumeBody := fmt.Sprintf(`{"src":0,"dst":15,"resume":%q}`, rep.Resume)
	if status, body, _ := doRaw(t, b.URL, "POST", "/v1/route", resumeBody); status != http.StatusOK {
		t.Fatalf("A-minted token on B (shared key): %d %s, want 200", status, body)
	}
	status, body, _ := doRaw(t, rotated.URL, "POST", "/v1/route", resumeBody)
	if status != http.StatusBadRequest {
		t.Fatalf("A-minted token on rotated-key server: %d %s, want 400", status, body)
	}
	if !strings.Contains(string(body), "resume") {
		t.Fatalf("rotated-key rejection did not mention the resume token: %s", body)
	}
}
