package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestQuickSweepEndToEnd runs the whole driver in quick mode and checks a
// well-formed delivery-vs-churn table comes out — the acceptance check
// that cmd/churnsim works end to end (wrong verdicts abort the sweep
// inside runCell, so a rendered table certifies oracle agreement too).
func TestQuickSweepEndToEnd(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"delivery rate", "churn p", "| 0 |", "100%"} {
		if !strings.Contains(got, want) {
			t.Fatalf("table missing %q:\n%s", want, got)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-quick", "-csv", "-reps", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "churn p,speed,routes") {
		t.Fatalf("missing CSV header:\n%s", out.String())
	}
}

func TestFlagErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-churn", "x"}, &out); err == nil {
		t.Fatal("bad -churn accepted")
	}
	if err := run([]string{"-speeds", ""}, &out); err == nil {
		t.Fatal("empty -speeds accepted")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestParseFloats(t *testing.T) {
	got, err := parseFloats(" 0, 0.5 ,1 ")
	if err != nil || len(got) != 3 || got[1] != 0.5 {
		t.Fatalf("parseFloats: %v, %v", got, err)
	}
	if _, err := parseFloats(","); err == nil {
		t.Fatal("empty list accepted")
	}
}
