package route

import (
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/ues"
)

func TestRestartConfirmDelivers(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		s, d graph.NodeID
	}{
		{name: "path", g: gen.Path(10), s: 0, d: 9},
		{name: "grid", g: gen.Grid(4, 4), s: 0, d: 15},
		{name: "petersen", g: gen.Petersen(), s: 0, d: 7},
		{name: "star", g: gen.Star(8), s: 2, d: 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := newRouter(t, tt.g, Config{Seed: 7, Confirm: ConfirmRestart})
			res, err := r.Route(tt.s, tt.d)
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != netsim.StatusSuccess {
				t.Fatalf("restart-confirm route failed: %+v", res)
			}
			if res.ForwardSteps <= 0 || res.ForwardSteps > res.Hops {
				t.Fatalf("implausible forward steps %d (hops %d)", res.ForwardSteps, res.Hops)
			}
		})
	}
}

func TestRestartConfirmFailureVerdict(t *testing.T) {
	u, err := gen.DisjointUnion(gen.Cycle(5), gen.Cycle(4), 100)
	if err != nil {
		t.Fatal(err)
	}
	r := newRouter(t, u, Config{Seed: 3, Confirm: ConfirmRestart})
	res, err := r.Route(0, 101)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != netsim.StatusFailure {
		t.Fatalf("status = %v, want failure", res.Status)
	}
}

func TestRestartConfirmMatchesBacktrackVerdicts(t *testing.T) {
	// Both confirmation modes must produce identical verdicts on every
	// pair; only the cost differs.
	g := gen.Grid(3, 3)
	g.EnsureNode(99) // isolated second component
	back := newRouter(t, g, Config{Seed: 5, Confirm: ConfirmBacktrack})
	restart := newRouter(t, g, Config{Seed: 5, Confirm: ConfirmRestart})
	for _, s := range g.Nodes() {
		if s == 99 {
			continue
		}
		for _, d := range g.Nodes() {
			rb, err := back.Route(s, d)
			if err != nil {
				t.Fatal(err)
			}
			rr, err := restart.Route(s, d)
			if err != nil {
				t.Fatal(err)
			}
			if rb.Status != rr.Status {
				t.Fatalf("verdicts differ for %d->%d: backtrack %v, restart %v",
					s, d, rb.Status, rr.Status)
			}
		}
	}
}

func TestGrowthFactorFewerRounds(t *testing.T) {
	// A ×4 schedule reaches a covering bound in fewer rounds than ×2 for
	// a definitive failure on the same graph.
	u, err := gen.DisjointUnion(gen.Grid(10, 10), gen.Cycle(3), 1000)
	if err != nil {
		t.Fatal(err)
	}
	// The cross-component pair must burn real rounds for the schedule
	// comparison, so the certificate fast path is disabled.
	r2 := newRouter(t, u, Config{Seed: 13, GrowthFactor: 2, DisableCertificates: true})
	r4 := newRouter(t, u, Config{Seed: 13, GrowthFactor: 4, DisableCertificates: true})
	res2, err := r2.Route(0, 1001)
	if err != nil {
		t.Fatal(err)
	}
	res4, err := r4.Route(0, 1001)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != netsim.StatusFailure || res4.Status != netsim.StatusFailure {
		t.Fatal("both should fail definitively")
	}
	if len(res4.Rounds) >= len(res2.Rounds) {
		t.Fatalf("x4 schedule used %d rounds, x2 used %d — expected fewer",
			len(res4.Rounds), len(res2.Rounds))
	}
}

func TestGrowthFactorSanitized(t *testing.T) {
	// Degenerate growth factors (0, 1, negative) must not loop forever.
	u, err := gen.DisjointUnion(gen.Cycle(4), gen.Cycle(3), 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, gf := range []int{-1, 0, 1} {
		r := newRouter(t, u, Config{Seed: 1, GrowthFactor: gf})
		res, err := r.Route(0, 51)
		if err != nil {
			t.Fatalf("growth %d: %v", gf, err)
		}
		if res.Status != netsim.StatusFailure {
			t.Fatalf("growth %d: status %v", gf, res.Status)
		}
	}
}

// TestFaultInjectionFailsLoudly verifies the static-network assumption is
// checked, not silently violated: a lost message surfaces as an error,
// never as a wrong verdict.
func TestFaultInjectionFailsLoudly(t *testing.T) {
	g := gen.Grid(4, 4)
	red := newRouter(t, g, Config{Seed: 7})
	honest, err := red.Route(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	if honest.Status != netsim.StatusSuccess {
		t.Fatal("baseline route failed")
	}
	// Drop the message partway through the walk, before it can possibly
	// have delivered.
	dropAt := honest.ForwardSteps / 2
	if dropAt < 1 {
		dropAt = 1
	}
	seq := red.sequence(4)
	_ = seq
	eng := netsim.NewEngine(red.WorkGraph(),
		&routeHandler{seq: red.sequence(red.WorkGraph().NumNodes()), originalOf: red.originalOf()},
		netsim.WithFault(func(hop int64) bool { return hop == dropAt }))
	start, errEntry := red.entry(0)
	if errEntry != nil {
		t.Fatal(errEntry)
	}
	h := netsim.Header{Src: 0, Dst: 15, Dir: netsim.Forward, Index: 1}
	out, err := eng.Run(start, 0, h, 1<<30)
	if !errors.Is(err, netsim.ErrMessageLost) {
		t.Fatalf("error = %v, want ErrMessageLost", err)
	}
	if out != nil && out.Delivered {
		t.Fatal("lost message must not be delivered")
	}
}

func TestRestartKnownBoundInconclusive(t *testing.T) {
	// With a known bound too small for the confirmation leg, the restart
	// mode must surface ErrSequenceExhausted instead of a verdict.
	g := gen.Grid(5, 5)
	r := newRouter(t, g, Config{Seed: 2, Confirm: ConfirmRestart, KnownN: 2, LengthFactor: 1})
	_, err := r.Route(0, 24)
	if err == nil {
		t.Skip("tiny bound happened to suffice; acceptable")
	}
	if !errors.Is(err, ErrSequenceExhausted) {
		t.Fatalf("error = %v, want ErrSequenceExhausted", err)
	}
}

func TestWireFormatTransparent(t *testing.T) {
	// Serializing the header on every hop must not change any outcome.
	g := gen.Grid(4, 4)
	plain := newRouter(t, g, Config{Seed: 7})
	wired := newRouter(t, g, Config{Seed: 7, WireFormat: true})
	rp, err := plain.Route(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := wired.Route(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Status != rw.Status || rp.Hops != rw.Hops || rp.ForwardSteps != rw.ForwardSteps {
		t.Fatalf("wire format changed the run: %+v vs %+v", rp, rw)
	}
}

func TestSequenceFactoryCertified(t *testing.T) {
	// Routing on a 3-node path (4 reduced nodes) with the exhaustively
	// certified sequence: guaranteed with zero empirical assumptions.
	seq, err := ues.CertifiedSmall(4, 2026)
	if err != nil {
		t.Fatal(err)
	}
	r := newRouter(t, gen.Path(3), Config{
		KnownN:          4,
		SequenceFactory: func(bound int) ues.Sequence { return seq },
	})
	res, err := r.Route(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != netsim.StatusSuccess {
		t.Fatalf("certified route failed: %+v", res)
	}
	// Unknown target: certified failure detection.
	res, err = r.Route(0, 99)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != netsim.StatusFailure {
		t.Fatalf("certified failure detection broke: %+v", res)
	}
}

func TestSequenceFactoryUsedInDoublingLoop(t *testing.T) {
	// The factory must receive the per-round bound.
	var bounds []int
	r := newRouter(t, gen.Grid(4, 4), Config{
		Seed: 5,
		SequenceFactory: func(bound int) ues.Sequence {
			bounds = append(bounds, bound)
			return &ues.Pseudorandom{Seed: 5, N: bound, Base: 3}
		},
	})
	if _, err := r.Route(0, 15); err != nil {
		t.Fatal(err)
	}
	if len(bounds) == 0 {
		t.Fatal("factory never invoked")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] < bounds[i-1] {
			t.Fatalf("bounds not non-decreasing: %v", bounds)
		}
	}
}
