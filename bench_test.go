package adhocroute

// bench_test.go holds one benchmark per experiment in the DESIGN.md index
// (F1, E1–E9) — each bench runs the corresponding harness runner in quick
// mode — plus micro-benchmarks for the core operations (sequence oracle,
// walk step, degree reduction, header codec, routing on standard
// families). Regenerate the full tables with: go run ./cmd/experiments
import (
	"sync/atomic"
	"testing"

	"repro/internal/degred"
	"repro/internal/exp"
	"repro/internal/flatgraph"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/route"
	"repro/internal/ues"
)

func benchOpts() exp.Options { return exp.Options{Quick: true, Seed: 7} }

func runExperiment(b *testing.B, id string) {
	b.Helper()
	r, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF1DegreeReduction(b *testing.B) { runExperiment(b, "F1") }
func BenchmarkE1Delivery2D(b *testing.B)      { runExperiment(b, "E1") }
func BenchmarkE2Delivery3D(b *testing.B)      { runExperiment(b, "E2") }
func BenchmarkE3HopsVsN(b *testing.B)         { runExperiment(b, "E3") }
func BenchmarkE4CoverTime(b *testing.B)       { runExperiment(b, "E4") }
func BenchmarkE5FailureDetect(b *testing.B)   { runExperiment(b, "E5") }
func BenchmarkE6CountNodes(b *testing.B)      { runExperiment(b, "E6") }
func BenchmarkE7SpaceOverhead(b *testing.B)   { runExperiment(b, "E7") }
func BenchmarkE8ZigZag(b *testing.B)          { runExperiment(b, "E8") }
func BenchmarkE9Hybrid(b *testing.B)          { runExperiment(b, "E9") }

// BenchmarkE10StaticAssumption covers the extension experiment (message
// loss + churn robustness).
func BenchmarkE10StaticAssumption(b *testing.B) { runExperiment(b, "E10") }

// Ablation benches (DESIGN.md §5).
func BenchmarkA1ConfirmMode(b *testing.B)         { runExperiment(b, "A1") }
func BenchmarkA2GrowthFactor(b *testing.B)        { runExperiment(b, "A2") }
func BenchmarkA3LengthFactor(b *testing.B)        { runExperiment(b, "A3") }
func BenchmarkA4DegreeReduction(b *testing.B)     { runExperiment(b, "A4") }
func BenchmarkA5AdversarialLabeling(b *testing.B) { runExperiment(b, "A5") }

// --- Micro-benchmarks for the core operations ---

// BenchmarkSequenceAt measures the O(log n)-space T[i] oracle — the
// operation every node performs once per message activation.
func BenchmarkSequenceAt(b *testing.B) {
	seq := &ues.Pseudorandom{Seed: 1, N: 1 << 16, Base: 3}
	l := seq.Len()
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += seq.At(i%l + 1)
	}
	_ = sink
}

// BenchmarkWalkStep measures one exploration step on the reduced graph.
func BenchmarkWalkStep(b *testing.B) {
	red, err := degred.Reduce(gen.Grid(16, 16))
	if err != nil {
		b.Fatal(err)
	}
	g := red.Graph()
	seq := &ues.Pseudorandom{Seed: 1, N: g.NumNodes(), Base: 3}
	pos := ues.Start(0)
	l := seq.Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next, err := ues.Step(g, pos, seq.At(i%l+1))
		if err != nil {
			b.Fatal(err)
		}
		pos = next
	}
}

// BenchmarkFlatWalkStep measures one exploration step on the compiled CSR
// snapshot with the inlined PRF oracle — the flat equivalent of
// BenchmarkWalkStep's ues.Step + Sequence.At hop. The gap between the two
// is the per-hop cost the flat walk core removes (map lookup, interface
// dispatch, error plumbing).
func BenchmarkFlatWalkStep(b *testing.B) {
	red, err := degred.Reduce(gen.Grid(16, 16))
	if err != nil {
		b.Fatal(err)
	}
	f := red.Flat()
	seq := flatgraph.Seq{Seed: 1, Base: 3, Length: ues.Length(f.NumNodes(), 0)}
	node, inPort := int32(0), int32(0)
	l := int64(seq.Length)
	// The measured loop is the walk core's real hop shape: directions
	// prefetched in blocks, then one flat step per hop.
	var dirs [128]int8
	i, k := int64(1), len(dirs)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if k == len(dirs) {
			if i+int64(len(dirs)) > l {
				i = 1
			}
			seq.Fill(dirs[:], i)
			k = 0
		}
		node, inPort = f.Step(node, inPort, int32(dirs[k]))
		k++
		i++
	}
	_, _ = node, inPort
}

// BenchmarkFlatRoute measures the steady-state hop loop of a prepared
// route: one complete forward + backtrack walk on the compiled snapshot,
// which performs zero allocations (the criterion the flat core exists
// for). Engine-level bookkeeping on top of this loop is measured by
// BenchmarkPreparedRoute.
func BenchmarkFlatRoute(b *testing.B) {
	red, err := degred.Reduce(gen.Grid(6, 6))
	if err != nil {
		b.Fatal(err)
	}
	f := red.Flat()
	entryID, ok := red.Entry(0)
	if !ok {
		b.Fatal("no entry for node 0")
	}
	entry, _ := f.Index(entryID)
	seq := flatgraph.Seq{Seed: 7, Base: 3, Length: ues.Length(f.NumNodes(), 0)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := f.RouteWalk(entry, 0, 35, seq)
		if err != nil {
			b.Fatal(err)
		}
		if !out.Success {
			b.Fatal("route failed")
		}
	}
}

// BenchmarkFlatRouteParallel hammers one shared compiled Router from all
// cores — the serving shape the compile-once/walk-flat design targets: the
// snapshot is immutable, so concurrent queries share it with zero
// coordination.
func BenchmarkFlatRouteParallel(b *testing.B) {
	nw := NewGrid(6, 6)
	r, err := nw.Compile(WithSeed(7))
	if err != nil {
		b.Fatal(err)
	}
	var failed atomic.Bool
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			res, err := r.Route(0, 35)
			if err != nil || res.Status != StatusSuccess {
				failed.Store(true)
				return
			}
		}
	})
	if failed.Load() {
		b.Fatal("parallel route failed")
	}
}

// BenchmarkDegreeReduction measures the Figure 1 construction.
func BenchmarkDegreeReduction(b *testing.B) {
	g := gen.UDG2D(256, 0.15, 3).G
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := degred.Reduce(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeaderCodec measures the O(log n) header round trip.
func BenchmarkHeaderCodec(b *testing.B) {
	h := netsim.Header{Src: 123456, Dst: 654321, Dir: netsim.Forward, Index: 1 << 30}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := h.Encode()
		if _, err := netsim.DecodeHeader(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteGrid measures end-to-end routing (known bound, single
// round) on a 8x8 grid.
func BenchmarkRouteGrid(b *testing.B) {
	g := gen.Grid(8, 8)
	red, err := degred.Reduce(g)
	if err != nil {
		b.Fatal(err)
	}
	np := red.Graph().NumNodes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := route.New(g, route.Config{Seed: uint64(i), KnownN: np})
		if err != nil {
			b.Fatal(err)
		}
		res, err := r.Route(0, 63)
		if err != nil {
			b.Fatal(err)
		}
		if res.Status != netsim.StatusSuccess {
			b.Fatal("route failed")
		}
	}
}

// BenchmarkRouteUnknownBound measures the full doubling loop on a cycle.
func BenchmarkRouteUnknownBound(b *testing.B) {
	g := gen.Cycle(32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := route.New(g, route.Config{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Route(0, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBroadcast measures a full component broadcast with confirmation.
func BenchmarkBroadcast(b *testing.B) {
	g := gen.Grid(6, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := route.New(g, route.Config{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		res, err := r.Broadcast(0)
		if err != nil {
			b.Fatal(err)
		}
		if res.Reached != 36 {
			b.Fatal("broadcast incomplete")
		}
	}
}

// BenchmarkShuffleLabels measures adversarial relabeling (test tooling).
func BenchmarkShuffleLabels(b *testing.B) {
	g := gen.Grid(16, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ShuffleLabels(uint64(i))
	}
}

// BenchmarkPublicAPIRoute measures the facade overhead end to end.
func BenchmarkPublicAPIRoute(b *testing.B) {
	nw := NewGrid(6, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := nw.Route(0, 35, WithSeed(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if res.Status != StatusSuccess {
			b.Fatal("route failed")
		}
	}
}

// BenchmarkPreparedRoute measures the same query as
// BenchmarkPublicAPIRoute served by a Router compiled once — the
// amortization the prepared engine exists for. Compare ns/op and
// allocs/op against the per-call path.
func BenchmarkPreparedRoute(b *testing.B) {
	nw := NewGrid(6, 6)
	r, err := nw.Compile(WithSeed(7))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Route(0, 35)
		if err != nil {
			b.Fatal(err)
		}
		if res.Status != StatusSuccess {
			b.Fatal("route failed")
		}
	}
}

// BenchmarkRouteBatch measures the batch fan-out: 64 queries per
// operation across the worker pool (per-query cost = ns/op ÷ 64).
func BenchmarkRouteBatch(b *testing.B) {
	nw := NewGrid(8, 8)
	r, err := nw.Compile(WithSeed(7))
	if err != nil {
		b.Fatal(err)
	}
	nodes := nw.Nodes()
	queries := make([]BatchQuery, 64)
	for i := range queries {
		queries[i] = BatchQuery{Src: nodes[i%len(nodes)], Dst: nodes[(i*5+1)%len(nodes)]}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, br := range r.RouteBatch(queries) {
			if br.Err != nil {
				b.Fatal(br.Err)
			}
		}
	}
}

// BenchmarkCompile measures the one-time preparation cost the prepared
// path amortizes away (dominated by the Figure 1 reduction).
func BenchmarkCompile(b *testing.B) {
	g := gen.UDG2D(256, 0.15, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw := &Network{g: g.G, pos: g.Pos}
		if _, err := nw.Compile(WithSeed(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphNeighbor measures the port lookup at the heart of every
// hop.
func BenchmarkGraphNeighbor(b *testing.B) {
	g := gen.Grid(16, 16)
	b.ReportAllocs()
	var sink graph.NodeID
	for i := 0; i < b.N; i++ {
		h, err := g.Neighbor(graph.NodeID(i%256), i%2)
		if err != nil {
			b.Fatal(err)
		}
		sink = h.To
	}
	_ = sink
}
