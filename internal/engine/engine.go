package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/count"
	"repro/internal/degred"
	"repro/internal/graph"
	"repro/internal/hybrid"
	"repro/internal/route"
	"repro/internal/trace"
	"repro/internal/ues"
)

// ErrNoGraph is returned by Compile when given a nil graph.
var ErrNoGraph = errors.New("engine: nil graph")

// Config parameterizes a compiled Engine. The zero value is usable and
// gives the paper's defaults.
type Config struct {
	// Seed selects the exploration sequence family T_n shared by all
	// queries served by this engine.
	Seed uint64
	// LengthFactor scales sequence lengths (ues.Length); 0 = default.
	LengthFactor int
	// KnownBound, if > 0, promises an upper bound on component sizes in
	// the reduced graph, skipping the doubling loop on every query.
	KnownBound int
	// MaxBound caps the doubling loop (0 = 4·|V(G′)|).
	MaxBound int
	// NoDegreeReduction walks the original graph directly (the Figure 1
	// ablation). Counting still uses the reduction, as in §4.
	NoDegreeReduction bool
	// MemoryBudgetBits overrides the enforced per-activation node memory
	// budget (0 = the Θ(log n) default).
	MemoryBudgetBits int
	// MessageFaithfulCounting makes Count execute §4's Retrieve
	// primitives as real message walks with full hop accounting.
	MessageFaithfulCounting bool
	// DisableCertificates turns off the O(1) reachability-certificate
	// answer for provably-unreachable pairs, forcing every failure verdict
	// through the full doubling-loop walk (the paper's unoptimized §3
	// behavior; also what trace tests that want to watch a failing walk
	// need).
	DisableCertificates bool
	// Workers bounds the batch worker pool (0 = GOMAXPROCS).
	Workers int
}

// Engine is a routing engine compiled for one fixed network. All methods
// are safe for concurrent use; construction state is immutable after
// Compile and per-query state lives entirely on the query's stack (plus
// the lock-free sequence cache and metrics).
type Engine struct {
	g       *graph.Graph
	red     *degred.Reduced
	router  *route.Router
	counter *count.Counter
	cfg     Config

	// seqs caches the compiled T_bound family keyed by bound, so the
	// doubling schedule's handful of distinct bounds is derived once and
	// shared by every concurrent walker.
	seqs sync.Map // int -> ues.Sequence
	m    *metrics

	// compileTime is the wall time Compile spent building this engine —
	// the amortized cost every query shares. Immutable after Compile.
	compileTime time.Duration
}

// Compile builds the engine for g: one degree reduction, one router, one
// counter, one (lazily filled) sequence-family cache. g must not be
// mutated afterwards.
func Compile(g *graph.Graph, cfg Config) (*Engine, error) {
	if g == nil {
		return nil, ErrNoGraph
	}
	start := time.Now()
	red, err := degred.Reduce(g)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	e, err := CompileWithReduced(g, red, cfg)
	if err != nil {
		return nil, err
	}
	// Charge the reduction to the compile clock too: CompileWithReduced
	// only timed its own share.
	e.compileTime = time.Since(start)
	return e, nil
}

// CompileWithReduced builds the engine from a precomputed degree reduction
// of g, for callers (like the facade) that cache the reduction artifact
// across engines with different protocol configurations.
func CompileWithReduced(g *graph.Graph, red *degred.Reduced, cfg Config) (*Engine, error) {
	if g == nil {
		return nil, ErrNoGraph
	}
	if red == nil {
		return nil, errors.New("engine: nil reduction")
	}
	start := time.Now()
	// Build the compiled CSR snapshot of G′ eagerly: the router, counter,
	// and every query they serve share this one flat artifact, and serving
	// should pay for its construction at compile time, not on the first
	// query.
	red.Flat()
	e := &Engine{g: g, red: red, cfg: cfg, m: newMetrics()}
	rcfg := e.routeConfig()
	var err error
	if cfg.NoDegreeReduction {
		e.router, err = route.New(g, rcfg)
	} else {
		e.router, err = route.NewFromReduced(g, red, rcfg)
	}
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	e.counter, err = count.NewFromReduced(g, red, e.countConfig())
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	e.compileTime = time.Since(start)
	return e, nil
}

// routeConfig derives the router configuration, with sequence generation
// routed through the engine's cache.
func (e *Engine) routeConfig() route.Config {
	return route.Config{
		Seed:                e.cfg.Seed,
		LengthFactor:        e.cfg.LengthFactor,
		KnownN:              e.cfg.KnownBound,
		MaxBound:            e.cfg.MaxBound,
		NoDegreeReduction:   e.cfg.NoDegreeReduction,
		MemoryBudgetBits:    e.cfg.MemoryBudgetBits,
		DisableCertificates: e.cfg.DisableCertificates,
		SequenceFactory:     e.sequence,
	}
}

func (e *Engine) countConfig() count.Config {
	mode := count.ModeLocal
	if e.cfg.MessageFaithfulCounting {
		mode = count.ModeMessages
	}
	return count.Config{
		Seed:         e.cfg.Seed,
		LengthFactor: e.cfg.LengthFactor,
		Mode:         mode,
		MaxBound:     e.cfg.MaxBound,
	}
}

// sequence returns the cached compiled T_bound, deriving it on first use.
// The cache is append-only and lock-free on the hit path; compiled
// sequences are immutable and shared by all concurrent walkers.
func (e *Engine) sequence(bound int) ues.Sequence {
	if v, ok := e.seqs.Load(bound); ok {
		e.m.seqHits.Add(1)
		return v.(ues.Sequence)
	}
	e.m.seqMisses.Add(1)
	base := 3
	if e.cfg.NoDegreeReduction {
		base = 0
	}
	p := &ues.Pseudorandom{Seed: e.cfg.Seed, N: bound, Base: base, LengthFactor: e.cfg.LengthFactor}
	actual, _ := e.seqs.LoadOrStore(bound, p.Compiled())
	return actual.(ues.Sequence)
}

// Graph returns the compiled network. Read-only.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Reduced returns the shared degree-reduction artifact. Read-only.
func (e *Engine) Reduced() *degred.Reduced { return e.red }

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// CompileDuration returns the wall time Compile spent building this
// engine (degree reduction, router, counter, flat CSR snapshot) — the
// one-off cost every query amortizes.
func (e *Engine) CompileDuration() time.Duration { return e.compileTime }

// Workers returns the effective batch worker-pool size.
func (e *Engine) Workers() int {
	if e.cfg.Workers > 0 {
		return e.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Route answers one s→t query on the compiled network.
func (e *Engine) Route(s, t graph.NodeID) (*route.Result, error) {
	start := sampleStart(e.m.routes.Add(1))
	res, err := e.router.Route(s, t)
	e.m.recordRoute(res, err, start)
	return res, err
}

// RouteTraced is Route recording the walk under sp: a child span for the
// query, one span per round with the walk's hop tail, and the verdict
// attributes. A nil (unsampled) span serves the query exactly like Route
// at a pointer-test's extra cost.
func (e *Engine) RouteTraced(s, t graph.NodeID, sp *trace.Span) (*route.Result, error) {
	if !sp.Recording() {
		return e.Route(s, t)
	}
	qsp := sp.Child("engine.route")
	defer qsp.End()
	qsp.SetAttr(trace.Int("src", int64(s)), trace.Int("dst", int64(t)))
	start := sampleStart(e.m.routes.Add(1))
	res, err := e.router.RouteTraced(s, t, qsp)
	e.m.recordRoute(res, err, start)
	annotateRoute(qsp, res, err)
	return res, err
}

// RouteBudgeted is Route with bounded work: the walk performs at most
// maxHops message hops (0 = unlimited) and honors ctx's deadline or
// cancellation at round boundaries. When either limit strikes first the
// result carries Exhausted and a resume Cursor; pass that cursor back to
// continue the walk exactly where it stopped. Provably-unreachable pairs
// on multi-component networks are answered in O(1) with a reachability
// Certificate instead of a walk (unless Config.DisableCertificates).
func (e *Engine) RouteBudgeted(ctx context.Context, s, t graph.NodeID, maxHops int64, cur *route.Cursor) (*route.Result, error) {
	return e.routeBudgeted(ctx, s, t, maxHops, cur, nil)
}

// RouteBudgetedTraced is RouteBudgeted recording the walk, budget, and
// resume events under sp. A nil (unsampled) span serves the query exactly
// like RouteBudgeted.
func (e *Engine) RouteBudgetedTraced(ctx context.Context, s, t graph.NodeID, maxHops int64, cur *route.Cursor, sp *trace.Span) (*route.Result, error) {
	return e.routeBudgeted(ctx, s, t, maxHops, cur, sp)
}

func (e *Engine) routeBudgeted(ctx context.Context, s, t graph.NodeID, maxHops int64, cur *route.Cursor, sp *trace.Span) (*route.Result, error) {
	var qsp *trace.Span
	if sp.Recording() {
		qsp = sp.Child("engine.route")
		defer qsp.End()
		qsp.SetAttr(trace.Int("src", int64(s)), trace.Int("dst", int64(t)))
	}
	start := sampleStart(e.m.routes.Add(1))
	if cur != nil {
		e.m.resumedWalks.Add(1)
	}
	res, err := e.router.RouteBudgetedTraced(ctx, s, t, maxHops, cur, qsp)
	e.m.recordRoute(res, err, start)
	annotateRoute(qsp, res, err)
	return res, err
}

// annotateRoute records a route result's headline statistics on the query
// span.
func annotateRoute(sp *trace.Span, res *route.Result, err error) {
	if err != nil {
		sp.SetAttr(trace.String("error", err.Error()))
	}
	if res == nil {
		return
	}
	sp.SetAttr(
		trace.String("status", res.Status.String()),
		trace.Int("hops", res.Hops),
		trace.Int("rounds", int64(len(res.Rounds))),
		trace.Int("bound", int64(res.Bound)),
		trace.Int("max_header_bits", int64(res.MaxHeaderBits)),
	)
	if res.Certificate != nil {
		sp.SetAttr(trace.Bool("certificate", true))
	}
	if res.Exhausted != "" {
		sp.SetAttr(trace.String("exhausted", string(res.Exhausted)))
	}
}

// RouteWithPath routes s→t and reconstructs the forward path on success.
func (e *Engine) RouteWithPath(s, t graph.NodeID) (*route.Result, []graph.NodeID, error) {
	start := sampleStart(e.m.routes.Add(1))
	res, path, err := e.router.RouteWithPath(s, t)
	e.m.recordRoute(res, err, start)
	return res, path, err
}

// Broadcast delivers a payload to every node of s's component.
func (e *Engine) Broadcast(s graph.NodeID) (*route.BroadcastResult, error) {
	res, err := e.router.Broadcast(s)
	e.m.recordBroadcast(res, err)
	return res, err
}

// Count computes |C_s| per §4, sharing the compiled degree reduction.
func (e *Engine) Count(s graph.NodeID) (*count.Result, error) {
	res, err := e.counter.Count(s)
	e.m.recordCount(res, err)
	return res, err
}

// Hybrid races a random walk against the compiled guaranteed router
// (Corollary 2). walkSeed seeds the probabilistic prober only.
func (e *Engine) Hybrid(s, t graph.NodeID, walkSeed uint64) (*hybrid.Result, error) {
	res, err := hybrid.RouteHybridWith(e.router, s, t, walkSeed)
	e.m.recordHybrid(res, err)
	return res, err
}
