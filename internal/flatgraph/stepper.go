package flatgraph

import (
	"fmt"

	"repro/internal/graph"
)

// RouteStepper is the hop-at-a-time form of RouteWalk, for callers that
// interleave the guaranteed walk with another process (the Corollary 2
// race) or inspect every position (the differential tests). Step
// granularity matches netsim.Stepper exactly: each Step is one handler
// activation, performing one hop unless the activation is terminal, so
// step-interleaved compositions charge identical step counts on either
// execution path.
type RouteStepper struct {
	f        *Graph
	seq      Seq
	src, dst graph.NodeID
	node     int32
	inPort   int32
	index    int64
	backward bool
	success  bool
	done     bool
	hops     int64
	err      error

	// ins holds the instrumented mode's state (see Instrument): per-hop
	// sink plus the reference memory metering, so a traced round still
	// reports RouteWalk's exact RouteOutcome without leaving the flat
	// path. One pointer, so the untraced stepper stays in its allocation
	// size class.
	ins *stepInstr
}

// stepInstr is the instrumented stepper's extra state, allocated only
// when Instrument is called.
type stepInstr struct {
	sink      HopSink
	peak      int
	maxIndex  int64
	delivered int64
}

// HopSink receives one notification per hop performed by an instrumented
// stepper: the original-graph node the message stands at after the hop,
// the header index as it leaves that activation, and the walk direction.
// Called inline from Step — keep it allocation-free.
type HopSink func(node graph.NodeID, index int64, backward bool)

// Instrument attaches a hop sink (which may be nil) and enables the
// reference memory metering, so a fully stepped round reports the same
// RouteOutcome as RouteWalk. Call before the first Step. The
// uninstrumented Step keeps a single predictable dispatch branch; every
// per-hop instrumentation cost lives on the instrumented path.
func (st *RouteStepper) Instrument(sink HopSink) {
	st.ins = &stepInstr{sink: sink}
}

// RouteStepper starts a route round at the given dense start node,
// searching for dst and confirming back to src.
func (f *Graph) RouteStepper(start int32, src, dst graph.NodeID, seq Seq) (*RouteStepper, error) {
	return f.ResumeRouteStepper(start, 0, src, dst, seq, 1, false, false)
}

// ResumeRouteStepper reconstructs a route round mid-flight from its
// stateless header state — the index into the sequence, the direction, and
// the verdict so far — at an arbitrary re-entry position. This is the
// resumption the paper's obliviousness argument licenses: a walk's entire
// state is (position, header), so when the topology is recompiled into a
// new snapshot the round picks up wherever the message happens to stand.
// The dynamic subsystem re-enters at the canonical gadget of the message's
// current original node with inPort 0, exactly like a fresh round's start.
func (f *Graph) ResumeRouteStepper(node, inPort int32, src, dst graph.NodeID, seq Seq, index int64, backward, success bool) (*RouteStepper, error) {
	if !f.regular3 || seq.Base != 3 {
		return nil, ErrNotRegular
	}
	if node < 0 || int(node) >= f.NumNodes() {
		return nil, fmt.Errorf("flatgraph: resume at node %d outside [0,%d)", node, f.NumNodes())
	}
	if inPort < 0 || inPort > 2 {
		return nil, fmt.Errorf("flatgraph: resume with in-port %d outside [0,3)", inPort)
	}
	return &RouteStepper{
		f: f, seq: seq, src: src, dst: dst,
		node: node, inPort: inPort, index: index,
		backward: backward, success: success,
	}, nil
}

// Step performs one activation (and its hop, if any). It returns true once
// the round has terminated: delivered with a verdict, or failed with Err.
func (st *RouteStepper) Step() bool {
	if st.ins != nil {
		return st.stepInstrumented()
	}
	if st.done {
		return true
	}
	if st.backward {
		if st.f.orig[st.node] == st.src {
			st.done = true
			return true
		}
		if st.index < 1 {
			st.err = ErrUnwound
			st.done = true
			return true
		}
		t := st.seq.At(st.index)
		st.index--
		exit := st.inPort - t
		if exit < 0 {
			exit += 3
		}
		st.hop(exit)
		return false
	}
	if st.f.orig[st.node] == st.dst {
		st.backward, st.success = true, true
		st.index--
		st.hop(st.inPort)
		return false
	}
	if st.index > int64(st.seq.Length) {
		st.backward = true
		st.index--
		st.hop(st.inPort)
		return false
	}
	t := st.seq.At(st.index)
	st.index++
	exit := st.inPort + t
	if exit >= 3 {
		exit -= 3
	}
	st.hop(exit)
	return false
}

// stepInstrumented is Step plus the RouteWalk metering replica and the
// per-hop sink call. The activation charges mirror walk.go exactly: every
// activation carries memw + inPort + 4 + wordBits(index); stepping
// activations add the direction register t+1; terminal activations
// (destination found, sequence exhausted, backward delivery) charge the
// base only.
func (st *RouteStepper) stepInstrumented() bool {
	if st.done {
		return true
	}
	act := int(st.f.memw[st.node]) + int(st.inPort) + 4 + wordBits(st.index)
	if st.backward {
		if st.f.orig[st.node] == st.src {
			if act > st.ins.peak {
				st.ins.peak = act
			}
			st.ins.delivered = st.index
			st.done = true
			return true
		}
		if st.index < 1 {
			st.err = ErrUnwound
			st.done = true
			return true
		}
		t := st.seq.At(st.index)
		if s := act + int(t) + 1; s > st.ins.peak {
			st.ins.peak = s
		}
		st.index--
		exit := st.inPort - t
		if exit < 0 {
			exit += 3
		}
		st.hop(exit)
		st.emit()
		return false
	}
	if st.f.orig[st.node] == st.dst {
		if act > st.ins.peak {
			st.ins.peak = act
		}
		if st.index > st.ins.maxIndex {
			st.ins.maxIndex = st.index
		}
		st.backward, st.success = true, true
		st.index--
		st.hop(st.inPort)
		st.emit()
		return false
	}
	if st.index > int64(st.seq.Length) {
		if act > st.ins.peak {
			st.ins.peak = act
		}
		if st.index > st.ins.maxIndex {
			st.ins.maxIndex = st.index
		}
		st.backward = true
		st.index--
		st.hop(st.inPort)
		st.emit()
		return false
	}
	t := st.seq.At(st.index)
	if s := act + int(t) + 1; s > st.ins.peak {
		st.ins.peak = s
	}
	st.index++
	exit := st.inPort + t
	if exit >= 3 {
		exit -= 3
	}
	st.hop(exit)
	st.emit()
	return false
}

func (st *RouteStepper) emit() {
	if st.ins.sink != nil {
		st.ins.sink(st.f.orig[st.node], st.index, st.backward)
	}
}

// Outcome reports the RouteWalk-equivalent statistics of a fully stepped
// instrumented round: valid once Done with a nil Err on a stepper that
// was instrumented before its first Step and started at a round origin.
func (st *RouteStepper) Outcome() RouteOutcome {
	if st.ins == nil {
		return RouteOutcome{Success: st.success, Hops: st.hops}
	}
	return RouteOutcome{
		Success:        st.success,
		Hops:           st.hops,
		DeliveredIndex: st.ins.delivered,
		MaxIndex:       st.ins.maxIndex,
		PeakMemoryBits: st.ins.peak,
	}
}

func (st *RouteStepper) hop(exit int32) {
	h := st.f.halves[st.node*3+exit]
	st.node, st.inPort = h.To, h.Port
	st.hops++
}

// Done reports whether the round has terminated.
func (st *RouteStepper) Done() bool { return st.done }

// Success reports the verdict: true if the forward walk reached the
// destination (valid once Done with a nil Err).
func (st *RouteStepper) Success() bool { return st.success }

// Hops returns the edge traversals performed so far.
func (st *RouteStepper) Hops() int64 { return st.hops }

// Err returns the terminal error, if any.
func (st *RouteStepper) Err() error { return st.err }

// Position returns the current dense node and arrival port.
func (st *RouteStepper) Position() (node, inPort int32) { return st.node, st.inPort }

// Index returns the current header index.
func (st *RouteStepper) Index() int64 { return st.index }

// Backward reports whether the walk has turned around.
func (st *RouteStepper) Backward() bool { return st.backward }
