// Package profrec is a profile flight recorder: a bounded ring of pprof
// snapshots captured automatically at the moment something goes wrong —
// an SLO window starts burning, a latency guard trips — so the profile
// an operator needs is the one taken DURING the incident, not the one
// they started by hand ten minutes after it ended. It parallels the
// trace flight recorder in internal/trace: always armed, bounded memory,
// queried after the fact.
//
// Each trip captures a heap snapshot synchronously and a windowed CPU
// profile asynchronously. CPU profiles are deltas by construction (they
// cover exactly the capture window); heap snapshots are full profiles
// that diff pairwise offline (`go tool pprof -diff_base earlier.pb.gz
// later.pb.gz`), which is why the ring keeps several — the snapshot from
// before the incident is the diff base for the one taken during it.
package profrec

import (
	"bytes"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Config sizes the recorder.
type Config struct {
	// Capacity is the snapshot ring size. Default 16.
	Capacity int

	// CPUWindow is how long each CPU capture runs. Default 5s.
	CPUWindow time.Duration

	// MinInterval rate-limits trips: a trip closer than this to the
	// previous accepted one is counted and dropped, so a flapping SLO
	// cannot turn the recorder into a profiling loop. Default 30s.
	MinInterval time.Duration

	// now is a test hook for the rate limiter's clock.
	now func() time.Time
}

func (c *Config) fill() {
	if c.Capacity <= 0 {
		c.Capacity = 16
	}
	if c.CPUWindow <= 0 {
		c.CPUWindow = 5 * time.Second
	}
	if c.MinInterval <= 0 {
		c.MinInterval = 30 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
}

// Info is one snapshot's metadata, as listed by GET /v1/profiles.
type Info struct {
	ID     int64     `json:"id"`
	Kind   string    `json:"kind"` // "heap" or "cpu"
	Reason string    `json:"reason"`
	At     time.Time `json:"at"`
	Bytes  int       `json:"bytes"`
}

type snapshot struct {
	info Info
	data []byte
}

// Recorder captures and retains profile snapshots. Safe for concurrent
// use; Trip is cheap when rate-limited.
type Recorder struct {
	cfg Config

	mu       sync.Mutex
	ring     []snapshot // newest appended; trimmed to Capacity
	lastTrip time.Time
	nextID   int64

	trips     atomic.Int64 // accepted trips
	dropped   atomic.Int64 // rate-limited trips
	evicted   atomic.Int64 // snapshots pushed out of the ring
	errors    atomic.Int64 // failed captures
	cpuActive atomic.Bool  // one CPU capture at a time (profiling is global)
}

// New builds a recorder.
func New(cfg Config) *Recorder {
	cfg.fill()
	return &Recorder{cfg: cfg}
}

// Trip asks the recorder to capture. It returns false when the trip was
// rate-limited. The heap snapshot is taken before returning; the CPU
// capture runs in the background for CPUWindow.
func (r *Recorder) Trip(reason string) bool {
	r.mu.Lock()
	now := r.cfg.now()
	if !r.lastTrip.IsZero() && now.Sub(r.lastTrip) < r.cfg.MinInterval {
		r.mu.Unlock()
		r.dropped.Add(1)
		return false
	}
	r.lastTrip = now
	r.mu.Unlock()
	r.trips.Add(1)

	r.captureHeap(reason, now)
	go r.captureCPU(reason)
	return true
}

func (r *Recorder) captureHeap(reason string, at time.Time) {
	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		r.errors.Add(1)
		return
	}
	r.keep("heap", reason, at, buf.Bytes())
}

func (r *Recorder) captureCPU(reason string) {
	// CPU profiling is process-global: if another capture (ours or an
	// operator's via /debug/pprof) is running, record the miss and leave
	// it alone.
	if !r.cpuActive.CompareAndSwap(false, true) {
		r.errors.Add(1)
		return
	}
	defer r.cpuActive.Store(false)
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		r.errors.Add(1)
		return
	}
	time.Sleep(r.cfg.CPUWindow)
	pprof.StopCPUProfile()
	r.keep("cpu", reason, r.cfg.now(), buf.Bytes())
}

func (r *Recorder) keep(kind, reason string, at time.Time, data []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	r.ring = append(r.ring, snapshot{
		info: Info{ID: r.nextID, Kind: kind, Reason: reason, At: at, Bytes: len(data)},
		data: data,
	})
	if over := len(r.ring) - r.cfg.Capacity; over > 0 {
		r.ring = append([]snapshot(nil), r.ring[over:]...)
		r.evicted.Add(int64(over))
	}
}

// List returns snapshot metadata, newest first.
func (r *Recorder) List() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Info, 0, len(r.ring))
	for i := len(r.ring) - 1; i >= 0; i-- {
		out = append(out, r.ring[i].info)
	}
	return out
}

// Get returns one snapshot's metadata and raw pprof bytes by ID.
func (r *Recorder) Get(id int64) (Info, []byte, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.ring) - 1; i >= 0; i-- {
		if r.ring[i].info.ID == id {
			return r.ring[i].info, r.ring[i].data, true
		}
	}
	return Info{}, nil, false
}

// Stats are the recorder's own counters.
type Stats struct {
	Trips   int64 `json:"trips"`
	Dropped int64 `json:"dropped"`
	Evicted int64 `json:"evicted"`
	Errors  int64 `json:"errors"`
	Held    int64 `json:"held"`
}

// Stats returns a snapshot of the recorder's counters.
func (r *Recorder) Stats() Stats {
	r.mu.Lock()
	held := int64(len(r.ring))
	r.mu.Unlock()
	return Stats{
		Trips:   r.trips.Load(),
		Dropped: r.dropped.Load(),
		Evicted: r.evicted.Load(),
		Errors:  r.errors.Load(),
		Held:    held,
	}
}

// Filename suggests a download name for a snapshot.
func (i Info) Filename() string {
	return fmt.Sprintf("%s-%d.pb.gz", i.Kind, i.ID)
}
