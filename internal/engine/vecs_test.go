package engine

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dynamic"
	"repro/internal/gen"
	"repro/internal/obs"
)

func TestAttachVecs(t *testing.T) {
	e, err := Compile(gen.Grid(4, 4), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	v := NewVecs(4)
	e.AttachVecs(v, "net-a")

	// Static and dynamic queries land in their per-network series.
	for i := 0; i < 20; i++ {
		if _, err := e.Route(0, 15); err != nil {
			t.Fatal(err)
		}
	}
	w := e.NewWorld(&dynamic.EdgeChurn{Seed: 5, PDrop: 0.05, AddRate: 1})
	if _, err := e.RouteDynamic(w, 0, 15, dynamic.Config{HopsPerEpoch: -1}); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	if err := v.Register(reg); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`adhoc_network_routes_total{network="net-a",kind="static"} 20`,
		`adhoc_network_routes_total{network="net-a",kind="dynamic"} 1`,
		`adhoc_network_errors_total{network="net-a"} 0`,
		// 21 queries on the 1-in-8 grid: at least one sampled observation.
		`adhoc_network_route_seconds_count{network="net-a"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if errs := obs.Lint(out, false); errs != nil {
		t.Fatalf("lint: %v", errs)
	}

	// An unattached engine keeps working (nil-check path).
	e2, err := Compile(gen.Grid(3, 3), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Route(0, 8); err != nil {
		t.Fatal(err)
	}
}
