package main

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/dynamic"
	"repro/internal/obs"
	"repro/internal/registry"
)

// Proxy-tier headers. X-Adhoc-Forwarded is the single-hop loop guard: a
// request carrying it is served locally no matter what the ring says, so
// two shards with momentarily different views bounce a request at most
// once instead of ping-ponging it. X-Adhoc-Shard names the shard that
// actually served the request (the forward target, or self).
const (
	forwardedHeader = "X-Adhoc-Forwarded"
	shardHeader     = "X-Adhoc-Shard"
)

// migratePath is the internal endpoint world ownership moves over during
// rebalance and drain. Like the gossip endpoint it bypasses admission
// control: a draining shard must be able to hand its worlds to a busy
// peer.
const migratePath = "/v1/cluster/migrate"

// clusterConfig carries the -cluster-* flags into newServer.
type clusterConfig struct {
	name      string        // stable shard identity (ring + gossip name)
	advertise string        // advertised base URL; "" = derive from the bound listener
	peers     []string      // seed base URLs for gossip bootstrap
	vnodes    int           // virtual nodes per member (0 = cluster.DefaultVnodes)
	interval  time.Duration // gossip tick cadence (0 = 500ms)
	suspect   int           // ticks of silence before suspect (0 = default)
	dead      int           // further ticks before dead (0 = default)
}

// clusterNode is one shard's distribution layer: gossip membership, the
// consistent-hash ring rebuilt on every view change, the forwarding
// client, and the world-rebalance machinery. The routing data plane is
// untouched — the node only decides WHERE a request runs, then either
// serves it locally or forwards it one hop.
type clusterNode struct {
	s   *server
	cfg clusterConfig

	gossip *cluster.Gossip
	ring   atomic.Pointer[cluster.Ring]
	client *http.Client

	// started gates rebalancing: ring changes during construction (the
	// initial self-only view) must not trigger migrations.
	started atomic.Bool
	// rebalMu serializes rebalance sweeps; a burst of ring changes folds
	// into sequential sweeps over the current view instead of racing.
	rebalMu sync.Mutex

	forwards      *obs.Counter
	forwardErrs   *obs.Counter
	migrationsOut *obs.Counter
	migrationsIn  *obs.Counter
	migrationErrs *obs.Counter
	ringChanges   *obs.Counter
}

// newClusterNode wires the distribution layer for s.
func newClusterNode(s *server, cfg clusterConfig) *clusterNode {
	if cfg.vnodes <= 0 {
		cfg.vnodes = cluster.DefaultVnodes
	}
	if cfg.interval <= 0 {
		cfg.interval = 500 * time.Millisecond
	}
	c := &clusterNode{
		s:      s,
		cfg:    cfg,
		client: &http.Client{Timeout: 10 * time.Second},
		forwards: obs.NewCounter("adhoc_cluster_forwards_total",
			"Requests forwarded to their owning shard.", nil),
		forwardErrs: obs.NewCounter("adhoc_cluster_forward_errors_total",
			"Forwards that failed at the transport (answered 502).", nil),
		migrationsOut: obs.NewCounter("adhoc_cluster_migrations_out_total",
			"Worlds this shard handed to their new owner during rebalance or drain.", nil),
		migrationsIn: obs.NewCounter("adhoc_cluster_migrations_in_total",
			"Worlds this shard received and replayed from another shard.", nil),
		migrationErrs: obs.NewCounter("adhoc_cluster_migration_errors_total",
			"World migrations that failed (world stays on the old owner).", nil),
		ringChanges: obs.NewCounter("adhoc_cluster_ring_changes_total",
			"Ring rebuilds caused by membership changes.", nil),
	}
	c.gossip = cluster.New(cluster.Config{
		Self:              cluster.PeerState{Name: cfg.name, Addr: cfg.advertise},
		Seeds:             cfg.peers,
		SuspectAfterTicks: cfg.suspect,
		DeadAfterTicks:    cfg.dead,
		Transport:         cluster.NewHTTPTransport(cfg.name),
		OnChange:          c.onChange,
	})
	c.refreshRing()
	return c
}

// refreshRing rebuilds the placement ring from the current alive set.
func (c *clusterNode) refreshRing() {
	c.ring.Store(cluster.BuildRing(c.gossip.Membership().Alive(), c.cfg.vnodes))
}

// onChange runs on every alive-set change: rebuild the ring, then sweep
// the local worlds for any whose ownership moved. The sweep is async —
// OnChange fires from gossip goroutines that must not block on HTTP.
func (c *clusterNode) onChange() {
	c.refreshRing()
	c.ringChanges.Inc()
	if c.started.Load() {
		go c.rebalanceWorlds(context.Background())
	}
}

// run starts the gossip loop. boundAddr is the base URL derived from the
// actual listener, used when no -cluster-advertise was configured (the
// :0 and single-host cases).
func (c *clusterNode) run(boundAddr string, stop <-chan struct{}) {
	if c.cfg.advertise == "" {
		c.setAdvertise(boundAddr)
	}
	c.started.Store(true)
	c.gossip.Run(c.cfg.interval, stop)
}

// setAdvertise fixes self's advertised address after the listener is
// bound (tests and :0 binds construct the server before the port exists).
func (c *clusterNode) setAdvertise(addr string) {
	c.cfg.advertise = addr
	c.gossip.Membership().SetSelfAddr(addr)
	c.refreshRing()
}

// owner resolves key's owning shard on the current ring.
func (c *clusterNode) owner(key string) (cluster.Member, bool) {
	return c.ring.Load().Owner(key)
}

// leave departs the cluster deliberately: broadcast the death verdict,
// then synchronously hand every local world to its new owner. Called from
// BeginDrain, before the listener closes, so migrations still have a
// serving peer set to land on.
func (c *clusterNode) leave() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c.gossip.Leave(ctx)
	c.refreshRing() // self is gone from the alive set now
	c.rebalanceWorlds(ctx)
}

// rebalanceWorlds migrates every locally-resident world whose owner on
// the current ring is some other shard. Successful handoff deletes the
// local copy; failures leave it in place (counted, retried on the next
// ring change).
func (c *clusterNode) rebalanceWorlds(ctx context.Context) {
	c.rebalMu.Lock()
	defer c.rebalMu.Unlock()
	for _, ent := range c.s.worlds.List() {
		ring := c.ring.Load()
		owner, ok := ring.Owner("world:" + ent.ID)
		if !ok || owner.Name == c.cfg.name {
			continue
		}
		if err := c.migrateWorld(ctx, ent, owner); err != nil {
			c.migrationErrs.Inc()
			continue
		}
		c.s.worlds.Delete(ent.ID)
		c.migrationsOut.Inc()
	}
}

// migratePayload is the world-handoff wire shape: everything the new
// owner needs to rebuild the world by replay — the backing network's spec
// (inline, so the transfer does not race the owner's LRU), the schedule,
// and how many epochs to advance. Schedules are epoch-deterministic, so
// the replayed world is byte-identical to the original.
type migratePayload struct {
	Name        string         `json:"name"`
	NetworkSpec *registry.Spec `json:"network_spec,omitempty"` // nil = the boot network
	Schedule    dynamic.Spec   `json:"schedule"`
	Epochs      int            `json:"epochs"`
}

// migrateWorld posts one world to its new owner.
func (c *clusterNode) migrateWorld(ctx context.Context, ent *registry.WorldEntry, owner cluster.Member) error {
	p := migratePayload{
		Name:     ent.ID,
		Schedule: ent.Schedule,
		Epochs:   ent.W.Snapshot().Epoch,
	}
	if ent.NetworkID != "" {
		net, ok := c.s.reg.Get(ent.NetworkID)
		if !ok {
			return fmt.Errorf("network %s evicted; cannot replay world %s elsewhere", ent.NetworkID, ent.ID)
		}
		p.NetworkSpec = &net.Spec
	}
	body, err := json.Marshal(p)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner.Addr+migratePath, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("migrate %s to %s: status %d", ent.ID, owner.Name, resp.StatusCode)
	}
	return nil
}

// fetchNetwork resolves a network that is not resident locally by asking
// its owning shard for the spec (GET /v1/networks/{id} carries it) and
// compiling it into the local registry. This is what lets a world whose
// name hashes to this shard be backed by a network whose ID hashes to
// another: the spec-derived ID guarantees both shards build the same
// engine.
func (c *clusterNode) fetchNetwork(ctx context.Context, id string) (*registry.Entry, bool) {
	owner, ok := c.owner("net:" + id)
	if !ok || owner.Name == c.cfg.name {
		return nil, false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, owner.Addr+"/v1/networks/"+id, nil)
	if err != nil {
		return nil, false
	}
	// Loop guard: the owner must answer from its own registry, not bounce
	// the lookup back here.
	req.Header.Set(forwardedHeader, c.cfg.name)
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, false
	}
	var info struct {
		Spec *registry.Spec `json:"spec"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil || info.Spec == nil {
		return nil, false
	}
	ent, _, err := c.s.reg.Obtain(*info.Spec)
	if err != nil {
		return nil, false
	}
	return ent, true
}

// handleInfo serves GET /v1/cluster: the shard map — this shard's
// identity, the ring (version + members), the raw peer states, and the
// gossip traffic counters. Converged shards report identical
// ring_version; that equality is the operational convergence check.
func (c *clusterNode) handleInfo(w http.ResponseWriter, _ *http.Request) {
	ring := c.ring.Load()
	writeJSON(w, http.StatusOK, struct {
		Self        string              `json:"self"`
		RingVersion string              `json:"ring_version"`
		Vnodes      int                 `json:"vnodes"`
		Members     []cluster.Member    `json:"members"`
		Peers       []cluster.PeerState `json:"peers"`
		Worlds      int                 `json:"worlds"`
		Gossip      cluster.Stats       `json:"gossip"`
	}{
		Self:        c.cfg.name,
		RingVersion: fmt.Sprintf("%016x", ring.Version()),
		Vnodes:      c.cfg.vnodes,
		Members:     ring.Members(),
		Peers:       c.gossip.Membership().Snapshot(),
		Worlds:      c.s.worlds.Len(),
		Gossip:      c.gossip.Stats(),
	})
}

// handleGossip serves POST /v1/cluster/gossip: merge the sender's view,
// reply with ours (push-pull). Bypasses admission control in ServeHTTP —
// an overloaded shard must not be gossiped dead — so the body cap is
// applied here.
func (c *clusterNode) handleGossip(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	var in cluster.Wire
	if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
		writeDecodeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, cluster.Wire{
		From:   c.cfg.name,
		States: c.gossip.HandleExchange(in.States),
	})
}

// handleMigrate serves POST /v1/cluster/migrate: rebuild the offered
// world by replay — obtain the backing network (compiling it if this
// shard never served it), build the schedule, advance to the source's
// epoch, then publish it in the world table. The world only becomes
// visible once fully caught up, so no request can observe it mid-replay.
func (c *clusterNode) handleMigrate(w http.ResponseWriter, r *http.Request) {
	if limit := c.s.maxBody; limit > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, limit)
	}
	var p migratePayload
	if !decodeBody(w, r, &p) {
		return
	}
	const maxMigrateEpochs = 1 << 20
	if p.Epochs < 0 || p.Epochs > maxMigrateEpochs {
		writeJSON(w, http.StatusBadRequest,
			errorBody{Error: fmt.Sprintf("epochs %d outside [0, %d]", p.Epochs, maxMigrateEpochs)})
		return
	}
	// Idempotence: a retried handoff (or one that raced a ring flap) finds
	// the world already resident and reports success without replaying.
	if ent, ok := c.s.worlds.Get(p.Name); ok {
		writeJSON(w, http.StatusOK, worldInfoOf(ent))
		return
	}
	eng, pos, netID := c.s.eng, c.s.pos, ""
	if p.NetworkSpec != nil {
		ent, _, err := c.s.reg.Obtain(*p.NetworkSpec)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
		eng, pos, netID = ent.Eng, ent.Pos, ent.ID
	}
	sched, err := p.Schedule.Build()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if err := c.s.worlds.Precheck(p.Name); err != nil {
		writeWorldCreateErr(w, err)
		return
	}
	world := eng.NewWorld(sched)
	if pos != nil {
		world.SetPositions(pos)
	}
	world.SetChaos(c.s.chaos)
	for i := 0; i < p.Epochs; i++ {
		if err := world.Advance(dynamic.Probe{}); err != nil {
			writeErr(w, err)
			return
		}
	}
	desc := p.Schedule.Kind
	if desc == "" {
		desc = "static"
	}
	ent, err := c.s.worlds.Create(p.Name, &registry.WorldEntry{
		NetworkID: netID,
		Desc:      desc,
		Eng:       eng,
		W:         world,
		Schedule:  p.Schedule,
	})
	if err != nil {
		writeWorldCreateErr(w, err)
		return
	}
	c.migrationsIn.Inc()
	writeJSON(w, http.StatusCreated, worldInfoOf(ent))
}

// keyFunc derives the placement key for a request. body is the raw
// request body for methods that carry one (already read by the wrapper).
// A rewritten body replaces the original (world creates get a generated
// cluster-unique name injected). ok=false means "cannot place" — serve
// locally and let the handler produce the proper client error.
type keyFunc func(r *http.Request, body []byte) (key string, rewritten []byte, ok bool)

// netIDKey places /v1/networks/{id}/* by the path's spec-derived ID.
func netIDKey(r *http.Request, _ []byte) (string, []byte, bool) {
	return "net:" + r.PathValue("id"), nil, true
}

// worldIDKey places /v1/worlds/{id}/* by the world name.
func worldIDKey(r *http.Request, _ []byte) (string, []byte, bool) {
	return "world:" + r.PathValue("id"), nil, true
}

// netCreateKey places POST /v1/networks by the spec's canonical ID — the
// same derivation the registry uses, so the create lands on the shard
// every later /v1/networks/{id}/route will hash to. The pre-decode is
// lenient; a body the strict handler would reject is served locally so
// the error reply is identical to single-server mode.
func netCreateKey(_ *http.Request, body []byte) (string, []byte, bool) {
	var spec registry.Spec
	if err := json.Unmarshal(body, &spec); err != nil {
		return "", nil, false
	}
	return "net:" + spec.ID(), nil, true
}

// worldCreateKey places POST /v1/worlds by the world name. A nameless
// create gets a generated cluster-unique name injected into the body
// first — per-shard "w<n>" counters would collide across shards.
func worldCreateKey(_ *http.Request, body []byte) (string, []byte, bool) {
	var probe struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		return "", nil, false
	}
	if probe.Name != "" {
		return "world:" + probe.Name, nil, true
	}
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(body, &fields); err != nil || fields == nil {
		return "", nil, false
	}
	name := genWorldName()
	nameJSON, err := json.Marshal(name)
	if err != nil {
		return "", nil, false
	}
	fields["name"] = nameJSON
	rewritten, err := json.Marshal(fields)
	if err != nil {
		return "", nil, false
	}
	return "world:" + name, rewritten, true
}

// genWorldName makes a cluster-unique world name. Random rather than a
// counter: shards share no sequence, and 48 bits keeps accidental
// collision out of reach at any plausible world count.
func genWorldName() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("adhocd: reading random world name: %v", err))
	}
	return "w-" + hex.EncodeToString(b[:])
}

// clustered wraps a tenant handler with ownership routing. Single-server
// mode (no cluster) is a nil check and a direct call — the data path is
// unchanged. In cluster mode: forwarded requests are served locally (the
// loop guard), owned keys are served locally, everything else is
// forwarded one hop to the owner.
func (s *server) clustered(kf keyFunc, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c := s.cluster
		if c == nil {
			h(w, r)
			return
		}
		if r.Header.Get(forwardedHeader) != "" {
			w.Header().Set(shardHeader, c.cfg.name)
			h(w, r)
			return
		}
		var body []byte
		if r.Body != nil && r.Method != http.MethodGet && r.Method != http.MethodDelete {
			var err error
			body, err = io.ReadAll(r.Body)
			if err != nil {
				// The MaxBytesReader cap maps to 413 exactly as it would have
				// inside the handler's decode.
				writeDecodeErr(w, err)
				return
			}
		}
		key, rewritten, ok := kf(r, body)
		if rewritten != nil {
			body = rewritten
		}
		if body != nil {
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
		}
		if !ok {
			// Unplaceable request (unparseable body): the local handler
			// produces the same 4xx any shard would.
			w.Header().Set(shardHeader, c.cfg.name)
			h(w, r)
			return
		}
		owner, found := c.owner(key)
		if !found || owner.Name == c.cfg.name {
			w.Header().Set(shardHeader, c.cfg.name)
			h(w, r)
			return
		}
		c.forward(w, r, owner, body)
	}
}

// forward relays r to its owning shard, stamping the loop guard, and
// copies the reply back verbatim. Transport failure is 502 — the client
// retries and may land on a healthier view.
func (c *clusterNode) forward(w http.ResponseWriter, r *http.Request, owner cluster.Member, body []byte) {
	c.forwards.Inc()
	req, err := http.NewRequestWithContext(r.Context(), r.Method, owner.Addr+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		c.forwardErrs.Inc()
		writeJSON(w, http.StatusBadGateway, errorBody{Error: fmt.Sprintf("forward to %s: %v", owner.Name, err)})
		return
	}
	req.Header = r.Header.Clone()
	req.Header.Set(forwardedHeader, c.cfg.name)
	resp, err := c.client.Do(req)
	if err != nil {
		c.forwardErrs.Inc()
		writeJSON(w, http.StatusBadGateway, errorBody{Error: fmt.Sprintf("forward to %s: %v", owner.Name, err)})
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set(shardHeader, owner.Name)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// registerMetrics exports the adhoc_cluster_* family.
func (c *clusterNode) registerMetrics(o *obs.Registry) error {
	return o.Register(
		c.forwards, c.forwardErrs, c.migrationsOut, c.migrationsIn, c.migrationErrs, c.ringChanges,
		obs.NewGaugeFunc("adhoc_cluster_members",
			"Alive members on this shard's ring.", nil,
			func() float64 { return float64(c.ring.Load().Len()) }),
		obs.NewGaugeFunc("adhoc_cluster_ring_version",
			"Low 32 bits of the ring's content hash; equal across shards iff their views have converged.", nil,
			func() float64 { return float64(c.ring.Load().Version() & 0xffffffff) }),
		obs.NewCounterFunc("adhoc_cluster_gossip_ticks_total",
			"Gossip protocol rounds run.", nil,
			func() float64 { return float64(c.gossip.Stats().Ticks) }),
		obs.NewCounterFunc("adhoc_cluster_gossip_exchanges_total",
			"Gossip exchanges attempted (push-pull messages sent).", nil,
			func() float64 { return float64(c.gossip.Stats().Exchanges) }),
		obs.NewCounterFunc("adhoc_cluster_gossip_failures_total",
			"Gossip exchanges that failed in transport (peer silence feeds the failure detector instead).", nil,
			func() float64 { return float64(c.gossip.Stats().Failures) }),
	)
}

// RunCluster starts the gossip loop; serve() calls it with the base URL
// of the bound listener once the port is known. No-op without -cluster.
func (s *server) RunCluster(boundAddr string, stop <-chan struct{}) {
	if s.cluster == nil {
		return
	}
	s.cluster.run(boundAddr, stop)
}

// advertiseURL derives a dialable base URL from a bound listener address:
// an unspecified host (":8080" binds "[::]") becomes 127.0.0.1, which is
// right for single-host clusters (CI, tests); multi-host deployments set
// -cluster-advertise explicitly.
func advertiseURL(bound net.Addr) string {
	host, port, err := net.SplitHostPort(bound.String())
	if err != nil {
		return "http://" + bound.String()
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}
