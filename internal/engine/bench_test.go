package engine

import (
	"context"
	"testing"
	"time"

	"repro/internal/dynamic"
	"repro/internal/gen"
	"repro/internal/netsim"
	"repro/internal/trace"
)

// BenchmarkInstrumentedSharedWorldRoute is the observability perf guard:
// the identical warm shared-world query as the dynamic package's
// BenchmarkSharedWorldRoute (Torus(5,5), 10 churned epochs, frozen-clock
// 0→18), but through Engine.RouteDynamic — i.e. including the always-on
// metrics this PR added (two clock reads, the latency/hop/header-bit
// histogram observes, and the counter adds). The acceptance bar
// (BENCH_PR5.json) is staying within 10% of BENCH_PR4.json's 0.9 µs.
func BenchmarkInstrumentedSharedWorldRoute(b *testing.B) {
	e, err := Compile(gen.Torus(5, 5), Config{Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	w := e.NewWorld(&dynamic.EdgeChurn{Seed: 11, PDrop: 0.08, AddRate: 1})
	for i := 0; i < 10; i++ {
		if err := w.Advance(dynamic.Probe{}); err != nil {
			b.Fatal(err)
		}
	}
	if _, _, err := w.Compiled(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RouteDynamic(w, 0, 18, dynamic.Config{HopsPerEpoch: -1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInstrumentedRoute prices one static prepared route through the
// instrumented engine (the /v1/route serving path minus HTTP).
func BenchmarkInstrumentedRoute(b *testing.B) {
	e, err := Compile(gen.Torus(5, 5), Config{Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Route(0, 18); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVecRoute is the per-network labeling perf guard: the same warm
// shared-world query as BenchmarkInstrumentedSharedWorldRoute, but with
// the engine attached to per-network metric vectors — so every query
// additionally pays the cached-child counter add and, on the 1-in-8
// sampled grid, the labeled histogram observe. The acceptance bar is
// staying within 1% of the unlabeled run in the same benchstat session
// (the vector lookup itself is off the hot path; only the nil-check
// branch and the child's own atomics remain).
func BenchmarkVecRoute(b *testing.B) {
	e, err := Compile(gen.Torus(5, 5), Config{Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	e.AttachVecs(NewVecs(8), "bench")
	w := e.NewWorld(&dynamic.EdgeChurn{Seed: 11, PDrop: 0.08, AddRate: 1})
	for i := 0; i < 10; i++ {
		if err := w.Advance(dynamic.Probe{}); err != nil {
			b.Fatal(err)
		}
	}
	if _, _, err := w.Compiled(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RouteDynamic(w, 0, 18, dynamic.Config{HopsPerEpoch: -1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBudgetedSharedWorldRoute is the bounded-work perf guard: the
// identical warm shared-world query as BenchmarkInstrumentedSharedWorldRoute,
// but through RouteDynamicBudgeted with a deadline context and a hop budget
// armed — i.e. every robustness feature of this PR live but never striking.
// The acceptance bar (BENCH_PR7.json) is staying within 1% of
// BENCH_PR6.json's 896.8 ns.
func BenchmarkBudgetedSharedWorldRoute(b *testing.B) {
	e, err := Compile(gen.Torus(5, 5), Config{Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	w := e.NewWorld(&dynamic.EdgeChurn{Seed: 11, PDrop: 0.08, AddRate: 1})
	for i := 0; i < 10; i++ {
		if err := w.Advance(dynamic.Probe{}); err != nil {
			b.Fatal(err)
		}
	}
	if _, _, err := w.Compiled(); err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RouteDynamicBudgeted(ctx, w, 0, 18, 1<<40, nil, dynamic.Config{HopsPerEpoch: -1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnreachableCertificate prices the O(1) reachability-certificate
// answer for a provably-unreachable pair on a two-component network. Its
// companion BenchmarkUnreachableFullBurn prices the same verdict through
// the full doubling-loop walk (certificates disabled); the acceptance bar
// is the certificate answering ≥100× faster.
func BenchmarkUnreachableCertificate(b *testing.B) {
	g, err := gen.DisjointUnion(gen.Grid(16, 16), gen.Cycle(5), 1000)
	if err != nil {
		b.Fatal(err)
	}
	e, err := Compile(g, Config{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Route(0, 1002)
		if err != nil {
			b.Fatal(err)
		}
		if res.Status != netsim.StatusFailure || res.Certificate == nil {
			b.Fatalf("status %v, certificate %v", res.Status, res.Certificate)
		}
	}
}

// BenchmarkUnreachableFullBurn is the certificate benchmark's control: the
// same unreachable verdict earned the §3 way, burning the doubling loop to
// the closure check.
func BenchmarkUnreachableFullBurn(b *testing.B) {
	g, err := gen.DisjointUnion(gen.Grid(16, 16), gen.Cycle(5), 1000)
	if err != nil {
		b.Fatal(err)
	}
	e, err := Compile(g, Config{Seed: 7, DisableCertificates: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Route(0, 1002)
		if err != nil {
			b.Fatal(err)
		}
		if res.Status != netsim.StatusFailure || res.Certificate != nil {
			b.Fatalf("status %v, certificate %v", res.Status, res.Certificate)
		}
	}
}

// BenchmarkArmedUnsampledSharedWorldRoute prices the same warm
// shared-world query through RouteDynamicTraced with a nil (unsampled)
// span — the cost every request pays when tracing is compiled in and
// armed but the sampler said no. The acceptance bar is staying within a
// few ns of BenchmarkInstrumentedSharedWorldRoute.
func BenchmarkArmedUnsampledSharedWorldRoute(b *testing.B) {
	e, err := Compile(gen.Torus(5, 5), Config{Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	w := e.NewWorld(&dynamic.EdgeChurn{Seed: 11, PDrop: 0.08, AddRate: 1})
	for i := 0; i < 10; i++ {
		if err := w.Advance(dynamic.Probe{}); err != nil {
			b.Fatal(err)
		}
	}
	if _, _, err := w.Compiled(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RouteDynamicTraced(w, 0, 18, dynamic.Config{HopsPerEpoch: -1}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracedSharedWorldRoute prices the fully sampled traced query —
// hop ring writes on every hop plus span bookkeeping — as documentation
// of what a sampled request costs relative to the unsampled baseline.
func BenchmarkTracedSharedWorldRoute(b *testing.B) {
	e, err := Compile(gen.Torus(5, 5), Config{Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	w := e.NewWorld(&dynamic.EdgeChurn{Seed: 11, PDrop: 0.08, AddRate: 1})
	for i := 0; i < 10; i++ {
		if err := w.Advance(dynamic.Probe{}); err != nil {
			b.Fatal(err)
		}
	}
	if _, _, err := w.Compiled(); err != nil {
		b.Fatal(err)
	}
	tc := trace.New(trace.Config{SampleRate: 1, SlowThreshold: -1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := tc.StartRequest("bench", "")
		if _, err := e.RouteDynamicTraced(w, 0, 18, dynamic.Config{HopsPerEpoch: -1}, tr.Root()); err != nil {
			b.Fatal(err)
		}
		tr.Finish()
	}
}
