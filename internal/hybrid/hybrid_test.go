package hybrid

import (
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/route"
)

func TestRouteHybridDelivers(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		s, d graph.NodeID
	}{
		{name: "cycle", g: gen.Cycle(12), s: 0, d: 6},
		{name: "grid", g: gen.Grid(4, 4), s: 0, d: 15},
		{name: "complete", g: gen.Complete(10), s: 1, d: 8},
		{name: "lollipop", g: gen.Lollipop(6, 6), s: 0, d: 11},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := RouteHybrid(tt.g, tt.s, tt.d, route.Config{Seed: 3}, 17)
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != netsim.StatusSuccess {
				t.Fatalf("status = %v", res.Status)
			}
			if res.Winner == "" || res.CombinedSteps <= 0 {
				t.Fatalf("implausible result: %+v", res)
			}
		})
	}
}

func TestRouteHybridSelf(t *testing.T) {
	res, err := RouteHybrid(gen.Cycle(4), 1, 1, route.Config{Seed: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != netsim.StatusSuccess {
		t.Fatalf("self hybrid = %+v", res)
	}
}

// TestRouteHybridGuaranteedTermination is the Corollary 2 payoff: the
// random walk alone never terminates on a disconnected pair (ttl=0), but
// the hybrid reaches a definitive failure.
func TestRouteHybridGuaranteedTermination(t *testing.T) {
	u, err := gen.DisjointUnion(gen.Cycle(6), gen.Cycle(6), 50)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RouteHybrid(u, 0, 51, route.Config{Seed: 5}, 23)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != netsim.StatusFailure {
		t.Fatalf("status = %v, want definitive failure", res.Status)
	}
	if res.Winner != "guaranteed-ues" {
		t.Fatalf("winner = %q", res.Winner)
	}
	if res.ProbSteps == 0 {
		t.Fatal("random walk never stepped")
	}
}

// TestRaceCombinedCostBound checks the 2·min(...)+1 interleaving bound.
func TestRaceCombinedCostBound(t *testing.T) {
	g := gen.Complete(12)
	r, err := route.New(g, route.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	prob, err := NewRandomWalk(g, 0, 5, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	guar, err := NewGuaranteed(r, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Race(prob, guar, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	minSteps := res.ProbSteps
	if res.GuarSteps < minSteps {
		minSteps = res.GuarSteps
	}
	if res.CombinedSteps > 2*minSteps+2 {
		t.Fatalf("combined %d exceeds 2·min+2 = %d", res.CombinedSteps, 2*minSteps+2)
	}
}

func TestRaceStepCap(t *testing.T) {
	// Two probers that can never deliver, with a tiny cap.
	u, err := gen.DisjointUnion(gen.Cycle(20), gen.Cycle(20), 100)
	if err != nil {
		t.Fatal(err)
	}
	r, err := route.New(u, route.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	prob, err := NewRandomWalk(u, 0, 101, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	guar, err := NewGuaranteed(r, 0, 101)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Race(prob, guar, 10); !errors.Is(err, ErrStepCap) {
		t.Fatalf("error = %v, want ErrStepCap", err)
	}
}

func TestRandomWalkProberTTL(t *testing.T) {
	g := gen.Path(50)
	w, err := NewRandomWalk(g, 0, 49, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	for !w.Step() {
	}
	if w.Delivered() {
		t.Fatal("5-step TTL cannot reach the end of a 50-path")
	}
	if w.Steps() != 5 {
		t.Fatalf("steps = %d, want 5", w.Steps())
	}
}

func TestRandomWalkProberIsolated(t *testing.T) {
	g := graph.New()
	g.EnsureNode(0)
	g.EnsureNode(1)
	w, err := NewRandomWalk(g, 0, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Step() || w.Delivered() {
		t.Fatal("isolated walk must terminate undelivered")
	}
}

func TestGreedyProber(t *testing.T) {
	ud := gen.UDG2D(60, 0.4, 5)
	comp := ud.G.ComponentOf(0)
	if len(comp) < 5 {
		t.Skip("tiny component")
	}
	d := comp[len(comp)-1]
	p, err := NewGreedy(ud, 0, d)
	if err != nil {
		t.Fatal(err)
	}
	for !p.Step() {
	}
	if !p.Done() {
		t.Fatal("greedy prober did not terminate")
	}
	// Either delivered or stuck — both are legitimate prober outcomes.
	if p.Delivered() && p.Steps() == 0 {
		t.Fatal("delivered with zero steps to a distinct node")
	}
	if p.Name() != "greedy" {
		t.Fatal("name wrong")
	}
}

func TestGuaranteedProberAlone(t *testing.T) {
	g := gen.Grid(3, 4)
	r, err := route.New(g, route.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewGuaranteed(r, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for !p.Step() {
		steps++
		if steps > 1<<22 {
			t.Fatal("guaranteed prober did not terminate")
		}
	}
	if !p.Delivered() {
		t.Fatalf("guaranteed prober failed: err=%v", p.Err())
	}
	if p.Steps() <= 0 {
		t.Fatal("no steps recorded")
	}
}

func TestHybridMissingNodes(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := NewRandomWalk(g, 99, 0, 1, 0); !errors.Is(err, graph.ErrNodeNotFound) {
		t.Fatalf("error = %v", err)
	}
	if _, err := RouteHybrid(g, 99, 0, route.Config{Seed: 1}, 1); err == nil {
		t.Fatal("missing source accepted")
	}
}
