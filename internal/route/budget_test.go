package route

import (
	"context"
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/netsim"
)

// disjoint builds the two-component test graph (grid ⊔ cycle).
func disjoint(t *testing.T) *graph.Graph {
	t.Helper()
	u, err := gen.DisjointUnion(gen.Grid(5, 5), gen.Cycle(6), 100)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// TestCertificateMatchesWalkVerdicts pins certificate verdicts == walk
// verdicts on a static graph: for every pair, the certified router and the
// certificate-disabled router agree on the status, and a certificate
// appears exactly on the provably-unreachable pairs.
func TestCertificateMatchesWalkVerdicts(t *testing.T) {
	u := disjoint(t)
	cert := newRouter(t, u, Config{Seed: 7})
	walk := newRouter(t, u, Config{Seed: 7, DisableCertificates: true})
	targets := append(append([]graph.NodeID{}, u.SortedNodes()...), 424242)
	for _, s := range []graph.NodeID{0, 24, 100, 103} {
		for _, d := range targets {
			got, err := cert.Route(s, d)
			if err != nil {
				t.Fatalf("certified route %d->%d: %v", s, d, err)
			}
			want, err := walk.Route(s, d)
			if err != nil {
				t.Fatalf("walked route %d->%d: %v", s, d, err)
			}
			if got.Status != want.Status {
				t.Fatalf("route %d->%d: certified status %v, walked %v", s, d, got.Status, want.Status)
			}
			if want.Status == netsim.StatusFailure {
				c := got.Certificate
				if c == nil {
					t.Fatalf("route %d->%d: failure without certificate", s, d)
				}
				if got.Hops != 0 {
					t.Fatalf("route %d->%d: certified failure walked %d hops", s, d, got.Hops)
				}
				if c.SrcComponent == c.DstComponent {
					t.Fatalf("route %d->%d: certificate %+v does not separate the pair", s, d, c)
				}
			} else {
				if got.Certificate != nil {
					t.Fatalf("route %d->%d: success carries certificate %+v", s, d, got.Certificate)
				}
				if got.Hops != want.Hops || got.MaxHeaderBits != want.MaxHeaderBits {
					t.Fatalf("route %d->%d: certified (hops %d, hb %d) != walked (hops %d, hb %d)",
						s, d, got.Hops, got.MaxHeaderBits, want.Hops, want.MaxHeaderBits)
				}
			}
		}
	}
}

// runToVerdict drives RouteBudgeted with a fixed per-request budget,
// resuming until a verdict lands. Returns the final result and the number
// of continuations.
func runToVerdict(t *testing.T, r *Router, s, d graph.NodeID, budget int64) (*Result, int) {
	t.Helper()
	var cur *Cursor
	for i := 0; ; i++ {
		if i > 100000 {
			t.Fatal("walk did not converge")
		}
		res, err := r.RouteBudgeted(context.Background(), s, d, budget, cur)
		if err != nil {
			t.Fatalf("budgeted route %d->%d (continuation %d): %v", s, d, i, err)
		}
		if res.Exhausted == "" {
			return res, i
		}
		if res.Exhausted != ExhaustBudget {
			t.Fatalf("exhausted = %q, want budget", res.Exhausted)
		}
		if res.Cursor == nil {
			t.Fatal("exhausted result without cursor")
		}
		cur = res.Cursor
	}
}

// TestRouteBudgetedSplitEqualsUninterrupted is the resume differential: a
// walk split across budget-exhausted continuations must equal the
// uninterrupted walk on verdict, total hops, header bits, bound, and
// forward steps.
func TestRouteBudgetedSplitEqualsUninterrupted(t *testing.T) {
	u := disjoint(t)
	r := newRouter(t, u, Config{Seed: 3, DisableCertificates: true})
	pairs := []struct{ s, d graph.NodeID }{
		{0, 24},      // reachable, long walk
		{7, 18},      // reachable
		{100, 103},   // reachable, small component
		{0, 104},     // provably unreachable: full doubling burn
		{24, 424242}, // nonexistent target
	}
	for _, p := range pairs {
		want, err := r.Route(p.s, p.d)
		if err != nil {
			t.Fatalf("route %d->%d: %v", p.s, p.d, err)
		}
		for _, budget := range []int64{1, 7, 64, 1 << 40} {
			got, continuations := runToVerdict(t, r, p.s, p.d, budget)
			if got.Status != want.Status || got.Hops != want.Hops ||
				got.MaxHeaderBits != want.MaxHeaderBits || got.Bound != want.Bound ||
				got.ForwardSteps != want.ForwardSteps {
				t.Fatalf("route %d->%d budget %d: split (st %v, hops %d, hb %d, bound %d, fwd %d) != uninterrupted (st %v, hops %d, hb %d, bound %d, fwd %d)",
					p.s, p.d, budget,
					got.Status, got.Hops, got.MaxHeaderBits, got.Bound, got.ForwardSteps,
					want.Status, want.Hops, want.MaxHeaderBits, want.Bound, want.ForwardSteps)
			}
			if budget == 1 && continuations < 2 {
				t.Fatalf("route %d->%d: budget 1 finished in %d continuations over %d hops",
					p.s, p.d, continuations, want.Hops)
			}
			if budget == 1<<40 && continuations != 0 {
				t.Fatalf("route %d->%d: huge budget still took %d continuations", p.s, p.d, continuations)
			}
		}
	}
}

// TestRouteBudgetedCertificate: with certificates on, a budgeted request
// for an unreachable pair is answered in O(1) — no hops, no cursor.
func TestRouteBudgetedCertificate(t *testing.T) {
	r := newRouter(t, disjoint(t), Config{Seed: 3})
	res, err := r.RouteBudgeted(context.Background(), 0, 104, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != netsim.StatusFailure || res.Certificate == nil || res.Hops != 0 || res.Cursor != nil {
		t.Fatalf("certified budgeted failure = %+v", res)
	}
}

// TestRouteBudgetedDeadline: an expired context exhausts at the next round
// boundary, and the walk resumes to the uninterrupted verdict.
func TestRouteBudgetedDeadline(t *testing.T) {
	r := newRouter(t, disjoint(t), Config{Seed: 5, DisableCertificates: true})
	want, err := r.Route(0, 24)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := r.RouteBudgeted(ctx, 0, 24, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhausted != ExhaustDeadline || res.Cursor == nil {
		t.Fatalf("expired-context result = %+v", res)
	}
	got, err := r.RouteBudgeted(context.Background(), 0, 24, 0, res.Cursor)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != want.Status || got.Hops != want.Hops || got.MaxHeaderBits != want.MaxHeaderBits {
		t.Fatalf("resumed after deadline (st %v, hops %d, hb %d) != uninterrupted (st %v, hops %d, hb %d)",
			got.Status, got.Hops, got.MaxHeaderBits, want.Status, want.Hops, want.MaxHeaderBits)
	}
}

// TestRouteBudgetedRejects covers the refusal surface: unsupported
// configurations and cursors that do not belong to the query.
func TestRouteBudgetedRejects(t *testing.T) {
	g := gen.Grid(4, 4)
	ctx := context.Background()

	ablated := newRouter(t, g, Config{Seed: 1, NoDegreeReduction: true})
	if _, err := ablated.RouteBudgeted(ctx, 0, 5, 10, nil); !errors.Is(err, ErrBudgetUnsupported) {
		t.Fatalf("ablated router error = %v, want ErrBudgetUnsupported", err)
	}
	disabled := newRouter(t, g, Config{Seed: 1, DisableFlat: true})
	if _, err := disabled.RouteBudgeted(ctx, 0, 5, 10, nil); !errors.Is(err, ErrBudgetUnsupported) {
		t.Fatalf("DisableFlat router error = %v, want ErrBudgetUnsupported", err)
	}

	r := newRouter(t, g, Config{Seed: 1})
	res, err := r.RouteBudgeted(ctx, 0, 15, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhausted != ExhaustBudget {
		t.Fatalf("budget-1 walk not exhausted: %+v", res)
	}
	cur := *res.Cursor
	cur.Dst = 3
	if _, err := r.RouteBudgeted(ctx, 0, 15, 1, &cur); !errors.Is(err, ErrBadCursor) {
		t.Fatalf("mismatched-pair cursor error = %v, want ErrBadCursor", err)
	}
	cur = *res.Cursor
	cur.Version = 99
	if _, err := r.RouteBudgeted(ctx, 0, 15, 1, &cur); !errors.Is(err, ErrBadCursor) {
		t.Fatalf("dynamic-version cursor error = %v, want ErrBadCursor", err)
	}
	cur = *res.Cursor
	cur.Node = 1 << 30
	if _, err := r.RouteBudgeted(ctx, 0, 15, 1, &cur); !errors.Is(err, ErrBadCursor) {
		t.Fatalf("out-of-range cursor error = %v, want ErrBadCursor", err)
	}

	if res, err := r.RouteBudgeted(ctx, 9, 9, 1, nil); err != nil || res.Status != netsim.StatusSuccess {
		t.Fatalf("self route = %+v, %v", res, err)
	}
	if _, err := r.RouteBudgeted(ctx, 4242, 0, 1, nil); !errors.Is(err, graph.ErrNodeNotFound) {
		t.Fatalf("missing source error = %v", err)
	}
}
