package graph

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func mustEdge(t *testing.T, g *Graph, u, v NodeID) (int, int) {
	t.Helper()
	pu, pv, err := g.AddEdge(u, v)
	if err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
	return pu, pv
}

func buildTriangle(t *testing.T) *Graph {
	t.Helper()
	g := New()
	for _, id := range []NodeID{1, 2, 3} {
		if err := g.AddNode(id); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 3, 1)
	return g
}

func TestAddNodeDuplicate(t *testing.T) {
	g := New()
	if err := g.AddNode(5); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(5); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("duplicate AddNode error = %v, want ErrNodeExists", err)
	}
}

func TestEnsureNodeIdempotent(t *testing.T) {
	g := New()
	g.EnsureNode(1)
	g.EnsureNode(1)
	if g.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", g.NumNodes())
	}
}

func TestAddEdgeMissingNode(t *testing.T) {
	g := New()
	g.EnsureNode(1)
	if _, _, err := g.AddEdge(1, 2); !errors.Is(err, ErrNodeNotFound) {
		t.Fatalf("AddEdge to missing node error = %v, want ErrNodeNotFound", err)
	}
	if _, _, err := g.AddEdge(9, 1); !errors.Is(err, ErrNodeNotFound) {
		t.Fatalf("AddEdge from missing node error = %v, want ErrNodeNotFound", err)
	}
}

func TestTriangleBasics(t *testing.T) {
	g := buildTriangle(t)
	if got := g.NumNodes(); got != 3 {
		t.Errorf("NumNodes = %d, want 3", got)
	}
	if got := g.NumEdges(); got != 3 {
		t.Errorf("NumEdges = %d, want 3", got)
	}
	for _, v := range []NodeID{1, 2, 3} {
		if d := g.Degree(v); d != 2 {
			t.Errorf("Degree(%d) = %d, want 2", v, d)
		}
	}
	if !g.IsRegular(2) {
		t.Error("triangle should be 2-regular")
	}
	if !g.IsConnected() {
		t.Error("triangle should be connected")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestSelfLoop(t *testing.T) {
	g := New()
	g.EnsureNode(7)
	p1, p2, err := g.AddEdge(7, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatalf("self-loop ports equal: %d", p1)
	}
	if d := g.Degree(7); d != 2 {
		t.Fatalf("self-loop degree = %d, want 2", d)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	// Traversing out of one loop port arrives on the other.
	h, err := g.Neighbor(7, p1)
	if err != nil {
		t.Fatal(err)
	}
	if h.To != 7 || h.ToPort != p2 {
		t.Fatalf("loop traversal = %+v, want to 7 port %d", h, p2)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParallelEdges(t *testing.T) {
	g := New()
	g.EnsureNode(1)
	g.EnsureNode(2)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 1, 2)
	if d := g.Degree(1); d != 3 {
		t.Fatalf("Degree(1) = %d, want 3", d)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if !g.IsRegular(3) {
		t.Fatal("theta graph should be 3-regular")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborErrors(t *testing.T) {
	g := buildTriangle(t)
	if _, err := g.Neighbor(99, 0); !errors.Is(err, ErrNodeNotFound) {
		t.Errorf("missing node error = %v", err)
	}
	if _, err := g.Neighbor(1, 5); !errors.Is(err, ErrPortRange) {
		t.Errorf("bad port error = %v", err)
	}
	if _, err := g.Neighbor(1, -1); !errors.Is(err, ErrPortRange) {
		t.Errorf("negative port error = %v", err)
	}
}

func TestPortMutuality(t *testing.T) {
	g := buildTriangle(t)
	g.ForEachNode(func(v NodeID) {
		for p := 0; p < g.Degree(v); p++ {
			h, err := g.Neighbor(v, p)
			if err != nil {
				t.Fatal(err)
			}
			back, err := g.Neighbor(h.To, h.ToPort)
			if err != nil {
				t.Fatal(err)
			}
			if back.To != v || back.ToPort != p {
				t.Fatalf("half-edge (%d,%d) not mutual: back = %+v", v, p, back)
			}
		}
	})
}

func TestComponents(t *testing.T) {
	g := New()
	for id := NodeID(1); id <= 6; id++ {
		g.EnsureNode(id)
	}
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 4, 5)
	// 6 is isolated.
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	sizes := []int{len(comps[0]), len(comps[1]), len(comps[2])}
	if sizes[0] != 3 || sizes[1] != 2 || sizes[2] != 1 {
		t.Fatalf("component sizes = %v, want [3 2 1]", sizes)
	}
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
	if comp := g.ComponentOf(4); len(comp) != 2 {
		t.Errorf("ComponentOf(4) = %v, want 2 nodes", comp)
	}
	if comp := g.ComponentOf(99); comp != nil {
		t.Errorf("ComponentOf(missing) = %v, want nil", comp)
	}
}

func TestBFSDist(t *testing.T) {
	// Path 1-2-3-4 plus disconnected 5.
	g := New()
	for id := NodeID(1); id <= 5; id++ {
		g.EnsureNode(id)
	}
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 3, 4)
	dist := g.BFSDist(1)
	want := map[NodeID]int{1: 0, 2: 1, 3: 2, 4: 3}
	if len(dist) != len(want) {
		t.Fatalf("BFSDist size = %d, want %d", len(dist), len(want))
	}
	for v, d := range want {
		if dist[v] != d {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], d)
		}
	}
	if g.BFSDist(99) != nil {
		t.Error("BFSDist of missing node should be nil")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := buildTriangle(t)
	c := g.Clone()
	mustEdge(t, c, 1, 2)
	if g.Degree(1) != 2 {
		t.Fatal("mutating clone affected original")
	}
	if c.Degree(1) != 3 {
		t.Fatal("clone did not take mutation")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleLabelsPreservesGraph(t *testing.T) {
	g := buildTriangle(t)
	g.EnsureNode(4)
	mustEdge(t, g, 3, 4)
	mustEdge(t, g, 4, 4) // self-loop survives shuffling too

	before := g.Clone()
	g.ShuffleLabels(12345)

	if err := g.Validate(); err != nil {
		t.Fatalf("shuffled graph invalid: %v", err)
	}
	if g.NumNodes() != before.NumNodes() || g.NumEdges() != before.NumEdges() {
		t.Fatal("shuffle changed node/edge counts")
	}
	// Multiset of neighbours per node must be unchanged.
	g.ForEachNode(func(v NodeID) {
		gotCount := make(map[NodeID]int)
		wantCount := make(map[NodeID]int)
		for p := 0; p < g.Degree(v); p++ {
			h, _ := g.Neighbor(v, p)
			gotCount[h.To]++
			hb, _ := before.Neighbor(v, p)
			wantCount[hb.To]++
		}
		for to, c := range wantCount {
			if gotCount[to] != c {
				t.Fatalf("node %d neighbour multiset changed: %v vs %v", v, gotCount, wantCount)
			}
		}
	})
}

func TestShuffleLabelsDeterministic(t *testing.T) {
	a := buildTriangle(t)
	b := buildTriangle(t)
	a.ShuffleLabels(9)
	b.ShuffleLabels(9)
	for _, v := range a.Nodes() {
		for p := 0; p < a.Degree(v); p++ {
			ha, _ := a.Neighbor(v, p)
			hb, _ := b.Neighbor(v, p)
			if ha != hb {
				t.Fatalf("same-seed shuffles differ at node %d port %d", v, p)
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g := buildTriangle(t)
	g.EnsureNode(10)
	mustEdge(t, g, 10, 10)
	mustEdge(t, g, 1, 10)
	g.ShuffleLabels(77)

	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d",
			got.NumNodes(), got.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for _, v := range g.Nodes() {
		for p := 0; p < g.Degree(v); p++ {
			ha, _ := g.Neighbor(v, p)
			hb, err := got.Neighbor(v, p)
			if err != nil {
				t.Fatal(err)
			}
			if ha != hb {
				t.Fatalf("round trip changed half-edge at %d:%d", v, p)
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{name: "empty", in: ""},
		{name: "bad header", in: "wrong v9\n"},
		{name: "bad line", in: "adhocgraph v1\nblah\n"},
		{name: "bad half", in: "adhocgraph v1\nnode 1 2\n"},
		{name: "bad id", in: "adhocgraph v1\nnode x\n"},
		{name: "dangling", in: "adhocgraph v1\nnode 1 2:0\n"},
		{name: "non-mutual", in: "adhocgraph v1\nnode 1 2:0\nnode 2 1:5\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(bytes.NewBufferString(tt.in)); err == nil {
				t.Fatalf("Decode(%q) succeeded, want error", tt.in)
			}
		})
	}
}

func TestSortedNodes(t *testing.T) {
	g := New()
	for _, id := range []NodeID{5, 1, 3} {
		g.EnsureNode(id)
	}
	got := g.SortedNodes()
	want := []NodeID{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedNodes = %v, want %v", got, want)
		}
	}
}

func TestIndexer(t *testing.T) {
	g := buildTriangle(t)
	ix := NewIndexer(g)
	if ix.Len() != 3 {
		t.Fatalf("Len = %d", ix.Len())
	}
	for i := 0; i < ix.Len(); i++ {
		id := ix.ID(i)
		j, ok := ix.Index(id)
		if !ok || j != i {
			t.Fatalf("Index(ID(%d)) = %d,%v", i, j, ok)
		}
	}
	if _, ok := ix.Index(99); ok {
		t.Fatal("Index of unknown node reported ok")
	}
}

func TestDegreeOfMissingNode(t *testing.T) {
	g := New()
	if d := g.Degree(1); d != -1 {
		t.Fatalf("Degree(missing) = %d, want -1", d)
	}
}

// TestRandomGraphInvariants property-tests that arbitrary AddNode/AddEdge
// build sequences always produce valid graphs and that shuffling labels
// never breaks validity.
func TestRandomGraphInvariants(t *testing.T) {
	f := func(seed uint64, nNodes uint8, nEdges uint8) bool {
		n := int(nNodes%30) + 1
		g := New()
		for i := 0; i < n; i++ {
			g.EnsureNode(NodeID(i))
		}
		src := prng.New(seed)
		for i := 0; i < int(nEdges); i++ {
			u := NodeID(src.Intn(n))
			v := NodeID(src.Intn(n))
			if _, _, err := g.AddEdge(u, v); err != nil {
				return false
			}
		}
		if g.Validate() != nil {
			return false
		}
		g.ShuffleLabels(seed ^ 0xabcdef)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeDecodeQuick property-tests the codec over random graphs.
func TestEncodeDecodeQuick(t *testing.T) {
	f := func(seed uint64) bool {
		src := prng.New(seed)
		n := src.Intn(20) + 1
		g := New()
		for i := 0; i < n; i++ {
			g.EnsureNode(NodeID(i))
		}
		for i := 0; i < n*2; i++ {
			if _, _, err := g.AddEdge(NodeID(src.Intn(n)), NodeID(src.Intn(n))); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if g.Encode(&buf) != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
			return false
		}
		for _, v := range g.Nodes() {
			for p := 0; p < g.Degree(v); p++ {
				ha, _ := g.Neighbor(v, p)
				hb, err := got.Neighbor(v, p)
				if err != nil || ha != hb {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
