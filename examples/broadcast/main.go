// Broadcast contrasts the paper's single-token broadcast (one message
// walking a universal exploration sequence, zero state at nodes) with
// classic flooding (every node transmits once, Θ(|E|) concurrent messages,
// per-node state). The trade-off is hops versus messages and state.
package main

import (
	"fmt"
	"log"

	adhocroute "repro"
	"repro/internal/baseline"
	"repro/internal/gen"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n      = 80
		radius = 0.22
		seed   = 5
	)
	ud := gen.UDG2D(n, radius, seed)
	nw := adhocroute.NewUnitDisk2D(n, radius, seed)
	comp := ud.G.ComponentOf(0)
	fmt.Printf("unit-disk network: %d nodes, %d links; source component has %d nodes\n\n",
		nw.NumNodes(), nw.NumLinks(), len(comp))

	// Paper broadcast: one message, no node state, O(log n) header.
	bres, err := nw.Broadcast(0, adhocroute.WithSeed(77))
	if err != nil {
		return err
	}
	fmt.Println("UES broadcast (Theorem 1):")
	fmt.Printf("  reached:    %d/%d nodes of the component\n", bres.Reached, len(comp))
	fmt.Printf("  messages:   1 token, %d hops total (incl. confirmation backtrack)\n", bres.Hops)
	fmt.Printf("  node state: none (enforced O(log n) working registers only)\n\n")
	if bres.Reached != len(comp) {
		return fmt.Errorf("broadcast guarantee violated: %d/%d", bres.Reached, len(comp))
	}

	// Flooding baseline.
	fres, err := baseline.Flood(ud.G, 0, 0, false)
	if err != nil {
		return err
	}
	fmt.Println("flooding baseline:")
	fmt.Printf("  reached:    %d/%d nodes\n", fres.Reached, len(comp))
	fmt.Printf("  messages:   %d transmissions in %d rounds\n", fres.Messages, fres.Rounds)
	fmt.Printf("  node state: %d bits per node (seen bit + parent port)\n\n", fres.PerNodeStateBits)

	fmt.Println("trade-off: flooding finishes in diameter-many rounds but costs Θ(|E|)")
	fmt.Println("messages and per-node state; the UES token is slow (poly hops) but")
	fmt.Println("stateless, single-message, and delivers a completion confirmation to s.")
	return nil
}
